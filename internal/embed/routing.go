package embed

import (
	"fmt"

	"bagpipe/internal/core"
)

// Routing-epoch fence (live tier resharding).
//
// While the tier resharding coordinator migrates partitions between
// servers, every tier client routes by a versioned routing table. The
// server is the fence that keeps stale routing from corrupting state: each
// data op arrives tagged with the epoch the client routed it by, and an op
// whose epoch differs from the server's installed one is rejected with a
// StaleRouting carrying the installed table, so the client can adopt it and
// re-route. Epoch 0 — a server that has never seen a reshard — accepts
// everything, keeping the pre-reshard deployments byte-for-byte on their
// old path.
//
// The fence covers only the routed data plane (fetch/write). Certificates
// and transfer primitives (fingerprints, checkpoints, exports, recovery
// writes) carry their partition space explicitly in their arguments and are
// deliberately unfenced: the coordinator drives them across epochs.

// StaleRouting rejects a data op announced under a routing epoch other than
// the server's installed one. Table is the installed routing table in
// whatever form the transport gave InstallRouting (the embed layer treats
// it as opaque bytes-or-struct; transports know their own encoding).
type StaleRouting struct {
	Epoch uint64
	Table any
}

func (e *StaleRouting) Error() string {
	return fmt.Sprintf("embed: stale routing epoch (server at epoch %d)", e.Epoch)
}

// InstallRouting installs a routing table, monotonically by epoch: an
// install at or below the current epoch is a no-op (false). Install is a
// barrier against the routed data plane: it waits out every in-flight
// routed op, so once it returns, every later routed op is fenced by the new
// epoch.
func (s *Server) InstallRouting(epoch uint64, table any) bool {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if epoch <= s.routeEpoch {
		return false
	}
	s.routeEpoch = epoch
	s.routeTable = table
	return true
}

// RoutingEpoch returns the installed routing epoch (0 before any reshard).
func (s *Server) RoutingEpoch() uint64 {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return s.routeEpoch
}

// RoutedFetchInto is FetchInto behind the epoch fence: nil on success, a
// StaleRouting rejection when announced doesn't match the installed epoch.
// The op runs entirely under the fence's read lock, so it cannot interleave
// with an InstallRouting barrier.
func (s *Server) RoutedFetchInto(announced uint64, ids []uint64, dsts [][]float32) *StaleRouting {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	if s.routeEpoch != 0 && announced != s.routeEpoch {
		return &StaleRouting{Epoch: s.routeEpoch, Table: s.routeTable}
	}
	s.FetchInto(ids, dsts)
	return nil
}

// RoutedWrite is Write behind the epoch fence (see RoutedFetchInto).
func (s *Server) RoutedWrite(announced uint64, ids []uint64, rows [][]float32) *StaleRouting {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	if s.routeEpoch != 0 && announced != s.routeEpoch {
		return &StaleRouting{Epoch: s.routeEpoch, Table: s.routeTable}
	}
	s.Write(ids, rows)
	return nil
}

// FingerprintPartIn is FingerprintPart intersected with a second partition
// space: it digests the materialized rows in partition part of an of-way
// split that also fall in partition within of a withinOf-way split
// (withinOf <= 1 disables the second filter). Resharding verifies each
// migrated (old-partition, new-partition) slice with exactly this
// intersection — the destination holds its whole new partition, the source
// holds its whole old partition, and only the overlap is comparable.
func (s *Server) FingerprintPartIn(part, of, within, withinOf int) uint64 {
	if of <= 0 || part < 0 || part >= of {
		panic(fmt.Sprintf("embed: fingerprint partition %d of %d", part, of))
	}
	if withinOf > 1 && (within < 0 || within >= withinOf) {
		panic(fmt.Sprintf("embed: fingerprint partition %d of %d", within, withinOf))
	}
	row := make([]float32, s.Dim)
	var sum uint64
	for _, id := range s.MaterializedIDs() {
		if of > 1 && core.OwnerOf(id, of) != part {
			continue
		}
		if withinOf > 1 && core.OwnerOf(id, withinOf) != within {
			continue
		}
		s.shards[s.ShardOf(id)].peek(id, row)
		sum += rowDigest(id, row)
	}
	return sum
}

// ExportPartIn is ExportPart intersected with a second partition space (see
// FingerprintPartIn): the anti-entropy source read resharding streams from,
// scoped to one (old-partition ∩ new-partition) slice so a migration never
// moves rows the destination doesn't own in the new space.
func (s *Server) ExportPartIn(part, of, within, withinOf int) ([]uint64, [][]float32) {
	if of <= 0 || part < 0 || part >= of {
		panic(fmt.Sprintf("embed: export partition %d of %d", part, of))
	}
	if withinOf > 1 && (within < 0 || within >= withinOf) {
		panic(fmt.Sprintf("embed: export partition %d of %d", within, withinOf))
	}
	var ids []uint64
	for _, id := range s.MaterializedIDs() {
		if of > 1 && core.OwnerOf(id, of) != part {
			continue
		}
		if withinOf > 1 && core.OwnerOf(id, withinOf) != within {
			continue
		}
		ids = append(ids, id)
	}
	flat := make([]float32, len(ids)*s.Dim)
	rows := make([][]float32, len(ids))
	for i, id := range ids {
		rows[i] = flat[i*s.Dim : (i+1)*s.Dim]
		s.shards[s.ShardOf(id)].peek(id, rows[i])
	}
	return ids, rows
}

// RetainOwned drops every materialized row outside server self's
// replicate-deep replica set of an of-way split, returning how many rows
// went. A settled reshard calls this on each surviving server to shed the
// partitions that moved away — dropping a materialized row reverts it to
// its deterministic (seed, id) init, which is correct precisely because the
// dropped rows are ones the new routing never sends to this server, and it
// restores the MergeTierReplicated invariant (a server materializes only
// rows in its replica set).
func (s *Server) RetainOwned(self, of, replicate int) int {
	if of <= 0 || self < 0 || self >= of {
		panic(fmt.Sprintf("embed: retain for server %d of %d", self, of))
	}
	if replicate < 1 {
		replicate = 1
	}
	dropped := 0
	for _, id := range s.MaterializedIDs() {
		owner := core.OwnerOf(id, of)
		if delta := (self - owner + of) % of; delta >= replicate {
			if s.shards[s.ShardOf(id)].Remove(id) {
				dropped++
			}
		}
	}
	return dropped
}
