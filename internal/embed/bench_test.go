package embed

import (
	"fmt"
	"testing"
)

// benchIDs builds a fetch request of n ids spread over the keyspace so a
// multi-shard server sees every shard in every request, matching the access
// pattern of an oracle-driven prefetch.
func benchIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i*2654435761) % 1_000_000
	}
	return ids
}

// BenchmarkServerFetch compares the shard-grouped parallel fetch against the
// seed's row-at-a-time loop at prefetch-sized requests on a multi-shard
// server (the configuration the pipelined trainer drives).
func BenchmarkServerFetch(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		for _, n := range []int{256, 4096} {
			s := NewServer(shards, 48, 7, 0.1)
			ids := benchIDs(n)
			s.Fetch(ids) // materialize once so steady-state is measured
			b.Run(fmt.Sprintf("parallel/shards=%d/ids=%d", shards, n), func(b *testing.B) {
				b.SetBytes(int64(n * 48 * 4))
				for i := 0; i < b.N; i++ {
					s.Fetch(ids)
				}
			})
			b.Run(fmt.Sprintf("serial/shards=%d/ids=%d", shards, n), func(b *testing.B) {
				b.SetBytes(int64(n * 48 * 4))
				for i := 0; i < b.N; i++ {
					s.FetchSerial(ids)
				}
			})
		}
	}
}

// BenchmarkServerWrite measures the shard-grouped parallel write-back path.
func BenchmarkServerWrite(b *testing.B) {
	for _, shards := range []int{1, 8} {
		s := NewServer(shards, 48, 7, 0.1)
		ids := benchIDs(4096)
		rows := s.Fetch(ids)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(len(ids) * 48 * 4))
			for i := 0; i < b.N; i++ {
				s.Write(ids, rows)
			}
		})
	}
}
