// Package embed implements the embedding-table substrate: lazily
// materialized tables addressed by a flat global-ID keyspace, and the
// sharded Embedding Server component of Bagpipe's disaggregated
// architecture (§3.4), which acts as a sharded parameter server handling
// prefetch and write-back requests from trainers.
//
// Rows are initialized deterministically from their ID, so two servers
// built with the same seed hold identical logical state without ever
// materializing the full table — the property that lets this reproduction
// "store" Criteo-Terabyte's 882M-row tables while only ever allocating the
// rows a run touches, and that lets the sync-equivalence tests compare a
// distributed run against a single-process reference.
package embed

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// rowInit derives the deterministic initial value of element col of row id.
// The paper's systems initialize embeddings uniformly in a small range;
// we use ±initScale.
func rowInit(seed, id uint64, col int, dim int, scale float32) float32 {
	h := seed ^ (id*0x9E3779B97F4A7C15 + uint64(col)*0xBF58476D1CE4E5B9)
	h ^= h >> 30
	h *= 0x94D049BB133111EB
	h ^= h >> 27
	// map to [-scale, scale)
	u := float32(h>>40) / float32(1<<24)
	return (u*2 - 1) * scale
}

// Table is one embedding table shard: a lazily materialized map from global
// embedding ID to its float32 row. Safe for concurrent use.
type Table struct {
	Dim       int
	Seed      uint64
	InitScale float32

	mu   sync.RWMutex
	rows map[uint64][]float32
}

// NewTable returns an empty lazily-initialized table.
func NewTable(dim int, seed uint64, initScale float32) *Table {
	if dim <= 0 {
		panic(fmt.Sprintf("embed: non-positive dim %d", dim))
	}
	return &Table{Dim: dim, Seed: seed, InitScale: initScale, rows: make(map[uint64][]float32)}
}

// materialize returns the live row for id, creating it deterministically if
// it has never been touched. Caller must hold mu for writing.
func (t *Table) materialize(id uint64) []float32 {
	row, ok := t.rows[id]
	if !ok {
		row = make([]float32, t.Dim)
		for c := range row {
			row[c] = rowInit(t.Seed, id, c, t.Dim, t.InitScale)
		}
		t.rows[id] = row
	}
	return row
}

// Get copies the current value of row id into dst (len Dim).
func (t *Table) Get(id uint64, dst []float32) {
	if len(dst) != t.Dim {
		panic(fmt.Sprintf("embed: Get dst len %d != dim %d", len(dst), t.Dim))
	}
	t.mu.RLock()
	row, ok := t.rows[id]
	t.mu.RUnlock()
	if ok {
		copy(dst, row)
		return
	}
	t.mu.Lock()
	copy(dst, t.materialize(id))
	t.mu.Unlock()
}

// Set overwrites row id with src (a trainer write-back).
func (t *Table) Set(id uint64, src []float32) {
	if len(src) != t.Dim {
		panic(fmt.Sprintf("embed: Set src len %d != dim %d", len(src), t.Dim))
	}
	t.mu.Lock()
	row := t.materialize(id)
	copy(row, src)
	t.mu.Unlock()
}

// NumMaterialized returns how many rows have been touched.
func (t *Table) NumMaterialized() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// tableState is the gob wire form of a table checkpoint.
type tableState struct {
	Dim       int
	Seed      uint64
	InitScale float32
	Rows      map[uint64][]float32
}

// Checkpoint serializes the materialized rows to w (Check-N-Run-style
// periodic embedding-server checkpointing, §3.4).
func (t *Table) Checkpoint(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return gob.NewEncoder(w).Encode(tableState{
		Dim: t.Dim, Seed: t.Seed, InitScale: t.InitScale, Rows: t.rows,
	})
}

// RestoreTable reads a checkpoint written by Checkpoint.
func RestoreTable(r io.Reader) (*Table, error) {
	var st tableState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("embed: restore: %w", err)
	}
	if st.Rows == nil {
		st.Rows = make(map[uint64][]float32)
	}
	return &Table{Dim: st.Dim, Seed: st.Seed, InitScale: st.InitScale, rows: st.Rows}, nil
}
