// Package embed implements the embedding-table substrate: lazily
// materialized tables addressed by a flat global-ID keyspace, and the
// sharded Embedding Server component of Bagpipe's disaggregated
// architecture (§3.4), which acts as a sharded parameter server handling
// prefetch and write-back requests from trainers.
//
// Rows are initialized deterministically from their ID, so two servers
// built with the same seed hold identical logical state without ever
// materializing the full table — the property that lets this reproduction
// "store" Criteo-Terabyte's 882M-row tables while only ever allocating the
// rows a run touches, and that lets the sync-equivalence tests compare a
// distributed run against a single-process reference. Checkpoints preserve
// the (seed, init-scale) identity alongside the materialized rows, so a
// server restored from a remote process's checkpoint (transport.TCPLink's
// Checkpoint op, served by transport.ServeEmbed) peeks identically to the
// original and can be Diff'ed bit-for-bit against a local baseline — the
// mechanism behind `bagpipe -net tcp -verify`.
//
// The package never touches the network itself: it exposes batched,
// shard-parallel Fetch/Write plus state-comparison primitives
// (Diff, Fingerprint, Checkpoint/Restore), and internal/transport decides
// whether those calls cross a socket.
package embed

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"
)

// rowInit derives the deterministic initial value of element col of row id.
// The paper's systems initialize embeddings uniformly in a small range;
// we use ±initScale.
func rowInit(seed, id uint64, col int, dim int, scale float32) float32 {
	h := seed ^ (id*0x9E3779B97F4A7C15 + uint64(col)*0xBF58476D1CE4E5B9)
	h ^= h >> 30
	h *= 0x94D049BB133111EB
	h ^= h >> 27
	// map to [-scale, scale)
	u := float32(h>>40) / float32(1<<24)
	return (u*2 - 1) * scale
}

// Table is one embedding table shard: a lazily materialized map from global
// embedding ID to its float32 row. Safe for concurrent use.
type Table struct {
	Dim       int
	Seed      uint64
	InitScale float32

	mu   sync.RWMutex
	rows map[uint64][]float32
}

// NewTable returns an empty lazily-initialized table.
func NewTable(dim int, seed uint64, initScale float32) *Table {
	if dim <= 0 {
		panic(fmt.Sprintf("embed: non-positive dim %d", dim))
	}
	return &Table{Dim: dim, Seed: seed, InitScale: initScale, rows: make(map[uint64][]float32)}
}

// materialize returns the live row for id, creating it deterministically if
// it has never been touched. Caller must hold mu for writing.
func (t *Table) materialize(id uint64) []float32 {
	row, ok := t.rows[id]
	if !ok {
		row = make([]float32, t.Dim)
		for c := range row {
			row[c] = rowInit(t.Seed, id, c, t.Dim, t.InitScale)
		}
		t.rows[id] = row
	}
	return row
}

// initInto fills dst with row id's deterministic initial value without
// materializing it. rowInit is pure, so no lock is needed; a read that
// races a first write to the same row may return the init value, which is
// the row's logical pre-write state.
func (t *Table) initInto(id uint64, dst []float32) {
	for c := range dst {
		dst[c] = rowInit(t.Seed, id, c, t.Dim, t.InitScale)
	}
}

// Get copies the current value of row id into dst (len Dim). Reads never
// materialize: a miss computes the deterministic init value on the fly, so
// the materialized set stays exactly the written set — read-heavy serving
// load cannot grow server memory or perturb the tier fingerprint.
func (t *Table) Get(id uint64, dst []float32) {
	if len(dst) != t.Dim {
		panic(fmt.Sprintf("embed: Get dst len %d != dim %d", len(dst), t.Dim))
	}
	// The copy must happen under the lock: Set overwrites rows in place, and
	// with the serving path in the process a reader is no longer guaranteed
	// to be the row's owning trainer (which serializes its own fetches and
	// write-backs) — copying after unlock would tear the row.
	t.mu.RLock()
	row, ok := t.rows[id]
	if ok {
		copy(dst, row)
		t.mu.RUnlock()
		return
	}
	t.mu.RUnlock()
	t.initInto(id, dst)
}

// Set overwrites row id with src (a trainer write-back).
func (t *Table) Set(id uint64, src []float32) {
	if len(src) != t.Dim {
		panic(fmt.Sprintf("embed: Set src len %d != dim %d", len(src), t.Dim))
	}
	t.mu.Lock()
	row := t.materialize(id)
	copy(row, src)
	t.mu.Unlock()
}

// GetBatch copies the current values of rows ids[i] into dsts[i], taking
// the table lock once for the whole batch instead of once per row. This is
// the shard-side half of the Server's shard-grouped fetch path.
func (t *Table) GetBatch(ids []uint64, dsts [][]float32) {
	if len(ids) != len(dsts) {
		panic(fmt.Sprintf("embed: GetBatch %d ids, %d dsts", len(ids), len(dsts)))
	}
	t.GetMany(ids, nil, dsts)
}

// GetMany copies rows ids[i] into dsts[i] for every i in idxs (or for every
// index when idxs is nil), under a single lock acquisition. The index-list
// form lets the Server hand each shard its slice of a fetch without
// building per-shard copies of the request arrays — this is the hot path
// behind every oracle-driven prefetch.
func (t *Table) GetMany(ids []uint64, idxs []int, dsts [][]float32) {
	var missing []int
	t.mu.RLock()
	get := func(i int) {
		if len(dsts[i]) != t.Dim {
			t.mu.RUnlock()
			panic(fmt.Sprintf("embed: GetMany dst len %d != dim %d", len(dsts[i]), t.Dim))
		}
		if row, ok := t.rows[ids[i]]; ok {
			copy(dsts[i], row)
		} else {
			missing = append(missing, i)
		}
	}
	if idxs == nil {
		for i := range ids {
			get(i)
		}
	} else {
		for _, i := range idxs {
			get(i)
		}
	}
	t.mu.RUnlock()
	// Misses are computed lock-free from the init derivation rather than
	// materialized: fetches stay read-only on the table (see Get).
	for _, i := range missing {
		t.initInto(ids[i], dsts[i])
	}
}

// SetBatch overwrites rows ids[i] with srcs[i] under a single lock
// acquisition (the shard-side half of the Server's batched write-back).
func (t *Table) SetBatch(ids []uint64, srcs [][]float32) {
	if len(ids) != len(srcs) {
		panic(fmt.Sprintf("embed: SetBatch %d ids, %d srcs", len(ids), len(srcs)))
	}
	t.SetMany(ids, nil, srcs)
}

// SetMany overwrites rows ids[i] with srcs[i] for every i in idxs (or for
// every index when idxs is nil) under a single lock acquisition; the
// index-list counterpart of GetMany for batched write-backs.
func (t *Table) SetMany(ids []uint64, idxs []int, srcs [][]float32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := func(i int) {
		if len(srcs[i]) != t.Dim {
			panic(fmt.Sprintf("embed: SetMany src len %d != dim %d", len(srcs[i]), t.Dim))
		}
		copy(t.materialize(ids[i]), srcs[i])
	}
	if idxs == nil {
		for i := range ids {
			set(i)
		}
	} else {
		for _, i := range idxs {
			set(i)
		}
	}
}

// peek copies the current logical value of row id into dst without
// materializing it: untouched rows are computed from the deterministic init
// on the fly. Read-only counterpart of Get for state comparison.
func (t *Table) peek(id uint64, dst []float32) {
	if len(dst) != t.Dim {
		panic(fmt.Sprintf("embed: peek dst len %d != dim %d", len(dst), t.Dim))
	}
	t.mu.RLock()
	row, ok := t.rows[id]
	if ok {
		copy(dst, row)
	}
	t.mu.RUnlock()
	if !ok {
		for c := range dst {
			dst[c] = rowInit(t.Seed, id, c, t.Dim, t.InitScale)
		}
	}
}

// Remove drops row id from the materialized set, reporting whether it was
// materialized. The row's logical value reverts to its deterministic
// (seed, id) init — Remove is how a reshard sheds partitions that migrated
// away, not a way to zero a row.
func (t *Table) Remove(id uint64) bool {
	t.mu.Lock()
	_, ok := t.rows[id]
	if ok {
		delete(t.rows, id)
	}
	t.mu.Unlock()
	return ok
}

// IDs returns the sorted ids of every materialized row.
func (t *Table) IDs() []uint64 {
	t.mu.RLock()
	ids := make([]uint64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumMaterialized returns how many rows have been touched.
func (t *Table) NumMaterialized() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// tableState is the gob wire form of a table checkpoint.
type tableState struct {
	Dim       int
	Seed      uint64
	InitScale float32
	Rows      map[uint64][]float32
}

// Checkpoint serializes the materialized rows to w (Check-N-Run-style
// periodic embedding-server checkpointing, §3.4).
func (t *Table) Checkpoint(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return gob.NewEncoder(w).Encode(tableState{
		Dim: t.Dim, Seed: t.Seed, InitScale: t.InitScale, Rows: t.rows,
	})
}

// RestoreTable reads a checkpoint written by Checkpoint.
func RestoreTable(r io.Reader) (*Table, error) {
	var st tableState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("embed: restore: %w", err)
	}
	if st.Rows == nil {
		st.Rows = make(map[uint64][]float32)
	}
	return &Table{Dim: st.Dim, Seed: st.Seed, InitScale: st.InitScale, rows: st.Rows}, nil
}
