package embed

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestRowInitDeterministic(t *testing.T) {
	a := NewTable(8, 42, 0.1)
	b := NewTable(8, 42, 0.1)
	ra := make([]float32, 8)
	rb := make([]float32, 8)
	for id := uint64(0); id < 100; id++ {
		a.Get(id, ra)
		b.Get(id, rb)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("id %d col %d: %v vs %v", id, i, ra[i], rb[i])
			}
		}
	}
}

func TestRowInitVariesWithSeedAndID(t *testing.T) {
	a := NewTable(8, 1, 0.1)
	b := NewTable(8, 2, 0.1)
	ra := make([]float32, 8)
	rb := make([]float32, 8)
	a.Get(5, ra)
	b.Get(5, rb)
	same := true
	for i := range ra {
		if ra[i] != rb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must give different rows")
	}
	a.Get(6, rb)
	same = true
	for i := range ra {
		if ra[i] != rb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different ids must give different rows")
	}
}

func TestRowInitBounded(t *testing.T) {
	if err := quick.Check(func(id uint64, col uint8, dim uint8) bool {
		d := int(dim%64) + 1
		v := rowInit(7, id, int(col)%d, d, 0.05)
		return v >= -0.05 && v < 0.05
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	tab := NewTable(4, 1, 0.1)
	want := []float32{1, 2, 3, 4}
	tab.Set(99, want)
	got := make([]float32, 4)
	tab.Get(99, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if tab.NumMaterialized() != 1 {
		t.Fatalf("materialized=%d", tab.NumMaterialized())
	}
}

func TestTableCheckpointRestore(t *testing.T) {
	tab := NewTable(4, 5, 0.1)
	tab.Set(1, []float32{9, 9, 9, 9})
	var buf bytes.Buffer
	if err := tab.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float32, 4)
	got.Get(1, row)
	if row[0] != 9 {
		t.Fatalf("restored row %v", row)
	}
	// untouched rows must still materialize identically
	a := make([]float32, 4)
	b := make([]float32, 4)
	tab.Get(77, a)
	got.Get(77, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("untouched rows differ after restore")
		}
	}
}

func TestServerShardingConsistent(t *testing.T) {
	s := NewServer(4, 8, 11, 0.1)
	for id := uint64(0); id < 64; id++ {
		if s.ShardOf(id) != int(id%4) {
			t.Fatalf("shard of %d = %d", id, s.ShardOf(id))
		}
	}
}

func TestServerFetchWriteAndStats(t *testing.T) {
	s := NewServer(3, 4, 13, 0.1)
	ids := []uint64{1, 5, 9}
	rows := s.Fetch(ids)
	if len(rows) != 3 || len(rows[0]) != 4 {
		t.Fatalf("bad fetch shape")
	}
	rows[1][0] = 123
	s.Write(ids[1:2], rows[1:2])
	if got := s.Get(5); got[0] != 123 {
		t.Fatalf("write-back lost: %v", got)
	}
	st := s.Stats()
	if st.RowsFetched != 3 || st.RowsWritten != 1 || st.Fetches != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
	s.ResetStats()
	if s.Stats().RowsFetched != 0 {
		t.Fatal("reset failed")
	}
}

func TestServerStateIndependentOfShardCount(t *testing.T) {
	// Reproducibility across resharding: row values depend only on ID.
	a := NewServer(2, 4, 99, 0.1)
	b := NewServer(7, 4, 99, 0.1)
	for id := uint64(0); id < 50; id++ {
		ra, rb := a.Get(id), b.Get(id)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("id %d differs across shard counts", id)
			}
		}
	}
}

func TestServerCheckpointRestore(t *testing.T) {
	s := NewServer(2, 4, 21, 0.1)
	s.Write([]uint64{3, 4}, [][]float32{{1, 1, 1, 1}, {2, 2, 2, 2}})
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreServer(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Get(3)[0] != 1 || r.Get(4)[0] != 2 {
		t.Fatal("restored server lost writes")
	}
	if r.Dim != 4 {
		t.Fatalf("restored dim %d", r.Dim)
	}
}

func TestConcurrentFetchWrite(t *testing.T) {
	s := NewServer(4, 8, 31, 0.1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint64, 16)
			for i := range ids {
				ids[i] = uint64(w*16 + i)
			}
			for iter := 0; iter < 50; iter++ {
				rows := s.Fetch(ids)
				for _, r := range rows {
					r[0] += 1
				}
				s.Write(ids, rows)
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.RowsFetched != 8*50*16 || st.RowsWritten != 8*50*16 {
		t.Fatalf("stats after concurrent load: %+v", st)
	}
	// disjoint id ranges: each row got exactly 50 increments
	base := NewServer(4, 8, 31, 0.1)
	for id := uint64(0); id < 128; id++ {
		want := base.Get(id)[0] + 50
		got := s.Get(id)[0]
		if diff := got - want; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("id %d: got %v want %v", id, got, want)
		}
	}
}

func TestFetchReturnsCopies(t *testing.T) {
	s := NewServer(1, 4, 41, 0.1)
	r1 := s.Fetch([]uint64{7})
	r1[0][0] = 555
	r2 := s.Fetch([]uint64{7})
	if r2[0][0] == 555 {
		t.Fatal("Fetch must return copies, not aliases")
	}
}

func TestFetchParallelMatchesSerial(t *testing.T) {
	// Above the parallel threshold the shard-grouped concurrent path must
	// return bit-identical rows in the same order as the row-at-a-time
	// reference, including rows mutated since init.
	s := NewServer(8, 16, 77, 0.1)
	dirty := []uint64{3, 1000, 4097}
	for _, id := range dirty {
		row := make([]float32, 16)
		for i := range row {
			row[i] = float32(id) + float32(i)
		}
		s.Write([]uint64{id}, [][]float32{row})
	}
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = uint64(i*37) % 5000
	}
	got := s.Fetch(ids)
	want := s.FetchSerial(ids)
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("id %d col %d: parallel %v serial %v", ids[i], c, got[i][c], want[i][c])
			}
		}
	}
}

func TestWriteParallelVisible(t *testing.T) {
	s := NewServer(8, 4, 5, 0.1)
	n := 300 // above parallelMinRows so the concurrent path runs
	ids := make([]uint64, n)
	rows := make([][]float32, n)
	for i := range ids {
		ids[i] = uint64(i)
		rows[i] = []float32{float32(i), 0, 0, 0}
	}
	s.Write(ids, rows)
	for i := range ids {
		if got := s.Get(ids[i]); got[0] != float32(i) {
			t.Fatalf("id %d: %v", ids[i], got)
		}
	}
}

func TestTableGetSetBatch(t *testing.T) {
	tab := NewTable(4, 9, 0.1)
	ids := []uint64{5, 1, 9, 5}
	dsts := make([][]float32, len(ids))
	for i := range dsts {
		dsts[i] = make([]float32, 4)
	}
	tab.GetBatch(ids, dsts)
	one := make([]float32, 4)
	for i, id := range ids {
		tab.Get(id, one)
		for c := range one {
			if dsts[i][c] != one[c] {
				t.Fatalf("GetBatch id %d differs from Get", id)
			}
		}
	}
	// Reads never materialize: GetBatch touched 5/1/9 but only the written
	// ids may appear, keeping the materialized set identical to the written
	// set (the invariant tier fingerprints rely on under serving load).
	if got := tab.IDs(); len(got) != 0 {
		t.Fatalf("reads materialized rows: IDs() = %v", got)
	}
	tab.SetBatch([]uint64{1, 9}, [][]float32{{7, 7, 7, 7}, {8, 8, 8, 8}})
	tab.Get(9, one)
	if one[0] != 8 {
		t.Fatalf("SetBatch lost write: %v", one)
	}
	if got := tab.IDs(); len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Fatalf("IDs() = %v", got)
	}
}

func TestRestoreServerRejectsDimMismatch(t *testing.T) {
	// A concatenation of shard checkpoints with disagreeing dims is a
	// corrupt server checkpoint and must be rejected.
	var buf bytes.Buffer
	if err := NewTable(4, 1, 0.1).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewTable(8, 1, 0.1).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreServer(&buf, 2); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
	if _, err := RestoreServer(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("expected shard-count error")
	}
}

func TestServerDiff(t *testing.T) {
	a := NewServer(2, 4, 55, 0.1)
	b := NewServer(3, 4, 55, 0.1) // shard count must not matter
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("fresh servers differ: %v", d)
	}
	a.Write([]uint64{10}, [][]float32{{1, 2, 3, 4}})
	b.Write([]uint64{10}, [][]float32{{1, 2, 3, 4}})
	b.Write([]uint64{11}, [][]float32{{9, 9, 9, 9}})
	if d := Diff(a, b); len(d) != 1 || d[0] != 11 {
		t.Fatalf("Diff = %v, want [11]", d)
	}
	// Diff must be read-only: comparing id 11 (materialized only in b)
	// must not materialize it in a.
	if got := a.NumMaterialized(); got != 1 {
		t.Fatalf("Diff materialized rows in its input: %d rows, want 1", got)
	}
}

func TestServerFingerprint(t *testing.T) {
	a := NewServer(2, 4, 55, 0.1)
	b := NewServer(3, 4, 55, 0.1) // sharding-independent like Diff
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fresh equal servers fingerprint differently")
	}
	a.Write([]uint64{10}, [][]float32{{1, 2, 3, 4}})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("diverged servers share a fingerprint")
	}
	b.Write([]uint64{10}, [][]float32{{1, 2, 3, 4}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("re-converged servers fingerprint differently")
	}
	// A single flipped bit must change the hash.
	b.Write([]uint64{10}, [][]float32{{1, 2, 3, 4.0000005}})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("bit flip not detected")
	}
	// Fingerprint must be read-only, like Diff.
	before := a.NumMaterialized()
	a.Fingerprint()
	if a.NumMaterialized() != before {
		t.Fatal("Fingerprint materialized rows")
	}
}
