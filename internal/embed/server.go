package embed

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bagpipe/internal/core"
)

// Stats counts server traffic, used by the experiments to account bytes.
type Stats struct {
	RowsFetched int64
	RowsWritten int64
	Fetches     int64 // fetch RPCs
	Writes      int64 // write RPCs
}

// Server is Bagpipe's Embedding Server tier: embedding rows sharded across
// NumShards partitions by ID, serving batched fetch (prefetch) and
// write-back requests. In the disaggregated deployment each shard lives on
// its own machine; here shards are separate lock domains, and the transport
// layer (internal/transport) decides whether calls cross a real network.
type Server struct {
	Dim    int
	shards []*Table

	rowsFetched atomic.Int64
	rowsWritten atomic.Int64
	fetches     atomic.Int64
	writes      atomic.Int64

	// groupScratch pools the counting-sort work arrays of shardGroups so the
	// shard-grouped fetch/write paths stop reallocating them per batch.
	// Pooled (not a single field) because trainers issue concurrent RPCs.
	groupMu      sync.Mutex
	groupScratch []*core.GroupScratch

	// Recovery mode (anti-entropy rejoin). While recovering, normal Writes
	// record their ids as "fresh" so that WriteRecovery — the bulk transfer
	// of a possibly stale partition snapshot from a surviving replica —
	// never overwrites a row the live write stream has already updated.
	// inRecovery is the fast-path gate; recoverMu serializes the
	// mark-fresh/apply pairs against the filter-fresh/apply pairs, which is
	// what makes the freshness protocol race-free.
	inRecovery atomic.Bool
	recoverMu  sync.Mutex
	fresh      map[uint64]struct{}

	// Routing-epoch fence (see routing.go). routeEpoch 0 accepts every
	// announced epoch, so pre-reshard deployments never block here.
	routeMu    sync.RWMutex
	routeEpoch uint64
	routeTable any
}

// getGroupScratch pops (or creates) a grouping scratch; putGroupScratch
// returns it once the pos/bounds views are no longer referenced.
func (s *Server) getGroupScratch() *core.GroupScratch {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	if n := len(s.groupScratch); n > 0 {
		g := s.groupScratch[n-1]
		s.groupScratch[n-1] = nil
		s.groupScratch = s.groupScratch[:n-1]
		return g
	}
	return new(core.GroupScratch)
}

func (s *Server) putGroupScratch(g *core.GroupScratch) {
	s.groupMu.Lock()
	s.groupScratch = append(s.groupScratch, g)
	s.groupMu.Unlock()
}

// NewServer returns a server with numShards shards of width-dim rows.
func NewServer(numShards, dim int, seed uint64, initScale float32) *Server {
	if numShards <= 0 {
		panic(fmt.Sprintf("embed: non-positive shard count %d", numShards))
	}
	s := &Server{Dim: dim, shards: make([]*Table, numShards)}
	for i := range s.shards {
		// all shards share the seed: a row's initial value depends only on
		// its ID, not on the sharding, so resharding preserves state.
		s.shards[i] = NewTable(dim, seed, initScale)
	}
	return s
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning id.
func (s *Server) ShardOf(id uint64) int { return int(id % uint64(len(s.shards))) }

// parallelMinRows is the request size below which shard grouping costs more
// than it saves; smaller requests take the row-at-a-time path.
const parallelMinRows = 64

// Fetch copies the rows for ids into a freshly allocated [len(ids)][dim]
// block and returns per-row slices into it. This is the prefetch RPC.
// Callers that manage their own row memory use FetchInto instead.
func (s *Server) Fetch(ids []uint64) [][]float32 {
	flat := make([]float32, len(ids)*s.Dim)
	out := make([][]float32, len(ids))
	for i := range out {
		out[i] = flat[i*s.Dim : (i+1)*s.Dim]
	}
	s.FetchInto(ids, out)
	return out
}

// FetchInto copies the rows for ids into the caller-provided dsts (one
// width-Dim slice per id) — the allocation-free form of Fetch that lets
// transports serve fetches out of the pooled row arena. Requests are
// grouped by shard — one batched call per shard instead of one lock
// acquisition per row — and when more than one CPU is available the shards
// (separate machines in the disaggregated deployment) serve their slices
// concurrently.
func (s *Server) FetchInto(ids []uint64, dsts [][]float32) {
	if len(ids) != len(dsts) {
		panic(fmt.Sprintf("embed: FetchInto %d ids, %d dsts", len(ids), len(dsts)))
	}
	if len(s.shards) == 1 || len(ids) < parallelMinRows {
		for i, id := range ids {
			s.shards[s.ShardOf(id)].Get(id, dsts[i])
		}
	} else {
		g := s.getGroupScratch()
		pos, bounds := g.GroupByOwner(ids, len(s.shards))
		s.forEachShard(bounds, func(sh int) {
			s.shards[sh].GetMany(ids, pos[bounds[sh]:bounds[sh+1]], dsts)
		})
		s.putGroupScratch(g)
	}
	s.rowsFetched.Add(int64(len(ids)))
	s.fetches.Add(1)
}

// forEachShard runs fn for every shard with a non-empty run in bounds,
// concurrently when more than one CPU is available, serially otherwise
// (goroutine fan-out is pure overhead on a single core).
func (s *Server) forEachShard(bounds []int, fn func(sh int)) {
	if runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for sh := range s.shards {
			if bounds[sh] == bounds[sh+1] {
				continue
			}
			wg.Add(1)
			go func(sh int) {
				defer wg.Done()
				fn(sh)
			}(sh)
		}
		wg.Wait()
		return
	}
	for sh := range s.shards {
		if bounds[sh] != bounds[sh+1] {
			fn(sh)
		}
	}
}

// FetchSerial is the pre-refactor row-at-a-time fetch path (one shard lock
// acquisition per row, no concurrency). It is retained as the reference
// implementation for differential tests and as the benchmark baseline the
// shard-grouped Fetch is measured against.
func (s *Server) FetchSerial(ids []uint64) [][]float32 {
	flat := make([]float32, len(ids)*s.Dim)
	out := make([][]float32, len(ids))
	for i, id := range ids {
		row := flat[i*s.Dim : (i+1)*s.Dim]
		s.shards[s.ShardOf(id)].Get(id, row)
		out[i] = row
	}
	s.rowsFetched.Add(int64(len(ids)))
	s.fetches.Add(1)
	return out
}

// Write writes back updated rows (trainer evictions / background sync),
// shard-grouped and shard-parallel like Fetch. While the server is in
// recovery mode (BeginRecovery), every written id is also marked fresh so
// concurrent anti-entropy transfers cannot clobber it with stale bytes.
func (s *Server) Write(ids []uint64, rows [][]float32) {
	if len(ids) != len(rows) {
		panic("embed: Write ids/rows length mismatch")
	}
	if s.inRecovery.Load() {
		// Mark and apply under one critical section: marking after applying
		// would let a WriteRecovery slip between the two and overwrite the
		// new value; applying outside the lock would let the transfer's
		// filter read "not fresh" and then lose the race to Set.
		s.recoverMu.Lock()
		if s.fresh != nil {
			for _, id := range ids {
				s.fresh[id] = struct{}{}
			}
			s.applyWrite(ids, rows)
			s.recoverMu.Unlock()
			s.rowsWritten.Add(int64(len(ids)))
			s.writes.Add(1)
			return
		}
		s.recoverMu.Unlock()
	}
	s.applyWrite(ids, rows)
	s.rowsWritten.Add(int64(len(ids)))
	s.writes.Add(1)
}

// applyWrite is the shared shard-grouped row store underlying Write and
// WriteRecovery.
func (s *Server) applyWrite(ids []uint64, rows [][]float32) {
	if len(s.shards) == 1 || len(ids) < parallelMinRows {
		for i, id := range ids {
			s.shards[s.ShardOf(id)].Set(id, rows[i])
		}
	} else {
		g := s.getGroupScratch()
		pos, bounds := g.GroupByOwner(ids, len(s.shards))
		s.forEachShard(bounds, func(sh int) {
			s.shards[sh].SetMany(ids, pos[bounds[sh]:bounds[sh+1]], rows)
		})
		s.putGroupScratch(g)
	}
}

// BeginRecovery puts the server into recovery mode: until EndRecovery,
// normal Writes mark their ids fresh and WriteRecovery skips fresh ids.
// A rejoining server enters this mode before it starts accepting any
// traffic, so the anti-entropy snapshot stream and the live forwarded
// write stream can interleave without losing updates.
func (s *Server) BeginRecovery() {
	s.recoverMu.Lock()
	if s.fresh == nil {
		s.fresh = make(map[uint64]struct{})
	}
	s.inRecovery.Store(true)
	s.recoverMu.Unlock()
}

// EndRecovery leaves recovery mode and drops the freshness set. Called once
// the tier has certified the rejoined server's partitions.
func (s *Server) EndRecovery() {
	s.recoverMu.Lock()
	s.fresh = nil
	s.inRecovery.Store(false)
	s.recoverMu.Unlock()
}

// Recovering reports whether the server is in recovery mode.
func (s *Server) Recovering() bool { return s.inRecovery.Load() }

// WriteRecovery applies a bulk anti-entropy transfer: rows copied from a
// surviving replica's (possibly slightly stale) snapshot. Ids the live
// write stream has already touched since BeginRecovery are skipped — their
// local value is newer than the snapshot's. Outside recovery mode it
// degenerates to a plain write.
func (s *Server) WriteRecovery(ids []uint64, rows [][]float32) {
	if len(ids) != len(rows) {
		panic("embed: WriteRecovery ids/rows length mismatch")
	}
	s.recoverMu.Lock()
	if s.fresh == nil {
		s.recoverMu.Unlock()
		s.applyWrite(ids, rows)
		s.rowsWritten.Add(int64(len(ids)))
		s.writes.Add(1)
		return
	}
	keptIDs := make([]uint64, 0, len(ids))
	keptRows := make([][]float32, 0, len(rows))
	for i, id := range ids {
		if _, ok := s.fresh[id]; ok {
			continue
		}
		keptIDs = append(keptIDs, id)
		keptRows = append(keptRows, rows[i])
	}
	if len(keptIDs) > 0 {
		s.applyWrite(keptIDs, keptRows)
	}
	s.recoverMu.Unlock()
	s.rowsWritten.Add(int64(len(keptIDs)))
	s.writes.Add(1)
}

// Get reads one row (convenience for tests and the reference trainer).
func (s *Server) Get(id uint64) []float32 {
	row := make([]float32, s.Dim)
	s.shards[s.ShardOf(id)].Get(id, row)
	return row
}

// Stats returns a snapshot of traffic counters.
func (s *Server) Stats() Stats {
	return Stats{
		RowsFetched: s.rowsFetched.Load(),
		RowsWritten: s.rowsWritten.Load(),
		Fetches:     s.fetches.Load(),
		Writes:      s.writes.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (s *Server) ResetStats() {
	s.rowsFetched.Store(0)
	s.rowsWritten.Store(0)
	s.fetches.Store(0)
	s.writes.Store(0)
}

// NumMaterialized returns the total number of touched rows across shards.
func (s *Server) NumMaterialized() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumMaterialized()
	}
	return n
}

// Checkpoint writes every shard to w.
func (s *Server) Checkpoint(w io.Writer) error {
	for i, sh := range s.shards {
		if err := sh.Checkpoint(w); err != nil {
			return fmt.Errorf("embed: shard %d: %w", i, err)
		}
	}
	return nil
}

// RestoreServer reads numShards shard checkpoints written by Checkpoint.
// All shards must agree on the row width; a checkpoint whose shards report
// different Dims is corrupt and is rejected rather than silently yielding a
// server whose Dim is whatever the last shard said.
func RestoreServer(r io.Reader, numShards int) (*Server, error) {
	if numShards <= 0 {
		return nil, fmt.Errorf("embed: restore with non-positive shard count %d", numShards)
	}
	s := &Server{shards: make([]*Table, numShards)}
	for i := range s.shards {
		t, err := RestoreTable(r)
		if err != nil {
			return nil, fmt.Errorf("embed: restore shard %d: %w", i, err)
		}
		if i == 0 {
			s.Dim = t.Dim
		} else if t.Dim != s.Dim {
			return nil, fmt.Errorf("embed: restore shard %d has dim %d, shard 0 has dim %d (corrupt checkpoint)",
				i, t.Dim, s.Dim)
		}
		s.shards[i] = t
	}
	return s, nil
}

// MaterializedIDs returns the sorted ids of every materialized row across
// all shards.
func (s *Server) MaterializedIDs() []uint64 {
	var ids []uint64
	for _, sh := range s.shards {
		ids = append(ids, sh.IDs()...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Fingerprint hashes the server's logical state: every materialized row is
// digested with FNV-1a over its id and row bits, and the per-row digests
// are combined with a wrapping sum. Two servers with equal fingerprints are
// bit-identical with overwhelming probability; the fuzz harness uses it as
// a cheap differential check before falling back to Diff for diagnostics.
//
// The commutative combine makes the fingerprint independent of sharding
// *and* of tier splitting: the S servers of a tier hold disjoint
// materialized sets, so their fingerprints sum (wrapping) to the
// fingerprint of the merged state. transport.ShardedStore relies on this to
// certify an S-server tier against an S=1 reference from S cheap remote
// fingerprints, without moving checkpoints.
func (s *Server) Fingerprint() uint64 { return s.FingerprintPart(0, 1) }

// FingerprintPart is the partition-scoped form of Fingerprint: it digests
// only the materialized rows belonging to partition part of an of-way split
// (core.OwnerOf(id, of) == part), and of=1 degenerates to the whole server.
// A replicated tier needs this scoping because a server holds copies of its
// ring neighbors' partitions: summing whole-server fingerprints would count
// every replicated row R times, while summing one FingerprintPart(p, S) per
// partition — taken from any live holder of p — still equals the merged
// state's certificate.
func (s *Server) FingerprintPart(part, of int) uint64 {
	return s.FingerprintPartIn(part, of, 0, 1)
}

// ExportPart snapshots the materialized rows of partition part of an of-way
// split (core.OwnerOf(id, of) == part), returning parallel id/row slices.
// This is the anti-entropy source read: a surviving replica exports a
// partition so a rejoining server can restore it. Rows are copied (peek, not
// Get), so the export neither materializes rows nor aliases live storage;
// concurrent writes interleaving with the copy are repaired by the
// freshness protocol on the receiving side plus the fingerprint retry loop
// in the tier's resync driver.
func (s *Server) ExportPart(part, of int) ([]uint64, [][]float32) {
	return s.ExportPartIn(part, of, 0, 1)
}

// rowDigest is the FNV-1a hash of one (id, row) pair, the unit Fingerprint
// sums.
func rowDigest(id uint64, row []float32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(id)
	for _, x := range row {
		mix(uint64(math.Float32bits(x)))
	}
	return h
}

// MergeTier merges the state of an S-server embedding tier into one logical
// server comparable against an S=1 reference (the direction -verify needs:
// every engine's sharded run must land the bits of the unsharded baseline).
// Server s of a tier addressed through transport.ShardedStore may only hold
// materialized rows it owns (id % S == s); a row materialized on the wrong
// server means the sharding map was violated, and is reported rather than
// silently merged. All servers must have been built with the same seed, so
// untouched rows are the identical deterministic function of id on every
// server — the property that makes tier splitting well-defined at all.
func MergeTier(tier []*Server) (*Server, error) {
	return MergeTierReplicated(tier, 1, nil)
}

// MergeTierReplicated is MergeTier for a tier running replication factor
// replicate, with dead[s] marking servers whose state is unavailable (lost
// mid-run); tier[s] may be nil only when dead[s]. A live server s may
// materialize a row only when it sits in the row's replica set — the owner
// plus the next replicate−1 servers on the core.OwnerOf ring. The merged
// value of each row comes from the first live server of its replica set in
// ring order (the same server a failed-over read routes to), and every
// other live replica holding state must agree bit-for-bit: replicated
// writes go to all live replicas, and untouched rows are deterministic
// functions of (seed, id), so any divergence means a write was lost and is
// reported rather than silently merged away.
func MergeTierReplicated(tier []*Server, replicate int, dead []bool) (*Server, error) {
	S := len(tier)
	if S == 0 {
		return nil, fmt.Errorf("embed: merge of an empty tier")
	}
	if replicate < 1 || replicate > S {
		return nil, fmt.Errorf("embed: replication factor %d outside [1, %d]", replicate, S)
	}
	if dead == nil {
		dead = make([]bool, S)
	} else if len(dead) != S {
		return nil, fmt.Errorf("embed: dead set lists %d servers for a %d-server tier", len(dead), S)
	}
	firstLive := -1
	for s := range tier {
		if dead[s] {
			continue
		}
		if tier[s] == nil {
			return nil, fmt.Errorf("embed: live tier server %d has no state", s)
		}
		if firstLive < 0 {
			firstLive = s
		}
	}
	if firstLive < 0 {
		return nil, fmt.Errorf("embed: every server of the %d-server tier is dead", S)
	}
	first := tier[firstLive]
	if S == 1 {
		return first, nil
	}
	merged := &Server{Dim: first.Dim, shards: make([]*Table, len(first.shards))}
	for i, sh := range first.shards {
		merged.shards[i] = NewTable(sh.Dim, sh.Seed, sh.InitScale)
	}
	row := make([]float32, first.Dim)
	other := make([]float32, first.Dim)
	for s, srv := range tier {
		if dead[s] {
			continue
		}
		if srv.Dim != first.Dim {
			return nil, fmt.Errorf("embed: tier server %d has dim %d, server %d has dim %d", s, srv.Dim, firstLive, first.Dim)
		}
		for _, id := range srv.MaterializedIDs() {
			owner := core.OwnerOf(id, S)
			if delta := (s - owner + S) % S; delta >= replicate {
				return nil, fmt.Errorf("embed: tier server %d materialized id %d owned by server %d, outside its %d-replica set (sharding map violated)",
					s, id, owner, replicate)
			}
			primary := -1
			for k := 0; k < replicate; k++ {
				if r := (owner + k) % S; !dead[r] {
					primary = r
					break
				}
			}
			if s != primary {
				// The primary's pass merges (and cross-checks) this row; a row
				// materialized only on a non-primary replica was never written
				// there, so its value is the deterministic init the primary
				// serves anyway.
				continue
			}
			srv.shards[srv.ShardOf(id)].peek(id, row)
			for k := 0; k < replicate; k++ {
				r := (owner + k) % S
				if r == primary || dead[r] {
					continue
				}
				tier[r].shards[tier[r].ShardOf(id)].peek(id, other)
				for j := range row {
					if row[j] != other[j] {
						return nil, fmt.Errorf("embed: replicas %d and %d of id %d diverge (a replicated write was lost)",
							primary, r, id)
					}
				}
			}
			merged.shards[merged.ShardOf(id)].Set(id, row)
		}
	}
	return merged, nil
}

// RestoreTier reads numServers consecutive server checkpoints (numShards
// shard tables each — the byte layout transport.Store.Checkpoint produces
// for a tier) and merges them into one logical server. This is how the
// driver certifies a remote multi-server run: pull every server's
// checkpoint, rebuild the tier locally, and Diff the merged state against a
// local baseline.
func RestoreTier(r io.Reader, numServers, numShards int) (*Server, error) {
	return RestoreTierReplicated(r, numServers, numShards, 1, nil)
}

// RestoreTierReplicated is RestoreTier for a replicated tier that may have
// lost servers: dead servers contribute no checkpoint bytes (the transport's
// tier checkpoint concatenates live servers only, in server order), and the
// merge recovers their partitions from the surviving replicas.
func RestoreTierReplicated(r io.Reader, numServers, numShards, replicate int, dead []bool) (*Server, error) {
	if numServers <= 0 {
		return nil, fmt.Errorf("embed: restore with non-positive server count %d", numServers)
	}
	if dead != nil && len(dead) != numServers {
		return nil, fmt.Errorf("embed: dead set lists %d servers for a %d-server tier", len(dead), numServers)
	}
	tier := make([]*Server, numServers)
	for s := range tier {
		if dead != nil && dead[s] {
			continue
		}
		srv, err := RestoreServer(r, numShards)
		if err != nil {
			return nil, fmt.Errorf("embed: restore tier server %d: %w", s, err)
		}
		tier[s] = srv
	}
	return MergeTierReplicated(tier, replicate, dead)
}

// Diff compares the logical state of two servers and returns the ids whose
// rows differ bit-for-bit. Only the union of materialized ids is inspected:
// untouched rows are deterministic functions of (seed, id) and therefore
// already known equal when seeds match. Shard counts may differ (state is
// sharding-independent). Used by the differential tests and cmd/bagpipe's
// -verify mode to certify that the pipelined trainer and the baseline
// trainer left the embedding tier in identical states.
func Diff(a, b *Server) []uint64 {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("embed: Diff dim mismatch %d vs %d", a.Dim, b.Dim))
	}
	union := make(map[uint64]struct{})
	for _, id := range a.MaterializedIDs() {
		union[id] = struct{}{}
	}
	for _, id := range b.MaterializedIDs() {
		union[id] = struct{}{}
	}
	ra := make([]float32, a.Dim)
	rb := make([]float32, b.Dim)
	var differ []uint64
	for id := range union {
		// peek, not Get: comparison must not materialize rows in either
		// server (Get would permanently inflate their materialized sets).
		a.shards[a.ShardOf(id)].peek(id, ra)
		b.shards[b.ShardOf(id)].peek(id, rb)
		for i := range ra {
			if ra[i] != rb[i] {
				differ = append(differ, id)
				break
			}
		}
	}
	sort.Slice(differ, func(i, j int) bool { return differ[i] < differ[j] })
	return differ
}
