package embed

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Stats counts server traffic, used by the experiments to account bytes.
type Stats struct {
	RowsFetched int64
	RowsWritten int64
	Fetches     int64 // fetch RPCs
	Writes      int64 // write RPCs
}

// Server is Bagpipe's Embedding Server tier: embedding rows sharded across
// NumShards partitions by ID, serving batched fetch (prefetch) and
// write-back requests. In the disaggregated deployment each shard lives on
// its own machine; here shards are separate lock domains, and the transport
// layer (internal/transport) decides whether calls cross a real network.
type Server struct {
	Dim    int
	shards []*Table

	rowsFetched atomic.Int64
	rowsWritten atomic.Int64
	fetches     atomic.Int64
	writes      atomic.Int64
}

// NewServer returns a server with numShards shards of width-dim rows.
func NewServer(numShards, dim int, seed uint64, initScale float32) *Server {
	if numShards <= 0 {
		panic(fmt.Sprintf("embed: non-positive shard count %d", numShards))
	}
	s := &Server{Dim: dim, shards: make([]*Table, numShards)}
	for i := range s.shards {
		// all shards share the seed: a row's initial value depends only on
		// its ID, not on the sharding, so resharding preserves state.
		s.shards[i] = NewTable(dim, seed, initScale)
	}
	return s
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning id.
func (s *Server) ShardOf(id uint64) int { return int(id % uint64(len(s.shards))) }

// Fetch copies the rows for ids into a freshly allocated [len(ids)][dim]
// block and returns per-row slices into it. This is the prefetch RPC.
func (s *Server) Fetch(ids []uint64) [][]float32 {
	flat := make([]float32, len(ids)*s.Dim)
	out := make([][]float32, len(ids))
	for i, id := range ids {
		row := flat[i*s.Dim : (i+1)*s.Dim]
		s.shards[s.ShardOf(id)].Get(id, row)
		out[i] = row
	}
	s.rowsFetched.Add(int64(len(ids)))
	s.fetches.Add(1)
	return out
}

// Write writes back updated rows (trainer evictions / background sync).
func (s *Server) Write(ids []uint64, rows [][]float32) {
	if len(ids) != len(rows) {
		panic("embed: Write ids/rows length mismatch")
	}
	for i, id := range ids {
		s.shards[s.ShardOf(id)].Set(id, rows[i])
	}
	s.rowsWritten.Add(int64(len(ids)))
	s.writes.Add(1)
}

// Get reads one row (convenience for tests and the reference trainer).
func (s *Server) Get(id uint64) []float32 {
	row := make([]float32, s.Dim)
	s.shards[s.ShardOf(id)].Get(id, row)
	return row
}

// Stats returns a snapshot of traffic counters.
func (s *Server) Stats() Stats {
	return Stats{
		RowsFetched: s.rowsFetched.Load(),
		RowsWritten: s.rowsWritten.Load(),
		Fetches:     s.fetches.Load(),
		Writes:      s.writes.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (s *Server) ResetStats() {
	s.rowsFetched.Store(0)
	s.rowsWritten.Store(0)
	s.fetches.Store(0)
	s.writes.Store(0)
}

// NumMaterialized returns the total number of touched rows across shards.
func (s *Server) NumMaterialized() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumMaterialized()
	}
	return n
}

// Checkpoint writes every shard to w.
func (s *Server) Checkpoint(w io.Writer) error {
	for i, sh := range s.shards {
		if err := sh.Checkpoint(w); err != nil {
			return fmt.Errorf("embed: shard %d: %w", i, err)
		}
	}
	return nil
}

// RestoreServer reads numShards shard checkpoints written by Checkpoint.
func RestoreServer(r io.Reader, numShards int) (*Server, error) {
	s := &Server{shards: make([]*Table, numShards)}
	for i := range s.shards {
		t, err := RestoreTable(r)
		if err != nil {
			return nil, fmt.Errorf("embed: restore shard %d: %w", i, err)
		}
		s.shards[i] = t
		s.Dim = t.Dim
	}
	return s, nil
}
