package embed

import (
	"bytes"
	"testing"

	"bagpipe/internal/core"
)

// replicaSet writes row id=val to every server of its R-replica set on the
// ownership ring, mimicking what the replicated tier client does.
func writeReplicated(tier []*Server, id uint64, row []float32, replicate int) {
	S := len(tier)
	owner := core.OwnerOf(id, S)
	for k := 0; k < replicate; k++ {
		tier[(owner+k)%S].Write([]uint64{id}, [][]float32{row})
	}
}

func TestFingerprintPartSumsToWhole(t *testing.T) {
	s := NewServer(3, 4, 7, 0.1)
	for id := uint64(0); id < 40; id++ {
		s.Write([]uint64{id}, [][]float32{{float32(id), 1, 2, 3}})
	}
	whole := s.Fingerprint()
	for _, of := range []int{1, 2, 3, 5} {
		var sum uint64
		for part := 0; part < of; part++ {
			sum += s.FingerprintPart(part, of)
		}
		if sum != whole {
			t.Fatalf("partition fingerprints (of=%d) sum to %x, whole is %x", of, sum, whole)
		}
	}
	// Partition scoping must be real: a 1-of-3 slice of a non-empty server
	// differs from the whole.
	if s.FingerprintPart(0, 3) == whole {
		t.Fatal("partition fingerprint equals the whole server's")
	}
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FingerprintPart(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			s.FingerprintPart(bad[0], bad[1])
		}()
	}
}

func TestMergeTierReplicatedSurvivesDeadServer(t *testing.T) {
	const S, R = 3, 2
	tier := make([]*Server, S)
	for i := range tier {
		tier[i] = NewServer(2, 4, 99, 0.1)
	}
	ref := NewServer(2, 4, 99, 0.1)
	for id := uint64(0); id < 30; id++ {
		row := []float32{float32(id), -1, 0.5, 2}
		writeReplicated(tier, id, row, R)
		ref.Write([]uint64{id}, [][]float32{row})
	}

	// Fully live: the merge must equal the unsharded reference.
	merged, err := MergeTierReplicated(tier, R, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(ref, merged); len(d) != 0 {
		t.Fatalf("live replicated merge differs at %v", d)
	}

	// Kill each server in turn: R=2 must reconstruct the full state from
	// the survivors, whichever server died.
	for dead := 0; dead < S; dead++ {
		maimed := make([]*Server, S)
		copy(maimed, tier)
		maimed[dead] = nil
		deadSet := make([]bool, S)
		deadSet[dead] = true
		merged, err := MergeTierReplicated(maimed, R, deadSet)
		if err != nil {
			t.Fatalf("dead server %d: %v", dead, err)
		}
		if d := Diff(ref, merged); len(d) != 0 {
			t.Fatalf("merge without server %d differs at %v", dead, d)
		}
	}
}

func TestMergeTierReplicatedDetectsDivergence(t *testing.T) {
	const S, R = 3, 2
	tier := make([]*Server, S)
	for i := range tier {
		tier[i] = NewServer(2, 4, 99, 0.1)
	}
	writeReplicated(tier, 7, []float32{1, 2, 3, 4}, R)
	// Corrupt the replica copy only: a lost replicated write.
	owner := core.OwnerOf(7, S)
	tier[(owner+1)%S].Write([]uint64{7}, [][]float32{{1, 2, 3, 5}})
	if _, err := MergeTierReplicated(tier, R, nil); err == nil {
		t.Fatal("diverged replicas merged without error")
	}
}

func TestMergeTierReplicatedValidation(t *testing.T) {
	tier := []*Server{NewServer(2, 4, 1, 0.1), NewServer(2, 4, 1, 0.1)}
	if _, err := MergeTierReplicated(tier, 0, nil); err == nil {
		t.Fatal("replicate 0 accepted")
	}
	if _, err := MergeTierReplicated(tier, 3, nil); err == nil {
		t.Fatal("replicate > S accepted")
	}
	if _, err := MergeTierReplicated(tier, 2, []bool{true}); err == nil {
		t.Fatal("misaligned dead set accepted")
	}
	if _, err := MergeTierReplicated([]*Server{nil, tier[1]}, 2, nil); err == nil {
		t.Fatal("nil live server accepted")
	}
	if _, err := MergeTierReplicated(tier, 2, []bool{true, true}); err == nil {
		t.Fatal("all-dead tier accepted")
	}
	// Unreplicated ownership violation still caught through the new path:
	// a row materialized outside its replica set means the sharding map was
	// broken somewhere.
	tier[1].Write([]uint64{0}, [][]float32{{1, 2, 3, 4}}) // owner 0, R=1
	if _, err := MergeTierReplicated(tier, 1, nil); err == nil {
		t.Fatal("out-of-set row accepted")
	}
}

func TestRestoreTierReplicatedSkipsDeadServers(t *testing.T) {
	const S, R = 3, 2
	tier := make([]*Server, S)
	for i := range tier {
		tier[i] = NewServer(2, 4, 123, 0.1)
	}
	ref := NewServer(2, 4, 123, 0.1)
	for id := uint64(0); id < 25; id++ {
		row := []float32{0.25, float32(id), 3, -4}
		writeReplicated(tier, id, row, R)
		ref.Write([]uint64{id}, [][]float32{row})
	}
	dead := []bool{false, true, false}
	// The dead server contributes no checkpoint bytes, exactly like the
	// tier client's Checkpoint after a failover.
	var buf bytes.Buffer
	for s, srv := range tier {
		if dead[s] {
			continue
		}
		if err := srv.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := RestoreTierReplicated(&buf, S, 2, R, dead)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(ref, restored); len(d) != 0 {
		t.Fatalf("restored maimed tier differs at %v", d)
	}
}
