package train

import (
	"fmt"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// TestCollectiveStrategiesBitIdentical is the collective conformance
// matrix: every mesh all-reduce strategy (rooted per-parameter frames,
// fused single-frame, ring, binomial tree) over every fabric (instant
// in-process, reordering simulated links, real TCP sockets + codec) leaves
// the embedding servers bit-identical to the no-cache baseline and reports
// its exact losses. Under -race this also exercises the ring and tree
// relay paths in the receiver goroutine.
func TestCollectiveStrategiesBitIdentical(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 3
	cfg.NumBatches = 12

	srvBase := newServer(cfg.Spec, 3)
	base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	for _, strategy := range []string{CollRooted, CollFused, CollRing, CollTree} {
		for _, meshName := range []string{"inproc", "sim", "tcp"} {
			t.Run(fmt.Sprintf("%s_%s", strategy, meshName), func(t *testing.T) {
				c := cfg
				c.Collective = strategy
				srv := newServer(c.Spec, 3)
				var mesh transport.Mesh
				switch meshName {
				case "inproc":
					mesh = transport.NewInprocMesh(c.NumTrainers)
				case "sim":
					mesh = transport.NewSimMesh(c.NumTrainers, 200*time.Microsecond, 20e6)
				case "tcp":
					lb, err := transport.NewLoopbackTCPMesh(c.NumTrainers)
					if err != nil {
						t.Fatal(err)
					}
					defer lb.Shutdown()
					mesh = lb
				}
				results := runWorkers(t, c, newStores(srv, c.NumTrainers), mesh)

				if d := embed.Diff(srvBase, srv); len(d) != 0 {
					t.Fatalf("strategy %s over %s diverged at %d ids (first: %v)", strategy, meshName, len(d), d[0])
				}
				for p, res := range results {
					if res.FirstLoss != base.FirstLoss || res.LastLoss != base.LastLoss {
						t.Fatalf("worker %d losses diverged: %v/%v vs baseline %v/%v",
							p, res.FirstLoss, res.LastLoss, base.FirstLoss, base.LastLoss)
					}
					if res.MeshClasses.CollMsgs == 0 {
						t.Fatalf("worker %d sent no collective frames under strategy %s", p, strategy)
					}
				}
			})
		}
	}
}

// TestFusedCollectiveFrameReduction pins the tentpole's arithmetic: per
// iteration, the fused strategy sends 2(P−1) collective frames across the
// whole mesh where rooted sends 2(P−1)·(params+1), and ring sends P(P−1).
// The wd model has well over four dense parameters, so fused must beat
// rooted by ≥5× — the acceptance bar — and the counters, not the math,
// are what's checked.
func TestFusedCollectiveFrameReduction(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 3
	cfg.NumBatches = 10

	frames := make(map[string]int64)
	for _, strategy := range []string{CollRooted, CollFused, CollRing, CollTree} {
		c := cfg
		c.Collective = strategy
		srv := newServer(c.Spec, 3)
		results := runWorkers(t, c, newStores(srv, c.NumTrainers), transport.NewInprocMesh(c.NumTrainers))
		var total int64
		for _, res := range results {
			total += res.MeshClasses.CollMsgs
		}
		frames[strategy] = total
	}
	P, iters := int64(cfg.NumTrainers), int64(cfg.NumBatches)
	if want := P * (P - 1) * iters; frames[CollRing] != want {
		t.Errorf("ring sent %d collective frames, want P(P-1)·iters = %d", frames[CollRing], want)
	}
	if want := 2 * (P - 1) * iters; frames[CollFused] != want {
		t.Errorf("fused sent %d collective frames, want 2(P-1)·iters = %d", frames[CollFused], want)
	}
	// Tree: every contribution is relayed popcount(r) hops up the binomial
	// tree, and the result travels the P−1 tree edges back down.
	var hops int64
	for r := int64(1); r < P; r++ {
		for v := r; v != 0; v &= v - 1 {
			hops++
		}
	}
	if want := (hops + P - 1) * iters; frames[CollTree] != want {
		t.Errorf("tree sent %d collective frames, want (Σpopcount+P-1)·iters = %d", frames[CollTree], want)
	}
	if frames[CollRooted] < 5*frames[CollFused] {
		t.Errorf("rooted sent %d frames vs fused %d: fusion saves < 5x", frames[CollRooted], frames[CollFused])
	}
}

// TestLRPPSyncCompressRuns: the quantized replica path (-sync-compress) is
// lossy by design, so it cannot be held to bit-identity — but it must run
// every fabric-facing stage, quantize at the sender (all fabrics carry
// identical values), and land close to the lossless run. The loss curve
// staying within f16-noise of baseline is the smoke bar.
func TestLRPPSyncCompressRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 2
	cfg.NumBatches = 20
	cfg.SyncCompress = true

	srv := newServer(cfg.Spec, 3)
	res, err := RunLRPP(cfg, newStores(srv, 2), nil)
	if err != nil {
		t.Fatalf("lrpp with sync-compress: %v", err)
	}

	exact := cfg
	exact.SyncCompress = false
	srvExact := newServer(cfg.Spec, 3)
	resExact, err := RunLRPP(exact, newStores(srvExact, 2), nil)
	if err != nil {
		t.Fatalf("lrpp lossless: %v", err)
	}
	if res.ReplicaRows == 0 {
		t.Fatal("no replicas pushed; the quantized path was never exercised")
	}
	if d := res.LastLoss - resExact.LastLoss; d > 0.05 || d < -0.05 {
		t.Fatalf("quantized last loss %v drifted from lossless %v", res.LastLoss, resExact.LastLoss)
	}
	// And the per-class accounting halves replica bytes: 2 bytes/element
	// instead of 4, same frame count.
	if res.MeshClasses.ReplicaMsgs != resExact.MeshClasses.ReplicaMsgs {
		t.Fatalf("replica frame count changed under quantization: %d vs %d",
			res.MeshClasses.ReplicaMsgs, resExact.MeshClasses.ReplicaMsgs)
	}
	if res.MeshClasses.ReplicaBytes >= resExact.MeshClasses.ReplicaBytes {
		t.Fatalf("quantized replica bytes %d not below lossless %d",
			res.MeshClasses.ReplicaBytes, resExact.MeshClasses.ReplicaBytes)
	}
}

// TestCalibrateAndAutoLookahead covers the -auto-lookahead machinery: the
// calibration returns a sane positive compute time, and the window policy
// respects both the latency floor (rtt/iter + slack) and the cache-budget
// ceiling.
func TestCalibrateAndAutoLookahead(t *testing.T) {
	cfg := tinyConfig()
	iter, err := CalibrateIterTime(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iter <= 0 || iter > 5*time.Second {
		t.Fatalf("calibrated iteration time %v not plausible", iter)
	}

	// A link 10 iterations deep needs ℒ ≈ 12; a huge budget must not cap it.
	l, err := AutoLookahead(cfg, time.Millisecond, 10*time.Millisecond, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if l != 12 {
		t.Fatalf("auto ℒ = %d, want rtt/iter+2 = 12", l)
	}
	// A tiny cache budget caps the window regardless of latency.
	lTight, err := AutoLookahead(cfg, time.Millisecond, 100*time.Millisecond, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lTight >= 102 || lTight < 1 {
		t.Fatalf("budget-capped ℒ = %d, want small positive", lTight)
	}
	if lTight > 8 {
		t.Fatalf("40-row budget fits ℒ = %d windows of ~16-example batches: cap not applied", lTight)
	}
	// Zero-cost compute degrades to the floor, never to zero.
	lFloor, err := AutoLookahead(cfg, 0, time.Millisecond, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lFloor != 2 {
		t.Fatalf("floor ℒ = %d, want 2", lFloor)
	}
	if _, err := AutoLookahead(cfg, time.Millisecond, time.Millisecond, 0, 64); err == nil {
		t.Fatal("zero cache budget accepted")
	}
	bad := cfg
	bad.Collective = "nope"
	if _, err := AutoLookahead(bad, time.Millisecond, time.Millisecond, 100, 64); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestCollectiveConfigValidation: unknown strategy names are rejected at
// every engine entry point.
func TestCollectiveConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Collective = "butterfly"
	srv := newServer(cfg.Spec, 1)
	if _, err := RunLRPP(cfg, newStores(srv, cfg.NumTrainers), nil); err == nil {
		t.Fatal("RunLRPP accepted unknown collective strategy")
	}
	if _, err := RunLRPPWorker(cfg, 0, transport.NewInProcess(srv), transport.NewInprocMesh(cfg.NumTrainers)); err == nil {
		t.Fatal("RunLRPPWorker accepted unknown collective strategy")
	}
	ok := tinyConfig()
	for _, s := range []string{"", CollRooted, CollFused, CollRing, CollTree} {
		ok.Collective = s
		if err := ok.validate(); err != nil {
			t.Fatalf("strategy %q rejected: %v", s, err)
		}
	}
}
