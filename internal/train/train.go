// Package train is Bagpipe's execution engine: it wires the Oracle Cacher,
// the trainer-side caches, the sharded embedding servers (behind a
// transport), the recommendation models, and the collective layer into
// concurrent training pipelines, plus a baseline fetch-per-batch trainer
// every engine is differentially tested against. Four drivers share one
// deterministic compute core:
//
//   - RunBaseline — no cache, no lookahead, no overlap (§2.3 of the
//     paper); the differential ground truth.
//   - RunPipelined — one shared cache, staged oracle → prefetch pool →
//     trainer ranks → maintenance pipeline (§4).
//   - RunLRPP — P trainers with partitioned LRPP caches, replica pushes
//     and delayed gradient sync over a trainer mesh (§3.3), all in one
//     process.
//   - RunLRPPWorker — exactly one LRPP trainer per process: plans,
//     collectives, replicas, and sync flushes all cross a transport.Mesh
//     (TCP in production, in-process/simulated in tests); rank 0 hosts the
//     oracle (worker.go).
//
// The oracle walks the batch stream ℒ iterations ahead of training and its
// decisions drive everything: what the prefetch workers fetch, how long the
// cache keeps each row (TTL), and what maintenance writes back after
// eviction. A token scheme bounds each pipeline so a prefetch for
// iteration x is issued only after the write-backs of iteration x−ℒ have
// completed — exactly the window for which the oracle's consistency
// argument (§3.2) guarantees the servers cannot serve a stale row. The
// LRPP engines enforce the window per partition; ownership disjointness
// composes the per-trainer windows into the global guarantee.
//
// Every engine drives the same deterministic rank machinery: data-parallel
// model replicas whose dense gradients and loss are combined in one fused
// collective round per iteration, folded in rank order from zero
// (collective.Group in-process; meshColl across processes, with rooted /
// fused / ring strategies — meshcoll.go), and per-row gradient
// contributions folded in batch-example order with one optimizer update
// per (row, iteration). Over the same Config, every engine × fabric ×
// collective-strategy combination therefore produces bit-identical
// embedding-server state — the end-to-end property the differential tests
// and the fuzz harness (lrpp_fuzz_test.go) enforce under -race.
package train

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"bagpipe/internal/collective"
	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/model"
	"bagpipe/internal/nn"
	"bagpipe/internal/optim"
	"bagpipe/internal/tensor"
	"bagpipe/internal/transport"
)

// Config describes one training run.
type Config struct {
	Spec *data.Spec
	Seed uint64

	Model     string // "dlrm", "wd", "dc", "deepfm"
	Optimizer string // "sgd", "momentum", "adagrad", "adam"
	LR        float32

	BatchSize  int
	NumBatches int

	// LookAhead is ℒ, the oracle window in batches (pipelined engine only).
	LookAhead int
	// NumTrainers is the data-parallel rank count.
	NumTrainers int
	// PrefetchWorkers sizes the prefetch pool; 0 means 2.
	PrefetchWorkers int
	// Partitioner assigns examples to ranks; nil means core.Contiguous.
	Partitioner core.Partitioner

	// SyncEager, when true, makes the LRPP engine flush every cross-trainer
	// gradient contribution as soon as its iteration's backward pass ends,
	// instead of delaying non-critical contributions one iteration off the
	// critical path (the §3.3 "Delayed Synchronization" default).
	SyncEager bool
	// Collective selects the mesh all-reduce strategy for multi-process
	// worker runs: "rooted" (one frame per dense parameter, reduced through
	// rank 0 — the PR-3 wire behavior), "fused" (the default: every
	// parameter segment plus the loss in a single frame through rank 0),
	// "ring" (fused frames forwarded around the ring, folded locally), or
	// "tree" (fused frames relayed up a log₂P binomial tree to rank 0 and
	// the result sent back down it). All strategies fold in rank order from
	// zero and are therefore bit-identical; they differ only in frame count
	// and topology. Single-process engines always use the in-process
	// collective.Group.
	Collective string
	// SyncCompress quantizes replica row pushes to float16 on the mesh,
	// halving replica bytes. Lossy: the final state is no longer
	// bit-identical to the baseline, so it cannot be combined with
	// differential verification; the tests pin the lossless default.
	SyncCompress bool
	// SyncCompressGrad quantizes delayed-sync gradient flushes to float16 at
	// the sender with per-(owner, row) error feedback: each flush's f16
	// rounding error is carried and injected into the row's next flush
	// (efsync.go), so compression error stays bounded instead of
	// accumulating. Halves sync-class mesh bytes. Lossy like SyncCompress:
	// deterministic across runs and fabrics, but not bit-identical to the
	// lossless baseline, so it cannot be combined with differential
	// verification.
	SyncCompressGrad bool
	// Hooks, when non-nil, receives LRPP engine events for invariant
	// auditing (differential + fuzz harness). Nil in production runs.
	Hooks *LRPPHooks
	// Progress, when non-nil, is updated live with the write-back epoch and
	// completed-example count so an observer in the same process (the
	// serving front end) can bound staleness and measure interference
	// without touching engine internals. LRPP engine only.
	Progress *Progress
}

func (c *Config) validate() error {
	if c.Spec == nil {
		return fmt.Errorf("train: nil spec")
	}
	if c.BatchSize <= 0 || c.NumBatches <= 0 {
		return fmt.Errorf("train: need positive batch size and count, got %d/%d", c.BatchSize, c.NumBatches)
	}
	if c.NumTrainers <= 0 {
		return fmt.Errorf("train: need at least one trainer, got %d", c.NumTrainers)
	}
	switch c.Collective {
	case "", CollRooted, CollFused, CollRing, CollTree:
	default:
		return fmt.Errorf("train: unknown collective strategy %q (rooted, fused, ring, tree)", c.Collective)
	}
	return nil
}

func (c *Config) collective() string {
	if c.Collective != "" {
		return c.Collective
	}
	return CollFused
}

func (c *Config) partitioner() core.Partitioner {
	if c.Partitioner != nil {
		return c.Partitioner
	}
	return core.Contiguous{}
}

func (c *Config) prefetchWorkers() int {
	if c.PrefetchWorkers > 0 {
		return c.PrefetchWorkers
	}
	return 2
}

// newOptimizers builds the dense optimizer for one rank and the shared
// row-wise optimizer for embedding updates. Every optim type implements
// both interfaces, so name resolution is shared.
func newOptimizer(name string, lr float32) (interface {
	optim.Optimizer
	optim.RowOptimizer
}, error) {
	switch name {
	case "", "sgd":
		return optim.NewSGD(lr), nil
	case "momentum":
		return optim.NewMomentum(lr, 0.9), nil
	case "adagrad":
		return optim.NewAdagrad(lr), nil
	case "adam":
		return optim.NewAdam(lr), nil
	}
	return nil, fmt.Errorf("train: unknown optimizer %q", name)
}

// Result summarizes a finished run.
type Result struct {
	Engine   string
	Iters    int
	Examples int64
	Elapsed  time.Duration

	FirstLoss, LastLoss float32
	AvgLoss             float64

	// Oracle-derived cache statistics (zero for the baseline engine).
	UniqueIDs  int64 // unique embedding IDs across iterations
	CachedHits int64 // served from the trainer cache
	Prefetched int64 // fetched from the embedding servers
	Evicted    int64 // rows written back on eviction
	PeakCache  int   // peak cached rows (LRPP: sum of per-partition peaks, an upper bound on the simultaneous total)

	// Overlap counters: how many times one stage was observed running
	// while the trainer computed (evidence the stages actually pipeline).
	OverlapPrefetchTrain int64
	OverlapMaintTrain    int64

	// LRPP engine only: cross-trainer traffic over the mesh.
	ReplicaRows    int64 // owner→user row snapshots for remote reads
	SyncEntries    int64 // per-example gradient contributions routed to owners
	UrgentFlushes  int64 // sync batches flushed on the critical path (needed next iter)
	DelayedFlushes int64 // sync batches flushed off the critical path
	Mesh           transport.MeshStats
	// MeshClasses splits the mesh traffic this process *sent* by protocol
	// phase — the counters that prove (rather than assert) the fused
	// collectives' frame reduction. Collective and plan frames only cross
	// the mesh in worker mode; replica and sync frames cross it in every
	// multi-trainer LRPP run.
	MeshClasses MeshTraffic

	Transport transport.Stats
	// StoreServers splits the embedding-tier traffic by backend server:
	// fetch/write frames (per-server sub-batch RPCs) and payload bytes,
	// one entry per server in tier order, summed across this process's
	// trainers. The per-server counterpart of MeshClasses: it is what
	// proves — from counters, not assertions — that a -servers S run
	// actually fanned its traffic out S ways. Transport is the field-wise
	// sum of these entries.
	StoreServers []transport.Stats

	// Tier is the embedding-tier failure-handling snapshot (replication
	// factor, failovers served by a non-primary replica, per-server RPC
	// retries, dead servers), summed across this process's trainers. Nil
	// when the store does not replicate (single-server tiers and plain
	// sharded stores report no health state worth printing).
	Tier *transport.TierHealth
}

// tierHealther is the optional Store face that exposes failover counters;
// *transport.ShardedStore implements it.
type tierHealther interface {
	TierHealth() transport.TierHealth
}

// addTierHealth folds tr's failure-handling counters into res.Tier, if tr
// exposes any and they are worth reporting (the tier replicates or has
// already lost a server).
func addTierHealth(res *Result, tr transport.Store) {
	th, ok := tr.(tierHealther)
	if !ok {
		return
	}
	h := th.TierHealth()
	if h.Replicate <= 1 && len(h.Dead) == 0 && h.Revived == 0 && h.RoutingEpoch == 0 {
		return
	}
	if res.Tier == nil {
		res.Tier = &transport.TierHealth{Servers: h.Servers, Replicate: h.Replicate}
	}
	res.Tier.Failovers += h.Failovers
	res.Tier.Retries += h.Retries
	res.Tier.Revived += h.Revived
	res.Tier.ResyncRows += h.ResyncRows
	// Reshard progress is tier-global, not additive across trainers: every
	// client converges on the same epoch, and the stream counters live in
	// whichever client drove the migration. Report the max of each.
	if h.RoutingEpoch > res.Tier.RoutingEpoch {
		res.Tier.RoutingEpoch = h.RoutingEpoch
	}
	if h.ReshardParts > res.Tier.ReshardParts {
		res.Tier.ReshardParts = h.ReshardParts
	}
	if h.ReshardRows > res.Tier.ReshardRows {
		res.Tier.ReshardRows = h.ReshardRows
	}
	if h.ReshardBytes > res.Tier.ReshardBytes {
		res.Tier.ReshardBytes = h.ReshardBytes
	}
	// The final tier width under the installed routing, not the launch
	// width: a resharded run reports where it ended up.
	if h.Servers > 0 {
		res.Tier.Servers = h.Servers
	}
	for _, d := range h.Dead {
		seen := false
		for _, have := range res.Tier.Dead {
			if have == d {
				seen = true
				break
			}
		}
		if !seen {
			res.Tier.Dead = append(res.Tier.Dead, d)
		}
	}
	sort.Ints(res.Tier.Dead)
}

// MeshTraffic is per-phase mesh accounting: frames and declared bytes,
// split by what the frame carried.
type MeshTraffic struct {
	ReplicaMsgs, ReplicaBytes int64 // owner→reader row snapshots
	SyncMsgs, SyncBytes       int64 // delayed-sync flush frames
	CollMsgs, CollBytes       int64 // collective contributions/results
	PlanMsgs, PlanBytes       int64 // oracle plans (rank 0 → peers)
}

// HitRate returns the fraction of unique-ID accesses served by the cache.
func (r *Result) HitRate() float64 {
	if r.UniqueIDs == 0 {
		return 0
	}
	return float64(r.CachedHits) / float64(r.UniqueIDs)
}

// Throughput returns examples per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Examples) / r.Elapsed.Seconds()
}

// ranks is the deterministic data-parallel compute core shared by both
// engines: NumTrainers model replicas, each stepped by its own dense
// optimizer, synchronized with a rank-ordered all-reduce so every replica
// stays bit-identical regardless of goroutine scheduling.
type ranks struct {
	n        int
	dim      int
	numCat   int
	numDense int
	models   []model.Model
	opts     []optim.Optimizer
	group    *collective.Group
	in       []chan rankWork
	out      []chan rankResult
	wg       sync.WaitGroup
}

type rankWork struct {
	batch  *data.Batch
	assign []int
	rows   map[uint64][]float32 // id → current row (read-only for ranks)
}

type rankResult struct {
	loss float64        // partial loss, already scaled by 1/B
	dEmb *tensor.Matrix // gradient w.r.t. this rank's gathered rows
	mine []int          // example indices (batch order) this rank computed
}

// newRanks builds the replicas. All replicas share the model seed, so they
// start bit-identical; rank-ordered all-reduce keeps them that way.
func newRanks(cfg *Config) (*ranks, error) {
	mcfg := model.Config{
		NumCategorical: cfg.Spec.NumCategorical,
		NumNumeric:     cfg.Spec.NumNumeric,
		TotalRows:      cfg.Spec.TotalRows(),
		EmbDim:         cfg.Spec.EmbDim,
		Seed:           cfg.Seed,
	}
	r := &ranks{
		n:        cfg.NumTrainers,
		dim:      cfg.Spec.EmbDim,
		numCat:   cfg.Spec.NumCategorical,
		numDense: cfg.Spec.NumNumeric,
		group:    collective.NewGroup(cfg.NumTrainers),
	}
	for i := 0; i < r.n; i++ {
		m, err := model.New(cfg.Model, mcfg)
		if err != nil {
			return nil, err
		}
		opt, err := newOptimizer(cfg.Optimizer, cfg.LR)
		if err != nil {
			return nil, err
		}
		r.models = append(r.models, m)
		r.opts = append(r.opts, opt)
		r.in = append(r.in, make(chan rankWork))
		r.out = append(r.out, make(chan rankResult))
	}
	for i := 0; i < r.n; i++ {
		r.wg.Add(1)
		go r.run(i)
	}
	return r, nil
}

// run is one rank goroutine: it extracts its partition of each batch,
// runs forward/backward, all-reduces the dense gradients across ranks in a
// fixed order, and steps its replica.
func (r *ranks) run(rank int) {
	defer r.wg.Done()
	m := r.models[rank]
	opt := r.opts[rank]
	for w := range r.in[rank] {
		ls := extractLocal(w.batch, w.assign, rank, r.numCat, r.numDense, r.dim, w.rows)
		loss, dEmb := computeLocal(m, ls)
		// Every rank joins every collective (idle ranks contribute zeros)
		// and steps the summed gradient, keeping all replicas bit-identical.
		for _, p := range m.Params() {
			r.group.AllReduceSum(rank, p.Grad)
		}
		opt.Step(m.Params())
		r.out[rank] <- rankResult{loss: loss, dEmb: dEmb, mine: ls.mine}
	}
}

// localSlice is one rank's partition of a batch, extracted in batch order.
// It is the unit of compute shared by the shared-cache ranks and the LRPP
// trainer processes, so both engines run bit-identical math.
type localSlice struct {
	mine   []int // example indices (batch order) this rank computes
	dense  *tensor.Matrix
	emb    *tensor.Matrix
	cats   [][]uint64
	labels []float32
	full   int // full batch size (loss/gradient scaling)
}

// extractLocal gathers rank's examples of b and their embedding rows. The
// dense width is a parameter rather than read off b.Examples[0]: a batch
// that arrived in a worker's PlanMsg is sparse — only this rank's assigned
// examples are populated — and example 0 may be an empty slot.
func extractLocal(b *data.Batch, assign []int, rank, numCat, numDense, dim int, rows map[uint64][]float32) *localSlice {
	var mine []int
	for i, t := range assign {
		if t == rank {
			mine = append(mine, i)
		}
	}
	nLocal := len(mine)
	ls := &localSlice{
		mine:   mine,
		dense:  tensor.NewMatrix(nLocal, numDense),
		emb:    tensor.NewMatrix(nLocal, numCat*dim),
		cats:   make([][]uint64, nLocal),
		labels: make([]float32, nLocal),
		full:   len(b.Examples),
	}
	for k, i := range mine {
		ex := b.Examples[i]
		copy(ls.dense.Data[k*ls.dense.Cols:(k+1)*ls.dense.Cols], ex.Dense)
		for c, id := range ex.Cat {
			copy(ls.emb.Data[k*ls.emb.Cols+c*dim:k*ls.emb.Cols+(c+1)*dim], rows[id])
		}
		ls.cats[k] = ex.Cat
		ls.labels[k] = ex.Label
	}
	return ls
}

// computeLocal runs forward/backward for one rank's slice, accumulating
// dense gradients into the model and returning the partial loss plus the
// gradient w.r.t. the gathered embedding rows (nil for an idle rank).
func computeLocal(m model.Model, ls *localSlice) (float64, *tensor.Matrix) {
	nn.ZeroGrads(m.Params())
	if len(ls.mine) == 0 { // a partitioner may leave a rank idle for a batch
		return 0, nil
	}
	logits := m.Forward(ls.dense, ls.emb, ls.cats)
	// Loss and dlogits are scaled by the FULL batch size, so the
	// sum of per-rank dense gradients equals the full-batch mean
	// gradient the baseline math defines.
	invB := float32(1) / float32(ls.full)
	dlogits := make([]float32, len(ls.mine))
	var loss float64
	for j, z := range logits {
		loss += float64(stableBCE(z, ls.labels[j])) * float64(invB)
		dlogits[j] = (nn.SigmoidScalar(z) - ls.labels[j]) * invB
	}
	return loss, m.Backward(dlogits)
}

// stableBCE is the numerically stable per-example binary cross-entropy
// term max(z,0) − z·y + log1p(exp(−|z|)) (unscaled).
func stableBCE(z, y float32) float32 {
	t := z
	if t < 0 {
		t = 0
	}
	abs := z
	if abs < 0 {
		abs = -abs
	}
	return t - z*y + float32(math.Log1p(math.Exp(float64(-abs))))
}

// step runs one synchronized iteration across all ranks and returns the
// full-batch loss plus the per-ID embedding gradients, accumulated in
// batch-example order so the result is independent of rank scheduling.
func (r *ranks) step(b *data.Batch, assign []int, rows map[uint64][]float32) (float32, map[uint64][]float32) {
	for i := 0; i < r.n; i++ {
		r.in[i] <- rankWork{batch: b, assign: assign, rows: rows}
	}
	results := make([]rankResult, r.n)
	var loss float64
	for i := 0; i < r.n; i++ {
		results[i] = <-r.out[i]
		loss += results[i].loss
	}
	// pos[i] = position of example i inside its rank's sub-batch.
	pos := make([]int, len(b.Examples))
	counts := make([]int, r.n)
	for i, t := range assign {
		pos[i] = counts[t]
		counts[t]++
	}
	grads := make(map[uint64][]float32, len(rows))
	for i, ex := range b.Examples {
		res := results[assign[i]]
		row := res.dEmb.Data[pos[i]*res.dEmb.Cols : (pos[i]+1)*res.dEmb.Cols]
		for c, id := range ex.Cat {
			g, ok := grads[id]
			if !ok {
				g = make([]float32, r.dim)
				grads[id] = g
			}
			collective.AddF32(g, row[c*r.dim:(c+1)*r.dim])
		}
	}
	return float32(loss), grads
}

// close shuts the rank goroutines down.
func (r *ranks) close() {
	for i := 0; i < r.n; i++ {
		close(r.in[i])
	}
	r.wg.Wait()
}

// sortedIDs returns the keys of m in ascending order.
func sortedIDs(m map[uint64][]float32) []uint64 {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
