package train

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// benchSpec is large enough that per-iteration transfers are tens of KB,
// so a bandwidth-limited link makes serialization (not just latency) the
// bottleneck the engines must hide.
func benchSpec() *data.Spec {
	return &data.Spec{
		Name:           "bench",
		NumExamples:    8192,
		NumCategorical: 8,
		NumNumeric:     4,
		TableSizes:     []int64{512, 384, 256, 256, 192, 128, 96, 64},
		EmbDim:         16,
		Dist:           data.NewHotTail(0.05, 0.7, 1.05),
	}
}

func benchConfig(trainers int) Config {
	return Config{
		Spec:            benchSpec(),
		Seed:            42,
		Model:           "wd",
		Optimizer:       "sgd",
		LR:              0.05,
		BatchSize:       128,
		NumBatches:      16,
		LookAhead:       8,
		NumTrainers:     trainers,
		PrefetchWorkers: 2,
	}
}

// The reference fabric: 5ms per server call plus 256 KB/s of per-link
// serialization bandwidth — a congested disaggregated deployment where
// embedding traffic, not compute, is the bottleneck (the regime Bagpipe's
// cache-maintenance offloading targets). The single-cache pipelined engine
// pushes all write-backs through one maintenance stream on one link; the
// LRPP engine splits the same traffic across one link per trainer.
const (
	benchLatency   = 5 * time.Millisecond
	benchBandwidth = 256e3
)

func reportRun(b *testing.B, res *Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput(), "ex/s")
	b.ReportMetric(float64(res.Elapsed.Milliseconds()), "ms/run")
}

// BenchmarkEnginesSimnet5ms compares the three engines over the identical
// workload and simulated 5ms link; the LRPP rows are the multi-trainer
// partitioned caches this PR adds (one simnet transport per trainer — its
// own NIC in the disaggregated deployment — plus a simulated trainer mesh).
func BenchmarkEnginesSimnet5ms(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		cfg := benchConfig(4)
		for i := 0; i < b.N; i++ {
			srv := embed.NewServer(4, cfg.Spec.EmbDim, 7, 0.05)
			res, err := RunBaseline(cfg, transport.NewSimNet(srv, benchLatency, benchBandwidth))
			reportRun(b, res, err)
		}
	})
	b.Run("pipelined-shared-cache", func(b *testing.B) {
		cfg := benchConfig(4)
		for i := 0; i < b.N; i++ {
			srv := embed.NewServer(4, cfg.Spec.EmbDim, 7, 0.05)
			res, err := RunPipelined(cfg, transport.NewSimNet(srv, benchLatency, benchBandwidth))
			reportRun(b, res, err)
		}
	})
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("lrpp-%dtrainers", p), func(b *testing.B) {
			cfg := benchConfig(p)
			for i := 0; i < b.N; i++ {
				srv := embed.NewServer(4, cfg.Spec.EmbDim, 7, 0.05)
				trs := make([]transport.Store, p)
				for j := range trs {
					trs[j] = transport.NewSimNet(srv, benchLatency, benchBandwidth)
				}
				mesh := transport.NewSimMesh(p, time.Millisecond, 100e6)
				res, err := RunLRPP(cfg, trs, mesh)
				reportRun(b, res, err)
			}
		})
	}
}

// runLRPPTCPOnce runs one full loopback-TCP worker configuration: a
// ServeEmbed server process loop, one TCPLink per trainer, and the trainer
// mesh over real sockets — every message through the little-endian codec.
func runLRPPTCPOnce(b *testing.B, cfg Config, p int) *Result {
	b.Helper()
	srv := embed.NewServer(4, cfg.Spec.EmbDim, 7, 0.05)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- transport.ServeEmbed(lis, srv) }()
	mesh, err := transport.NewLoopbackTCPMesh(p)
	if err != nil {
		b.Fatal(err)
	}
	links := make([]*transport.TCPLink, p)
	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for j := 0; j < p; j++ {
		if links[j], err = transport.DialTCPLink(lis.Addr().String(), 5*time.Second); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			results[j], errs[j] = RunLRPPWorker(cfg, j, links[j], mesh)
		}(j)
	}
	wg.Wait()
	mesh.Shutdown()
	links[0].Shutdown()
	for _, l := range links {
		l.Close()
	}
	if err := <-serveDone; err != nil {
		b.Fatal(err)
	}
	for _, e := range errs {
		if e != nil {
			b.Fatal(e)
		}
	}
	return results[0]
}

// BenchmarkLRPPTCP is the measured counterpart to the simnet rows: the
// same workload run as P worker engines over real loopback sockets.
// Loopback has microsecond latency and GB/s bandwidth, so this measures
// the protocol's own cost (framing, codec, syscalls, acked write-backs)
// rather than a congested network; see README's measured-vs-modeled note.
// Runs the default (fused) collective strategy; BenchmarkCollectives
// sweeps the strategies explicitly.
func BenchmarkLRPPTCP(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("%dtrainers", p), func(b *testing.B) {
			cfg := benchConfig(p)
			for i := 0; i < b.N; i++ {
				reportRun(b, runLRPPTCPOnce(b, cfg, p), nil)
			}
		})
	}
}

// BenchmarkCollectives sweeps the mesh all-reduce strategy × trainer count
// over loopback TCP: the perf trajectory of the fused/ring collective work
// (rooted is the PR-3 wire behavior, one frame per dense parameter per
// step). All cells run the identical workload and end in identical bits;
// only the communication schedule differs.
func BenchmarkCollectives(b *testing.B) {
	for _, strategy := range []string{CollRooted, CollFused, CollRing, CollTree} {
		for _, p := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s-%dtrainers", strategy, p), func(b *testing.B) {
				cfg := benchConfig(p)
				cfg.Collective = strategy
				for i := 0; i < b.N; i++ {
					res := runLRPPTCPOnce(b, cfg, p)
					reportRun(b, res, nil)
					b.ReportMetric(float64(res.MeshClasses.CollMsgs)/float64(res.Iters), "collframes/iter")
				}
			})
		}
	}
}

// BenchmarkLRPPServerSweep sweeps embedding-tier width × trainer count
// over the congested simulated fabric. Each server sits behind its own
// 5ms / 256KB/s link — its own NIC in the paper's trainer-node/server-node
// topology — so an S-server tier is S links wide: the sharded store's
// concurrent scatter divides each trainer's serialization load across the
// per-server links, where S=1 pushes all bytes down one.
func BenchmarkLRPPServerSweep(b *testing.B) {
	for _, S := range []int{1, 2, 4} {
		for _, p := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%dservers-%dtrainers", S, p), func(b *testing.B) {
				cfg := benchConfig(p)
				for i := 0; i < b.N; i++ {
					tier := make([]*embed.Server, S)
					for s := range tier {
						tier[s] = embed.NewServer(4, cfg.Spec.EmbDim, 7, 0.05)
					}
					trs := make([]transport.Store, p)
					for j := range trs {
						children := make([]transport.Store, S)
						for s := range children {
							children[s] = transport.NewSimNet(tier[s], benchLatency, benchBandwidth)
						}
						if S == 1 {
							trs[j] = children[0]
						} else {
							trs[j] = transport.NewShardedStore(children)
						}
					}
					mesh := transport.NewSimMesh(p, time.Millisecond, 100e6)
					res, err := RunLRPP(cfg, trs, mesh)
					reportRun(b, res, err)
				}
			})
		}
	}
}

// BenchmarkLRPPInproc measures the engine's own overhead with free
// transports: the cost of plans, merges, and mesh bookkeeping.
func BenchmarkLRPPInproc(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dtrainers", p), func(b *testing.B) {
			cfg := benchConfig(p)
			for i := 0; i < b.N; i++ {
				srv := embed.NewServer(4, cfg.Spec.EmbDim, 7, 0.05)
				res, err := RunLRPP(cfg, newStores(srv, p), nil)
				reportRun(b, res, err)
			}
		})
	}
}
