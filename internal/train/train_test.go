package train

import (
	"testing"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// tinySpec is a dataset small enough that a few dozen batches cover it more
// than once, with the paper's skewed access shape preserved.
func tinySpec() *data.Spec {
	return &data.Spec{
		Name:           "tiny",
		NumExamples:    320,
		NumCategorical: 4,
		NumNumeric:     3,
		TableSizes:     []int64{64, 48, 32, 16},
		EmbDim:         8,
		Dist:           data.NewHotTail(0.05, 0.7, 1.05),
	}
}

func tinyConfig() Config {
	return Config{
		Spec:            tinySpec(),
		Seed:            42,
		Model:           "wd",
		Optimizer:       "sgd",
		LR:              0.05,
		BatchSize:       16,
		NumBatches:      40, // two full passes over tinySpec's 320 examples
		LookAhead:       5,
		NumTrainers:     2,
		PrefetchWorkers: 2,
	}
}

func newServer(spec *data.Spec, shards int) *embed.Server {
	return embed.NewServer(shards, spec.EmbDim, 7, 0.05)
}

// TestPipelinedMatchesBaselineMultiEpoch is the end-to-end consistency
// property: the pipelined cached engine and the no-cache fetch-per-batch
// baseline must leave the embedding servers in bit-identical state (and
// report bit-identical losses) over a run covering the dataset twice.
// Run under -race this also exercises every concurrent stage.
func TestPipelinedMatchesBaselineMultiEpoch(t *testing.T) {
	for _, opt := range []string{"sgd", "adagrad", "adam"} {
		cfg := tinyConfig()
		cfg.Optimizer = opt
		if opt != "sgd" {
			cfg.NumBatches = 20 // keep the stateful-optimizer runs cheap
		}

		srvBase := newServer(cfg.Spec, 3)
		base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
		if err != nil {
			t.Fatalf("%s baseline: %v", opt, err)
		}
		srvPipe := newServer(cfg.Spec, 3)
		pipe, err := RunPipelined(cfg, transport.NewInProcess(srvPipe))
		if err != nil {
			t.Fatalf("%s pipelined: %v", opt, err)
		}

		if d := embed.Diff(srvBase, srvPipe); len(d) != 0 {
			t.Fatalf("%s: embedding state diverged at %d ids (first: %v)", opt, len(d), d[0])
		}
		if base.FirstLoss != pipe.FirstLoss || base.LastLoss != pipe.LastLoss {
			t.Fatalf("%s: losses diverged: baseline %v/%v pipelined %v/%v",
				opt, base.FirstLoss, base.LastLoss, pipe.FirstLoss, pipe.LastLoss)
		}
		if pipe.LastLoss >= pipe.FirstLoss {
			t.Fatalf("%s: model did not learn: first %v last %v", opt, pipe.FirstLoss, pipe.LastLoss)
		}
		if pipe.CachedHits == 0 {
			t.Fatalf("%s: cache never hit — the oracle is not doing its job", opt)
		}
		if pipe.Prefetched >= base.Prefetched {
			t.Fatalf("%s: pipelined fetched %d rows, baseline %d — caching saved nothing",
				opt, pipe.Prefetched, base.Prefetched)
		}
	}
}

// TestLookaheadInvariance: the lookahead depth changes the schedule, not
// the math — any ℒ must land in the same final embedding state.
func TestLookaheadInvariance(t *testing.T) {
	var ref *embed.Server
	for _, L := range []int{1, 3, 16} {
		cfg := tinyConfig()
		cfg.NumBatches = 20
		cfg.LookAhead = L
		srv := newServer(cfg.Spec, 2)
		if _, err := RunPipelined(cfg, transport.NewInProcess(srv)); err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
		if ref == nil {
			ref = srv
			continue
		}
		if d := embed.Diff(ref, srv); len(d) != 0 {
			t.Fatalf("L=%d: state differs from L=1 at ids %v", L, d)
		}
	}
}

// TestPartitionerInvariance: round-robin partitioning re-routes examples
// across ranks; with rank-ordered reduction the result must not change.
func TestRoundRobinPartitioner(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumBatches = 12
	cfg.Partitioner = core.RoundRobin{}
	srvBase := newServer(cfg.Spec, 2)
	if _, err := RunBaseline(cfg, transport.NewInProcess(srvBase)); err != nil {
		t.Fatal(err)
	}
	srvPipe := newServer(cfg.Spec, 2)
	if _, err := RunPipelined(cfg, transport.NewInProcess(srvPipe)); err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, srvPipe); len(d) != 0 {
		t.Fatalf("round-robin: states diverged at %v", d)
	}
}

// TestPipelineOverlapsStages runs the pipelined engine over a simulated
// network slow enough that, if the stages actually run on separate
// goroutines, prefetch and write-back must be observed in flight while the
// trainer computes — and the final state must still match a baseline run
// on a plain in-process transport (the link is a timing model only).
func TestPipelineOverlapsStages(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumBatches = 30
	cfg.NumTrainers = 1
	cfg.LookAhead = 6
	cfg.PrefetchWorkers = 3

	srvPipe := newServer(cfg.Spec, 2)
	pipe, err := RunPipelined(cfg, transport.NewSimNet(srvPipe, 3*time.Millisecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.OverlapPrefetchTrain == 0 {
		t.Fatal("prefetch was never observed overlapping training")
	}
	if pipe.OverlapMaintTrain == 0 {
		t.Fatal("write-back was never observed overlapping training")
	}
	if pipe.Transport.SimulatedDelay == 0 {
		t.Fatal("simnet transport recorded no delay")
	}

	srvBase := newServer(cfg.Spec, 2)
	if _, err := RunBaseline(cfg, transport.NewInProcess(srvBase)); err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, srvPipe); len(d) != 0 {
		t.Fatalf("simnet run diverged from baseline at %v", d)
	}
}

// TestPipelineAccounting checks the conservation laws of the cache:
// every unique id is either a hit or a prefetch, and every prefetched row
// is eventually evicted and written back exactly once.
func TestPipelineAccounting(t *testing.T) {
	cfg := tinyConfig()
	srv := newServer(cfg.Spec, 2)
	tr := transport.NewInProcess(srv)
	res, err := RunPipelined(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedHits+res.Prefetched != res.UniqueIDs {
		t.Fatalf("hits %d + prefetched %d != unique %d", res.CachedHits, res.Prefetched, res.UniqueIDs)
	}
	if res.Evicted != res.Prefetched {
		t.Fatalf("evicted %d != prefetched %d (rows leaked or written twice)", res.Evicted, res.Prefetched)
	}
	if res.Transport.RowsFetched != res.Prefetched {
		t.Fatalf("transport fetched %d rows, oracle prefetched %d", res.Transport.RowsFetched, res.Prefetched)
	}
	if res.Transport.RowsWritten != res.Evicted {
		t.Fatalf("transport wrote %d rows, evicted %d", res.Transport.RowsWritten, res.Evicted)
	}
	if res.PeakCache <= 0 {
		t.Fatal("peak cache occupancy not tracked")
	}
	if hr := res.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("implausible hit rate %v", hr)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestConfigValidation(t *testing.T) {
	good := tinyConfig()
	srv := newServer(good.Spec, 1)
	tr := transport.NewInProcess(srv)

	bad := good
	bad.LookAhead = 0
	if _, err := RunPipelined(bad, tr); err == nil {
		t.Fatal("lookahead 0 accepted")
	}
	bad = good
	bad.Spec = nil
	if _, err := RunBaseline(bad, tr); err == nil {
		t.Fatal("nil spec accepted")
	}
	bad = good
	bad.Optimizer = "lbfgs"
	if _, err := RunBaseline(bad, tr); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	bad = good
	bad.Model = "bert"
	if _, err := RunBaseline(bad, tr); err == nil {
		t.Fatal("unknown model accepted")
	}
	bad = good
	bad.NumTrainers = 0
	if _, err := RunPipelined(bad, tr); err == nil {
		t.Fatal("zero trainers accepted")
	}
}
