package train

import (
	"fmt"
	"math"
	"testing"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// wideSpec is tinySpec at EmbDim 32. The ≥40% sync-byte-cut bar needs a
// width where payload dominates framing: a single-contrib sync entry is
// 8 + 4 + dim·elem bytes, so dim 32 drops 140 → 76 bytes (45.7%) under f16
// while dim 8 would only drop 44 → 28 (36.4%).
func wideSpec() *data.Spec {
	s := tinySpec()
	s.Name = "tiny32"
	s.EmbDim = 32
	return s
}

// TestSyncCompressGradResidualDrains pins the error-feedback contract at
// the unit level: every flushed value is an exact f16 fixed point, the
// carried residual telescopes (flushed + residual conserves the input
// signal), and once a row's gradients stop the residual drains below the
// f16 flush-to-zero threshold 2^-25 — it is never re-lost, and never grows.
func TestSyncCompressGradResidualDrains(t *testing.T) {
	const dim, owner, id = 8, 3, uint64(42)
	ef := newEFState(dim)

	var sumIn, sumOut [dim]float64
	// A few rounds of "real" gradients whose values all carry f16 rounding
	// error (odd multiples of 1e-4 are not f16-representable).
	for round := 0; round < 4; round++ {
		g := make([]float32, dim)
		for k := range g {
			g[k] = 1e-4 * float32(2*k+1) * float32(round+1)
			sumIn[k] += float64(g[k])
		}
		ef.compress(owner, id, []contribEntry{{Example: round, Grad: g}})
		for k, x := range g {
			if q := transport.F32FromF16(transport.F16FromF32(x)); q != x {
				t.Fatalf("round %d: flushed g[%d]=%v is not an f16 fixed point (re-quantizes to %v)", round, k, x, q)
			}
			sumOut[k] += float64(x)
		}
	}
	res := ef.res[owner][id]
	if res == nil {
		t.Fatal("no residual carried for the compressed row")
	}
	var anyResidual bool
	for _, v := range res {
		if v != 0 {
			anyResidual = true
		}
	}
	if !anyResidual {
		t.Fatal("rounding non-representable gradients left a zero residual; error feedback is not accumulating")
	}
	// Telescoping: Σ flushed = Σ input − carried residual, up to f32
	// accumulation noise.
	for k := range sumIn {
		if d := math.Abs(sumOut[k] + float64(res[k]) - sumIn[k]); d > 1e-6 {
			t.Fatalf("element %d: flushed+residual−input = %g; error feedback lost signal", k, d)
		}
	}

	// The row goes cold: zero gradients from here on. The residual is
	// injected, quantized, and shrinks geometrically until it is at or below
	// 2^-25, where f16 flushes to zero and the flush stream becomes exactly
	// zero with the leftover parked in the residual forever.
	var lastFlush []float32
	for round := 0; round < 8; round++ {
		g := make([]float32, dim)
		ef.compress(owner, id, []contribEntry{{Example: round, Grad: g}})
		lastFlush = g
	}
	for k, v := range ef.res[owner][id] {
		if math.Abs(float64(v)) > 0x1p-25 {
			t.Fatalf("residual[%d] = %v did not drain below the f16 flush-to-zero threshold 2^-25", k, v)
		}
	}
	for k, v := range lastFlush {
		if v != 0 {
			t.Fatalf("drained row still flushed g[%d] = %v, want exactly 0", k, v)
		}
	}

	// Injection point: with multiple contributions for one (owner,id) the
	// residual lands in entry 0 only — the owner folds additively, so the
	// merged gradient still absorbs it exactly once.
	ef2 := newEFState(2)
	ef2.compress(0, 7, []contribEntry{
		{Example: 0, Grad: []float32{1e-4, 0}},
		{Example: 1, Grad: []float32{3e-4, 0}},
	})
	ef2.compress(0, 7, []contribEntry{
		{Example: 0, Grad: []float32{0, 0}},
		{Example: 1, Grad: []float32{0, 0}},
	})
	// Second flush: entry 0 carries f16(residual), entry 1 stayed all-zero.
	if es := ef2.res[0][7]; es == nil {
		t.Fatal("two-entry compress dropped the residual map")
	}
	if ef2.res[0][7][1] != 0 {
		t.Fatalf("untouched element grew a residual: %v", ef2.res[0][7][1])
	}
}

// TestSyncCompressGradByteCut runs the full LRPP engine with and without
// -sync-compress-grad on an EmbDim-32 model and checks the accounting the
// flag exists for: the sync traffic class sheds ≥40% of its bytes at an
// identical frame count, while the loss curve stays within f16-noise of the
// lossless run.
func TestSyncCompressGradByteCut(t *testing.T) {
	cfg := tinyConfig()
	cfg.Spec = wideSpec()
	cfg.NumTrainers = 2
	cfg.NumBatches = 20

	off := cfg
	srvOff := newServer(cfg.Spec, 3)
	resOff, err := RunLRPP(off, newStores(srvOff, 2), nil)
	if err != nil {
		t.Fatalf("lossless run: %v", err)
	}

	on := cfg
	on.SyncCompressGrad = true
	srvOn := newServer(cfg.Spec, 3)
	resOn, err := RunLRPP(on, newStores(srvOn, 2), nil)
	if err != nil {
		t.Fatalf("compressed run: %v", err)
	}

	if resOn.SyncEntries == 0 || resOn.MeshClasses.SyncMsgs == 0 {
		t.Fatal("compressed run flushed no sync traffic; the path was never exercised")
	}
	if resOn.MeshClasses.SyncMsgs != resOff.MeshClasses.SyncMsgs {
		t.Fatalf("compression changed the sync frame count: %d vs %d",
			resOn.MeshClasses.SyncMsgs, resOff.MeshClasses.SyncMsgs)
	}
	if resOn.MeshClasses.SyncBytes > resOff.MeshClasses.SyncBytes*6/10 {
		t.Fatalf("compressed sync bytes %d not ≤ 60%% of lossless %d (cut %.1f%%)",
			resOn.MeshClasses.SyncBytes, resOff.MeshClasses.SyncBytes,
			100*(1-float64(resOn.MeshClasses.SyncBytes)/float64(resOff.MeshClasses.SyncBytes)))
	}
	if d := resOn.LastLoss - resOff.LastLoss; d > 0.05 || d < -0.05 {
		t.Fatalf("compressed last loss %v drifted from lossless %v", resOn.LastLoss, resOff.LastLoss)
	}
}

// TestSyncCompressGradDeterministicAcrossFabrics: the compressed mode is
// lossy relative to the lossless baseline but must remain a deterministic
// function of the run — quantization happens at the sender in flush-pass
// order, the wire is lossless with respect to the f16 values, and error
// feedback is per (owner,row) state independent of transport timing. So
// every fabric (instant in-process, reordering simulated links, real TCP)
// and the single-process engine must leave bit-identical embedding tiers.
func TestSyncCompressGradDeterministicAcrossFabrics(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 2
	cfg.NumBatches = 20
	cfg.SyncCompressGrad = true

	srvRef := newServer(cfg.Spec, 3)
	if _, err := RunLRPP(cfg, newStores(srvRef, 2), nil); err != nil {
		t.Fatalf("single-process compressed run: %v", err)
	}

	for _, meshName := range []string{"inproc", "sim", "tcp"} {
		t.Run(meshName, func(t *testing.T) {
			var mesh transport.Mesh
			switch meshName {
			case "inproc":
				mesh = transport.NewInprocMesh(cfg.NumTrainers)
			case "sim":
				mesh = transport.NewSimMesh(cfg.NumTrainers, 200*time.Microsecond, 20e6)
			case "tcp":
				lb, err := transport.NewLoopbackTCPMesh(cfg.NumTrainers)
				if err != nil {
					t.Fatal(err)
				}
				defer lb.Shutdown()
				mesh = lb
			}
			srv := newServer(cfg.Spec, 3)
			results := runWorkers(t, cfg, newStores(srv, cfg.NumTrainers), mesh)
			if d := embed.Diff(srvRef, srv); len(d) != 0 {
				t.Fatalf("compressed run over %s diverged from the single-process run at %d ids (first: %v)",
					meshName, len(d), d[0])
			}
			for p, res := range results {
				if res.MeshClasses.SyncMsgs == 0 {
					t.Fatalf("worker %d sent no sync frames (%s)", p, fmt.Sprint(meshName))
				}
			}
		})
	}
}
