package train

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/collective"
	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/model"
	"bagpipe/internal/optim"
	"bagpipe/internal/transport"
)

// LRPPHooks receives engine events for invariant auditing by the
// differential and fuzz harness. Callbacks run synchronously on engine
// goroutines (several concurrently — implementations must synchronize
// themselves) and must not call back into the engine. All hooks are
// optional; a nil LRPPHooks (the production default) costs nothing.
type LRPPHooks struct {
	// OnPrefetch fires on trainer's dispatcher immediately before the ids
	// are fetched from the embedding servers.
	OnPrefetch func(trainer, iter int, ids []uint64)
	// OnInsert fires as a fetched row enters the owner's cache partition.
	OnInsert func(trainer, iter int, id uint64)
	// OnSyncApply fires as iteration iter's merged gradient lands on the
	// owner's cached row.
	OnSyncApply func(owner, iter int, id uint64)
	// OnEvict fires as the row leaves the owner's partition (TTL expiry).
	OnEvict func(owner, iter int, id uint64)
	// OnWriteBack fires after the owner wrote iteration iter's dirty
	// evictions to the embedding servers.
	OnWriteBack func(owner, iter int, ids []uint64)
	// OnRetire fires when iteration iter is fully retired on the owner
	// (write-backs done, lookahead token released). Strictly in iteration
	// order per trainer.
	OnRetire func(owner, iter int)
}

// contribEntry is one example's gradient for one embedding row — the unit
// the owners merge. The Example field is the example's index in the full
// batch, so owners can re-fold contributions in exact batch order no matter
// which trainer computed them or in which order the mesh delivered them.
// It is the transport wire type directly: the engine's mesh payloads
// (transport.ReplicaMsg, transport.SyncMsg, and in worker mode
// transport.PlanMsg / transport.CollMsg) are identical over in-process,
// simulated, and TCP fabrics — only the TCP mesh additionally runs them
// through the little-endian codec.
type contribEntry = transport.Contrib

// syncElem is the declared per-gradient-element wire cost: 4 bytes for
// float32 entries, 2 once -sync-compress-grad quantized the flush to f16.
func syncElem(f16 bool) int64 {
	if f16 {
		return 2
	}
	return 4
}

func syncMsgBytes(entries map[uint64][]contribEntry, dim int, elem int64) int64 {
	b := int64(8) // iteration header
	for _, es := range entries {
		b += 8 + int64(len(es))*(4+elem*int64(dim))
	}
	return b
}

// syncBatchBytes is the declared wire size of one coalesced sync frame:
// a flush count plus one SyncMsg body per iteration table.
func syncBatchBytes(flushes []transport.SyncMsg, dim int) int64 {
	b := int64(4)
	for _, f := range flushes {
		b += syncMsgBytes(f.Entries, dim, syncElem(f.F16))
	}
	return b
}

// replicaMsgBytes models the wire size of one replica push; quantized rows
// cost 2 bytes per element instead of 4.
func replicaMsgBytes(rows map[uint64][]float32, dim int, quant bool) int64 {
	elem := int64(4)
	if quant {
		elem = 2
	}
	return 8 + int64(len(rows))*(8+elem*int64(dim))
}

// lrppColl is the collective layer a trainer steps its dense gradients and
// loss through, as one fused round per iteration: the in-process
// collective.Group when all trainers share an address space, or the
// mesh-based reducer (meshColl, meshcoll.go) when each trainer is its own
// process. Every implementation folds per segment in rank order from zero,
// so the result bits are identical.
type lrppColl = collective.Collective

// Mesh traffic classes for per-phase accounting (Result.MeshClasses).
const (
	classReplica = iota
	classSync
	classColl
	classPlan
	numClasses
)

// lrppEngine is the per-process engine state: shared by all trainers of
// the run in single-process mode, owned by the one local trainer in worker
// mode.
type lrppEngine struct {
	cfg    *Config
	dim    int
	P, L   int
	lag    int // delayed-sync flush lag in iterations (0 or 1)
	mesh   transport.Mesh
	coll   lrppColl
	hooks  *LRPPHooks
	prog   *Progress
	worker bool // each trainer is its own process; record losses locally

	losses []float64 // full-batch loss per iteration (written by trainer 0)

	replicaRows    atomic.Int64
	syncEntries    atomic.Int64
	urgentFlushes  atomic.Int64
	delayedFlushes atomic.Int64
	activeTrain    atomic.Int64
	activePrefetch atomic.Int64
	activeMaint    atomic.Int64
	overlapPT      atomic.Int64
	overlapMT      atomic.Int64

	// Per-phase mesh traffic sent by this process (frames + declared
	// bytes), indexed by class.
	classMsgs  [numClasses]atomic.Int64
	classBytes [numClasses]atomic.Int64
}

// countSend charges one sent mesh frame to its traffic class.
func (eng *lrppEngine) countSend(class int, bytes int64) {
	eng.classMsgs[class].Add(1)
	eng.classBytes[class].Add(bytes)
}

// rankBits is a trainer-set bitmask. The LRPP engine caps at 64 ranks
// (newLRPPTrainer enforces it), which lets the per-(id, iteration)
// contributor bookkeeping and the per-iteration replica-arrival set live in
// one machine word each instead of a map allocated per merge.
type rankBits uint64

func (b rankBits) has(r int) bool { return b&(1<<uint(r)) != 0 }
func (b *rankBits) set(r int)     { *b |= 1 << uint(r) }

// clearBit drops rank r's bit and reports whether it was set.
func (b *rankBits) clearBit(r int) bool {
	was := b.has(r)
	*b &^= 1 << uint(r)
	return was
}

// idMergeQueue sequences one owned id's pending per-iteration merges.
// Iterations are appended in order by the owner's registration and applied
// strictly in that order, so the row replays the exact update sequence the
// single-process engines produce. Queues and their iterMerge records are
// pooled on the trainer: an id's queue returns to the free list when its
// last merge drains, so the steady state recycles instead of allocating.
type idMergeQueue struct {
	iters  []int
	byIter map[int]*iterMerge
}

// iterMerge accumulates one (id, iteration)'s contributions until every
// expected trainer has reported (expectN bits still set in expect).
type iterMerge struct {
	expect  rankBits
	expectN int
	entries []contribEntry
}

// flushItem hands one iteration's remote contributions to the delayed-sync
// flusher, split by criticality.
type flushItem struct {
	iter   int
	urgent map[int]map[uint64][]contribEntry // owner → id → entries; needed next iter
	lazy   map[int]map[uint64][]contribEntry // deferrable off the critical path
}

// lrppWork is one iteration moving through a trainer's private pipeline.
type lrppWork struct {
	plan *core.TrainerPlan
	rows chan [][]float32 // buffered(1); the prefetch goroutine delivers once
}

// lrppTrainer is one trainer process: a model replica, the owned LRPP
// cache partition, and the goroutines serving it.
type lrppTrainer struct {
	p   int
	eng *lrppEngine

	model  model.Model
	opt    optim.Optimizer
	rowOpt interface {
		optim.Optimizer
		optim.RowOptimizer
	}
	tr transport.Store
	ep transport.Endpoint

	// Worker mode only (nil otherwise): the mesh-based collective reducer
	// and the plan resequencer fed by the receiver goroutine.
	mcoll   *meshColl
	planBox *planSeq

	// mu guards everything below: the cache partition is touched by the
	// trainer loop (insert/read) and the sync receiver (update/evict).
	mu   sync.Mutex
	cond *sync.Cond

	cache       *core.Cache
	merges      map[uint64]*idMergeQueue
	expiring    map[int]int                  // iter → owned rows still to evict
	evbatch     map[int][]core.Eviction      // iter → collected write-backs
	computeDone map[int]bool                 // iter → trainer loop finished it
	emitted     map[int]bool                 // iter → eviction batch sent to maintenance
	repRows     map[int]map[uint64][]float32 // iter → replica rows received (pooled maps/rows, owned here)
	repFrom     map[int]rankBits             // iter → owners heard from

	// Hot-path scratch, all guarded by mu (or touched only by the single
	// trainer-loop goroutine where noted): the arena rows and pooled maps
	// every fetch/replica/write-back recycles through, the shared gradient
	// fold buffer, the reusable gather map (trainer loop only), and the
	// merge-record and eviction-batch free lists.
	arena    *transport.RowArena
	foldBuf  []float32
	gathered map[uint64][]float32
	freeIM   []*iterMerge
	freeQ    []*idMergeQueue
	evFree   [][]core.Eviction

	evictedRows int64

	flushQ  chan flushItem
	maintCh chan maintJob
	tokens  chan struct{}
	recvWG  sync.WaitGroup
	flushWG sync.WaitGroup
	maintWG sync.WaitGroup
}

// RunLRPP trains with the multi-trainer LRPP engine (§3.3 of the paper):
// cfg.NumTrainers independent trainer processes, each owning the cache
// partition of the ids hashing to it (core.OwnerOf) and reaching the
// embedding tier over its own store trs[p] (one server or an S-way
// ShardedStore — the engine cannot tell). Rows a non-owner reads
// are pushed to it as per-iteration replicas over the mesh; gradient
// updates to remote-owned rows are queued and flushed by a background
// delayed-sync goroutine — batched per owner, contributions the next
// iteration depends on flushed first, the rest one iteration later — so no
// cross-trainer synchronization sits on the forward/backward critical
// path. Each owner merges contributions in exact batch-example order and
// applies one update per (row, iteration), which keeps the run
// bit-identical to RunBaseline over the same Config: the differential
// property the tests certify for every trainer count and partitioner.
//
// Consistency keeps the paper's ℒ-window shape, enforced per partition: a
// trainer's prefetch for iteration x is issued only once its own iteration
// x−ℒ fully retired (all write-backs landed). Ownership is disjoint, so
// per-trainer windows compose into the global guarantee.
//
// mesh may be nil, which wires the trainers over an in-process mesh.
func RunLRPP(cfg Config, trs []transport.Store, mesh transport.Mesh) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LookAhead < 1 {
		return nil, fmt.Errorf("train: LRPP engine needs LookAhead >= 1, got %d", cfg.LookAhead)
	}
	P := cfg.NumTrainers
	if len(trs) != P {
		return nil, fmt.Errorf("train: %d trainers need %d stores, got %d", P, P, len(trs))
	}
	if mesh == nil {
		mesh = transport.NewInprocMesh(P)
	}
	if mesh.Size() != P {
		return nil, fmt.Errorf("train: mesh has %d endpoints for %d trainers", mesh.Size(), P)
	}

	eng := newLRPPEngine(&cfg, mesh, collective.NewGroup(P))
	trainers := make([]*lrppTrainer, P)
	for p := 0; p < P; p++ {
		t, err := newLRPPTrainer(eng, p, trs[p], mesh.Endpoint(p))
		if err != nil {
			return nil, err
		}
		trainers[p] = t
	}

	// Oracle: one lookahead walker emits per-trainer plans in iteration
	// order.
	gen := data.NewGenerator(cfg.Spec, cfg.Seed)
	oracle := core.NewOracle(core.NewGeneratorSource(gen, cfg.BatchSize, cfg.NumBatches), cfg.LookAhead, P)
	oracle.Partitioner = cfg.Partitioner
	stats := make([]core.IterStats, 0, cfg.NumBatches)
	planChs := make([]chan *core.TrainerPlan, P)
	for p := range planChs {
		planChs[p] = make(chan *core.TrainerPlan, cfg.LookAhead)
	}
	go func() {
		defer func() {
			for _, ch := range planChs {
				close(ch)
			}
		}()
		for {
			d, ok := oracle.Next()
			if !ok {
				return
			}
			stats = append(stats, d.Stats(oracle.CacheOccupancy()))
			for p, pl := range d.SplitPlans(P) {
				planChs[p] <- pl
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(t *lrppTrainer) {
			defer wg.Done()
			t.run(planChs[t.p])
		}(trainers[p])
	}
	wg.Wait()
	mesh.Quiesce()
	return eng.collectResult(trainers, stats, start)
}

// newLRPPEngine builds the per-process engine state.
func newLRPPEngine(cfg *Config, mesh transport.Mesh, coll lrppColl) *lrppEngine {
	eng := &lrppEngine{
		cfg:    cfg,
		dim:    cfg.Spec.EmbDim,
		P:      cfg.NumTrainers,
		L:      cfg.LookAhead,
		mesh:   mesh,
		coll:   coll,
		hooks:  cfg.Hooks,
		prog:   cfg.Progress,
		losses: make([]float64, cfg.NumBatches),
	}
	if !cfg.SyncEager && cfg.LookAhead > 1 {
		eng.lag = 1
	}
	return eng
}

// newLRPPTrainer builds trainer p: its model replica, optimizers, cache
// partition, and pipeline plumbing.
func newLRPPTrainer(eng *lrppEngine, p int, tr transport.Store, ep transport.Endpoint) (*lrppTrainer, error) {
	cfg := eng.cfg
	if eng.P > 64 {
		return nil, fmt.Errorf("train: LRPP engine supports at most 64 trainers (rankBits), got %d", eng.P)
	}
	mcfg := model.Config{
		NumCategorical: cfg.Spec.NumCategorical,
		NumNumeric:     cfg.Spec.NumNumeric,
		TotalRows:      cfg.Spec.TotalRows(),
		EmbDim:         cfg.Spec.EmbDim,
		Seed:           cfg.Seed,
	}
	m, err := model.New(cfg.Model, mcfg)
	if err != nil {
		return nil, err
	}
	opt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	rowOpt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	t := &lrppTrainer{
		p: p, eng: eng, model: m, opt: opt, rowOpt: rowOpt,
		tr: tr, ep: ep,
		cache:       core.NewCache(cfg.Spec.EmbDim),
		merges:      make(map[uint64]*idMergeQueue),
		expiring:    make(map[int]int),
		evbatch:     make(map[int][]core.Eviction),
		computeDone: make(map[int]bool),
		emitted:     make(map[int]bool),
		repRows:     make(map[int]map[uint64][]float32),
		repFrom:     make(map[int]rankBits),
		arena:       transport.Rows(cfg.Spec.EmbDim),
		foldBuf:     make([]float32, cfg.Spec.EmbDim),
		gathered:    make(map[uint64][]float32),
		flushQ:      make(chan flushItem, cfg.NumBatches+1),
		maintCh:     make(chan maintJob, cfg.NumBatches+1),
		tokens:      make(chan struct{}, cfg.LookAhead),
	}
	t.cond = sync.NewCond(&t.mu)
	for i := 0; i < cfg.LookAhead; i++ {
		t.tokens <- struct{}{}
	}
	return t, nil
}

// getMerge pops a reset merge record from the free list. Caller holds t.mu.
func (t *lrppTrainer) getMerge() *iterMerge {
	if n := len(t.freeIM); n > 0 {
		im := t.freeIM[n-1]
		t.freeIM[n-1] = nil
		t.freeIM = t.freeIM[:n-1]
		return im
	}
	return &iterMerge{}
}

// putMerge recycles an applied merge record, dropping its gradient
// references so the pooled record does not pin backward-pass buffers.
// Caller holds t.mu.
func (t *lrppTrainer) putMerge(im *iterMerge) {
	clear(im.entries)
	im.entries = im.entries[:0]
	im.expect, im.expectN = 0, 0
	t.freeIM = append(t.freeIM, im)
}

// getQueue pops an empty id merge queue from the free list. Caller holds
// t.mu.
func (t *lrppTrainer) getQueue() *idMergeQueue {
	if n := len(t.freeQ); n > 0 {
		q := t.freeQ[n-1]
		t.freeQ[n-1] = nil
		t.freeQ = t.freeQ[:n-1]
		return q
	}
	return &idMergeQueue{byIter: make(map[int]*iterMerge, 2)}
}

// putQueue recycles a drained id merge queue (its byIter map is already
// empty — every applied iteration deletes its record). Caller holds t.mu.
func (t *lrppTrainer) putQueue(q *idMergeQueue) {
	q.iters = q.iters[:0]
	t.freeQ = append(t.freeQ, q)
}

// collectResult assembles the run summary from the trainers this process
// hosted (all of them in single-process mode, exactly one in worker mode)
// plus the oracle stats if the oracle ran here.
func (eng *lrppEngine) collectResult(trainers []*lrppTrainer, stats []core.IterStats, start time.Time) (*Result, error) {
	cfg := eng.cfg
	res := &Result{Engine: "lrpp", Iters: cfg.NumBatches}
	var lossSum float64
	for i, l := range eng.losses {
		if i == 0 {
			res.FirstLoss = float32(l)
		}
		res.LastLoss = float32(l)
		lossSum += l
	}
	res.AvgLoss = lossSum / float64(cfg.NumBatches)
	for _, st := range stats {
		res.UniqueIDs += int64(st.UniqueIDs)
		res.CachedHits += int64(st.CachedHits)
		res.Prefetched += int64(st.Prefetched)
	}
	for _, t := range trainers {
		if n := t.cache.Len(); n != 0 {
			return nil, fmt.Errorf("train: trainer %d still caches %d rows after the final iteration", t.p, n)
		}
		res.Evicted += t.evictedRows
		res.PeakCache += t.cache.PeakRows()
		res.Transport.Add(t.tr.Stats())
		addTierHealth(res, t.tr)
		for i, st := range t.tr.ServerStats() {
			if i == len(res.StoreServers) {
				res.StoreServers = append(res.StoreServers, transport.Stats{})
			}
			res.StoreServers[i].Add(st)
		}
	}
	res.Examples = int64(cfg.NumBatches) * int64(cfg.BatchSize)
	res.Elapsed = time.Since(start)
	res.ReplicaRows = eng.replicaRows.Load()
	res.SyncEntries = eng.syncEntries.Load()
	res.UrgentFlushes = eng.urgentFlushes.Load()
	res.DelayedFlushes = eng.delayedFlushes.Load()
	res.OverlapPrefetchTrain = eng.overlapPT.Load()
	res.OverlapMaintTrain = eng.overlapMT.Load()
	res.Mesh = eng.mesh.Stats()
	res.MeshClasses = MeshTraffic{
		ReplicaMsgs: eng.classMsgs[classReplica].Load(), ReplicaBytes: eng.classBytes[classReplica].Load(),
		SyncMsgs: eng.classMsgs[classSync].Load(), SyncBytes: eng.classBytes[classSync].Load(),
		CollMsgs: eng.classMsgs[classColl].Load(), CollBytes: eng.classBytes[classColl].Load(),
		PlanMsgs: eng.classMsgs[classPlan].Load(), PlanBytes: eng.classBytes[classPlan].Load(),
	}
	return res, nil
}

// run is one trainer process end to end: start the service goroutines,
// drive the iteration loop, then drain and tear everything down.
func (t *lrppTrainer) run(planCh <-chan *core.TrainerPlan) {
	workCh := t.startDispatcher(planCh)
	t.startReceiver()
	t.startFlusher()
	t.startMaintenance()

	for w := range workCh {
		t.iterate(w)
	}

	// Teardown: flush the delayed-sync backlog, wait for every merge and
	// eviction this partition owes (fed by the other trainers' final
	// flushes), retire the remaining iterations, then close the endpoint.
	close(t.flushQ)
	t.flushWG.Wait()
	t.mu.Lock()
	for len(t.merges) > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
	close(t.maintCh)
	t.maintWG.Wait()
	t.ep.Close()
	t.recvWG.Wait()
}

// startDispatcher runs the per-trainer prefetch front end: it admits one
// iteration per lookahead token (the ℒ-deep consistency window over this
// partition) and fetches its owned misses concurrently with earlier
// iterations' compute, delivering rows through a future.
func (t *lrppTrainer) startDispatcher(planCh <-chan *core.TrainerPlan) <-chan *lrppWork {
	eng := t.eng
	workCh := make(chan *lrppWork, eng.L)
	go func() {
		defer close(workCh)
		for pl := range planCh {
			<-t.tokens
			w := &lrppWork{plan: pl, rows: make(chan [][]float32, 1)}
			workCh <- w
			go func(pl *core.TrainerPlan, w *lrppWork) {
				var rows [][]float32
				if len(pl.Prefetch) > 0 {
					if eng.hooks != nil && eng.hooks.OnPrefetch != nil {
						eng.hooks.OnPrefetch(t.p, pl.Dec.Iter, pl.Prefetch)
					}
					eng.activePrefetch.Add(1)
					if eng.activeTrain.Load() > 0 {
						eng.overlapPT.Add(1)
					}
					rows = t.tr.Fetch(pl.Prefetch)
					eng.activePrefetch.Add(-1)
				}
				w.rows <- rows
			}(pl, w)
		}
	}()
	return workCh
}

// startReceiver drains the mesh endpoint: replica pushes feed the per-
// iteration replica box, sync flushes feed the gradient merges. Both are
// keyed by (id, iteration), so arbitrary mesh reordering is harmless.
func (t *lrppTrainer) startReceiver() {
	t.recvWG.Add(1)
	go func() {
		defer t.recvWG.Done()
		for {
			msg, ok := t.ep.Recv()
			if !ok {
				return
			}
			switch pl := msg.Payload.(type) {
			case transport.ReplicaMsg:
				// The push transfers ownership of the rows map and its row
				// buffers (pooled at the sender in-process, decoded into the
				// same pools by the TCP codec): adopt the first sender's map
				// wholesale, merge later senders' rows into it and recycle
				// their emptied maps. iterate's step 5 returns everything
				// once the rows are consumed.
				t.mu.Lock()
				if have := t.repRows[pl.Iter]; have == nil {
					t.repRows[pl.Iter] = pl.Rows
				} else {
					for id, row := range pl.Rows {
						have[id] = row
					}
					transport.PutRowMap(pl.Rows)
				}
				rb := t.repFrom[pl.Iter]
				rb.set(msg.From)
				t.repFrom[pl.Iter] = rb
				t.mu.Unlock()
				t.cond.Broadcast()
			case transport.SyncMsg:
				t.mu.Lock()
				for id, es := range pl.Entries {
					t.depositLocked(id, pl.Iter, msg.From, es)
				}
				t.mu.Unlock()
				t.cond.Broadcast()
			case transport.SyncBatchMsg:
				// One coalesced frame, several iterations' flushes: deposits
				// are keyed by (id, iteration), so the tables unpack exactly
				// like the per-iteration frames they replace.
				t.mu.Lock()
				for _, f := range pl.Flushes {
					for id, es := range f.Entries {
						t.depositLocked(id, f.Iter, msg.From, es)
					}
				}
				t.mu.Unlock()
				t.cond.Broadcast()
			case transport.PlanMsg:
				// Worker mode only: the rank-0 process streams oracle plans.
				if t.planBox == nil {
					panic(fmt.Sprintf("train: trainer %d received a plan outside worker mode", t.p))
				}
				t.planBox.put(pl.Plan)
			case transport.CollMsg:
				// Worker mode only: collective contributions and results.
				if t.mcoll == nil {
					panic(fmt.Sprintf("train: trainer %d received a collective message outside worker mode", t.p))
				}
				t.mcoll.deliver(msg.From, pl)
			case transport.FusedCollMsg:
				// Worker mode only: fused contributions; under the ring
				// strategy delivery also relays the frame to the next rank.
				if t.mcoll == nil {
					panic(fmt.Sprintf("train: trainer %d received a collective message outside worker mode", t.p))
				}
				t.mcoll.deliverFused(pl, msg.Bytes)
			default:
				panic(fmt.Sprintf("train: trainer %d received unknown mesh payload %T", t.p, msg.Payload))
			}
		}
	}()
}

// startFlusher runs the delayed-sync sender: per iteration it flushes
// critical contributions (rows the next iteration reads) immediately and
// holds the rest back lag iterations. Everything one flush pass owes one
// owner — typically iteration x's urgent contributions plus iteration
// x−lag's deferred ones — is coalesced into a single SyncBatchMsg frame
// with a per-iteration entry table, instead of one frame per (iteration,
// criticality), so the trainer loop never blocks on cross-trainer traffic
// and the fabric sees one frame per owner per pass.
func (t *lrppTrainer) startFlusher() {
	eng := t.eng
	t.flushWG.Add(1)
	go func() {
		defer t.flushWG.Done()
		// With -sync-compress-grad the flusher is the quantization point:
		// every outgoing contribution is rounded through float16 here, after
		// injecting the row's carried rounding error (error feedback), so
		// all fabrics ship the identical quantized values and the wire
		// encoding (2 bytes/element on TCP) is lossless with respect to them.
		var ef *efState
		if eng.cfg.SyncCompressGrad {
			ef = newEFState(eng.dim)
		}
		// pass accumulates one flush pass's per-owner iteration tables; the
		// urgent/delayed counters keep their historical granularity (one
		// per non-empty per-owner table) even though the frames coalesce.
		pass := make(map[int][]transport.SyncMsg)
		collect := func(buckets map[int]map[uint64][]contribEntry, iter int, urgent bool) {
			for o, entries := range buckets {
				if len(entries) == 0 {
					continue
				}
				if ef != nil {
					for id, es := range entries {
						ef.compress(o, id, es)
					}
				}
				pass[o] = append(pass[o], transport.SyncMsg{Iter: iter, F16: ef != nil, Entries: entries})
				if urgent {
					eng.urgentFlushes.Add(1)
				} else {
					eng.delayedFlushes.Add(1)
				}
			}
		}
		flush := func() {
			owners := make([]int, 0, len(pass))
			for o := range pass {
				owners = append(owners, o)
			}
			slices.Sort(owners)
			for _, o := range owners {
				flushes := pass[o]
				b := syncBatchBytes(flushes, eng.dim)
				t.ep.Send(o, b, transport.SyncBatchMsg{Flushes: flushes})
				eng.countSend(classSync, b)
				delete(pass, o)
			}
		}
		var backlog []flushItem
		for it := range t.flushQ {
			collect(it.urgent, it.iter, true)
			backlog = append(backlog, it)
			for len(backlog) > 0 && backlog[0].iter <= it.iter-eng.lag {
				collect(backlog[0].lazy, backlog[0].iter, false)
				backlog = backlog[1:]
			}
			flush()
		}
		for _, it := range backlog {
			collect(it.lazy, it.iter, false)
		}
		flush()
	}()
}

// startMaintenance runs the background write-back stage. Eviction batches
// may complete out of iteration order (a delayed contribution can finish a
// newer iteration's last merge first); retirement is re-sequenced so
// lookahead tokens release strictly in order — the ℒ-window bookkeeping
// stays exact.
func (t *lrppTrainer) startMaintenance() {
	eng := t.eng
	t.maintWG.Add(1)
	go func() {
		defer t.maintWG.Done()
		parked := make(map[int][]core.Eviction)
		done := make(map[int]bool)
		next := 0
		// Write-back scratch reused across batches: callees treat the id and
		// row slices as call-scoped (transports copy or encode, the hook only
		// iterates), so one pair serves the whole run.
		var (
			ids  []uint64
			rows [][]float32
		)
		for job := range t.maintCh {
			parked[job.iter] = job.evictions
			done[job.iter] = true
			for done[next] {
				if evs := parked[next]; len(evs) > 0 {
					eng.activeMaint.Add(1)
					if eng.activeTrain.Load() > 0 {
						eng.overlapMT.Add(1)
					}
					ids, rows = ids[:0], rows[:0]
					for _, ev := range evs {
						ids = append(ids, ev.ID)
						rows = append(rows, ev.Row)
					}
					t.tr.Write(ids, rows)
					eng.activeMaint.Add(-1)
					// Every evicted row was fetched through the arena-backed
					// transports and adopted by the cache; the durable
					// write-back is its single recycle point.
					t.arena.PutN(rows)
					if eng.hooks != nil && eng.hooks.OnWriteBack != nil {
						eng.hooks.OnWriteBack(t.p, next, ids)
					}
					t.mu.Lock()
					clear(evs)
					t.evFree = append(t.evFree, evs[:0])
					t.mu.Unlock()
				}
				if eng.hooks != nil && eng.hooks.OnRetire != nil {
					eng.hooks.OnRetire(t.p, next)
				}
				if eng.prog != nil {
					eng.prog.noteRetire(t.p, next)
				}
				t.tokens <- struct{}{}
				delete(parked, next)
				delete(done, next)
				next++
			}
		}
	}()
}

// iterate is one iteration of the trainer loop.
func (t *lrppTrainer) iterate(w *lrppWork) {
	eng := t.eng
	pl := w.plan
	d := pl.Dec
	x := d.Iter

	// 1. Register this iteration's merge obligations and eviction counts
	// before joining any collective: contributions for iteration x can only
	// be computed after the iteration-x all-reduce, so registration always
	// precedes the first deposit.
	t.mu.Lock()
	for id, users := range pl.Users {
		q := t.merges[id]
		if q == nil {
			q = t.getQueue()
			t.merges[id] = q
		}
		q.iters = append(q.iters, x)
		im := t.getMerge()
		for _, u := range users {
			if !im.expect.has(u) {
				im.expect.set(u)
				im.expectN++
			}
		}
		q.byIter[x] = im
	}
	t.expiring[x] = len(pl.Expiring)
	t.mu.Unlock()

	// 2. Insert the prefetched owned rows and refresh TTLs. The cache adopts
	// the row buffers by reference (they return to the arena at write-back);
	// the fetch's header slice is dead after the loop, so recycle it.
	rows := <-w.rows
	t.mu.Lock()
	for i, id := range pl.Prefetch {
		if eng.hooks != nil && eng.hooks.OnInsert != nil {
			eng.hooks.OnInsert(t.p, x, id)
		}
		t.cache.Insert(id, rows[i], pl.OwnedTTL[id])
	}
	if rows != nil {
		transport.PutRowSlice(rows)
	}
	for id, ttl := range pl.OwnedTTL {
		t.cache.UpdateTTL(id, ttl)
	}

	// 3. Wait until every owned row used this iteration has absorbed all
	// merges from earlier iterations (the per-row sync horizon).
	for {
		ready := true
		for id := range pl.Users {
			if q := t.merges[id]; len(q.iters) > 0 && q.iters[0] < x {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		t.cond.Wait()
	}

	// 4. Snapshot and push replicas to the non-owners reading our rows.
	// With SyncCompress the snapshot is rounded through float16 *here*, at
	// the sender — every fabric then carries the identical quantized
	// values, and the wire encoding (2 bytes/element on TCP) is lossless
	// with respect to them.
	quant := eng.cfg.SyncCompress
	type out struct {
		to    int
		bytes int64
		nrows int64
		msg   transport.ReplicaMsg
	}
	var outs []out
	for q, ids := range pl.ReplicaOut {
		// Snapshot into pooled buffers: the map and its rows transfer to the
		// receiver with the push (in-process meshes deliver by reference),
		// which recycles them after consuming the iteration — so nothing
		// here, including the counters below, may touch the message after
		// Send.
		snap := transport.GetRowMap()
		for _, id := range ids {
			e, ok := t.cache.Peek(id)
			if !ok {
				panic(fmt.Sprintf("train: trainer %d iter %d: replica id %d missing from partition", t.p, x, id))
			}
			row := t.arena.Get()
			copy(row, e.Row)
			if quant {
				transport.QuantizeF16(row)
			}
			snap[id] = row
		}
		outs = append(outs, out{to: q, bytes: replicaMsgBytes(snap, eng.dim, quant), nrows: int64(len(snap)),
			msg: transport.ReplicaMsg{Iter: x, F16: quant, Rows: snap}})
	}
	t.mu.Unlock()
	for _, o := range outs {
		t.ep.Send(o.to, o.bytes, o.msg)
		eng.countSend(classReplica, o.bytes)
		eng.replicaRows.Add(o.nrows)
	}

	// 5. Wait for the replicas we need, then gather this trainer's rows:
	// owned ids from the partition, remote ids from the replica box.
	t.mu.Lock()
	for {
		got := t.repFrom[x]
		ready := true
		for _, o := range pl.ReplicaFrom {
			if !got.has(o) {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		t.cond.Wait()
	}
	replicas := t.repRows[x]
	delete(t.repRows, x)
	delete(t.repFrom, x)
	// gathered is the trainer loop's private reusable scratch; its entries
	// alias cache rows and replica rows only until extractLocal copies them.
	gathered := t.gathered
	clear(gathered)
	for i, ex := range d.Batch.Examples {
		if d.Assign[i] != t.p {
			continue
		}
		for _, id := range ex.Cat {
			if _, ok := gathered[id]; ok {
				continue
			}
			if _, remote := pl.Remote[id]; remote {
				row, ok := replicas[id]
				if !ok {
					panic(fmt.Sprintf("train: trainer %d iter %d: replica of id %d never arrived", t.p, x, id))
				}
				gathered[id] = row
			} else {
				e, ok := t.cache.Get(id)
				if !ok {
					panic(fmt.Sprintf("train: trainer %d iter %d: owned id %d missing from partition (oracle consistency violated)", t.p, x, id))
				}
				gathered[id] = e.Row
			}
		}
	}
	t.mu.Unlock()

	// 6. Forward/backward on this trainer's examples, then ONE fused
	// collective round: every dense-parameter gradient segment plus the
	// loss term crosses the trainer group together (a single frame per hop
	// on mesh fabrics, instead of one per parameter), folded in rank order
	// from zero — the identical call sequence and summation on every
	// trainer.
	ls := extractLocal(d.Batch, d.Assign, t.p, eng.cfg.Spec.NumCategorical, eng.cfg.Spec.NumNumeric, eng.dim, gathered)
	// extractLocal copied every gathered row into the local slice, so the
	// replica snapshot this trainer adopted from the pushes is dead: return
	// the rows and the map to the pools the senders drew them from.
	if replicas != nil {
		for _, row := range replicas {
			if row != nil {
				t.arena.Put(row)
			}
		}
		transport.PutRowMap(replicas)
	}
	eng.activeTrain.Add(1)
	loss, dEmb := computeLocal(t.model, ls)
	params := t.model.Params()
	segs := make([][]float32, len(params))
	for i, p := range params {
		segs[i] = p.Grad
	}
	lossVec := []float64{loss}
	eng.coll.FusedAllReduce(t.p, segs, lossVec)
	t.opt.Step(params)
	eng.activeTrain.Add(-1)
	// All ranks hold the identical reduced loss; in single-process mode the
	// losses slice is shared so only trainer 0 writes it, in worker mode
	// every process records its own copy.
	if t.p == 0 || eng.worker {
		eng.losses[x] = lossVec[0]
	}

	// 7. Route per-example gradient contributions: owned rows merge
	// locally (ids used only here are the LRPP fast path — no mesh traffic
	// at all); remote-owned rows queue for the delayed-sync flusher.
	owned := make(map[uint64][]contribEntry)
	urgent := make(map[int]map[uint64][]contribEntry)
	lazy := make(map[int]map[uint64][]contribEntry)
	nEntries := 0
	for k, i := range ls.mine {
		var row []float32
		if dEmb != nil {
			row = dEmb.Data[k*dEmb.Cols : (k+1)*dEmb.Cols]
		}
		// Entries must own their gradient memory: models reuse the dEmb
		// buffer across iterations, and a deferred merge (or delayed flush)
		// outlives this backward pass.
		grads := append([]float32(nil), row...)
		for c, id := range d.Batch.Examples[i].Cat {
			e := contribEntry{Example: i, Grad: grads[c*eng.dim : (c+1)*eng.dim]}
			nEntries++
			if owner, remote := pl.Remote[id]; remote {
				bucket := lazy
				if d.NeededNext[id] {
					bucket = urgent
				}
				if bucket[owner] == nil {
					bucket[owner] = make(map[uint64][]contribEntry)
				}
				bucket[owner][id] = append(bucket[owner][id], e)
			} else {
				owned[id] = append(owned[id], e)
			}
		}
	}
	eng.syncEntries.Add(int64(nEntries))
	if eng.prog != nil {
		eng.prog.noteExamples(len(ls.mine))
	}
	t.mu.Lock()
	for id, es := range owned {
		t.depositLocked(id, x, t.p, es)
	}
	t.computeDone[x] = true
	t.maybeEmitLocked(x)
	t.mu.Unlock()
	t.cond.Broadcast()
	t.flushQ <- flushItem{iter: x, urgent: urgent, lazy: lazy}
}

// depositLocked adds one contributor's entries for (id, iter) and applies
// every merge that became ready. Caller holds t.mu.
func (t *lrppTrainer) depositLocked(id uint64, iter, from int, entries []contribEntry) {
	q := t.merges[id]
	if q == nil {
		panic(fmt.Sprintf("train: trainer %d: contribution for unregistered id %d iter %d", t.p, id, iter))
	}
	im := q.byIter[iter]
	if im == nil {
		panic(fmt.Sprintf("train: trainer %d: contribution for unregistered iter %d of id %d", t.p, iter, id))
	}
	im.entries = append(im.entries, entries...)
	if im.expect.clearBit(from) {
		im.expectN--
	}
	t.applyReadyLocked(id)
}

// applyReadyLocked applies id's head-of-queue merges while they are
// complete: fold the contributions in batch-example order, update the row
// once, and evict + queue the write-back when the iteration was the row's
// last use. Caller holds t.mu.
func (t *lrppTrainer) applyReadyLocked(id uint64) {
	eng := t.eng
	q := t.merges[id]
	applied := false
	defer func() {
		if len(q.iters) == 0 {
			delete(t.merges, id)
			t.putQueue(q)
			applied = true
		}
		if applied {
			// The merge head moved (or the id fully drained): wake the
			// trainer loop's merge wait and the teardown drain.
			t.cond.Broadcast()
		}
	}()
	for len(q.iters) > 0 {
		iter := q.iters[0]
		im := q.byIter[iter]
		if im == nil || im.expectN > 0 {
			return
		}
		applied = true
		// Stable insertion sort by example index: contributions per
		// (id, iteration) are few, and sort.SliceStable would allocate its
		// closure on every merge.
		es := im.entries
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].Example < es[j-1].Example; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		// Fold into the trainer's persistent buffer (mu is held): zeroing
		// then adding keeps the per-element summation order — and therefore
		// the bits — of a fresh accumulator.
		g := t.foldBuf
		clear(g)
		for _, en := range es {
			collective.AddF32(g, en.Grad)
		}
		e, ok := t.cache.Peek(id)
		if !ok {
			panic(fmt.Sprintf("train: trainer %d iter %d: sync for id %d landed after eviction", t.p, iter, id))
		}
		t.rowOpt.UpdateRow(id, e.Row, g)
		e.Dirty = true
		if eng.hooks != nil && eng.hooks.OnSyncApply != nil {
			eng.hooks.OnSyncApply(t.p, iter, id)
		}
		q.iters = q.iters[1:]
		delete(q.byIter, iter)
		t.putMerge(im)
		if e.TTL == iter {
			ev, dirty := t.cache.Remove(id)
			if !dirty {
				panic(fmt.Sprintf("train: trainer %d iter %d: expiring id %d not dirty after update", t.p, iter, id))
			}
			if eng.hooks != nil && eng.hooks.OnEvict != nil {
				eng.hooks.OnEvict(t.p, iter, id)
			}
			evs := t.evbatch[iter]
			if evs == nil {
				if n := len(t.evFree); n > 0 {
					evs = t.evFree[n-1][:0]
					t.evFree[n-1] = nil
					t.evFree = t.evFree[:n-1]
				}
			}
			t.evbatch[iter] = append(evs, ev)
			t.evictedRows++
			t.expiring[iter]--
			t.maybeEmitLocked(iter)
		}
	}
}

// maybeEmitLocked hands iteration iter's eviction batch to maintenance
// once the trainer loop has passed it and its last merge has evicted.
// Caller holds t.mu; maintCh is sized for the whole run so the send never
// blocks.
func (t *lrppTrainer) maybeEmitLocked(iter int) {
	if !t.computeDone[iter] || t.expiring[iter] != 0 || t.emitted[iter] {
		return
	}
	t.emitted[iter] = true
	evs := t.evbatch[iter]
	delete(t.evbatch, iter)
	delete(t.expiring, iter)
	delete(t.computeDone, iter)
	slices.SortFunc(evs, func(a, b core.Eviction) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	t.maintCh <- maintJob{iter: iter, evictions: evs}
}
