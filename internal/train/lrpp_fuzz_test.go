package train

import (
	"fmt"
	"sync"
	"testing"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// lrppAuditor is the invariant ledger the fuzz harness hangs off the
// engine's hooks. It rebuilds, purely from the event stream, the state the
// paper's consistency argument (§3.2–3.3) reasons about, and records any
// violation:
//
//   - ownership: a row is only ever inserted into its hash owner's
//     partition, and is resident in at most one partition;
//   - staleness: a prefetch never observes a row whose dirty eviction has
//     not been written back, and re-prefetch happens at least ℒ iterations
//     after the eviction (the window law);
//   - pacing: iteration x is admitted only after x−ℒ retired (token law),
//     and retirement is strictly in iteration order;
//   - sync window: a synchronization merge only ever lands on a row while
//     it is resident in its owner's partition.
type lrppAuditor struct {
	mu sync.Mutex
	P  int
	L  int

	resident  map[uint64]int // id → partition currently holding it
	pendingWB map[uint64]struct{}
	evictIter map[uint64]int
	retired   []int // per trainer: iterations retired so far (in order)

	violations []string
}

func newAuditor(p, l int) *lrppAuditor {
	return &lrppAuditor{
		P: p, L: l,
		resident:  make(map[uint64]int),
		pendingWB: make(map[uint64]struct{}),
		evictIter: make(map[uint64]int),
		retired:   make([]int, p),
	}
}

func (a *lrppAuditor) violatef(format string, args ...any) {
	a.violations = append(a.violations, fmt.Sprintf(format, args...))
}

func (a *lrppAuditor) hooks() *LRPPHooks {
	return &LRPPHooks{
		OnPrefetch: func(trainer, iter int, ids []uint64) {
			a.mu.Lock()
			defer a.mu.Unlock()
			if a.retired[trainer] < iter+1-a.L {
				a.violatef("trainer %d prefetched iter %d with only %d iterations retired (window %d)",
					trainer, iter, a.retired[trainer], a.L)
			}
			for _, id := range ids {
				if core.OwnerOf(id, a.P) != trainer {
					a.violatef("trainer %d prefetched foreign id %d", trainer, id)
				}
				if holder, ok := a.resident[id]; ok {
					a.violatef("iter %d: prefetch of id %d while resident in partition %d", iter, id, holder)
				}
				if _, ok := a.pendingWB[id]; ok {
					a.violatef("iter %d: prefetch of id %d would observe a stale row (write-back pending)", iter, id)
				}
				if ev, ok := a.evictIter[id]; ok && iter-ev < a.L {
					a.violatef("id %d re-prefetched at iter %d only %d iters after eviction (window %d)",
						id, iter, iter-ev, a.L)
				}
			}
		},
		OnInsert: func(trainer, iter int, id uint64) {
			a.mu.Lock()
			defer a.mu.Unlock()
			if core.OwnerOf(id, a.P) != trainer {
				a.violatef("id %d inserted into partition %d, hash owner is %d", id, trainer, core.OwnerOf(id, a.P))
			}
			if holder, ok := a.resident[id]; ok {
				a.violatef("id %d inserted into partition %d while resident in %d (ownership not disjoint)",
					id, trainer, holder)
			}
			a.resident[id] = trainer
		},
		OnSyncApply: func(owner, iter int, id uint64) {
			a.mu.Lock()
			defer a.mu.Unlock()
			if holder, ok := a.resident[id]; !ok || holder != owner {
				a.violatef("sync for id %d iter %d landed outside residency (holder %d ok=%v)", id, iter, holder, ok)
			}
		},
		OnEvict: func(owner, iter int, id uint64) {
			a.mu.Lock()
			defer a.mu.Unlock()
			if holder, ok := a.resident[id]; !ok || holder != owner {
				a.violatef("eviction of id %d from partition %d which does not hold it", id, owner)
			}
			delete(a.resident, id)
			a.pendingWB[id] = struct{}{}
			a.evictIter[id] = iter
		},
		OnWriteBack: func(owner, iter int, ids []uint64) {
			a.mu.Lock()
			defer a.mu.Unlock()
			for _, id := range ids {
				if _, ok := a.pendingWB[id]; !ok {
					a.violatef("write-back of id %d without a pending eviction", id)
				}
				delete(a.pendingWB, id)
			}
		},
		OnRetire: func(owner, iter int) {
			a.mu.Lock()
			defer a.mu.Unlock()
			if iter != a.retired[owner] {
				a.violatef("trainer %d retired iter %d out of order (expected %d)", owner, iter, a.retired[owner])
			}
			a.retired[owner]++
		},
	}
}

// finish asserts the end-of-run invariants and reports all violations.
func (a *lrppAuditor) finish(t *testing.T) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.resident) != 0 {
		a.violatef("%d rows still resident after the run", len(a.resident))
	}
	if len(a.pendingWB) != 0 {
		a.violatef("%d evictions never written back", len(a.pendingWB))
	}
	for i, v := range a.violations {
		if i >= 10 {
			t.Errorf("... and %d more violations", len(a.violations)-10)
			break
		}
		t.Error(v)
	}
}

// fuzzSpec is deliberately tiny and hot: a few dozen rows per table so
// random streams constantly re-touch, evict, and re-prefetch rows across
// the consistency window.
func fuzzSpec() *data.Spec {
	return &data.Spec{
		Name:           "fuzz",
		NumExamples:    192,
		NumCategorical: 3,
		NumNumeric:     2,
		TableSizes:     []int64{24, 16, 12},
		EmbDim:         4,
		Dist:           data.NewHotTail(0.08, 0.6, 1.1),
	}
}

// FuzzLRPPDifferential drives the LRPP engine over fuzzer-chosen trainer
// counts, lookahead depths, batch shapes, partitioners, and sync modes; on
// every input it (a) audits the consistency invariants through the hook
// ledger and (b) differentially checks the final embedding state is
// bit-identical to RunBaseline. The seeded corpus runs in regular `go
// test` mode, so CI exercises the harness even without -fuzz.
func FuzzLRPPDifferential(f *testing.F) {
	f.Add(uint64(42), uint8(1), uint8(4), uint8(6), uint8(8), uint8(0), false)
	f.Add(uint64(7), uint8(2), uint8(0), uint8(3), uint8(6), uint8(1), false) // L=1: lag collapses to 0
	f.Add(uint64(9), uint8(3), uint8(2), uint8(7), uint8(10), uint8(2), true) // comm-aware, eager
	f.Add(uint64(1), uint8(0), uint8(5), uint8(2), uint8(4), uint8(2), false) // P=1 degenerate
	f.Add(uint64(1234), uint8(3), uint8(1), uint8(5), uint8(9), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, pSel, lSel, bSel, nSel, partSel uint8, eager bool) {
		p := 1 + int(pSel)%4
		cfg := Config{
			Spec:        fuzzSpec(),
			Seed:        seed,
			Model:       "wd",
			Optimizer:   "sgd",
			LR:          0.05,
			BatchSize:   2 + int(bSel)%8,
			NumBatches:  2 + int(nSel)%10,
			LookAhead:   1 + int(lSel)%6,
			NumTrainers: p,
			SyncEager:   eager,
		}
		switch partSel % 3 {
		case 1:
			cfg.Partitioner = core.RoundRobin{}
		case 2:
			cfg.Partitioner = &core.CommAware{Own: core.Ownership{}}
		}

		srvBase := embed.NewServer(2, cfg.Spec.EmbDim, seed^0xBEEF, 0.05)
		if _, err := RunBaseline(cfg, transport.NewInProcess(srvBase)); err != nil {
			t.Fatalf("baseline: %v", err)
		}

		aud := newAuditor(p, cfg.LookAhead)
		cfg.Hooks = aud.hooks()
		srvLRPP := embed.NewServer(2, cfg.Spec.EmbDim, seed^0xBEEF, 0.05)
		res, err := RunLRPP(cfg, newStores(srvLRPP, p), nil)
		if err != nil {
			t.Fatalf("lrpp: %v", err)
		}
		aud.finish(t)

		if srvBase.Fingerprint() != srvLRPP.Fingerprint() {
			d := embed.Diff(srvBase, srvLRPP)
			t.Fatalf("state diverged from baseline at %d ids (first %v) [P=%d L=%d B=%d N=%d part=%d eager=%v]",
				len(d), d[:1], p, cfg.LookAhead, cfg.BatchSize, cfg.NumBatches, partSel%3, eager)
		}
		if res.Evicted != res.Prefetched {
			t.Fatalf("evicted %d != prefetched %d", res.Evicted, res.Prefetched)
		}
		if res.Mesh.Dropped != 0 {
			t.Fatalf("%d mesh messages dropped", res.Mesh.Dropped)
		}
	})
}
