package train

import (
	"fmt"
	"sync"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/transport"
)

// This file is the multi-process LRPP mode: RunLRPPWorker runs exactly one
// trainer of a P-trainer run in the calling process, connected to its peers
// over any transport.Mesh (in production a TCPMesh, in tests also the
// in-process and simulated fabrics) and to the embedding tier over any
// Store (TCPLinks against remote embedding-server processes, sharded
// across S of them by ShardedStore when the tier is multi-server).
//
// Three things that are free in the single-process engine must cross the
// mesh here, each as a codec wire type:
//
//   - oracle plans (transport.PlanMsg): the rank-0 process hosts the Oracle
//     Cacher and streams every peer its per-iteration TrainerPlan. Plans may
//     arrive reordered (the mesh contract permits it), so a resequencer
//     (planSeq) feeds the trainer in iteration order.
//   - dense-gradient and loss collectives: meshColl (meshcoll.go) reduces
//     them by the configured strategy — rooted per-parameter CollMsgs,
//     fused single-frame FusedCollMsgs through rank 0, or a ring of fused
//     frames — every strategy folding in rank order from zero, the exact
//     summation order of collective.Group, so worker runs stay
//     bit-identical to single-process and baseline runs.
//   - everything LRPP already exchanged (replicas, delayed-sync flushes)
//     rides the same mesh unchanged.

// planSeq re-sequences oracle plans arriving over the mesh: the fabric may
// reorder them, the trainer consumes them in iteration order.
type planSeq struct {
	mu    sync.Mutex
	cond  *sync.Cond
	plans map[int]*core.TrainerPlan
}

func newPlanSeq() *planSeq {
	b := &planSeq{plans: make(map[int]*core.TrainerPlan)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// put deposits one arrived plan (called from the mesh receiver goroutine).
func (b *planSeq) put(pl *core.TrainerPlan) {
	b.mu.Lock()
	b.plans[pl.Dec.Iter] = pl
	b.cond.Broadcast()
	b.mu.Unlock()
}

// stream emits plans for iterations [0, n) in order to out, then closes it.
func (b *planSeq) stream(n int, out chan<- *core.TrainerPlan) {
	defer close(out)
	for iter := 0; iter < n; iter++ {
		b.mu.Lock()
		for b.plans[iter] == nil {
			b.cond.Wait()
		}
		pl := b.plans[iter]
		delete(b.plans, iter)
		b.mu.Unlock()
		out <- pl
	}
}

// planMsgBytes models the wire size of one plan: the Decision's batch
// payload (dense features, categorical ids, label per example) plus the
// per-trainer plan maps — the same role syncMsgBytes/replicaMsgBytes play
// for the data-path messages.
func planMsgBytes(pl *core.TrainerPlan) int64 {
	b := int64(16)
	b += 8 * int64(len(pl.Prefetch))
	b += 16 * int64(len(pl.OwnedTTL))
	b += 8 * int64(len(pl.Expiring))
	for _, us := range pl.Users {
		b += 12 + 4*int64(len(us))
	}
	for _, ids := range pl.ReplicaOut {
		b += 12 + 8*int64(len(ids))
	}
	b += 16 * int64(len(pl.Remote))
	b += 4 + 4*int64(len(pl.ReplicaFrom))
	d := pl.Dec
	b += 8 + 4*int64(len(d.Assign)) + 8*int64(len(d.NeededNext))
	// Only the destination's assigned examples travel.
	for i, ex := range d.Batch.Examples {
		if d.Assign[i] != pl.Trainer {
			continue
		}
		b += 8 + 4*int64(len(ex.Dense)) + 8*int64(len(ex.Cat)) + 4
	}
	return b
}

// RunLRPPWorker runs trainer `rank` of a cfg.NumTrainers-trainer LRPP run
// in this process, reaching the embedding tier through tr (in production a
// TCPLink for a one-server tier, or a ShardedStore of TCPLinks for an
// S-server one). The peers run the same Config (workloads are
// deterministic functions of it, so no configuration crosses the wire) in
// their own processes — or goroutines, in tests — sharing the mesh fabric;
// rank 0 additionally hosts the Oracle Cacher and streams everyone their
// plans. State equivalence is unchanged from RunLRPP: over the same Config,
// P worker processes leave the embedding tier bit-identical to the
// single-process engines and the no-cache baseline.
//
// The caller owns tr and mesh: quiesce/shutdown them after the result
// returns (a TCPMesh still carries peers' teardown traffic when this
// trainer finishes first).
func RunLRPPWorker(cfg Config, rank int, tr transport.Store, mesh transport.Mesh) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LookAhead < 1 {
		return nil, fmt.Errorf("train: LRPP engine needs LookAhead >= 1, got %d", cfg.LookAhead)
	}
	P := cfg.NumTrainers
	if rank < 0 || rank >= P {
		return nil, fmt.Errorf("train: worker rank %d out of [0,%d)", rank, P)
	}
	if mesh == nil {
		return nil, fmt.Errorf("train: worker mode needs a mesh (use RunLRPP for the single-process engine)")
	}
	if mesh.Size() != P {
		return nil, fmt.Errorf("train: mesh has %d endpoints for %d trainers", mesh.Size(), P)
	}

	eng := newLRPPEngine(&cfg, mesh, nil)
	eng.worker = true
	ep := mesh.Endpoint(rank)
	mcoll := newMeshColl(rank, P, ep, cfg.collective(), eng)
	eng.coll = mcoll
	t, err := newLRPPTrainer(eng, rank, tr, ep)
	if err != nil {
		return nil, err
	}
	t.mcoll = mcoll

	planCh := make(chan *core.TrainerPlan, cfg.LookAhead)
	var stats []core.IterStats
	if rank == 0 {
		// Host the oracle: walk the stream, keep our plan, ship the rest.
		// The local plan channel's capacity throttles the walk to the
		// lookahead window ahead of rank 0's progress; peers can never
		// outrun it by more than the collectives allow, so plans are always
		// available where needed.
		gen := data.NewGenerator(cfg.Spec, cfg.Seed)
		oracle := core.NewOracle(core.NewGeneratorSource(gen, cfg.BatchSize, cfg.NumBatches), cfg.LookAhead, P)
		oracle.Partitioner = cfg.Partitioner
		go func() {
			defer close(planCh)
			for {
				d, ok := oracle.Next()
				if !ok {
					return
				}
				stats = append(stats, d.Stats(oracle.CacheOccupancy()))
				plans := d.SplitPlans(P)
				for p := 1; p < P; p++ {
					pb := planMsgBytes(plans[p])
					ep.Send(p, pb, transport.PlanMsg{Plan: plans[p]})
					eng.countSend(classPlan, pb)
				}
				planCh <- plans[0]
			}
		}()
	} else {
		t.planBox = newPlanSeq()
		go t.planBox.stream(cfg.NumBatches, planCh)
	}

	start := time.Now()
	t.run(planCh)
	mesh.Quiesce()
	return eng.collectResult([]*lrppTrainer{t}, stats, start)
}
