package train

import (
	"fmt"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/model"
)

// This file drives core.EstimateLookahead from measurement (§4,
// "Automatically Calculating Lookahead"): the CLI's -auto-lookahead flag
// calibrates per-iteration compute time at startup, combines it with the
// embedding link's round-trip time to find the window depth that hides
// prefetch latency behind compute, and caps that depth by what a trainer
// cache budget actually fits.

// CalibrateIterTime measures cfg's per-iteration compute cost: model
// forward/backward plus a dense optimizer step over synthetic batches with
// zero-valued embedding rows — no embedding tier, mesh, or collective
// involved, so it is cheap and runs anywhere. The first iteration warms
// allocations and is not timed.
func CalibrateIterTime(cfg Config, iters int) (time.Duration, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if iters < 1 {
		iters = 1
	}
	mcfg := model.Config{
		NumCategorical: cfg.Spec.NumCategorical,
		NumNumeric:     cfg.Spec.NumNumeric,
		TotalRows:      cfg.Spec.TotalRows(),
		EmbDim:         cfg.Spec.EmbDim,
		Seed:           cfg.Seed,
	}
	m, err := model.New(cfg.Model, mcfg)
	if err != nil {
		return 0, err
	}
	opt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return 0, err
	}
	gen := data.NewGenerator(cfg.Spec, cfg.Seed)
	assign := make([]int, cfg.BatchSize) // every example on rank 0
	var start time.Time
	for i := 0; i <= iters; i++ {
		if i == 1 {
			start = time.Now()
		}
		b := gen.Batch(i, cfg.BatchSize)
		ls := extractLocal(b, assign, 0, cfg.Spec.NumCategorical, cfg.Spec.NumNumeric, cfg.Spec.EmbDim, nil)
		computeLocal(m, ls)
		opt.Step(m.Params())
	}
	return time.Since(start) / time.Duration(iters), nil
}

// AutoLookahead picks ℒ: deep enough that a prefetch issued ℒ iterations
// early lands before its batch trains (rtt hidden behind compute), capped
// by the deepest window whose working set fits cacheRows rows
// (core.EstimateLookahead walks the actual batch stream), and never beyond
// maxL. iterTime <= 0 (free compute, e.g. an unmeasurably fast model)
// degrades to the latency floor of 2.
func AutoLookahead(cfg Config, iterTime, rtt time.Duration, cacheRows, maxL int) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cacheRows < 1 || maxL < 1 {
		return 0, fmt.Errorf("train: auto-lookahead needs a positive cache budget and max window, got %d rows / max %d", cacheRows, maxL)
	}
	need := 2 // even a zero-latency link wants one iteration of overlap
	if iterTime > 0 && rtt > 0 {
		need = int(rtt/iterTime) + 2
	}
	gen := data.NewGenerator(cfg.Spec, cfg.Seed)
	fit := core.EstimateLookahead(gen, cfg.BatchSize, cacheRows, maxL)
	l := need
	if l > fit {
		l = fit // the cache budget is the hard ceiling
	}
	if l < 1 {
		l = 1
	}
	return l, nil
}
