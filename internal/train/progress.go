package train

import "sync/atomic"

// Progress is the live, lock-free view of a running LRPP engine that an
// observer sharing the process — the serving front end — reads while
// training mutates the tier. Two signals matter to serving:
//
//   - Epoch: the write-back epoch, the highest iteration e such that every
//     trainer has retired every iteration ≤ e. Retirement is the moment a
//     trainer's maintenance stage has landed all of an iteration's evicted
//     rows on the tier (lrpp.go startMaintenance re-sequences it strictly
//     in order), so rows fetched from the tier after Epoch() returns e can
//     only reflect iterations ≤ e+ℒ in flight and nothing older than e is
//     still pending — the serving cache's staleness bound is denominated
//     in these epochs.
//   - Examples: monotone count of examples whose backward pass completed,
//     summed over the trainers this process hosts. Sampling it over wall
//     time gives live train throughput, which is how the interference of
//     serving load on training is measured (ex/s with serving on vs off).
//
// A Progress is optional (Config.Progress nil in ordinary runs) and
// write-side costs two atomic stores per trainer iteration, nothing on the
// steady-state allocation-free path's pools.
type Progress struct {
	retired  []atomic.Int64
	examples atomic.Int64
}

// NewProgress sizes the tracker for a run with trainers ranks. Epoch
// reports -1 until every trainer has retired its first iteration.
func NewProgress(trainers int) *Progress {
	p := &Progress{retired: make([]atomic.Int64, trainers)}
	for i := range p.retired {
		p.retired[i].Store(-1)
	}
	return p
}

// noteRetire records that trainer p has retired iteration iter (all its
// write-backs for iter are on the tier). Called from each trainer's
// maintenance goroutine, strictly in iteration order per trainer.
func (p *Progress) noteRetire(trainer, iter int) {
	p.retired[trainer].Store(int64(iter))
}

// noteExamples adds n completed examples.
func (p *Progress) noteExamples(n int) {
	p.examples.Add(int64(n))
}

// Epoch returns the write-back epoch: the minimum retired iteration across
// trainers, -1 before every trainer has retired iteration 0.
func (p *Progress) Epoch() int64 {
	e := int64(1<<63 - 1)
	for i := range p.retired {
		if r := p.retired[i].Load(); r < e {
			e = r
		}
	}
	return e
}

// Examples returns the monotone completed-example count.
func (p *Progress) Examples() int64 {
	return p.examples.Load()
}
