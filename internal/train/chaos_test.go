package train

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// The engine-level chaos leg: a replicated tier loses a server mid-training
// and the LRPP run must finish AND still satisfy the central differential
// property — merged surviving state bit-identical to the no-cache baseline,
// bit-identical losses. This is the in-test form of
// `bagpipe -trainers P -servers S -replicate 2 -net tcp -kill-server 1`.

// chaosStore wraps one trainer's transport to one server. All wrappers
// share one op counter; once it crosses the threshold, every wrapper of the
// doomed server fails — the same globally-consistent "machine gone" cut a
// real kill produces (no trainer can reach the server after the cut, so no
// replica can silently diverge).
type chaosStore struct {
	*transport.InProcess
	ops    *atomic.Int64
	doomed bool
	after  int64
}

func (c *chaosStore) dead() bool {
	return c.doomed && c.ops.Add(1) > c.after
}

func (c *chaosStore) errDead() error {
	return fmt.Errorf("train chaos test: server killed")
}

func (c *chaosStore) TryFetch(ids []uint64) ([][]float32, error) {
	if c.dead() {
		return nil, c.errDead()
	}
	return c.InProcess.TryFetch(ids)
}

func (c *chaosStore) TryWrite(ids []uint64, rows [][]float32) error {
	if c.dead() {
		return c.errDead()
	}
	return c.InProcess.TryWrite(ids, rows)
}

func (c *chaosStore) TryFingerprintPart(part, of int) (uint64, error) {
	if c.dead() {
		return 0, c.errDead()
	}
	return c.InProcess.TryFingerprintPart(part, of)
}

func (c *chaosStore) TryCheckpoint() ([]byte, error) {
	if c.dead() {
		return nil, c.errDead()
	}
	return c.InProcess.TryCheckpoint()
}

func TestLRPPReplicatedTierSurvivesServerDeath(t *testing.T) {
	const P, S, R = 2, 3, 2
	const killAfterOps = 150 // ~20% into the run's tier RPCs: replicas warm, plenty of post-kill traffic

	cfg := tinyConfig()
	cfg.NumTrainers = P

	srvBase := newServer(cfg.Spec, 3)
	base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	tier := newTier(cfg.Spec, S, 3)
	var ops atomic.Int64
	trs := make([]transport.Store, P)
	for i := range trs {
		children := make([]transport.Store, S)
		for s, srv := range tier {
			children[s] = &chaosStore{
				InProcess: transport.NewInProcess(srv),
				ops:       &ops,
				doomed:    s == 1,
				after:     killAfterOps,
			}
		}
		trs[i] = transport.NewTier(children, transport.TierOptions{
			Replicate: R,
			Retries:   2,
			Backoff:   time.Millisecond,
		})
	}

	res, err := RunLRPP(cfg, trs, nil)
	if err != nil {
		t.Fatalf("lrpp with a mid-run server death: %v", err)
	}

	// The run must have noticed and survived the death, and said so in the
	// result's tier health.
	if res.Tier == nil {
		t.Fatal("replicated run reported no tier health")
	}
	if res.Tier.Replicate != R || res.Tier.Servers != S {
		t.Fatalf("tier health shape: %+v", res.Tier)
	}
	if len(res.Tier.Dead) != 1 || res.Tier.Dead[0] != 1 {
		t.Fatalf("dead servers %v, want [1]", res.Tier.Dead)
	}
	if res.Tier.Failovers == 0 {
		t.Fatal("no failovers counted: the kill never forced a replica read")
	}

	// The differential property holds across the death: surviving replicas
	// merge to the baseline state, losses bit-identical.
	deadSet := []bool{false, true, false}
	merged, err := embed.MergeTierReplicated(tier, R, deadSet)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, merged); len(d) != 0 {
		t.Fatalf("surviving merged tier diverged from baseline at %d ids (first: %v)", len(d), d[0])
	}
	if base.FirstLoss != res.FirstLoss || base.LastLoss != res.LastLoss {
		t.Fatalf("losses diverged: baseline %v/%v chaos %v/%v",
			base.FirstLoss, base.LastLoss, res.FirstLoss, res.LastLoss)
	}
}

// TestLRPPServerRejoinMidTraining is the engine-level rejoin leg: the tier
// loses a server mid-run, a pristine recovery-mode replacement comes up,
// and each trainer's Reviver independently re-dials and anti-entropy
// rejoins it — all while the LRPP engine keeps fetching and writing. The
// run must finish, every trainer's tier must end with no down servers, and
// the full tier (rejoiner included, no server excluded as dead) must still
// certify bit-identical to the no-cache baseline. This is the in-test form
// of `bagpipe -trainers P -servers S -replicate 2 -net tcp -kill-server 1
// -restart-server`; under -race it additionally races the resync rounds
// against live trainer traffic.
func TestLRPPServerRejoinMidTraining(t *testing.T) {
	const P, S, R = 2, 3, 2
	const killAfterOps = 150

	cfg := tinyConfig()
	cfg.NumTrainers = P

	srvBase := newServer(cfg.Spec, 3)
	base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// The replacement process: same ctor parameters, pristine state,
	// started in recovery mode (the -recover flag of a respawned -serve).
	fresh := newServer(cfg.Spec, 3)
	fresh.BeginRecovery()

	tier := newTier(cfg.Spec, S, 3)
	var ops atomic.Int64
	tiers := make([]*transport.ShardedStore, P)
	trs := make([]transport.Store, P)
	for i := range trs {
		children := make([]transport.Store, S)
		for s, srv := range tier {
			children[s] = &chaosStore{
				InProcess: transport.NewInProcess(srv),
				ops:       &ops,
				doomed:    s == 1,
				after:     killAfterOps,
			}
		}
		tiers[i] = transport.NewTier(children, transport.TierOptions{
			Replicate: R,
			Retries:   2,
			Backoff:   time.Millisecond,
			Jitter:    func(d time.Duration) time.Duration { return 0 },
		})
		trs[i] = tiers[i]
	}

	// One Reviver per trainer, exactly as each worker process runs one:
	// it notices the condemnation, "re-dials" the respawned server, and
	// runs the rejoin concurrently with training.
	revivers := make([]*transport.Reviver, P)
	for i := range revivers {
		st := tiers[i]
		revivers[i] = transport.NewReviver(st, func(s int) (transport.Store, error) {
			if s != 1 {
				return nil, fmt.Errorf("train rejoin test: server %d is not the victim", s)
			}
			return transport.NewInProcess(fresh), nil
		}, transport.RejoinOptions{RoundBackoff: 2 * time.Millisecond}, nil)
	}

	res, err := RunLRPP(cfg, trs, nil)
	if err != nil {
		t.Fatalf("lrpp with a mid-run death and rejoin: %v", err)
	}
	if res.Tier == nil {
		t.Fatal("replicated run reported no tier health")
	}
	if res.Tier.Failovers == 0 {
		t.Fatal("no failovers counted: the kill never forced a replica read")
	}

	// Training is done; any in-flight rejoin now converges against a
	// quiescent tier. Every trainer's client must end with server 1 live.
	deadline := time.Now().Add(10 * time.Second)
	for _, st := range tiers {
		for len(st.DownServers()) != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("tier still has down servers %v after training", st.DownServers())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if h := st.TierHealth(); h.Revived == 0 || h.ResyncRows == 0 {
			t.Fatalf("tier health %+v: rejoin never streamed", h)
		}
	}
	for _, rev := range revivers {
		rev.Stop()
	}
	// Every client has re-admitted the server: the coordinator may end its
	// recovery window.
	if err := tiers[0].EndRecovery(1); err != nil {
		t.Fatalf("end recovery: %v", err)
	}
	if fresh.Recovering() {
		t.Fatal("rejoined server still in recovery mode")
	}

	// The differential property now holds over the FULL tier — the
	// rejoined replacement is a first-class member, nobody is dead.
	live := append([]*embed.Server(nil), tier...)
	live[1] = fresh
	merged, err := embed.MergeTierReplicated(live, R, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, merged); len(d) != 0 {
		t.Fatalf("rejoined tier diverged from baseline at %d ids (first: %v)", len(d), d[0])
	}
	if base.FirstLoss != res.FirstLoss || base.LastLoss != res.LastLoss {
		t.Fatalf("losses diverged: baseline %v/%v chaos %v/%v",
			base.FirstLoss, base.LastLoss, res.FirstLoss, res.LastLoss)
	}
}
