package train

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// The engine-level chaos leg: a replicated tier loses a server mid-training
// and the LRPP run must finish AND still satisfy the central differential
// property — merged surviving state bit-identical to the no-cache baseline,
// bit-identical losses. This is the in-test form of
// `bagpipe -trainers P -servers S -replicate 2 -net tcp -kill-server 1`.

// chaosStore wraps one trainer's transport to one server. All wrappers
// share one op counter; once it crosses the threshold, every wrapper of the
// doomed server fails — the same globally-consistent "machine gone" cut a
// real kill produces (no trainer can reach the server after the cut, so no
// replica can silently diverge).
type chaosStore struct {
	*transport.InProcess
	ops    *atomic.Int64
	doomed bool
	after  int64
}

func (c *chaosStore) dead() bool {
	return c.doomed && c.ops.Add(1) > c.after
}

func (c *chaosStore) errDead() error {
	return fmt.Errorf("train chaos test: server killed")
}

func (c *chaosStore) TryFetch(ids []uint64) ([][]float32, error) {
	if c.dead() {
		return nil, c.errDead()
	}
	return c.InProcess.TryFetch(ids)
}

func (c *chaosStore) TryWrite(ids []uint64, rows [][]float32) error {
	if c.dead() {
		return c.errDead()
	}
	return c.InProcess.TryWrite(ids, rows)
}

func (c *chaosStore) TryFingerprintPart(part, of int) (uint64, error) {
	if c.dead() {
		return 0, c.errDead()
	}
	return c.InProcess.TryFingerprintPart(part, of)
}

func (c *chaosStore) TryCheckpoint() ([]byte, error) {
	if c.dead() {
		return nil, c.errDead()
	}
	return c.InProcess.TryCheckpoint()
}

func TestLRPPReplicatedTierSurvivesServerDeath(t *testing.T) {
	const P, S, R = 2, 3, 2
	const killAfterOps = 150 // ~20% into the run's tier RPCs: replicas warm, plenty of post-kill traffic

	cfg := tinyConfig()
	cfg.NumTrainers = P

	srvBase := newServer(cfg.Spec, 3)
	base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	tier := newTier(cfg.Spec, S, 3)
	var ops atomic.Int64
	trs := make([]transport.Store, P)
	for i := range trs {
		children := make([]transport.Store, S)
		for s, srv := range tier {
			children[s] = &chaosStore{
				InProcess: transport.NewInProcess(srv),
				ops:       &ops,
				doomed:    s == 1,
				after:     killAfterOps,
			}
		}
		trs[i] = transport.NewTier(children, transport.TierOptions{
			Replicate: R,
			Retries:   2,
			Backoff:   time.Millisecond,
		})
	}

	res, err := RunLRPP(cfg, trs, nil)
	if err != nil {
		t.Fatalf("lrpp with a mid-run server death: %v", err)
	}

	// The run must have noticed and survived the death, and said so in the
	// result's tier health.
	if res.Tier == nil {
		t.Fatal("replicated run reported no tier health")
	}
	if res.Tier.Replicate != R || res.Tier.Servers != S {
		t.Fatalf("tier health shape: %+v", res.Tier)
	}
	if len(res.Tier.Dead) != 1 || res.Tier.Dead[0] != 1 {
		t.Fatalf("dead servers %v, want [1]", res.Tier.Dead)
	}
	if res.Tier.Failovers == 0 {
		t.Fatal("no failovers counted: the kill never forced a replica read")
	}

	// The differential property holds across the death: surviving replicas
	// merge to the baseline state, losses bit-identical.
	deadSet := []bool{false, true, false}
	merged, err := embed.MergeTierReplicated(tier, R, deadSet)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, merged); len(d) != 0 {
		t.Fatalf("surviving merged tier diverged from baseline at %d ids (first: %v)", len(d), d[0])
	}
	if base.FirstLoss != res.FirstLoss || base.LastLoss != res.LastLoss {
		t.Fatalf("losses diverged: baseline %v/%v chaos %v/%v",
			base.FirstLoss, base.LastLoss, res.FirstLoss, res.LastLoss)
	}
}
