package train

import (
	"testing"

	"bagpipe/internal/collective"
	"bagpipe/internal/core"
	"bagpipe/internal/embed"
	"bagpipe/internal/optim"
	"bagpipe/internal/transport"
)

// The steady-state harness drives exactly the hot-path primitives one LRPP
// iteration composes — pooled tier fetch, cache insert, replica snapshot +
// f16 quantization, vectorized gradient fold, row update, eviction, acked
// write-back, buffer recycling — across P persistent trainer goroutines
// over an S-way sharded in-process tier, with none of the oracle/batch
// bookkeeping that allocates per run by design (plans, per-example
// gradients). This is the surface the PR's 0 allocs/op acceptance bar is
// measured on: after warmup, every buffer the loop touches comes from and
// returns to the transport pools and the per-worker scratch.

// steadyWorker is one persistent trainer goroutine of the harness. Workers
// live across benchmark ops (spawning goroutines per op would itself
// allocate) and are signaled through int channels.
type steadyWorker struct {
	store transport.Store
	cache *core.Cache
	arena *transport.RowArena
	opt   interface {
		optim.Optimizer
		optim.RowOptimizer
	}
	ids    []uint64
	fold   []float32
	evIDs  []uint64
	evRows [][]float32
	work   chan int
	done   chan struct{}
}

func (w *steadyWorker) loop() {
	for iter := range w.work {
		w.step(iter)
		w.done <- struct{}{}
	}
}

// step is one trainer's iteration over the hot-path primitives.
func (w *steadyWorker) step(iter int) {
	// Prefetch: pooled header + arena rows, adopted by the cache.
	rows := w.store.Fetch(w.ids)
	for i, id := range w.ids {
		w.cache.Insert(id, rows[i], iter)
	}
	transport.PutRowSlice(rows)
	// Replica push + merge simulation per row: snapshot into a pooled
	// buffer, quantize like a -sync-compress sender, fold like a receiving
	// owner, apply one optimizer update.
	for _, id := range w.ids {
		e, ok := w.cache.Peek(id)
		if !ok {
			panic("steady: cached row vanished")
		}
		snap := w.arena.Get()
		copy(snap, e.Row)
		transport.QuantizeF16(snap)
		clear(w.fold)
		collective.AddF32(w.fold, snap)
		w.arena.Put(snap)
		w.opt.UpdateRow(id, e.Row, w.fold)
		e.Dirty = true
	}
	// Evict, write back, recycle — the row's single return point.
	w.evIDs, w.evRows = w.evIDs[:0], w.evRows[:0]
	for _, id := range w.ids {
		ev, dirty := w.cache.Remove(id)
		if !dirty {
			panic("steady: updated row not dirty")
		}
		w.evIDs = append(w.evIDs, ev.ID)
		w.evRows = append(w.evRows, ev.Row)
	}
	w.store.Write(w.evIDs, w.evRows)
	w.arena.PutN(w.evRows)
}

type steadyHarness struct {
	workers []*steadyWorker
}

// newSteadyHarness builds P persistent workers over an S-server in-process
// tier (one ShardedStore per worker, like the LRPP engine's per-trainer
// stores), each cycling rowsPer distinct ids per iteration.
func newSteadyHarness(tb testing.TB, P, S, dim, rowsPer int) *steadyHarness {
	tb.Helper()
	tier := make([]*embed.Server, S)
	for s := range tier {
		tier[s] = embed.NewServer(1, dim, 7, 0.05)
	}
	h := &steadyHarness{}
	for p := 0; p < P; p++ {
		children := make([]transport.Store, S)
		for s := range children {
			children[s] = transport.NewInProcess(tier[s])
		}
		opt, err := newOptimizer("sgd", 0.05)
		if err != nil {
			tb.Fatal(err)
		}
		w := &steadyWorker{
			store: transport.NewShardedStore(children),
			cache: core.NewCache(dim),
			arena: transport.Rows(dim),
			opt:   opt,
			fold:  make([]float32, dim),
			work:  make(chan int),
			done:  make(chan struct{}),
		}
		for i := 0; i < rowsPer; i++ {
			w.ids = append(w.ids, uint64(p*rowsPer+i))
		}
		h.workers = append(h.workers, w)
		go w.loop()
	}
	return h
}

// step runs one synchronized iteration across every worker.
func (h *steadyHarness) step(iter int) {
	for _, w := range h.workers {
		w.work <- iter
	}
	for _, w := range h.workers {
		<-w.done
	}
}

func (h *steadyHarness) close() {
	for _, w := range h.workers {
		close(w.work)
	}
}

// BenchmarkLRPPSteadyState is the allocation acceptance benchmark: P=4
// trainers over an S=2 sharded tier must report 0 allocs/op once the pools
// are warm. CI runs it with -benchmem and fails the build on any nonzero
// allocs/op (see .github/workflows/ci.yml).
func BenchmarkLRPPSteadyState(b *testing.B) {
	h := newSteadyHarness(b, 4, 2, 16, 32)
	defer h.close()
	for i := 0; i < 5; i++ {
		h.step(i) // materialize rows, warm pools and map buckets
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.step(i + 5)
	}
	b.ReportMetric(float64(4*32), "rows/op")
}

// TestSteadyStateAllocFree is the same bar as a plain test, so `go test`
// catches an allocation regression even when nobody runs benchmarks.
func TestSteadyStateAllocFree(t *testing.T) {
	h := newSteadyHarness(t, 4, 2, 16, 32)
	defer h.close()
	iter := 0
	for ; iter < 5; iter++ {
		h.step(iter)
	}
	avg := testing.AllocsPerRun(50, func() {
		h.step(iter)
		iter++
	})
	if avg >= 0.1 {
		t.Fatalf("steady-state iteration allocates %.2f times per run, want 0", avg)
	}
}

// BenchmarkLRPPSyncCompressGrad sweeps the error-feedback compressed
// delayed-sync path on/off over the full loopback-TCP P=4 engine,
// reporting sync-class bytes so the trade (throughput vs wire volume) is
// visible in one table.
func BenchmarkLRPPSyncCompressGrad(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4)
			cfg.SyncCompressGrad = on
			for i := 0; i < b.N; i++ {
				res := runLRPPTCPOnce(b, cfg, 4)
				reportRun(b, res, nil)
				b.ReportMetric(float64(res.MeshClasses.SyncBytes)/float64(res.Iters), "syncB/iter")
			}
		})
	}
}
