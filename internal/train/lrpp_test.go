package train

import (
	"fmt"
	"testing"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// newStores returns p independent stores onto one server, one per LRPP
// trainer process.
func newStores(srv *embed.Server, p int) []transport.Store {
	trs := make([]transport.Store, p)
	for i := range trs {
		trs[i] = transport.NewInProcess(srv)
	}
	return trs
}

// newShardedStores returns p independent S-way sharded stores onto the
// tier srvs, one per LRPP trainer process (each trainer gets its own
// per-server transports, so traffic counters stay per-trainer).
func newShardedStores(srvs []*embed.Server, p int) []transport.Store {
	trs := make([]transport.Store, p)
	for i := range trs {
		children := make([]transport.Store, len(srvs))
		for s, srv := range srvs {
			children[s] = transport.NewInProcess(srv)
		}
		trs[i] = transport.NewShardedStore(children)
	}
	return trs
}

// newTier returns an S-server tier with identical seeds (tier splitting is
// deterministic, so the merged state is comparable to a one-server run).
func newTier(spec *data.Spec, S, shards int) []*embed.Server {
	srvs := make([]*embed.Server, S)
	for i := range srvs {
		srvs[i] = newServer(spec, shards)
	}
	return srvs
}

// TestLRPPMatchesBaselineAcrossTrainersAndPartitioners is the PR's central
// differential property: for every trainer count and both partitioners,
// the multi-trainer LRPP engine with delayed sync leaves the embedding
// servers bit-identical to the no-cache fetch-per-batch baseline, and
// reports bit-identical losses. Under -race this exercises every engine
// goroutine: per-trainer prefetch, replica pushes, the delayed-sync
// flusher, merge receivers, and background write-back.
func TestLRPPMatchesBaselineAcrossTrainersAndPartitioners(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, partName := range []string{"hash", "comm-aware"} {
			t.Run(fmt.Sprintf("P%d_%s", p, partName), func(t *testing.T) {
				cfg := tinyConfig()
				cfg.NumTrainers = p
				if partName == "comm-aware" {
					cfg.Partitioner = &core.CommAware{Own: core.Ownership{}}
				}

				srvBase := newServer(cfg.Spec, 3)
				base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}
				srvLRPP := newServer(cfg.Spec, 3)
				res, err := RunLRPP(cfg, newStores(srvLRPP, p), nil)
				if err != nil {
					t.Fatalf("lrpp: %v", err)
				}

				if d := embed.Diff(srvBase, srvLRPP); len(d) != 0 {
					t.Fatalf("embedding state diverged at %d ids (first: %v)", len(d), d[0])
				}
				if base.FirstLoss != res.FirstLoss || base.LastLoss != res.LastLoss {
					t.Fatalf("losses diverged: baseline %v/%v lrpp %v/%v",
						base.FirstLoss, base.LastLoss, res.FirstLoss, res.LastLoss)
				}
				if res.CachedHits == 0 {
					t.Fatal("LRPP cache never hit")
				}
				if res.Evicted != res.Prefetched {
					t.Fatalf("evicted %d != prefetched %d (rows leaked across partitions)",
						res.Evicted, res.Prefetched)
				}
				if p > 1 && res.ReplicaRows == 0 {
					t.Fatal("no replicas pushed despite multiple trainers")
				}
				if p > 1 && res.Mesh.Msgs == 0 {
					t.Fatal("no mesh traffic despite multiple trainers")
				}
				if res.Mesh.Dropped != 0 {
					t.Fatalf("%d mesh messages dropped mid-run", res.Mesh.Dropped)
				}
			})
		}
	}
}

// TestLRPPEagerAndDelayedSyncAgree: the delayed-sync lag is a scheduling
// choice, not a math change — eager flushing must land in the same state.
func TestLRPPEagerAndDelayedSyncAgree(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 3
	cfg.NumBatches = 24

	delayed := newServer(cfg.Spec, 2)
	resDelayed, err := RunLRPP(cfg, newStores(delayed, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SyncEager = true
	eager := newServer(cfg.Spec, 2)
	resEager, err := RunLRPP(cfg, newStores(eager, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(delayed, eager); len(d) != 0 {
		t.Fatalf("eager and delayed sync diverged at %v", d)
	}
	if resDelayed.DelayedFlushes == 0 {
		t.Fatal("delayed mode never delayed a flush")
	}
	if resEager.LastLoss != resDelayed.LastLoss {
		t.Fatalf("losses diverged: %v vs %v", resEager.LastLoss, resDelayed.LastLoss)
	}
}

// TestLRPPLookaheadInvariance: ℒ changes the schedule (and the delayed-
// sync lag at ℒ=1), never the math.
func TestLRPPLookaheadInvariance(t *testing.T) {
	var ref *embed.Server
	for _, L := range []int{1, 3, 16} {
		cfg := tinyConfig()
		cfg.NumTrainers = 2
		cfg.NumBatches = 20
		cfg.LookAhead = L
		srv := newServer(cfg.Spec, 2)
		if _, err := RunLRPP(cfg, newStores(srv, 2), nil); err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
		if ref == nil {
			ref = srv
			continue
		}
		if d := embed.Diff(ref, srv); len(d) != 0 {
			t.Fatalf("L=%d: state differs from L=1 at ids %v", L, d)
		}
	}
}

// TestLRPPOverSimulatedFabric runs the full engine with simulated-latency
// transports to the servers AND a simulated trainer-to-trainer mesh (whose
// links genuinely reorder messages), then checks state against a baseline
// on a plain transport — the network is a timing model only.
func TestLRPPOverSimulatedFabric(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 3
	cfg.NumBatches = 16
	cfg.LookAhead = 4

	srvBase := newServer(cfg.Spec, 2)
	if _, err := RunBaseline(cfg, transport.NewInProcess(srvBase)); err != nil {
		t.Fatal(err)
	}

	srv := newServer(cfg.Spec, 2)
	trs := make([]transport.Store, cfg.NumTrainers)
	for i := range trs {
		trs[i] = transport.NewSimNet(srv, time.Millisecond, 0)
	}
	mesh := transport.NewSimMesh(cfg.NumTrainers, 500*time.Microsecond, 50e6)
	res, err := RunLRPP(cfg, trs, mesh)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, srv); len(d) != 0 {
		t.Fatalf("simulated-fabric run diverged from baseline at %v", d)
	}
	if res.Mesh.SimulatedDelay == 0 {
		t.Fatal("sim mesh recorded no delay")
	}
	if res.Transport.SimulatedDelay == 0 {
		t.Fatal("simnet transports recorded no delay")
	}
	if res.Mesh.Dropped != 0 {
		t.Fatalf("%d mesh messages dropped", res.Mesh.Dropped)
	}
}

// TestLRPPValidation covers the config errors specific to the LRPP entry
// point.
func TestLRPPValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 2
	srv := newServer(cfg.Spec, 1)

	bad := cfg
	bad.LookAhead = 0
	if _, err := RunLRPP(bad, newStores(srv, 2), nil); err == nil {
		t.Fatal("lookahead 0 accepted")
	}
	if _, err := RunLRPP(cfg, newStores(srv, 1), nil); err == nil {
		t.Fatal("transport/trainer count mismatch accepted")
	}
	if _, err := RunLRPP(cfg, newStores(srv, 2), transport.NewInprocMesh(3)); err == nil {
		t.Fatal("mesh size mismatch accepted")
	}
}
