package train

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// runWorkers runs one LRPP worker per rank as goroutines sharing mesh, each
// with its own transport, and returns the per-rank results.
func runWorkers(t *testing.T, cfg Config, trs []transport.Store, mesh transport.Mesh) []*Result {
	t.Helper()
	P := cfg.NumTrainers
	results := make([]*Result, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = RunLRPPWorker(cfg, p, trs[p], mesh)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", p, err)
		}
	}
	return results
}

// TestLRPPWorkersMatchBaseline is the multi-process engine's differential
// property, run over every mesh fabric: P RunLRPPWorker instances — each
// with its own engine state, its own collective reducer, and (for ranks >
// 0) plans arriving over the mesh — leave the embedding servers
// bit-identical to the no-cache baseline and report its exact losses. The
// sim fabric genuinely reorders plan/collective/replica messages in
// flight; the tcp fabric runs everything through real sockets and the
// little-endian codec.
func TestLRPPWorkersMatchBaseline(t *testing.T) {
	for _, meshName := range []string{"inproc", "sim", "tcp"} {
		for _, P := range []int{1, 3} {
			if meshName != "sim" && P == 1 {
				continue // P=1 exercises no fabric; one run of it suffices
			}
			t.Run(fmt.Sprintf("%s_P%d", meshName, P), func(t *testing.T) {
				cfg := tinyConfig()
				cfg.NumTrainers = P
				cfg.NumBatches = 16

				srvBase := newServer(cfg.Spec, 3)
				base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}

				srv := newServer(cfg.Spec, 3)
				var mesh transport.Mesh
				switch meshName {
				case "inproc":
					mesh = transport.NewInprocMesh(P)
				case "sim":
					mesh = transport.NewSimMesh(P, 200*time.Microsecond, 20e6)
				case "tcp":
					lb, err := transport.NewLoopbackTCPMesh(P)
					if err != nil {
						t.Fatal(err)
					}
					defer lb.Shutdown()
					mesh = lb
				}
				results := runWorkers(t, cfg, newStores(srv, P), mesh)

				if d := embed.Diff(srvBase, srv); len(d) != 0 {
					t.Fatalf("embedding state diverged at %d ids (first: %v)", len(d), d[0])
				}
				// Every worker records the identical all-reduced losses.
				for p, res := range results {
					if res.FirstLoss != base.FirstLoss || res.LastLoss != base.LastLoss {
						t.Fatalf("worker %d losses diverged: %v/%v vs baseline %v/%v",
							p, res.FirstLoss, res.LastLoss, base.FirstLoss, base.LastLoss)
					}
				}
				if P > 1 && results[1].ReplicaRows == 0 && results[0].ReplicaRows == 0 {
					t.Fatal("no replicas pushed despite multiple trainers")
				}
			})
		}
	}
}

// TestLRPPWorkersOverTCPEndToEnd is the full distributed configuration in
// one test: an embedding-server process loop served over a real listener,
// every worker reaching it through its own TCPLink, and the trainer mesh
// over
// loopback TCP — then the state is certified against a baseline run the way
// cmd/bagpipe -net tcp -verify does, via the remote checkpoint.
func TestLRPPWorkersOverTCPEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 3
	cfg.NumBatches = 20

	srv := newServer(cfg.Spec, 3)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- transport.ServeEmbed(lis, srv) }()

	mesh, err := transport.NewLoopbackTCPMesh(cfg.NumTrainers)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Shutdown()
	trs := make([]transport.Store, cfg.NumTrainers)
	links := make([]*transport.TCPLink, cfg.NumTrainers)
	for i := range trs {
		link, err := transport.DialTCPLink(lis.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = link
		trs[i] = link
	}
	results := runWorkers(t, cfg, trs, mesh)

	srvBase := newServer(cfg.Spec, 3)
	base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatal(err)
	}
	if fp := links[0].Fingerprint(); fp != srvBase.Fingerprint() {
		t.Fatalf("remote state fingerprint %x != baseline %x", fp, srvBase.Fingerprint())
	}
	for p, res := range results {
		if res.LastLoss != base.LastLoss {
			t.Fatalf("worker %d last loss %v != baseline %v", p, res.LastLoss, base.LastLoss)
		}
		if res.Transport.RowsFetched == 0 {
			t.Fatalf("worker %d fetched nothing over its link", p)
		}
	}
	links[0].Shutdown()
	for _, l := range links {
		l.Close()
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("ServeEmbed: %v", err)
	}
}

// TestLRPPWorkerValidation covers the worker entry point's config errors.
func TestLRPPWorkerValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumTrainers = 2
	srv := newServer(cfg.Spec, 1)
	tr := transport.NewInProcess(srv)

	if _, err := RunLRPPWorker(cfg, 0, tr, nil); err == nil {
		t.Fatal("nil mesh accepted")
	}
	if _, err := RunLRPPWorker(cfg, 2, tr, transport.NewInprocMesh(2)); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := RunLRPPWorker(cfg, 0, tr, transport.NewInprocMesh(3)); err == nil {
		t.Fatal("mesh size mismatch accepted")
	}
	bad := cfg
	bad.LookAhead = 0
	if _, err := RunLRPPWorker(bad, 0, tr, transport.NewInprocMesh(2)); err == nil {
		t.Fatal("lookahead 0 accepted")
	}
}
