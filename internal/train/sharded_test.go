package train

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// The sharded-tier differential matrix: every engine, trained against an
// S-server tier through the ShardedStore scatter/gather client, must leave
// the *merged* tier state bit-identical to the no-cache baseline on a
// one-server reference — the tier-width counterpart of the fabric and
// collective conformance matrices. This is the in-test form of
// `bagpipe -trainers P -servers S -net … -verify`.

// TestLRPPShardedTierMatchesBaseline sweeps trainer count × tier width for
// the LRPP engine over in-process stores, and checks the per-server
// traffic counters prove the fan-out (every server of the tier served
// fetches and writes).
func TestLRPPShardedTierMatchesBaseline(t *testing.T) {
	for _, P := range []int{1, 2, 4} {
		for _, S := range []int{2, 4} {
			t.Run(fmt.Sprintf("P%d_S%d", P, S), func(t *testing.T) {
				cfg := tinyConfig()
				cfg.NumTrainers = P

				srvBase := newServer(cfg.Spec, 3)
				base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}

				tier := newTier(cfg.Spec, S, 3)
				res, err := RunLRPP(cfg, newShardedStores(tier, P), nil)
				if err != nil {
					t.Fatalf("lrpp over %d servers: %v", S, err)
				}

				merged, err := embed.MergeTier(tier)
				if err != nil {
					t.Fatalf("merge tier: %v", err)
				}
				if d := embed.Diff(srvBase, merged); len(d) != 0 {
					t.Fatalf("merged tier diverged from baseline at %d ids (first: %v)", len(d), d[0])
				}
				if base.FirstLoss != res.FirstLoss || base.LastLoss != res.LastLoss {
					t.Fatalf("losses diverged: baseline %v/%v sharded %v/%v",
						base.FirstLoss, base.LastLoss, res.FirstLoss, res.LastLoss)
				}
				if len(res.StoreServers) != S {
					t.Fatalf("StoreServers has %d entries for %d servers", len(res.StoreServers), S)
				}
				var sum transport.Stats
				for s, ss := range res.StoreServers {
					if ss.Fetches == 0 || ss.Writes == 0 {
						t.Fatalf("server %d saw fetches=%d writes=%d: the fan-out never reached it",
							s, ss.Fetches, ss.Writes)
					}
					sum.Add(ss)
				}
				if sum != res.Transport {
					t.Fatalf("per-server stats sum %+v != aggregate %+v", sum, res.Transport)
				}
			})
		}
	}
}

// TestEnginesShardedTierAcrossFabrics runs the single-trainer-process
// engines (baseline, pipelined) against a 2-server tier over the inproc
// and sim fabrics — the carrier-not-semantic-layer property at the engine
// level.
func TestEnginesShardedTierAcrossFabrics(t *testing.T) {
	const S = 2
	cfg := tinyConfig()
	cfg.NumBatches = 20

	ref := newServer(cfg.Spec, 3)
	if _, err := RunBaseline(cfg, transport.NewInProcess(ref)); err != nil {
		t.Fatal(err)
	}

	shardedStore := func(tier []*embed.Server, sim bool) transport.Store {
		children := make([]transport.Store, len(tier))
		for i, srv := range tier {
			if sim {
				children[i] = transport.NewSimNet(srv, 200*time.Microsecond, 0)
			} else {
				children[i] = transport.NewInProcess(srv)
			}
		}
		return transport.NewShardedStore(children)
	}
	for _, engine := range []string{"baseline", "pipelined"} {
		for _, fabric := range []string{"inproc", "sim"} {
			t.Run(engine+"_"+fabric, func(t *testing.T) {
				tier := newTier(cfg.Spec, S, 3)
				store := shardedStore(tier, fabric == "sim")
				var err error
				if engine == "baseline" {
					_, err = RunBaseline(cfg, store)
				} else {
					_, err = RunPipelined(cfg, store)
				}
				if err != nil {
					t.Fatal(err)
				}
				merged, err := embed.MergeTier(tier)
				if err != nil {
					t.Fatal(err)
				}
				if d := embed.Diff(ref, merged); len(d) != 0 {
					t.Fatalf("%s over %s sharded tier diverged at %v", engine, fabric, d)
				}
			})
		}
	}
}

// TestLRPPWorkersShardedTCPEndToEnd is the full multi-server distributed
// configuration: 2 embedding-server loops over real listeners, 3 worker
// engines each reaching the tier through a ShardedStore of TCPLinks and
// meshed over loopback TCP — then the tier is certified against a baseline
// both ways the driver supports: the cheap combined fingerprint and the
// restored, merged checkpoints.
func TestLRPPWorkersShardedTCPEndToEnd(t *testing.T) {
	const S = 2
	cfg := tinyConfig()
	cfg.NumTrainers = 3
	cfg.NumBatches = 20

	tier := newTier(cfg.Spec, S, 3)
	addrs := make([]string, S)
	serveDone := make([]chan error, S)
	for s, srv := range tier {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = lis.Addr().String()
		done := make(chan error, 1)
		serveDone[s] = done
		go func(srv *embed.Server) { done <- transport.ServeEmbed(lis, srv) }(srv)
	}

	mesh, err := transport.NewLoopbackTCPMesh(cfg.NumTrainers)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Shutdown()
	var allLinks []*transport.TCPLink
	var linksMu sync.Mutex
	trs := make([]transport.Store, cfg.NumTrainers)
	for p := range trs {
		children := make([]transport.Store, S)
		for s := range children {
			link, err := transport.DialTCPLink(addrs[s], 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			linksMu.Lock()
			allLinks = append(allLinks, link)
			linksMu.Unlock()
			children[s] = link
		}
		trs[p] = transport.NewShardedStore(children)
	}
	results := runWorkers(t, cfg, trs, mesh)

	srvBase := newServer(cfg.Spec, 3)
	base, err := RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatal(err)
	}
	// The cheap certificate: per-server fingerprints combine
	// order-independently to the S=1 reference's.
	if fp := trs[0].Fingerprint(); fp != srvBase.Fingerprint() {
		t.Fatalf("remote tier fingerprint %x != baseline %x", fp, srvBase.Fingerprint())
	}
	for p, res := range results {
		if res.LastLoss != base.LastLoss {
			t.Fatalf("worker %d last loss %v != baseline %v", p, res.LastLoss, base.LastLoss)
		}
		if len(res.StoreServers) != S {
			t.Fatalf("worker %d StoreServers has %d entries for %d servers", p, len(res.StoreServers), S)
		}
	}
	trs[0].Shutdown()
	for _, l := range allLinks {
		l.Close()
	}
	for s, done := range serveDone {
		if err := <-done; err != nil {
			t.Fatalf("server %d: %v", s, err)
		}
	}
	// And the strong certificate, offline: merge the tier and diff.
	merged, err := embed.MergeTier(tier)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, merged); len(d) != 0 {
		t.Fatalf("merged remote tier diverged from baseline at %v", d)
	}
}

// TestMergeTierValidation covers the tier-merge error paths: ownership
// violations and mismatched widths are corruption, not data.
func TestMergeTierValidation(t *testing.T) {
	if _, err := embed.MergeTier(nil); err == nil {
		t.Fatal("empty tier merged")
	}
	// A row materialized on the wrong server must be rejected.
	tier := newTier(tinySpec(), 2, 2)
	tier[0].Write([]uint64{3}, [][]float32{make([]float32, tinySpec().EmbDim)}) // id 3 belongs to server 1
	if _, err := embed.MergeTier(tier); err == nil {
		t.Fatal("sharding-map violation merged silently")
	}
}
