package train

import (
	"testing"
	"time"

	"bagpipe/internal/reshard"
	"bagpipe/internal/transport"
)

// BenchmarkReshardInterference measures what a live migration costs
// training: the same LRPP run over a 2-server tier, first undisturbed, then
// with a coordinator growing the tier 2->4 mid-run (dual-write window,
// export/stream/verify rounds, and per-partition cutovers all riding the
// same servers the trainers are hammering). Each sub-benchmark reports
// train ex/s — the pair lands in BENCH_train.json as the
// reshard-interference sweep.
func BenchmarkReshardInterference(b *testing.B) {
	b.Run("reshard-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(runTrainUnderReshard(b, 0), "train-ex/s")
		}
	})
	b.Run("reshard-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(runTrainUnderReshard(b, 4), "train-ex/s")
		}
	})
}

// runTrainUnderReshard runs one LRPP training pass over a replicated
// 2-server tier, migrating it to `to` servers mid-run (0 disables the
// migration), and returns train examples/sec.
func runTrainUnderReshard(b *testing.B, to int) float64 {
	b.Helper()
	const P, S, R, capacity = 2, 2, 2, 4
	cfg := tinyConfig()
	cfg.NumTrainers = P
	cfg.NumBatches = 40

	tier := newTier(cfg.Spec, capacity, 3)
	mkStore := func() transport.Store {
		children := make([]transport.Store, capacity)
		for s, srv := range tier {
			children[s] = transport.NewInProcess(srv)
		}
		return transport.NewTier(children, transport.TierOptions{
			Replicate:      R,
			InitialServers: S,
		})
	}
	trs := make([]transport.Store, P)
	for i := range trs {
		trs[i] = mkStore()
	}

	reshardDone := make(chan struct{})
	if to > 0 {
		coord := mkStore().(*transport.ShardedStore)
		go func() {
			defer close(reshardDone)
			time.Sleep(5 * time.Millisecond)
			rep, err := reshard.Run(coord, reshard.Options{
				To:           to,
				RoundBackoff: time.Millisecond,
			})
			if err != nil {
				b.Errorf("reshard: %v", err)
			} else if rep.Aborted {
				b.Errorf("reshard aborted: %+v", rep)
			}
		}()
	} else {
		close(reshardDone)
	}

	res, err := RunLRPP(cfg, trs, nil)
	<-reshardDone
	if err != nil {
		b.Fatal(err)
	}
	return res.Throughput()
}
