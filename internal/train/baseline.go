package train

import (
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/transport"
)

// RunBaseline trains with the fetch-per-batch strategy every system in §2.3
// of the paper starts from: no cache, no lookahead, no overlap. Each
// iteration synchronously fetches the batch's unique embedding rows from
// the servers, runs the data-parallel ranks, applies the sparse updates,
// and writes every row straight back. It is the reference the pipelined
// engine is differentially tested against: over the same Config the two
// must leave the embedding tier in bit-identical state — whatever the tier
// width: tr is the Store abstraction, so the same loop runs against one
// server or an S-way ShardedStore unchanged.
func RunBaseline(cfg Config, tr transport.Store) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gen := data.NewGenerator(cfg.Spec, cfg.Seed)
	rk, err := newRanks(&cfg)
	if err != nil {
		return nil, err
	}
	defer rk.close()
	rowOpt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	part := cfg.partitioner()

	res := &Result{Engine: "baseline"}
	start := time.Now()
	var lossSum float64
	for iter := 0; iter < cfg.NumBatches; iter++ {
		b := gen.Batch(iter, cfg.BatchSize)
		ids := b.UniqueIDs()
		fetched := tr.Fetch(ids)
		rows := make(map[uint64][]float32, len(ids))
		for i, id := range ids {
			rows[id] = fetched[i]
		}

		assign := part.Assign(b, cfg.NumTrainers)
		loss, grads := rk.step(b, assign, rows)

		// Apply sparse updates in sorted-ID order (the same order the
		// pipelined engine uses) and write everything straight back.
		for i, id := range ids {
			rowOpt.UpdateRow(id, fetched[i], grads[id])
		}
		tr.Write(ids, fetched)

		if iter == 0 {
			res.FirstLoss = loss
		}
		res.LastLoss = loss
		lossSum += float64(loss)
		res.UniqueIDs += int64(len(ids))
		res.Prefetched += int64(len(ids))
	}
	res.Iters = cfg.NumBatches
	res.Examples = int64(cfg.NumBatches) * int64(cfg.BatchSize)
	res.Elapsed = time.Since(start)
	res.AvgLoss = lossSum / float64(cfg.NumBatches)
	res.Transport = tr.Stats()
	res.StoreServers = tr.ServerStats()
	addTierHealth(res, tr)
	return res, nil
}
