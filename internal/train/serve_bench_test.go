package train

import (
	"testing"
	"time"

	"bagpipe/internal/serve"
	"bagpipe/internal/transport"
)

// BenchmarkServeInterference measures what serving load costs training: the
// same LRPP run over a 2-server tier, first alone, then with closed-loop
// inference clients hammering the tier through the read path. Each
// sub-benchmark reports train ex/s (plus served qps for the serving leg) —
// the pair lands in BENCH_train.json as the serve-interference sweep.
func BenchmarkServeInterference(b *testing.B) {
	b.Run("serving-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exps, _ := runTrainUnderServing(b, 0)
			b.ReportMetric(exps, "train-ex/s")
		}
	})
	b.Run("serving-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exps, qps := runTrainUnderServing(b, 4)
			b.ReportMetric(exps, "train-ex/s")
			b.ReportMetric(qps, "served-qps")
		}
	})
}

// runTrainUnderServing runs one LRPP training pass over a 2-server tier
// with clients unpaced closed-loop serving clients riding the same tier
// (0 disables serving), returning train examples/sec and served qps.
func runTrainUnderServing(b *testing.B, clients int) (exPerSec, qps float64) {
	b.Helper()
	const P, S = 2, 2
	cfg := tinyConfig()
	cfg.NumTrainers = P
	cfg.NumBatches = 40

	tier := newTier(cfg.Spec, S, 3)
	mkStore := func() transport.Store {
		children := make([]transport.Store, S)
		for s, srv := range tier {
			children[s] = transport.NewInProcess(srv)
		}
		return transport.NewShardedStore(children)
	}
	trs := make([]transport.Store, P)
	for i := range trs {
		trs[i] = mkStore()
	}
	prog := NewProgress(P)
	cfg.Progress = prog

	trainDone := make(chan struct{})
	var lr serve.LoadResult
	loadDone := make(chan struct{})
	if clients > 0 {
		fe, err := serve.New(serve.Config{
			Store:     transport.AsReadStore(mkStore()),
			Spec:      cfg.Spec,
			Model:     cfg.Model,
			Seed:      cfg.Seed,
			Epoch:     prog,
			MaxStale:  4,
			CacheRows: 256,
			Clients:   clients,
			Servers:   S,
		})
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			defer close(loadDone)
			lr, err = serve.RunLoad(serve.LoadConfig{
				Frontend: fe,
				Spec:     cfg.Spec,
				Seed:     17,
				Clients:  clients,
				Dist:     "zipf",
				Duration: time.Minute,
			}, trainDone)
			if err != nil {
				b.Error(err)
			}
		}()
	} else {
		close(loadDone)
	}

	res, err := RunLRPP(cfg, trs, nil)
	close(trainDone)
	<-loadDone
	if err != nil {
		b.Fatal(err)
	}
	exPerSec = res.Throughput()
	if clients > 0 && lr.Elapsed > 0 {
		qps = float64(lr.Served) / lr.Elapsed.Seconds()
	}
	return exPerSec, qps
}
