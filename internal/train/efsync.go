package train

import (
	"bagpipe/internal/collective"
	"bagpipe/internal/transport"
)

// efState is one trainer's error-feedback compressor for the
// -sync-compress-grad mode: delayed-sync gradient flushes are quantized to
// float16 at the sender, and the rounding error of every flush is carried
// per (owner, row) and injected into that row's next flush. Plain
// quantization would re-lose up to half an f16 ulp of gradient signal on
// every iteration a row stays hot; with error feedback the loss is bounded
// by one residual per row, no matter how many iterations it trains — the
// standard compensation scheme of compressed-gradient training systems.
//
// The state lives entirely on the flusher goroutine (no locking): compress
// is called once per (owner, id, iteration) in the deterministic flush-pass
// order, so compressed runs remain bit-identical across runs and fabrics —
// just not to the lossless baseline, which is why -verify refuses the flag.
type efState struct {
	dim int
	res map[int]map[uint64][]float32 // owner → id → carried f16 rounding error
}

func newEFState(dim int) *efState {
	return &efState{dim: dim, res: make(map[int]map[uint64][]float32)}
}

// compress quantizes one (owner, id)'s contributions for one iteration in
// place. The carried residual is injected into the first entry — the owner
// folds entries additively, so adding it to any one entry adds it to the
// merged gradient — then every entry is rounded through float16 and the new
// rounding error becomes the residual the next flush carries.
//
// The entries' gradient slices are disjoint sub-ranges of the backward
// pass's per-example buffers (owned-row ranges are merged on the trainer
// loop, remote-row ranges belong to this flusher), so the in-place rewrite
// races with nothing.
func (ef *efState) compress(owner int, id uint64, es []contribEntry) {
	if len(es) == 0 {
		return
	}
	byID := ef.res[owner]
	if byID == nil {
		byID = make(map[uint64][]float32)
		ef.res[owner] = byID
	}
	r := byID[id]
	if r == nil {
		r = make([]float32, ef.dim)
		byID[id] = r
	}
	collective.AddF32(es[0].Grad, r)
	clear(r)
	for _, e := range es {
		g := e.Grad
		for k, x := range g {
			q := transport.F32FromF16(transport.F16FromF32(x))
			r[k] += x - q
			g[k] = q
		}
	}
}
