package train

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/transport"
)

// prefetched is one iteration moving through the pipeline: the oracle's
// decision plus a future holding the rows the prefetch pool fetched for it.
type prefetched struct {
	dec   *core.Decision
	stats core.IterStats
	rows  chan [][]float32 // buffered(1); the assigned worker delivers once
}

// maintJob is one iteration's dirty evictions bound for write-back.
type maintJob struct {
	iter      int
	evictions []core.Eviction
}

// RunPipelined trains with Bagpipe's staged, concurrent engine:
//
//   - an oracle goroutine walks the batch stream ℒ iterations ahead and
//     emits Decisions (Algorithm 1);
//   - a dispatcher hands each decision to a prefetch worker pool that
//     fetches cache misses from the embedding servers, while delivery
//     order back to the trainer stays iteration order;
//   - the trainer inserts prefetched rows into the TTL cache, runs the
//     data-parallel ranks (dense gradients all-reduced rank-ordered),
//     applies sparse updates to the cached rows, and expires TTLs;
//   - a maintenance goroutine writes dirty evictions back to the servers
//     in the background (§4, "Overlapping cache management with training").
//
// A token bucket of depth ℒ ties the stages together: the prefetch for
// iteration x is issued only after iteration x−ℒ's write-backs finished,
// which is precisely the oracle's consistency window — an id being
// prefetched was last written back at least ℒ iterations ago, so the
// servers cannot serve a stale row. The cache itself is touched only by
// the trainer goroutine, so it needs no locking, exactly as the paper's
// disjointness argument promises.
func RunPipelined(cfg Config, tr transport.Store) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LookAhead < 1 {
		return nil, fmt.Errorf("train: pipelined engine needs LookAhead >= 1, got %d", cfg.LookAhead)
	}
	gen := data.NewGenerator(cfg.Spec, cfg.Seed)
	oracle := core.NewOracle(core.NewGeneratorSource(gen, cfg.BatchSize, cfg.NumBatches), cfg.LookAhead, cfg.NumTrainers)
	oracle.Partitioner = cfg.Partitioner // nil keeps the oracle's Contiguous default
	rk, err := newRanks(&cfg)
	if err != nil {
		return nil, err
	}
	defer rk.close()
	rowOpt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	cache := core.NewCache(cfg.Spec.EmbDim)
	L := cfg.LookAhead

	decCh := make(chan *prefetched, L)   // oracle → dispatcher
	orderCh := make(chan *prefetched, L) // dispatcher → trainer (iteration order)
	jobCh := make(chan *prefetched, L)   // dispatcher → prefetch pool
	maintCh := make(chan maintJob, L)    // trainer → maintenance
	tokens := make(chan struct{}, L)     // maintenance → dispatcher backpressure
	for i := 0; i < L; i++ {
		tokens <- struct{}{}
	}

	// Stage-activity probes: cheap evidence (reported in Result and checked
	// by tests) that prefetch and maintenance really run concurrently with
	// training rather than being serialized by accident.
	var activePrefetch, activeMaint, activeTrain atomic.Int64
	var overlapPT, overlapMT atomic.Int64
	noteOverlap := func() {
		if activePrefetch.Load() > 0 {
			overlapPT.Add(1)
		}
		if activeMaint.Load() > 0 {
			overlapMT.Add(1)
		}
	}

	// Stage 1: oracle lookahead.
	go func() {
		defer close(decCh)
		for {
			d, ok := oracle.Next()
			if !ok {
				return
			}
			decCh <- &prefetched{dec: d, stats: d.Stats(oracle.CacheOccupancy()), rows: make(chan [][]float32, 1)}
		}
	}()

	// Stage 2: dispatcher — acquires a lookahead token per iteration and
	// fans work to the pool while preserving delivery order.
	go func() {
		defer close(orderCh)
		defer close(jobCh)
		for p := range decCh {
			<-tokens
			orderCh <- p
			jobCh <- p
		}
	}()

	// Stage 2b: prefetch worker pool.
	var workers sync.WaitGroup
	for w := 0; w < cfg.prefetchWorkers(); w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for p := range jobCh {
				var rows [][]float32
				if len(p.dec.Prefetch) > 0 {
					activePrefetch.Add(1)
					if activeTrain.Load() > 0 {
						overlapPT.Add(1)
					}
					rows = tr.Fetch(p.dec.Prefetch)
					activePrefetch.Add(-1)
				}
				p.rows <- rows
			}
		}()
	}

	// Stage 4: background cache maintenance — dirty-eviction write-backs.
	maintDone := make(chan struct{})
	go func() {
		defer close(maintDone)
		for job := range maintCh {
			if len(job.evictions) > 0 {
				activeMaint.Add(1)
				if activeTrain.Load() > 0 {
					overlapMT.Add(1)
				}
				ids := make([]uint64, len(job.evictions))
				rows := make([][]float32, len(job.evictions))
				for i, ev := range job.evictions {
					ids[i] = ev.ID
					rows[i] = ev.Row
				}
				tr.Write(ids, rows)
				activeMaint.Add(-1)
			}
			tokens <- struct{}{} // iteration job.iter fully retired
		}
	}()

	// Stage 3: the trainer (this goroutine). On an invariant failure the
	// loop stops training but keeps draining the pipeline (receiving every
	// future and retiring every iteration's token), so the upstream
	// goroutines all run to completion and nothing touches the transport
	// after RunPipelined returns.
	res := &Result{Engine: "pipelined"}
	start := time.Now()
	var lossSum float64
	var runErr error
	for p := range orderCh {
		d := p.dec
		rows := <-p.rows
		if runErr != nil {
			maintCh <- maintJob{iter: d.Iter}
			continue
		}
		for i, id := range d.Prefetch {
			cache.Insert(id, rows[i], d.TTL[id])
		}
		gathered := make(map[uint64][]float32, len(d.TTL))
		for id, ttl := range d.TTL {
			e, ok := cache.Get(id)
			if !ok {
				runErr = fmt.Errorf("train: iter %d: id %d missing from cache (oracle consistency violated)", d.Iter, id)
				break
			}
			e.TTL = ttl // TTLUpdateRequest for cached hits; no-op for fresh inserts
			gathered[id] = e.Row
		}
		if runErr != nil {
			maintCh <- maintJob{iter: d.Iter}
			continue
		}

		activeTrain.Add(1)
		noteOverlap()
		loss, grads := rk.step(d.Batch, d.Assign, gathered)
		noteOverlap()
		activeTrain.Add(-1)

		for _, id := range sortedIDs(grads) {
			e, _ := cache.Peek(id)
			rowOpt.UpdateRow(id, e.Row, grads[id])
			e.Dirty = true
		}
		evs := cache.EvictExpired(d.Iter)
		maintCh <- maintJob{iter: d.Iter, evictions: evs}

		if res.Iters == 0 {
			res.FirstLoss = loss
		}
		res.LastLoss = loss
		lossSum += float64(loss)
		res.Iters++
		res.UniqueIDs += int64(p.stats.UniqueIDs)
		res.CachedHits += int64(p.stats.CachedHits)
		res.Prefetched += int64(p.stats.Prefetched)
		res.Evicted += int64(len(evs))
	}
	close(maintCh)
	workers.Wait()
	<-maintDone
	if runErr != nil {
		return nil, runErr
	}

	if cache.Len() != 0 {
		return nil, fmt.Errorf("train: %d rows still cached after final iteration (TTL bookkeeping broken)", cache.Len())
	}
	res.Examples = int64(res.Iters) * int64(cfg.BatchSize)
	res.Elapsed = time.Since(start)
	if res.Iters > 0 {
		res.AvgLoss = lossSum / float64(res.Iters)
	}
	res.PeakCache = cache.PeakRows()
	res.OverlapPrefetchTrain = overlapPT.Load()
	res.OverlapMaintTrain = overlapMT.Load()
	res.Transport = tr.Stats()
	res.StoreServers = tr.ServerStats()
	addTierHealth(res, tr)
	return res, nil
}
