package train

import (
	"fmt"
	"sync"

	"bagpipe/internal/collective"
	"bagpipe/internal/transport"
)

// This file is the mesh-based side of the collective layer: the reducer a
// multi-process LRPP worker steps its dense gradients and loss through
// (collective.Collective's mesh implementation). Three strategies are
// selectable per run (cfg.Collective, -collective at the CLI), all folding
// contributions per segment in rank order from zero so every strategy —
// like the in-process collective.Group — produces bit-identical results:
//
//   - rooted: the PR-3 baseline. One CollMsg per dense parameter per step,
//     reduced through rank 0 and broadcast back: 2(P−1) frames per
//     *parameter* per iteration.
//   - fused: one FusedCollMsg packs every parameter segment plus the loss
//     term behind a segment table, reduced through rank 0 and broadcast:
//     2(P−1) frames per *iteration* — the frame count drops by the number
//     of dense parameters.
//   - ring: the same fused frame, but topology-aware: each rank sends its
//     contribution to (rank+1) mod P and forwards what it receives, so
//     after P−1 hops every rank holds all P contributions and folds them
//     locally in rank order. P(P−1) smaller-haul frames per iteration, but
//     no rank-0 incast: every link carries exactly P−1 frames, where the
//     rooted strategies put all 2(P−1) on rank 0's links.
//   - tree: rank-pairing over a binomial tree of depth ⌈log₂P⌉ (parent of
//     rank r is r with its lowest set bit cleared). Contributions are
//     relayed up the tree *unfolded* — partial sums at interior nodes would
//     change the float summation order and break bit-identity — so rank 0
//     still folds all P frames in rank order; the result then travels the
//     P−1 tree edges back down. Σ popcount(r) + (P−1) frames per
//     iteration, and rank 0's broadcast fanout drops from P−1 sends to
//     ⌈log₂P⌉ — the per-endpoint send pressure a large-P rooted broadcast
//     concentrates on rank 0 is spread over the tree.
//
// Every call is tagged with a sequence number (all ranks make the same
// sequence of collective calls, as with MPI communicators), so arbitrarily
// reordered delivery cannot mismatch phases. The trainer's receiver
// goroutine feeds inbound frames in through deliver/deliverFused.

// Collective strategy names (Config.Collective / -collective).
const (
	CollRooted = "rooted"
	CollFused  = "fused"
	CollRing   = "ring"
	CollTree   = "tree"
)

// treeParent returns rank r's parent in the binomial tree: r with its
// lowest set bit cleared (undefined for the root, which never sends up).
func treeParent(r int) int { return r & (r - 1) }

// treeChildren returns rank r's children in the binomial tree over n
// ranks: r + 2^j for every power of two below r's lowest set bit (every
// power for the root), bounded by n.
func treeChildren(r, n int) []int {
	var out []int
	for bit := 1; r+bit < n; bit <<= 1 {
		if r != 0 && bit >= r&-r {
			break
		}
		out = append(out, r+bit)
	}
	return out
}

// meshColl implements collective.Collective over a mesh endpoint.
type meshColl struct {
	rank, n  int
	ep       transport.Endpoint
	strategy string
	eng      *lrppEngine // per-class traffic accounting

	// Fixed topology, computed once: this rank's parent and children in
	// the binomial tree (tree strategy), and the root's result fanout for
	// the strategy (all peers under fused, rank 0's children under tree;
	// only rank 0 reads it).
	parent     int
	kids       []int
	rootFanout []int

	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint64
	contrib map[uint64]map[int]transport.CollMsg      // rooted, root: seq → sender → contribution
	result  map[uint64]transport.CollMsg              // rooted, non-root: seq → root's result
	fused   map[uint64]map[int]transport.FusedCollMsg // fused root / ring all: seq → origin → contribution
	fresult map[uint64]transport.FusedCollMsg         // fused, non-root: seq → root's result
}

func newMeshColl(rank, n int, ep transport.Endpoint, strategy string, eng *lrppEngine) *meshColl {
	c := &meshColl{
		rank: rank, n: n, ep: ep, strategy: strategy, eng: eng,
		parent:  treeParent(rank),
		kids:    treeChildren(rank, n),
		contrib: make(map[uint64]map[int]transport.CollMsg),
		result:  make(map[uint64]transport.CollMsg),
		fused:   make(map[uint64]map[int]transport.FusedCollMsg),
		fresult: make(map[uint64]transport.FusedCollMsg),
	}
	if rank == 0 {
		if strategy == CollTree {
			c.rootFanout = c.kids
		} else {
			for r := 1; r < n; r++ {
				c.rootFanout = append(c.rootFanout, r)
			}
		}
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// send is the one place collective frames leave this rank: it charges the
// engine's collective-class traffic counters alongside the mesh send.
func (c *meshColl) send(to int, bytes int64, payload any) {
	c.ep.Send(to, bytes, payload)
	if c.eng != nil {
		c.eng.countSend(classColl, bytes)
	}
}

// deliver routes one inbound unfused collective message (called from the
// trainer's mesh receiver goroutine).
func (c *meshColl) deliver(from int, m transport.CollMsg) {
	c.mu.Lock()
	if c.rank == 0 {
		byFrom := c.contrib[m.Seq]
		if byFrom == nil {
			byFrom = make(map[int]transport.CollMsg, c.n-1)
			c.contrib[m.Seq] = byFrom
		}
		byFrom[from] = m
	} else {
		c.result[m.Seq] = m
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// deliverFused routes one inbound fused frame. Under the ring and tree
// strategies the receiver is also a relay — ring: a contribution is
// forwarded to the next rank unless that rank is its origin (the frame has
// then completed its P−1 hops); tree: a contribution climbing through a
// non-root rank is relayed to the parent untouched (folding here would
// change the summation order), and the root's descending result is
// forwarded to this rank's children. Forwarding happens before the local
// deposit so a frame's next hop never waits on this rank's fold.
func (c *meshColl) deliverFused(m transport.FusedCollMsg, bytes int64) {
	switch c.strategy {
	case CollRing:
		if next := (c.rank + 1) % c.n; next != m.Origin {
			c.send(next, bytes, m)
		}
	case CollTree:
		if m.Origin != 0 && c.rank != 0 {
			// a contribution passing through on its way to the root: pure
			// relay, nothing to deposit here.
			c.send(c.parent, bytes, m)
			return
		}
		if m.Origin == 0 {
			// the root's result descending: hand it to this rank's subtree
			// first, then deposit the local copy.
			for _, ch := range c.kids {
				c.send(ch, bytes, m)
			}
		}
	}
	c.mu.Lock()
	if c.strategy == CollRing || c.rank == 0 {
		byOrigin := c.fused[m.Seq]
		if byOrigin == nil {
			byOrigin = make(map[int]transport.FusedCollMsg, c.n-1)
			c.fused[m.Seq] = byOrigin
		}
		byOrigin[m.Origin] = m
	} else {
		c.fresult[m.Seq] = m
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// gather blocks until every peer's unfused contribution for seq arrived
// (rooted root only) and removes them from the pending set.
func (c *meshColl) gather(seq uint64) map[int]transport.CollMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.contrib[seq]) < c.n-1 {
		c.cond.Wait()
	}
	byFrom := c.contrib[seq]
	delete(c.contrib, seq)
	return byFrom
}

// await blocks until the root's unfused result for seq arrived (rooted
// non-root only).
func (c *meshColl) await(seq uint64) transport.CollMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if m, ok := c.result[seq]; ok {
			delete(c.result, seq)
			return m
		}
		c.cond.Wait()
	}
}

// gatherFused blocks until all n−1 peer contributions for seq arrived
// (fused root, or any rank under ring) and removes them.
func (c *meshColl) gatherFused(seq uint64) map[int]transport.FusedCollMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.fused[seq]) < c.n-1 {
		c.cond.Wait()
	}
	byOrigin := c.fused[seq]
	delete(c.fused, seq)
	return byOrigin
}

// awaitFused blocks until the root's fused result for seq arrived (fused
// non-root only).
func (c *meshColl) awaitFused(seq uint64) transport.FusedCollMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if m, ok := c.fresult[seq]; ok {
			delete(c.fresult, seq)
			return m
		}
		c.cond.Wait()
	}
}

func (c *meshColl) nextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.seq
	c.seq++
	return s
}

// FusedAllReduce implements collective.Collective: one call reduces every
// dense-parameter segment plus the loss vector across the mesh, by the
// configured strategy. All strategies fold in rank order from zero, so the
// result bits match the in-process Group exactly.
func (c *meshColl) FusedAllReduce(rank int, segs [][]float32, loss []float64) {
	if c.n == 1 {
		return
	}
	switch c.strategy {
	case CollRooted:
		for _, s := range segs {
			c.allReduceSum(s)
		}
		c.allReduceSum64(loss)
	case CollRing:
		c.fusedRing(segs, loss)
	case CollTree:
		c.fusedTree(segs, loss)
	default: // CollFused
		c.fusedRooted(segs, loss)
	}
}

// snapshotFused copies segs and loss into a frame: the caller's buffers are
// live (reused across iterations, mutated by the fold), and in-process
// meshes deliver payloads by reference.
func snapshotFused(seq uint64, origin int, segs [][]float32, loss []float64) transport.FusedCollMsg {
	m := transport.FusedCollMsg{Seq: seq, Origin: origin,
		Segs: make([][]float32, len(segs)), Loss: append([]float64(nil), loss...)}
	for i, s := range segs {
		m.Segs[i] = append([]float32(nil), s...)
	}
	return m
}

// checkFused panics unless m's shape matches the local call: a mismatch
// means the ranks' collective call sequences diverged, which can only end
// in silent corruption.
func (c *meshColl) checkFused(m transport.FusedCollMsg, segs [][]float32, loss []float64) {
	if len(m.Segs) != len(segs) || len(m.Loss) != len(loss) {
		panic(fmt.Sprintf("train: collective %d: rank %d contributed %d segments / %d loss terms, want %d / %d",
			m.Seq, m.Origin, len(m.Segs), len(m.Loss), len(segs), len(loss)))
	}
	for i, s := range segs {
		if len(m.Segs[i]) != len(s) {
			panic(fmt.Sprintf("train: collective %d: rank %d segment %d carried %d floats, want %d",
				m.Seq, m.Origin, i, len(m.Segs[i]), len(s)))
		}
	}
}

// fusedRooted is the fused strategy: every rank sends its frame straight to
// rank 0, which folds and broadcasts to everyone — 2(P−1) frames per
// iteration.
func (c *meshColl) fusedRooted(segs [][]float32, loss []float64) {
	c.fusedViaRoot(segs, loss, 0, c.rootFanout)
}

// fusedTree is the rank-pairing strategy: contributions climb the binomial
// tree (relayed unfolded by deliverFused), rank 0 folds all P frames in
// rank order, and the result descends the same tree edges (non-root ranks
// forward it to their children in deliverFused). Σ popcount(r) + (P−1)
// frames per iteration; rank 0 sends only to its ⌈log₂P⌉ children.
func (c *meshColl) fusedTree(segs [][]float32, loss []float64) {
	c.fusedViaRoot(segs, loss, c.parent, c.rootFanout)
}

// fusedViaRoot is the reduce-through-rank-0 core behind the fused and tree
// strategies: every contribution reaches rank 0 (directly, or relayed up
// the tree by deliverFused), rank 0 folds all P frames in rank order from
// zero — the bit-identity contract — and sends the result to fanout; every
// other rank sends its own frame to parent and blocks for the result
// (parent is 0 under fused, the tree parent under tree; fanout is only
// read by rank 0).
func (c *meshColl) fusedViaRoot(segs [][]float32, loss []float64, parent int, fanout []int) {
	seq := c.nextSeq()
	bytes := fusedCollBytes(segs, len(loss))
	if c.rank == 0 {
		byOrigin := c.gatherFused(seq)
		// Fold in rank order from zero: segs/loss already hold rank 0's
		// terms. Whole segments at a time through the vector kernels — the
		// same left-to-right per-element summation as the scalar loop.
		for r := 1; r < c.n; r++ {
			m, ok := byOrigin[r]
			if !ok {
				panic(fmt.Sprintf("train: collective %d: rank %d never contributed", seq, r))
			}
			c.checkFused(m, segs, loss)
			for i, x := range segs {
				collective.AddF32(x, m.Segs[i])
			}
			collective.AddF64(loss, m.Loss)
		}
		out := snapshotFused(seq, 0, segs, loss)
		for _, r := range fanout {
			c.send(r, bytes, out)
		}
		return
	}
	c.send(parent, bytes, snapshotFused(seq, c.rank, segs, loss))
	m := c.awaitFused(seq)
	c.checkFused(m, segs, loss)
	for i := range segs {
		copy(segs[i], m.Segs[i])
	}
	copy(loss, m.Loss)
}

// fusedRing is the topology-aware strategy: contributions travel the ring
// (each rank sends its own frame to the next rank; relays happen in
// deliverFused), every rank buffers all P contributions per segment and
// folds from zero in rank order — the identical summation, no rank-0
// incast.
func (c *meshColl) fusedRing(segs [][]float32, loss []float64) {
	seq := c.nextSeq()
	own := snapshotFused(seq, c.rank, segs, loss)
	c.send((c.rank+1)%c.n, fusedCollBytes(segs, len(loss)), own)
	byOrigin := c.gatherFused(seq)
	for r := 0; r < c.n; r++ {
		if r == c.rank {
			continue
		}
		m, ok := byOrigin[r]
		if !ok {
			panic(fmt.Sprintf("train: collective %d: rank %d's contribution never completed the ring", seq, r))
		}
		c.checkFused(m, segs, loss)
	}
	term := func(r int) transport.FusedCollMsg {
		if r == c.rank {
			return own
		}
		return byOrigin[r]
	}
	// Fold from zero in rank order with the vector kernels: copy rank 0's
	// term, add ranks 1..n−1 — element-independent, so the bits match the
	// old per-element fold exactly.
	for i, x := range segs {
		copy(x, term(0).Segs[i])
		for r := 1; r < c.n; r++ {
			collective.AddF32(x, term(r).Segs[i])
		}
	}
	copy(loss, term(0).Loss)
	for r := 1; r < c.n; r++ {
		collective.AddF64(loss, term(r).Loss)
	}
}

// allReduceSum is the rooted (unfused) float32 reduce+broadcast: one frame
// pair per call, contributions folded at rank 0 in rank order from zero.
func (c *meshColl) allReduceSum(x []float32) {
	seq := c.nextSeq()
	if c.rank == 0 {
		byFrom := c.gather(seq)
		// Fold in rank order from zero: x already holds rank 0's term.
		for r := 1; r < c.n; r++ {
			m, ok := byFrom[r]
			if !ok || len(m.F32) != len(x) {
				panic(fmt.Sprintf("train: collective %d: rank %d contributed %d floats, want %d",
					seq, r, len(m.F32), len(x)))
			}
			collective.AddF32(x, m.F32)
		}
		// Broadcast a snapshot: x is the caller's live gradient buffer, and
		// in-process meshes deliver payloads by reference.
		out := append([]float32(nil), x...)
		for r := 1; r < c.n; r++ {
			c.send(r, collBytes(len(x), 4), transport.CollMsg{Seq: seq, F32: out})
		}
		return
	}
	c.send(0, collBytes(len(x), 4), transport.CollMsg{Seq: seq, F32: append([]float32(nil), x...)})
	m := c.await(seq)
	if len(m.F32) != len(x) {
		panic(fmt.Sprintf("train: collective %d: result carried %d floats, want %d", seq, len(m.F32), len(x)))
	}
	copy(x, m.F32)
}

// allReduceSum64 is allReduceSum for float64 vectors (loss terms).
func (c *meshColl) allReduceSum64(x []float64) {
	seq := c.nextSeq()
	if c.rank == 0 {
		byFrom := c.gather(seq)
		for r := 1; r < c.n; r++ {
			m, ok := byFrom[r]
			if !ok || len(m.F64) != len(x) {
				panic(fmt.Sprintf("train: collective %d: rank %d contributed %d doubles, want %d",
					seq, r, len(m.F64), len(x)))
			}
			collective.AddF64(x, m.F64)
		}
		out := append([]float64(nil), x...)
		for r := 1; r < c.n; r++ {
			c.send(r, collBytes(len(x), 8), transport.CollMsg{Seq: seq, F64: out})
		}
		return
	}
	c.send(0, collBytes(len(x), 8), transport.CollMsg{Seq: seq, F64: append([]float64(nil), x...)})
	m := c.await(seq)
	if len(m.F64) != len(x) {
		panic(fmt.Sprintf("train: collective %d: result carried %d doubles, want %d", seq, len(m.F64), len(x)))
	}
	copy(x, m.F64)
}

// collBytes is the declared wire size of one unfused collective message.
func collBytes(n, elem int) int64 { return 9 + int64(n*elem) }

// fusedCollBytes is the declared wire size of one fused collective frame:
// seq + origin + segment table + loss vector.
func fusedCollBytes(segs [][]float32, lossLen int) int64 {
	b := int64(8 + 4 + 4 + 4 + 8*lossLen)
	for _, s := range segs {
		b += 4 + 4*int64(len(s))
	}
	return b
}
