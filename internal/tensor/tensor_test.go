package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2)=%v want 5", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 5 {
		t.Fatalf("Row(1)[2]=%v want 5", row[2])
	}
	row[0] = 7 // Row aliases storage
	if m.At(1, 0) != 7 {
		t.Fatalf("Row must alias storage")
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("MatMul[%d]=%v want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

// naive reference multiply used to cross-check the three layouts.
func refMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func transpose(m *Matrix) *Matrix {
	tm := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			tm.Set(j, i, m.At(i, j))
		}
	}
	return tm
}

func randMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		want := refMul(a, b)

		got := NewMatrix(m, n)
		MatMul(got, a, b)
		if !got.AlmostEqual(want, 1e-5) {
			t.Fatalf("trial %d: MatMul disagrees with reference", trial)
		}

		gotBT := NewMatrix(m, n)
		MatMulBT(gotBT, a, transpose(b))
		if !gotBT.AlmostEqual(want, 1e-5) {
			t.Fatalf("trial %d: MatMulBT disagrees with reference", trial)
		}

		gotAT := NewMatrix(m, n)
		MatMulAT(gotAT, transpose(a), b)
		if !gotAT.AlmostEqual(want, 1e-5) {
			t.Fatalf("trial %d: MatMulAT disagrees with reference", trial)
		}
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	AddRowVector(m, []float32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddRowVector[%d]=%v want %v", i, m.Data[i], w)
		}
	}
	sums := make([]float32, 3)
	ColSums(sums, m)
	if sums[0] != 25 || sums[1] != 47 || sums[2] != 69 {
		t.Fatalf("ColSums=%v", sums)
	}
}

func TestScaleAddScaledCloneEqual(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Scale(2)
	if m.Equal(c) {
		t.Fatal("scale mutated original or Equal broken")
	}
	m.AddScaled(c, 0.5) // m += 0.5*(2m) = 2m
	want := []float32{2, 4, 6}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddScaled[%d]=%v want %v", i, m.Data[i], w)
		}
	}
}

func TestDotAxpyNorm(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot=%v want 32", Dot(a, b))
	}
	y := []float32{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("Axpy=%v", y)
	}
	if math.Abs(float64(L2Norm([]float32{3, 4}))-5) > 1e-6 {
		t.Fatalf("L2Norm=%v want 5", L2Norm([]float32{3, 4}))
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(1)
	if err := quick.Check(func(_ int) bool {
		f := rng.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(99)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := NewRNG(3)
	m := NewMatrix(10, 10)
	XavierInit(m, 10, 10, rng)
	limit := float32(math.Sqrt(6.0 / 20.0))
	var nonzero int
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside ±%v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Fatalf("only %d nonzero values; init looks broken", nonzero)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// Property: MatMul is distributive over addition in the second operand:
// A×(B+C) == A×B + A×C.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := NewRNG(12345)
	f := func(seed uint16) bool {
		r := NewRNG(uint64(seed) + rng.Uint64()%1000)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		c := randMatrix(r, k, n)
		bc := b.Clone()
		bc.AddScaled(c, 1)
		left := NewMatrix(m, n)
		MatMul(left, a, bc)
		ab := NewMatrix(m, n)
		MatMul(ab, a, b)
		ac := NewMatrix(m, n)
		MatMul(ac, a, c)
		ab.AddScaled(ac, 1)
		return left.AlmostEqual(ab, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
