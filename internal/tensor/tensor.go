// Package tensor provides the dense float32 math substrate used by the
// neural-network layers in this repository: matrices, vectors, matrix
// multiplication in the layouts backpropagation needs, and deterministic
// random initialization.
//
// The package is deliberately small and allocation-conscious rather than
// feature-complete: every operation used by a layer has an explicit
// destination argument so steady-state training performs no per-iteration
// allocations.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// NumElements returns Rows*Cols.
func (m *Matrix) NumElements() int { return m.Rows * m.Cols }

// Equal reports whether m and o have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether m and o have identical shape and elementwise
// absolute difference at most eps.
func (m *Matrix) AlmostEqual(o *Matrix, eps float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// MatMul computes dst = a × b. dst must be a.Rows × b.Cols and must not
// alias a or b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)×(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBT computes dst = a × bᵀ. dst must be a.Rows × b.Rows.
func MatMulBT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBT shape mismatch (%dx%d)×(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// MatMulAT computes dst = aᵀ × b. dst must be a.Cols × b.Cols.
func MatMulAT(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulAT shape mismatch (%dx%d)ᵀ×(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// AddRowVector adds vector v to every row of m in place.
func AddRowVector(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector vector len %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums accumulates per-column sums of m into dst (dst is overwritten).
func ColSums(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSums dst len %d != cols %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled computes m += s*o elementwise. Shapes must match.
func (m *Matrix) AddScaled(o *Matrix, s float32) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: AddScaled shape mismatch")
	}
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
}

// Dot returns the dot product of equal-length slices a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += a*x for equal-length slices.
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// L2Norm returns the Euclidean norm of v.
func L2Norm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// RNG is a splitmix64-based deterministic random number generator. It is
// intentionally independent of math/rand so that initialization is stable
// across Go releases, which the sync-equivalence tests rely on.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	// Box-Muller transform; u1 in (0,1] to avoid log(0).
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// XavierInit fills m with Xavier/Glorot-uniform values for a layer with the
// given fan-in and fan-out, using rng.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *RNG) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// UniformInit fills dst with uniform values in [-limit, limit].
func UniformInit(dst []float32, limit float32, rng *RNG) {
	for i := range dst {
		dst[i] = (rng.Float32()*2 - 1) * limit
	}
}
