package reshard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

func zeroJitter(time.Duration) time.Duration { return 0 }

// newTestTier builds a capacity-wide in-process tier routed over its first S
// servers (the rest are reshard spares), each child behind a fault injector,
// plus the S=1 reference every conformance check certifies against.
func newTestTier(capacity, S, R int) (*transport.ShardedStore, []*transport.FaultStore, []*embed.Server, *embed.Server, transport.Store) {
	servers := make([]*embed.Server, capacity)
	faults := make([]*transport.FaultStore, capacity)
	children := make([]transport.Store, capacity)
	for i := range servers {
		servers[i] = embed.NewServer(3, 4, 11, 0.1)
		faults[i] = transport.NewFaultStore(transport.NewInProcess(servers[i]), i)
		children[i] = faults[i]
	}
	st := transport.NewTier(children, transport.TierOptions{
		Replicate:      R,
		InitialServers: S,
		Retries:        2,
		Backoff:        time.Millisecond,
		Jitter:         zeroJitter,
	})
	ref := embed.NewServer(3, 4, 11, 0.1)
	return st, faults, servers, ref, transport.NewInProcess(ref)
}

// fastOpts keeps migration rounds snappy in tests.
func fastOpts(to int) Options {
	return Options{To: to, RoundBackoff: time.Millisecond}
}

// TestReshardGrowShrink is the core conformance matrix: the tier migrates
// between widths in both directions, at R=1 and R=2, with writes before and
// after, and the final state certifies bit-identical against the S=1
// reference — fingerprint and replicated merge both (the merge also proves
// the settle-time RetainOwned shed alien rows, since it rejects replicas
// that disagree).
func TestReshardGrowShrink(t *testing.T) {
	for _, tc := range []struct{ S, To, R int }{
		{2, 4, 1}, {2, 4, 2}, {4, 2, 1}, {4, 2, 2}, {2, 3, 2}, {3, 5, 2},
	} {
		t.Run(fmt.Sprintf("S%d_to%d_R%d", tc.S, tc.To, tc.R), func(t *testing.T) {
			capacity := max(tc.S, tc.To)
			st, _, servers, ref, refStore := newTestTier(capacity, tc.S, tc.R)

			stamp := float32(0)
			step := func(ids []uint64) {
				t.Helper()
				stamp++
				rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
				for i := range rows {
					for j := range rows[i] {
						if rows[i][j] != refRows[i][j] {
							t.Fatalf("id %d col %d: tier %v != reference %v", ids[i], j, rows[i][j], refRows[i][j])
						}
					}
					rows[i][0], refRows[i][0] = stamp, stamp
				}
				st.Write(ids, rows)
				refStore.Write(ids, refRows)
			}
			wide := make([]uint64, 60)
			for i := range wide {
				wide[i] = uint64(i)
			}
			step(wide)
			step(wide[:35])

			rep, err := Run(st, fastOpts(tc.To))
			if err != nil {
				t.Fatalf("reshard %d->%d: %v", tc.S, tc.To, err)
			}
			if rep.Aborted || rep.From != tc.S || rep.To != tc.To || rep.Parts != tc.To {
				t.Fatalf("report = %+v, want From %d To %d Parts %d not aborted", rep, tc.S, tc.To, tc.To)
			}
			if got := st.Servers(); got != tc.To {
				t.Fatalf("Servers() = %d after reshard, want %d", got, tc.To)
			}
			if rt := st.Routing(); !rt.Settled() || rt.Epoch == 0 {
				t.Fatalf("routing %+v after reshard, want settled at a bumped epoch", rt)
			}
			h := st.TierHealth()
			if h.RoutingEpoch == 0 || h.ReshardParts != int64(tc.To) {
				t.Fatalf("TierHealth epoch %d parts %d, want epoch > 0, parts %d", h.RoutingEpoch, h.ReshardParts, tc.To)
			}

			// Live traffic keeps certifying after the cutover...
			step(wide[:48])
			step(wide)

			// ...and the final state is bit-identical to the reference.
			if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
				t.Fatalf("tier fingerprint %x != reference %x after reshard", fp, want)
			}
			merged, err := embed.MergeTierReplicated(servers[:tc.To], tc.R, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := embed.Diff(ref, merged); len(d) != 0 {
				t.Fatalf("merged tier differs from reference at %v", d)
			}
		})
	}
}

// TestReshardRoundTripUnderTraffic races both migration directions against
// live writers and a live reader: the tier grows 2->4 and shrinks back 4->2
// while three writers stamp disjoint id sets (mirrored to the reference) and
// a reader drains ReadFetch. Nothing may error, and the final state must be
// bit-identical. Run under -race in CI.
func TestReshardRoundTripUnderTraffic(t *testing.T) {
	const S, To, R, W = 2, 4, 2, 3
	st, _, _, ref, refStore := newTestTier(To, S, R)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint64, 0, 12)
			for id := uint64(w); id < 36; id += W {
				ids = append(ids, id)
			}
			rows := make([][]float32, len(ids))
			stamp := float32(0)
			for !stop.Load() {
				stamp++
				for i := range rows {
					rows[i] = []float32{stamp, float32(w), float32(ids[i]), 3}
				}
				st.Write(ids, rows)
				refStore.Write(ids, rows)
			}
		}(w)
	}
	wg.Add(1)
	readErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ids := []uint64{0, 5, 11, 17, 23, 31}
		for !stop.Load() {
			rows, err := st.ReadFetch(ids, nil)
			if err != nil {
				select {
				case readErr <- err:
				default:
				}
				return
			}
			transport.Rows(st.Dim()).PutN(rows)
			transport.PutRowSlice(rows)
		}
	}()

	time.Sleep(5 * time.Millisecond)
	if rep, err := Run(st, fastOpts(To)); err != nil || rep.Aborted {
		t.Fatalf("grow under traffic: %+v, %v", rep, err)
	}
	if rep, err := Run(st, fastOpts(S)); err != nil || rep.Aborted {
		t.Fatalf("shrink under traffic: %+v, %v", rep, err)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("ReadFetch during reshard: %v", err)
	default:
	}

	if got := st.Servers(); got != S {
		t.Fatalf("Servers() = %d after the round trip, want %d", got, S)
	}
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after reshard round trip", fp, want)
	}
}

// killOnLog returns a Log hook that fires kill exactly once when a progress
// line containing marker is emitted.
func killOnLog(marker string, kill func()) func(string, ...any) {
	var once sync.Once
	return func(format string, args ...any) {
		if strings.Contains(fmt.Sprintf(format, args...), marker) {
			once.Do(kill)
		}
	}
}

// TestReshardTargetDeathCompletes kills a migration *target* mid-reshard at
// R=2: the migration must complete on the surviving replicas (the dead
// target's partitions have live authoritative members), the tier settles at
// the new width with the corpse attributed dead — and a replacement then
// rejoins into the NEW routing epoch and the NEW ownership space, never its
// pre-reshard one (the Reviver-vs-reshard contract).
func TestReshardTargetDeathCompletes(t *testing.T) {
	const S, To, R = 2, 4, 2
	st, faults, _, ref, refStore := newTestTier(To, S, R)

	ids := make([]uint64, 48)
	for i := range ids {
		ids[i] = uint64(i)
	}
	st.Write(ids, st.Fetch(ids))
	refStore.Write(ids, refStore.Fetch(ids))

	opts := fastOpts(To)
	opts.Log = killOnLog("partition 2/4 moved", func() { faults[3].SetDown(true) })
	rep, err := Run(st, opts)
	if err != nil {
		t.Fatalf("reshard with a dying target: %v", err)
	}
	if rep.Aborted || rep.Parts != To {
		t.Fatalf("report = %+v, want all %d partitions moved", rep, To)
	}
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 3 {
		t.Fatalf("DeadServers() = %v, want [3]", dead)
	}
	if got := st.Servers(); got != To {
		t.Fatalf("Servers() = %d, want %d", got, To)
	}
	// The survivors hold everything: writes and the certificate still work.
	st.Write(ids[:30], st.Fetch(ids[:30]))
	refStore.Write(ids[:30], refStore.Fetch(ids[:30]))
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after target death", fp, want)
	}

	// Rejoin the corpse: a pristine recovering replacement must land in the
	// settled (new) routing epoch and resync the width-To partitions it owns
	// now — not the width-S partitions the old table would have given it.
	fresh := embed.NewServer(3, 4, 11, 0.1)
	fresh.BeginRecovery()
	if err := st.Rejoin(3, transport.NewFaultStore(transport.NewInProcess(fresh), 3), transport.RejoinOptions{}); err != nil {
		t.Fatalf("rejoin after reshard: %v", err)
	}
	if got, want := fresh.RoutingEpoch(), st.Routing().Epoch; got != want {
		t.Fatalf("rejoiner landed at routing epoch %d, tier is at %d", got, want)
	}
	for _, p := range []int{3, 2} { // server 3's replica set in the new space
		if got, want := fresh.FingerprintPart(p, To), ref.FingerprintPart(p, To); got != want {
			t.Fatalf("rejoined server partition %d-of-%d fingerprint %x != reference %x", p, To, got, want)
		}
	}
	st.Write(ids, st.Fetch(ids))
	refStore.Write(ids, refStore.Fetch(ids))
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after post-reshard rejoin", fp, want)
	}
}

// TestReshardSourceDeathAborts kills the only holder of an unmigrated
// partition (R=1) mid-reshard: with nowhere to stream from, the migration
// must abort cleanly — an attributed op-"reshard" *transport.TierError, the
// tier settled back at the old width, surviving old-space state intact and
// alien streamed rows shed. No hang, no half-migrated state served.
func TestReshardSourceDeathAborts(t *testing.T) {
	const S, To = 2, 4
	st, faults, servers, ref, refStore := newTestTier(To, S, 1)

	ids := make([]uint64, 40)
	for i := range ids {
		ids[i] = uint64(i)
	}
	st.Write(ids, st.Fetch(ids))
	refStore.Write(ids, refStore.Fetch(ids))

	opts := fastOpts(To)
	opts.MaxRounds = 3
	opts.Log = killOnLog("partition 2/4 moved", func() { faults[0].SetDown(true) })
	rep, err := Run(st, opts)
	if err == nil {
		t.Fatal("reshard with every source of a partition dead reported success")
	}
	var te *transport.TierError
	if !errors.As(err, &te) || te.Op != "reshard" {
		t.Fatalf("abort error %v, want an op-reshard *transport.TierError", err)
	}
	if rep == nil || !rep.Aborted {
		t.Fatalf("report = %+v, want Aborted", rep)
	}
	rt := st.Routing()
	if !rt.Settled() || rt.NewS != S {
		t.Fatalf("routing %+v after abort, want settled back at width %d", rt, S)
	}
	if got := st.Servers(); got != S {
		t.Fatalf("Servers() = %d after abort, want %d", got, S)
	}
	// The surviving old-space partition is untouched and clean of aliens:
	// its direct fingerprint matches the reference in the OLD space.
	if got, want := servers[1].FingerprintPart(1, S), ref.FingerprintPart(1, S); got != want {
		t.Fatalf("surviving partition 1 fingerprint %x != reference %x after abort", got, want)
	}
	// Fenced clients self-heal back onto the old table: ops on the surviving
	// partition keep certifying (partition 0 died with its only replica).
	odd := make([]uint64, 0, len(ids)/2)
	for _, id := range ids {
		if id%2 == 1 {
			odd = append(odd, id)
		}
	}
	rows, refRows := st.Fetch(odd), refStore.Fetch(odd)
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != refRows[i][j] {
				t.Fatalf("id %d col %d after abort: tier %v != reference %v", odd[i], j, rows[i][j], refRows[i][j])
			}
		}
	}
	st.Write(odd, rows)
	refStore.Write(odd, refRows)
	if got, want := servers[1].FingerprintPart(1, S), ref.FingerprintPart(1, S); got != want {
		t.Fatalf("surviving partition 1 fingerprint %x != reference %x after post-abort writes", got, want)
	}
}

// TestRejoinDuringReshardDeferred pins the rejoin-vs-reshard interlock: a
// dead server cannot begin a rejoin while the tier is mid-reshard (the
// routing is unsettled, so the rejoiner's ownership is undecided), and the
// refusal is clean — the same rejoin lands once the tier settles.
func TestRejoinDuringReshardDeferred(t *testing.T) {
	const S, R = 2, 2
	st, faults, _, _, _ := newTestTier(4, S, R)
	ids := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	st.Write(ids, st.Fetch(ids))

	faults[1].SetDown(true)
	st.Write(ids, st.Fetch(ids)) // condemn server 1
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}
	faults[1].SetDown(false)

	// Mid-reshard: an unsettled table is installed (as the coordinator's
	// first dual push would).
	cur := st.Routing().Epoch
	mid := &transport.RoutingTable{Epoch: cur + 1, OldS: S, NewS: 4,
		State: []transport.PartState{transport.PartDual, transport.PartPending, transport.PartPending, transport.PartPending}}
	if err := st.PushRouting(mid); err != nil {
		t.Fatal(err)
	}
	fresh := embed.NewServer(3, 4, 11, 0.1)
	fresh.BeginRecovery()
	err := st.BeginRejoin(1, transport.NewFaultStore(transport.NewInProcess(fresh), 1))
	if err == nil || !strings.Contains(err.Error(), "resharding") {
		t.Fatalf("BeginRejoin mid-reshard = %v, want a deferred-for-resharding refusal", err)
	}
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v after refused rejoin, want [1] (still cleanly dead)", dead)
	}

	// Settled again: the same rejoin goes through, at the settled epoch.
	if err := st.PushRouting(&transport.RoutingTable{Epoch: cur + 2, OldS: S, NewS: S}); err != nil {
		t.Fatal(err)
	}
	if err := st.Rejoin(1, transport.NewFaultStore(transport.NewInProcess(fresh), 1), transport.RejoinOptions{}); err != nil {
		t.Fatalf("rejoin after settle: %v", err)
	}
	if got, want := fresh.RoutingEpoch(), cur+2; got != want {
		t.Fatalf("rejoiner landed at routing epoch %d, want %d", got, want)
	}
}

// TestRunValidation pins the pre-flight rejections: each leaves the tier
// untouched (no routing epoch consumed).
func TestRunValidation(t *testing.T) {
	st, _, _, _, _ := newTestTier(4, 2, 2)
	epoch0 := st.Routing().Epoch
	for _, tc := range []struct {
		to   int
		want string
	}{
		{2, "already 2 wide"},
		{5, "over tier capacity"},
		{1, "below replication factor"},
		{0, "target width"},
		{-3, "target width"},
	} {
		if _, err := Run(st, fastOpts(tc.to)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Run(To=%d) = %v, want error containing %q", tc.to, err, tc.want)
		}
	}
	if e := st.Routing().Epoch; e != epoch0 {
		t.Fatalf("validation failures consumed routing epochs: %d -> %d", epoch0, e)
	}

	// A second coordinator cannot start while a migration is in flight.
	mid := &transport.RoutingTable{Epoch: epoch0 + 1, OldS: 2, NewS: 4,
		State: make([]transport.PartState, 4)}
	if err := st.PushRouting(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(st, fastOpts(4)); err == nil || !strings.Contains(err.Error(), "already resharding") {
		t.Fatalf("Run mid-reshard = %v, want an already-resharding refusal", err)
	}
}
