package reshard

import (
	"net"
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/transport"
)

// TestReshardTCP is the real-socket leg: a tier over TCP links grows 2->4
// and shrinks back 4->2, with writes between every transition, and certifies
// bit-identical against the reference at each settled width. The grow
// targets are pre-dialed spares (the driver's in-test stand-in for spawned
// server processes); the shrink retires them from routing but leaves their
// processes serving until Shutdown, exactly like the TCP driver.
func TestReshardTCP(t *testing.T) {
	const S, To, R = 2, 4, 2
	servers := make([]*embed.Server, To)
	children := make([]transport.Store, To)
	joins := make([]func(), To)
	links := make([]*transport.TCPLink, To)
	for i := range servers {
		servers[i] = embed.NewServer(3, 4, 11, 0.1)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		srv := servers[i]
		go func() { done <- transport.ServeEmbed(lis, srv) }()
		joins[i] = func() {
			if err := <-done; err != nil {
				t.Errorf("ServeEmbed: %v", err)
			}
		}
		links[i], err = transport.DialTCPLink(lis.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = links[i]
	}
	st := transport.NewTier(children, transport.TierOptions{
		Replicate:      R,
		InitialServers: S,
		Retries:        2,
		Backoff:        time.Millisecond,
		Jitter:         zeroJitter,
	})
	ref := embed.NewServer(3, 4, 11, 0.1)
	refStore := transport.NewInProcess(ref)

	stamp := float32(0)
	step := func(ids []uint64) {
		t.Helper()
		stamp++
		rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
		for i := range rows {
			for j := range rows[i] {
				if rows[i][j] != refRows[i][j] {
					t.Fatalf("id %d col %d: tier %v != reference %v", ids[i], j, rows[i][j], refRows[i][j])
				}
			}
			rows[i][0], refRows[i][0] = stamp, stamp
		}
		st.Write(ids, rows)
		refStore.Write(ids, refRows)
	}
	wide := make([]uint64, 50)
	for i := range wide {
		wide[i] = uint64(i)
	}
	step(wide)
	step(wide[:30])

	if rep, err := Run(st, fastOpts(To)); err != nil || rep.Aborted || rep.Parts != To {
		t.Fatalf("tcp grow: %+v, %v", rep, err)
	}
	if got := st.Servers(); got != To {
		t.Fatalf("Servers() = %d after tcp grow, want %d", got, To)
	}
	step(wide[:42])
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after tcp grow", fp, want)
	}

	if rep, err := Run(st, fastOpts(S)); err != nil || rep.Aborted || rep.Parts != S {
		t.Fatalf("tcp shrink: %+v, %v", rep, err)
	}
	if got := st.Servers(); got != S {
		t.Fatalf("Servers() = %d after tcp shrink, want %d", got, S)
	}
	step(wide)
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after tcp shrink", fp, want)
	}
	merged, err := embed.MergeTierReplicated(servers[:S], R, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, merged); len(d) != 0 {
		t.Fatalf("merged tier differs from reference at %v", d)
	}

	st.Shutdown() // shuts down every live slot, including the retired spares
	for i := range joins {
		joins[i]()
		links[i].Close()
	}
}
