// Package reshard drives a live migration of the embedding tier from S to
// S′ servers while training and serving continue against it.
//
// The paper's premise is that the embedding tier is the scaling bottleneck
// of recommendation training: the working set grows and shrinks with the
// workload, not with the trainer fleet. A tier that can only change width
// by checkpoint-restart turns every capacity change into downtime. This
// package removes that restriction using machinery the tier already has —
// the per-partition export/recovery/fingerprint primitives built for dead-
// server rejoin — re-aimed at ownership movement instead of replica repair.
//
// The algorithm, per new-space partition p′ (0 ≤ p′ < S′):
//
//  1. Open p′'s dual-write window: push a routing table (epoch bumped)
//     marking p′ PartDual. From this epoch on, every tier client fans
//     writes of p′'s rows to the old owner ring *and* the new one; reads
//     still route old, so nothing is served from an unverified copy.
//     Servers fence the data plane by epoch, so a client still routing by
//     the predecessor table is rejected, adopts, and reissues — the window
//     is airtight, not probabilistic.
//  2. Stream p′'s rows to each new-ring member that does not already hold
//     them: for every old partition q that intersects p′ (q ≡ p′ mod
//     gcd(S, S′) — CRT; all other pairs are empty), export the (q ∩ p′)
//     intersection from a live old-ring replica and recovery-write it to
//     the target. Recovery writes pass the freshness filter opened before
//     the first dual epoch: a row the dual fan already refreshed is
//     skipped, so the stream can never clobber a newer live write.
//  3. Verify: digest the same intersection on source and target and
//     compare. A mismatch (a write raced between the two probes) retries
//     the round after a backoff; rounds repeat until the digests agree or
//     the round budget is spent.
//  4. Cut over: push p′ as PartMoved. Reads flip to the new ring; writes
//     keep fanning to both rings, which is what keeps abort safe — the old
//     space stays complete until the final settle.
//
// When every partition has moved, a settled table at width S′ is pushed and
// each surviving server sheds the rows it no longer owns (RetainOwned).
// Any failure that leaves a partition uncertifiable — every old-ring source
// dead, no new-ring target verified — aborts: a settled table at the *old*
// width is pushed, streamed-in alien rows are shed, and the caller gets an
// attributed *transport.TierError with the tier exactly as it was.
package reshard

import (
	"fmt"
	"time"

	"bagpipe/internal/transport"
)

// Options configures one migration.
type Options struct {
	// To is the target tier width (required; 1 ≤ To ≤ tier capacity,
	// To ≠ current width, To ≥ replication factor).
	To int
	// BatchRows bounds each recovery-write RPC (default 512).
	BatchRows int
	// MaxRounds bounds the export→stream→verify rounds per (old partition,
	// target) pair before the migration aborts (default 64).
	MaxRounds int
	// RoundBackoff is the pause between verify rounds, giving racing dual
	// writes time to land on both sides (default 25ms).
	RoundBackoff time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// Report is the migration's accounting.
type Report struct {
	From, To  int   // tier widths, source and target
	Replicate int   // the tier's replication factor
	Parts     int   // new-space partitions verified and cut over
	Rows      int   // rows streamed to migration targets
	Bytes     int64 // payload bytes streamed
	Epochs    int   // routing epochs consumed
	Aborted   bool  // true when the tier was rolled back to width From
}

func (o *Options) defaults() {
	if o.BatchRows <= 0 {
		o.BatchRows = 512
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 64
	}
	if o.RoundBackoff <= 0 {
		o.RoundBackoff = 25 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
}

// gcd of two positive widths.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// inRing reports whether server s is in the replicate-deep replica ring of
// partition base in a width-wide split.
func inRing(s, base, width, replicate int) bool {
	depth := replicate
	if depth > width {
		depth = width
	}
	for k := 0; k < depth; k++ {
		if (base+k)%width == s {
			return true
		}
	}
	return false
}

// firstLive returns the first live member of partition base's ring in a
// width-wide split, or -1 when every replica is down.
func firstLive(t *transport.ShardedStore, base, width, replicate int) int {
	depth := replicate
	if depth > width {
		depth = width
	}
	for k := 0; k < depth; k++ {
		if s := (base + k) % width; t.LiveServer(s) {
			return s
		}
	}
	return -1
}

// Run migrates t from its current width to opts.To and blocks until the
// tier settles — at the new width on success, back at the old width on
// abort (Report.Aborted true, error an attributed *transport.TierError).
// The tier stays fully live throughout: Run holds no lock any client op
// waits on beyond the per-epoch install barrier.
//
// Run must be the tier's only coordinator: one migration at a time, and
// no concurrent Rejoin (a rejoin started mid-reshard is refused by the
// tier; Run refuses to start unless the tier is settled).
func Run(t *transport.ShardedStore, opts Options) (*Report, error) {
	opts.defaults()
	start := t.Routing()
	if !start.Settled() {
		return nil, fmt.Errorf("reshard: tier is already resharding (epoch %d, %d→%d)", start.Epoch, start.OldS, start.NewS)
	}
	S, To, R := start.NewS, opts.To, t.Replicate()
	rep := &Report{From: S, To: To, Replicate: R}
	switch {
	case To < 1:
		return nil, fmt.Errorf("reshard: target width %d", To)
	case To > t.Capacity():
		return nil, fmt.Errorf("reshard: target width %d over tier capacity %d", To, t.Capacity())
	case To == S:
		return nil, fmt.Errorf("reshard: tier is already %d wide", S)
	case To < R:
		return nil, fmt.Errorf("reshard: target width %d below replication factor %d", To, R)
	}
	opts.Log("reshard: %d -> %d (replicate %d, capacity %d)", S, To, R, t.Capacity())

	// Grow: admit every spare the new space references before any routing
	// changes. A spare process may still be booting, so admission retries
	// on the round budget; a spare that never comes up fails the migration
	// before it starts — the tier is untouched.
	for s := S; s < To; s++ {
		var err error
		for round := 0; round < opts.MaxRounds; round++ {
			if err = t.EnsureServer(s); err == nil {
				break
			}
			time.Sleep(opts.RoundBackoff)
		}
		if err != nil {
			return nil, fmt.Errorf("reshard: target server %d never came up: %w", s, err)
		}
		opts.Log("reshard: target server %d live", s)
	}

	// Open every target's recovery window *before* the first dual epoch.
	// The freshness filter it installs is what lets migration streams
	// interleave with live dual writes: a row the fan already refreshed is
	// skipped by the stream. Opening it early is harmless — normal writes
	// are unaffected — and closing it is the last step of both exits.
	var began []int
	endRecovery := func() {
		for _, s := range began {
			if !t.LiveServer(s) {
				continue
			}
			if err := t.EndRecovery(s); err != nil {
				opts.Log("reshard: end recovery on server %d: %v", s, err)
			}
		}
	}
	for s := 0; s < To; s++ {
		if !t.LiveServer(s) {
			continue
		}
		if err := t.BeginRecoveryOn(s); err != nil {
			// Almost certainly a server dying in the window between admission
			// and here (the chaos race): skip it rather than fail the whole
			// migration — the data plane condemns it on first contact, and the
			// per-partition verify decides whether the loss is fatal. A healthy
			// server skipped here just misses the freshness filter, which the
			// digest-compare rounds absorb like any racing write.
			opts.Log("reshard: open recovery window on server %d failed, skipping it: %v", s, err)
			continue
		}
		began = append(began, s)
	}

	epoch := start.Epoch
	state := make([]transport.PartState, To)
	push := func(settledWidth int) error {
		epoch++
		var rt *transport.RoutingTable
		if settledWidth > 0 {
			rt = &transport.RoutingTable{Epoch: epoch, OldS: settledWidth, NewS: settledWidth}
		} else {
			rt = &transport.RoutingTable{Epoch: epoch, OldS: S, NewS: To,
				State: append([]transport.PartState(nil), state...)}
		}
		return t.PushRouting(rt)
	}
	abort := func(pn int, cause error) (*Report, error) {
		opts.Log("reshard: ABORT at partition %d: %v", pn, cause)
		if err := push(S); err != nil {
			// The local install still happened or the table was invalid;
			// either way the abort proceeds — clients self-heal by fence.
			opts.Log("reshard: abort rollback push: %v", err)
		}
		// Shed the alien rows the aborted migration streamed into old-space
		// servers. Spares admitted for a grow stay live but unrouted (no
		// table references them); Shutdown retires them.
		for s := 0; s < S; s++ {
			if !t.LiveServer(s) {
				continue
			}
			if _, err := t.RetainOwnedOn(s, s, S, R); err != nil {
				opts.Log("reshard: abort cleanup on server %d: %v", s, err)
			}
		}
		endRecovery()
		rep.Aborted = true
		rep.Epochs = int(epoch - start.Epoch)
		return rep, &transport.TierError{Op: "reshard", Partition: pn, Server: -1, Replicate: R, Cause: cause}
	}

	g := gcd(S, To)
	for pn := 0; pn < To; pn++ {
		// 1. Open pn's dual-write window.
		state[pn] = transport.PartDual
		if err := push(0); err != nil {
			return abort(pn, err)
		}
		// 2+3. Stream and verify pn on every new-ring member that does not
		// already hold it. A target that fails mid-stream is condemned and
		// skipped — the cutover needs one verified copy, not all of them;
		// readRingSub routes around the dead ones exactly as in a failover.
		verified := 0
		var lastErr error
		for k := 0; k < min(R, To); k++ {
			dst := (pn + k) % To
			if !t.LiveServer(dst) {
				continue
			}
			ok := true
			for q := pn % g; q < S; q += g {
				if inRing(dst, q, S, R) {
					continue // dst is an old-ring replica of q: already authoritative
				}
				if err := migratePair(t, &opts, rep, q, S, pn, To, dst); err != nil {
					opts.Log("reshard: partition %d: target %d failed (old part %d): %v", pn, dst, q, err)
					ok, lastErr = false, err
					if noSource(err) {
						return abort(pn, err) // every source replica dead: the data is gone
					}
					break
				}
			}
			if ok {
				verified++
			}
		}
		if verified == 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("reshard: no live member in partition %d's new ring", pn)
			}
			return abort(pn, lastErr)
		}
		// 4. Cut pn's reads over to the new ring.
		state[pn] = transport.PartMoved
		if err := push(0); err != nil {
			return abort(pn, err)
		}
		rep.Parts++
		opts.Log("reshard: partition %d/%d moved (epoch %d, %d verified copies)", pn+1, To, epoch, verified)
	}

	// Settle at the new width, then shed what moved away. Retired servers
	// (a shrink's [To, S) range) hold their old partitions untouched — the
	// caller decides when to stop their processes.
	if err := push(To); err != nil {
		return abort(-1, err)
	}
	for s := 0; s < To; s++ {
		if !t.LiveServer(s) {
			continue
		}
		n, err := t.RetainOwnedOn(s, s, To, R)
		if err != nil {
			opts.Log("reshard: settle cleanup on server %d: %v", s, err)
			continue
		}
		if n > 0 {
			opts.Log("reshard: server %d shed %d rows", s, n)
		}
	}
	endRecovery()
	rep.Epochs = int(epoch - start.Epoch)
	opts.Log("reshard: settled at width %d (%d epochs, %d rows, %d bytes streamed)", To, rep.Epochs, rep.Rows, rep.Bytes)
	return rep, nil
}

// errNoSource marks the unrecoverable failure: every replica of an old
// partition is dead, so its rows cannot be streamed anywhere.
type errNoSource struct{ q int }

func (e *errNoSource) Error() string {
	return fmt.Sprintf("reshard: no live replica of old partition %d to stream from", e.q)
}

func noSource(err error) bool {
	_, ok := err.(*errNoSource)
	return ok
}

// migratePair streams the (q-of-S ∩ pn-of-To) intersection to dst and
// verifies it digest-identical against a live source, retrying rounds on
// the budget. Source failures rotate to the next live old-ring replica;
// a dst failure is terminal for dst (it was condemned by the stream).
func migratePair(t *transport.ShardedStore, opts *Options, rep *Report, q, S, pn, To, dst int) error {
	for round := 0; round < opts.MaxRounds; round++ {
		if round > 0 {
			time.Sleep(opts.RoundBackoff)
		}
		src := firstLive(t, q, S, t.Replicate())
		if src < 0 {
			return &errNoSource{q: q}
		}
		ids, rows, err := t.ExportPartInFrom(src, q, S, pn, To)
		if err != nil {
			continue // src condemned; next round rotates to the next replica
		}
		n, b, err := t.RecoveryWriteTo(dst, ids, rows, opts.BatchRows)
		rep.Rows += n
		rep.Bytes += b
		if err != nil {
			return err
		}
		want, err := t.FingerprintPartInOn(src, q, S, pn, To)
		if err != nil {
			continue
		}
		got, err := t.FingerprintPartInOn(dst, q, S, pn, To)
		if err != nil {
			return err
		}
		if want == got {
			return nil
		}
		// A live dual write raced between the probes; back off and re-run.
	}
	return fmt.Errorf("reshard: partition (%d of %d ∩ %d of %d) on server %d never verified after %d rounds",
		q, S, pn, To, dst, opts.MaxRounds)
}
