package optim

import (
	"math"
	"testing"

	"bagpipe/internal/nn"
)

func oneParam(vals, grads []float32) []nn.Param {
	return []nn.Param{{Name: "p", Value: vals, Grad: grads}}
}

func TestSGDStep(t *testing.T) {
	v := []float32{1, 2}
	g := []float32{0.5, -0.5}
	NewSGD(0.1).Step(oneParam(v, g))
	if v[0] != 0.95 || v[1] != 2.05 {
		t.Fatalf("v=%v", v)
	}
	if g[0] != 0 || g[1] != 0 {
		t.Fatal("grads must be zeroed after Step")
	}
}

func TestSGDUpdateRow(t *testing.T) {
	row := []float32{1, 1}
	NewSGD(0.5).UpdateRow(7, row, []float32{2, -2})
	if row[0] != 0 || row[1] != 2 {
		t.Fatalf("row=%v", row)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	m := NewMomentum(1, 0.9)
	v := []float32{0}
	// two steps with grad 1: v1=1 -> p=-1 ; v2=0.9+1=1.9 -> p=-2.9
	g := []float32{1}
	m.Step(oneParam(v, g))
	g[0] = 1
	m.Step(oneParam(v, g))
	if math.Abs(float64(v[0]+2.9)) > 1e-6 {
		t.Fatalf("v=%v want -2.9", v[0])
	}
}

func TestMomentumRowStateIsPerRow(t *testing.T) {
	m := NewMomentum(1, 0.9)
	a := []float32{0}
	b := []float32{0}
	m.UpdateRow(1, a, []float32{1})
	m.UpdateRow(2, b, []float32{1})
	m.UpdateRow(1, a, []float32{1})
	if math.Abs(float64(a[0]+2.9)) > 1e-6 {
		t.Fatalf("row 1 = %v want -2.9", a[0])
	}
	if math.Abs(float64(b[0]+1)) > 1e-6 {
		t.Fatalf("row 2 = %v want -1 (independent state)", b[0])
	}
}

func TestAdagradShrinksSteps(t *testing.T) {
	a := NewAdagrad(1)
	v := []float32{0}
	g := []float32{1}
	a.Step(oneParam(v, g))
	step1 := float64(-v[0]) // ≈ 1
	prev := v[0]
	g[0] = 1
	a.Step(oneParam(v, g))
	step2 := float64(prev - v[0]) // ≈ 1/sqrt(2)
	if step2 >= step1 {
		t.Fatalf("adagrad steps should shrink: %v then %v", step1, step2)
	}
	if math.Abs(step2-1/math.Sqrt(2)) > 1e-3 {
		t.Fatalf("step2=%v want %v", step2, 1/math.Sqrt(2))
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	ad := NewAdam(0.01)
	v := []float32{1}
	g := []float32{42}
	ad.Step(oneParam(v, g))
	// With bias correction, the first Adam step is ≈ lr regardless of g.
	if math.Abs(float64(1-v[0])-0.01) > 1e-4 {
		t.Fatalf("first step %v want ≈0.01", 1-v[0])
	}
}

func TestAdamRowBiasCorrectionPerRow(t *testing.T) {
	ad := NewAdam(0.01)
	a := []float32{0}
	b := []float32{0}
	ad.UpdateRow(1, a, []float32{5})
	ad.UpdateRow(1, a, []float32{5})
	ad.UpdateRow(2, b, []float32{5})
	// row 2's first update must look like a t=1 update even though the
	// optimizer has been used twice already.
	if math.Abs(float64(-b[0])-0.01) > 1e-4 {
		t.Fatalf("row-2 first step %v want ≈0.01", -b[0])
	}
}

func TestOptimizerNames(t *testing.T) {
	cases := map[string]interface{ Name() string }{
		"sgd": NewSGD(1), "momentum": NewMomentum(1, 0.9), "adagrad": NewAdagrad(1), "adam": NewAdam(1),
	}
	for want, o := range cases {
		if o.Name() != want {
			t.Fatalf("Name()=%q want %q", o.Name(), want)
		}
	}
}

func TestAllRowOptimizersMoveAgainstGradient(t *testing.T) {
	opts := []RowOptimizer{NewSGD(0.1), NewMomentum(0.1, 0.9), NewAdagrad(0.1), NewAdam(0.1)}
	for _, o := range opts {
		row := []float32{1, -1}
		o.UpdateRow(3, row, []float32{1, -1})
		if row[0] >= 1 || row[1] <= -1 {
			t.Fatalf("%s: update moved with the gradient: %v", o.Name(), row)
		}
	}
}

func TestDenseOptimizersConvergeOnQuadratic(t *testing.T) {
	// minimize f(x) = (x-3)^2 with each optimizer; all should approach 3.
	builders := []func() Optimizer{
		func() Optimizer { return NewSGD(0.1) },
		func() Optimizer { return NewMomentum(0.05, 0.8) },
		func() Optimizer { return NewAdagrad(0.5) },
		func() Optimizer { return NewAdam(0.1) },
	}
	for _, b := range builders {
		o := b()
		x := []float32{0}
		g := []float32{0}
		for i := 0; i < 500; i++ {
			g[0] = 2 * (x[0] - 3)
			o.Step(oneParam(x, g))
		}
		if math.Abs(float64(x[0]-3)) > 0.05 {
			t.Fatalf("%s did not converge: x=%v", o.Name(), x[0])
		}
	}
}
