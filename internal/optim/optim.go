// Package optim implements the optimizers used for recommendation-model
// training: plain SGD, SGD with momentum, Adagrad, and Adam, in both a
// dense form (stepping nn.Param lists) and a sparse row-wise form for
// embedding rows.
//
// The sparse variants keep per-row state lazily in maps, mirroring how
// production systems keep optimizer state sharded alongside the embedding
// tables. Bagpipe performs true gradient averaging (unlike cDLRM's
// embedding averaging, see §6 of the paper), so any of these optimizers can
// drive the embedding updates.
package optim

import (
	"math"

	"bagpipe/internal/nn"
)

// Optimizer updates dense parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []nn.Param)
	// Name identifies the optimizer in logs and experiment output.
	Name() string
}

// RowOptimizer updates a single embedding row in place from its gradient.
type RowOptimizer interface {
	// UpdateRow applies one update to row (identified by id) in place.
	UpdateRow(id uint64, row, grad []float32)
	// Name identifies the optimizer.
	Name() string
}

// SGD is plain stochastic gradient descent.
type SGD struct{ LR float32 }

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Name implements Optimizer and RowOptimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []nn.Param) {
	for _, p := range params {
		for i, g := range p.Grad {
			p.Value[i] -= s.LR * g
			p.Grad[i] = 0
		}
	}
}

// UpdateRow implements RowOptimizer.
func (s *SGD) UpdateRow(_ uint64, row, grad []float32) {
	for i, g := range grad {
		row[i] -= s.LR * g
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR, Mu float32
	vel    map[*float32][]float32 // keyed by ¶m.Value[0]
	rowVel map[uint64][]float32
}

// NewMomentum returns SGD with momentum mu.
func NewMomentum(lr, mu float32) *Momentum {
	return &Momentum{LR: lr, Mu: mu, vel: map[*float32][]float32{}, rowVel: map[uint64][]float32{}}
}

// Name implements Optimizer and RowOptimizer.
func (m *Momentum) Name() string { return "momentum" }

// Step implements Optimizer.
func (m *Momentum) Step(params []nn.Param) {
	for _, p := range params {
		if len(p.Value) == 0 {
			continue
		}
		key := &p.Value[0]
		v, ok := m.vel[key]
		if !ok {
			v = make([]float32, len(p.Value))
			m.vel[key] = v
		}
		for i, g := range p.Grad {
			v[i] = m.Mu*v[i] + g
			p.Value[i] -= m.LR * v[i]
			p.Grad[i] = 0
		}
	}
}

// UpdateRow implements RowOptimizer.
func (m *Momentum) UpdateRow(id uint64, row, grad []float32) {
	v, ok := m.rowVel[id]
	if !ok {
		v = make([]float32, len(row))
		m.rowVel[id] = v
	}
	for i, g := range grad {
		v[i] = m.Mu*v[i] + g
		row[i] -= m.LR * v[i]
	}
}

// Adagrad keeps per-coordinate accumulated squared gradients.
type Adagrad struct {
	LR, Eps float32
	acc     map[*float32][]float32
	rowAcc  map[uint64][]float32
}

// NewAdagrad returns Adagrad with the given learning rate.
func NewAdagrad(lr float32) *Adagrad {
	return &Adagrad{LR: lr, Eps: 1e-8, acc: map[*float32][]float32{}, rowAcc: map[uint64][]float32{}}
}

// Name implements Optimizer and RowOptimizer.
func (a *Adagrad) Name() string { return "adagrad" }

// Step implements Optimizer.
func (a *Adagrad) Step(params []nn.Param) {
	for _, p := range params {
		if len(p.Value) == 0 {
			continue
		}
		key := &p.Value[0]
		acc, ok := a.acc[key]
		if !ok {
			acc = make([]float32, len(p.Value))
			a.acc[key] = acc
		}
		for i, g := range p.Grad {
			acc[i] += g * g
			p.Value[i] -= a.LR * g / (float32(math.Sqrt(float64(acc[i]))) + a.Eps)
			p.Grad[i] = 0
		}
	}
}

// UpdateRow implements RowOptimizer.
func (a *Adagrad) UpdateRow(id uint64, row, grad []float32) {
	acc, ok := a.rowAcc[id]
	if !ok {
		acc = make([]float32, len(row))
		a.rowAcc[id] = acc
	}
	for i, g := range grad {
		acc[i] += g * g
		row[i] -= a.LR * g / (float32(math.Sqrt(float64(acc[i]))) + a.Eps)
	}
}

// Adam implements the Adam optimizer.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	t                     int
	m, v                  map[*float32][]float32
	rowM, rowV            map[uint64][]float32
	rowT                  map[uint64]int
}

// NewAdam returns Adam with standard hyperparameters.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*float32][]float32{}, v: map[*float32][]float32{},
		rowM: map[uint64][]float32{}, rowV: map[uint64][]float32{}, rowT: map[uint64]int{},
	}
}

// Name implements Optimizer and RowOptimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []nn.Param) {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		if len(p.Value) == 0 {
			continue
		}
		key := &p.Value[0]
		m, ok := a.m[key]
		if !ok {
			m = make([]float32, len(p.Value))
			a.m[key] = m
		}
		v, ok := a.v[key]
		if !ok {
			v = make([]float32, len(p.Value))
			a.v[key] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Value[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
			p.Grad[i] = 0
		}
	}
}

// UpdateRow implements RowOptimizer. Each row keeps its own step counter so
// rows touched at different frequencies get correct bias correction.
func (a *Adam) UpdateRow(id uint64, row, grad []float32) {
	m, ok := a.rowM[id]
	if !ok {
		m = make([]float32, len(row))
		a.rowM[id] = m
	}
	v, ok := a.rowV[id]
	if !ok {
		v = make([]float32, len(row))
		a.rowV[id] = v
	}
	a.rowT[id]++
	t := a.rowT[id]
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(t)))
	for i, g := range grad {
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
		mh := m[i] / bc1
		vh := v[i] / bc2
		row[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
	}
}
