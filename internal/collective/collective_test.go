package collective

import (
	"sync"
	"testing"
)

// run spawns n ranks executing fn and waits for all of them.
func run(n int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

func TestAllReduceSum(t *testing.T) {
	g := NewGroup(4)
	results := make([][]float32, 4)
	run(4, func(rank int) {
		x := []float32{float32(rank), 1}
		g.AllReduceSum(rank, x)
		results[rank] = x
	})
	for rank, x := range results {
		if x[0] != 6 || x[1] != 4 {
			t.Fatalf("rank %d got %v want [6 4]", rank, x)
		}
	}
}

func TestAllReduceSumRepeated(t *testing.T) {
	g := NewGroup(3)
	const iters = 50
	run(3, func(rank int) {
		for i := 0; i < iters; i++ {
			x := []float32{1}
			g.AllReduceSum(rank, x)
			if x[0] != 3 {
				t.Errorf("iter %d rank %d got %v", i, rank, x[0])
				return
			}
		}
	})
}

func TestAllReduceSum64RankOrderedFold(t *testing.T) {
	// The float64 reduction must equal the left fold in rank order starting
	// from zero — the exact sum a single-process loop over ranks computes.
	// Values are chosen so different fold orders give different float64
	// bit patterns.
	vals := []float64{1e-17, 1.0, -1.0, 3e-17}
	var want float64
	for _, v := range vals {
		want += v
	}
	g := NewGroup(4)
	results := make([]float64, 4)
	run(4, func(rank int) {
		x := []float64{vals[rank]}
		g.AllReduceSum64(rank, x)
		results[rank] = x[0]
	})
	for rank, got := range results {
		if got != want {
			t.Fatalf("rank %d got %v want %v (fold-order dependent)", rank, got, want)
		}
	}
}

// TestFusedAllReduceMatchesPerSegment pins the fused round to the exact
// bits of the per-segment calls it replaces: same rank-ordered fold per
// segment, same float64 loss fold, values chosen so any other fold order
// gives different bit patterns.
func TestFusedAllReduceMatchesPerSegment(t *testing.T) {
	const n = 4
	segVals := [][]float32{ // [rank][seg]
		{1e-8, 1},
		{1, -1},
		{-1, 3e-8},
		{3e-8, 1e-8},
	}
	lossVals := []float64{1e-17, 1.0, -1.0, 3e-17}

	// Reference: the per-segment primitives.
	ref := NewGroup(n)
	wantSegs := make([][][]float32, n) // [rank][seg]
	wantLoss := make([][]float64, n)
	run(n, func(rank int) {
		a := []float32{segVals[rank][0]}
		b := []float32{segVals[rank][1]}
		ref.AllReduceSum(rank, a)
		ref.AllReduceSum(rank, b)
		l := []float64{lossVals[rank]}
		ref.AllReduceSum64(rank, l)
		wantSegs[rank] = [][]float32{a, b}
		wantLoss[rank] = l
	})

	g := NewGroup(n)
	run(n, func(rank int) {
		segs := [][]float32{{segVals[rank][0]}, {segVals[rank][1]}}
		loss := []float64{lossVals[rank]}
		g.FusedAllReduce(rank, segs, loss)
		for i := range segs {
			if segs[i][0] != wantSegs[rank][i][0] {
				t.Errorf("rank %d seg %d: fused %v != per-segment %v", rank, i, segs[i][0], wantSegs[rank][i][0])
			}
		}
		if loss[0] != wantLoss[rank][0] {
			t.Errorf("rank %d loss: fused %v != per-segment %v", rank, loss[0], wantLoss[rank][0])
		}
	})
}

// TestFusedAllReduceSingleRank: n=1 is a no-op that leaves inputs alone.
func TestFusedAllReduceSingleRank(t *testing.T) {
	g := NewGroup(1)
	segs := [][]float32{{1, 2}}
	loss := []float64{0.5}
	g.FusedAllReduce(0, segs, loss)
	if segs[0][0] != 1 || segs[0][1] != 2 || loss[0] != 0.5 {
		t.Fatalf("single-rank fused reduce mutated inputs: %v %v", segs, loss)
	}
}

func TestAllReduceMixedPhases(t *testing.T) {
	// Alternating float32 and float64 collectives on one group must not
	// bleed between phases.
	g := NewGroup(2)
	run(2, func(rank int) {
		for i := 0; i < 20; i++ {
			x := []float32{1}
			g.AllReduceSum(rank, x)
			if x[0] != 2 {
				t.Errorf("f32 phase %d rank %d got %v", i, rank, x[0])
				return
			}
			y := []float64{0.5}
			g.AllReduceSum64(rank, y)
			if y[0] != 1 {
				t.Errorf("f64 phase %d rank %d got %v", i, rank, y[0])
				return
			}
		}
	})
}

func TestAllReduceSingleRankNoop(t *testing.T) {
	g := NewGroup(1)
	x := []float32{5}
	g.AllReduceSum(0, x)
	if x[0] != 5 {
		t.Fatalf("got %v", x[0])
	}
}

func TestAllReduceDeterministicOrder(t *testing.T) {
	// values chosen so float addition order matters; per-rank slots force
	// rank-order summation, so every run and every rank must agree exactly.
	vals := []float32{1e8, -1e8, 3.14159, 2.71828}
	var first []float32
	for trial := 0; trial < 20; trial++ {
		g := NewGroup(4)
		results := make([][]float32, 4)
		run(4, func(rank int) {
			x := []float32{vals[rank]}
			g.AllReduceSum(rank, x)
			results[rank] = x
		})
		for rank := 1; rank < 4; rank++ {
			if results[rank][0] != results[0][0] {
				t.Fatal("ranks disagree")
			}
		}
		if trial == 0 {
			first = results[0]
		} else if results[0][0] != first[0] {
			t.Fatal("nondeterministic across runs")
		}
	}
}

func TestBarrier(t *testing.T) {
	g := NewGroup(4)
	var mu sync.Mutex
	phase := make(map[int]int)
	run(4, func(rank int) {
		for i := 0; i < 10; i++ {
			mu.Lock()
			phase[rank] = i
			// no rank may be more than one barrier phase away
			for r, p := range phase {
				if p < i-1 || p > i+1 {
					t.Errorf("rank %d at %d while rank %d at %d", rank, i, r, p)
				}
			}
			mu.Unlock()
			g.Barrier(rank)
		}
	})
}

func TestAllGather(t *testing.T) {
	g := NewGroup(3)
	run(3, func(rank int) {
		got := g.AllGather(rank, []float32{float32(rank * 10)})
		for r := 0; r < 3; r++ {
			if got[r][0] != float32(r*10) {
				t.Errorf("rank %d sees %v for rank %d", rank, got[r][0], r)
			}
		}
	})
}

func TestAllToAll(t *testing.T) {
	const n = 3
	g := NewGroup(n)
	var mu sync.Mutex
	seen := make(map[[2]int]float32) // (receiver, sender) → value
	run(n, func(rank int) {
		send := make([][]float32, n)
		for j := 0; j < n; j++ {
			send[j] = []float32{float32(rank*100 + j)}
		}
		recv := g.AllToAll(rank, send)
		mu.Lock()
		for r := 0; r < n; r++ {
			seen[[2]int{rank, r}] = recv[r][0]
		}
		mu.Unlock()
	})
	for recvRank := 0; recvRank < n; recvRank++ {
		for sender := 0; sender < n; sender++ {
			want := float32(sender*100 + recvRank)
			if got := seen[[2]int{recvRank, sender}]; got != want {
				t.Fatalf("recv %d from %d: got %v want %v", recvRank, sender, got, want)
			}
		}
	}
}

func TestAllToAllRepeated(t *testing.T) {
	g := NewGroup(2)
	run(2, func(rank int) {
		for i := 0; i < 30; i++ {
			send := [][]float32{{float32(rank)}, {float32(rank)}}
			recv := g.AllToAll(rank, send)
			if recv[0][0] != 0 || recv[1][0] != 1 {
				t.Errorf("iter %d rank %d bad recv", i, rank)
				return
			}
		}
	})
}

func TestGroupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroup(0)
}

func TestRankOutOfRangePanics(t *testing.T) {
	g := NewGroup(2)
	done := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
			close(done)
		}()
		g.AllReduceSum(5, []float32{1})
	}()
	<-done
}
