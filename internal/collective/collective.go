// Package collective implements the collective-communication primitives
// recommendation-model training uses: all-reduce for dense gradients and
// cache synchronization, and all-to-all for partitioned embedding exchange.
//
// The functional implementation synchronizes in-process trainer goroutines
// deterministically: each rank deposits its contribution into a per-rank
// slot and every rank folds the slots in rank order, so results are
// bit-identical run to run regardless of goroutine scheduling. That
// rank-ordered fold is the package's contract, not an implementation
// detail: the Collective interface names it, and every mesh-based reducer
// strategy multi-process worker runs select from (internal/train's
// meshColl: rooted per-parameter frames, fused single-frame rounds, or a
// ring of relayed fused frames over transport.Mesh) reproduces the
// identical summation order, which is what keeps distributed runs
// bit-identical to single-process ones.
package collective

import (
	"fmt"
	"sync"
)

// Collective is the interface the LRPP trainers step every iteration's
// dense gradients and loss term through: one *fused* all-reduce covering
// all parameter segments plus the float64 loss, instead of one collective
// round per parameter. Implementations must fold contributions per segment
// in rank order starting from zero — the contract that keeps every
// engine × fabric combination bit-identical. In-process trainer goroutines
// share a Group; multi-process workers use internal/train's mesh-based
// reducer, whose rooted, fused, and ring strategies all reproduce the
// identical summation order.
type Collective interface {
	// FusedAllReduce sums segs[i] element-wise across all ranks into every
	// rank's segs[i] in place, and likewise loss. All ranks must pass
	// congruent shapes; the call doubles as the iteration barrier.
	FusedAllReduce(rank int, segs [][]float32, loss []float64)
}

// AddF32 folds src into dst element-wise (dst[i] += src[i]). This is THE
// fold kernel of every rank-ordered reduction in the system — collective
// rounds, mesh reducer strategies, delayed-sync gradient merges — written
// so the compiler eliminates the bounds checks and can vectorize: one
// length assertion up front, then a 4-way unrolled body over full slices.
// Element-wise independence means using it preserves any caller's
// summation order exactly.
func AddF32(dst, src []float32) { addVec(dst, src) }

// AddF64 is AddF32 for float64 vectors (loss terms).
func AddF64(dst, src []float64) { addVec(dst, src) }

// addVec is the shared kernel: one length assertion, then a 4-way unrolled
// body over full-slice windows so the compiler drops the per-element bounds
// checks.
func addVec[T float32 | float64](dst, src []T) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("collective: fold length mismatch %d != %d", len(src), len(dst)))
	}
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
	}
	for ; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// Group coordinates a fixed set of n ranks performing collectives. A Group
// is reusable: ranks may call the same collective repeatedly, but all ranks
// must make the same sequence of calls (as with MPI communicators).
type Group struct {
	n int

	mu       sync.Mutex
	cond     *sync.Cond
	slots    []any
	joined   int
	departed int
	complete bool
	gen      uint64
	a2a      [][][]float32

	// fused holds each rank's persistent snapshot buffers for
	// FusedAllReduce, reused round over round. Safe without extra locking:
	// rank r writes only fused[r], peers read it strictly between that
	// rank's arrive and the phase's depart barrier (both under mu), and no
	// rank can start the next round before every rank has departed.
	fused []fusedContrib
}

// NewGroup returns a group of n ranks.
func NewGroup(n int) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("collective: group size %d", n))
	}
	g := &Group{n: n, slots: make([]any, n), fused: make([]fusedContrib, n)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.n }

// arrive deposits data into rank's slot and blocks until all ranks of this
// generation have arrived. Returns a stable snapshot of all slots. Every
// arrive must be paired with a depart. Slots are untyped so collectives
// over different element types (float32 gradients, float64 loss terms)
// share one synchronization core; all ranks of a phase must contribute the
// same type.
func (g *Group) arrive(rank int, data any) []any {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rank < 0 || rank >= g.n {
		panic(fmt.Sprintf("collective: rank %d out of [0,%d)", rank, g.n))
	}
	// a rank racing ahead into the next collective waits for the previous
	// phase to fully drain first.
	for g.complete {
		g.cond.Wait()
	}
	if g.slots[rank] != nil {
		panic(fmt.Sprintf("collective: rank %d arrived twice in one phase", rank))
	}
	g.slots[rank] = data
	g.joined++
	if g.joined == g.n {
		g.complete = true
		g.cond.Broadcast()
	} else {
		for !g.complete {
			g.cond.Wait()
		}
	}
	return g.slots
}

// depart releases the rank from the phase; the last one out resets the
// group for the next collective, and earlier leavers block until then so
// no rank can lap the group.
func (g *Group) depart() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.departed++
	if g.departed == g.n {
		g.joined, g.departed = 0, 0
		g.complete = false
		clear(g.slots)
		g.gen++
		g.cond.Broadcast()
		return
	}
	myGen := g.gen
	for g.gen == myGen {
		g.cond.Wait()
	}
}

// allReduceSum sums the equal-length vectors contributed by every rank and
// writes the total into each rank's x in place. Summation is in rank order
// starting from zero, so every rank computes bit-identical results.
func allReduceSum[T float32 | float64](g *Group, rank int, x []T) {
	if g.n == 1 {
		return
	}
	contrib := append([]T(nil), x...)
	slots := g.arrive(rank, contrib)
	// Rank-order fold via the vector kernel: copy rank 0's contribution,
	// add ranks 1..n−1 — element-independent, so the per-element summation
	// order (and therefore the bits) match the old per-element loop.
	copy(x, slots[0].([]T))
	for r := 1; r < g.n; r++ {
		addVec(x, slots[r].([]T))
	}
	g.depart()
}

// AllReduceSum is the float32 all-reduce used for dense gradients.
func (g *Group) AllReduceSum(rank int, x []float32) { allReduceSum(g, rank, x) }

// fusedContrib is one rank's snapshot of a fused round: every gradient
// segment plus the loss vector, deposited as a single slot.
type fusedContrib struct {
	segs [][]float32
	loss []float64
}

// FusedAllReduce implements Collective: one arrive/depart round reduces
// every segment and the loss together, folding whole segments in rank
// order from zero — copy rank 0's segment, then AddF32 each later rank's —
// which is the identical left-to-right per-element summation as
// per-segment AllReduceSum calls, at one synchronization instead of
// len(segs)+1 and without the per-element slot type assertions the old
// triple loop paid. Each rank's contribution snapshot lives in a
// per-rank buffer reused across rounds (see Group.fused), so the steady
// state allocates nothing.
func (g *Group) FusedAllReduce(rank int, segs [][]float32, loss []float64) {
	if g.n == 1 {
		return
	}
	if rank < 0 || rank >= g.n {
		panic(fmt.Sprintf("collective: rank %d out of [0,%d)", rank, g.n))
	}
	c := &g.fused[rank]
	if cap(c.segs) < len(segs) {
		c.segs = make([][]float32, len(segs))
	}
	c.segs = c.segs[:len(segs)]
	for i, s := range segs {
		buf := c.segs[i]
		if cap(buf) < len(s) {
			buf = make([]float32, len(s))
		}
		buf = buf[:len(s)]
		copy(buf, s)
		c.segs[i] = buf
	}
	c.loss = append(c.loss[:0], loss...)
	slots := g.arrive(rank, c)
	first := slots[0].(*fusedContrib)
	for i, x := range segs {
		copy(x, first.segs[i][:len(x)])
	}
	copy(loss, first.loss)
	for r := 1; r < g.n; r++ {
		peer := slots[r].(*fusedContrib)
		for i, x := range segs {
			AddF32(x, peer.segs[i][:len(x)])
		}
		AddF64(loss, peer.loss)
	}
	g.depart()
}

// AllReduceSum64 is the float64 all-reduce. The LRPP trainers use it for
// the full-batch loss: per-rank partial losses are float64, and summing
// them in rank order from zero reproduces bit-for-bit the fold the
// single-process engines compute, so every trainer reports the identical
// loss the baseline would.
func (g *Group) AllReduceSum64(rank int, x []float64) { allReduceSum(g, rank, x) }

// Barrier blocks until all ranks reach it.
func (g *Group) Barrier(rank int) {
	if g.n == 1 {
		return
	}
	g.arrive(rank, []float32{})
	g.depart()
}

// AllGather returns every rank's contribution, indexed by rank. The result
// slices alias the contributed data; callers must treat them as read-only.
func (g *Group) AllGather(rank int, x []float32) [][]float32 {
	if g.n == 1 {
		return [][]float32{x}
	}
	slots := g.arrive(rank, x)
	out := make([][]float32, g.n)
	for r := range slots {
		out[r] = slots[r].([]float32)
	}
	g.depart()
	return out
}

// AllToAll exchanges per-destination buffers: send[j] goes to rank j. The
// returned recv[j] is the buffer rank j sent to this rank. Used by the
// TorchRec-style baseline's embedding exchange.
func (g *Group) AllToAll(rank int, send [][]float32) [][]float32 {
	if len(send) != g.n {
		panic(fmt.Sprintf("collective: AllToAll needs %d send buffers, got %d", g.n, len(send)))
	}
	if g.n == 1 {
		return [][]float32{send[0]}
	}
	// flatten pointers through two phases: publish all send matrices, then
	// pick out the column addressed to us.
	g.mu.Lock()
	if g.a2a == nil {
		g.a2a = make([][][]float32, g.n)
	}
	g.a2a[rank] = send
	g.mu.Unlock()
	g.Barrier(rank)
	recv := make([][]float32, g.n)
	for r := 0; r < g.n; r++ {
		recv[r] = g.a2a[r][rank]
	}
	g.Barrier(rank)
	g.mu.Lock()
	g.a2a[rank] = nil
	g.mu.Unlock()
	return recv
}
