package transport

import (
	"fmt"
	"io"
	"time"
)

// Server rejoin: anti-entropy recovery of a dead embedding server back into
// the live replicated tier, without stopping training or serving.
//
// The tier's per-server state machine is dead → resync → live. BeginRejoin
// installs a freshly dialed connection under a new *generation* (incarnation
// fence: outcomes of RPCs issued against the old connection can no longer
// condemn the server), and flips the server to resync — from that moment
// every write to one of its partitions is applied to the surviving replicas
// *and* forwarded to the rejoiner, so no update is lost during recovery.
// CompleteRejoin then runs the anti-entropy transfer: partition by
// partition, a snapshot is exported from the partition's first live holder,
// streamed to the rejoiner (whose server-side recovery mode skips rows the
// forwarded live stream already refreshed), and certified by comparing
// embed.FingerprintPart digests between source and rejoiner. Only when every
// partition of the rejoiner's replica set verifies does markLive re-admit it
// to the write quorum, the read ring, and the serving read path. Any failure
// re-marks the rejoiner dead under its generation — there is no half-live
// state, and a resyncing server never serves a read.

// PartExporter is the optional store face the anti-entropy source needs: a
// snapshot of one partition's materialized rows.
type PartExporter interface {
	TryExportPart(part, of int) ([]uint64, [][]float32, error)
}

// RecoveryStore is the optional store face a rejoining server's connection
// needs: bulk recovery writes (skipping rows the live stream already
// refreshed — see embed.Server.WriteRecovery) and the explicit end of the
// recovery window once the tier has certified the rejoin.
type RecoveryStore interface {
	TryWriteRecovery(ids []uint64, rows [][]float32) error
	TryEndRecovery() error
}

// RejoinOptions tunes an anti-entropy rejoin. The zero value is sensible.
type RejoinOptions struct {
	// BatchRows is the number of rows per recovery-write RPC (default 512).
	BatchRows int
	// MaxRounds bounds the export→transfer→verify attempts per partition
	// (default 64). Concurrent writers from *other* tier clients can race a
	// round's digest check; each round repairs what the previous one
	// missed, and the loop converges once those writers either start
	// forwarding to the rejoiner or quiesce.
	MaxRounds int
	// RoundBackoff is the sleep between verify rounds (default 25ms).
	RoundBackoff time.Duration
	// VerifyOnly skips the transfer: the caller only waits for the
	// rejoiner's partitions to verify against the live holders before
	// re-admitting it. A read-only tier client (the serving front end's
	// store) uses this — some read-write client owns the actual transfer.
	VerifyOnly bool
}

func (o *RejoinOptions) defaults() {
	if o.BatchRows <= 0 {
		o.BatchRows = 512
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 64
	}
	if o.RoundBackoff <= 0 {
		o.RoundBackoff = 25 * time.Millisecond
	}
}

// BeginRejoin installs st as the new connection to dead server s and flips
// it to the resync state under a new generation. From return onward the
// write fan-out forwards s's partitions' writes to st; reads still avoid s
// until CompleteRejoin certifies it. st must serve the tier's row width.
//
// A rejoin that races a reshard is refused: mid-reshard the partition map
// is in motion, and re-admitting a server under ownership about to change
// would certify it against the wrong id sets. The Reviver simply retries
// next tick, after the tier settles. When the tier has resharded before
// (epoch > 0), the current table is installed on the fresh connection
// first — a rejoiner always lands in the *new* routing epoch, so a server
// that died under old ownership can never resurrect it.
func (t *ShardedStore) BeginRejoin(s int, st Store) error {
	rt := t.routing.Load()
	if !rt.Settled() {
		return fmt.Errorf("transport: rejoin of server %d deferred: tier is resharding (epoch %d)", s, rt.Epoch)
	}
	if s < 0 || s >= rt.NewS {
		return fmt.Errorf("transport: rejoin of server %d outside tier [0, %d)", s, rt.NewS)
	}
	if st == nil {
		return fmt.Errorf("transport: rejoin of server %d with no store", s)
	}
	if st.Dim() != t.dim {
		return fmt.Errorf("transport: rejoining server %d serves dim %d, tier serves %d", s, st.Dim(), t.dim)
	}
	sl := newServerSlot(st)
	if rt.Epoch > 0 && sl.reshard != nil {
		if err := sl.reshard.TryInstallRouting(rt); err != nil {
			return fmt.Errorf("transport: rejoining server %d refused the routing table: %w", s, err)
		}
	}
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	if t.state[s].Load() != srvDead {
		return fmt.Errorf("transport: rejoin of server %d which is not dead", s)
	}
	// Publication order matters for the incarnation fence: readers load gen
	// before slot, so slot must be new by the time gen is, and both must be
	// new by the time the resync state is visible.
	t.slots[s].Store(sl)
	t.gen[s].Add(1)
	t.state[s].Store(srvResync)
	return nil
}

// CompleteRejoin runs the anti-entropy transfer for resyncing server s and,
// once every partition of its replica set verifies digest-identical to its
// live holder, re-admits s to the live set. On any rejoiner-side failure —
// or on verify rounds exhausting without convergence — s is re-marked dead
// (fenced by its generation) and an attributed op-"resync" *TierError is
// returned as a value: the tier itself stays healthy, serving from the
// survivors exactly as before the attempt.
func (t *ShardedStore) CompleteRejoin(s int, opts RejoinOptions) error {
	opts.defaults()
	t.rejoinMu.Lock()
	defer t.rejoinMu.Unlock()
	// Widths come from the settled routing table (BeginRejoin refused a
	// mid-reshard rejoin, so the width is stable for the whole transfer).
	W := t.routing.Load().Width()
	if s < 0 || s >= W || t.state[s].Load() != srvResync {
		return fmt.Errorf("transport: complete rejoin of server %d which is not resyncing", s)
	}
	g := t.gen[s].Load()
	// s holds every partition whose replica set contains s: partitions
	// s, s−1, …, s−R+1 on the ownership ring.
	for k := 0; k < t.replicate; k++ {
		p := ((s-k)%W + W) % W
		if err := t.resyncPartition(s, g, p, W, &opts); err != nil {
			return err
		}
	}
	if !t.markLive(s, g) {
		cause := t.deadCause(s)
		if cause == nil {
			cause = fmt.Errorf("transport: rejoin of server %d superseded before certification", s)
		}
		return &TierError{Op: "resync", Partition: s, Server: s, Replicate: t.replicate, Cause: cause}
	}
	return nil
}

// Rejoin is BeginRejoin + CompleteRejoin: the full dead → resync → live
// recovery of server s through the freshly dialed connection st.
func (t *ShardedStore) Rejoin(s int, st Store, opts RejoinOptions) error {
	if err := t.BeginRejoin(s, st); err != nil {
		return err
	}
	return t.CompleteRejoin(s, opts)
}

// resyncPartition brings partition p of rejoiner s (generation g) up to
// date: rounds of export-from-live-holder → recovery-write → digest-verify,
// each round under the partition's exclusive resync lock so this client's
// own writes cannot interleave between a snapshot and its application.
func (t *ShardedStore) resyncPartition(s int, g uint64, p, W int, opts *RejoinOptions) error {
	fail := func(cause error) error {
		t.markDeadIfGen(s, g, cause)
		return &TierError{Op: "resync", Partition: p, Server: s, Replicate: t.replicate, Cause: cause}
	}
	var lastCause error
	for round := 0; round < opts.MaxRounds; round++ {
		if t.gen[s].Load() != g || t.state[s].Load() != srvResync {
			// A concurrent failure (a forwarded write erroring, a racing
			// condemnation) already took s back to dead: surface it rather
			// than keep transferring into a condemned incarnation.
			cause := t.deadCause(s)
			if cause == nil {
				cause = fmt.Errorf("transport: server %d left resync during recovery of partition %d", s, p)
			}
			return fail(cause)
		}
		ok, err := t.resyncRound(s, p, W, opts)
		if err != nil {
			return fail(err)
		}
		if ok {
			return nil
		}
		lastCause = fmt.Errorf("transport: partition %d digest still diverges after round %d (concurrent writers)", p, round+1)
		time.Sleep(opts.RoundBackoff)
	}
	if lastCause == nil {
		lastCause = fmt.Errorf("transport: partition %d never verified", p)
	}
	return fail(lastCause)
}

// resyncRound runs one export→transfer→verify round for partition p of
// rejoiner s. Returns (true, nil) when the digests matched, (false, nil)
// when the round should be retried (divergence under concurrent writers, or
// a *source* failure — the next round routes to the next live holder), and
// a non-nil error only for rejoiner-side failures, which are terminal.
func (t *ShardedStore) resyncRound(s, p, W int, opts *RejoinOptions) (bool, error) {
	lk := &t.partLocks[p]
	lk.Lock()
	defer lk.Unlock()
	src := t.routeIn(p, W)
	if src < 0 {
		// Every verified holder of p is gone; the rejoin cannot be sourced
		// (and the tier at large is about to discover the same loss).
		return false, fmt.Errorf("transport: no live replica of partition %d to resync from", p)
	}
	srcGen := t.gen[src].Load()
	srcStore := t.child(src)
	if !opts.VerifyOnly {
		exp, ok := srcStore.(PartExporter)
		if !ok {
			return false, fmt.Errorf("transport: tier server %d (%T) cannot export partitions", src, srcStore)
		}
		ids, rows, err := exp.TryExportPart(p, W)
		if err != nil {
			// Source failure: condemn it (fenced) and retry the round — the
			// ring routes to the next live holder.
			t.markDeadIfGen(src, srcGen, err)
			return false, nil
		}
		rec, ok := t.child(s).(RecoveryStore)
		if !ok {
			return false, fmt.Errorf("transport: rejoining server %d (%T) cannot accept recovery writes", s, t.child(s))
		}
		for off := 0; off < len(ids); off += opts.BatchRows {
			end := min(off+opts.BatchRows, len(ids))
			if err := rec.TryWriteRecovery(ids[off:end], rows[off:end]); err != nil {
				return false, err
			}
			t.resyncRows.Add(int64(end - off))
		}
	}
	want, err := t.fingerprintOnce(src, p, W)
	if err != nil {
		t.markDeadIfGen(src, srcGen, err)
		return false, nil
	}
	got, err := t.fingerprintOnce(s, p, W)
	if err != nil {
		return false, err
	}
	return want == got, nil
}

// fingerprintOnce is a single (unretried) partition-fingerprint probe of
// server idx in an of-way partition space — the resync rounds own the
// retry policy.
func (t *ShardedStore) fingerprintOnce(idx, part, of int) (uint64, error) {
	if f := t.fall(idx); f != nil {
		return f.TryFingerprintPart(part, of)
	}
	c := t.child(idx)
	pf, ok := c.(partFingerprinter)
	if !ok {
		return 0, fmt.Errorf("transport: tier server %d (%T) cannot serve partition fingerprints", idx, c)
	}
	return pf.FingerprintPart(part, of), nil
}

// EndRecovery closes server s's server-side recovery window (the freshness
// filter of WriteRecovery). With several independent tier clients rejoining
// the same server, only the coordinator that knows *every* client has
// re-admitted it may call this — ending recovery while another client is
// still transferring would let a stale snapshot overwrite live rows.
func (t *ShardedStore) EndRecovery(s int) error {
	if s < 0 || s >= t.capacity {
		return fmt.Errorf("transport: end recovery of server %d outside tier capacity [0, %d)", s, t.capacity)
	}
	rec, ok := t.child(s).(RecoveryStore)
	if !ok {
		return fmt.Errorf("transport: server %d (%T) has no recovery face", s, t.child(s))
	}
	return rec.TryEndRecovery()
}

// Reviver watches the tier for dead servers and brings them back: it
// re-dials each dead server's address on a poll interval (a dial failure is
// simply retried next tick — a rebooting server is not re-condemned), and
// on a successful dial runs the full Rejoin. It is the tier-client-side
// half of the rejoin story; the respawned server process is the other.
type Reviver struct {
	t    *ShardedStore
	dial func(server int) (Store, error)
	opts RejoinOptions
	// onRejoined, if set, is told the outcome of every completed rejoin
	// attempt (nil error: the server is live again).
	onRejoined func(server int, err error)
	stop       chan struct{}
	done       chan struct{}
}

// ReviverInterval is the poll cadence for dead-server re-dials.
const ReviverInterval = 50 * time.Millisecond

// NewReviver starts a reviver over t. dial must return a fresh connection
// to the given server's (re-used) address, or an error to retry later.
func NewReviver(t *ShardedStore, dial func(server int) (Store, error), opts RejoinOptions, onRejoined func(server int, err error)) *Reviver {
	r := &Reviver{t: t, dial: dial, opts: opts, onRejoined: onRejoined,
		stop: make(chan struct{}), done: make(chan struct{})}
	go r.loop()
	return r
}

func (r *Reviver) loop() {
	defer close(r.done)
	tick := time.NewTicker(ReviverInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		for _, s := range r.t.DeadServers() {
			st, err := r.dial(s)
			if err != nil {
				continue // not up yet; retry next tick
			}
			err = r.t.Rejoin(s, st, r.opts)
			if err != nil {
				// The failed incarnation's connection is ours to clean up;
				// the tier already re-marked the server dead.
				if c, ok := st.(io.Closer); ok {
					c.Close()
				}
			}
			if r.onRejoined != nil {
				r.onRejoined(s, err)
			}
		}
	}
}

// Stop halts the reviver and waits for any in-flight rejoin to finish.
func (r *Reviver) Stop() {
	close(r.stop)
	<-r.done
}
