package transport

import "math"

// IEEE-754 binary16 conversion for the optional quantized replica path:
// a replica row pushed with -sync-compress crosses the mesh as half-
// precision floats (2 bytes/element instead of 4). Quantization happens at
// the *sender* — rows are rounded through f16 before the message is built —
// so every fabric (in-process reference delivery, simulated, TCP codec)
// moves the identical values and the wire encoding itself stays lossless.

// F16FromF32 converts a float32 to its binary16 bit pattern, rounding to
// nearest-even. Overflow clamps to ±Inf; NaN is preserved; subnormals
// flush through the standard denormal path.
func F16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xFF) - 127 + 15
	mant := b & 0x7FFFFF

	switch {
	case exp >= 0x1F: // overflow or Inf/NaN
		if b&0x7FFFFFFF > 0x7F800000 { // NaN: keep a payload bit set
			return sign | 0x7E00
		}
		return sign | 0x7C00
	case exp <= 0: // subnormal or zero in f16
		if exp < -10 {
			return sign // underflows to zero
		}
		// Add the implicit leading 1, then shift into the subnormal range
		// with round-to-nearest-even. A carry out of the subnormal mantissa
		// lands on the smallest normal encoding, which is exactly right.
		mant |= 0x800000
		shift := uint(14 - exp)
		m := mant >> shift
		rem := mant & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	default:
		// Normal: round the 13 dropped mantissa bits to nearest-even.
		m := mant >> 13
		rem := mant & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 { // mantissa overflow carries into the exponent
				m = 0
				exp++
				if exp >= 0x1F {
					return sign | 0x7C00
				}
			}
		}
		return sign | uint16(exp)<<10 | uint16(m)
	}
}

// F32FromF16 expands a binary16 bit pattern to float32 (exact).
func F32FromF16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into an f32 exponent.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x3FF)<<13)
	case 0x1F:
		return math.Float32frombits(sign | 0x7F800000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// QuantizeF16 rounds every element of xs through binary16 in place,
// returning xs. Senders on the quantized replica path call this before
// building the message, so all mesh fabrics carry identical values.
func QuantizeF16(xs []float32) []float32 {
	for i, x := range xs {
		xs[i] = F32FromF16(F16FromF32(x))
	}
	return xs
}
