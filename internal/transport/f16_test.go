package transport

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip drives arbitrary float32 bit patterns through the
// binary16 conversion pair and checks the IEEE-754 properties the
// compressed replica/sync paths depend on: quantization is idempotent
// (the wire value re-quantizes to itself bit-for-bit, which is what makes
// the f16 *encoding* lossless once the sender rounded), overflow clamps to
// infinity at the right threshold, NaN and signs survive, tiny values
// flush to signed zero, and rounding error stays within half an ulp.
func FuzzF16RoundTrip(f *testing.F) {
	seeds := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 3.140625,
		float32(math.NaN()), float32(-math.Sqrt(-1)),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		65504, -65504, 65505, 65519.996, 65520, -65520, 1e6, 3.4e38,
		6.1035156e-05, // 2^-14, smallest f16 normal
		5.9604645e-08, // 2^-24, smallest f16 subnormal
		2.9802322e-08, // 2^-25, the flush-to-zero tie
		2.9802326e-08, // just above the tie
		1e-8, 1.4e-45, // deep f32 subnormals
		-6.0975552e-05, // f16 subnormal range, negative
	}
	for _, s := range seeds {
		f.Add(math.Float32bits(s))
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := F16FromF32(x)
		q := F32FromF16(h)

		if x != x { // NaN in → NaN out, sign payload bit kept
			if q == q {
				t.Fatalf("NaN %#08x quantized to non-NaN %v", bits, q)
			}
			if math.Float32bits(q)&0x80000000 != bits&0x80000000 {
				t.Fatalf("NaN %#08x lost its sign: got %#08x", bits, math.Float32bits(q))
			}
			return
		}

		// Idempotence: a value that came out of f16 re-encodes to the same
		// bit pattern — the property that makes sender-side quantization
		// plus a 2-byte wire encoding lossless end to end.
		if h2 := F16FromF32(q); h2 != h {
			t.Fatalf("quantize(%v)=%v (h=%#04x) is not a fixed point: re-encodes to %#04x", x, q, h, h2)
		}
		if q2 := F32FromF16(F16FromF32(q)); math.Float32bits(q2) != math.Float32bits(q) {
			t.Fatalf("double quantization of %v drifted: %v -> %v", x, q, q2)
		}
		// QuantizeF16 must agree with the scalar pair element-wise.
		if s := QuantizeF16([]float32{x})[0]; math.Float32bits(s) != math.Float32bits(q) {
			t.Fatalf("QuantizeF16(%v)=%v disagrees with scalar round trip %v", x, s, q)
		}
		// Signs survive every finite and infinite case (including ±0).
		if math.Signbit(float64(q)) != math.Signbit(float64(x)) {
			t.Fatalf("quantize(%v) flipped sign: %v", x, q)
		}

		ax := math.Abs(float64(x))
		aq := math.Abs(float64(q))
		switch {
		case math.IsInf(float64(x), 0) || ax >= 65520:
			// Above the midpoint between 65504 (f16 max) and the would-be
			// 65536, round-to-nearest-even overflows to infinity.
			if !math.IsInf(float64(q), 0) {
				t.Fatalf("quantize(%v) = %v, want ±Inf", x, q)
			}
		case ax <= 0x1p-25:
			// At or below half the smallest subnormal, everything flushes
			// to (signed) zero.
			if q != 0 {
				t.Fatalf("quantize(%v) = %v, want ±0", x, q)
			}
		case ax < 0x1p-14:
			// f16 subnormal range: absolute error at most half an ulp
			// (2^-25), and never rounds to zero past the tie above.
			if math.Abs(float64(q)-float64(x)) > 0x1p-25 {
				t.Fatalf("subnormal quantize(%v) = %v, error %g exceeds 2^-25", x, q, math.Abs(float64(q)-float64(x)))
			}
		default:
			// Normal range: finite, at most f16 max, relative error within
			// half an ulp (2^-11).
			if math.IsInf(float64(q), 0) || aq > 65504 {
				t.Fatalf("quantize(%v) = %v escaped the finite f16 range", x, q)
			}
			if math.Abs(float64(q)-float64(x)) > ax*0x1p-11 {
				t.Fatalf("normal quantize(%v) = %v, relative error %g exceeds 2^-11",
					x, q, math.Abs(float64(q)-float64(x))/ax)
			}
		}
	})
}
