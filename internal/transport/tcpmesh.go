package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// meshMagic opens every mesh connection: "BGM" + protocol version.
const meshMagic uint32 = 'B'<<24 | 'G'<<16 | 'M'<<8 | 1

// meshDialTimeout bounds how long mesh construction waits for peers: the
// processes of one run start in arbitrary order, so dials retry and accepts
// wait until every pairwise connection is up.
const meshDialTimeout = 30 * time.Second

// TCPMesh is one trainer process's port on the trainer-to-trainer fabric
// over real sockets: a full mesh of pairwise TCP connections (rank i dials
// every j < i and accepts from every j > i, with a rank-exchange
// handshake). Payloads cross the wire through the codec; per-peer writer
// goroutines coalesce queued sends into single buffered flushes, and
// per-peer readers feed the local inbox — so, like every Mesh, Send never
// blocks on the receiver and Recv is a plain blocking queue.
//
// Unlike InprocMesh/SimMesh, a TCPMesh value holds only the local
// endpoint: Endpoint(r) for a remote rank panics, because that endpoint
// lives in another process (NewLoopbackTCPMesh builds the all-ranks facade
// for single-process use). Endpoint Close follows the shared contract — it
// closes the local inbox (late arrivals count as dropped) but leaves the
// connections up, since peers may still be draining; Shutdown tears the
// sockets down.
type TCPMesh struct {
	rank int
	n    int
	box  *inbox

	peers []*tcpPeer // indexed by rank; nil at self

	sendWG pendingCount   // outbound frames queued but not yet flushed
	ioWG   sync.WaitGroup // per-peer reader/writer goroutines
	done   chan struct{}
	stop   sync.Once

	msgs, bytes, dropped atomic.Int64
	// Socket-frame counters (exclude self-sends); the loopback facade uses
	// them to tell when the fabric is globally quiet.
	sentFrames, recvFrames atomic.Int64
}

type tcpPeer struct {
	rank     int
	conn     net.Conn
	out      chan []byte
	broken   atomic.Bool
	departed atomic.Bool // peer announced a clean shutdown (goodbye frame)
}

// goodbyeByte is a 1-byte mesh frame a departing process sends each peer
// before closing its sockets, so survivors can tell clean teardown (a
// worker finished and shut its mesh down) from a crashed peer — the
// latter dies loudly instead of wedging the surviving trainers.
const goodbyeByte = 0xFF

// NewTCPMesh connects rank's endpoint of an n-trainer mesh, where addrs[i]
// is rank i's listen address. It binds addrs[rank] (or serves on lis when
// non-nil, which must already be bound to addrs[rank]), connects to every
// peer, and returns once the mesh is fully meshed.
func NewTCPMesh(rank int, addrs []string, lis net.Listener) (*TCPMesh, error) {
	n := len(addrs)
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: mesh rank %d out of [0,%d)", rank, n)
	}
	if lis == nil {
		var err error
		lis, err = net.Listen("tcp", addrs[rank])
		if err != nil {
			return nil, fmt.Errorf("transport: mesh listen %s: %w", addrs[rank], err)
		}
	}
	m := &TCPMesh{
		rank:  rank,
		n:     n,
		box:   newInbox(),
		peers: make([]*tcpPeer, n),
		done:  make(chan struct{}),
	}

	if tl, ok := lis.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(meshDialTimeout))
	}
	type dialed struct {
		rank int
		conn net.Conn
		err  error
	}
	results := make(chan dialed, n)
	// Accept connections from every higher rank. A connection that fails
	// the handshake (a port scanner, health probe, or aborted dial) is
	// dropped and the accept retried — only a listener error (close or
	// deadline) gives up, and then one error result per still-expected
	// accept keeps the collector's result count exact.
	go func() {
		for got := 0; got < n-1-rank; {
			conn, err := lis.Accept()
			if err != nil {
				err = fmt.Errorf("transport: mesh accept: %w", err)
				for ; got < n-1-rank; got++ {
					results <- dialed{rank: -1, err: err}
				}
				return
			}
			from, err := meshAccept(conn, rank)
			if err != nil {
				conn.Close()
				continue
			}
			results <- dialed{rank: from, conn: conn}
			got++
		}
	}()
	// Dial every lower rank.
	for j := 0; j < rank; j++ {
		go func(j int) {
			conn, err := meshDial(addrs[j], rank)
			results <- dialed{rank: j, conn: conn, err: err}
		}(j)
	}

	var firstErr error
	for i := 0; i < n-1; i++ {
		d := <-results
		if d.err == nil && (d.rank < 0 || d.rank >= n || d.rank == rank || m.peers[d.rank] != nil) {
			d.err = fmt.Errorf("transport: mesh handshake: unexpected peer rank %d", d.rank)
		}
		if d.err != nil {
			if d.conn != nil {
				d.conn.Close()
			}
			if firstErr == nil {
				firstErr = d.err
				lis.Close() // unblock the acceptor; its error lands in results
			}
			continue
		}
		m.peers[d.rank] = &tcpPeer{rank: d.rank, conn: d.conn, out: make(chan []byte, 256)}
	}
	// Fully meshed (or failed): no further accepts will ever arrive.
	lis.Close()
	if firstErr != nil {
		for _, p := range m.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		return nil, firstErr
	}

	for _, p := range m.peers {
		if p == nil {
			continue
		}
		m.ioWG.Add(2)
		go m.writeLoop(p)
		go m.readLoop(p)
	}
	return m, nil
}

// DialTCPMesh is NewTCPMesh binding its own listener on addrs[rank].
func DialTCPMesh(rank int, addrs []string) (*TCPMesh, error) {
	return NewTCPMesh(rank, addrs, nil)
}

// meshDial connects to a lower-ranked peer and exchanges ranks.
func meshDial(addr string, selfRank int) (net.Conn, error) {
	conn, err := dialRetry(addr, meshDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: mesh dial %s: %w", addr, err)
	}
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], meshMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(selfRank))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: mesh handshake write: %w", err)
	}
	var ack [8]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: mesh handshake read: %w", err)
	}
	if m := binary.LittleEndian.Uint32(ack[:4]); m != meshMagic {
		conn.Close()
		return nil, fmt.Errorf("transport: mesh handshake: magic %#x from %s", m, addr)
	}
	return conn, nil
}

// meshAccept completes the acceptor side of the rank exchange and returns
// the dialer's rank.
func meshAccept(conn net.Conn, selfRank int) (int, error) {
	conn.SetDeadline(time.Now().Add(meshDialTimeout))
	defer conn.SetDeadline(time.Time{})
	var hello [8]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("transport: mesh handshake read: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hello[:4]); m != meshMagic {
		return 0, fmt.Errorf("transport: mesh handshake: magic %#x", m)
	}
	var ack [8]byte
	binary.LittleEndian.PutUint32(ack[:4], meshMagic)
	binary.LittleEndian.PutUint32(ack[4:], uint32(selfRank))
	if _, err := conn.Write(ack[:]); err != nil {
		return 0, fmt.Errorf("transport: mesh handshake write: %w", err)
	}
	return int(binary.LittleEndian.Uint32(hello[4:])), nil
}

// writeLoop drains one peer's outbound queue, coalescing bursts into single
// flushes. Frames are acknowledged to Quiesce (sendWG) only after they are
// flushed to the socket.
func (m *TCPMesh) writeLoop(p *tcpPeer) {
	defer m.ioWG.Done()
	bw := bufio.NewWriterSize(p.conn, 1<<16)
	unflushed := 0
	settle := func(delivered bool) {
		if delivered {
			m.sentFrames.Add(int64(unflushed))
		} else {
			m.dropped.Add(int64(unflushed))
		}
		for ; unflushed > 0; unflushed-- {
			m.sendWG.add(-1)
		}
	}
	// drain settles whatever is still queued at exit so sendWG never leaks
	// frames that will not be written (Quiesce would otherwise hang).
	drain := func() {
		for {
			select {
			case <-p.out:
				m.dropped.Add(1)
				m.sendWG.add(-1)
			default:
				return
			}
		}
	}
	// fail drains the queue forever so senders never block on a dead peer.
	fail := func() {
		p.broken.Store(true)
		settle(false)
		for {
			select {
			case <-p.out:
				m.dropped.Add(1)
				m.sendWG.add(-1)
			case <-m.done:
				drain()
				return
			}
		}
	}
	for {
		var frame []byte
		select {
		case frame = <-p.out:
		case <-m.done:
			settle(true)
			drain()
			return
		}
		unflushed++
		if err := writeFrame(bw, frame); err != nil {
			fail()
			return
		}
		for more := true; more; {
			select {
			case frame = <-p.out:
				unflushed++
				if err := writeFrame(bw, frame); err != nil {
					fail()
					return
				}
			case <-m.done:
				settle(bw.Flush() == nil)
				drain()
				return
			default:
				more = false
			}
		}
		if err := bw.Flush(); err != nil {
			fail()
			return
		}
		settle(true)
	}
}

// readLoop decodes one peer's inbound frames into the local inbox. A frame
// arriving after the local endpoint closed counts as dropped, matching the
// simulated mesh's close-while-sending semantics. Losing a peer that
// neither said goodbye nor belongs to our own shutdown is a crashed
// process: the survivor panics rather than letting the engine wait forever
// on plans/collectives that will never arrive (the same die-loudly
// contract as TCPLink).
func (m *TCPMesh) readLoop(p *tcpPeer) {
	defer m.ioWG.Done()
	br := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		body, err := readFrame(br)
		if err != nil {
			select {
			case <-m.done:
				return // our own shutdown closed the sockets
			default:
			}
			if p.departed.Load() {
				return // peer shut down cleanly
			}
			panic(fmt.Sprintf("transport: mesh peer %d disconnected unexpectedly: %v", p.rank, err))
		}
		m.recvFrames.Add(1)
		if len(body) == 1 && body[0] == goodbyeByte {
			p.departed.Store(true)
			continue
		}
		if len(body) < 8 {
			panic(fmt.Sprintf("transport: mesh frame from rank %d too short (%d bytes)", p.rank, len(body)))
		}
		declared := int64(binary.LittleEndian.Uint64(body[:8]))
		payload, err := DecodePayload(body[8:])
		if err != nil {
			panic(fmt.Sprintf("transport: mesh frame from rank %d: %v", p.rank, err))
		}
		if !m.box.put(MeshMsg{From: p.rank, To: m.rank, Bytes: declared, Payload: payload}) {
			m.dropped.Add(1)
		}
	}
}

// Name implements Mesh.
func (m *TCPMesh) Name() string { return "tcp-mesh" }

// Size implements Mesh.
func (m *TCPMesh) Size() int { return m.n }

// Rank returns the local rank this mesh value serves.
func (m *TCPMesh) Rank() int { return m.rank }

// Quiesce implements Mesh: it blocks until every accepted send has been
// flushed to its socket (or dropped against a broken peer). Delivery into
// the remote inbox cannot be observed from this process; the loopback
// facade, which holds both sides, waits for that too.
func (m *TCPMesh) Quiesce() { m.sendWG.wait() }

// Stats implements Mesh. Counters are this process's view: messages and
// declared bytes accepted for send, plus local drops (failed peers and
// frames arriving after the local endpoint closed).
func (m *TCPMesh) Stats() MeshStats {
	return MeshStats{Msgs: m.msgs.Load(), Bytes: m.bytes.Load(), Dropped: m.dropped.Load()}
}

// Endpoint implements Mesh. Only the local rank's endpoint exists in this
// process.
func (m *TCPMesh) Endpoint(rank int) Endpoint {
	if rank != m.rank {
		panic(fmt.Sprintf("transport: endpoint %d lives in another process (local rank %d)", rank, m.rank))
	}
	return &tcpEndpoint{mesh: m}
}

// Shutdown announces a clean departure to every live peer (goodbye
// frame), waits for outbound traffic to flush, then closes the
// connections and stops the I/O goroutines. Quiesce first if outbound
// traffic must land before you stop sending.
func (m *TCPMesh) Shutdown() {
	m.stop.Do(func() {
		for _, p := range m.peers {
			if p == nil || p.broken.Load() {
				continue
			}
			// Enqueue blocking: the writer is alive and draining until
			// close(m.done) below, so this cannot deadlock — and a dropped
			// goodbye would make survivors mistake us for a crashed peer.
			m.sendWG.add(1)
			p.out <- []byte{goodbyeByte}
		}
		m.sendWG.wait()
		close(m.done)
		for _, p := range m.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	m.ioWG.Wait()
	m.box.close()
}

type tcpEndpoint struct {
	mesh *TCPMesh
}

func (e *tcpEndpoint) Rank() int { return e.mesh.rank }

func (e *tcpEndpoint) Send(to int, bytes int64, payload any) bool {
	m := e.mesh
	if to < 0 || to >= m.n {
		panic(fmt.Sprintf("transport: send to %d out of [0,%d)", to, m.n))
	}
	if to == m.rank {
		if !m.box.put(MeshMsg{From: m.rank, To: to, Bytes: bytes, Payload: payload}) {
			m.dropped.Add(1)
			return false
		}
		m.msgs.Add(1)
		m.bytes.Add(bytes)
		return true
	}
	p := m.peers[to]
	if p.broken.Load() {
		m.dropped.Add(1)
		return false
	}
	// The declared byte count is a good capacity hint; encode straight
	// into the frame after the header rather than copying a second buffer.
	hint := bytes + 16
	if hint < 64 || hint > maxFrame {
		hint = 64
	}
	frame := make([]byte, 0, hint)
	frame = putU64(frame, uint64(bytes))
	frame = appendPayload(frame, payload)
	m.sendWG.add(1)
	select {
	case p.out <- frame:
	case <-m.done:
		m.sendWG.add(-1)
		m.dropped.Add(1)
		return false
	}
	m.msgs.Add(1)
	m.bytes.Add(bytes)
	return true
}

func (e *tcpEndpoint) Recv() (MeshMsg, bool) { return e.mesh.box.get() }
func (e *tcpEndpoint) Close()                { e.mesh.box.close() }

// LoopbackTCPMesh is the all-ranks facade over n TCPMesh instances wired
// together on 127.0.0.1 ephemeral ports: a Mesh whose every endpoint works,
// for single-process tests and benchmarks that should exercise real
// sockets, the codec, and the framing without forking worker processes.
type LoopbackTCPMesh struct {
	meshes []*TCPMesh
}

// NewLoopbackTCPMesh builds an n-rank TCP mesh entirely within this
// process.
func NewLoopbackTCPMesh(n int) (*LoopbackTCPMesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: mesh size %d", n)
	}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	m := &LoopbackTCPMesh{meshes: make([]*TCPMesh, n)}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			mesh, err := NewTCPMesh(i, addrs, listeners[i])
			m.meshes[i] = mesh
			errs <- err
		}(i)
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		m.Shutdown()
		return nil, firstErr
	}
	return m, nil
}

// Name implements Mesh.
func (m *LoopbackTCPMesh) Name() string { return "tcp-mesh" }

// Size implements Mesh.
func (m *LoopbackTCPMesh) Size() int { return len(m.meshes) }

// Endpoint implements Mesh.
func (m *LoopbackTCPMesh) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= len(m.meshes) {
		panic(fmt.Sprintf("transport: endpoint %d out of [0,%d)", rank, len(m.meshes)))
	}
	return m.meshes[rank].Endpoint(rank)
}

// Stats implements Mesh, summing every rank's local view.
func (m *LoopbackTCPMesh) Stats() MeshStats {
	var st MeshStats
	for _, mm := range m.meshes {
		s := mm.Stats()
		st.Msgs += s.Msgs
		st.Bytes += s.Bytes
		st.Dropped += s.Dropped
	}
	return st
}

// Quiesce implements Mesh: because the facade holds both sides of every
// connection, it can wait for true global quiescence — all outbound frames
// flushed and every flushed frame read (delivered or dropped) on the
// receiving side.
func (m *LoopbackTCPMesh) Quiesce() {
	for _, mm := range m.meshes {
		mm.Quiesce()
	}
	// Flushed loopback frames are readable within microseconds; failed
	// flushes are accounted as drops, never as sent. A fabric that stays
	// unbalanced for this long is a protocol bug, and a loud failure beats
	// callers silently asserting over a half-quiesced mesh.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var sent, recv int64
		for _, mm := range m.meshes {
			sent += mm.sentFrames.Load()
			recv += mm.recvFrames.Load()
		}
		if recv >= sent {
			return
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("transport: loopback mesh failed to quiesce: %d frames flushed, %d read", sent, recv))
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Shutdown tears down every rank's sockets.
func (m *LoopbackTCPMesh) Shutdown() {
	var wg sync.WaitGroup
	for _, mm := range m.meshes {
		if mm == nil {
			continue
		}
		wg.Add(1)
		go func(mm *TCPMesh) {
			defer wg.Done()
			mm.Shutdown()
		}(mm)
	}
	wg.Wait()
}
