package transport

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/embed"
)

// The Store conformance suite: the tier client is a carrier, never a
// semantic layer. Whatever the fabric (inproc, sim, tcp) and whatever the
// tier width S, the same request stream must return the same rows in the
// same order and leave the same logical state — so an S-server ShardedStore
// is certified against a plain one-server reference, exactly the way the
// engines' differential tests certify fabrics against the baseline.

// storeCase builds one S-server tier and a Store onto it. cleanup tears
// down any real resources (sockets, server loops) behind it.
type storeCase struct {
	name  string
	build func(t *testing.T, S int) (store Store, tier []*embed.Server, cleanup func())
}

// testTier builds S identically-seeded servers (deterministic splitting).
func testTier(S int) []*embed.Server {
	tier := make([]*embed.Server, S)
	for i := range tier {
		tier[i] = embed.NewServer(3, 4, 11, 0.1)
	}
	return tier
}

// storeOverTier wraps each server of tier in child and assembles the store.
func storeOverTier(tier []*embed.Server, child func(*embed.Server) Store) Store {
	children := make([]Store, len(tier))
	for i, srv := range tier {
		children[i] = child(srv)
	}
	if len(children) == 1 {
		return children[0]
	}
	return NewShardedStore(children)
}

func storeCases() []storeCase {
	return []storeCase{
		{"inproc", func(t *testing.T, S int) (Store, []*embed.Server, func()) {
			tier := testTier(S)
			return storeOverTier(tier, func(s *embed.Server) Store { return NewInProcess(s) }), tier, func() {}
		}},
		{"sim", func(t *testing.T, S int) (Store, []*embed.Server, func()) {
			tier := testTier(S)
			return storeOverTier(tier, func(s *embed.Server) Store {
				return NewSimNet(s, 200*time.Microsecond, 0)
			}), tier, func() {}
		}},
		{"tcp", func(t *testing.T, S int) (Store, []*embed.Server, func()) {
			tier := testTier(S)
			children := make([]Store, S)
			links := make([]*TCPLink, S)
			joins := make([]func(), S)
			for i, srv := range tier {
				addr, join := startEmbedServer(t, srv)
				joins[i] = join
				link, err := DialTCPLink(addr, 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				links[i] = link
				children[i] = link
			}
			var store Store = children[0]
			if S > 1 {
				store = NewShardedStore(children)
			}
			return store, tier, func() {
				store.Shutdown()
				for _, l := range links {
					l.Close()
				}
				for _, join := range joins {
					join()
				}
			}
		}},
	}
}

// TestStatsAdd pins the field-wise accumulator every aggregation path uses.
func TestStatsAdd(t *testing.T) {
	a := Stats{Fetches: 1, Writes: 2, RowsFetched: 3, RowsWritten: 4,
		BytesFetched: 5, BytesWritten: 6, SimulatedDelay: 7 * time.Millisecond}
	b := Stats{Fetches: 10, Writes: 20, RowsFetched: 30, RowsWritten: 40,
		BytesFetched: 50, BytesWritten: 60, SimulatedDelay: 70 * time.Millisecond}
	a.Add(b)
	want := Stats{Fetches: 11, Writes: 22, RowsFetched: 33, RowsWritten: 44,
		BytesFetched: 55, BytesWritten: 66, SimulatedDelay: 77 * time.Millisecond}
	if a != want {
		t.Fatalf("Add: got %+v, want %+v", a, want)
	}
}

// TestStoreConformance runs the full tier contract over every fabric × tier
// width: fetched rows arrive in request order with reference values, writes
// land on the owning server only, and the tier operations (fingerprint,
// checkpoint, per-server stats) certify the merged state against the S=1
// reference.
func TestStoreConformance(t *testing.T) {
	// ids span all owners of every S in the sweep, interleaved so no
	// sub-batch is contiguous in the request.
	ids := []uint64{7, 0, 13, 2, 9, 4, 1, 18, 3, 6, 11, 5}
	for _, tc := range storeCases() {
		for _, S := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s_S%d", tc.name, S), func(t *testing.T) {
				store, tier, cleanup := tc.build(t, S)
				defer cleanup()

				ref := embed.NewServer(3, 4, 11, 0.1)
				refStore := NewInProcess(ref)

				rows := store.Fetch(ids)
				refRows := refStore.Fetch(ids)
				if len(rows) != len(ids) {
					t.Fatalf("fetch returned %d rows for %d ids", len(rows), len(ids))
				}
				for i := range rows {
					for j := range rows[i] {
						if rows[i][j] != refRows[i][j] {
							t.Fatalf("row %d (id %d) differs from reference at col %d", i, ids[i], j)
						}
					}
					rows[i][0] = float32(i) + 100
					refRows[i][0] = float32(i) + 100
				}
				store.Write(ids, rows)
				refStore.Write(ids, refRows)

				// Tier state merges back to the reference, both live and
				// through the checkpoint protocol.
				merged, err := embed.MergeTier(tier)
				if err != nil {
					t.Fatalf("merge tier: %v", err)
				}
				if d := embed.Diff(ref, merged); len(d) != 0 {
					t.Fatalf("tier state diverged from reference at ids %v", d)
				}
				restored, err := embed.RestoreTier(bytes.NewReader(store.Checkpoint()), S, ref.NumShards())
				if err != nil {
					t.Fatalf("restore tier checkpoint: %v", err)
				}
				if d := embed.Diff(ref, restored); len(d) != 0 {
					t.Fatalf("restored tier checkpoint diverged at ids %v", d)
				}
				if fp, want := store.Fingerprint(), ref.Fingerprint(); fp != want {
					t.Fatalf("tier fingerprint %x != reference %x", fp, want)
				}

				// Rows must land only on their owning server.
				for s, srv := range tier {
					for _, id := range srv.MaterializedIDs() {
						if core.OwnerOf(id, S) != s {
							t.Fatalf("server %d materialized id %d owned by server %d", s, id, core.OwnerOf(id, S))
						}
					}
				}

				// Aggregate row accounting is fabric- and width-independent;
				// per-server snapshots cover the tier and sum to the total.
				st := store.Stats()
				if st.RowsFetched != int64(len(ids)) || st.RowsWritten != int64(len(ids)) {
					t.Fatalf("row accounting: %+v", st)
				}
				perServer := store.ServerStats()
				if len(perServer) != S {
					t.Fatalf("ServerStats has %d entries for %d servers", len(perServer), S)
				}
				var sum Stats
				for s, ss := range perServer {
					if S > 1 && ss.Fetches == 0 {
						t.Fatalf("server %d saw no fetches; the scatter never reached it", s)
					}
					sum.Add(ss)
				}
				if sum != st {
					t.Fatalf("per-server stats sum %+v != aggregate %+v", sum, st)
				}
			})
		}
	}
}

// laggyStore delays every data-path call by a fixed amount — a slow server
// in an otherwise fast tier.
type laggyStore struct {
	Store
	delay time.Duration
}

func (l *laggyStore) Fetch(ids []uint64) [][]float32 {
	time.Sleep(l.delay)
	return l.Store.Fetch(ids)
}

func (l *laggyStore) Write(ids []uint64, rows [][]float32) {
	time.Sleep(l.delay)
	l.Store.Write(ids, rows)
}

// TestShardedStoreGatherOrder pins the gather half of the contract under
// deliberately reordered shard replies: server 0 answers last by a wide
// margin, so sub-batch completions arrive in reverse shard order — the
// assembled rows must still be in request order with per-id values.
func TestShardedStoreGatherOrder(t *testing.T) {
	const S = 4
	tier := testTier(S)
	children := make([]Store, S)
	for i, srv := range tier {
		// Server 0 is slowest, server S-1 fastest: completions reverse.
		children[i] = &laggyStore{Store: NewInProcess(srv), delay: time.Duration(S-i) * 10 * time.Millisecond}
	}
	store := NewShardedStore(children)

	// Stamp every row with its id so misplacement is detectable.
	var ids []uint64
	for id := uint64(0); id < 32; id++ {
		ids = append(ids, id)
	}
	rows := store.Fetch(ids)
	for i, id := range ids {
		rows[i][0] = float32(id) + 0.5
	}
	store.Write(ids, rows)

	// Re-fetch in a scrambled order; each row must carry its own stamp.
	scrambled := []uint64{31, 2, 17, 0, 25, 6, 3, 12, 9, 30, 1, 23, 4, 19}
	got := store.Fetch(scrambled)
	for i, id := range scrambled {
		if got[i][0] != float32(id)+0.5 {
			t.Fatalf("position %d (id %d) carries stamp %v — shard replies were gathered out of order",
				i, id, got[i][0])
		}
	}
}

// TestShardedStoreValidation: construction rejects width mismatches and
// empty tiers.
func TestShardedStoreValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty tier", func() { NewShardedStore(nil) })
	a := NewInProcess(embed.NewServer(1, 4, 1, 0.1))
	b := NewInProcess(embed.NewServer(1, 8, 1, 0.1))
	mustPanic("dim mismatch", func() { NewShardedStore([]Store{a, b}) })
	mustPanic("write length mismatch", func() {
		NewShardedStore([]Store{a}).Write([]uint64{1}, nil)
	})
}

// TestShardedStoreOverServeEmbed is the fully remote tier in one test: S
// server loops over real listeners, the sharded store over S TCPLinks, and
// a shutdown that stops every server process loop.
func TestShardedStoreOverServeEmbed(t *testing.T) {
	const S = 2
	tier := testTier(S)
	children := make([]Store, S)
	links := make([]*TCPLink, S)
	serveDone := make([]chan error, S)
	for i, srv := range tier {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		serveDone[i] = done
		go func(srv *embed.Server) { done <- ServeEmbed(lis, srv) }(srv)
		if links[i], err = DialTCPLink(lis.Addr().String(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
		children[i] = links[i]
	}
	store := NewShardedStore(children)
	rows := store.Fetch([]uint64{0, 1, 2, 3})
	rows[0][0] = 42
	store.Write([]uint64{0}, rows[:1])
	if got := tier[0].Get(0); got[0] != 42 {
		t.Fatalf("write did not land on owning server: %v", got)
	}
	store.Shutdown()
	for _, l := range links {
		l.Close()
	}
	for i, done := range serveDone {
		if err := <-done; err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
}

// panicStore is a shard whose data path is down; inst selects whether the
// tier sees it as an in-process (serial scatter) or remote (goroutine
// fan-out) child, so both forEachServer paths get exercised.
type panicStore struct {
	Store
	inst bool
}

func (p *panicStore) Fetch(ids []uint64) [][]float32 { panic("transport test: shard down") }

func (p *panicStore) instant() bool { return p.inst }

// TestShardedStoreScratchReturnedOnChildPanic: a shard RPC failing
// mid-gather must propagate to the caller AND return every pooled buffer
// the fetch took out — the scatter scratch, the result header, and the
// arena rows the healthy shards already gathered into it. A panicking
// Fetch that leaked any of them would starve the pools across failover
// exercises. Exercised on both the serial (instant children) and
// concurrent (remote children) scatter paths; the concurrent leg also pins
// the ShardPanic wrapper that keeps the originating server index and its
// goroutine stack attached to the re-raised panic.
func TestShardedStoreScratchReturnedOnChildPanic(t *testing.T) {
	for _, inst := range []bool{true, false} {
		tier := testTier(2)
		children := []Store{
			NewInProcess(tier[0]),
			&panicStore{Store: NewInProcess(tier[1]), inst: inst},
		}
		st := NewShardedStore(children)
		if st.instant() != inst {
			t.Fatalf("inst=%v: tier instant()=%v", inst, st.instant())
		}

		// Warm the pools with a fetch that avoids the dead shard (even ids
		// hash to shard 0), then return everything — so the panicking fetch
		// below is served entirely from the free lists and the leak check
		// can demand exact count preservation.
		warm := st.Fetch([]uint64{0, 2})
		Rows(st.Dim()).PutN(warm)
		PutRowSlice(warm)
		arena := Rows(st.Dim())
		arena.mu.Lock()
		rowsFree := len(arena.free)
		arena.mu.Unlock()
		rowSlicePool.mu.Lock()
		headersFree := len(rowSlicePool.free)
		rowSlicePool.mu.Unlock()

		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("inst=%v: child panic did not propagate", inst)
				}
				if !inst {
					// The concurrent scatter must attribute the crash: shard
					// index plus the originating goroutine's stack.
					sp, ok := p.(*ShardPanic)
					if !ok {
						t.Fatalf("concurrent scatter re-panicked %T, want *ShardPanic", p)
					}
					if sp.Server != 1 {
						t.Fatalf("ShardPanic names server %d, want 1", sp.Server)
					}
					if len(sp.Stack) == 0 || !bytes.Contains(sp.Stack, []byte("goroutine")) {
						t.Fatalf("ShardPanic carries no goroutine stack: %q", sp.Stack)
					}
					if !strings.Contains(sp.Error(), "shard down") {
						t.Fatalf("ShardPanic message lost the original value: %q", sp.Error())
					}
				}
			}()
			st.Fetch([]uint64{0, 1, 2, 3}) // spans both shards
		}()

		st.scratchMu.Lock()
		n := len(st.scratch)
		st.scratchMu.Unlock()
		if n != 1 {
			t.Fatalf("inst=%v: scratch pool holds %d entries after panicking fetch, want 1", inst, n)
		}
		// Exact pool-count preservation: the result header and shard 0's
		// already-gathered rows went back in the recover path.
		arena.mu.Lock()
		rowsAfter := len(arena.free)
		arena.mu.Unlock()
		rowSlicePool.mu.Lock()
		headersAfter := len(rowSlicePool.free)
		rowSlicePool.mu.Unlock()
		if rowsAfter != rowsFree {
			t.Fatalf("inst=%v: arena free list went %d → %d across a panicking fetch", inst, rowsFree, rowsAfter)
		}
		if headersAfter != headersFree {
			t.Fatalf("inst=%v: row-slice free list went %d → %d across a panicking fetch", inst, headersFree, headersAfter)
		}

		// The tier must stay usable for requests that avoid the dead shard.
		if rows := st.Fetch([]uint64{0, 2}); len(rows) != 2 {
			t.Fatalf("inst=%v: post-panic fetch returned %d rows", inst, len(rows))
		}
	}
}

// faultTier builds an S-server replicated tier over fault-injectable
// children (the exported FaultStore wrapper, shared with the serving
// conformance suite) plus the S=1 reference it must stay equivalent to.
func faultTier(S int, opts TierOptions) (*ShardedStore, []*FaultStore, []*embed.Server, *embed.Server, Store) {
	tier := testTier(S)
	faults := make([]*FaultStore, S)
	children := make([]Store, S)
	for i, srv := range tier {
		faults[i] = NewFaultStore(NewInProcess(srv), i)
		children[i] = faults[i]
	}
	ref := embed.NewServer(3, 4, 11, 0.1)
	return NewTier(children, opts), faults, tier, ref, NewInProcess(ref)
}

// TestStoreFailoverReplicated is the replicated leg of the conformance
// suite: a server dies mid-run under R=2, the tier marks it dead and
// reroutes, and the surviving state still certifies against the S=1
// reference three independent ways — live fingerprint, tier merge, and
// checkpoint restore.
func TestStoreFailoverReplicated(t *testing.T) {
	const S, R = 3, 2
	var failedOver []int
	st, faults, tier, ref, refStore := faultTier(S, TierOptions{
		Replicate: R,
		Retries:   2,
		Backoff:   time.Millisecond,
		OnFailover: func(server int, cause error) {
			failedOver = append(failedOver, server)
			if cause == nil {
				t.Errorf("server %d condemned with nil cause", server)
			}
		},
	})
	if st.Replicate() != R {
		t.Fatalf("Replicate() = %d, want %d", st.Replicate(), R)
	}

	// step fetches ids from both stores, cross-checks, mutates, and writes
	// back — every fetched row is written, the engines' write-back
	// invariant that makes replica state complete for its partitions.
	stamp := float32(0)
	step := func(ids []uint64) {
		t.Helper()
		stamp++
		rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
		for i := range rows {
			for j := range rows[i] {
				if rows[i][j] != refRows[i][j] {
					t.Fatalf("id %d col %d: tier %v != reference %v", ids[i], j, rows[i][j], refRows[i][j])
				}
			}
			rows[i][0], refRows[i][0] = stamp, stamp
		}
		st.Write(ids, rows)
		refStore.Write(ids, refRows)
	}

	step([]uint64{0, 1, 2, 3, 4, 5, 10, 13})
	step([]uint64{1, 4, 7, 16})
	faults[1].SetDown(true)              // chaos: server 1 dies mid-run
	step([]uint64{0, 1, 2, 6, 7, 9, 13}) // partition-1 ids now served by server 2
	step([]uint64{4, 10, 19, 22})

	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}
	if len(failedOver) != 1 || failedOver[0] != 1 {
		t.Fatalf("OnFailover fired for %v, want exactly [1]", failedOver)
	}
	h := st.TierHealth()
	if h.Servers != S || h.Replicate != R {
		t.Fatalf("TierHealth shape: %+v", h)
	}
	if h.Failovers == 0 {
		t.Fatal("no failovers counted despite post-kill partition-1 reads")
	}
	if h.Retries == 0 {
		t.Fatal("no retries counted despite a failing server RPC")
	}

	// Certification 1: the live wire fingerprint, served for partition 1 by
	// its surviving replica.
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("surviving tier fingerprint %x != reference %x", fp, want)
	}
	// Certification 2: merging the surviving servers' in-memory state.
	deadSet := make([]bool, S)
	deadSet[1] = true
	merged, err := embed.MergeTierReplicated(tier, R, deadSet)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, merged); len(d) != 0 {
		t.Fatalf("surviving merge differs from reference at %v", d)
	}
	// Certification 3: the checkpoint protocol, which must exclude the dead
	// server's bytes.
	restored, err := embed.RestoreTierReplicated(bytes.NewReader(st.Checkpoint()), S, ref.NumShards(), R, deadSet)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, restored); len(d) != 0 {
		t.Fatalf("restored surviving checkpoint differs at %v", d)
	}
}

// TestStoreFailoverUnreplicatedFailsLoudly: with R=1 a dead server is
// unrecoverable; the tier must raise an attributed TierError — partition,
// server, replication factor, cause — through OnLost and the panic, on both
// scatter paths, and keep serving the partitions it still has.
func TestStoreFailoverUnreplicatedFailsLoudly(t *testing.T) {
	for _, inst := range []bool{true, false} {
		var lost []*TierError
		st, faults, _, _, _ := faultTier(2, TierOptions{
			Replicate: 1,
			Retries:   2,
			Backoff:   time.Millisecond,
			OnLost:    func(e *TierError) { lost = append(lost, e) },
		})
		// The children are in-process either way; force the scatter path
		// directly so both the serial and the goroutine fan-out legs raise
		// the same attributed error.
		st.instantChildren = inst

		if rows := st.Fetch([]uint64{0, 1, 2, 3}); len(rows) != 4 {
			t.Fatalf("healthy fetch returned %d rows", len(rows))
		}
		faults[1].SetDown(true)

		func() {
			defer func() {
				e, ok := AsTierError(recover())
				if !ok {
					t.Fatalf("inst=%v: no TierError in panic", inst)
				}
				if e.Op != "fetch" || e.Partition != 1 || e.Server != 1 || e.Replicate != 1 {
					t.Fatalf("inst=%v: misattributed TierError: %+v", inst, e)
				}
				if e.Cause == nil || !strings.Contains(e.Error(), "server 1 down") {
					t.Fatalf("inst=%v: TierError lost its cause: %v", inst, e)
				}
			}()
			st.Fetch([]uint64{0, 1, 2, 3})
			t.Fatalf("inst=%v: fetch through a dead unreplicated server returned", inst)
		}()
		if len(lost) != 1 {
			t.Fatalf("inst=%v: OnLost fired %d times, want 1", inst, len(lost))
		}

		// Writes to the lost partition are just as loud.
		func() {
			defer func() {
				e, ok := AsTierError(recover())
				if !ok || e.Op != "write" || e.Partition != 1 {
					t.Fatalf("inst=%v: write loss misattributed: %+v", inst, e)
				}
			}()
			rows := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}
			st.Write([]uint64{0, 1}, rows)
			t.Fatalf("inst=%v: write through a dead unreplicated server returned", inst)
		}()

		// The healthy partition keeps working after the loss.
		if rows := st.Fetch([]uint64{0, 2, 4}); len(rows) != 3 {
			t.Fatalf("inst=%v: healthy-partition fetch returned %d rows", inst, len(rows))
		}
	}
}
