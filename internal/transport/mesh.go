package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MeshMsg is one trainer-to-trainer message: a replica push or a batched
// delayed-sync flush in the LRPP engine. Bytes is the payload's wire size,
// declared by the sender and charged against the link by simulated meshes.
type MeshMsg struct {
	From, To int
	Bytes    int64
	Payload  any
}

// MeshStats accounts the traffic a mesh has carried.
type MeshStats struct {
	Msgs  int64
	Bytes int64
	// Dropped counts messages discarded because the destination endpoint
	// was closed before delivery.
	Dropped int64
	// SimulatedDelay is the summed per-message latency + serialization
	// delay a simulated mesh injected (zero for in-process meshes).
	SimulatedDelay time.Duration
}

// Endpoint is one trainer's port on the mesh.
type Endpoint interface {
	// Rank returns this endpoint's index.
	Rank() int
	// Send queues payload for delivery to trainer `to`. It reports whether
	// the message was accepted; sends to a closed endpoint are dropped.
	// Send never blocks on the receiver.
	Send(to int, bytes int64, payload any) bool
	// Recv blocks for the next message. ok=false once the endpoint has
	// been closed and its queue drained. Messages may arrive in a
	// different order than they were sent — receivers must key, not
	// sequence, their protocol state.
	Recv() (MeshMsg, bool)
	// Close marks the endpoint closed: queued messages remain readable,
	// new deliveries are dropped, and blocked Recv calls wake.
	Close()
}

// Mesh is the trainer-to-trainer fabric: N endpoints, any-to-any.
type Mesh interface {
	Size() int
	Endpoint(rank int) Endpoint
	Stats() MeshStats
	Name() string
	// Quiesce blocks until no deliveries are in flight (simulated meshes
	// deliver asynchronously).
	Quiesce()
}

// pendingCount tracks in-flight deliveries for Quiesce. Unlike a
// sync.WaitGroup, add and wait may race freely: multiple trainers sharing
// one mesh object (worker tests, the loopback TCP facade) can have one
// endpoint quiescing while another still sends, which is defined behavior —
// wait returns at any instant the count is zero.
type pendingCount struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (p *pendingCount) add(d int) {
	p.mu.Lock()
	if p.cond == nil {
		p.cond = sync.NewCond(&p.mu)
	}
	p.n += d
	if p.n < 0 {
		panic("transport: negative in-flight count")
	}
	if p.n == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *pendingCount) wait() {
	p.mu.Lock()
	if p.cond == nil {
		p.cond = sync.NewCond(&p.mu)
	}
	for p.n > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// inbox is one endpoint's delivery queue, shared by both mesh types.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []MeshMsg
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(m MeshMsg) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.queue = append(b.queue, m)
	b.cond.Signal()
	return true
}

func (b *inbox) get() (MeshMsg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return MeshMsg{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m, true
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// InprocMesh delivers messages instantly between in-process endpoints: the
// zero-cost fabric the functional tests run on.
type InprocMesh struct {
	boxes   []*inbox
	msgs    atomic.Int64
	bytes   atomic.Int64
	dropped atomic.Int64
}

// NewInprocMesh returns an n-endpoint in-process mesh.
func NewInprocMesh(n int) *InprocMesh {
	if n <= 0 {
		panic(fmt.Sprintf("transport: mesh size %d", n))
	}
	m := &InprocMesh{boxes: make([]*inbox, n)}
	for i := range m.boxes {
		m.boxes[i] = newInbox()
	}
	return m
}

// Name implements Mesh.
func (m *InprocMesh) Name() string { return "inproc-mesh" }

// Size implements Mesh.
func (m *InprocMesh) Size() int { return len(m.boxes) }

// Quiesce implements Mesh; in-process delivery is synchronous.
func (m *InprocMesh) Quiesce() {}

// Stats implements Mesh.
func (m *InprocMesh) Stats() MeshStats {
	return MeshStats{Msgs: m.msgs.Load(), Bytes: m.bytes.Load(), Dropped: m.dropped.Load()}
}

// Endpoint implements Mesh.
func (m *InprocMesh) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= len(m.boxes) {
		panic(fmt.Sprintf("transport: endpoint %d out of [0,%d)", rank, len(m.boxes)))
	}
	return &inprocEndpoint{mesh: m, rank: rank}
}

type inprocEndpoint struct {
	mesh *InprocMesh
	rank int
}

func (e *inprocEndpoint) Rank() int { return e.rank }

func (e *inprocEndpoint) Send(to int, bytes int64, payload any) bool {
	m := e.mesh
	if to < 0 || to >= len(m.boxes) {
		panic(fmt.Sprintf("transport: send to %d out of [0,%d)", to, len(m.boxes)))
	}
	if !m.boxes[to].put(MeshMsg{From: e.rank, To: to, Bytes: bytes, Payload: payload}) {
		m.dropped.Add(1)
		return false
	}
	m.msgs.Add(1)
	m.bytes.Add(bytes)
	return true
}

func (e *inprocEndpoint) Recv() (MeshMsg, bool) { return e.mesh.boxes[e.rank].get() }
func (e *inprocEndpoint) Close()                { e.mesh.boxes[e.rank].close() }

// SimMesh is the mesh over simulated point-to-point links: every directed
// endpoint pair is its own link (as with per-host NICs in the paper's EC2
// topology) with a serialization bandwidth, plus a propagation latency per
// message. Messages on one link serialize — concurrent transfers share the
// link's bandwidth back-to-back — while different links proceed
// independently, so a small message between one pair can overtake a large
// in-flight transfer between another: receivers see genuine in-flight
// reordering.
type SimMesh struct {
	// Latency is the per-message propagation delay.
	Latency time.Duration
	// Bandwidth is each directed link's speed in bytes/second; 0 means
	// infinite.
	Bandwidth float64

	boxes   []*inbox
	links   []linkClock // n*n, indexed from*n+to
	pending pendingCount
	msgs    atomic.Int64
	bytes   atomic.Int64
	dropped atomic.Int64
	delayNs atomic.Int64
}

type linkClock struct {
	mu   sync.Mutex
	busy time.Time // link occupied serializing until this instant
}

// NewSimMesh returns an n-endpoint mesh of simulated links.
func NewSimMesh(n int, latency time.Duration, bandwidth float64) *SimMesh {
	if n <= 0 {
		panic(fmt.Sprintf("transport: mesh size %d", n))
	}
	if latency < 0 || bandwidth < 0 {
		panic(fmt.Sprintf("transport: negative latency %v or bandwidth %v", latency, bandwidth))
	}
	m := &SimMesh{Latency: latency, Bandwidth: bandwidth,
		boxes: make([]*inbox, n), links: make([]linkClock, n*n)}
	for i := range m.boxes {
		m.boxes[i] = newInbox()
	}
	return m
}

// Name implements Mesh.
func (m *SimMesh) Name() string { return "sim-mesh" }

// Size implements Mesh.
func (m *SimMesh) Size() int { return len(m.boxes) }

// Quiesce implements Mesh: blocks until every in-flight delivery has
// landed (or been dropped against a closed endpoint). Safe to call while
// other endpoints keep sending; it returns at an instant the fabric is
// momentarily empty.
func (m *SimMesh) Quiesce() { m.pending.wait() }

// Stats implements Mesh.
func (m *SimMesh) Stats() MeshStats {
	return MeshStats{
		Msgs: m.msgs.Load(), Bytes: m.bytes.Load(), Dropped: m.dropped.Load(),
		SimulatedDelay: time.Duration(m.delayNs.Load()),
	}
}

// Endpoint implements Mesh.
func (m *SimMesh) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= len(m.boxes) {
		panic(fmt.Sprintf("transport: endpoint %d out of [0,%d)", rank, len(m.boxes)))
	}
	return &simEndpoint{mesh: m, rank: rank}
}

type simEndpoint struct {
	mesh *SimMesh
	rank int
}

func (e *simEndpoint) Rank() int { return e.rank }

func (e *simEndpoint) Send(to int, bytes int64, payload any) bool {
	m := e.mesh
	n := len(m.boxes)
	if to < 0 || to >= n {
		panic(fmt.Sprintf("transport: send to %d out of [0,%d)", to, n))
	}
	now := time.Now()
	var ser time.Duration
	if m.Bandwidth > 0 {
		ser = time.Duration(float64(bytes) / m.Bandwidth * float64(time.Second))
	}
	link := &m.links[e.rank*n+to]
	link.mu.Lock()
	start := now
	if link.busy.After(start) {
		start = link.busy
	}
	depart := start.Add(ser)
	link.busy = depart
	link.mu.Unlock()
	arrival := depart.Add(m.Latency)

	m.msgs.Add(1)
	m.bytes.Add(bytes)
	m.delayNs.Add(int64(arrival.Sub(now)))
	msg := MeshMsg{From: e.rank, To: to, Bytes: bytes, Payload: payload}
	m.pending.add(1)
	go func() {
		defer m.pending.add(-1)
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		if !m.boxes[to].put(msg) {
			m.dropped.Add(1)
		}
	}()
	return true
}

func (e *simEndpoint) Recv() (MeshMsg, bool) { return e.mesh.boxes[e.rank].get() }
func (e *simEndpoint) Close()                { e.mesh.boxes[e.rank].close() }
