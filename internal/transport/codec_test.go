package transport

import (
	"reflect"
	"testing"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
)

// TestCodecRoundTrip pins the little-endian codec: every wire payload type
// decodes back to a deep-equal value, including map fields and the nested
// plan/decision/batch structure.
func TestCodecRoundTrip(t *testing.T) {
	plan := &core.TrainerPlan{
		Trainer:  1,
		Prefetch: []uint64{3, 9, 27},
		OwnedTTL: map[uint64]int{3: 5, 9: 4, 27: 4},
		Expiring: []uint64{9},
		Users:    map[uint64][]int{3: {0, 1}, 9: {1}},
		ReplicaOut: map[int][]uint64{
			0: {3},
			2: {3, 9},
		},
		Remote:      map[uint64]int{4: 0, 8: 2},
		ReplicaFrom: []int{0, 2},
		Dec: &core.Decision{
			Iter:       4,
			Assign:     []int{0, 1, 1, 2},
			NeededNext: map[uint64]bool{3: true},
			Batch: &data.Batch{
				Index: 4,
				Examples: []data.Example{
					{Dense: []float32{0.5, -1}, Cat: []uint64{3, 4}, Label: 1},
					{Dense: []float32{2, 3}, Cat: []uint64{9, 8}, Label: 0},
					{Dense: []float32{-0.25, 0}, Cat: []uint64{3, 8}, Label: 1},
					{Dense: []float32{1, 1}, Cat: []uint64{27, 4}, Label: 0},
				},
			},
		},
	}
	cases := []any{
		ReplicaMsg{Iter: 7, Rows: map[uint64][]float32{
			12: {1, 2.5, -3},
			99: {0, -0.125, 42},
		}},
		SyncMsg{Iter: 3, Entries: map[uint64][]Contrib{
			5:  {{Example: 2, Grad: []float32{0.1, -0.2}}, {Example: 7, Grad: []float32{1, 2}}},
			11: {{Example: 0, Grad: []float32{-5, 5}}},
		}},
		PlanMsg{Plan: plan},
		CollMsg{Seq: 41, F32: []float32{1.5, -2.25}},
		CollMsg{Seq: 42, F64: []float64{3.14159, -1e-9}},
		RawMsg("hello mesh"),
	}
	for _, in := range cases {
		enc := EncodePayload(in)
		out, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", in, err)
		}
		if pm, ok := in.(PlanMsg); ok {
			// Pointer equality can't hold; compare the pointed-to values.
			// The batch arrives sparse: full length, but only the
			// destination trainer's assigned examples populated.
			got := out.(PlanMsg)
			wantBatch := data.Batch{
				Index:    pm.Plan.Dec.Batch.Index,
				Examples: make([]data.Example, len(pm.Plan.Dec.Batch.Examples)),
			}
			for i, ex := range pm.Plan.Dec.Batch.Examples {
				if pm.Plan.Dec.Assign[i] == pm.Plan.Trainer {
					wantBatch.Examples[i] = ex
				}
			}
			if !reflect.DeepEqual(wantBatch, *got.Plan.Dec.Batch) {
				t.Fatalf("plan batch round trip:\n want %+v\n out  %+v", wantBatch, *got.Plan.Dec.Batch)
			}
			pmDec, gotDec := *pm.Plan.Dec, *got.Plan.Dec
			pmDec.Batch, gotDec.Batch = nil, nil
			if !reflect.DeepEqual(pmDec, gotDec) {
				t.Fatalf("plan decision round trip:\n in  %+v\n out %+v", pmDec, gotDec)
			}
			pmPl, gotPl := *pm.Plan, *got.Plan
			pmPl.Dec, gotPl.Dec = nil, nil
			if !reflect.DeepEqual(pmPl, gotPl) {
				t.Fatalf("plan round trip:\n in  %+v\n out %+v", pmPl, gotPl)
			}
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip:\n in  %+v (%T)\n out %+v (%T)", in, in, out, out)
		}
	}
}

// TestCodecDeterministic: map-typed fields encode in sorted key order, so
// the same payload always produces identical bytes.
func TestCodecDeterministic(t *testing.T) {
	msg := ReplicaMsg{Iter: 1, Rows: map[uint64][]float32{}}
	for id := uint64(0); id < 64; id++ {
		msg.Rows[id*7919%257] = []float32{float32(id)}
	}
	ref := EncodePayload(msg)
	for i := 0; i < 16; i++ {
		if got := EncodePayload(msg); !reflect.DeepEqual(ref, got) {
			t.Fatal("encoding of the same payload differed between calls")
		}
	}
}

// TestCodecRejectsCorrupt: truncated or trailing-garbage frames error
// instead of panicking or over-allocating.
func TestCodecRejectsCorrupt(t *testing.T) {
	enc := EncodePayload(ReplicaMsg{Iter: 1, Rows: map[uint64][]float32{5: {1, 2, 3}}})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodePayload(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(enc))
		}
	}
	if _, err := DecodePayload(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	if _, err := DecodePayload([]byte{0x7F, 1, 2}); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
	if _, err := DecodePayload(nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
}
