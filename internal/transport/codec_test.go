package transport

import (
	"math"
	"reflect"
	"testing"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
)

// TestCodecRoundTrip pins the little-endian codec: every wire payload type
// decodes back to a deep-equal value, including map fields and the nested
// plan/decision/batch structure.
func TestCodecRoundTrip(t *testing.T) {
	plan := &core.TrainerPlan{
		Trainer:  1,
		Prefetch: []uint64{3, 9, 27},
		OwnedTTL: map[uint64]int{3: 5, 9: 4, 27: 4},
		Expiring: []uint64{9},
		Users:    map[uint64][]int{3: {0, 1}, 9: {1}},
		ReplicaOut: map[int][]uint64{
			0: {3},
			2: {3, 9},
		},
		Remote:      map[uint64]int{4: 0, 8: 2},
		ReplicaFrom: []int{0, 2},
		Dec: &core.Decision{
			Iter:       4,
			Assign:     []int{0, 1, 1, 2},
			NeededNext: map[uint64]bool{3: true},
			Batch: &data.Batch{
				Index: 4,
				Examples: []data.Example{
					{Dense: []float32{0.5, -1}, Cat: []uint64{3, 4}, Label: 1},
					{Dense: []float32{2, 3}, Cat: []uint64{9, 8}, Label: 0},
					{Dense: []float32{-0.25, 0}, Cat: []uint64{3, 8}, Label: 1},
					{Dense: []float32{1, 1}, Cat: []uint64{27, 4}, Label: 0},
				},
			},
		},
	}
	cases := []any{
		ReplicaMsg{Iter: 7, Rows: map[uint64][]float32{
			12: {1, 2.5, -3},
			99: {0, -0.125, 42},
		}},
		// Quantized replica rows: values must be f16-representable (the
		// sender quantizes before building the message).
		ReplicaMsg{Iter: 8, F16: true, Rows: map[uint64][]float32{
			4: QuantizeF16([]float32{1, -0.5, 3.25}),
			9: QuantizeF16([]float32{0.1, 6.5e4, -2e-5}),
		}},
		SyncMsg{Iter: 3, Entries: map[uint64][]Contrib{
			5:  {{Example: 2, Grad: []float32{0.1, -0.2}}, {Example: 7, Grad: []float32{1, 2}}},
			11: {{Example: 0, Grad: []float32{-5, 5}}},
		}},
		SyncBatchMsg{Flushes: []SyncMsg{
			{Iter: 4, Entries: map[uint64][]Contrib{
				2: {{Example: 1, Grad: []float32{0.5, 0.25}}},
			}},
			{Iter: 3, Entries: map[uint64][]Contrib{
				2: {{Example: 0, Grad: []float32{-1, 2}}, {Example: 5, Grad: []float32{3, -4}}},
				8: {{Example: 2, Grad: []float32{7, 8}}},
			}},
		}},
		PlanMsg{Plan: plan},
		CollMsg{Seq: 41, F32: []float32{1.5, -2.25}},
		CollMsg{Seq: 42, F64: []float64{3.14159, -1e-9}},
		FusedCollMsg{Seq: 43, Origin: 2,
			Segs: [][]float32{{1, 2, 3}, {-0.5}, {4, 5}},
			Loss: []float64{0.693147}},
		RawMsg("hello mesh"),
	}
	for _, in := range cases {
		enc := EncodePayload(in)
		out, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", in, err)
		}
		if pm, ok := in.(PlanMsg); ok {
			// Pointer equality can't hold; compare the pointed-to values.
			// The batch arrives sparse: full length, but only the
			// destination trainer's assigned examples populated.
			got := out.(PlanMsg)
			wantBatch := data.Batch{
				Index:    pm.Plan.Dec.Batch.Index,
				Examples: make([]data.Example, len(pm.Plan.Dec.Batch.Examples)),
			}
			for i, ex := range pm.Plan.Dec.Batch.Examples {
				if pm.Plan.Dec.Assign[i] == pm.Plan.Trainer {
					wantBatch.Examples[i] = ex
				}
			}
			if !reflect.DeepEqual(wantBatch, *got.Plan.Dec.Batch) {
				t.Fatalf("plan batch round trip:\n want %+v\n out  %+v", wantBatch, *got.Plan.Dec.Batch)
			}
			pmDec, gotDec := *pm.Plan.Dec, *got.Plan.Dec
			pmDec.Batch, gotDec.Batch = nil, nil
			if !reflect.DeepEqual(pmDec, gotDec) {
				t.Fatalf("plan decision round trip:\n in  %+v\n out %+v", pmDec, gotDec)
			}
			pmPl, gotPl := *pm.Plan, *got.Plan
			pmPl.Dec, gotPl.Dec = nil, nil
			if !reflect.DeepEqual(pmPl, gotPl) {
				t.Fatalf("plan round trip:\n in  %+v\n out %+v", pmPl, gotPl)
			}
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip:\n in  %+v (%T)\n out %+v (%T)", in, in, out, out)
		}
	}
}

// TestCodecDeterministic: map-typed fields encode in sorted key order, so
// the same payload always produces identical bytes.
func TestCodecDeterministic(t *testing.T) {
	msg := ReplicaMsg{Iter: 1, Rows: map[uint64][]float32{}}
	for id := uint64(0); id < 64; id++ {
		msg.Rows[id*7919%257] = []float32{float32(id)}
	}
	ref := EncodePayload(msg)
	for i := 0; i < 16; i++ {
		if got := EncodePayload(msg); !reflect.DeepEqual(ref, got) {
			t.Fatal("encoding of the same payload differed between calls")
		}
	}
}

// TestCodecRejectsCorrupt: truncated or trailing-garbage frames error
// instead of panicking or over-allocating, for every payload family
// including the segmented fused-collective and coalesced-sync encodings.
func TestCodecRejectsCorrupt(t *testing.T) {
	payloads := []any{
		ReplicaMsg{Iter: 1, Rows: map[uint64][]float32{5: {1, 2, 3}}},
		ReplicaMsg{Iter: 1, F16: true, Rows: map[uint64][]float32{5: QuantizeF16([]float32{1, 2, 3})}},
		SyncBatchMsg{Flushes: []SyncMsg{
			{Iter: 2, Entries: map[uint64][]Contrib{3: {{Example: 1, Grad: []float32{1, 2}}}}},
			{Iter: 1, Entries: map[uint64][]Contrib{7: {{Example: 0, Grad: []float32{3, 4}}}}},
		}},
		FusedCollMsg{Seq: 9, Origin: 1, Segs: [][]float32{{1, 2}, {3}}, Loss: []float64{0.5}},
	}
	for _, p := range payloads {
		enc := EncodePayload(p)
		for cut := 1; cut < len(enc); cut++ {
			if _, err := DecodePayload(enc[:cut]); err == nil {
				t.Fatalf("%T: truncation at %d/%d bytes decoded without error", p, cut, len(enc))
			}
		}
		if _, err := DecodePayload(append(append([]byte(nil), enc...), 0xFF)); err == nil {
			t.Fatalf("%T: trailing garbage decoded without error", p)
		}
	}
	if _, err := DecodePayload([]byte{0x7F, 1, 2}); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
	if _, err := DecodePayload(nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
}

// TestF16RoundTrip pins the binary16 conversion: representable values are
// exact both ways, rounding is to nearest-even, and the edges (overflow,
// subnormals, signed zero, Inf/NaN) behave.
func TestF16RoundTrip(t *testing.T) {
	exact := []float32{0, 1, -1, 0.5, -0.25, 2048, 65504, -65504, 6.103515625e-05, 5.960464477539063e-08}
	for _, x := range exact {
		if got := F32FromF16(F16FromF32(x)); got != x {
			t.Fatalf("f16 round trip of representable %v gave %v", x, got)
		}
	}
	// Quantization is idempotent: a second pass changes nothing.
	xs := []float32{3.14159, -2.71828, 1e-3, 123.456, 6e4, -7e-8}
	q := QuantizeF16(append([]float32(nil), xs...))
	for i, v := range q {
		if again := F32FromF16(F16FromF32(v)); again != v {
			t.Fatalf("quantization not idempotent at %d: %v -> %v", i, v, again)
		}
		// And never further from the original than one f16 ulp (~2^-11
		// relative for normals).
		if d := v - xs[i]; d > 0.001*abs32(xs[i])+1e-7 || d < -0.001*abs32(xs[i])-1e-7 {
			t.Fatalf("quantized %v to %v: error too large", xs[i], v)
		}
	}
	// Overflow clamps to Inf, which decodes to +Inf f32.
	if h := F16FromF32(1e6); F32FromF16(h) <= 65504 {
		t.Fatalf("1e6 quantized to %v, want +Inf", F32FromF16(h))
	}
	// NaN survives.
	if v := F32FromF16(F16FromF32(float32(math.NaN()))); v == v {
		t.Fatal("NaN did not survive f16 round trip")
	}
	// Signed zero survives.
	if h := F16FromF32(float32(math.Copysign(0, -1))); h != 0x8000 {
		t.Fatalf("-0 encoded as %#x", h)
	}
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
