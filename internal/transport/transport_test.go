package transport

import (
	"testing"
	"time"

	"bagpipe/internal/embed"
)

func TestInProcessRoundTrip(t *testing.T) {
	srv := embed.NewServer(2, 4, 3, 0.1)
	tr := NewInProcess(srv)
	ids := []uint64{1, 2, 3}
	rows := tr.Fetch(ids)
	if len(rows) != 3 || len(rows[0]) != 4 {
		t.Fatalf("fetch shape %dx%d", len(rows), len(rows[0]))
	}
	rows[0][0] = 42
	tr.Write(ids[:1], rows[:1])
	if got := srv.Get(1); got[0] != 42 {
		t.Fatalf("write not visible on server: %v", got)
	}
	st := tr.Stats()
	wantBytes := int64(3 * (8 + 4*4))
	if st.Fetches != 1 || st.RowsFetched != 3 || st.BytesFetched != wantBytes {
		t.Fatalf("fetch stats %+v", st)
	}
	if st.Writes != 1 || st.RowsWritten != 1 || st.BytesWritten != int64(8+4*4) {
		t.Fatalf("write stats %+v", st)
	}
	if st.SimulatedDelay != 0 {
		t.Fatalf("inproc transport reported delay %v", st.SimulatedDelay)
	}
	if tr.Dim() != 4 || tr.Name() != "inproc" {
		t.Fatal("metadata wrong")
	}
}

func TestSimNetDelaysAndCounts(t *testing.T) {
	srv := embed.NewServer(1, 4, 3, 0.1)
	// 24-byte rows over a 24 KB/s link: 1ms of serialization per row,
	// plus 5ms latency per call.
	tr := NewSimNet(srv, 5*time.Millisecond, 24*1000)
	start := time.Now()
	tr.Fetch([]uint64{1, 2})
	elapsed := time.Since(start)
	wantMin := 5*time.Millisecond + 2*time.Millisecond
	if elapsed < wantMin {
		t.Fatalf("fetch took %v, want >= %v", elapsed, wantMin)
	}
	st := tr.Stats()
	if st.SimulatedDelay < wantMin {
		t.Fatalf("recorded delay %v, want >= %v", st.SimulatedDelay, wantMin)
	}
	if st.BytesFetched != 2*(8+16) {
		t.Fatalf("bytes fetched %d", st.BytesFetched)
	}
}

func TestSimNetStateMatchesInProcess(t *testing.T) {
	// The simulated link must be purely a timing model: state changes are
	// identical to the direct path.
	a := embed.NewServer(2, 4, 9, 0.1)
	b := embed.NewServer(2, 4, 9, 0.1)
	fast := NewInProcess(a)
	slow := NewSimNet(b, 100*time.Microsecond, 0)
	ids := []uint64{5, 6}
	ra := fast.Fetch(ids)
	rb := slow.Fetch(ids)
	for i := range ra {
		ra[i][0] += 1
		rb[i][0] += 1
	}
	fast.Write(ids, ra)
	slow.Write(ids, rb)
	if d := embed.Diff(a, b); len(d) != 0 {
		t.Fatalf("states diverged at ids %v", d)
	}
}
