package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bagpipe/internal/embed"
)

// zeroJitter makes retry timing deterministic in tests.
func zeroJitter(time.Duration) time.Duration { return 0 }

// freshServer builds a pristine replacement for a killed tier server (same
// ctor parameters as faultTier's servers) already in recovery mode, the
// state a respawned -recover process starts in.
func freshServer() *embed.Server {
	srv := embed.NewServer(3, 4, 11, 0.1)
	srv.BeginRecovery()
	return srv
}

// rejoinerParts lists the partitions server s holds under replication R:
// s, s−1, …, s−R+1 on the ownership ring.
func rejoinerParts(s, S, R int) []int {
	parts := make([]int, 0, R)
	for k := 0; k < R; k++ {
		parts = append(parts, ((s-k)%S+S)%S)
	}
	return parts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRejoinReplicated is the core dead → resync → live conformance test:
// a server dies mid-run, a pristine recovering replacement rejoins through
// the anti-entropy transfer, and the whole tier — including the rejoiner's
// own partitions — certifies bit-identical to the S=1 reference, for both
// R=2 and R=3.
func TestRejoinReplicated(t *testing.T) {
	for _, tc := range []struct{ S, R int }{{3, 2}, {4, 3}} {
		t.Run(fmt.Sprintf("S%dR%d", tc.S, tc.R), func(t *testing.T) {
			var revived []int
			st, faults, tier, ref, refStore := faultTier(tc.S, TierOptions{
				Replicate: tc.R,
				Retries:   2,
				Backoff:   time.Millisecond,
				Jitter:    zeroJitter,
			})
			st.SubscribeRevived(func(s int) { revived = append(revived, s) })

			stamp := float32(0)
			step := func(ids []uint64) {
				t.Helper()
				stamp++
				rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
				for i := range rows {
					for j := range rows[i] {
						if rows[i][j] != refRows[i][j] {
							t.Fatalf("id %d col %d: tier %v != reference %v", ids[i], j, rows[i][j], refRows[i][j])
						}
					}
					rows[i][0], refRows[i][0] = stamp, stamp
				}
				st.Write(ids, rows)
				refStore.Write(ids, refRows)
			}

			wide := make([]uint64, 40)
			for i := range wide {
				wide[i] = uint64(i)
			}
			step(wide)
			faults[1].SetDown(true) // kill server 1 mid-run
			step(wide[:25])
			if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
				t.Fatalf("DeadServers() = %v, want [1]", dead)
			}

			// Respawn: a pristine recovering replacement rejoins over a new
			// connection (new incarnation).
			fresh := freshServer()
			if err := st.Rejoin(1, NewFaultStore(NewInProcess(fresh), 1), RejoinOptions{}); err != nil {
				t.Fatalf("rejoin: %v", err)
			}
			if down := st.DownServers(); len(down) != 0 {
				t.Fatalf("DownServers() = %v after certified rejoin, want none", down)
			}
			if len(revived) != 1 || revived[0] != 1 {
				t.Fatalf("revival subscribers saw %v, want [1]", revived)
			}
			h := st.TierHealth()
			if h.Revived != 1 {
				t.Fatalf("TierHealth.Revived = %d, want 1", h.Revived)
			}
			if h.ResyncRows == 0 {
				t.Fatal("TierHealth.ResyncRows = 0: the anti-entropy transfer streamed nothing")
			}

			// Live writes after the rejoin go to the rejoiner too.
			step(wide[:30])

			// The rejoiner's own partitions, fingerprinted directly (not via
			// the tier's routing), match the reference.
			for _, p := range rejoinerParts(1, tc.S, tc.R) {
				if got, want := fresh.FingerprintPart(p, tc.S), ref.FingerprintPart(p, tc.S); got != want {
					t.Fatalf("rejoined server partition %d fingerprint %x != reference %x", p, got, want)
				}
			}
			// Full-tier certification, all three ways, with NO dead servers.
			if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
				t.Fatalf("tier fingerprint %x != reference %x after rejoin", fp, want)
			}
			live := append([]*embed.Server(nil), tier...)
			live[1] = fresh
			merged, err := embed.MergeTierReplicated(live, tc.R, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := embed.Diff(ref, merged); len(d) != 0 {
				t.Fatalf("merged tier differs from reference at %v", d)
			}
			restored, err := embed.RestoreTierReplicated(bytes.NewReader(st.Checkpoint()), tc.S, ref.NumShards(), tc.R, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := embed.Diff(ref, restored); len(d) != 0 {
				t.Fatalf("restored checkpoint differs at %v", d)
			}

			// The coordinator ends recovery; plain writes keep certifying.
			if err := st.EndRecovery(1); err != nil {
				t.Fatalf("end recovery: %v", err)
			}
			if fresh.Recovering() {
				t.Fatal("server still in recovery mode after EndRecovery")
			}
			step(wide)
			if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
				t.Fatalf("tier fingerprint %x != reference %x after EndRecovery", fp, want)
			}
		})
	}
}

// TestRejoinUnderConcurrentWriters races the anti-entropy transfer against
// live mutating traffic: writers keep writing monotone stamps to disjoint
// id sets (mirrored to the reference) through the kill, the resync, and
// the re-admission. Run under -race in CI.
func TestRejoinUnderConcurrentWriters(t *testing.T) {
	const S, R, W = 3, 2, 3
	st, faults, _, ref, refStore := faultTier(S, TierOptions{
		Replicate: R,
		Retries:   2,
		Backoff:   time.Millisecond,
		Jitter:    zeroJitter,
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint64, 0, 12)
			for id := uint64(w); id < 36; id += W {
				ids = append(ids, id)
			}
			rows := make([][]float32, len(ids))
			stamp := float32(0)
			for !stop.Load() {
				stamp++
				for i := range rows {
					rows[i] = []float32{stamp, float32(w), float32(ids[i]), 3}
				}
				// Per-id single-writer discipline: the same values land in
				// the tier and the reference, in the same per-id order.
				st.Write(ids, rows)
				refStore.Write(ids, rows)
			}
		}(w)
	}

	time.Sleep(10 * time.Millisecond)
	faults[1].SetDown(true)
	waitFor(t, "writers to condemn server 1", func() bool {
		dead := st.DeadServers()
		return len(dead) == 1 && dead[0] == 1
	})

	fresh := freshServer()
	if err := st.Rejoin(1, NewFaultStore(NewInProcess(fresh), 1), RejoinOptions{}); err != nil {
		t.Fatalf("rejoin under concurrent writers: %v", err)
	}
	if down := st.DownServers(); len(down) != 0 {
		t.Fatalf("DownServers() = %v after rejoin", down)
	}

	stop.Store(true)
	wg.Wait()
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after rejoin under write traffic", fp, want)
	}
	for _, p := range rejoinerParts(1, S, R) {
		if got, want := fresh.FingerprintPart(p, S), ref.FingerprintPart(p, S); got != want {
			t.Fatalf("rejoined server partition %d fingerprint %x != reference %x", p, got, want)
		}
	}
}

// TestRejoinMidResyncFailure is the attributed-failure leg: the rejoiner
// dies again mid-transfer. The rejoin surfaces an op-"resync" *TierError
// naming the server, re-marks it dead — no half-live state — and the tier
// keeps serving from the survivors.
func TestRejoinMidResyncFailure(t *testing.T) {
	st, faults, _, _, refStore := faultTier(3, TierOptions{
		Replicate: 2,
		Retries:   1,
		Backoff:   time.Millisecond,
		Jitter:    zeroJitter,
	})

	ids := make([]uint64, 30)
	for i := range ids {
		ids[i] = uint64(i)
	}
	rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
	st.Write(ids, rows)
	refStore.Write(ids, refRows)

	faults[1].SetDown(true)
	st.Write(ids, rows) // condemns server 1
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}

	// The replacement connection fails every RPC: the transfer (or its
	// verify probe) dies mid-resync.
	rejoiner := NewFaultStore(NewInProcess(freshServer()), 1)
	rejoiner.SetDown(true)
	err := st.Rejoin(1, rejoiner, RejoinOptions{MaxRounds: 3, RoundBackoff: time.Millisecond})
	if err == nil {
		t.Fatal("rejoin with a dead rejoiner reported success")
	}
	var te *TierError
	if !errors.As(err, &te) {
		t.Fatalf("rejoin error %T is not a *TierError: %v", err, err)
	}
	if te.Op != "resync" || te.Server != 1 {
		t.Fatalf("attributed error = %+v, want op resync on server 1", te)
	}
	// Cleanly dead again, not stuck half-live in resync.
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v after failed rejoin, want [1]", dead)
	}
	if down := st.DownServers(); len(down) != 1 || down[0] != 1 {
		t.Fatalf("DownServers() = %v after failed rejoin, want [1] (dead, not resyncing)", down)
	}
	// Survivors still serve — and a later, healthy rejoin succeeds.
	st.Fetch(ids[:5])
	if err := st.Rejoin(1, NewFaultStore(NewInProcess(freshServer()), 1), RejoinOptions{}); err != nil {
		t.Fatalf("healthy rejoin after a failed one: %v", err)
	}
}

// TestRejoinSourceDeathMidResync kills the anti-entropy *source* instead:
// with the only other holder of the rejoiner's partitions gone, the rejoin
// must fail attributed (never hang), and the rejoiner goes cleanly back to
// dead.
func TestRejoinSourceDeathMidResync(t *testing.T) {
	st, faults, _, _, _ := faultTier(3, TierOptions{
		Replicate: 2,
		Retries:   1,
		Backoff:   time.Millisecond,
		Jitter:    zeroJitter,
	})
	ids := make([]uint64, 30)
	for i := range ids {
		ids[i] = uint64(i)
	}
	st.Write(ids, st.Fetch(ids))

	faults[1].SetDown(true)
	st.Write(ids, st.Fetch(ids))
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}

	if err := st.BeginRejoin(1, NewFaultStore(NewInProcess(freshServer()), 1)); err != nil {
		t.Fatal(err)
	}
	// Partition 1's only live holder is server 2 (server 1 is resyncing);
	// kill it before the transfer sources from it.
	faults[2].SetDown(true)
	err := st.CompleteRejoin(1, RejoinOptions{MaxRounds: 3, RoundBackoff: time.Millisecond})
	var te *TierError
	if !errors.As(err, &te) || te.Op != "resync" {
		t.Fatalf("rejoin with a dead source returned %v, want an op-resync *TierError", err)
	}
	if down := st.DownServers(); len(down) != 2 {
		t.Fatalf("DownServers() = %v, want the rejoiner and the dead source", down)
	}
}

// TestRejoinVerifyOnly models the serving front end's read-only tier
// client: it re-admits a recovering server only once its partitions verify
// against the live holders — some read-write client owns the transfer —
// and a resyncing server never serves a read.
func TestRejoinVerifyOnly(t *testing.T) {
	const S, R = 3, 2
	servers := testTier(S)
	ref := embed.NewServer(3, 4, 11, 0.1)
	refStore := NewInProcess(ref)
	mkTier := func() (*ShardedStore, []*FaultStore) {
		faults := make([]*FaultStore, S)
		children := make([]Store, S)
		for i, srv := range servers {
			faults[i] = NewFaultStore(NewInProcess(srv), i)
			children[i] = faults[i]
		}
		return NewTier(children, TierOptions{
			Replicate: R, Retries: 1, Backoff: time.Millisecond, Jitter: zeroJitter,
		}), faults
	}
	rw, rwFaults := mkTier() // the trainer: owns writes and the transfer
	ro, roFaults := mkTier() // the front end: reads only, verify-only rejoin

	ids := make([]uint64, 30)
	for i := range ids {
		ids[i] = uint64(i)
	}
	rows := rw.Fetch(ids)
	refRows := refStore.Fetch(ids)
	for i := range rows {
		rows[i][0], refRows[i][0] = 7, 7
	}
	rw.Write(ids, rows)
	refStore.Write(ids, refRows)

	// The machine dies: both clients' wrappers cut at once.
	rwFaults[1].SetDown(true)
	roFaults[1].SetDown(true)
	rw.Write(ids, rows)                               // rw condemns server 1
	if _, err := ro.ReadFetch(ids, nil); err != nil { // ro fails over and condemns it too
		t.Fatalf("read-path failover: %v", err)
	}
	if dead := ro.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("read tier DeadServers() = %v, want [1]", dead)
	}

	// Respawn: a pristine recovering replacement, visible to both clients.
	fresh := freshServer()
	if err := ro.BeginRejoin(1, NewFaultStore(NewInProcess(fresh), 1)); err != nil {
		t.Fatal(err)
	}
	// While resyncing (pristine, unverified), reads must not route to it:
	// the values served must match the reference, which the fresh server
	// does not hold yet.
	got, err := ro.ReadFetch(ids, nil)
	if err != nil {
		t.Fatalf("read during resync: %v", err)
	}
	want := refStore.Fetch(ids)
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("read during resync served unverified data: id %d col %d = %v, want %v", ids[i], j, got[i][j], want[i][j])
			}
		}
	}

	// The verify-only client converges only after the read-write client's
	// transfer lands.
	var roRevived atomic.Int32
	ro.SubscribeRevived(func(s int) { roRevived.Add(1) })
	roDone := make(chan error, 1)
	go func() {
		roDone <- ro.CompleteRejoin(1, RejoinOptions{MaxRounds: 400, RoundBackoff: 2 * time.Millisecond, VerifyOnly: true})
	}()

	if err := rw.Rejoin(1, NewFaultStore(NewInProcess(fresh), 1), RejoinOptions{}); err != nil {
		t.Fatalf("read-write rejoin: %v", err)
	}
	if err := <-roDone; err != nil {
		t.Fatalf("verify-only rejoin: %v", err)
	}
	if roRevived.Load() != 1 {
		t.Fatalf("read tier revival subscribers fired %d times, want 1", roRevived.Load())
	}
	if down := ro.DownServers(); len(down) != 0 {
		t.Fatalf("read tier DownServers() = %v after verify-only rejoin", down)
	}
	if fp, want := ro.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("read tier fingerprint %x != reference %x", fp, want)
	}
}

// TestMarkDeadConcurrentExactlyOnce races many condemnations of one
// server: OnFailover must fire exactly once, and the recorded cause must
// be the winning goroutine's error. Run under -race in CI.
func TestMarkDeadConcurrentExactlyOnce(t *testing.T) {
	var mu sync.Mutex
	var fired []int
	var causes []error
	st, _, _, _, _ := faultTier(3, TierOptions{
		Replicate: 2,
		OnFailover: func(s int, cause error) {
			mu.Lock()
			fired = append(fired, s)
			causes = append(causes, cause)
			mu.Unlock()
		},
	})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st.markDead(1, fmt.Errorf("cause %d", i))
		}(i)
	}
	wg.Wait()

	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("OnFailover fired for %v, want exactly [1]", fired)
	}
	if causes[0] == nil {
		t.Fatal("OnFailover fired with a nil cause")
	}
	if got := st.deadCause(1); got != causes[0] {
		t.Fatalf("recorded cause %v != the first (callback) cause %v", got, causes[0])
	}
}

// TestReviverDialRetry pins the dial-retry behavior: a dead server whose
// address refuses connections is simply re-dialed on the next tick — never
// re-condemned for a failed dial — and rejoined once the dial lands.
func TestReviverDialRetry(t *testing.T) {
	st, faults, _, ref, refStore := faultTier(3, TierOptions{
		Replicate: 2,
		Retries:   1,
		Backoff:   time.Millisecond,
		Jitter:    zeroJitter,
	})
	ids := make([]uint64, 30)
	for i := range ids {
		ids[i] = uint64(i)
	}
	st.Write(ids, st.Fetch(ids))
	refStore.Write(ids, refStore.Fetch(ids))

	faults[1].SetDown(true)
	st.Write(ids, st.Fetch(ids))
	refStore.Write(ids, refStore.Fetch(ids))
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}

	fresh := freshServer()
	var dials atomic.Int32
	outcome := make(chan error, 8)
	rev := NewReviver(st, func(s int) (Store, error) {
		if s != 1 {
			t.Errorf("reviver dialed server %d, only 1 is dead", s)
		}
		if dials.Add(1) <= 3 {
			return nil, errors.New("connection refused") // still rebooting
		}
		return NewInProcess(fresh), nil
	}, RejoinOptions{}, func(s int, err error) { outcome <- err })
	defer rev.Stop()

	select {
	case err := <-outcome:
		if err != nil {
			t.Fatalf("rejoin through the reviver: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reviver never completed a rejoin")
	}
	if n := dials.Load(); n < 4 {
		t.Fatalf("reviver dialed %d times, want >= 4 (three refused attempts retried)", n)
	}
	if down := st.DownServers(); len(down) != 0 {
		t.Fatalf("DownServers() = %v after reviver rejoin", down)
	}
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after reviver rejoin", fp, want)
	}
}

// TestDefaultJitterBounds pins the full-jitter envelope: the slept backoff
// is always within [d/2, d].
func TestDefaultJitterBounds(t *testing.T) {
	for _, d := range []time.Duration{
		time.Nanosecond, 2 * time.Nanosecond, time.Millisecond, 640 * time.Millisecond,
	} {
		for i := 0; i < 200; i++ {
			if j := defaultJitter(d); j < d/2 || j > d {
				t.Fatalf("defaultJitter(%v) = %v outside [%v, %v]", d, j, d/2, d)
			}
		}
	}
}

// TestJitterInjected proves the jitter source is injectable (the fake-clock
// determinism hook): the tier's retry path routes every backoff through it.
func TestJitterInjected(t *testing.T) {
	var calls atomic.Int32
	st, faults, _, _, _ := faultTier(3, TierOptions{
		Replicate: 2,
		Retries:   2,
		Backoff:   time.Microsecond,
		Jitter: func(d time.Duration) time.Duration {
			calls.Add(1)
			return 0
		},
	})
	faults[0].SetDown(true)
	ids := make([]uint64, 20)
	for i := range ids {
		ids[i] = uint64(i)
	}
	st.Fetch(ids) // retries against the dead server sleep through the jitter
	if calls.Load() == 0 {
		t.Fatal("injected jitter source never consulted on the retry path")
	}
}

// TestRejoinTCP is the real-socket leg: a tier over TCP links loses a
// server (its process-equivalent serve loop shuts down), a fresh recovery-
// mode server starts, a new link rejoins it, and the tier certifies.
func TestRejoinTCP(t *testing.T) {
	const S, R = 3, 2
	servers := testTier(S)
	ref := embed.NewServer(3, 4, 11, 0.1)
	refStore := NewInProcess(ref)

	addrs := make([]string, S)
	joins := make([]func(), S)
	links := make([]*TCPLink, S)
	children := make([]Store, S)
	for i, srv := range servers {
		addrs[i], joins[i] = startEmbedServer(t, srv)
		link, err := DialTCPLink(addrs[i], 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = link
		children[i] = link
	}
	st := NewTier(children, TierOptions{
		Replicate: R, Retries: 2, Backoff: time.Millisecond, Jitter: zeroJitter,
	})

	stamp := float32(0)
	step := func(ids []uint64) {
		t.Helper()
		stamp++
		rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
		for i := range rows {
			rows[i][0], refRows[i][0] = stamp, stamp
		}
		st.Write(ids, rows)
		refStore.Write(ids, refRows)
	}
	wide := make([]uint64, 36)
	for i := range wide {
		wide[i] = uint64(i)
	}
	step(wide)

	// Kill server 1: stop its serve loop (the in-test stand-in for a
	// process kill) and let the tier condemn the broken link.
	links[1].Shutdown()
	joins[1]()
	step(wide[:20])
	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}

	// Respawn in recovery mode on a fresh listener, rejoin over a new link.
	fresh := freshServer()
	addr2, join2 := startEmbedServer(t, fresh)
	link2, err := DialTCPLink(addr2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Rejoin(1, link2, RejoinOptions{}); err != nil {
		t.Fatalf("tcp rejoin: %v", err)
	}
	step(wide[:28])

	// Per-partition certificates straight off the rejoiner's link.
	for _, p := range rejoinerParts(1, S, R) {
		got, err := link2.TryFingerprintPart(p, S)
		if err != nil {
			t.Fatal(err)
		}
		if want := ref.FingerprintPart(p, S); got != want {
			t.Fatalf("rejoined tcp server partition %d fingerprint %x != reference %x", p, got, want)
		}
	}
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after tcp rejoin", fp, want)
	}
	if err := st.EndRecovery(1); err != nil {
		t.Fatalf("end recovery over tcp: %v", err)
	}
	step(wide)
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("tier fingerprint %x != reference %x after EndRecovery", fp, want)
	}

	st.Shutdown() // shuts down the survivors and the rejoined fresh server
	join2()
	joins[0]()
	joins[2]()
	for _, l := range links {
		l.Close()
	}
	link2.Close()
}
