// Package transport is the system's wire layer: the trainer↔embedding-tier
// client (Store, extending the point-to-point Transport data path with tier
// operations, and fanning out over S servers via ShardedStore) and the
// trainer↔trainer fabric (Mesh), each with three interchangeable
// implementations —
//
//   - in-process (InProcess, InprocMesh): direct calls, zero cost; the
//     fabric the functional tests run on;
//   - simulated (SimNet, SimMesh): a timing model charging per-call latency
//     and per-link serialization bandwidth, so experiments can sweep the
//     paper's EC2 topology (trainers on p3 GPU nodes, embedding servers on
//     separate c5 nodes) without a cluster;
//   - TCP (TCPLink/ServeEmbed, TCPMesh): real sockets speaking the
//     length-prefixed little-endian protocol in codec.go, for genuinely
//     distributed multi-process runs.
//
// Two invariants hold across all implementations, and the conformance
// suite (conformance_test.go) pins them:
//
//   - a transport or mesh is a carrier, never a semantic layer: state
//     changes and message values are identical whichever implementation
//     moves them, so any engine/fabric combination must produce
//     bit-identical embedding-server state;
//   - mesh delivery may reorder but never corrupts or invents: every
//     accepted Send is eventually delivered exactly once or counted
//     dropped (drops can occur only after the destination endpoint
//     closed), and receivers must key — not sequence — their protocol
//     state.
//
// Traffic is accounted in payload bytes (8 per id + 4 per float) on every
// implementation, the accounting the paper's byte plots use.
package transport

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"bagpipe/internal/embed"
)

// idBytes is the wire size of one embedding ID (uint64).
const idBytes = 8

// Stats accounts the traffic a transport has carried.
type Stats struct {
	Fetches     int64 // fetch calls
	Writes      int64 // write calls
	RowsFetched int64
	RowsWritten int64
	// BytesFetched / BytesWritten count payload bytes: 8 per id plus
	// 4·dim per row, the accounting the paper's byte plots use.
	BytesFetched int64
	BytesWritten int64
	// SimulatedDelay is the total wall-clock time injected by a simulated
	// network (zero for in-process transports).
	SimulatedDelay time.Duration
}

// Add accumulates o into s field-wise. Every place the system folds traffic
// snapshots — per-trainer aggregation into train.Result, the sharded
// store's tier totals, per-server -stats accounting — goes through this one
// method, so a field added to Stats cannot be silently dropped from one of
// several hand-rolled summations.
func (s *Stats) Add(o Stats) {
	s.Fetches += o.Fetches
	s.Writes += o.Writes
	s.RowsFetched += o.RowsFetched
	s.RowsWritten += o.RowsWritten
	s.BytesFetched += o.BytesFetched
	s.BytesWritten += o.BytesWritten
	s.SimulatedDelay += o.SimulatedDelay
}

// Transport is the embedding data path: fetches and write-backs between a
// trainer and one embedding server. It is the carrier half of the tier
// contract — engines consume the full Store interface (store.go), which
// extends Transport with the tier operations (fingerprint, checkpoint,
// shutdown, per-server stats) that make S-server tiers interchangeable
// with a single server.
type Transport interface {
	// Fetch returns rows for ids, in order. The caller owns the returned
	// header and every row; implementations draw both from the pooled
	// allocator (pool.go), so a caller that is done with them may release
	// them via PutRowSlice / Rows(dim).Put — returning is optional, never
	// required, but a released buffer must have no other live reference.
	Fetch(ids []uint64) [][]float32
	// Write writes rows back to the servers.
	Write(ids []uint64, rows [][]float32)
	// Dim returns the embedding row width served.
	Dim() int
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
	// Name identifies the transport in experiment output.
	Name() string
}

// FallibleStore is the error-returning face of a Store. The Transport/Store
// methods are errorless by design — the in-process implementations cannot
// fail, and a worker with no embedding tier left cannot make progress — but
// replication needs a middle ground: a ShardedStore with replicate ≥ 2 can
// survive losing a server, so the per-server RPC must be able to *report*
// failure instead of dying. Children that implement FallibleStore get the
// retry/failover path; children that don't (they cannot fail, or a test stub
// that panics) keep the errorless path. The Try forms mirror their errorless
// counterparts exactly — same ownership rules, same accounting.
//
// TryFingerprintPart is the partition-scoped certificate
// (embed.Server.FingerprintPart): a replicated tier sums one partition
// fingerprint per partition, taken from the first live holder, so replicated
// rows are counted once.
type FallibleStore interface {
	TryFetch(ids []uint64) ([][]float32, error)
	TryWrite(ids []uint64, rows [][]float32) error
	TryFingerprintPart(part, of int) (uint64, error)
	TryCheckpoint() ([]byte, error)
}

// InProcess is the zero-cost transport: trainers and embedding servers
// share an address space and calls go straight to the server (which is
// itself shard-parallel).
type InProcess struct {
	Server *embed.Server

	arena *RowArena

	// announced is the routing epoch this link's data ops are declared
	// under (see embed.Server.RoutedFetchInto). 0 until a reshard touches
	// the tier — and the server accepts everything at epoch 0, so the
	// pre-reshard path is unchanged.
	announced atomic.Uint64

	fetches, writes            atomic.Int64
	rowsFetched, rowsWritten   atomic.Int64
	bytesFetched, bytesWritten atomic.Int64
}

// NewInProcess returns a direct-call transport to srv.
func NewInProcess(srv *embed.Server) *InProcess {
	return &InProcess{Server: srv, arena: Rows(srv.Dim)}
}

// Name implements Transport.
func (t *InProcess) Name() string { return "inproc" }

// Dim implements Transport.
func (t *InProcess) Dim() int { return t.Server.Dim }

// instant marks this transport as completing without blocking on I/O;
// ShardedStore fans out serially over instant children.
func (t *InProcess) instant() bool { return true }

// rowArena tolerates literal-constructed transports that skipped
// NewInProcess.
func (t *InProcess) rowArena() *RowArena {
	if t.arena != nil {
		return t.arena
	}
	return Rows(t.Server.Dim)
}

// Fetch implements Transport, serving the rows out of the shared arena.
// The errorless face cannot surface a routing fence; only tier clients
// (which use TryFetch) ever install routing, so a fence here is a
// programming error and dies loudly.
func (t *InProcess) Fetch(ids []uint64) [][]float32 {
	rows, err := t.TryFetch(ids)
	if err != nil {
		panic(err)
	}
	return rows
}

// Write implements Transport (see Fetch for the fence contract).
func (t *InProcess) Write(ids []uint64, rows [][]float32) {
	if err := t.TryWrite(ids, rows); err != nil {
		panic(err)
	}
}

// Stats implements Transport.
func (t *InProcess) Stats() Stats {
	return Stats{
		Fetches:      t.fetches.Load(),
		Writes:       t.writes.Load(),
		RowsFetched:  t.rowsFetched.Load(),
		RowsWritten:  t.rowsWritten.Load(),
		BytesFetched: t.bytesFetched.Load(),
		BytesWritten: t.bytesWritten.Load(),
	}
}

// Fingerprint implements Store (a one-server tier: the server's own
// certificate).
func (t *InProcess) Fingerprint() uint64 { return t.Server.Fingerprint() }

// FingerprintPart is the partition-scoped certificate (see FallibleStore).
func (t *InProcess) FingerprintPart(part, of int) uint64 { return t.Server.FingerprintPart(part, of) }

// Checkpoint implements Store.
func (t *InProcess) Checkpoint() []byte { return checkpointBytes(t.Server) }

// Shutdown implements Store: the in-process server's lifetime belongs to
// whoever built it.
func (t *InProcess) Shutdown() {}

// ServerStats implements Store.
func (t *InProcess) ServerStats() []Stats { return []Stats{t.Stats()} }

// TryFetch, TryWrite, TryFingerprintPart, TryCheckpoint implement
// FallibleStore. A shared address space cannot fail, so the only error they
// can return is the routing fence — implementing the interface keeps the
// replicated tier's routing uniform across fabrics (and lets tests inject
// faults by wrapping).
func (t *InProcess) TryFetch(ids []uint64) ([][]float32, error) {
	rows := GetRowSlice(len(ids))
	t.rowArena().GetN(rows)
	if se := t.Server.RoutedFetchInto(t.announced.Load(), ids, rows); se != nil {
		t.rowArena().PutN(rows)
		PutRowSlice(rows)
		return nil, staleFromEmbed(se)
	}
	t.fetches.Add(1)
	t.rowsFetched.Add(int64(len(ids)))
	t.bytesFetched.Add(payloadBytes(len(ids), t.Server.Dim))
	return rows, nil
}

func (t *InProcess) TryWrite(ids []uint64, rows [][]float32) error {
	if se := t.Server.RoutedWrite(t.announced.Load(), ids, rows); se != nil {
		return staleFromEmbed(se)
	}
	t.writes.Add(1)
	t.rowsWritten.Add(int64(len(ids)))
	t.bytesWritten.Add(payloadBytes(len(ids), t.Server.Dim))
	return nil
}

func (t *InProcess) TryFingerprintPart(part, of int) (uint64, error) {
	return t.Server.FingerprintPart(part, of), nil
}

func (t *InProcess) TryCheckpoint() ([]byte, error) { return checkpointBytes(t.Server), nil }

// TryExportPart implements PartExporter (the anti-entropy source read);
// TryWriteRecovery and TryEndRecovery implement RecoveryStore (the rejoin
// transfer sink). Errorless in-process, like the other Try faces.
func (t *InProcess) TryExportPart(part, of int) ([]uint64, [][]float32, error) {
	ids, rows := t.Server.ExportPart(part, of)
	return ids, rows, nil
}

func (t *InProcess) TryWriteRecovery(ids []uint64, rows [][]float32) error {
	t.Server.WriteRecovery(ids, rows)
	return nil
}

func (t *InProcess) TryEndRecovery() error {
	t.Server.EndRecovery()
	return nil
}

// TryInstallRouting, TryAnnounceEpoch, TryBeginRecovery, TryExportPartIn,
// TryFingerprintPartIn, TryRetainOwned implement ReshardStore. The server
// holds the table by reference — no wire, no encoding.
func (t *InProcess) TryInstallRouting(rt *RoutingTable) error {
	t.Server.InstallRouting(rt.Epoch, rt)
	t.announced.Store(rt.Epoch)
	return nil
}

func (t *InProcess) TryAnnounceEpoch(epoch uint64) error {
	t.announced.Store(epoch)
	return nil
}

func (t *InProcess) TryBeginRecovery() error {
	t.Server.BeginRecovery()
	return nil
}

func (t *InProcess) TryExportPartIn(part, of, within, withinOf int) ([]uint64, [][]float32, error) {
	ids, rows := t.Server.ExportPartIn(part, of, within, withinOf)
	return ids, rows, nil
}

func (t *InProcess) TryFingerprintPartIn(part, of, within, withinOf int) (uint64, error) {
	return t.Server.FingerprintPartIn(part, of, within, withinOf), nil
}

func (t *InProcess) TryRetainOwned(self, of, replicate int) (int, error) {
	return t.Server.RetainOwned(self, of, replicate), nil
}

// staleFromEmbed converts the embed layer's fence rejection to the
// transport's attributed form, decoding the carried table when the server
// holds it in a form this transport understands (a *RoutingTable installed
// in-process, or encoded bytes installed over a wire).
func staleFromEmbed(se *embed.StaleRouting) *StaleRoutingError {
	out := &StaleRoutingError{Server: -1, Epoch: se.Epoch}
	switch tb := se.Table.(type) {
	case *RoutingTable:
		out.Table = tb
	case []byte:
		if rt, err := decodeRouting(tb); err == nil {
			out.Table = rt
		}
	}
	return out
}

// checkpointBytes serializes srv. Checkpointing to memory cannot fail; an
// encoder error means corrupted in-process state and dies loudly like every
// other errorless-path failure.
func checkpointBytes(srv *embed.Server) []byte {
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		panic(fmt.Sprintf("transport: checkpoint: %v", err))
	}
	return buf.Bytes()
}

// payloadBytes is the wire size of a fetch or write touching n rows.
func payloadBytes(n, dim int) int64 {
	return int64(n) * (idBytes + int64(dim)*4)
}

// SimNet wraps a server behind a simulated network link: every call pays a
// fixed per-call latency (one round trip) plus payload-bytes/bandwidth of
// serialization delay. It makes the overlap the pipeline buys visible in
// wall-clock terms and lets experiments sweep link speeds without a
// cluster.
type SimNet struct {
	Server *embed.Server
	// Latency is the per-call round-trip time.
	Latency time.Duration
	// Bandwidth is the link speed in bytes/second; 0 means infinite.
	Bandwidth float64

	arena *RowArena

	// announced is the routing epoch this link's data ops are declared
	// under (see InProcess.announced).
	announced atomic.Uint64

	fetches, writes            atomic.Int64
	rowsFetched, rowsWritten   atomic.Int64
	bytesFetched, bytesWritten atomic.Int64
	delayNs                    atomic.Int64
}

// NewSimNet returns a transport to srv over a simulated link.
func NewSimNet(srv *embed.Server, latency time.Duration, bandwidth float64) *SimNet {
	if latency < 0 || bandwidth < 0 {
		panic(fmt.Sprintf("transport: negative latency %v or bandwidth %v", latency, bandwidth))
	}
	return &SimNet{Server: srv, Latency: latency, Bandwidth: bandwidth, arena: Rows(srv.Dim)}
}

// Name implements Transport.
func (t *SimNet) Name() string { return "simnet" }

// Dim implements Transport.
func (t *SimNet) Dim() int { return t.Server.Dim }

// delay sleeps for the cost of moving bytes over the link and records it.
func (t *SimNet) delay(bytes int64) {
	d := t.Latency
	if t.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / t.Bandwidth * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
	t.delayNs.Add(int64(d))
}

// rowArena tolerates literal-constructed transports that skipped NewSimNet.
func (t *SimNet) rowArena() *RowArena {
	if t.arena != nil {
		return t.arena
	}
	return Rows(t.Server.Dim)
}

// Fetch implements Transport (see InProcess.Fetch for the fence contract).
func (t *SimNet) Fetch(ids []uint64) [][]float32 {
	rows, err := t.TryFetch(ids)
	if err != nil {
		panic(err)
	}
	return rows
}

// Write implements Transport.
func (t *SimNet) Write(ids []uint64, rows [][]float32) {
	if err := t.TryWrite(ids, rows); err != nil {
		panic(err)
	}
}

// Stats implements Transport.
func (t *SimNet) Stats() Stats {
	return Stats{
		Fetches:        t.fetches.Load(),
		Writes:         t.writes.Load(),
		RowsFetched:    t.rowsFetched.Load(),
		RowsWritten:    t.rowsWritten.Load(),
		BytesFetched:   t.bytesFetched.Load(),
		BytesWritten:   t.bytesWritten.Load(),
		SimulatedDelay: time.Duration(t.delayNs.Load()),
	}
}

// Fingerprint implements Store. Tier control ops are verification plumbing,
// off the measured data path, so the simulated link charges them nothing.
func (t *SimNet) Fingerprint() uint64 { return t.Server.Fingerprint() }

// FingerprintPart is the partition-scoped certificate (see FallibleStore).
func (t *SimNet) FingerprintPart(part, of int) uint64 { return t.Server.FingerprintPart(part, of) }

// Checkpoint implements Store.
func (t *SimNet) Checkpoint() []byte { return checkpointBytes(t.Server) }

// Shutdown implements Store (no remote process behind a simulated link).
func (t *SimNet) Shutdown() {}

// ServerStats implements Store.
func (t *SimNet) ServerStats() []Stats { return []Stats{t.Stats()} }

// TryFetch, TryWrite, TryFingerprintPart, TryCheckpoint implement
// FallibleStore; a simulated link models delay, not loss, so the only
// error they can return is the routing fence (the fault-injection tests
// wrap these to model loss). A fenced op still pays the link charge — the
// bytes moved and were refused, exactly like a real network.
func (t *SimNet) TryFetch(ids []uint64) ([][]float32, error) {
	bytes := payloadBytes(len(ids), t.Server.Dim)
	t.delay(bytes)
	rows := GetRowSlice(len(ids))
	t.rowArena().GetN(rows)
	if se := t.Server.RoutedFetchInto(t.announced.Load(), ids, rows); se != nil {
		t.rowArena().PutN(rows)
		PutRowSlice(rows)
		return nil, staleFromEmbed(se)
	}
	t.fetches.Add(1)
	t.rowsFetched.Add(int64(len(ids)))
	t.bytesFetched.Add(bytes)
	return rows, nil
}

func (t *SimNet) TryWrite(ids []uint64, rows [][]float32) error {
	bytes := payloadBytes(len(ids), t.Server.Dim)
	t.delay(bytes)
	if se := t.Server.RoutedWrite(t.announced.Load(), ids, rows); se != nil {
		return staleFromEmbed(se)
	}
	t.writes.Add(1)
	t.rowsWritten.Add(int64(len(ids)))
	t.bytesWritten.Add(bytes)
	return nil
}

func (t *SimNet) TryFingerprintPart(part, of int) (uint64, error) {
	return t.Server.FingerprintPart(part, of), nil
}

func (t *SimNet) TryCheckpoint() ([]byte, error) { return checkpointBytes(t.Server), nil }

// TryExportPart implements PartExporter; TryWriteRecovery/TryEndRecovery
// implement RecoveryStore. Recovery transfers move real payload, so the
// simulated link charges them like the data path (control probes stay free).
func (t *SimNet) TryExportPart(part, of int) ([]uint64, [][]float32, error) {
	ids, rows := t.Server.ExportPart(part, of)
	t.delay(payloadBytes(len(ids), t.Server.Dim))
	return ids, rows, nil
}

func (t *SimNet) TryWriteRecovery(ids []uint64, rows [][]float32) error {
	t.delay(payloadBytes(len(ids), t.Server.Dim))
	t.Server.WriteRecovery(ids, rows)
	return nil
}

func (t *SimNet) TryEndRecovery() error {
	t.Server.EndRecovery()
	return nil
}

// TryInstallRouting, TryAnnounceEpoch, TryBeginRecovery, TryExportPartIn,
// TryFingerprintPartIn, TryRetainOwned implement ReshardStore. Control ops
// are free like the other tier plumbing; the export moves real payload and
// is charged like the recovery stream.
func (t *SimNet) TryInstallRouting(rt *RoutingTable) error {
	t.Server.InstallRouting(rt.Epoch, rt)
	t.announced.Store(rt.Epoch)
	return nil
}

func (t *SimNet) TryAnnounceEpoch(epoch uint64) error {
	t.announced.Store(epoch)
	return nil
}

func (t *SimNet) TryBeginRecovery() error {
	t.Server.BeginRecovery()
	return nil
}

func (t *SimNet) TryExportPartIn(part, of, within, withinOf int) ([]uint64, [][]float32, error) {
	ids, rows := t.Server.ExportPartIn(part, of, within, withinOf)
	t.delay(payloadBytes(len(ids), t.Server.Dim))
	return ids, rows, nil
}

func (t *SimNet) TryFingerprintPartIn(part, of, within, withinOf int) (uint64, error) {
	return t.Server.FingerprintPartIn(part, of, within, withinOf), nil
}

func (t *SimNet) TryRetainOwned(self, of, replicate int) (int, error) {
	return t.Server.RetainOwned(self, of, replicate), nil
}
