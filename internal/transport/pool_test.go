package transport

import (
	"runtime"
	"sync"
	"testing"
)

// TestRowArenaReuse pins the free-list mechanics: a returned row is handed
// back out (no allocation), width mismatches are rejected at the pool
// boundary, and the batched Get/Put forms behave like their scalar pair.
func TestRowArenaReuse(t *testing.T) {
	a := NewRowArena(5)
	if a.Dim() != 5 {
		t.Fatalf("Dim() = %d, want 5", a.Dim())
	}
	r := a.Get()
	if len(r) != 5 {
		t.Fatalf("Get returned len %d, want 5", len(r))
	}
	a.Put(r)
	r2 := a.Get()
	if &r2[0] != &r[0] {
		t.Fatal("arena allocated a fresh row while the free list held one")
	}

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("short Put", func() { a.Put(make([]float32, 4)) })
	mustPanic("long PutN", func() { a.PutN([][]float32{make([]float32, 6)}) })
	mustPanic("zero-dim arena", func() { NewRowArena(0) })

	// PutN skips nil slots; GetN fills every slot at the arena width.
	a.PutN([][]float32{nil, r2, nil})
	dst := make([][]float32, 3)
	a.GetN(dst)
	for i, row := range dst {
		if len(row) != 5 {
			t.Fatalf("GetN slot %d has len %d, want 5", i, len(row))
		}
	}

	// The process-wide registry returns one shared arena per width.
	if Rows(41) != Rows(41) {
		t.Fatal("Rows(41) returned distinct arenas for one width")
	}
	if Rows(41) == Rows(42) {
		t.Fatal("Rows conflated arenas of different widths")
	}
}

// TestRowArenaConcurrent hammers one arena from several goroutines, each
// checking that a row it holds is never touched by anyone else between Get
// and Put — the ownership handoff the trainer/receiver/maintenance
// goroutines rely on. Run under -race this also certifies the mutex gives
// the required happens-before edge.
func TestRowArenaConcurrent(t *testing.T) {
	a := NewRowArena(8)
	const goroutines, iters = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				row := a.Get()
				stamp := float32(g*iters + i + 1)
				for k := range row {
					row[k] = stamp
				}
				runtime.Gosched()
				for k := range row {
					if row[k] != stamp {
						t.Errorf("goroutine %d iter %d: row[%d] = %v, want %v — pooled row aliased while owned",
							g, i, k, row[k], stamp)
						return
					}
				}
				a.Put(row)
			}
		}(g)
	}
	wg.Wait()
}

// TestRowSlicePool: recycled headers always come back with all-nil slots,
// whatever they referenced before, and undersized pooled headers are
// dropped rather than returned short.
func TestRowSlicePool(t *testing.T) {
	h := GetRowSlice(4)
	for i := range h {
		h[i] = []float32{float32(i)}
	}
	PutRowSlice(h)
	got := GetRowSlice(3)
	if len(got) != 3 {
		t.Fatalf("GetRowSlice(3) returned len %d", len(got))
	}
	for i, row := range got {
		if row != nil {
			t.Fatalf("recycled header slot %d still references a row", i)
		}
	}
	PutRowSlice(got)
	if big := GetRowSlice(1 << 12); len(big) != 1<<12 {
		t.Fatalf("GetRowSlice(4096) returned len %d", len(big))
	}
	PutRowSlice(nil) // must be a no-op
}

// TestRowMapPool: recycled maps come back empty.
func TestRowMapPool(t *testing.T) {
	m := GetRowMap()
	m[7] = []float32{1, 2}
	PutRowMap(m)
	if m2 := GetRowMap(); len(m2) != 0 {
		t.Fatalf("recycled row map still holds %d entries", len(m2))
	}
	PutRowMap(nil) // must be a no-op
}
