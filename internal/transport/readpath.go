package transport

import (
	"fmt"
	"sync"
	"time"
)

// The read-mostly fast path. Training owns the tier's write story — acked
// replicated writes, retry-then-condemn failover, panics when a partition
// is truly gone, because a trainer without its tier cannot make progress.
// An inference front end sharing the tier has the opposite contract: reads
// only, latency-bounded, and a failed lookup must become a shed request,
// never a dying process. ReadFetch is that contract: one attempt per live
// replica in ring order, no retry sleep, no dead-marking, an attributed
// *TierError returned as a value when every replica of a partition is
// unavailable — and a ReadPolicy hook so an admission-control layer (the
// serving circuit breaker) can veto servers it has observed failing or
// crawling *before* a request queues behind them.

// ReadPolicy steers the read path's per-server routing. AllowRead is
// consulted before each attempt (an open circuit breaker answers false,
// diverting the sub-batch to the next replica on the ring); ObserveRead is
// told the outcome of every attempt actually made — duration and error —
// which is the signal breakers and latency accounting feed on.
// Implementations must be safe for concurrent use: the scatter calls them
// from per-partition goroutines.
type ReadPolicy interface {
	AllowRead(server int) bool
	ObserveRead(server int, d time.Duration, err error)
}

// ReadStore is the face the serving path consumes: a fail-fast,
// policy-routed, errorful fetch. *ShardedStore implements it natively;
// AsReadStore adapts the single-server transports.
type ReadStore interface {
	ReadFetch(ids []uint64, pol ReadPolicy) ([][]float32, error)
	Dim() int
}

// ReadFetch implements ReadStore over the tier: the scatter/gather of
// Fetch, but per partition each replica is tried exactly once in ring
// order — skipping servers the tier knows are dead and servers pol vetoes —
// and exhaustion returns an attributed *TierError instead of panicking.
// Rows come from the same pooled allocator as Fetch (caller owns header and
// rows); on error every row already gathered is recycled before returning,
// so a shed request costs no pool capacity.
func (t *ShardedStore) ReadFetch(ids []uint64, pol ReadPolicy) ([][]float32, error) {
	sc := t.getScratch()
	defer t.putScratch(sc)
	out := GetRowSlice(len(ids))
	completed := false
	defer func() {
		if completed {
			return
		}
		Rows(t.dim).PutN(out)
		PutRowSlice(out)
	}()
	pos, bounds := sc.group.GroupByOwner(ids, t.servers)
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if t.serialScatter(bounds) {
		for part := 0; part < t.servers; part++ {
			if bounds[part] != bounds[part+1] {
				record(t.readPartition(sc, part, ids, pos, bounds, out, pol))
			}
		}
	} else {
		var mu sync.Mutex
		t.forEachPartition(bounds, func(part int) {
			err := t.readPartition(sc, part, ids, pos, bounds, out, pol)
			mu.Lock()
			record(err)
			mu.Unlock()
		})
	}
	if firstErr != nil {
		return nil, firstErr
	}
	completed = true
	return out, nil
}

// readPartition issues one partition's read sub-batch down its replica
// ring, one attempt per admissible server, and gathers the rows into the
// request-order result. Returns an attributed *TierError when no replica
// served it.
func (t *ShardedStore) readPartition(sc *shardScratch, part int, ids []uint64, pos, bounds []int, out [][]float32, pol ReadPolicy) error {
	run := pos[bounds[part]:bounds[part+1]]
	sub := sc.sub[part][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
	}
	sc.sub[part] = sub
	S := t.servers
	lastSrv, vetoed := part, false
	var lastErr error
	for k := 0; k < t.replicate; k++ {
		s := (part + k) % S
		// down, not just dead: a resyncing server must not serve reads
		// until its partitions verify — unverified rows never reach an
		// inference response.
		if t.down(s) {
			lastSrv = s
			continue
		}
		if pol != nil && !pol.AllowRead(s) {
			lastSrv, vetoed = s, true
			continue
		}
		g := t.gen[s].Load()
		rows, err := t.readOnce(s, sub, pol)
		if err != nil {
			// The read path tries each replica once per request, so the
			// retry budget spreads across requests: `retries` consecutive
			// read errors condemn the server (fenced by the generation
			// captured before the attempt), exactly like a write-path
			// exhaustion. This is how a read-only tier client (the serving
			// front end) learns a server died — DeadServers() feeds its
			// Reviver — instead of paying a failed attempt every request.
			if t.replicate > 1 && int(t.readFails[s].Add(1)) >= t.retries {
				t.markDeadIfGen(s, g, err)
			}
			lastSrv, lastErr = s, err
			continue
		}
		t.readFails[s].Store(0)
		if s != part {
			t.failovers.Add(1)
		}
		for i, p := range run {
			out[p] = rows[i]
		}
		PutRowSlice(rows)
		return nil
	}
	if lastErr == nil && vetoed {
		lastErr = fmt.Errorf("transport: every live replica vetoed by the read policy (breaker open)")
	}
	if lastErr == nil {
		lastErr = t.deadCause(lastSrv)
	}
	return &TierError{Op: "read", Partition: part, Server: lastSrv, Replicate: t.replicate, Cause: lastErr}
}

// readOnce is one timed, observed attempt against server s. Children
// without a fallible face cannot fail, so they take the errorless call.
func (t *ShardedStore) readOnce(s int, sub []uint64, pol ReadPolicy) (rows [][]float32, err error) {
	start := time.Now()
	if f := t.fall(s); f != nil {
		rows, err = f.TryFetch(sub)
	} else {
		rows = t.child(s).Fetch(sub)
	}
	if pol != nil {
		pol.ObserveRead(s, time.Since(start), err)
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// singleReadStore adapts a one-server Store to the ReadStore face: server
// index 0, one attempt, the store's fallible face when it has one.
type singleReadStore struct {
	st  Store
	f   FallibleStore
	dim int
}

// AsReadStore returns the read-mostly face of any tier client: a
// *ShardedStore serves it natively (replica routing, policy hooks), any
// other Store becomes a one-server read path on server index 0 whose
// failures (for fallible stores: a broken TCP link) surface as a *TierError
// with partition 0 — the same attribution contract at every tier width.
func AsReadStore(st Store) ReadStore {
	if rs, ok := st.(ReadStore); ok {
		return rs
	}
	f, _ := st.(FallibleStore)
	return &singleReadStore{st: st, f: f, dim: st.Dim()}
}

// Dim implements ReadStore.
func (s *singleReadStore) Dim() int { return s.dim }

// ReadFetch implements ReadStore.
func (s *singleReadStore) ReadFetch(ids []uint64, pol ReadPolicy) ([][]float32, error) {
	if pol != nil && !pol.AllowRead(0) {
		return nil, &TierError{Op: "read", Partition: 0, Server: 0, Replicate: 1,
			Cause: fmt.Errorf("transport: every live replica vetoed by the read policy (breaker open)")}
	}
	start := time.Now()
	var (
		rows [][]float32
		err  error
	)
	if s.f != nil {
		rows, err = s.f.TryFetch(ids)
	} else {
		rows = s.st.Fetch(ids)
	}
	if pol != nil {
		pol.ObserveRead(0, time.Since(start), err)
	}
	if err != nil {
		return nil, &TierError{Op: "read", Partition: 0, Server: 0, Replicate: 1, Cause: err}
	}
	return rows, nil
}
