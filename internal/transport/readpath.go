package transport

import (
	"fmt"
	"sync"
	"time"
)

// The read-mostly fast path. Training owns the tier's write story — acked
// replicated writes, retry-then-condemn failover, panics when a partition
// is truly gone, because a trainer without its tier cannot make progress.
// An inference front end sharing the tier has the opposite contract: reads
// only, latency-bounded, and a failed lookup must become a shed request,
// never a dying process. ReadFetch is that contract: one attempt per live
// replica in ring order, no retry sleep, no dead-marking, an attributed
// *TierError returned as a value when every replica of a partition is
// unavailable — and a ReadPolicy hook so an admission-control layer (the
// serving circuit breaker) can veto servers it has observed failing or
// crawling *before* a request queues behind them.

// ReadPolicy steers the read path's per-server routing. AllowRead is
// consulted before each attempt (an open circuit breaker answers false,
// diverting the sub-batch to the next replica on the ring); ObserveRead is
// told the outcome of every attempt actually made — duration and error —
// which is the signal breakers and latency accounting feed on.
// Implementations must be safe for concurrent use: the scatter calls them
// from per-partition goroutines.
type ReadPolicy interface {
	AllowRead(server int) bool
	ObserveRead(server int, d time.Duration, err error)
}

// ReadStore is the face the serving path consumes: a fail-fast,
// policy-routed, errorful fetch. *ShardedStore implements it natively;
// AsReadStore adapts the single-server transports.
type ReadStore interface {
	ReadFetch(ids []uint64, pol ReadPolicy) ([][]float32, error)
	Dim() int
}

// ReadFetch implements ReadStore over the tier: the scatter/gather of
// Fetch, but per partition each replica is tried exactly once in ring
// order — skipping servers the tier knows are dead and servers pol vetoes —
// and exhaustion returns an attributed *TierError instead of panicking.
// Rows come from the same pooled allocator as Fetch (caller owns header and
// rows); on error every row already gathered is recycled before returning,
// so a shed request costs no pool capacity.
//
// Like Fetch, each pass runs under the routing install barrier; a server
// rejecting a sub-batch as stale-routed aborts the pass, which adopts the
// newer table and reissues — even the fail-fast read path self-heals
// across a reshard, because the fence is routing disagreement, not server
// trouble (it is invisible to the read policy and the failure streaks).
func (t *ShardedStore) ReadFetch(ids []uint64, pol ReadPolicy) ([][]float32, error) {
	sc := t.getScratch()
	defer t.putScratch(sc)
	out := GetRowSlice(len(ids))
	completed := false
	defer func() {
		if completed {
			return
		}
		Rows(t.dim).PutN(out)
		PutRowSlice(out)
	}()
	for attempt := 0; ; attempt++ {
		stale, err := t.readFetchOnce(sc, ids, out, pol)
		if err != nil {
			return nil, err
		}
		if stale == nil {
			break
		}
		Rows(t.dim).PutN(out)
		clear(out)
		if attempt >= staleRetryLimit {
			return nil, &TierError{Op: "read", Partition: -1, Server: stale.Server, Replicate: t.replicate, Cause: stale}
		}
		t.adoptRouting(stale)
	}
	completed = true
	return out, nil
}

// readFetchOnce runs one read pass under the routing install barrier. A
// stale-routing fence outranks a replica failure: the failure may be an
// artifact of routing by the wrong table, so the caller adopts and
// reissues before believing it.
func (t *ShardedStore) readFetchOnce(sc *shardScratch, ids []uint64, out [][]float32, pol ReadPolicy) (*StaleRoutingError, error) {
	t.installMu.RLock()
	defer t.installMu.RUnlock()
	rt := t.routing.Load()
	if !rt.Settled() {
		return t.readResharding(rt, ids, out, pol)
	}
	S := rt.NewS
	pos, bounds := sc.group.GroupByOwner(ids, S)
	var (
		stale    *StaleRoutingError
		firstErr error
	)
	record := func(se *StaleRoutingError, err error) {
		if se != nil && stale == nil {
			stale = se
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if t.serialScatter(bounds, S) {
		for part := 0; part < S; part++ {
			if bounds[part] != bounds[part+1] {
				record(t.readPartition(sc, part, S, ids, pos, bounds, out, pol))
			}
		}
	} else {
		var mu sync.Mutex
		t.forEachPartition(bounds, S, func(part int) {
			se, err := t.readPartition(sc, part, S, ids, pos, bounds, out, pol)
			mu.Lock()
			record(se, err)
			mu.Unlock()
		})
	}
	if stale != nil {
		return stale, nil
	}
	return nil, firstErr
}

// readResharding serves a read while a reshard is in flight: ids group by
// their current read ring (old-space until a partition's reads cut over),
// exactly like fetchResharding. Serial and allocating; the settled path is
// untouched.
func (t *ShardedStore) readResharding(rt *RoutingTable, ids []uint64, out [][]float32, pol ReadPolicy) (*StaleRoutingError, error) {
	for rg, idxs := range groupByRing(rt, ids) {
		sub := make([]uint64, len(idxs))
		for j, i := range idxs {
			sub[j] = ids[i]
		}
		rows, se, err := t.readRingSub(rg.base, rg.width, sub, pol)
		if se != nil || err != nil {
			return se, err
		}
		for j, i := range idxs {
			out[i] = rows[j]
		}
		PutRowSlice(rows)
	}
	return nil, nil
}

// readPartition issues one partition's read sub-batch down its replica
// ring and gathers the rows into the request-order result.
func (t *ShardedStore) readPartition(sc *shardScratch, part, S int, ids []uint64, pos, bounds []int, out [][]float32, pol ReadPolicy) (*StaleRoutingError, error) {
	run := pos[bounds[part]:bounds[part+1]]
	sub := sc.sub[part][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
	}
	sc.sub[part] = sub
	rows, se, err := t.readRingSub(part, S, sub, pol)
	if se != nil || err != nil {
		return se, err
	}
	for i, p := range run {
		out[p] = rows[i]
	}
	PutRowSlice(rows)
	return nil, nil
}

// readRingSub reads one sub-batch down the replica ring based at base in a
// width-wide partition space: one attempt per admissible live server, an
// attributed *TierError when none served it, a *StaleRoutingError when a
// server fenced the attempt (never observed, never counted — routing
// disagreement is not server trouble).
func (t *ShardedStore) readRingSub(base, width int, sub []uint64, pol ReadPolicy) ([][]float32, *StaleRoutingError, error) {
	depth := t.replicate
	if depth > width {
		depth = width
	}
	lastSrv, vetoed := base, false
	var lastErr error
	for k := 0; k < depth; k++ {
		s := (base + k) % width
		// down, not just dead: a resyncing server must not serve reads
		// until its partitions verify — unverified rows never reach an
		// inference response.
		if t.down(s) {
			lastSrv = s
			continue
		}
		if pol != nil && !pol.AllowRead(s) {
			lastSrv, vetoed = s, true
			continue
		}
		g := t.gen[s].Load()
		rows, err := t.readOnce(s, sub, pol)
		if err != nil {
			if se := asStaleRouting(err); se != nil {
				se.Server = s
				return nil, se, nil
			}
			// The read path tries each replica once per request, so the
			// retry budget spreads across requests: `retries` consecutive
			// read errors condemn the server (fenced by the generation
			// captured before the attempt), exactly like a write-path
			// exhaustion. This is how a read-only tier client (the serving
			// front end) learns a server died — DeadServers() feeds its
			// Reviver — instead of paying a failed attempt every request.
			if t.replicate > 1 && int(t.readFails[s].Add(1)) >= t.retries {
				t.markDeadIfGen(s, g, err)
			}
			lastSrv, lastErr = s, err
			continue
		}
		t.readFails[s].Store(0)
		if s != base {
			t.failovers.Add(1)
		}
		return rows, nil, nil
	}
	if lastErr == nil && vetoed {
		lastErr = fmt.Errorf("transport: every live replica vetoed by the read policy (breaker open)")
	}
	if lastErr == nil {
		lastErr = t.deadCause(lastSrv)
	}
	return nil, nil, &TierError{Op: "read", Partition: base, Server: lastSrv, Replicate: t.replicate, Cause: lastErr}
}

// readOnce is one timed, observed attempt against server s. Children
// without a fallible face cannot fail, so they take the errorless call.
// A stale-routing fence short-circuits *before* the policy observes it:
// the fence carries no latency or health signal about the server.
func (t *ShardedStore) readOnce(s int, sub []uint64, pol ReadPolicy) (rows [][]float32, err error) {
	start := time.Now()
	if f := t.fall(s); f != nil {
		rows, err = f.TryFetch(sub)
	} else {
		rows = t.child(s).Fetch(sub)
	}
	if asStaleRouting(err) != nil {
		return nil, err
	}
	if pol != nil {
		pol.ObserveRead(s, time.Since(start), err)
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// singleReadStore adapts a one-server Store to the ReadStore face: server
// index 0, one attempt, the store's fallible face when it has one.
type singleReadStore struct {
	st  Store
	f   FallibleStore
	dim int
}

// AsReadStore returns the read-mostly face of any tier client: a
// *ShardedStore serves it natively (replica routing, policy hooks), any
// other Store becomes a one-server read path on server index 0 whose
// failures (for fallible stores: a broken TCP link) surface as a *TierError
// with partition 0 — the same attribution contract at every tier width.
func AsReadStore(st Store) ReadStore {
	if rs, ok := st.(ReadStore); ok {
		return rs
	}
	f, _ := st.(FallibleStore)
	return &singleReadStore{st: st, f: f, dim: st.Dim()}
}

// Dim implements ReadStore.
func (s *singleReadStore) Dim() int { return s.dim }

// ReadFetch implements ReadStore.
func (s *singleReadStore) ReadFetch(ids []uint64, pol ReadPolicy) ([][]float32, error) {
	if pol != nil && !pol.AllowRead(0) {
		return nil, &TierError{Op: "read", Partition: 0, Server: 0, Replicate: 1,
			Cause: fmt.Errorf("transport: every live replica vetoed by the read policy (breaker open)")}
	}
	start := time.Now()
	var (
		rows [][]float32
		err  error
	)
	if s.f != nil {
		rows, err = s.f.TryFetch(ids)
	} else {
		rows = s.st.Fetch(ids)
	}
	if pol != nil {
		pol.ObserveRead(0, time.Since(start), err)
	}
	if err != nil {
		return nil, &TierError{Op: "read", Partition: 0, Server: 0, Replicate: 1, Cause: err}
	}
	return rows, nil
}
