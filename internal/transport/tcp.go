package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/embed"
)

// This file is the trainer↔embedding-server wire: TCPLink, a pipelined RPC
// client implementing Transport over one TCP connection, and ServeEmbed,
// the accept loop that exposes an embed.Server to it. Framing and number
// encoding come from codec.go; requests are tagged with a sequence number
// so many calls can be in flight at once (the LRPP dispatcher overlaps up
// to ℒ prefetches with write-backs on the same link), and a writer
// goroutine coalesces queued requests into one buffered flush.

// linkMagic opens every link connection: "BGL" + protocol version.
const linkMagic uint32 = 'B'<<24 | 'G'<<16 | 'L'<<8 | 1

// Link protocol ops (first body byte of a link frame). New ops append at
// the end: existing op values are wire constants shared across process
// generations.
const (
	opFetch byte = 0x10 + iota
	opWrite
	opFingerprint
	opCheckpoint
	opShutdown
	opResp // server → client: u64 seq, then the op-specific result
	opExportPart
	opWriteRecovery
	opEndRecovery
	opRespErr // server → client: u64 seq, kind byte, then the error payload
	opBeginRecovery
	opInstallRouting
	opAnnounceEpoch
	opExportPartIn
	opFingerprintPartIn
	opRetainOwned
)

// opRespErr kinds.
const (
	respErrGeneric byte = iota
	// respErrStale is the routing fence: u64 epoch, then the server's
	// installed routing table in encodeRouting form.
	respErrStale
)

// maxFrame bounds a single link or mesh frame; a length prefix beyond it is
// treated as a corrupt stream rather than an allocation request.
const maxFrame = 1 << 30

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// TCPLink is a Transport over one TCP connection to an embedding-server
// process. Calls are pipelined: each request carries a sequence number, a
// writer goroutine coalesces queued requests into single buffered flushes,
// and a reader goroutine demultiplexes responses to their callers — so
// concurrent Fetch (prefetch) and Write (write-back maintenance) calls
// overlap on the wire exactly as they do on the in-process transport.
//
// TCPLink is the one Store that can genuinely fail, so it carries both
// faces of the tier contract: the errorless Transport/Store methods panic
// on a broken connection (a worker with an unreplicated tier cannot make
// progress, so dying loudly is the correct degradation), while the
// FallibleStore methods (TryFetch, TryWrite, …) return the link error
// instead — the path a replicated ShardedStore uses to retry, declare the
// server dead, and fail over to a ring replica.
type TCPLink struct {
	conn  net.Conn
	dim   int
	arena *RowArena

	reqCh chan linkReq

	mu      sync.Mutex
	pending map[uint64]chan []byte // seq → response body (after the seq field)
	seq     uint64
	broken  error

	wg sync.WaitGroup

	fetches, writes            atomic.Int64
	rowsFetched, rowsWritten   atomic.Int64
	bytesFetched, bytesWritten atomic.Int64
}

type linkReq struct {
	body []byte
}

// DialTCPLink connects to an embedding server at addr, retrying for up to
// timeout (processes of one run start in arbitrary order).
func DialTCPLink(addr string, timeout time.Duration) (*TCPLink, error) {
	conn, err := dialRetry(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial embedding server %s: %w", addr, err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], linkMagic)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: link handshake: %w", err)
	}
	var ack [8]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: link handshake: %w", err)
	}
	if m := binary.LittleEndian.Uint32(ack[:4]); m != linkMagic {
		conn.Close()
		return nil, fmt.Errorf("transport: link handshake: magic %#x from %s", m, addr)
	}
	dim := int(binary.LittleEndian.Uint32(ack[4:]))
	if dim <= 0 {
		conn.Close()
		return nil, fmt.Errorf("transport: link handshake: server at %s declared dim %d", addr, dim)
	}
	t := &TCPLink{
		conn:    conn,
		dim:     dim,
		arena:   Rows(dim),
		reqCh:   make(chan linkReq, 64),
		pending: make(map[uint64]chan []byte),
	}
	t.wg.Add(2)
	go t.writeLoop()
	go t.readLoop()
	return t, nil
}

// dialRetry dials addr until it succeeds or timeout elapses.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// writeLoop drains the request queue into the socket, flushing only when
// the queue goes momentarily empty — back-to-back requests share one flush.
// On a write error it fails the pending callers and keeps draining the
// queue until Close, so a caller mid-enqueue can never block forever on a
// dead link (its response channel is already closed, so its call fails with
// the link error — an error on the Try path, a panic on the errorless one).
func (t *TCPLink) writeLoop() {
	defer t.wg.Done()
	fail := func(err error) {
		t.failPending(err)
		for range t.reqCh {
		}
	}
	bw := bufio.NewWriterSize(t.conn, 1<<16)
	for req := range t.reqCh {
		if err := writeFrame(bw, req.body); err != nil {
			fail(err)
			return
		}
		for {
			select {
			case req, ok := <-t.reqCh:
				if !ok {
					bw.Flush()
					return
				}
				if err := writeFrame(bw, req.body); err != nil {
					fail(err)
					return
				}
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
	}
	bw.Flush()
}

// readLoop demultiplexes responses to the callers waiting on them.
func (t *TCPLink) readLoop() {
	defer t.wg.Done()
	br := bufio.NewReaderSize(t.conn, 1<<16)
	for {
		body, err := readFrame(br)
		if err != nil {
			t.failPending(err)
			return
		}
		if len(body) < 9 || (body[0] != opResp && body[0] != opRespErr) {
			t.failPending(fmt.Errorf("transport: malformed link response (%d bytes)", len(body)))
			return
		}
		seq := binary.LittleEndian.Uint64(body[1:9])
		t.mu.Lock()
		ch := t.pending[seq]
		delete(t.pending, seq)
		t.mu.Unlock()
		if ch != nil {
			// The full frame, op byte included: callErr tells a result from a
			// per-request error (opRespErr — the routing fence) by it.
			ch <- body
		}
	}
}

// failPending marks the link broken, wakes every in-flight caller, and
// closes the connection. The close matters for liveness: on a half-open
// socket the writer goroutine can be wedged inside conn.Write while the
// reader already declared the link dead — without the close it would never
// return to drain the request queue, and a caller mid-enqueue could block
// forever on a full reqCh.
func (t *TCPLink) failPending(err error) {
	t.mu.Lock()
	if t.broken == nil {
		t.broken = err
	}
	for seq, ch := range t.pending {
		close(ch)
		delete(t.pending, seq)
	}
	t.mu.Unlock()
	t.conn.Close()
}

// linkErr wraps the broken-link cause with the peer's address so a failover
// (or crash) is attributable to a server.
func (t *TCPLink) linkErr(err error) error {
	return fmt.Errorf("transport: tcp link to %s broken: %w", t.conn.RemoteAddr(), err)
}

// call is the errorless form of callErr: a broken link panics, the contract
// of the errorless Store face.
func (t *TCPLink) call(op byte, body func(b []byte) []byte) []byte {
	resp, err := t.callErr(op, body)
	if err != nil {
		panic(err.Error())
	}
	return resp
}

// callErr sends one request (op + body after the seq field) and blocks for
// the response body, returning an error once the link is broken.
//
// The pending registration and the enqueue race the reader's failPending:
// a request registered before the failure is woken by it (its channel is
// closed before the writer drains the queue), but a request that would
// *enqueue after* the failure must not slip in behind the drain. The broken
// flag is therefore re-checked under the lock after the frame is built —
// enqueue-after-fail deterministically errors out without touching the
// queue — and a failure that lands between that check and the channel send
// is still safe: failPending has already closed this caller's pending
// channel (registered above), so the receive below returns immediately,
// and the writer's drain loop consumes the stale frame.
func (t *TCPLink) callErr(op byte, body func(b []byte) []byte) ([]byte, error) {
	t.mu.Lock()
	if err := t.broken; err != nil {
		t.mu.Unlock()
		return nil, t.linkErr(err)
	}
	seq := t.seq
	t.seq++
	ch := make(chan []byte, 1)
	t.pending[seq] = ch
	t.mu.Unlock()

	b := make([]byte, 0, 64)
	b = append(b, op)
	b = putU64(b, seq)
	if body != nil {
		b = body(b)
	}
	t.mu.Lock()
	if err := t.broken; err != nil {
		delete(t.pending, seq) // failPending may already have closed+removed it
		t.mu.Unlock()
		return nil, t.linkErr(err)
	}
	t.mu.Unlock()
	t.reqCh <- linkReq{body: b}
	resp, ok := <-ch
	if !ok {
		t.mu.Lock()
		err := t.broken
		t.mu.Unlock()
		return nil, t.linkErr(err)
	}
	if resp[0] == opRespErr {
		return nil, decodeLinkErr(resp[9:])
	}
	return resp[9:], nil
}

// decodeLinkErr parses an opRespErr payload: a per-request failure the
// link survives (unlike a broken connection). The stale-routing kind
// reconstructs the server's fence rejection, table included.
func decodeLinkErr(pay []byte) error {
	if len(pay) < 1 {
		return fmt.Errorf("transport: malformed link error response")
	}
	switch pay[0] {
	case respErrStale:
		r := &wireReader{b: pay[1:]}
		epoch := r.u64()
		if r.err != nil {
			return fmt.Errorf("transport: malformed stale-routing response")
		}
		se := &StaleRoutingError{Server: -1, Epoch: epoch}
		if rt, err := decodeRouting(r.b); err == nil {
			se.Table = rt
		}
		return se
	default:
		return fmt.Errorf("transport: server error: %s", string(pay[1:]))
	}
}

// Name implements Transport.
func (t *TCPLink) Name() string { return "tcp" }

// Dim implements Transport (the width the server declared at handshake).
func (t *TCPLink) Dim() int { return t.dim }

// Fetch implements Transport. The response matrix is decoded straight into
// pooled arena rows, so the decode allocates nothing once the pool is warm.
func (t *TCPLink) Fetch(ids []uint64) [][]float32 {
	rows, err := t.TryFetch(ids)
	if err != nil {
		panic(err.Error())
	}
	return rows
}

// TryFetch implements FallibleStore: Fetch that reports a broken link
// instead of panicking. A *malformed* response still panics — protocol
// corruption is a bug, not a failure to route around.
func (t *TCPLink) TryFetch(ids []uint64) ([][]float32, error) {
	resp, err := t.callErr(opFetch, func(b []byte) []byte { return putU64s(b, ids) })
	if err != nil {
		return nil, err
	}
	r := &wireReader{b: resp}
	n := r.count(4)
	if r.err != nil || n != len(ids)*t.dim {
		panic(fmt.Sprintf("transport: fetch response for %d ids carried %d floats", len(ids), n))
	}
	reg := r.take(n, 4)
	rows := GetRowSlice(len(ids))
	t.arena.GetN(rows)
	for i, row := range rows {
		off := i * t.dim * 4
		for k := range row {
			row[k] = math.Float32frombits(binary.LittleEndian.Uint32(reg[off+4*k:]))
		}
	}
	t.fetches.Add(1)
	t.rowsFetched.Add(int64(len(ids)))
	t.bytesFetched.Add(payloadBytes(len(ids), t.dim))
	return rows, nil
}

// Write implements Transport. It returns only after the server applied the
// rows: the LRPP consistency window needs iteration x−ℒ's write-backs
// durably on the servers before iteration x's prefetch is issued, so the
// ack round trip is part of the contract, not overhead. (Under replication
// the durability contract becomes "acked by every live replica"; the
// replicated tier client issues one such acked write per live replica.)
func (t *TCPLink) Write(ids []uint64, rows [][]float32) {
	if err := t.TryWrite(ids, rows); err != nil {
		panic(err.Error())
	}
}

// TryWrite implements FallibleStore: Write that reports a broken link.
func (t *TCPLink) TryWrite(ids []uint64, rows [][]float32) error {
	if len(ids) != len(rows) {
		panic("transport: Write ids/rows length mismatch")
	}
	_, err := t.callErr(opWrite, func(b []byte) []byte {
		b = putU64s(b, ids)
		for _, row := range rows {
			b = putF32s(b, row)
		}
		return b
	})
	if err != nil {
		return err
	}
	t.writes.Add(1)
	t.rowsWritten.Add(int64(len(ids)))
	t.bytesWritten.Add(payloadBytes(len(ids), t.dim))
	return nil
}

// Fingerprint asks the server for embed.Server.Fingerprint — the cheap
// remote state certificate used by distributed verification.
func (t *TCPLink) Fingerprint() uint64 { return t.FingerprintPart(0, 1) }

// FingerprintPart asks the server for the partition-scoped certificate
// embed.Server.FingerprintPart(part, of) — what a replicated tier sums so
// replicated rows are counted once.
func (t *TCPLink) FingerprintPart(part, of int) uint64 {
	fp, err := t.TryFingerprintPart(part, of)
	if err != nil {
		panic(err.Error())
	}
	return fp
}

// TryFingerprintPart implements FallibleStore.
func (t *TCPLink) TryFingerprintPart(part, of int) (uint64, error) {
	resp, err := t.callErr(opFingerprint, func(b []byte) []byte {
		b = putU32(b, uint32(part))
		return putU32(b, uint32(of))
	})
	if err != nil {
		return 0, err
	}
	r := &wireReader{b: resp}
	return r.u64(), nil
}

// Checkpoint streams the server's checkpoint (every shard, in order) and
// returns its bytes; embed.RestoreServer rebuilds an identical local copy,
// which is how the driver diffs a remote run against a local baseline.
func (t *TCPLink) Checkpoint() []byte {
	b, err := t.TryCheckpoint()
	if err != nil {
		panic(err.Error())
	}
	return b
}

// TryCheckpoint implements FallibleStore.
func (t *TCPLink) TryCheckpoint() ([]byte, error) {
	return t.callErr(opCheckpoint, nil)
}

// TryExportPart implements PartExporter: pull one partition's materialized
// snapshot from the server (the anti-entropy source read of a rejoin).
// Off the hot path, so rows are plainly allocated, not pooled.
func (t *TCPLink) TryExportPart(part, of int) ([]uint64, [][]float32, error) {
	resp, err := t.callErr(opExportPart, func(b []byte) []byte {
		b = putU32(b, uint32(part))
		return putU32(b, uint32(of))
	})
	if err != nil {
		return nil, nil, err
	}
	ids, rows := t.decodeExport(resp)
	return ids, rows, nil
}

// decodeExport parses an export response: ids, then a flat float matrix.
func (t *TCPLink) decodeExport(resp []byte) ([]uint64, [][]float32) {
	r := &wireReader{b: resp}
	ids := r.u64s()
	n := r.count(4)
	if r.err != nil || n != len(ids)*t.dim {
		panic(fmt.Sprintf("transport: export response for %d ids carried %d floats", len(ids), n))
	}
	reg := r.take(n, 4)
	flat := make([]float32, n)
	rows := make([][]float32, len(ids))
	for i := range rows {
		rows[i] = flat[i*t.dim : (i+1)*t.dim]
		off := i * t.dim * 4
		for k := range rows[i] {
			rows[i][k] = math.Float32frombits(binary.LittleEndian.Uint32(reg[off+4*k:]))
		}
	}
	return ids, rows
}

// TryWriteRecovery implements RecoveryStore: a bulk recovery write the
// server filters through its freshness set (embed.Server.WriteRecovery).
func (t *TCPLink) TryWriteRecovery(ids []uint64, rows [][]float32) error {
	if len(ids) != len(rows) {
		panic("transport: WriteRecovery ids/rows length mismatch")
	}
	_, err := t.callErr(opWriteRecovery, func(b []byte) []byte {
		b = putU64s(b, ids)
		for _, row := range rows {
			b = putF32s(b, row)
		}
		return b
	})
	return err
}

// TryEndRecovery implements RecoveryStore: close the server's recovery
// window once the whole tier has certified the rejoin.
func (t *TCPLink) TryEndRecovery() error {
	_, err := t.callErr(opEndRecovery, nil)
	return err
}

// TryInstallRouting implements ReshardStore: ship rt to the server (which
// installs it monotonically and keeps the encoded bytes to hand back in
// fence rejections) and mark this connection announced at rt.Epoch.
func (t *TCPLink) TryInstallRouting(rt *RoutingTable) error {
	_, err := t.callErr(opInstallRouting, func(b []byte) []byte {
		return encodeRouting(b, rt)
	})
	return err
}

// TryAnnounceEpoch implements ReshardStore: declare the epoch this
// connection's future data ops are routed by.
func (t *TCPLink) TryAnnounceEpoch(epoch uint64) error {
	_, err := t.callErr(opAnnounceEpoch, func(b []byte) []byte {
		return putU64(b, epoch)
	})
	return err
}

// TryBeginRecovery implements ReshardStore: open the server's recovery
// window ahead of a migration stream.
func (t *TCPLink) TryBeginRecovery() error {
	_, err := t.callErr(opBeginRecovery, nil)
	return err
}

// TryExportPartIn implements ReshardStore: the partition-intersection
// export (embed.Server.ExportPartIn).
func (t *TCPLink) TryExportPartIn(part, of, within, withinOf int) ([]uint64, [][]float32, error) {
	resp, err := t.callErr(opExportPartIn, func(b []byte) []byte {
		b = putU32(b, uint32(part))
		b = putU32(b, uint32(of))
		b = putU32(b, uint32(within))
		return putU32(b, uint32(withinOf))
	})
	if err != nil {
		return nil, nil, err
	}
	ids, rows := t.decodeExport(resp)
	return ids, rows, nil
}

// TryFingerprintPartIn implements ReshardStore: the intersection digest.
func (t *TCPLink) TryFingerprintPartIn(part, of, within, withinOf int) (uint64, error) {
	resp, err := t.callErr(opFingerprintPartIn, func(b []byte) []byte {
		b = putU32(b, uint32(part))
		b = putU32(b, uint32(of))
		b = putU32(b, uint32(within))
		return putU32(b, uint32(withinOf))
	})
	if err != nil {
		return 0, err
	}
	r := &wireReader{b: resp}
	return r.u64(), nil
}

// TryRetainOwned implements ReshardStore: settle-time cleanup of rows the
// new routing moved away.
func (t *TCPLink) TryRetainOwned(self, of, replicate int) (int, error) {
	resp, err := t.callErr(opRetainOwned, func(b []byte) []byte {
		b = putU32(b, uint32(self))
		b = putU32(b, uint32(of))
		return putU32(b, uint32(replicate))
	})
	if err != nil {
		return 0, err
	}
	r := &wireReader{b: resp}
	return int(r.u64()), nil
}

// Shutdown implements Store: ask the serving process to stop accepting and
// return from ServeEmbed once the ack is on the wire.
func (t *TCPLink) Shutdown() {
	t.call(opShutdown, nil)
}

// ServerStats implements Store (a one-server tier).
func (t *TCPLink) ServerStats() []Stats { return []Stats{t.Stats()} }

// Close tears the connection down. In-flight calls panic, so quiesce
// callers first.
func (t *TCPLink) Close() {
	close(t.reqCh)
	t.conn.Close()
	t.wg.Wait()
}

// Stats implements Transport.
func (t *TCPLink) Stats() Stats {
	return Stats{
		Fetches:      t.fetches.Load(),
		Writes:       t.writes.Load(),
		RowsFetched:  t.rowsFetched.Load(),
		RowsWritten:  t.rowsWritten.Load(),
		BytesFetched: t.bytesFetched.Load(),
		BytesWritten: t.bytesWritten.Load(),
	}
}

// ServeEmbed serves srv over lis: the embedding-server process's main loop.
// Each accepted connection gets a handler goroutine that answers Fetch /
// Write / Fingerprint / Checkpoint requests in order (per-connection FIFO
// keeps the write-ack contract trivially true; cross-connection parallelism
// comes from each trainer holding its own link, and shard parallelism from
// embed.Server itself). ServeEmbed returns after a client sends the
// shutdown op, or with the first accept error after lis is closed
// externally.
func ServeEmbed(lis net.Listener, srv *embed.Server) error {
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		done  = make(chan struct{})
		once  sync.Once
	)
	shutdown := func() {
		once.Do(func() {
			close(done)
			lis.Close()
			mu.Lock()
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for {
		conn, err := lis.Accept()
		if err != nil {
			wg.Wait()
			select {
			case <-done:
				return nil // clean shutdown requested by a client
			default:
				return err
			}
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			serveEmbedConn(conn, srv, shutdown)
		}(conn)
	}
}

// linkStaleResp builds the opRespErr frame for a routing fence rejection:
// the server's installed epoch, then its installed table so the client can
// adopt it in one round trip.
func linkStaleResp(seq uint64, se *embed.StaleRouting) []byte {
	resp := make([]byte, 0, 64)
	resp = append(resp, opRespErr)
	resp = putU64(resp, seq)
	resp = append(resp, respErrStale)
	resp = putU64(resp, se.Epoch)
	switch tb := se.Table.(type) {
	case []byte:
		resp = append(resp, tb...)
	case *RoutingTable:
		resp = encodeRouting(resp, tb)
	}
	return resp
}

// serveEmbedConn answers one client's requests until EOF or shutdown.
func serveEmbedConn(conn net.Conn, srv *embed.Server, shutdown func()) {
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hello[:]) != linkMagic {
		return
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	var ack [8]byte
	binary.LittleEndian.PutUint32(ack[:4], linkMagic)
	binary.LittleEndian.PutUint32(ack[4:], uint32(srv.Dim))
	if _, err := bw.Write(ack[:]); err != nil {
		return
	}
	if bw.Flush() != nil {
		return
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	// announced is this connection's declared routing epoch (see
	// embed.Server.RoutedFetchInto): data ops are fenced against the
	// server's installed epoch, and an install or announce op on this
	// connection moves it. Per-connection, not per-server — each tier
	// client adopts a new table at its own pace.
	var announced uint64
	for {
		body, err := readFrame(br)
		if err != nil {
			return
		}
		if len(body) < 9 {
			return
		}
		op := body[0]
		seq := binary.LittleEndian.Uint64(body[1:9])
		r := &wireReader{b: body[9:]}

		resp := make([]byte, 0, 64)
		resp = append(resp, opResp)
		resp = putU64(resp, seq)
		switch op {
		case opFetch:
			ids := r.u64s()
			if r.err != nil {
				return
			}
			// Serve out of the arena and encode row by row behind a single
			// matrix count — no flat staging copy, and the rows go straight
			// back to the pool once encoded.
			rows := GetRowSlice(len(ids))
			arena := Rows(srv.Dim)
			arena.GetN(rows)
			if se := srv.RoutedFetchInto(announced, ids, rows); se != nil {
				arena.PutN(rows)
				PutRowSlice(rows)
				resp = linkStaleResp(seq, se)
				break
			}
			resp = putU32(resp, uint32(len(ids)*srv.Dim))
			for _, row := range rows {
				resp = putF32sRaw(resp, row)
			}
			arena.PutN(rows)
			PutRowSlice(rows)
		case opWrite:
			ids := r.u64s()
			if r.err != nil {
				return
			}
			rows := GetRowSlice(len(ids))
			arena := Rows(srv.Dim)
			arena.GetN(rows)
			ok := true
			for i := range rows {
				if !r.f32sInto(rows[i]) {
					ok = false
					break
				}
			}
			if !ok || r.err != nil {
				arena.PutN(rows)
				PutRowSlice(rows)
				return
			}
			se := srv.RoutedWrite(announced, ids, rows)
			arena.PutN(rows)
			PutRowSlice(rows)
			if se != nil {
				resp = linkStaleResp(seq, se)
			}
		case opFingerprint:
			// Body: two u32s (partition, split width); an empty body — older
			// clients — means the whole server (partition 0 of 1).
			part, of := uint32(0), uint32(1)
			if len(r.b) > 0 {
				part, of = r.u32(), r.u32()
				if r.err != nil || of == 0 || part >= of {
					return
				}
			}
			resp = putU64(resp, srv.FingerprintPart(int(part), int(of)))
		case opCheckpoint:
			var buf bytes.Buffer
			if err := srv.Checkpoint(&buf); err != nil {
				return
			}
			resp = append(resp, buf.Bytes()...)
		case opExportPart:
			part, of := r.u32(), r.u32()
			if r.err != nil || of == 0 || part >= of {
				return
			}
			ids, rows := srv.ExportPart(int(part), int(of))
			resp = putU64s(resp, ids)
			resp = putU32(resp, uint32(len(ids)*srv.Dim))
			for _, row := range rows {
				resp = putF32sRaw(resp, row)
			}
		case opWriteRecovery:
			ids := r.u64s()
			if r.err != nil {
				return
			}
			rows := GetRowSlice(len(ids))
			arena := Rows(srv.Dim)
			arena.GetN(rows)
			ok := true
			for i := range rows {
				if !r.f32sInto(rows[i]) {
					ok = false
					break
				}
			}
			if !ok || r.err != nil {
				arena.PutN(rows)
				PutRowSlice(rows)
				return
			}
			srv.WriteRecovery(ids, rows)
			arena.PutN(rows)
			PutRowSlice(rows)
		case opEndRecovery:
			srv.EndRecovery()
		case opBeginRecovery:
			srv.BeginRecovery()
		case opInstallRouting:
			rt, err := decodeRouting(r.b)
			if err != nil {
				return
			}
			// The server keeps the encoded bytes (its own copy — r.b aliases
			// the frame) so fence rejections can hand the table back without
			// re-encoding.
			srv.InstallRouting(rt.Epoch, append([]byte(nil), r.b...))
			announced = rt.Epoch
		case opAnnounceEpoch:
			e := r.u64()
			if r.err != nil {
				return
			}
			announced = e
		case opExportPartIn:
			part, of, within, withinOf := r.u32(), r.u32(), r.u32(), r.u32()
			if r.err != nil || of == 0 || part >= of || (withinOf > 1 && within >= withinOf) {
				return
			}
			ids, rows := srv.ExportPartIn(int(part), int(of), int(within), int(withinOf))
			resp = putU64s(resp, ids)
			resp = putU32(resp, uint32(len(ids)*srv.Dim))
			for _, row := range rows {
				resp = putF32sRaw(resp, row)
			}
		case opFingerprintPartIn:
			part, of, within, withinOf := r.u32(), r.u32(), r.u32(), r.u32()
			if r.err != nil || of == 0 || part >= of || (withinOf > 1 && within >= withinOf) {
				return
			}
			resp = putU64(resp, srv.FingerprintPartIn(int(part), int(of), int(within), int(withinOf)))
		case opRetainOwned:
			self, of, rep := r.u32(), r.u32(), r.u32()
			if r.err != nil || of == 0 || self >= of || rep == 0 {
				return
			}
			resp = putU64(resp, uint64(srv.RetainOwned(int(self), int(of), int(rep))))
		case opShutdown:
			writeFrame(bw, resp)
			bw.Flush()
			shutdown()
			return
		default:
			return
		}
		if writeFrame(bw, resp) != nil {
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}
