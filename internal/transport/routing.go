package transport

import (
	"errors"
	"fmt"
)

// Live tier resharding: versioned routing.
//
// The tier's ownership map — core.OwnerOf(id, S), id % S — is total and
// static as long as S is fixed. A live reshard S→S′ breaks that: for the
// duration of the migration two ownership spaces coexist (the old S-way
// split and the new S′-way split), and every tier client must agree, per
// partition, on which space currently serves reads and which rings receive
// writes. RoutingTable is that agreement, versioned by a monotonically
// increasing Epoch. The reshard coordinator is the only writer: it installs
// each successive table on every server (PushRouting) before acting on it,
// and servers fence the data path by epoch — a client whose announced epoch
// doesn't match the server's installed one is rejected with a
// StaleRoutingError carrying the current table, adopts it, and retries.
// Lazy, per-link self-healing: no global pause, no client registry.
//
// Partition states walk Pending → Dual → Moved in the *new* partition
// space:
//
//   - PartPending: the partition has not started migrating. Writes go to
//     its old-space owner ring only; reads route old.
//   - PartDual: the dual-write window is open. Writes fan to the old ring
//     *and* the new ring (new-ring members not already in the old ring);
//     reads still route old, so nothing is served from an unverified copy.
//   - PartMoved: the partition's streamed copy verified digest-identical.
//     Reads flip to the new ring; writes keep fanning to both rings so the
//     old space stays complete — which is what makes abort (fall back to a
//     settled old-width table) safe at any point before the final settle.
//
// The settled table (State == nil, OldS == NewS) ends the migration; only
// then do servers shed the partitions that moved away (RetainOwned).
type RoutingTable struct {
	// Epoch versions the table. 0 is the construction-time epoch: servers
	// that have never seen a reshard accept every announced epoch, so the
	// pre-reshard fast path pays nothing.
	Epoch uint64
	// OldS and NewS are the source and target tier widths. Equal (with a
	// nil State) in a settled table.
	OldS, NewS int
	// State is the per-partition migration state, indexed by *new-space*
	// partition. nil means settled.
	State []PartState
}

// PartState is one new-space partition's migration state.
type PartState uint8

const (
	// PartPending: not yet migrating; old ring carries everything.
	PartPending PartState = iota
	// PartDual: dual-write window open; reads still on the old ring.
	PartDual
	// PartMoved: verified and cut over; reads on the new ring, writes
	// still dual until the tier settles.
	PartMoved
)

// Settled reports whether the table describes a quiescent tier (no
// migration in flight).
func (rt *RoutingTable) Settled() bool { return rt.State == nil }

// Width returns the authoritative partition space: the tier width when
// settled, the *old* width mid-reshard — the old space receives every write
// until the settle, so certificates (fingerprints, checkpoints) taken
// mid-reshard are complete exactly there.
func (rt *RoutingTable) Width() int {
	if rt.Settled() {
		return rt.NewS
	}
	return rt.OldS
}

// MaxServer returns the number of server slots the table references:
// max(OldS, NewS).
func (rt *RoutingTable) MaxServer() int {
	if rt.OldS > rt.NewS {
		return rt.OldS
	}
	return rt.NewS
}

// readRing returns the replica ring (base, width) currently serving reads
// for id: the new-space ring once id's new partition cut over, the
// old-space ring otherwise.
func (rt *RoutingTable) readRing(id uint64) (base, width int) {
	if rt.Settled() {
		return int(id % uint64(rt.NewS)), rt.NewS
	}
	if pn := int(id % uint64(rt.NewS)); rt.State[pn] == PartMoved {
		return pn, rt.NewS
	}
	return int(id % uint64(rt.OldS)), rt.OldS
}

// validate rejects structurally corrupt tables (a wire decode gone wrong).
func (rt *RoutingTable) validate() error {
	if rt.OldS < 1 || rt.NewS < 1 {
		return fmt.Errorf("transport: routing table widths %d→%d", rt.OldS, rt.NewS)
	}
	if rt.State == nil {
		if rt.OldS != rt.NewS {
			return fmt.Errorf("transport: settled routing table with widths %d→%d", rt.OldS, rt.NewS)
		}
		return nil
	}
	if len(rt.State) != rt.NewS {
		return fmt.Errorf("transport: routing table states %d partitions of a %d-wide target", len(rt.State), rt.NewS)
	}
	for p, st := range rt.State {
		if st > PartMoved {
			return fmt.Errorf("transport: routing table partition %d in unknown state %d", p, st)
		}
	}
	return nil
}

// settledRouting is the table a quiescent width-S tier runs under.
func settledRouting(epoch uint64, width int) *RoutingTable {
	return &RoutingTable{Epoch: epoch, OldS: width, NewS: width}
}

// encodeRouting appends rt's wire form to b: epoch, widths, a settled flag,
// then the per-partition states.
func encodeRouting(b []byte, rt *RoutingTable) []byte {
	b = putU64(b, rt.Epoch)
	b = putU32(b, uint32(rt.OldS))
	b = putU32(b, uint32(rt.NewS))
	if rt.Settled() {
		return append(b, 1)
	}
	b = append(b, 0)
	for _, st := range rt.State {
		b = append(b, byte(st))
	}
	return b
}

// decodeRouting parses one encoded routing table.
func decodeRouting(b []byte) (*RoutingTable, error) {
	r := &wireReader{b: b}
	rt := &RoutingTable{Epoch: r.u64(), OldS: int(r.u32()), NewS: int(r.u32())}
	settled := r.u8()
	if r.err == nil && settled == 0 {
		if rt.NewS >= 1 && rt.NewS <= maxFrame {
			st := r.take(rt.NewS, 1)
			if r.err == nil {
				rt.State = make([]PartState, rt.NewS)
				for i, v := range st {
					rt.State[i] = PartState(v)
				}
			}
		} else {
			return nil, fmt.Errorf("transport: routing table target width %d", rt.NewS)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("transport: truncated routing table (%d bytes)", len(b))
	}
	if err := rt.validate(); err != nil {
		return nil, err
	}
	return rt, nil
}

// StaleRoutingError is a server's rejection of a data op announced under a
// routing epoch other than the server's installed one. It is a fence, not a
// failure: the client adopts the carried table (when newer), re-announces,
// and retries — it must never count toward retry budgets, dead-marking, or
// read-failure streaks.
type StaleRoutingError struct {
	// Server is the tier slot whose link rejected the op (-1 until the tier
	// client attributes it).
	Server int
	// Epoch is the rejecting server's installed epoch.
	Epoch uint64
	// Table is the rejecting server's installed table; nil when it could
	// not be decoded.
	Table *RoutingTable
}

func (e *StaleRoutingError) Error() string {
	return fmt.Sprintf("transport: stale routing epoch on server %d (server at epoch %d)", e.Server, e.Epoch)
}

// asStaleRouting extracts the routing fence from an error chain, nil when
// the error is a real failure.
func asStaleRouting(err error) *StaleRoutingError {
	if err == nil {
		return nil
	}
	var se *StaleRoutingError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// ReshardStore is the optional store face live resharding needs on each
// tier child: routing-table distribution plus the partition-intersection
// transfer primitives. All production transports (InProcess, SimNet,
// TCPLink) and the fault-injection wrapper implement it.
type ReshardStore interface {
	// TryInstallRouting installs rt on the server (monotonic by epoch) and
	// marks this link's announced epoch rt.Epoch.
	TryInstallRouting(rt *RoutingTable) error
	// TryAnnounceEpoch declares the epoch this link's future data ops are
	// routed by.
	TryAnnounceEpoch(epoch uint64) error
	// TryBeginRecovery opens the server's recovery window (freshness
	// filter), so migration streams and live dual writes can interleave.
	TryBeginRecovery() error
	// TryExportPartIn snapshots the rows in partition part of an of-way
	// split that also fall in partition within of a withinOf-way split
	// (withinOf <= 1 disables the second filter).
	TryExportPartIn(part, of, within, withinOf int) ([]uint64, [][]float32, error)
	// TryFingerprintPartIn is the digest of the same intersection.
	TryFingerprintPartIn(part, of, within, withinOf int) (uint64, error)
	// TryRetainOwned drops every row outside server self's replicate-deep
	// replica set of an of-way split, returning how many went.
	TryRetainOwned(self, of, replicate int) (int, error)
}
