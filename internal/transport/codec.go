package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
)

// This file is the wire codec for everything that crosses a real network:
// the trainer-mesh payloads (replica pushes, delayed-sync flushes, oracle
// plans, collective contributions) and the framing shared with the
// trainer↔embedding-server link. Encoding is explicit little-endian — no
// gob/json/reflection on the hot path — and deterministic: map-typed fields
// are written in sorted key order, so the same payload always produces the
// same bytes (the codec round-trip tests rely on it).
//
// Frame layout, shared by the mesh and the link:
//
//	u32  frame length (bytes after this field)
//	...  frame body (first body byte is a payload-type or op tag)
//
// All integers are little-endian; floats are IEEE-754 bit patterns.

// Wire payload types. These are the messages the LRPP engine exchanges over
// a Mesh; internal/train uses them as its payload structs for every mesh
// implementation, so in-process, simulated, and TCP runs move the identical
// values (TCP additionally through EncodePayload/DecodePayload).
type (
	// ReplicaMsg carries an owner's per-iteration row snapshots to a
	// non-owner whose examples read them (LRPP logical replication). With
	// F16 set the rows cross the wire as binary16 (2 bytes/element); the
	// sender must have rounded the values through QuantizeF16 first, so the
	// encoding itself is lossless and every fabric moves identical values.
	ReplicaMsg struct {
		Iter int
		F16  bool
		Rows map[uint64][]float32
	}

	// Contrib is one example's gradient for one embedding row, tagged with
	// the example's index in the full batch so owners can re-fold
	// contributions in exact batch order regardless of arrival order.
	Contrib struct {
		Example int
		Grad    []float32
	}

	// SyncMsg is one batched delayed-sync flush: one sender's gradient
	// contributions for one iteration, grouped per owned id. With F16 set
	// (-sync-compress-grad) the gradients cross the wire as binary16; as
	// with quantized replicas, the sender must have rounded the values
	// through f16 first — the lossy step happens at the sender (where the
	// error-feedback residual is kept), never in the encoding.
	SyncMsg struct {
		Iter    int
		F16     bool
		Entries map[uint64][]Contrib
	}

	// SyncBatchMsg coalesces every delayed-sync flush one sender owes one
	// owner at a flush pass — typically iteration x's critical
	// contributions plus iteration x−lag's deferred ones — into a single
	// frame: one per-row entry table per iteration instead of one frame
	// per (iteration, criticality).
	SyncBatchMsg struct {
		Flushes []SyncMsg
	}

	// PlanMsg distributes one trainer's oracle plan from the rank-0 process
	// (which hosts the Oracle Cacher) to its peer. Only the Decision fields
	// a remote trainer consumes travel (Iter, Assign, NeededNext, Batch),
	// and of the batch only the destination's assigned examples, indexed —
	// the decoded Batch keeps its full length with empty slots elsewhere,
	// so batch-order semantics (loss scaling, contribution folding by
	// absolute example index) are preserved at a fraction of the bytes.
	PlanMsg struct {
		Plan *core.TrainerPlan
	}

	// CollMsg is one collective-communication step: a rank's contribution
	// to (or the root's result of) all-reduce call number Seq. Exactly one
	// of F32/F64 is non-nil. The rooted (unfused) strategy sends one
	// CollMsg per dense parameter per step.
	CollMsg struct {
		Seq uint64
		F32 []float32
		F64 []float64
	}

	// FusedCollMsg is one *fused* collective step: every dense-parameter
	// gradient segment plus the float64 loss term of one iteration packed
	// into a single frame behind a length-prefixed segment table, so a
	// whole all-reduce round costs one frame instead of one per parameter.
	// Origin is the contributing rank — under the ring strategy frames are
	// forwarded peer to peer, so the mesh-level sender (MeshMsg.From) is
	// the previous hop, not the rank whose gradients these are.
	FusedCollMsg struct {
		Seq    uint64
		Origin int
		Segs   [][]float32
		Loss   []float64
	}

	// RawMsg is an opaque byte payload (conformance tests, future control
	// traffic).
	RawMsg []byte
)

// Payload type tags (first byte of an encoded payload).
const (
	tagReplica byte = 1 + iota
	tagSync
	tagPlan
	tagColl
	tagRaw
	tagReplicaF16
	tagSyncBatch
	tagFusedColl
)

// EncodePayload encodes one of the wire payload types, tag first.
// Unknown payload types panic: only codec-known messages may be handed to a
// networked mesh, and catching that at the first Send beats a silent drop.
func EncodePayload(p any) []byte {
	return appendPayload(make([]byte, 0, 64), p)
}

// appendPayload is EncodePayload into a caller-supplied buffer, so framing
// code can encode directly after its header without a second copy.
func appendPayload(b []byte, p any) []byte {
	switch m := p.(type) {
	case ReplicaMsg:
		if m.F16 {
			b = append(b, tagReplicaF16)
		} else {
			b = append(b, tagReplica)
		}
		b = putU64(b, uint64(m.Iter))
		b = putU32(b, uint32(len(m.Rows)))
		for _, id := range sortedIDKeys(m.Rows) {
			b = putU64(b, id)
			if m.F16 {
				b = putF16s(b, m.Rows[id])
			} else {
				b = putF32s(b, m.Rows[id])
			}
		}
	case SyncMsg:
		b = append(b, tagSync)
		b = putSyncBody(b, m)
	case SyncBatchMsg:
		b = append(b, tagSyncBatch)
		b = putU32(b, uint32(len(m.Flushes)))
		for _, f := range m.Flushes {
			b = putSyncBody(b, f)
		}
	case PlanMsg:
		b = append(b, tagPlan)
		b = putPlan(b, m.Plan)
	case CollMsg:
		b = append(b, tagColl)
		b = putU64(b, m.Seq)
		if m.F64 != nil {
			b = append(b, 1)
			b = putF64s(b, m.F64)
		} else {
			b = append(b, 0)
			b = putF32s(b, m.F32)
		}
	case FusedCollMsg:
		b = append(b, tagFusedColl)
		b = putU64(b, m.Seq)
		b = putU32(b, uint32(m.Origin))
		b = putU32(b, uint32(len(m.Segs)))
		for _, seg := range m.Segs {
			b = putF32s(b, seg)
		}
		b = putF64s(b, m.Loss)
	case RawMsg:
		b = append(b, tagRaw)
		b = append(b, m...)
	default:
		panic(fmt.Sprintf("transport: cannot encode payload type %T", p))
	}
	return b
}

// DecodePayload is the inverse of EncodePayload.
func DecodePayload(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("transport: empty payload")
	}
	r := &wireReader{b: b[1:]}
	var out any
	switch b[0] {
	case tagReplica, tagReplicaF16:
		m := ReplicaMsg{Iter: int(r.u64()), F16: b[0] == tagReplicaF16}
		n := r.count(8)
		// The map and rows come from the pooled allocator, mirroring the
		// in-process path where the sender builds them there; the LRPP
		// receiver releases both once the rows are consumed.
		m.Rows = GetRowMap()
		elem := 4
		if m.F16 {
			elem = 2
		}
		var arena *RowArena
		for i := 0; i < n; i++ {
			id := r.u64()
			ne := r.count(elem)
			if ne == 0 || r.err != nil {
				m.Rows[id] = nil
				continue
			}
			if arena == nil || arena.dim != ne {
				arena = Rows(ne)
			}
			row := arena.Get()
			reg := r.take(ne, elem)
			if m.F16 {
				for k := range row {
					row[k] = F32FromF16(binary.LittleEndian.Uint16(reg[2*k:]))
				}
			} else {
				for k := range row {
					row[k] = math.Float32frombits(binary.LittleEndian.Uint32(reg[4*k:]))
				}
			}
			m.Rows[id] = row
		}
		out = m
	case tagSync:
		out = r.sync()
	case tagSyncBatch:
		n := r.count(12)
		m := SyncBatchMsg{Flushes: make([]SyncMsg, 0, n)}
		for i := 0; i < n; i++ {
			m.Flushes = append(m.Flushes, r.sync())
		}
		out = m
	case tagPlan:
		out = PlanMsg{Plan: r.plan()}
	case tagColl:
		m := CollMsg{Seq: r.u64()}
		if r.u8() == 1 {
			m.F64 = r.f64s()
		} else {
			m.F32 = r.f32s()
		}
		out = m
	case tagFusedColl:
		m := FusedCollMsg{Seq: r.u64(), Origin: int(r.u32())}
		n := r.count(4)
		m.Segs = make([][]float32, 0, n)
		for i := 0; i < n; i++ {
			m.Segs = append(m.Segs, r.f32s())
		}
		m.Loss = r.f64s()
		out = m
	case tagRaw:
		raw := make(RawMsg, len(b)-1)
		copy(raw, b[1:])
		return raw, nil
	default:
		return nil, fmt.Errorf("transport: unknown payload tag %d", b[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after payload tag %d", len(r.b), b[0])
	}
	return out, nil
}

// putSyncBody writes one iteration's flush (the SyncMsg body, shared by the
// single-flush and coalesced encodings).
func putSyncBody(b []byte, m SyncMsg) []byte {
	b = putU64(b, uint64(m.Iter))
	if m.F16 {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = putU32(b, uint32(len(m.Entries)))
	for _, id := range sortedIDKeys(m.Entries) {
		b = putU64(b, id)
		es := m.Entries[id]
		b = putU32(b, uint32(len(es)))
		for _, e := range es {
			b = putU64(b, uint64(e.Example))
			if m.F16 {
				b = putF16s(b, e.Grad)
			} else {
				b = putF32s(b, e.Grad)
			}
		}
	}
	return b
}

// sync reads one iteration's flush (the inverse of putSyncBody).
func (r *wireReader) sync() SyncMsg {
	m := SyncMsg{Iter: int(r.u64()), F16: r.u8() == 1}
	n := r.count(8)
	m.Entries = make(map[uint64][]Contrib, n)
	for i := 0; i < n; i++ {
		id := r.u64()
		ne := r.count(8)
		es := make([]Contrib, 0, ne)
		for j := 0; j < ne; j++ {
			e := Contrib{Example: int(r.u64())}
			if m.F16 {
				e.Grad = r.f16s()
			} else {
				e.Grad = r.f32s()
			}
			es = append(es, e)
		}
		m.Entries[id] = es
	}
	return m
}

// putPlan writes a TrainerPlan plus the Decision subset remote trainers
// consume (Iter, Batch, Assign, NeededNext).
func putPlan(b []byte, pl *core.TrainerPlan) []byte {
	b = putU64(b, uint64(pl.Trainer))
	b = putU64s(b, pl.Prefetch)
	b = putU32(b, uint32(len(pl.OwnedTTL)))
	for _, id := range sortedIDKeys(pl.OwnedTTL) {
		b = putU64(b, id)
		b = putU64(b, uint64(pl.OwnedTTL[id]))
	}
	b = putU64s(b, pl.Expiring)
	b = putU32(b, uint32(len(pl.Users)))
	for _, id := range sortedIDKeys(pl.Users) {
		b = putU64(b, id)
		b = putInts(b, pl.Users[id])
	}
	b = putU32(b, uint32(len(pl.ReplicaOut)))
	for _, t := range sortedIntKeys(pl.ReplicaOut) {
		b = putU64(b, uint64(t))
		b = putU64s(b, pl.ReplicaOut[t])
	}
	b = putU32(b, uint32(len(pl.Remote)))
	for _, id := range sortedIDKeys(pl.Remote) {
		b = putU64(b, id)
		b = putU64(b, uint64(pl.Remote[id]))
	}
	b = putInts(b, pl.ReplicaFrom)

	d := pl.Dec
	b = putU64(b, uint64(d.Iter))
	b = putInts(b, d.Assign)
	needed := make([]uint64, 0, len(d.NeededNext))
	for id, v := range d.NeededNext {
		if v {
			needed = append(needed, id)
		}
	}
	sort.Slice(needed, func(i, j int) bool { return needed[i] < needed[j] })
	b = putU64s(b, needed)
	// Only the destination trainer's assigned examples travel (indexed, so
	// batch-order semantics — loss scaling by the full size, contribution
	// folding by absolute example index — are preserved); shipping the
	// whole batch to every peer would make plans P× redundant.
	b = putU64(b, uint64(d.Batch.Index))
	b = putU32(b, uint32(len(d.Batch.Examples)))
	mine := 0
	for i := range d.Batch.Examples {
		if d.Assign[i] == pl.Trainer {
			mine++
		}
	}
	b = putU32(b, uint32(mine))
	for i, ex := range d.Batch.Examples {
		if d.Assign[i] != pl.Trainer {
			continue
		}
		b = putU32(b, uint32(i))
		b = putF32s(b, ex.Dense)
		b = putU64s(b, ex.Cat)
		b = putF32(b, ex.Label)
	}
	return b
}

func (r *wireReader) plan() *core.TrainerPlan {
	pl := &core.TrainerPlan{Trainer: int(r.u64())}
	pl.Prefetch = r.u64s()
	n := r.count(16)
	pl.OwnedTTL = make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		id := r.u64()
		pl.OwnedTTL[id] = int(r.u64())
	}
	pl.Expiring = r.u64s()
	n = r.count(12)
	pl.Users = make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		id := r.u64()
		pl.Users[id] = r.ints()
	}
	n = r.count(12)
	pl.ReplicaOut = make(map[int][]uint64, n)
	for i := 0; i < n; i++ {
		t := int(r.u64())
		pl.ReplicaOut[t] = r.u64s()
	}
	n = r.count(16)
	pl.Remote = make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		id := r.u64()
		pl.Remote[id] = int(r.u64())
	}
	pl.ReplicaFrom = r.ints()

	d := &core.Decision{Iter: int(r.u64())}
	d.Assign = r.ints()
	d.NeededNext = make(map[uint64]bool)
	for _, id := range r.u64s() {
		d.NeededNext[id] = true
	}
	d.Batch = &data.Batch{Index: int(r.u64())}
	full := r.count(0)
	if full > 1<<24 { // sparse slots carry no bytes; bound absurd sizes explicitly
		r.fail()
		return pl
	}
	d.Batch.Examples = make([]data.Example, full)
	n = r.count(4)
	for i := 0; i < n; i++ {
		idx := int(r.u32())
		if idx >= full {
			r.fail()
			return pl
		}
		ex := data.Example{Dense: r.f32s(), Cat: r.u64s()}
		ex.Label = r.f32()
		d.Batch.Examples[idx] = ex
	}
	pl.Dec = d
	return pl
}

// --- primitive writers (append-style, little-endian) ---

func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func putF32(b []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
}

// grow appends n zero bytes and returns the buffer plus the write offset —
// the bulk writers fill the region directly, skipping per-element appends.
func grow(b []byte, n int) ([]byte, int) {
	off := len(b)
	return append(b, make([]byte, n)...), off
}

func putF32s(b []byte, xs []float32) []byte {
	b = putU32(b, uint32(len(xs)))
	return putF32sRaw(b, xs)
}

// putF32sRaw appends xs' elements without a count prefix — for callers that
// frame a whole matrix of known shape behind a single count.
func putF32sRaw(b []byte, xs []float32) []byte {
	b, off := grow(b, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[off+4*i:], math.Float32bits(x))
	}
	return b
}

// putF16s writes a float32 slice as binary16 bit patterns (the quantized
// replica encoding). Values must already be f16-representable (the sender
// quantized them), so the round trip is exact.
func putF16s(b []byte, xs []float32) []byte {
	b = putU32(b, uint32(len(xs)))
	b, off := grow(b, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(b[off+2*i:], F16FromF32(x))
	}
	return b
}

func putF64s(b []byte, xs []float64) []byte {
	b = putU32(b, uint32(len(xs)))
	b, off := grow(b, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[off+8*i:], math.Float64bits(x))
	}
	return b
}

func putU64s(b []byte, xs []uint64) []byte {
	b = putU32(b, uint32(len(xs)))
	b, off := grow(b, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[off+8*i:], x)
	}
	return b
}

// putInts writes a non-negative int slice (ranks, assignments) as u32s.
func putInts(b []byte, xs []int) []byte {
	b = putU32(b, uint32(len(xs)))
	b, off := grow(b, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[off+4*i:], uint32(x))
	}
	return b
}

// --- primitive reader ---

// wireReader consumes an encoded payload body. The first decode error
// sticks and every later read returns a zero value without consuming bytes
// — load-bearing, not just convenient: count()'s allocation guard assumes a
// poisoned reader can never hand a decoder a garbage element count — so
// decoders need no per-field checks and the caller inspects err once at the
// end.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("transport: truncated payload")
	}
}

func (r *wireReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) f32() float32 { return math.Float32frombits(r.u32()) }

// count reads a u32 element count and sanity-checks it against the bytes
// remaining (each element needs at least minElem bytes), so a corrupt frame
// cannot drive a huge allocation. The bulk slice readers below lean on the
// same guarantee from the other side: a non-zero count with minElem = the
// element width proves the elements' bytes are all present, so they carve
// the region off in one bounds check and decode without per-element error
// handling — the codec is the distributed hot path, and per-element checks
// were measurable in profiles.
func (r *wireReader) count(minElem int) int {
	n := int(r.u32())
	if r.err == nil && minElem > 0 && n > len(r.b)/minElem {
		r.fail()
		return 0
	}
	return n
}

// take returns the next n*elem bytes as one region (count(elem) has already
// proven they exist) and advances the reader past them.
func (r *wireReader) take(n, elem int) []byte {
	b := r.b[:n*elem]
	r.b = r.b[n*elem:]
	return b
}

func (r *wireReader) f32s() []float32 {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	b := r.take(n, 4)
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return xs
}

// f32sInto decodes a count-prefixed float32 vector into the caller's dst
// (a pooled row), failing the reader unless the count is exactly len(dst).
func (r *wireReader) f32sInto(dst []float32) bool {
	n := r.count(4)
	if r.err != nil || n != len(dst) {
		r.fail()
		return false
	}
	b := r.take(n, 4)
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return true
}

func (r *wireReader) f16s() []float32 {
	n := r.count(2)
	if n == 0 {
		return nil
	}
	b := r.take(n, 2)
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = F32FromF16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return xs
}

func (r *wireReader) f64s() []float64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	b := r.take(n, 8)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

func (r *wireReader) u64s() []uint64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	b := r.take(n, 8)
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return xs
}

func (r *wireReader) ints() []int {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	b := r.take(n, 4)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return xs
}

// --- sorted-key helpers (deterministic map encoding) ---

func sortedIDKeys[V any](m map[uint64]V) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedIntKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
