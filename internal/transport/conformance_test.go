package transport

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The shared Mesh conformance suite: every behavior internal/train relies
// on — keyed (reorder-tolerant) delivery, the Close-while-sending contract,
// queued messages surviving Close, concurrent endpoints, and drop
// accounting — is pinned here once and run against all three mesh families.
// Implementation-specific semantics (simulated latency, bandwidth sharing,
// in-flight reordering) stay in mesh_test.go.

// meshCase builds one n-endpoint mesh. cleanup tears down any real
// resources (sockets) behind it.
type meshCase struct {
	name  string
	build func(t *testing.T, n int) (mesh Mesh, cleanup func())
}

func meshCases() []meshCase {
	return []meshCase{
		{"inproc", func(t *testing.T, n int) (Mesh, func()) {
			return NewInprocMesh(n), func() {}
		}},
		{"sim", func(t *testing.T, n int) (Mesh, func()) {
			// Enough latency that messages are genuinely in flight, tight
			// enough that tests stay fast.
			return NewSimMesh(n, 2*time.Millisecond, 0), func() {}
		}},
		{"tcp", func(t *testing.T, n int) (Mesh, func()) {
			m, err := NewLoopbackTCPMesh(n)
			if err != nil {
				t.Fatalf("loopback tcp mesh: %v", err)
			}
			return m, m.Shutdown
		}},
	}
}

// payload builds a codec-encodable payload carrying a recognizable key, so
// the suite works identically over in-memory and wire meshes.
func payload(key int) RawMsg {
	return RawMsg(fmt.Sprintf("msg-%d", key))
}

// TestMeshConformanceRoundTrip: a message arrives once, with sender rank,
// receiver rank, declared bytes, and payload intact.
func TestMeshConformanceRoundTrip(t *testing.T) {
	for _, tc := range meshCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, cleanup := tc.build(t, 3)
			defer cleanup()
			if m.Size() != 3 {
				t.Fatalf("size %d", m.Size())
			}
			a, b := m.Endpoint(0), m.Endpoint(1)
			if a.Rank() != 0 || b.Rank() != 1 {
				t.Fatalf("ranks %d/%d", a.Rank(), b.Rank())
			}
			if !a.Send(1, 100, payload(7)) {
				t.Fatal("send refused")
			}
			msg, ok := b.Recv()
			if !ok || msg.From != 0 || msg.To != 1 || msg.Bytes != 100 {
				t.Fatalf("recv %+v ok=%v", msg, ok)
			}
			if string(msg.Payload.(RawMsg)) != "msg-7" {
				t.Fatalf("payload %v", msg.Payload)
			}
			m.Quiesce()
			st := m.Stats()
			if st.Msgs != 1 || st.Bytes != 100 || st.Dropped != 0 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestMeshConformanceKeyedDelivery: every pair sends a burst of keyed
// messages; each receiver gets exactly its expected multiset, regardless of
// the order the fabric delivers in. This is the property the LRPP receivers
// build on (protocol state is keyed by (id, iteration), never sequenced).
func TestMeshConformanceKeyedDelivery(t *testing.T) {
	const n, k = 4, 25
	for _, tc := range meshCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, cleanup := tc.build(t, n)
			defer cleanup()
			var wg sync.WaitGroup
			for from := 0; from < n; from++ {
				wg.Add(1)
				go func(from int) {
					defer wg.Done()
					ep := m.Endpoint(from)
					for to := 0; to < n; to++ {
						if to == from {
							continue
						}
						for i := 0; i < k; i++ {
							key := (from*n+to)*k + i
							if !ep.Send(to, int64(8+key%13), payload(key)) {
								t.Errorf("send %d->%d refused", from, to)
								return
							}
						}
					}
				}(from)
			}
			got := make([]map[string]int, n)
			for to := 0; to < n; to++ {
				wg.Add(1)
				go func(to int) {
					defer wg.Done()
					ep := m.Endpoint(to)
					got[to] = make(map[string]int)
					for i := 0; i < (n-1)*k; i++ {
						msg, ok := ep.Recv()
						if !ok {
							t.Errorf("rank %d: stream ended after %d messages", to, i)
							return
						}
						if msg.To != to {
							t.Errorf("rank %d received message addressed to %d", to, msg.To)
						}
						got[to][string(msg.Payload.(RawMsg))]++
					}
				}(to)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for to := 0; to < n; to++ {
				for from := 0; from < n; from++ {
					if from == to {
						continue
					}
					for i := 0; i < k; i++ {
						key := fmt.Sprintf("msg-%d", (from*n+to)*k+i)
						if got[to][key] != 1 {
							t.Fatalf("rank %d saw %q %d times", to, key, got[to][key])
						}
					}
				}
			}
			m.Quiesce()
			if st := m.Stats(); st.Msgs != int64(n*(n-1)*k) || st.Dropped != 0 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestMeshConformanceCloseDrainsQueue: Close leaves already-delivered
// messages readable, then Recv reports end-of-stream; a blocked Recv wakes.
func TestMeshConformanceCloseDrainsQueue(t *testing.T) {
	for _, tc := range meshCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, cleanup := tc.build(t, 2)
			defer cleanup()
			a, b := m.Endpoint(0), m.Endpoint(1)
			a.Send(1, 1, payload(1))
			a.Send(1, 1, payload(2))
			// Make sure both messages have landed in b's queue before the
			// close (delivery is asynchronous on sim and tcp fabrics).
			first, ok := b.Recv()
			if !ok {
				t.Fatal("first message lost")
			}
			m.Quiesce()
			b.Close()
			second, ok := b.Recv()
			if !ok {
				t.Fatal("queued message not readable after Close")
			}
			seen := map[string]bool{string(first.Payload.(RawMsg)): true, string(second.Payload.(RawMsg)): true}
			if !seen["msg-1"] || !seen["msg-2"] {
				t.Fatalf("messages corrupted: %v", seen)
			}
			if _, ok := b.Recv(); ok {
				t.Fatal("drained closed endpoint still returns messages")
			}
			// A Recv blocked on a closed-and-drained endpoint returns
			// immediately; and a fresh blocked Recv wakes on Close.
			c := m.Endpoint(0)
			done := make(chan bool, 1)
			go func() {
				_, ok := c.Recv()
				done <- ok
			}()
			time.Sleep(5 * time.Millisecond)
			c.Close()
			if ok := <-done; ok {
				t.Fatal("Recv on closed empty endpoint returned a message")
			}
		})
	}
}

// TestMeshConformanceCloseWhileSending: concurrent senders racing a
// receiver Close must not panic, deadlock, or lose accounting — every
// accepted message is eventually either delivered or counted dropped, and
// sends after the close are not delivered.
func TestMeshConformanceCloseWhileSending(t *testing.T) {
	const senders, burst = 4, 16
	for _, tc := range meshCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, cleanup := tc.build(t, senders+1)
			defer cleanup()
			dst := m.Endpoint(senders)
			var accepted atomic.Int64
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					ep := m.Endpoint(s)
					for i := 0; i < burst; i++ {
						if ep.Send(senders, 10, payload(s*burst+i)) {
							accepted.Add(1)
						}
					}
				}(s)
			}
			// Read a few messages, then close mid-stream.
			for i := 0; i < 3; i++ {
				if _, ok := dst.Recv(); !ok {
					t.Fatal("stream ended early")
				}
			}
			dst.Close()
			wg.Wait()
			m.Quiesce()

			delivered := int64(3)
			for {
				_, ok := dst.Recv()
				if !ok {
					break
				}
				delivered++
			}
			st := m.Stats()
			// Msgs counts exactly the accepted sends on every mesh; each
			// accepted message must end up delivered or counted dropped
			// (Dropped may additionally count synchronously refused sends —
			// the in-process mesh does that).
			if st.Msgs != accepted.Load() {
				t.Fatalf("Msgs %d != %d accepted sends", st.Msgs, accepted.Load())
			}
			if delivered > accepted.Load() {
				t.Fatalf("%d delivered > %d accepted", delivered, accepted.Load())
			}
			if delivered+st.Dropped < accepted.Load() {
				t.Fatalf("accounting lost messages: %d accepted, only %d delivered + %d dropped",
					accepted.Load(), delivered, st.Dropped)
			}
			// A send after the close must not be delivered.
			if m.Endpoint(0).Send(senders, 10, payload(999)) {
				m.Quiesce()
				if _, ok := dst.Recv(); ok {
					t.Fatal("send to closed endpoint was delivered")
				}
			}
		})
	}
}

// TestMeshConformanceTypedPayloads: every engine wire type — including the
// segmented fused-collective frame, the coalesced sync batch, and the
// f16-quantized replica push — crosses every fabric intact. The in-memory
// meshes deliver by reference and the TCP mesh through the codec; the
// engine depends on both paths carrying equal values.
func TestMeshConformanceTypedPayloads(t *testing.T) {
	payloads := []any{
		ReplicaMsg{Iter: 2, Rows: map[uint64][]float32{7: {1, -2, 0.5}}},
		ReplicaMsg{Iter: 3, F16: true, Rows: map[uint64][]float32{9: QuantizeF16([]float32{0.25, 3.75})}},
		SyncBatchMsg{Flushes: []SyncMsg{
			{Iter: 5, Entries: map[uint64][]Contrib{3: {{Example: 1, Grad: []float32{0.5}}}}},
			{Iter: 4, Entries: map[uint64][]Contrib{8: {{Example: 0, Grad: []float32{-1}}}}},
		}},
		FusedCollMsg{Seq: 11, Origin: 1, Segs: [][]float32{{1, 2}, {3, 4, 5}}, Loss: []float64{0.125}},
	}
	for _, tc := range meshCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, cleanup := tc.build(t, 2)
			defer cleanup()
			a, b := m.Endpoint(0), m.Endpoint(1)
			for _, p := range payloads {
				if !a.Send(1, int64(len(EncodePayload(p))), p) {
					t.Fatalf("send of %T refused", p)
				}
			}
			for range payloads {
				msg, ok := b.Recv()
				if !ok {
					t.Fatal("stream ended early")
				}
				// Fabrics may reorder; match by type.
				var want any
				for _, p := range payloads {
					if reflect.TypeOf(p) == reflect.TypeOf(msg.Payload) {
						if rp, isRep := p.(ReplicaMsg); isRep && rp.F16 != msg.Payload.(ReplicaMsg).F16 {
							continue
						}
						want = p
					}
				}
				if want == nil || !reflect.DeepEqual(want, msg.Payload) {
					t.Fatalf("payload %T arrived as %+v, want %+v", msg.Payload, msg.Payload, want)
				}
			}
		})
	}
}

// TestMeshConformanceSelfSend: a rank may address itself (the engines don't
// today, but the contract shouldn't make it a trap).
func TestMeshConformanceSelfSend(t *testing.T) {
	for _, tc := range meshCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, cleanup := tc.build(t, 2)
			defer cleanup()
			ep := m.Endpoint(0)
			if !ep.Send(0, 5, payload(3)) {
				t.Fatal("self send refused")
			}
			msg, ok := ep.Recv()
			if !ok || msg.From != 0 || msg.To != 0 || string(msg.Payload.(RawMsg)) != "msg-3" {
				t.Fatalf("self recv %+v ok=%v", msg, ok)
			}
		})
	}
}
