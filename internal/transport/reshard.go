package transport

import (
	"fmt"
	"time"
)

// Tier-client half of live resharding: installing routing tables (with the
// data-plane barrier and spare-server admission that implies), the lazy
// adopt-and-retry healing of stale-routed ops, and the coordinator
// primitives internal/reshard drives the migration with. The coordinator
// algorithm itself — which partitions move when, when the tier settles —
// lives in internal/reshard; this file is only the mechanism.

// staleRetryLimit bounds how many times one data op will adopt a routing
// table and reissue before the tier declares it lost. Every legitimate
// reshard heals an op in one or two adoptions; hitting the limit means the
// cluster cannot converge on an epoch (a partitioned coordinator, a server
// flapping between tables) and retrying forever would hang training
// silently.
const staleRetryLimit = 256

// InstallRouting installs rt as this client's routing table, monotonically
// by epoch (false: rt is not newer than the installed table). The install
// is a barrier against the data plane: it waits out every in-flight
// Fetch/Write/ReadFetch/Fingerprint/Checkpoint, so when it returns no op
// still routes by the predecessor. Absent spare servers the table
// references are admitted live — connected through TierOptions.Dial when
// their slot has no store yet; a spare that cannot be connected is marked
// dead (attributed, OnFailover fired) and the ring routes around it.
// Routing subscribers fire after the install, outside every lock.
func (t *ShardedStore) InstallRouting(rt *RoutingTable) bool {
	if err := rt.validate(); err != nil {
		panic(err.Error())
	}
	if rt.MaxServer() > t.capacity {
		panic(fmt.Sprintf("transport: routing table over %d servers installed on a tier with capacity %d", rt.MaxServer(), t.capacity))
	}
	t.installMu.Lock()
	cur := t.routing.Load()
	if rt.Epoch <= cur.Epoch {
		t.installMu.Unlock()
		return false
	}
	// Admission failures are collected and fired after the locks drop —
	// OnFailover may call back into the store.
	var failed []int
	var causes []error
	for s := 0; s < rt.MaxServer(); s++ {
		if t.state[s].Load() != srvAbsent {
			continue
		}
		if err := t.admit(s); err != nil {
			t.stateMu.Lock()
			t.state[s].Store(srvDead)
			t.causes[s] = err
			t.stateMu.Unlock()
			failed = append(failed, s)
			causes = append(causes, err)
		}
	}
	t.reshardParts.Add(movedDelta(cur, rt))
	t.routing.Store(rt)
	t.installMu.Unlock()
	if t.onFailover != nil {
		for i, s := range failed {
			t.onFailover(s, causes[i])
		}
	}
	t.routeMu.Lock()
	subs := append([]func(epoch uint64){}, t.routeSubs...)
	t.routeMu.Unlock()
	for _, fn := range subs {
		fn(rt.Epoch)
	}
	return true
}

// admit brings absent server s live: its slot's store if one was pre-set
// (a spare child supplied at construction, or ConnectServer), else a fresh
// connection through the dialer. The caller owns publishing any failure.
func (t *ShardedStore) admit(s int) error {
	if t.child(s) == nil {
		if t.dialFn == nil {
			return fmt.Errorf("transport: routing references absent server %d with no connection and no dialer", s)
		}
		st, err := t.dialFn(s)
		if err != nil {
			return fmt.Errorf("transport: dial spare server %d: %w", s, err)
		}
		if st == nil {
			return fmt.Errorf("transport: dialer returned no store for spare server %d", s)
		}
		if st.Dim() != t.dim {
			return fmt.Errorf("transport: spare server %d serves dim %d, tier serves %d", s, st.Dim(), t.dim)
		}
		t.slots[s].Store(newServerSlot(st))
	}
	t.stateMu.Lock()
	t.gen[s].Add(1)
	t.state[s].Store(srvLive)
	t.causes[s] = nil
	t.readFails[s].Store(0)
	t.stateMu.Unlock()
	return nil
}

// movedCount counts the partitions whose reads have cut over under rt.
func movedCount(rt *RoutingTable) int64 {
	if rt.Settled() {
		return 0
	}
	var n int64
	for _, st := range rt.State {
		if st == PartMoved {
			n++
		}
	}
	return n
}

// movedDelta is the ReshardParts progress increment of installing rt over
// cur: newly cut-over partitions mid-reshard, the remainder at the
// completing settle (every partition of the new space finished), zero for
// an abort back to the old width.
func movedDelta(cur, rt *RoutingTable) int64 {
	if !rt.Settled() {
		return movedCount(rt) - movedCount(cur)
	}
	if cur.Settled() {
		return 0
	}
	if rt.NewS == cur.NewS {
		return int64(cur.NewS) - movedCount(cur)
	}
	return 0
}

// SubscribeRouting registers fn to be called (outside the store's locks)
// after every routing install, with the installed epoch. The serving front
// end uses this to flush reads cached under the predecessor's ownership.
func (t *ShardedStore) SubscribeRouting(fn func(epoch uint64)) {
	t.routeMu.Lock()
	t.routeSubs = append(t.routeSubs, fn)
	t.routeMu.Unlock()
}

// adoptRouting heals one stale-routing rejection, in whichever direction
// the staleness runs. A server ahead of us carries its installed table in
// the rejection: install it and re-route. A server *behind* us (it missed
// the coordinator's push — freshly rejoined, or its push RPC was lost) is
// taught our table. A server at our epoch rejected only because this link
// never announced it (a fresh connection): announce. A server ahead whose
// table didn't decode leaves nothing to adopt — wait a beat for the
// coordinator's push to land. The caller retries the op after every case;
// staleRetryLimit bounds the loop.
func (t *ShardedStore) adoptRouting(se *StaleRoutingError) {
	if se.Table != nil && se.Table.Epoch > t.routing.Load().Epoch {
		t.InstallRouting(se.Table)
		return
	}
	cur := t.routing.Load()
	rs := ReshardStore(nil)
	if se.Server >= 0 && se.Server < t.capacity {
		rs = t.reshardFace(se.Server)
	}
	switch {
	case se.Epoch < cur.Epoch:
		if rs != nil {
			_ = rs.TryInstallRouting(cur)
		}
	case se.Epoch == cur.Epoch:
		if rs != nil {
			_ = rs.TryAnnounceEpoch(cur.Epoch)
		}
	default:
		time.Sleep(time.Millisecond)
	}
}

// ---- Coordinator primitives (internal/reshard drives these) ----

// LiveServer reports whether slot s currently serves (live, not dead,
// resyncing, or absent).
func (t *ShardedStore) LiveServer(s int) bool {
	return s >= 0 && s < t.capacity && t.state[s].Load() == srvLive
}

// EnsureServer brings spare slot s live ahead of a grow: a no-op when s
// already serves, an attributed error when s is dead or cannot be
// connected (the coordinator retries — a still-booting spare process is
// not condemned). Admitting an unrouted spare is invisible to the data
// plane, so no barrier is needed; the install lock only serializes
// admission against a concurrent routing install.
func (t *ShardedStore) EnsureServer(s int) error {
	if s < 0 || s >= t.capacity {
		return fmt.Errorf("transport: server %d outside tier capacity %d", s, t.capacity)
	}
	t.installMu.Lock()
	defer t.installMu.Unlock()
	switch t.state[s].Load() {
	case srvLive, srvResync:
		return nil
	case srvDead:
		return fmt.Errorf("transport: reshard target server %d is dead: %w", s, t.deadCause(s))
	}
	return t.admit(s)
}

// ConnectServer attaches a pre-dialed connection to absent spare slot s
// and brings it live — the grow path for callers that dial their own
// links instead of supplying TierOptions.Dial.
func (t *ShardedStore) ConnectServer(s int, st Store) error {
	if s < 0 || s >= t.capacity {
		return fmt.Errorf("transport: server %d outside tier capacity %d", s, t.capacity)
	}
	if st == nil {
		return fmt.Errorf("transport: connect of server %d with no store", s)
	}
	if st.Dim() != t.dim {
		return fmt.Errorf("transport: connecting server %d serves dim %d, tier serves %d", s, st.Dim(), t.dim)
	}
	t.installMu.Lock()
	defer t.installMu.Unlock()
	if t.state[s].Load() != srvAbsent {
		return fmt.Errorf("transport: connect of server %d which is not absent", s)
	}
	t.slots[s].Store(newServerSlot(st))
	return t.admit(s)
}

// PushRouting distributes rt to every reachable server's epoch fence, then
// installs it locally. Order matters: servers must fence by the new epoch
// before this client routes by it, or the table's dual-write guarantees
// hold only probabilistically. A server whose push fails is condemned
// (fenced by generation) and the migration proceeds on the survivors — the
// per-partition verify decides whether that loss is fatal. Servers without
// the reshard face are skipped; they run at epoch 0 and accept everything.
func (t *ShardedStore) PushRouting(rt *RoutingTable) error {
	if err := rt.validate(); err != nil {
		return err
	}
	if rt.MaxServer() > t.capacity {
		return fmt.Errorf("transport: routing table over %d servers pushed to a tier with capacity %d", rt.MaxServer(), t.capacity)
	}
	cur := t.routing.Load()
	if rt.Epoch <= cur.Epoch {
		return fmt.Errorf("transport: routing push at epoch %d not above installed epoch %d", rt.Epoch, cur.Epoch)
	}
	max := rt.MaxServer()
	if m := cur.MaxServer(); m > max {
		max = m
	}
	for s := 0; s < max; s++ {
		if st := t.state[s].Load(); st == srvDead || st == srvAbsent {
			continue
		}
		rs := t.reshardFace(s)
		if rs == nil {
			continue
		}
		g := t.gen[s].Load()
		if err := rs.TryInstallRouting(rt); err != nil {
			t.markDeadIfGen(s, g, fmt.Errorf("transport: routing push to server %d: %w", s, err))
		}
	}
	t.InstallRouting(rt)
	return nil
}

// BeginRecoveryOn opens server s's recovery window (the freshness filter
// that lets migration streams interleave with live dual writes; see
// embed.Server.BeginRecovery).
func (t *ShardedStore) BeginRecoveryOn(s int) error {
	if s < 0 || s >= t.capacity {
		return fmt.Errorf("transport: server %d outside tier capacity %d", s, t.capacity)
	}
	rs := t.reshardFace(s)
	if rs == nil {
		return fmt.Errorf("transport: server %d (%T) has no reshard face", s, t.child(s))
	}
	return rs.TryBeginRecovery()
}

// ExportPartInFrom snapshots the (part-of-of ∩ within-of-withinOf)
// intersection from server src: the migration's per-round source read. One
// attempt — a failed source is condemned (fenced) and the round retries
// from the next live holder.
func (t *ShardedStore) ExportPartInFrom(src, part, of, within, withinOf int) ([]uint64, [][]float32, error) {
	if src < 0 || src >= t.capacity {
		return nil, nil, fmt.Errorf("transport: server %d outside tier capacity %d", src, t.capacity)
	}
	rs := t.reshardFace(src)
	if rs == nil {
		return nil, nil, fmt.Errorf("transport: server %d (%T) has no reshard face", src, t.child(src))
	}
	g := t.gen[src].Load()
	ids, rows, err := rs.TryExportPartIn(part, of, within, withinOf)
	if err != nil {
		t.markDeadIfGen(src, g, err)
		return nil, nil, err
	}
	return ids, rows, nil
}

// RecoveryWriteTo streams rows to server dst in batch-row recovery writes
// (dst's freshness filter drops rows live dual writes already refreshed),
// returning the rows and payload bytes actually sent — which also feed the
// tier's ReshardRows/ReshardBytes counters. A mid-stream failure condemns
// dst (fenced) and returns what landed.
func (t *ShardedStore) RecoveryWriteTo(dst int, ids []uint64, rows [][]float32, batch int) (int, int64, error) {
	if dst < 0 || dst >= t.capacity {
		return 0, 0, fmt.Errorf("transport: server %d outside tier capacity %d", dst, t.capacity)
	}
	if batch <= 0 {
		batch = 512
	}
	rec, ok := t.child(dst).(RecoveryStore)
	if !ok {
		return 0, 0, fmt.Errorf("transport: server %d (%T) cannot accept recovery writes", dst, t.child(dst))
	}
	g := t.gen[dst].Load()
	sent, bytes := 0, int64(0)
	flush := func() {
		t.reshardRows.Add(int64(sent))
		t.reshardBytes.Add(bytes)
	}
	for off := 0; off < len(ids); off += batch {
		end := min(off+batch, len(ids))
		if err := rec.TryWriteRecovery(ids[off:end], rows[off:end]); err != nil {
			t.markDeadIfGen(dst, g, err)
			flush()
			return sent, bytes, err
		}
		sent += end - off
		bytes += payloadBytes(end-off, t.dim)
	}
	flush()
	return sent, bytes, nil
}

// FingerprintPartInOn digests the (part ∩ within) intersection on server
// s: the migration's per-round verify probe. One attempt, unfenced by
// routing (the epochs are the coordinator's own).
func (t *ShardedStore) FingerprintPartInOn(s, part, of, within, withinOf int) (uint64, error) {
	if s < 0 || s >= t.capacity {
		return 0, fmt.Errorf("transport: server %d outside tier capacity %d", s, t.capacity)
	}
	rs := t.reshardFace(s)
	if rs == nil {
		return 0, fmt.Errorf("transport: server %d (%T) has no reshard face", s, t.child(s))
	}
	g := t.gen[s].Load()
	fp, err := rs.TryFingerprintPartIn(part, of, within, withinOf)
	if err != nil {
		t.markDeadIfGen(s, g, err)
		return 0, err
	}
	return fp, nil
}

// RetainOwnedOn asks server s to shed every row outside its
// replicate-deep replica set of an of-way split — the settle-time cleanup
// that restores the invariant that a server materializes only rows it can
// be asked for.
func (t *ShardedStore) RetainOwnedOn(s, self, of, replicate int) (int, error) {
	if s < 0 || s >= t.capacity {
		return 0, fmt.Errorf("transport: server %d outside tier capacity %d", s, t.capacity)
	}
	rs := t.reshardFace(s)
	if rs == nil {
		return 0, fmt.Errorf("transport: server %d (%T) has no reshard face", s, t.child(s))
	}
	g := t.gen[s].Load()
	n, err := rs.TryRetainOwned(self, of, replicate)
	if err != nil {
		t.markDeadIfGen(s, g, err)
		return 0, err
	}
	return n, nil
}
