package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingPolicy is a scripted ReadPolicy: a veto set plus a log of every
// attempt observed — the regression tests' stand-in for the serving
// circuit breaker.
type recordingPolicy struct {
	mu       sync.Mutex
	veto     map[int]bool
	observed []struct {
		server int
		err    error
	}
}

func (p *recordingPolicy) AllowRead(server int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.veto[server]
}

func (p *recordingPolicy) ObserveRead(server int, d time.Duration, err error) {
	p.mu.Lock()
	p.observed = append(p.observed, struct {
		server int
		err    error
	}{server, err})
	p.mu.Unlock()
}

func (p *recordingPolicy) observedErrs(server int) (total, failed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, o := range p.observed {
		if o.server == server {
			total++
			if o.err != nil {
				failed++
			}
		}
	}
	return
}

// readIDs spans every partition of a 2-server tier.
var readIDs = []uint64{0, 1, 2, 3, 10, 11, 20, 33}

// ReadFetch on a healthy tier returns exactly what Fetch returns, and the
// policy observes every attempt as a success.
func TestReadFetchMatchesFetchWhenHealthy(t *testing.T) {
	for _, S := range []int{1, 2} {
		tier, _, _, _, _ := faultTier(S, TierOptions{Replicate: 1})
		pol := &recordingPolicy{}
		want := tier.Fetch(readIDs)
		got, err := tier.ReadFetch(readIDs, pol)
		if err != nil {
			t.Fatalf("S=%d: ReadFetch on a healthy tier: %v", S, err)
		}
		for i := range want {
			for c := range want[i] {
				if want[i][c] != got[i][c] {
					t.Fatalf("S=%d: row %d differs between Fetch and ReadFetch", S, i)
				}
			}
		}
		if total, failed := pol.observedErrs(0); total == 0 || failed != 0 {
			t.Fatalf("S=%d: policy observed %d attempts, %d failures; want >0, 0", S, total, failed)
		}
		Rows(tier.Dim()).PutN(want)
		Rows(tier.Dim()).PutN(got)
	}
}

// The central regression: with every replica of a partition dead, ReadFetch
// must return promptly — never hang, never panic — with a *TierError
// attributing op, partition, and last server tried. The read path spreads
// the tier's retry budget across requests (each replica is tried once per
// request), so once a server exhausts that budget in consecutive read
// errors it is condemned exactly like a write-path exhaustion — that is
// how a read-only tier client's DeadServers() feeds its Reviver.
func TestReadFetchAllReplicasDeadAttributed(t *testing.T) {
	const S = 2
	tier, faults, _, _, _ := faultTier(S, TierOptions{Replicate: 2, Retries: 1, Backoff: time.Millisecond})
	// Warm, then kill both servers: every partition loses every replica.
	if _, err := tier.ReadFetch(readIDs, nil); err != nil {
		t.Fatalf("warm read: %v", err)
	}
	faults[0].SetDown(true)
	faults[1].SetDown(true)

	type result struct {
		rows [][]float32
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		rows, err := tier.ReadFetch(readIDs, nil)
		ch <- result{rows, err}
	}()
	var res result
	select {
	case res = <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("ReadFetch hung with all replicas dead")
	}
	if res.err == nil {
		t.Fatal("ReadFetch returned rows from a fully dead tier")
	}
	var te *TierError
	if !errors.As(res.err, &te) {
		t.Fatalf("error %T is not a *TierError: %v", res.err, res.err)
	}
	if te.Op != "read" {
		t.Fatalf("op %q, want \"read\"", te.Op)
	}
	if te.Partition < 0 || te.Partition >= S {
		t.Fatalf("partition %d out of tier range", te.Partition)
	}
	if te.Server < 0 || te.Server >= S {
		t.Fatalf("server %d out of tier range", te.Server)
	}
	if te.Replicate != 2 {
		t.Fatalf("replication factor %d, want 2", te.Replicate)
	}
	if te.Cause == nil || !strings.Contains(te.Cause.Error(), "down") {
		t.Fatalf("cause %v does not name the injected fault", te.Cause)
	}

	// With Retries=1 the single failed attempt per server exhausted the
	// read retry budget: both servers are condemned, which is what lets a
	// read-only client's Reviver re-dial and rejoin them.
	if h := tier.TierHealth(); len(h.Dead) != S {
		t.Fatalf("read path condemned %v, want all %d servers after budget exhaustion", h.Dead, S)
	}
}

// A transient read error below the retry budget must NOT condemn the
// server: the next successful read resets the streak, and the train-path
// Fetch never fails over.
func TestReadFetchTransientErrorNotCondemned(t *testing.T) {
	tier, faults, _, _, _ := faultTier(2, TierOptions{Replicate: 2, Retries: 3, Backoff: time.Millisecond})
	faults[1].SetDown(true)
	for i := 0; i < 2; i++ { // two failures: one short of the budget
		rows, err := tier.ReadFetch(readIDs, nil)
		if err != nil {
			t.Fatalf("read %d with a live replica: %v", i, err)
		}
		Rows(tier.Dim()).PutN(rows)
	}
	faults[1].SetDown(false) // the blip heals
	rows, err := tier.ReadFetch(readIDs, nil)
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	Rows(tier.Dim()).PutN(rows)
	if h := tier.TierHealth(); len(h.Dead) != 0 {
		t.Fatalf("transient read errors condemned servers %v", h.Dead)
	}
	// The healed streak reset: two more failures still stay under budget.
	faults[1].SetDown(true)
	for i := 0; i < 2; i++ {
		rows, err := tier.ReadFetch(readIDs, nil)
		if err != nil {
			t.Fatalf("read %d after re-down: %v", i, err)
		}
		Rows(tier.Dim()).PutN(rows)
	}
	if h := tier.TierHealth(); len(h.Dead) != 0 {
		t.Fatalf("reset failure streak still condemned servers %v", h.Dead)
	}
}

// With one server dead and R=2, reads fail over to the surviving replica —
// and the policy sees the failures it needs to trip a breaker.
func TestReadFetchFailsOverToReplica(t *testing.T) {
	tier, faults, _, _, _ := faultTier(2, TierOptions{Replicate: 2})
	faults[1].SetDown(true)
	pol := &recordingPolicy{}
	rows, err := tier.ReadFetch(readIDs, pol)
	if err != nil {
		t.Fatalf("R=2 read with one dead server: %v", err)
	}
	Rows(tier.Dim()).PutN(rows)
	if _, failed := pol.observedErrs(1); failed == 0 {
		t.Fatal("policy never observed the dead server failing")
	}
}

// A policy vetoing every live replica (breaker open tier-wide) surfaces an
// attributed TierError naming the veto, instead of queueing behind the
// vetoed servers.
func TestReadFetchBreakerOpenAttributed(t *testing.T) {
	tier, _, _, _, _ := faultTier(2, TierOptions{Replicate: 2})
	pol := &recordingPolicy{veto: map[int]bool{0: true, 1: true}}
	_, err := tier.ReadFetch(readIDs, pol)
	var te *TierError
	if !errors.As(err, &te) {
		t.Fatalf("breaker-open error %T is not a *TierError: %v", err, err)
	}
	if te.Op != "read" {
		t.Fatalf("op %q, want \"read\"", te.Op)
	}
	if !strings.Contains(err.Error(), "vetoed by the read policy") {
		t.Fatalf("error does not name the veto: %v", err)
	}
	if total, _ := pol.observedErrs(0); total != 0 {
		t.Fatal("vetoed server was still attempted")
	}
}

// The single-server adapter keeps the same attribution contract at S=1:
// failures surface as *TierError with partition 0, veto included.
func TestSingleReadStoreAttribution(t *testing.T) {
	tier := testTier(1)
	fault := NewFaultStore(NewInProcess(tier[0]), 0)
	rs := AsReadStore(fault)

	rows, err := rs.ReadFetch(readIDs, nil)
	if err != nil {
		t.Fatalf("healthy single store: %v", err)
	}
	Rows(rs.Dim()).PutN(rows)

	fault.SetDown(true)
	_, err = rs.ReadFetch(readIDs, nil)
	var te *TierError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TierError: %v", err, err)
	}
	if te.Op != "read" || te.Partition != 0 || te.Server != 0 || te.Replicate != 1 {
		t.Fatalf("attribution %+v, want read/0/0/1", te)
	}

	fault.SetDown(false)
	pol := &recordingPolicy{veto: map[int]bool{0: true}}
	_, err = rs.ReadFetch(readIDs, pol)
	if !errors.As(err, &te) || !strings.Contains(err.Error(), "vetoed by the read policy") {
		t.Fatalf("veto error not attributed: %v", err)
	}
}

// A partial outage sheds only the dead partition's reads at R=1; the other
// partition still serves, and the error names the dead one.
func TestReadFetchPartialOutageAttribution(t *testing.T) {
	tier, faults, _, _, _ := faultTier(2, TierOptions{Replicate: 1})
	faults[1].SetDown(true)

	// IDs all owned by partition 0 still serve.
	p0 := []uint64{0, 2, 10, 20}
	rows, err := tier.ReadFetch(p0, nil)
	if err != nil {
		t.Fatalf("healthy partition shed by a neighbor's outage: %v", err)
	}
	Rows(tier.Dim()).PutN(rows)

	// A batch touching partition 1 fails with partition 1 named.
	_, err = tier.ReadFetch(readIDs, nil)
	var te *TierError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TierError: %v", err, err)
	}
	if te.Partition != 1 || te.Server != 1 {
		t.Fatalf("attributed partition %d server %d, want 1/1", te.Partition, te.Server)
	}
}

// Concurrent ReadFetch against a mid-flight SetDown/SetUp flap never
// panics, hangs, or returns an unattributed error (smoke for the pooled
// scratch and row-recycling discipline on the error path).
func TestReadFetchConcurrentFlap(t *testing.T) {
	tier, faults, _, _, _ := faultTier(2, TierOptions{Replicate: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			faults[i%2].SetDown(true)
			time.Sleep(200 * time.Microsecond)
			faults[i%2].SetDown(false)
		}
	}()
	var readers sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				rows, err := tier.ReadFetch(readIDs, nil)
				if err != nil {
					var te *TierError
					if !errors.As(err, &te) {
						errs <- fmt.Errorf("unattributed read error: %w", err)
						return
					}
					continue
				}
				Rows(tier.Dim()).PutN(rows)
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
