package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultStore wraps any child Store with a switchable fallible face — the
// unit-level stand-in for a killed or crawling remote server. The PR-7
// tier-failover suite uses it to condemn servers mid-run without real
// sockets; the serving conformance suite reuses it to drive the read path's
// breaker and shed logic. Production tiers never construct one; it lives in
// the main build so test suites in other packages (train, serve) can inject
// faults through the same wrapper.
//
// Semantics: while down, every fallible op fails with an error naming the
// server; SetSlow injects a fixed latency before each fallible op (a slow
// shard rather than a dead one). The errorless Store methods pass straight
// through — the tier only routes fallible children through the
// retry/failover machinery, so a FaultStore is always condemnable.
type FaultStore struct {
	Store
	server int
	down   atomic.Bool
	slowNs atomic.Int64
}

// NewFaultStore wraps child as tier server index server.
func NewFaultStore(child Store, server int) *FaultStore {
	return &FaultStore{Store: child, server: server}
}

// SetDown switches the injected hard failure on or off.
func (f *FaultStore) SetDown(down bool) { f.down.Store(down) }

// Down reports whether the store is currently failing.
func (f *FaultStore) Down() bool { return f.down.Load() }

// SetSlow injects d of latency before every fallible op (0 disables).
func (f *FaultStore) SetSlow(d time.Duration) { f.slowNs.Store(int64(d)) }

// instant preserves the child's scatter-path classification: wrapping an
// in-process server must not silently switch the tier to the concurrent
// scatter the serial tests pin.
func (f *FaultStore) instant() bool {
	if is, ok := f.Store.(instantStore); ok {
		return is.instant()
	}
	return false
}

// gate injects the configured latency and reports the down error, if any.
func (f *FaultStore) gate() error {
	if d := time.Duration(f.slowNs.Load()); d > 0 {
		time.Sleep(d)
	}
	if f.down.Load() {
		return fmt.Errorf("transport: fault injection: server %d down", f.server)
	}
	return nil
}

// fallibleChild returns the child's fallible face, if it has one.
func (f *FaultStore) fallibleChild() FallibleStore {
	fs, _ := f.Store.(FallibleStore)
	return fs
}

// TryFetch implements FallibleStore.
func (f *FaultStore) TryFetch(ids []uint64) ([][]float32, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	if fs := f.fallibleChild(); fs != nil {
		return fs.TryFetch(ids)
	}
	return f.Store.Fetch(ids), nil
}

// TryWrite implements FallibleStore.
func (f *FaultStore) TryWrite(ids []uint64, rows [][]float32) error {
	if err := f.gate(); err != nil {
		return err
	}
	if fs := f.fallibleChild(); fs != nil {
		return fs.TryWrite(ids, rows)
	}
	f.Store.Write(ids, rows)
	return nil
}

// TryFingerprintPart implements FallibleStore.
func (f *FaultStore) TryFingerprintPart(part, of int) (uint64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	if fs := f.fallibleChild(); fs != nil {
		return fs.TryFingerprintPart(part, of)
	}
	pf, ok := f.Store.(partFingerprinter)
	if !ok {
		return 0, fmt.Errorf("transport: fault-injected server %d (%T) cannot serve partition fingerprints", f.server, f.Store)
	}
	return pf.FingerprintPart(part, of), nil
}

// TryCheckpoint implements FallibleStore.
func (f *FaultStore) TryCheckpoint() ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	if fs := f.fallibleChild(); fs != nil {
		return fs.TryCheckpoint()
	}
	return f.Store.Checkpoint(), nil
}

// TryExportPart implements PartExporter, gated like every fallible op so
// tests can kill an anti-entropy *source* mid-resync.
func (f *FaultStore) TryExportPart(part, of int) ([]uint64, [][]float32, error) {
	if err := f.gate(); err != nil {
		return nil, nil, err
	}
	exp, ok := f.Store.(PartExporter)
	if !ok {
		return nil, nil, fmt.Errorf("transport: fault-injected server %d (%T) cannot export partitions", f.server, f.Store)
	}
	return exp.TryExportPart(part, of)
}

// TryWriteRecovery / TryEndRecovery implement RecoveryStore, gated so tests
// can kill a *rejoiner* mid-transfer.
func (f *FaultStore) TryWriteRecovery(ids []uint64, rows [][]float32) error {
	if err := f.gate(); err != nil {
		return err
	}
	rec, ok := f.Store.(RecoveryStore)
	if !ok {
		return fmt.Errorf("transport: fault-injected server %d (%T) cannot accept recovery writes", f.server, f.Store)
	}
	return rec.TryWriteRecovery(ids, rows)
}

func (f *FaultStore) TryEndRecovery() error {
	if err := f.gate(); err != nil {
		return err
	}
	rec, ok := f.Store.(RecoveryStore)
	if !ok {
		return fmt.Errorf("transport: fault-injected server %d (%T) has no recovery face", f.server, f.Store)
	}
	return rec.TryEndRecovery()
}

// reshardChild returns the child's reshard face or an attributed error.
func (f *FaultStore) reshardChild() (ReshardStore, error) {
	rs, ok := f.Store.(ReshardStore)
	if !ok {
		return nil, fmt.Errorf("transport: fault-injected server %d (%T) has no reshard face", f.server, f.Store)
	}
	return rs, nil
}

// TryInstallRouting, TryAnnounceEpoch, TryBeginRecovery, TryExportPartIn,
// TryFingerprintPartIn, TryRetainOwned implement ReshardStore, gated like
// every fallible op so tests can kill a migration source, target, or the
// coordinator's control plane mid-reshard.
func (f *FaultStore) TryInstallRouting(rt *RoutingTable) error {
	if err := f.gate(); err != nil {
		return err
	}
	rs, err := f.reshardChild()
	if err != nil {
		return err
	}
	return rs.TryInstallRouting(rt)
}

func (f *FaultStore) TryAnnounceEpoch(epoch uint64) error {
	if err := f.gate(); err != nil {
		return err
	}
	rs, err := f.reshardChild()
	if err != nil {
		return err
	}
	return rs.TryAnnounceEpoch(epoch)
}

func (f *FaultStore) TryBeginRecovery() error {
	if err := f.gate(); err != nil {
		return err
	}
	rs, err := f.reshardChild()
	if err != nil {
		return err
	}
	return rs.TryBeginRecovery()
}

func (f *FaultStore) TryExportPartIn(part, of, within, withinOf int) ([]uint64, [][]float32, error) {
	if err := f.gate(); err != nil {
		return nil, nil, err
	}
	rs, err := f.reshardChild()
	if err != nil {
		return nil, nil, err
	}
	return rs.TryExportPartIn(part, of, within, withinOf)
}

func (f *FaultStore) TryFingerprintPartIn(part, of, within, withinOf int) (uint64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	rs, err := f.reshardChild()
	if err != nil {
		return 0, err
	}
	return rs.TryFingerprintPartIn(part, of, within, withinOf)
}

func (f *FaultStore) TryRetainOwned(self, of, replicate int) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	rs, err := f.reshardChild()
	if err != nil {
		return 0, err
	}
	return rs.TryRetainOwned(self, of, replicate)
}
