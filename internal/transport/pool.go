package transport

import (
	"fmt"
	"sync"
)

// Hot-path buffer pooling. The steady-state LRPP iteration moves the same
// three shapes of memory every batch — fixed-width embedding rows
// ([]float32 of the tier's dim), row-slice headers ([][]float32 holding a
// fetch result), and id→row maps (replica payloads) — and before this file
// existed each one was a fresh allocation, making GC the dominant avoidable
// cost on the P=4 TCP profile. The pools here are deliberately *not*
// sync.Pool: putting a slice header into a sync.Pool boxes it into an
// interface (one allocation per Put), which would defeat the 0 allocs/op
// goal outright. A mutex-guarded free list is allocation-free on both Get
// and Put, and the mutex gives the happens-before edge the race detector
// needs when rows migrate between trainer goroutines.
//
// Ownership discipline (see ARCHITECTURE.md "Memory discipline"):
//
//   - Rows(dim).Get hands out a buffer with undefined contents; the caller
//     must overwrite every element before reading.
//   - Put transfers ownership back. Returning is always optional — a row
//     that simply goes out of scope is collected normally — but a row must
//     never be Put while any other reference to it is live.
//   - Row-slice headers are zeroed on Put so a recycled header can never
//     resurrect rows the previous owner released.

// RowArena recycles fixed-width row buffers. All rows in one arena have the
// same length; Get/Put of mismatched widths panic, which catches ownership
// bugs (a sub-slice of a larger buffer, say) at the pool boundary instead
// of as silent aliasing.
type RowArena struct {
	dim  int
	mu   sync.Mutex
	free [][]float32
}

// NewRowArena returns an empty arena for rows of width dim.
func NewRowArena(dim int) *RowArena {
	if dim <= 0 {
		panic(fmt.Sprintf("transport: row arena dim %d", dim))
	}
	return &RowArena{dim: dim}
}

// rowArenas is the per-width registry behind Rows. Transports and trainers
// that share a tier share one arena, so a row fetched by one component can
// be released by whichever component consumes it last.
var rowArenas sync.Map // int → *RowArena

// Rows returns the process-wide shared arena for rows of width dim.
func Rows(dim int) *RowArena {
	if a, ok := rowArenas.Load(dim); ok {
		return a.(*RowArena)
	}
	a, _ := rowArenas.LoadOrStore(dim, NewRowArena(dim))
	return a.(*RowArena)
}

// Dim returns the row width this arena serves.
func (a *RowArena) Dim() int { return a.dim }

// Get returns a row of length Dim with undefined contents. The caller owns
// it until (optionally) returning it with Put.
func (a *RowArena) Get() []float32 {
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		row := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.mu.Unlock()
		return row
	}
	a.mu.Unlock()
	return make([]float32, a.dim)
}

// GetN fills every slot of dst with a row from the arena under a single
// lock acquisition.
func (a *RowArena) GetN(dst [][]float32) {
	a.mu.Lock()
	n := len(a.free)
	for i := range dst {
		if n > 0 {
			n--
			dst[i] = a.free[n]
			a.free[n] = nil
		} else {
			dst[i] = make([]float32, a.dim)
		}
	}
	a.free = a.free[:n]
	a.mu.Unlock()
}

// Put returns row to the arena. The caller must hold the only live
// reference. Panics if the row's length is not the arena width — a
// foreign or sub-sliced buffer must never enter the free list.
func (a *RowArena) Put(row []float32) {
	if len(row) != a.dim {
		panic(fmt.Sprintf("transport: put row len %d into dim-%d arena", len(row), a.dim))
	}
	a.mu.Lock()
	a.free = append(a.free, row)
	a.mu.Unlock()
}

// PutN returns every non-nil row in rows under a single lock acquisition.
// The slice itself is left untouched (callers usually recycle or truncate
// it separately).
func (a *RowArena) PutN(rows [][]float32) {
	a.mu.Lock()
	for _, row := range rows {
		if row == nil {
			continue
		}
		if len(row) != a.dim {
			a.mu.Unlock()
			panic(fmt.Sprintf("transport: put row len %d into dim-%d arena", len(row), a.dim))
		}
		a.free = append(a.free, row)
	}
	a.mu.Unlock()
}

// rowSlicePool recycles [][]float32 headers (fetch results, scatter/gather
// assembly). Headers are zeroed on Put so a recycled header cannot leak the
// previous batch's rows.
var rowSlicePool struct {
	mu   sync.Mutex
	free [][][]float32
}

// GetRowSlice returns a [][]float32 of length n with all-nil slots. The
// caller must assign every slot before reading.
func GetRowSlice(n int) [][]float32 {
	rowSlicePool.mu.Lock()
	if l := len(rowSlicePool.free); l > 0 {
		h := rowSlicePool.free[l-1]
		rowSlicePool.free[l-1] = nil
		rowSlicePool.free = rowSlicePool.free[:l-1]
		if cap(h) >= n {
			rowSlicePool.mu.Unlock()
			return h[:n]
		}
		// Too small for this batch: drop it and allocate at the new high
		// water mark. Steady-state batch sizes converge, so this settles.
	}
	rowSlicePool.mu.Unlock()
	return make([][]float32, n)
}

// PutRowSlice returns a header to the pool, clearing its slots. The rows it
// referenced are unaffected — releasing those is a separate decision made
// by whoever owns them.
func PutRowSlice(h [][]float32) {
	if h == nil {
		return
	}
	clear(h[:cap(h)])
	rowSlicePool.mu.Lock()
	rowSlicePool.free = append(rowSlicePool.free, h)
	rowSlicePool.mu.Unlock()
}

// rowMapPool recycles id→row maps — the payload shape of replica pushes.
// A sender builds its snapshot in a pooled map, the mesh moves it (by
// reference in process, re-materialized by the codec over TCP), and the
// receiver returns it once the rows have been claimed.
var rowMapPool struct {
	mu   sync.Mutex
	free []map[uint64][]float32
}

// GetRowMap returns an empty id→row map.
func GetRowMap() map[uint64][]float32 {
	rowMapPool.mu.Lock()
	if l := len(rowMapPool.free); l > 0 {
		m := rowMapPool.free[l-1]
		rowMapPool.free[l-1] = nil
		rowMapPool.free = rowMapPool.free[:l-1]
		rowMapPool.mu.Unlock()
		return m
	}
	rowMapPool.mu.Unlock()
	return make(map[uint64][]float32)
}

// PutRowMap clears m and returns it to the pool. As with PutRowSlice, the
// rows it referenced stay owned by whoever took them out.
func PutRowMap(m map[uint64][]float32) {
	if m == nil {
		return
	}
	clear(m)
	rowMapPool.mu.Lock()
	rowMapPool.free = append(rowMapPool.free, m)
	rowMapPool.mu.Unlock()
}
