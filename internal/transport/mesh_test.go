package transport

import (
	"sync"
	"testing"
	"time"

	"bagpipe/internal/embed"
)

func TestInprocMeshRoundTrip(t *testing.T) {
	m := NewInprocMesh(3)
	a, b := m.Endpoint(0), m.Endpoint(1)
	if !a.Send(1, 100, "hello") {
		t.Fatal("send refused")
	}
	msg, ok := b.Recv()
	if !ok || msg.From != 0 || msg.To != 1 || msg.Bytes != 100 || msg.Payload.(string) != "hello" {
		t.Fatalf("recv %+v ok=%v", msg, ok)
	}
	st := m.Stats()
	if st.Msgs != 1 || st.Bytes != 100 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Close wakes a blocked receiver and drops later sends.
	done := make(chan bool)
	go func() {
		_, ok := b.Recv()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	b.Close()
	if ok := <-done; ok {
		t.Fatal("Recv on closed empty endpoint returned a message")
	}
	if a.Send(1, 10, "late") {
		t.Fatal("send to closed endpoint accepted")
	}
	if m.Stats().Dropped != 1 {
		t.Fatalf("dropped %d want 1", m.Stats().Dropped)
	}
}

func TestInprocMeshCloseDrainsQueue(t *testing.T) {
	m := NewInprocMesh(2)
	a, b := m.Endpoint(0), m.Endpoint(1)
	a.Send(1, 1, 1)
	a.Send(1, 1, 2)
	b.Close()
	// Queued messages stay readable after close.
	if msg, ok := b.Recv(); !ok || msg.Payload.(int) != 1 {
		t.Fatalf("first queued message lost: %+v %v", msg, ok)
	}
	if msg, ok := b.Recv(); !ok || msg.Payload.(int) != 2 {
		t.Fatalf("second queued message lost: %+v %v", msg, ok)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("drained closed endpoint still returns messages")
	}
}

// TestSimMeshInFlightReordering: a small message on one link overtakes a
// large transfer in flight on another link to the same receiver.
func TestSimMeshInFlightReordering(t *testing.T) {
	m := NewSimMesh(3, 0, 1_000_000) // 1 MB/s links, no propagation delay
	big, small, dst := m.Endpoint(1), m.Endpoint(2), m.Endpoint(0)
	big.Send(0, 100_000, "big") // 100ms serialization on link 1->0
	time.Sleep(10 * time.Millisecond)
	small.Send(0, 100, "small") // ~0.1ms on link 2->0, sent later
	first, ok := dst.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if first.Payload.(string) != "small" {
		t.Fatalf("no reordering: first arrival was %q", first.Payload)
	}
	second, ok := dst.Recv()
	if !ok || second.Payload.(string) != "big" {
		t.Fatalf("big message lost: %+v %v", second, ok)
	}
	m.Quiesce()
}

// TestSimMeshBandwidthSharing: messages on one directed link serialize
// (back-to-back transfers share the link), while different links carry
// traffic independently. Asserted on the deterministic delay accounting,
// not wall-clock sleeps.
func TestSimMeshBandwidthSharing(t *testing.T) {
	const bw = 1_000_000 // 1 MB/s
	const bytes = 50_000 // 50ms serialization each

	shared := NewSimMesh(2, 0, bw)
	e := shared.Endpoint(0)
	e.Send(1, bytes, nil)
	e.Send(1, bytes, nil) // queued behind the first on the same link
	shared.Quiesce()
	// First message ~50ms, second waits for the link: ~100ms. Total ≥ 145ms.
	if d := shared.Stats().SimulatedDelay; d < 145*time.Millisecond {
		t.Fatalf("same-link transfers did not share bandwidth: total delay %v", d)
	}

	indep := NewSimMesh(3, 0, bw)
	indep.Endpoint(0).Send(2, bytes, nil)
	indep.Endpoint(1).Send(2, bytes, nil) // different link, same receiver
	indep.Quiesce()
	// Each link serializes independently: ~50ms each, total ~100ms.
	if d := indep.Stats().SimulatedDelay; d > 130*time.Millisecond {
		t.Fatalf("independent links appear serialized: total delay %v", d)
	}
}

// TestSimMeshCloseWhileSending: closing the receiver with transfers in
// flight must not panic, deadlock, or leak — in-flight messages are
// counted as dropped and Quiesce still returns.
func TestSimMeshCloseWhileSending(t *testing.T) {
	m := NewSimMesh(2, 20*time.Millisecond, 0)
	src, dst := m.Endpoint(0), m.Endpoint(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src.Send(1, 1000, i)
		}(i)
	}
	wg.Wait()
	dst.Close() // all 8 still in flight (20ms latency)
	m.Quiesce()
	st := m.Stats()
	if st.Msgs != 8 || st.Dropped != 8 {
		t.Fatalf("stats %+v, want 8 sent / 8 dropped", st)
	}
	if _, ok := dst.Recv(); ok {
		t.Fatal("closed endpoint delivered a dropped message")
	}
}

// TestSimNetConcurrentEndpoints drives one SimNet transport from many
// goroutines at once — the multi-trainer LRPP pattern — and checks the
// state changes and byte accounting stay exact under concurrency.
func TestSimNetConcurrentEndpoints(t *testing.T) {
	const trainers = 4
	srv := embed.NewServer(2, 4, 9, 0.1)
	ref := embed.NewServer(2, 4, 9, 0.1)
	tr := NewSimNet(srv, 500*time.Microsecond, 0)

	var wg sync.WaitGroup
	for p := 0; p < trainers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Disjoint id ranges per goroutine, like partitioned caches.
			ids := []uint64{uint64(p), uint64(p + trainers), uint64(p + 2*trainers)}
			rows := tr.Fetch(ids)
			for _, r := range rows {
				r[0] += float32(p + 1)
			}
			tr.Write(ids, rows)
		}(p)
	}
	wg.Wait()

	for p := 0; p < trainers; p++ {
		ids := []uint64{uint64(p), uint64(p + trainers), uint64(p + 2*trainers)}
		rows := ref.Fetch(ids)
		for _, r := range rows {
			r[0] += float32(p + 1)
		}
		ref.Write(ids, rows)
	}
	if d := embed.Diff(ref, srv); len(d) != 0 {
		t.Fatalf("concurrent simnet diverged from serial reference at %v", d)
	}
	st := tr.Stats()
	wantRows := int64(trainers * 3)
	if st.RowsFetched != wantRows || st.RowsWritten != wantRows {
		t.Fatalf("row accounting lost under concurrency: %+v", st)
	}
	wantBytes := wantRows * (8 + 4*4)
	if st.BytesFetched != wantBytes || st.BytesWritten != wantBytes {
		t.Fatalf("byte accounting lost under concurrency: %+v", st)
	}
	if st.SimulatedDelay < time.Duration(2*trainers)*500*time.Microsecond {
		t.Fatalf("delay accounting lost under concurrency: %v", st.SimulatedDelay)
	}
}
