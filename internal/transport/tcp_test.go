package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"bagpipe/internal/embed"
)

// startEmbedServer serves srv on a loopback listener and returns its
// address plus a join function for the serve loop.
func startEmbedServer(t *testing.T, srv *embed.Server) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeEmbed(lis, srv) }()
	return lis.Addr().String(), func() {
		if err := <-done; err != nil {
			t.Errorf("ServeEmbed: %v", err)
		}
	}
}

// TestTCPLinkRoundTrip: fetch/write over a real socket mutate the server
// exactly like the in-process transport, and the control ops (fingerprint,
// checkpoint, shutdown) work.
func TestTCPLinkRoundTrip(t *testing.T) {
	srv := embed.NewServer(2, 4, 3, 0.1)
	ref := embed.NewServer(2, 4, 3, 0.1)
	addr, join := startEmbedServer(t, srv)

	tr, err := DialTCPLink(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dim() != 4 || tr.Name() != "tcp" {
		t.Fatalf("handshake metadata: dim %d name %q", tr.Dim(), tr.Name())
	}

	ids := []uint64{1, 2, 3}
	rows := tr.Fetch(ids)
	refRows := NewInProcess(ref).Fetch(ids)
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != refRows[i][j] {
				t.Fatalf("fetched row %d differs from in-process fetch", i)
			}
		}
		rows[i][0] = float32(i) + 42
		refRows[i][0] = float32(i) + 42
	}
	tr.Write(ids, rows)
	NewInProcess(ref).Write(ids, refRows)
	if d := embed.Diff(ref, srv); len(d) != 0 {
		t.Fatalf("tcp link diverged from in-process at ids %v", d)
	}
	if fp := tr.Fingerprint(); fp != ref.Fingerprint() {
		t.Fatalf("remote fingerprint %x != local %x", fp, ref.Fingerprint())
	}
	restored, err := embed.RestoreServer(bytes.NewReader(tr.Checkpoint()), srv.NumShards())
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, restored); len(d) != 0 {
		t.Fatalf("restored checkpoint diverged at ids %v", d)
	}

	st := tr.Stats()
	wantBytes := int64(3 * (8 + 4*4))
	if st.Fetches != 1 || st.RowsFetched != 3 || st.BytesFetched != wantBytes {
		t.Fatalf("fetch stats %+v", st)
	}
	if st.Writes != 1 || st.RowsWritten != 3 || st.BytesWritten != wantBytes {
		t.Fatalf("write stats %+v", st)
	}

	tr.Shutdown()
	tr.Close()
	join()
}

// TestTCPMeshCleanDeparture: a peer that shuts its mesh down announces a
// clean departure, so survivors keep running (and can still exchange
// traffic among themselves) instead of dying on the closed connection —
// the normal staggered-teardown path of a distributed run, where the
// crashed-peer case panics instead.
func TestTCPMeshCleanDeparture(t *testing.T) {
	lb, err := NewLoopbackTCPMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := lb.Endpoint(0), lb.Endpoint(1)
	if !a.Send(1, 10, RawMsg("pre")) {
		t.Fatal("send refused")
	}
	if msg, ok := b.Recv(); !ok || string(msg.Payload.(RawMsg)) != "pre" {
		t.Fatalf("recv %+v ok=%v", msg, ok)
	}
	// Rank 2 departs first, like a worker that finished early.
	lb.meshes[2].Shutdown()
	// Give the goodbyes time to land, then the survivors keep talking.
	time.Sleep(50 * time.Millisecond)
	if !a.Send(1, 10, RawMsg("post")) {
		t.Fatal("survivor send refused after peer departure")
	}
	if msg, ok := b.Recv(); !ok || string(msg.Payload.(RawMsg)) != "post" {
		t.Fatalf("survivors lost traffic after peer departure: %+v ok=%v", msg, ok)
	}
	// Sends to the departed rank are dropped, not fatal.
	a.Send(2, 10, RawMsg("late"))
	lb.meshes[0].Shutdown()
	lb.meshes[1].Shutdown()
}

// TestTCPMeshToleratesStrayConnections: a non-peer connection hitting a
// trainer's mesh port (port scanner, health probe, aborted dial) is
// dropped and the accept retried — it must not abort mesh construction.
func TestTCPMeshToleratesStrayConnections(t *testing.T) {
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr().String(), l1.Addr().String()}

	type built struct {
		m   *TCPMesh
		err error
	}
	m0ch := make(chan built, 1)
	go func() {
		m, err := NewTCPMesh(0, addrs, l0)
		m0ch <- built{m, err}
	}()
	// The stray connects (and sends garbage) before the real peer dials.
	stray, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	stray.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
	stray.Close()

	m1, err := NewTCPMesh(1, addrs, l1)
	if err != nil {
		t.Fatalf("mesh construction aborted by stray connection: %v", err)
	}
	b0 := <-m0ch
	if b0.err != nil {
		t.Fatalf("rank 0 aborted by stray connection: %v", b0.err)
	}
	if !m1.Endpoint(1).Send(0, 5, RawMsg("hi")) {
		t.Fatal("send refused")
	}
	if msg, ok := b0.m.Endpoint(0).Recv(); !ok || string(msg.Payload.(RawMsg)) != "hi" {
		t.Fatalf("recv %+v ok=%v", msg, ok)
	}
	b0.m.Shutdown()
	m1.Shutdown()
}

// TestTCPLinkPipelined drives one link from many goroutines at once — the
// LRPP dispatcher pattern of ℒ overlapped prefetches plus concurrent
// write-backs — and checks the end state and accounting stay exact.
func TestTCPLinkPipelined(t *testing.T) {
	const workers = 8
	srv := embed.NewServer(2, 4, 9, 0.1)
	ref := embed.NewServer(2, 4, 9, 0.1)
	addr, join := startEmbedServer(t, srv)
	tr, err := DialTCPLink(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ids := []uint64{uint64(p), uint64(p + workers), uint64(p + 2*workers)}
			rows := tr.Fetch(ids)
			for _, r := range rows {
				r[0] += float32(p + 1)
			}
			tr.Write(ids, rows)
		}(p)
	}
	wg.Wait()

	for p := 0; p < workers; p++ {
		ids := []uint64{uint64(p), uint64(p + workers), uint64(p + 2*workers)}
		rows := ref.Fetch(ids)
		for _, r := range rows {
			r[0] += float32(p + 1)
		}
		ref.Write(ids, rows)
	}
	if d := embed.Diff(ref, srv); len(d) != 0 {
		t.Fatalf("pipelined tcp link diverged from serial reference at %v", d)
	}
	st := tr.Stats()
	if want := int64(workers * 3); st.RowsFetched != want || st.RowsWritten != want {
		t.Fatalf("row accounting lost under concurrency: %+v", st)
	}
	tr.Shutdown()
	tr.Close()
	join()
}
