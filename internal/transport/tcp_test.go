package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bagpipe/internal/embed"
)

// startEmbedServer serves srv on a loopback listener and returns its
// address plus a join function for the serve loop.
func startEmbedServer(t *testing.T, srv *embed.Server) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeEmbed(lis, srv) }()
	return lis.Addr().String(), func() {
		if err := <-done; err != nil {
			t.Errorf("ServeEmbed: %v", err)
		}
	}
}

// TestTCPLinkRoundTrip: fetch/write over a real socket mutate the server
// exactly like the in-process transport, and the control ops (fingerprint,
// checkpoint, shutdown) work.
func TestTCPLinkRoundTrip(t *testing.T) {
	srv := embed.NewServer(2, 4, 3, 0.1)
	ref := embed.NewServer(2, 4, 3, 0.1)
	addr, join := startEmbedServer(t, srv)

	tr, err := DialTCPLink(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dim() != 4 || tr.Name() != "tcp" {
		t.Fatalf("handshake metadata: dim %d name %q", tr.Dim(), tr.Name())
	}

	ids := []uint64{1, 2, 3}
	rows := tr.Fetch(ids)
	refRows := NewInProcess(ref).Fetch(ids)
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != refRows[i][j] {
				t.Fatalf("fetched row %d differs from in-process fetch", i)
			}
		}
		rows[i][0] = float32(i) + 42
		refRows[i][0] = float32(i) + 42
	}
	tr.Write(ids, rows)
	NewInProcess(ref).Write(ids, refRows)
	if d := embed.Diff(ref, srv); len(d) != 0 {
		t.Fatalf("tcp link diverged from in-process at ids %v", d)
	}
	if fp := tr.Fingerprint(); fp != ref.Fingerprint() {
		t.Fatalf("remote fingerprint %x != local %x", fp, ref.Fingerprint())
	}
	restored, err := embed.RestoreServer(bytes.NewReader(tr.Checkpoint()), srv.NumShards())
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, restored); len(d) != 0 {
		t.Fatalf("restored checkpoint diverged at ids %v", d)
	}

	st := tr.Stats()
	wantBytes := int64(3 * (8 + 4*4))
	if st.Fetches != 1 || st.RowsFetched != 3 || st.BytesFetched != wantBytes {
		t.Fatalf("fetch stats %+v", st)
	}
	if st.Writes != 1 || st.RowsWritten != 3 || st.BytesWritten != wantBytes {
		t.Fatalf("write stats %+v", st)
	}

	tr.Shutdown()
	tr.Close()
	join()
}

// TestTCPMeshCleanDeparture: a peer that shuts its mesh down announces a
// clean departure, so survivors keep running (and can still exchange
// traffic among themselves) instead of dying on the closed connection —
// the normal staggered-teardown path of a distributed run, where the
// crashed-peer case panics instead.
func TestTCPMeshCleanDeparture(t *testing.T) {
	lb, err := NewLoopbackTCPMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := lb.Endpoint(0), lb.Endpoint(1)
	if !a.Send(1, 10, RawMsg("pre")) {
		t.Fatal("send refused")
	}
	if msg, ok := b.Recv(); !ok || string(msg.Payload.(RawMsg)) != "pre" {
		t.Fatalf("recv %+v ok=%v", msg, ok)
	}
	// Rank 2 departs first, like a worker that finished early.
	lb.meshes[2].Shutdown()
	// Give the goodbyes time to land, then the survivors keep talking.
	time.Sleep(50 * time.Millisecond)
	if !a.Send(1, 10, RawMsg("post")) {
		t.Fatal("survivor send refused after peer departure")
	}
	if msg, ok := b.Recv(); !ok || string(msg.Payload.(RawMsg)) != "post" {
		t.Fatalf("survivors lost traffic after peer departure: %+v ok=%v", msg, ok)
	}
	// Sends to the departed rank are dropped, not fatal.
	a.Send(2, 10, RawMsg("late"))
	lb.meshes[0].Shutdown()
	lb.meshes[1].Shutdown()
}

// TestTCPMeshToleratesStrayConnections: a non-peer connection hitting a
// trainer's mesh port (port scanner, health probe, aborted dial) is
// dropped and the accept retried — it must not abort mesh construction.
func TestTCPMeshToleratesStrayConnections(t *testing.T) {
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr().String(), l1.Addr().String()}

	type built struct {
		m   *TCPMesh
		err error
	}
	m0ch := make(chan built, 1)
	go func() {
		m, err := NewTCPMesh(0, addrs, l0)
		m0ch <- built{m, err}
	}()
	// The stray connects (and sends garbage) before the real peer dials.
	stray, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	stray.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
	stray.Close()

	m1, err := NewTCPMesh(1, addrs, l1)
	if err != nil {
		t.Fatalf("mesh construction aborted by stray connection: %v", err)
	}
	b0 := <-m0ch
	if b0.err != nil {
		t.Fatalf("rank 0 aborted by stray connection: %v", b0.err)
	}
	if !m1.Endpoint(1).Send(0, 5, RawMsg("hi")) {
		t.Fatal("send refused")
	}
	if msg, ok := b0.m.Endpoint(0).Recv(); !ok || string(msg.Payload.(RawMsg)) != "hi" {
		t.Fatalf("recv %+v ok=%v", msg, ok)
	}
	b0.m.Shutdown()
	m1.Shutdown()
}

// TestTCPLinkPipelined drives one link from many goroutines at once — the
// LRPP dispatcher pattern of ℒ overlapped prefetches plus concurrent
// write-backs — and checks the end state and accounting stay exact.
func TestTCPLinkPipelined(t *testing.T) {
	const workers = 8
	srv := embed.NewServer(2, 4, 9, 0.1)
	ref := embed.NewServer(2, 4, 9, 0.1)
	addr, join := startEmbedServer(t, srv)
	tr, err := DialTCPLink(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ids := []uint64{uint64(p), uint64(p + workers), uint64(p + 2*workers)}
			rows := tr.Fetch(ids)
			for _, r := range rows {
				r[0] += float32(p + 1)
			}
			tr.Write(ids, rows)
		}(p)
	}
	wg.Wait()

	for p := 0; p < workers; p++ {
		ids := []uint64{uint64(p), uint64(p + workers), uint64(p + 2*workers)}
		rows := ref.Fetch(ids)
		for _, r := range rows {
			r[0] += float32(p + 1)
		}
		ref.Write(ids, rows)
	}
	if d := embed.Diff(ref, srv); len(d) != 0 {
		t.Fatalf("pipelined tcp link diverged from serial reference at %v", d)
	}
	st := tr.Stats()
	if want := int64(workers * 3); st.RowsFetched != want || st.RowsWritten != want {
		t.Fatalf("row accounting lost under concurrency: %+v", st)
	}
	tr.Shutdown()
	tr.Close()
	join()
}

// TestTCPLinkEnqueueAfterFailErrors is the regression test for the
// call-vs-fail race: once failPending has drained the request queue, a call
// that already passed the broken check must NOT enqueue its frame (it would
// strand forever with its pending channel deleted) — it must come back as a
// link error. After the injected failure every fallible call errors
// immediately, the queue stays empty, and the errorless face panics with
// the same attributed message.
func TestTCPLinkEnqueueAfterFailErrors(t *testing.T) {
	srv := embed.NewServer(2, 4, 3, 0.1)
	addr, join := startEmbedServer(t, srv)
	link, err := DialTCPLink(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.TryFetch([]uint64{1, 2}); err != nil {
		t.Fatalf("sanity fetch: %v", err)
	}

	link.failPending(errors.New("injected failure"))

	done := make(chan error, 1)
	go func() {
		_, err := link.TryFetch([]uint64{3})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("TryFetch on a failed link returned nil error")
		}
		if !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("link error lost its cause: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TryFetch on a failed link hung — the request was enqueued behind the drain")
	}
	if n := len(link.reqCh); n != 0 {
		t.Fatalf("%d frames enqueued after failure", n)
	}
	if err := link.TryWrite([]uint64{1}, [][]float32{{1, 2, 3, 4}}); err == nil {
		t.Fatal("TryWrite on a failed link returned nil error")
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("errorless Fetch on a failed link did not panic")
			}
			if !strings.Contains(fmt.Sprint(p), "injected failure") {
				t.Fatalf("errorless panic lost the cause: %v", p)
			}
		}()
		link.Fetch([]uint64{4})
	}()
	link.Close()

	// The server side is still healthy (we failed the client half only);
	// shut it down over a fresh link so the serve loop joins cleanly.
	ctl, err := DialTCPLink(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Shutdown()
	ctl.Close()
	join()
}

// killableListener records accepted connections so Kill can sever a running
// embed server the way a machine loss does: listener plus every live
// connection closed under the clients' feet.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (k *killableListener) Accept() (net.Conn, error) {
	c, err := k.Listener.Accept()
	if err == nil {
		k.mu.Lock()
		k.conns = append(k.conns, c)
		k.mu.Unlock()
	}
	return c, err
}

func (k *killableListener) Kill() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.Listener.Close()
	for _, c := range k.conns {
		c.Close()
	}
}

// TestShardedStoreTCPServerKillFailover is the real-socket half of the
// server-death conformance leg: a 3-server tier over genuine TCPLinks,
// replication factor 2, one server killed mid-traffic. The tier must retry,
// declare the server dead, reroute partition 1 to its replica, finish the
// request stream, and certify the surviving state against the S=1
// reference — fingerprint over the wire and merged in-memory state.
func TestShardedStoreTCPServerKillFailover(t *testing.T) {
	const S, R = 3, 2
	tier := testTier(S)
	children := make([]Store, S)
	links := make([]*TCPLink, S)
	serveDone := make([]chan error, S)
	var killable *killableListener
	for i, srv := range tier {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var serveLis net.Listener = lis
		if i == 1 {
			killable = &killableListener{Listener: lis}
			serveLis = killable
		}
		done := make(chan error, 1)
		serveDone[i] = done
		go func(lis net.Listener, srv *embed.Server) { done <- ServeEmbed(lis, srv) }(serveLis, srv)
		if links[i], err = DialTCPLink(lis.Addr().String(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
		children[i] = links[i]
	}
	st := NewTier(children, TierOptions{Replicate: R, Retries: 2, Backoff: time.Millisecond})
	ref := embed.NewServer(3, 4, 11, 0.1)
	refStore := NewInProcess(ref)

	stamp := float32(0)
	step := func(ids []uint64) {
		t.Helper()
		stamp++
		rows, refRows := st.Fetch(ids), refStore.Fetch(ids)
		for i := range rows {
			for j := range rows[i] {
				if rows[i][j] != refRows[i][j] {
					t.Fatalf("id %d col %d: tier %v != reference %v", ids[i], j, rows[i][j], refRows[i][j])
				}
			}
			rows[i][0], refRows[i][0] = stamp, stamp
		}
		st.Write(ids, rows)
		refStore.Write(ids, refRows)
	}

	step([]uint64{0, 1, 2, 3, 4, 5, 13, 16})
	step([]uint64{1, 7, 10, 12})
	killable.Kill() // chaos: server 1's machine disappears
	step([]uint64{0, 1, 2, 6, 7, 9, 13})
	step([]uint64{4, 10, 19, 22, 25})

	if dead := st.DeadServers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadServers() = %v, want [1]", dead)
	}
	if h := st.TierHealth(); h.Failovers == 0 {
		t.Fatalf("no failovers counted after the kill: %+v", h)
	}
	if fp, want := st.Fingerprint(), ref.Fingerprint(); fp != want {
		t.Fatalf("surviving tier fingerprint %x != reference %x", fp, want)
	}
	deadSet := []bool{false, true, false}
	merged, err := embed.MergeTierReplicated(tier, R, deadSet)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, merged); len(d) != 0 {
		t.Fatalf("surviving merge differs from reference at %v", d)
	}
	restored, err := embed.RestoreTierReplicated(bytes.NewReader(st.Checkpoint()), S, ref.NumShards(), R, deadSet)
	if err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(ref, restored); len(d) != 0 {
		t.Fatalf("restored surviving checkpoint differs at %v", d)
	}

	st.Shutdown() // skips the dead server
	for _, l := range links {
		l.Close()
	}
	for i, done := range serveDone {
		err := <-done
		if i == 1 {
			continue // the killed server's serve loop fails by design
		}
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
}
