package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/core"
)

// Store is the trainer's client API to the embedding tier. It extends the
// point-to-point Transport data path (Fetch/Write/Dim/Stats/Name) with the
// tier operations every engine and the verification drivers need — state
// fingerprinting, checkpointing, and remote shutdown — so callers program
// against *the tier*, never against an individual server. The single-server
// transports (InProcess, SimNet, TCPLink) are degenerate one-server tiers;
// ShardedStore composes S of them into a real one. Engines take a Store and
// cannot tell the difference: sharding is a property of the tier client,
// not of the training logic.
type Store interface {
	Transport

	// Fingerprint returns the tier's state certificate: the wrapping sum of
	// every backend server's embed.Server.Fingerprint (per-partition
	// fingerprints from the first live holder when the tier replicates, so
	// replicated rows are counted once). The combine is order-independent
	// and the partitions are disjoint, so an S-server tier fingerprints
	// identically to the equivalent S=1 server — distributed verification
	// needs S cheap RPCs, not checkpoints.
	Fingerprint() uint64
	// Checkpoint returns the serialized state of every *live* backend
	// server, in server order; embed.RestoreTier (or, for a tier that lost
	// servers, embed.RestoreTierReplicated with the store's DeadServers)
	// rebuilds the merged logical state.
	Checkpoint() []byte
	// Shutdown asks every live remote server process behind the store to
	// stop serving once in-flight requests complete. A no-op for in-process
	// stores, whose servers the caller owns directly.
	Shutdown()
	// ServerStats returns one traffic snapshot per backend server, in
	// server order. Stats() is their field-wise sum (Stats.Add).
	ServerStats() []Stats
}

// TierError is an attributed, unrecoverable embedding-tier failure: every
// replica of one partition is dead. The errorless Store face raises it as a
// panic (a worker without its tier cannot make progress); OnLost lets a
// process intercept it first for a clean, attributed exit, and AsTierError
// recovers it from either path in tests.
type TierError struct {
	Op        string // "fetch", "write", "fingerprint", "checkpoint", "read", "resync"
	Partition int    // partition whose data became unreachable (== its owner server)
	Server    int    // last server tried for the partition
	Replicate int    // the tier's replication factor
	Cause     error  // the final per-server failure, when known
}

func (e *TierError) Error() string {
	msg := fmt.Sprintf("transport: embedding tier %s failed: partition %d unreachable (replication factor %d, last tried server %d)",
		e.Op, e.Partition, e.Replicate, e.Server)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *TierError) Unwrap() error { return e.Cause }

// ShardPanic wraps a panic raised inside one of the scatter's per-server
// goroutines before it is re-raised on the calling goroutine. Without it
// the re-panic would carry the original value but the *caller's* stack —
// the originating server and its goroutine stack, the two facts that make
// a mid-failover crash attributable, would be gone.
type ShardPanic struct {
	Server int    // server/partition index whose sub-batch RPC panicked
	Value  any    // the original panic value
	Stack  []byte // the originating goroutine's stack, captured at recover time
}

func (p *ShardPanic) Error() string {
	return fmt.Sprintf("transport: embedding tier server %d: %v\n\nserver goroutine stack:\n%s",
		p.Server, p.Value, p.Stack)
}

func (p *ShardPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// AsTierError extracts a *TierError from a recovered panic value, unwrapping
// the ShardPanic the concurrent scatter adds and any error chain around it.
func AsTierError(v any) (*TierError, bool) {
	for {
		switch x := v.(type) {
		case *TierError:
			return x, true
		case *ShardPanic:
			v = x.Value
		case error:
			var te *TierError
			if errors.As(x, &te) {
				return te, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// TierHealth is a snapshot of the tier client's failure-handling state, the
// failover counters -stats surfaces.
type TierHealth struct {
	Servers   int
	Replicate int
	// Failovers counts sub-batch RPCs served by a non-primary replica.
	Failovers int64
	// Retries counts per-server RPC attempts repeated after a transient
	// error, before the server was declared dead.
	Retries int64
	// Dead lists the servers this client has declared dead, ascending.
	Dead []int
	// Revived counts servers re-admitted to the live set after an
	// anti-entropy rejoin (dead → resync → live transitions completed).
	Revived int64
	// ResyncRows counts rows streamed to rejoining servers by the
	// anti-entropy transfer (recovery writes only, not forwarded live
	// writes).
	ResyncRows int64
}

// TierOptions configures replication and failure handling for a
// ShardedStore. The zero value is the classic unreplicated tier.
type TierOptions struct {
	// Replicate is the replication factor R (default 1): each row lives on
	// its owner server plus the next R−1 servers on the core.OwnerOf ring.
	// Writes go to every live replica; reads go to the first live replica
	// in ring order (the owner, until it dies).
	Replicate int
	// Retries is the number of attempts per failed server RPC before the
	// server is declared dead (default 3). Only children implementing
	// FallibleStore participate; errorless children keep panicking.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (default 10ms).
	Backoff time.Duration
	// Jitter maps a computed backoff to the duration actually slept.
	// The default draws uniformly from [d/2, d] (full jitter), so P
	// trainer processes retrying a flapping server spread out instead of
	// hammering it in lockstep. Tests inject an identity function to keep
	// retry timing deterministic.
	Jitter func(d time.Duration) time.Duration
	// Dead marks servers already known dead at construction (index-aligned
	// with children; a child may be nil only when Dead marks it). The
	// driver's post-chaos control store uses this to certify a tier that
	// lost a server without dialing the corpse.
	Dead []bool
	// OnFailover, if set, is called exactly once per server as it is
	// declared dead, with the final error that condemned it.
	OnFailover func(server int, cause error)
	// OnLost, if set, is called before an unrecoverable TierError is raised
	// (every replica of a partition dead) — the hook a worker process uses
	// to exit cleanly with an attributed message instead of panicking.
	OnLost func(*TierError)
}

const (
	defaultTierRetries = 3
	defaultTierBackoff = 10 * time.Millisecond
)

// ShardedStore is the multi-server tier client: ids are partitioned across
// S backend stores by the canonical hash ownership core.OwnerOf(id, S) —
// the same total map the LRPP cache uses for trainer ownership — and every
// Fetch/Write is split into per-partition sub-batches issued concurrently
// (scatter), with fetched rows reassembled in request order regardless of
// the order the servers reply in (gather). Like every transport, it is a
// carrier, not a semantic layer: over the same request stream an S-server
// tier lands bit-identical state to the S=1 reference, which is what lets
// -verify certify sharded runs against the unsharded baseline.
//
// With TierOptions.Replicate ≥ 2 the tier also survives server loss: every
// partition's writes go to all live servers of its replica set (owner plus
// ring successors), reads route to the first live replica, and a child RPC
// that keeps failing after bounded retries marks its server dead and
// reroutes — replicated runs remain certifiable against the baseline even
// after a mid-run kill, because the surviving replicas hold every write.
type ShardedStore struct {
	// slots holds each server's connection state — the Store plus its
	// cached FallibleStore face, asserted once so the hot path never
	// type-switches. One atomic pointer per server so a rejoin can swap in
	// a freshly dialed connection (a new incarnation) without locking the
	// data path. A slot's store is nil only for a server dead since
	// construction.
	slots     []atomic.Pointer[serverSlot]
	servers   int
	dim       int
	replicate int
	retries   int
	backoff   time.Duration
	jitter    func(time.Duration) time.Duration
	// instant is true when every live child completes without blocking on
	// I/O (in-process servers); the scatter then runs serially — goroutine
	// fan-out over direct calls is pure overhead and allocates.
	instantChildren bool

	// Per-server revival state machine: state is srvLive/srvDead/srvResync,
	// gen is the incarnation number fencing late RPC outcomes from an old
	// connection (bumped on every rejoin). Hot paths read both with plain
	// atomic loads; every *transition* (markDead, markLive, rejoin install)
	// is serialized by stateMu — transitions are rare, and the mutex is
	// what makes "OnFailover fires exactly once with the first cause" hold
	// under racing condemnations.
	state   []atomic.Int32
	gen     []atomic.Uint64
	stateMu sync.Mutex
	causes  []error // guarded by stateMu

	// partLocks serializes anti-entropy transfer rounds against the write
	// fan-out, per partition: writePartition holds the read side, a resync
	// round holds the write side around its export→transfer→verify
	// sequence, so a snapshot can never be overwritten by a write that
	// raced between export and apply.
	partLocks []sync.RWMutex

	// rejoinMu serializes whole rejoin operations (one server resyncing at
	// a time keeps the transfer source stable and the gen bookkeeping
	// simple).
	rejoinMu sync.Mutex

	failovers  atomic.Int64
	retried    atomic.Int64
	revived    atomic.Int64
	resyncRows atomic.Int64
	onFailover func(server int, cause error)
	onLost     func(*TierError)

	// readFails counts consecutive read-path errors per server. The read
	// path tries each replica once per request (no inline retries), so it
	// spreads the write path's retry budget across requests instead: once
	// a server accumulates `retries` consecutive read errors it is
	// condemned like a write-path exhaustion. Without this, a read-only
	// tier client (the serving front end) would never learn a server died
	// — DeadServers() drives the Reviver — and would pay a failed attempt
	// on every request forever. Replicated tiers only; at R=1 there is
	// nowhere to fail over, so the read just errors attributed.
	readFails []atomic.Int32

	// reviveSubs are callbacks fired (outside stateMu) when a server is
	// re-admitted live — the serve layer uses this to nudge its circuit
	// breaker into a prompt half-open probe.
	reviveMu   sync.Mutex
	reviveSubs []func(server int)

	// scratchMu guards a pool of scatter scratches (grouping arrays plus
	// per-partition sub-batch buffers). Pooled rather than per-store because
	// several trainer goroutines issue concurrent fetches through one tier
	// client.
	scratchMu sync.Mutex
	scratch   []*shardScratch
}

// serverSlot is one server's immutable connection record; rejoins replace
// the whole slot rather than mutating it.
type serverSlot struct {
	store    Store
	fallible FallibleStore // nil for errorless stores
}

// Per-server revival states. A resyncing server receives forwarded writes
// and anti-entropy transfers but serves no reads and counts toward no write
// quorum until markLive re-admits it.
const (
	srvLive int32 = iota
	srvDead
	srvResync
)

// child returns server s's current store (nil only for a
// dead-at-construction server).
func (t *ShardedStore) child(s int) Store {
	if sl := t.slots[s].Load(); sl != nil {
		return sl.store
	}
	return nil
}

// fall returns server s's current FallibleStore face, nil for errorless
// children.
func (t *ShardedStore) fall(s int) FallibleStore {
	if sl := t.slots[s].Load(); sl != nil {
		return sl.fallible
	}
	return nil
}

// down reports whether server s is not live (dead or resyncing) — the
// read-path and quorum visibility predicate.
func (t *ShardedStore) down(s int) bool { return t.state[s].Load() != srvLive }

// allLive reports whether every server is live.
func (t *ShardedStore) allLive() bool {
	for s := range t.state {
		if t.state[s].Load() != srvLive {
			return false
		}
	}
	return true
}

// shardScratch is one concurrent caller's reusable scatter state.
type shardScratch struct {
	group   core.GroupScratch
	sub     [][]uint64
	subRows [][][]float32
}

// getScratch pops (or creates) a scatter scratch sized for this tier.
func (t *ShardedStore) getScratch() *shardScratch {
	t.scratchMu.Lock()
	defer t.scratchMu.Unlock()
	if n := len(t.scratch); n > 0 {
		sc := t.scratch[n-1]
		t.scratch[n-1] = nil
		t.scratch = t.scratch[:n-1]
		return sc
	}
	return &shardScratch{
		sub:     make([][]uint64, t.servers),
		subRows: make([][][]float32, t.servers),
	}
}

// putScratch returns a scratch to the pool. Fetch/Write call it via defer,
// so the sub-batch buffers come back even when a child's RPC panics
// mid-gather (forEachPartition re-raises child panics on the calling
// goroutine) — a failed shard call must not leak the pooled buffers.
func (t *ShardedStore) putScratch(sc *shardScratch) {
	t.scratchMu.Lock()
	t.scratch = append(t.scratch, sc)
	t.scratchMu.Unlock()
}

// instantStore is implemented by transports whose calls complete inline
// without waiting on a network (InProcess, and tiers composed of them).
type instantStore interface{ instant() bool }

// NewShardedStore builds the classic unreplicated tier client over children,
// one per embedding server, in server order. All children must serve the
// same row width. A single-child store is a valid (degenerate) tier; callers
// that want to skip the fan-out bookkeeping entirely for S=1 may use the
// child directly, as cmd/bagpipe does.
func NewShardedStore(children []Store) *ShardedStore {
	return NewTier(children, TierOptions{})
}

// NewTier builds the tier client over children with explicit replication
// and failure-handling options. Construction errors are programming errors
// and panic, matching NewShardedStore.
func NewTier(children []Store, opts TierOptions) *ShardedStore {
	S := len(children)
	if S == 0 {
		panic("transport: sharded store over zero servers")
	}
	if opts.Replicate == 0 {
		opts.Replicate = 1
	}
	if opts.Replicate < 1 || opts.Replicate > S {
		panic(fmt.Sprintf("transport: replication factor %d outside [1, %d]", opts.Replicate, S))
	}
	if opts.Retries <= 0 {
		opts.Retries = defaultTierRetries
	}
	if opts.Backoff <= 0 {
		opts.Backoff = defaultTierBackoff
	}
	if opts.Dead == nil {
		opts.Dead = make([]bool, S)
	} else if len(opts.Dead) != S {
		panic(fmt.Sprintf("transport: dead set lists %d servers for a %d-server tier", len(opts.Dead), S))
	}
	dim, instant, anyLive := 0, true, false
	for i, c := range children {
		if c == nil {
			if !opts.Dead[i] {
				panic(fmt.Sprintf("transport: live tier server %d has no store", i))
			}
			continue
		}
		if !anyLive {
			dim, anyLive = c.Dim(), true
		} else if c.Dim() != dim {
			panic(fmt.Sprintf("transport: sharded store server %d serves dim %d, earlier servers serve %d", i, c.Dim(), dim))
		}
		if is, ok := c.(instantStore); !ok || !is.instant() {
			instant = false
		}
	}
	if !anyLive {
		panic("transport: every server of the tier is dead at construction")
	}
	t := &ShardedStore{
		slots:           make([]atomic.Pointer[serverSlot], S),
		servers:         S,
		dim:             dim,
		replicate:       opts.Replicate,
		retries:         opts.Retries,
		backoff:         opts.Backoff,
		jitter:          opts.Jitter,
		instantChildren: instant,
		state:           make([]atomic.Int32, S),
		gen:             make([]atomic.Uint64, S),
		readFails:       make([]atomic.Int32, S),
		causes:          make([]error, S),
		partLocks:       make([]sync.RWMutex, S),
		onFailover:      opts.OnFailover,
		onLost:          opts.OnLost,
	}
	if t.jitter == nil {
		t.jitter = defaultJitter
	}
	for i, c := range children {
		sl := &serverSlot{store: c}
		if f, ok := c.(FallibleStore); ok {
			sl.fallible = f
		}
		t.slots[i].Store(sl)
		if opts.Dead[i] {
			t.state[i].Store(srvDead)
		}
	}
	return t
}

// defaultJitter draws the slept backoff uniformly from [d/2, d] ("equal
// jitter"): bounded above by the computed exponential step, but decorrelated
// across the P trainer clients that would otherwise retry a flapping server
// in lockstep.
func defaultJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(d-half)+1))
}

// sleepBackoff counts and performs the a'th retry sleep (exponential base
// backoff through the jitter source).
func (t *ShardedStore) sleepBackoff(a int) {
	t.retried.Add(1)
	time.Sleep(t.jitter(t.backoff << a))
}

// instant implements instantStore: a tier of instant children is itself
// instant, so nested sharded stores keep the serial fast path.
func (t *ShardedStore) instant() bool { return t.instantChildren }

// Name implements Store.
func (t *ShardedStore) Name() string {
	for s := 0; s < t.servers; s++ {
		c := t.child(s)
		if c == nil || t.state[s].Load() == srvDead {
			continue
		}
		return fmt.Sprintf("sharded-%d/%s", t.servers, c.Name())
	}
	return fmt.Sprintf("sharded-%d/dead", t.servers)
}

// Dim implements Store.
func (t *ShardedStore) Dim() int { return t.dim }

// Servers returns the tier width S.
func (t *ShardedStore) Servers() int { return t.servers }

// Replicate returns the tier's replication factor.
func (t *ShardedStore) Replicate() int { return t.replicate }

// DeadServers returns the indices of servers this client has declared dead,
// ascending. A resyncing server is no longer dead (its rejoin is in flight)
// but not yet live; DownServers includes it.
func (t *ShardedStore) DeadServers() []int {
	var dead []int
	for s := range t.state {
		if t.state[s].Load() == srvDead {
			dead = append(dead, s)
		}
	}
	return dead
}

// DownServers returns the indices of servers not currently serving reads
// (dead or mid-resync), ascending — the set a consistent certification must
// exclude.
func (t *ShardedStore) DownServers() []int {
	var down []int
	for s := range t.state {
		if t.state[s].Load() != srvLive {
			down = append(down, s)
		}
	}
	return down
}

// TierHealth returns the failover counters (-stats plumbing).
func (t *ShardedStore) TierHealth() TierHealth {
	return TierHealth{
		Servers:    t.servers,
		Replicate:  t.replicate,
		Failovers:  t.failovers.Load(),
		Retries:    t.retried.Load(),
		Dead:       t.DeadServers(),
		Revived:    t.revived.Load(),
		ResyncRows: t.resyncRows.Load(),
	}
}

// route returns the server currently serving reads for partition part: the
// first live server of its replica set in ring order, or -1 when the whole
// set is down. Resyncing servers are skipped — they must not serve reads
// until their state verifies.
func (t *ShardedStore) route(part int) int {
	for k := 0; k < t.replicate; k++ {
		if s := (part + k) % t.servers; t.state[s].Load() == srvLive {
			return s
		}
	}
	return -1
}

// markDead declares server s dead with the given cause. Idempotent under
// arbitrary contention: stateMu serializes the transition, so exactly one
// caller wins, records the first cause, and fires OnFailover (after
// releasing the lock — the callback may call back into the store).
func (t *ShardedStore) markDead(s int, cause error) {
	t.stateMu.Lock()
	if t.state[s].Load() == srvDead {
		t.stateMu.Unlock()
		return
	}
	t.state[s].Store(srvDead)
	t.causes[s] = cause
	t.stateMu.Unlock()
	if t.onFailover != nil {
		t.onFailover(s, cause)
	}
}

// markDeadIfGen is markDead fenced by incarnation: it condemns server s only
// if s still runs generation g. A slow RPC that started against the old
// incarnation and failed after the server rejoined must not kill the new
// incarnation — the failure belongs to a connection that no longer exists.
func (t *ShardedStore) markDeadIfGen(s int, g uint64, cause error) {
	t.stateMu.Lock()
	if t.gen[s].Load() != g || t.state[s].Load() == srvDead {
		t.stateMu.Unlock()
		return
	}
	t.state[s].Store(srvDead)
	t.causes[s] = cause
	t.stateMu.Unlock()
	if t.onFailover != nil {
		t.onFailover(s, cause)
	}
}

// markLive re-admits server s (generation g) to the live set after its
// resync verified: the inverse of markDead. Only the resyncing incarnation
// itself can come live — a concurrent markDeadIfGen wins by flipping the
// state back to dead first, and a newer generation means this rejoin was
// superseded. Revival subscribers fire outside stateMu.
func (t *ShardedStore) markLive(s int, g uint64) bool {
	t.stateMu.Lock()
	if t.gen[s].Load() != g || t.state[s].Load() != srvResync {
		t.stateMu.Unlock()
		return false
	}
	t.state[s].Store(srvLive)
	t.causes[s] = nil
	// The new incarnation starts with a clean read-failure streak — the
	// old connection's errors must not count against it.
	t.readFails[s].Store(0)
	t.stateMu.Unlock()
	t.revived.Add(1)
	t.reviveMu.Lock()
	subs := append([]func(server int){}, t.reviveSubs...)
	t.reviveMu.Unlock()
	for _, fn := range subs {
		fn(s)
	}
	return true
}

// SubscribeRevived registers fn to be called (on the reviving goroutine,
// outside the store's locks) whenever a server is re-admitted live.
func (t *ShardedStore) SubscribeRevived(fn func(server int)) {
	t.reviveMu.Lock()
	t.reviveSubs = append(t.reviveSubs, fn)
	t.reviveMu.Unlock()
}

// deadCause returns the recorded error that condemned server s, if any.
func (t *ShardedStore) deadCause(s int) error {
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	return t.causes[s]
}

// lost raises an unrecoverable tier failure: OnLost first (a worker's clean
// exit hook), then panic — the errorless Store face has no other way out.
func (t *ShardedStore) lost(e *TierError) {
	if e.Cause == nil && e.Server >= 0 && e.Server < len(t.causes) {
		e.Cause = t.deadCause(e.Server)
	}
	if t.onLost != nil {
		t.onLost(e)
	}
	panic(e)
}

// serialScatter reports whether a scatter over bounds should run inline on
// the calling goroutine: instant (in-process) children never block on a
// link, so there is nothing to overlap, and a single active partition has no
// fan-out to do. Fetch/Write check this *before* building the per-partition
// closure forEachPartition needs — the closure escapes into goroutines and
// would heap-allocate once per call, the exact per-batch cost the pooled
// scatter exists to avoid on the hot in-process path.
func (t *ShardedStore) serialScatter(bounds []int) bool {
	if t.instantChildren {
		return true
	}
	active := 0
	for s := 0; s < t.servers; s++ {
		if bounds[s] != bounds[s+1] {
			active++
		}
	}
	return active <= 1
}

// forEachPartition runs fn for every partition with a non-empty run in
// bounds, concurrently. Sub-batches wait on their server's link, not on
// CPU, so overlapping them is what makes an S-server tier S links wide
// instead of one link S times as long (each backend is its own NIC in the
// paper's trainer-node/server-node topology); serial scatters take the
// inline loops in Fetch/Write instead (see serialScatter). A panic in a
// child RPC is wrapped in a ShardPanic — originating partition plus the
// goroutine's stack, captured at recover time — and re-raised on the
// calling goroutine once every in-flight sub-batch finishes, so the
// caller's defers (scratch return, result-buffer recycling) still run and
// the crash stays attributable to a server.
func (t *ShardedStore) forEachPartition(bounds []int, fn func(part int)) {
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *ShardPanic
	)
	for part := 0; part < t.servers; part++ {
		if bounds[part] == bounds[part+1] {
			continue
		}
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					sp, ok := p.(*ShardPanic)
					if !ok {
						sp = &ShardPanic{Server: part, Value: p, Stack: debug.Stack()}
					}
					panicMu.Lock()
					if panicked == nil {
						panicked = sp
					}
					panicMu.Unlock()
				}
			}()
			fn(part)
		}(part)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Fetch implements Store: one sub-batch per owning partition, issued
// concurrently, rows delivered in request order no matter which order the
// servers reply in. The scatter buffers are pooled and returned via defer —
// including when a shard's RPC panics mid-gather, in which case the result
// header and every row already gathered into it go back to their pools too
// (each failover exercise would otherwise leak pool capacity).
func (t *ShardedStore) Fetch(ids []uint64) [][]float32 {
	sc := t.getScratch()
	defer t.putScratch(sc)
	out := GetRowSlice(len(ids))
	completed := false
	defer func() {
		if completed {
			return
		}
		Rows(t.dim).PutN(out)
		PutRowSlice(out)
	}()
	pos, bounds := sc.group.GroupByOwner(ids, t.servers)
	if t.serialScatter(bounds) {
		for part := 0; part < t.servers; part++ {
			if bounds[part] != bounds[part+1] {
				t.fetchPartition(sc, part, ids, pos, bounds, out)
			}
		}
	} else {
		t.forEachPartition(bounds, func(part int) { t.fetchPartition(sc, part, ids, pos, bounds, out) })
	}
	completed = true
	return out
}

// fetchPartition issues one partition's fetch sub-batch — to its primary
// server, failing over along the replica ring as servers die — and gathers
// the rows into the request-order result.
func (t *ShardedStore) fetchPartition(sc *shardScratch, part int, ids []uint64, pos, bounds []int, out [][]float32) {
	run := pos[bounds[part]:bounds[part+1]]
	sub := sc.sub[part][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
	}
	sc.sub[part] = sub
	for {
		s := t.route(part)
		if s < 0 {
			t.lost(&TierError{Op: "fetch", Partition: part, Server: (part + t.replicate - 1) % t.servers, Replicate: t.replicate})
		}
		rows, err := t.tryFetch(s, sub)
		if err != nil {
			continue // s is dead now; route to the next live replica
		}
		if s != part {
			t.failovers.Add(1)
		}
		for i, p := range run {
			out[p] = rows[i]
		}
		// The child's result header is dead now that its rows moved into
		// out; recycle it.
		PutRowSlice(rows)
		return
	}
}

// tryFetch issues one sub-batch fetch to server s with bounded retry; on
// exhaustion the server is declared dead and the last error returned.
// Errorless children cannot report failure, so they bypass the retry loop
// (their failures stay panics). The generation is captured *before* the
// slot: if the server rejoins mid-call, the exhausted condemnation is
// fenced off by markDeadIfGen rather than killing the new incarnation.
func (t *ShardedStore) tryFetch(s int, sub []uint64) ([][]float32, error) {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		return t.child(s).Fetch(sub), nil
	}
	var lastErr error
	for a := 0; ; a++ {
		rows, err := f.TryFetch(sub)
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return nil, lastErr
}

// Write implements Store: the scatter half of Fetch, one concurrent
// sub-batch of (id, row) pairs per owning partition, written to every live
// server of the partition's replica set. It returns once every live replica
// acked its sub-batch — the write-durability contract the ℒ-window
// retirement depends on becomes "acked by all live replicas", which is what
// keeps a post-failover read (served by a replica) bit-identical to the
// read the dead primary would have served.
func (t *ShardedStore) Write(ids []uint64, rows [][]float32) {
	if len(ids) != len(rows) {
		panic("transport: Write ids/rows length mismatch")
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	completed := false
	defer func() {
		if completed {
			return
		}
		// A replica write panicked mid-scatter: drop the caller's row
		// references parked in the pooled sub-batch buffers, or the scratch
		// pins them until its next use.
		for i := range sc.subRows {
			s := sc.subRows[i]
			clear(s[:cap(s)])
		}
	}()
	pos, bounds := sc.group.GroupByOwner(ids, t.servers)
	if t.serialScatter(bounds) {
		for part := 0; part < t.servers; part++ {
			if bounds[part] != bounds[part+1] {
				t.writePartition(sc, part, ids, pos, bounds, rows)
			}
		}
	} else {
		t.forEachPartition(bounds, func(part int) { t.writePartition(sc, part, ids, pos, bounds, rows) })
	}
	completed = true
}

// writePartition issues one partition's write sub-batch to every live
// server of its replica set. Dead replicas are skipped (their state is
// recovered from the survivors at merge time); a resyncing replica gets the
// write *forwarded* — applied so no update is lost during the anti-entropy
// window, but not counted toward the ack quorum; a failing live replica is
// declared dead and does not fail the write as long as at least one live
// replica acked. The partition's resync lock is held shared for the whole
// fan-out (and released via defer, so the lost() panic path cannot leak
// it): a transfer round's export→apply→verify cannot interleave with a
// half-applied write.
func (t *ShardedStore) writePartition(sc *shardScratch, part int, ids []uint64, pos, bounds []int, rows [][]float32) {
	run := pos[bounds[part]:bounds[part+1]]
	sub, subRows := sc.sub[part][:0], sc.subRows[part][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
		subRows = append(subRows, rows[p])
	}
	sc.sub[part], sc.subRows[part] = sub, subRows
	lk := &t.partLocks[part]
	lk.RLock()
	defer lk.RUnlock()
	acked, lastSrv := 0, part
	var lastErr error
	for k := 0; k < t.replicate; k++ {
		s := (part + k) % t.servers
		switch t.state[s].Load() {
		case srvDead:
			lastSrv = s
		case srvResync:
			t.forwardWrite(s, sub, subRows)
		default: // srvLive
			if err := t.tryWrite(s, sub, subRows); err != nil {
				lastSrv, lastErr = s, err
				continue
			}
			acked++
		}
	}
	// Drop the row references so the pooled scratch doesn't pin the
	// caller's buffers until the next write.
	clear(subRows)
	if acked == 0 {
		t.lost(&TierError{Op: "write", Partition: part, Server: lastSrv, Replicate: t.replicate, Cause: lastErr})
	}
}

// tryWrite is tryFetch's write-side twin.
func (t *ShardedStore) tryWrite(s int, sub []uint64, subRows [][]float32) error {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		t.child(s).Write(sub, subRows)
		return nil
	}
	var lastErr error
	for a := 0; ; a++ {
		if err := f.TryWrite(sub, subRows); err == nil {
			return nil
		} else {
			lastErr = err
		}
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return lastErr
}

// forwardWrite applies one write sub-batch to a resyncing server — the
// write-forwarding half of the anti-entropy window. One attempt, no retry
// loop: a rejoiner that cannot absorb the live write stream goes back to
// dead (fenced by its generation) and the write proceeds on the survivors;
// forwarded writes never count toward the ack quorum, so they cannot mask
// a loss of every *verified* replica.
func (t *ShardedStore) forwardWrite(s int, sub []uint64, subRows [][]float32) {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		t.child(s).Write(sub, subRows)
		return
	}
	if err := f.TryWrite(sub, subRows); err != nil {
		t.markDeadIfGen(s, g, err)
	}
}

// Stats implements Store: the field-wise sum over the tier. Fetches/Writes
// count per-server sub-batch RPCs — the frames the fan-out actually put on
// the wire, including replica writes — so an S-way scatter of one logical
// fetch reports up to S calls, and SimulatedDelay sums the per-link
// serialization charges even though concurrent sub-batches overlap in
// wall-clock time.
func (t *ShardedStore) Stats() Stats {
	var sum Stats
	for s := 0; s < t.servers; s++ {
		c := t.child(s)
		if c == nil {
			continue
		}
		sum.Add(c.Stats())
	}
	return sum
}

// ServerStats implements Store: per-server snapshots, flattened in server
// order (a nested sharded child contributes its own per-server entries; a
// construction-dead child contributes one zero entry).
func (t *ShardedStore) ServerStats() []Stats {
	out := make([]Stats, 0, t.servers)
	for s := 0; s < t.servers; s++ {
		c := t.child(s)
		if c == nil {
			out = append(out, Stats{})
			continue
		}
		out = append(out, c.ServerStats()...)
	}
	return out
}

// partFingerprinter is the errorless partition-scoped certificate — every
// real transport implements it alongside FallibleStore.
type partFingerprinter interface {
	FingerprintPart(part, of int) uint64
}

// Fingerprint implements Store: the order-independent combine of the
// per-server certificates (see Store.Fingerprint for why a wrapping sum of
// disjoint partitions equals the merged state's fingerprint). The
// per-server RPCs fan out concurrently — the call completes when the
// slowest server answers, which keeps it an honest one-round-trip probe
// (the driver's -auto-lookahead pings time it to size the ℒ window). A
// replicated (or bereaved) tier sums partition-scoped fingerprints from
// each partition's first live holder instead, so replicated rows are
// counted exactly once and dead servers not at all.
func (t *ShardedStore) Fingerprint() uint64 {
	S := t.servers
	if t.replicate == 1 && t.allLive() {
		fps := make([]uint64, S)
		var wg sync.WaitGroup
		for s := 0; s < S; s++ {
			wg.Add(1)
			go func(s int, c Store) {
				defer wg.Done()
				fps[s] = c.Fingerprint()
			}(s, t.child(s))
		}
		wg.Wait()
		var sum uint64
		for _, fp := range fps {
			sum += fp
		}
		return sum
	}
	fps := make([]uint64, S)
	var wg sync.WaitGroup
	for p := 0; p < S; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fps[p] = t.fingerprintPartition(p)
		}(p)
	}
	wg.Wait()
	var sum uint64
	for _, fp := range fps {
		sum += fp
	}
	return sum
}

// fingerprintPartition fetches partition part's certificate from its first
// live holder, failing over like the data path.
func (t *ShardedStore) fingerprintPartition(part int) uint64 {
	S := t.servers
	for {
		s := t.route(part)
		if s < 0 {
			t.lost(&TierError{Op: "fingerprint", Partition: part, Server: (part + t.replicate - 1) % S, Replicate: t.replicate})
		}
		if t.fall(s) != nil {
			fp, err := t.tryFingerprintPart(s, part, S)
			if err != nil {
				continue
			}
			return fp
		}
		c := t.child(s)
		pf, ok := c.(partFingerprinter)
		if !ok {
			panic(fmt.Sprintf("transport: tier server %d (%T) cannot serve partition fingerprints", s, c))
		}
		return pf.FingerprintPart(part, S)
	}
}

// tryFingerprintPart is tryFetch's certificate-side twin.
func (t *ShardedStore) tryFingerprintPart(s, part, of int) (uint64, error) {
	g := t.gen[s].Load()
	f := t.fall(s)
	var lastErr error
	for a := 0; ; a++ {
		fp, err := f.TryFingerprintPart(part, of)
		if err == nil {
			return fp, nil
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return 0, lastErr
}

// Checkpoint implements Store: every live server's checkpoint concatenated
// in server order, the layout embed.RestoreTierReplicated consumes together
// with DeadServers (for an unreplicated, fully-live tier this is exactly
// the classic embed.RestoreTier layout). Like Fingerprint, the per-server
// RPCs fan out concurrently — these move full server states, so the tier
// checkpoint costs the slowest server, not the sum. A server lost *during*
// checkpointing is excluded like any other dead server — its partitions'
// writes live on their surviving replicas — unless some partition then has
// no live replica at all, which is unrecoverable.
func (t *ShardedStore) Checkpoint() []byte {
	S := t.servers
	// Snapshot the down set once: servers changing state mid-checkpoint
	// (a rejoin completing, a mid-pull death) must not leave the
	// concatenation half from one membership view and half from another.
	down := make([]bool, S)
	for s := 0; s < S; s++ {
		down[s] = t.down(s)
	}
	parts := make([][]byte, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		if down[s] {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			parts[s] = t.checkpointServer(s)
		}(s)
	}
	wg.Wait()
	// A server whose pull failed was declared dead by checkpointServer and
	// contributed no bytes; fold it into the snapshot before the coverage
	// check.
	for s := 0; s < S; s++ {
		if !down[s] && parts[s] == nil {
			down[s] = true
		}
	}
	for part := 0; part < S; part++ {
		covered := false
		for k := 0; k < t.replicate; k++ {
			if !down[(part+k)%S] {
				covered = true
				break
			}
		}
		if !covered {
			t.lost(&TierError{Op: "checkpoint", Partition: part, Server: (part + t.replicate - 1) % S, Replicate: t.replicate})
		}
	}
	var out []byte
	for s, p := range parts {
		if down[s] {
			continue
		}
		out = append(out, p...)
	}
	return out
}

// checkpointServer pulls one server's checkpoint with bounded retry; on
// exhaustion the server is declared dead and nil returned.
func (t *ShardedStore) checkpointServer(s int) []byte {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		return t.child(s).Checkpoint()
	}
	var lastErr error
	for a := 0; ; a++ {
		b, err := f.TryCheckpoint()
		if err == nil {
			return b
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return nil
}

// Shutdown implements Store, skipping dead servers (there is no process
// left to ask). Resyncing servers are asked too — a rejoiner's process is
// alive even though it isn't serving reads yet.
func (t *ShardedStore) Shutdown() {
	for s := 0; s < t.servers; s++ {
		c := t.child(s)
		if c == nil || t.state[s].Load() == srvDead {
			continue
		}
		c.Shutdown()
	}
}
