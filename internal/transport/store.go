package transport

import (
	"fmt"
	"sync"

	"bagpipe/internal/core"
)

// Store is the trainer's client API to the embedding tier. It extends the
// point-to-point Transport data path (Fetch/Write/Dim/Stats/Name) with the
// tier operations every engine and the verification drivers need — state
// fingerprinting, checkpointing, and remote shutdown — so callers program
// against *the tier*, never against an individual server. The single-server
// transports (InProcess, SimNet, TCPLink) are degenerate one-server tiers;
// ShardedStore composes S of them into a real one. Engines take a Store and
// cannot tell the difference: sharding is a property of the tier client,
// not of the training logic.
type Store interface {
	Transport

	// Fingerprint returns the tier's state certificate: the wrapping sum of
	// every backend server's embed.Server.Fingerprint. The combine is
	// order-independent and the servers' materialized sets are disjoint, so
	// an S-server tier fingerprints identically to the equivalent S=1
	// server — distributed verification needs S cheap RPCs, not checkpoints.
	Fingerprint() uint64
	// Checkpoint returns the serialized state of every backend server, in
	// server order; embed.RestoreTier rebuilds the merged logical state.
	Checkpoint() []byte
	// Shutdown asks every remote server process behind the store to stop
	// serving once in-flight requests complete. A no-op for in-process
	// stores, whose servers the caller owns directly.
	Shutdown()
	// ServerStats returns one traffic snapshot per backend server, in
	// server order. Stats() is their field-wise sum (Stats.Add).
	ServerStats() []Stats
}

// ShardedStore is the multi-server tier client: ids are partitioned across
// S backend stores by the canonical hash ownership core.OwnerOf(id, S) —
// the same total map the LRPP cache uses for trainer ownership — and every
// Fetch/Write is split into per-server sub-batches issued concurrently
// (scatter), with fetched rows reassembled in request order regardless of
// the order the servers reply in (gather). Like every transport, it is a
// carrier, not a semantic layer: over the same request stream an S-server
// tier lands bit-identical state to the S=1 reference, which is what lets
// -verify certify sharded runs against the unsharded baseline.
type ShardedStore struct {
	children []Store
	dim      int
	// instant is true when every child completes without blocking on I/O
	// (in-process servers); the scatter then runs serially — goroutine
	// fan-out over direct calls is pure overhead and allocates.
	instantChildren bool

	// scratchMu guards a pool of scatter scratches (grouping arrays plus
	// per-server sub-batch buffers). Pooled rather than per-store because
	// several trainer goroutines issue concurrent fetches through one tier
	// client.
	scratchMu sync.Mutex
	scratch   []*shardScratch
}

// shardScratch is one concurrent caller's reusable scatter state.
type shardScratch struct {
	group   core.GroupScratch
	sub     [][]uint64
	subRows [][][]float32
}

// getScratch pops (or creates) a scatter scratch sized for this tier.
func (t *ShardedStore) getScratch() *shardScratch {
	t.scratchMu.Lock()
	defer t.scratchMu.Unlock()
	if n := len(t.scratch); n > 0 {
		sc := t.scratch[n-1]
		t.scratch[n-1] = nil
		t.scratch = t.scratch[:n-1]
		return sc
	}
	return &shardScratch{
		sub:     make([][]uint64, len(t.children)),
		subRows: make([][][]float32, len(t.children)),
	}
}

// putScratch returns a scratch to the pool. Fetch/Write call it via defer,
// so the sub-batch buffers come back even when a child's RPC panics
// mid-gather (forEachServer re-raises child panics on the calling
// goroutine) — a failed shard call must not leak the pooled buffers.
func (t *ShardedStore) putScratch(sc *shardScratch) {
	t.scratchMu.Lock()
	t.scratch = append(t.scratch, sc)
	t.scratchMu.Unlock()
}

// instantStore is implemented by transports whose calls complete inline
// without waiting on a network (InProcess, and tiers composed of them).
type instantStore interface{ instant() bool }

// NewShardedStore builds the tier client over children, one per embedding
// server, in server order. All children must serve the same row width. A
// single-child store is a valid (degenerate) tier; callers that want to
// skip the fan-out bookkeeping entirely for S=1 may use the child directly,
// as cmd/bagpipe does.
func NewShardedStore(children []Store) *ShardedStore {
	if len(children) == 0 {
		panic("transport: sharded store over zero servers")
	}
	dim := children[0].Dim()
	for i, c := range children {
		if c.Dim() != dim {
			panic(fmt.Sprintf("transport: sharded store server %d serves dim %d, server 0 serves %d", i, c.Dim(), dim))
		}
	}
	instant := true
	for _, c := range children {
		if is, ok := c.(instantStore); !ok || !is.instant() {
			instant = false
			break
		}
	}
	return &ShardedStore{children: children, dim: dim, instantChildren: instant}
}

// instant implements instantStore: a tier of instant children is itself
// instant, so nested sharded stores keep the serial fast path.
func (t *ShardedStore) instant() bool { return t.instantChildren }

// Name implements Store.
func (t *ShardedStore) Name() string {
	return fmt.Sprintf("sharded-%d/%s", len(t.children), t.children[0].Name())
}

// Dim implements Store.
func (t *ShardedStore) Dim() int { return t.dim }

// Servers returns the tier width S.
func (t *ShardedStore) Servers() int { return len(t.children) }

// serialScatter reports whether a scatter over bounds should run inline on
// the calling goroutine: instant (in-process) children never block on a
// link, so there is nothing to overlap, and a single active server has no
// fan-out to do. Fetch/Write check this *before* building the per-server
// closure forEachServer needs — the closure escapes into goroutines and
// would heap-allocate once per call, the exact per-batch cost the pooled
// scatter exists to avoid on the hot in-process path.
func (t *ShardedStore) serialScatter(bounds []int) bool {
	if t.instantChildren {
		return true
	}
	active := 0
	for s := range t.children {
		if bounds[s] != bounds[s+1] {
			active++
		}
	}
	return active <= 1
}

// forEachServer runs fn for every server with a non-empty run in bounds,
// concurrently. Sub-batches wait on their server's link, not on CPU, so
// overlapping them is what makes an S-server tier S links wide instead of
// one link S times as long (each backend is its own NIC in the paper's
// trainer-node/server-node topology); serial scatters take the inline
// loops in Fetch/Write instead (see serialScatter). A panic in a child RPC
// is re-raised on the calling goroutine once every in-flight sub-batch
// finishes, so the caller's defers (scratch return) still run.
func (t *ShardedStore) forEachServer(bounds []int, fn func(s int)) {
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for s := range t.children {
		if bounds[s] == bounds[s+1] {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = p
					}
					panicMu.Unlock()
				}
			}()
			fn(s)
		}(s)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Fetch implements Store: one sub-batch per owning server, issued
// concurrently, rows delivered in request order no matter which order the
// servers reply in. The scatter buffers are pooled and returned via defer —
// including when a shard's RPC panics mid-gather.
func (t *ShardedStore) Fetch(ids []uint64) [][]float32 {
	sc := t.getScratch()
	defer t.putScratch(sc)
	out := GetRowSlice(len(ids))
	pos, bounds := sc.group.GroupByOwner(ids, len(t.children))
	if t.serialScatter(bounds) {
		for s := range t.children {
			if bounds[s] != bounds[s+1] {
				t.fetchServer(sc, s, ids, pos, bounds, out)
			}
		}
		return out
	}
	t.forEachServer(bounds, func(s int) { t.fetchServer(sc, s, ids, pos, bounds, out) })
	return out
}

// fetchServer issues one server's fetch sub-batch and gathers its rows into
// the request-order result.
func (t *ShardedStore) fetchServer(sc *shardScratch, s int, ids []uint64, pos, bounds []int, out [][]float32) {
	run := pos[bounds[s]:bounds[s+1]]
	sub := sc.sub[s][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
	}
	sc.sub[s] = sub
	rows := t.children[s].Fetch(sub)
	for i, p := range run {
		out[p] = rows[i]
	}
	// The child's result header is dead now that its rows moved into out;
	// recycle it.
	PutRowSlice(rows)
}

// Write implements Store: the scatter half of Fetch, one concurrent
// sub-batch of (id, row) pairs per owning server. It returns once every
// server acked its sub-batch — the write-durability contract the ℒ-window
// retirement depends on holds per server, so it holds for the tier.
func (t *ShardedStore) Write(ids []uint64, rows [][]float32) {
	if len(ids) != len(rows) {
		panic("transport: Write ids/rows length mismatch")
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	pos, bounds := sc.group.GroupByOwner(ids, len(t.children))
	if t.serialScatter(bounds) {
		for s := range t.children {
			if bounds[s] != bounds[s+1] {
				t.writeServer(sc, s, ids, pos, bounds, rows)
			}
		}
		return
	}
	t.forEachServer(bounds, func(s int) { t.writeServer(sc, s, ids, pos, bounds, rows) })
}

// writeServer issues one server's write sub-batch.
func (t *ShardedStore) writeServer(sc *shardScratch, s int, ids []uint64, pos, bounds []int, rows [][]float32) {
	run := pos[bounds[s]:bounds[s+1]]
	sub, subRows := sc.sub[s][:0], sc.subRows[s][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
		subRows = append(subRows, rows[p])
	}
	sc.sub[s], sc.subRows[s] = sub, subRows
	t.children[s].Write(sub, subRows)
	// Drop the row references so the pooled scratch doesn't pin the
	// caller's buffers until the next write.
	clear(subRows)
}

// Stats implements Store: the field-wise sum over the tier. Fetches/Writes
// count per-server sub-batch RPCs — the frames the fan-out actually put on
// the wire — so an S-way scatter of one logical fetch reports up to S
// calls, and SimulatedDelay sums the per-link serialization charges even
// though concurrent sub-batches overlap in wall-clock time.
func (t *ShardedStore) Stats() Stats {
	var sum Stats
	for _, c := range t.children {
		sum.Add(c.Stats())
	}
	return sum
}

// ServerStats implements Store: per-server snapshots, flattened in server
// order (a nested sharded child contributes its own per-server entries).
func (t *ShardedStore) ServerStats() []Stats {
	out := make([]Stats, 0, len(t.children))
	for _, c := range t.children {
		out = append(out, c.ServerStats()...)
	}
	return out
}

// Fingerprint implements Store: the order-independent combine of the
// per-server certificates (see Store.Fingerprint for why a wrapping sum of
// disjoint servers equals the merged state's fingerprint). The per-server
// RPCs fan out concurrently — the call completes when the slowest server
// answers, which keeps it an honest one-round-trip probe (the driver's
// -auto-lookahead pings time it to size the ℒ window).
func (t *ShardedStore) Fingerprint() uint64 {
	fps := make([]uint64, len(t.children))
	var wg sync.WaitGroup
	for s, c := range t.children {
		wg.Add(1)
		go func(s int, c Store) {
			defer wg.Done()
			fps[s] = c.Fingerprint()
		}(s, c)
	}
	wg.Wait()
	var sum uint64
	for _, fp := range fps {
		sum += fp
	}
	return sum
}

// Checkpoint implements Store: every server's checkpoint concatenated in
// server order, the layout embed.RestoreTier consumes. Like Fingerprint,
// the per-server RPCs fan out concurrently — these move full server
// states, so the tier checkpoint costs the slowest server, not the sum.
func (t *ShardedStore) Checkpoint() []byte {
	parts := make([][]byte, len(t.children))
	var wg sync.WaitGroup
	for s, c := range t.children {
		wg.Add(1)
		go func(s int, c Store) {
			defer wg.Done()
			parts[s] = c.Checkpoint()
		}(s, c)
	}
	wg.Wait()
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Shutdown implements Store.
func (t *ShardedStore) Shutdown() {
	for _, c := range t.children {
		c.Shutdown()
	}
}
