package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/core"
)

// Store is the trainer's client API to the embedding tier. It extends the
// point-to-point Transport data path (Fetch/Write/Dim/Stats/Name) with the
// tier operations every engine and the verification drivers need — state
// fingerprinting, checkpointing, and remote shutdown — so callers program
// against *the tier*, never against an individual server. The single-server
// transports (InProcess, SimNet, TCPLink) are degenerate one-server tiers;
// ShardedStore composes S of them into a real one. Engines take a Store and
// cannot tell the difference: sharding is a property of the tier client,
// not of the training logic.
type Store interface {
	Transport

	// Fingerprint returns the tier's state certificate: the wrapping sum of
	// every backend server's embed.Server.Fingerprint (per-partition
	// fingerprints from the first live holder when the tier replicates, so
	// replicated rows are counted once). The combine is order-independent
	// and the partitions are disjoint, so an S-server tier fingerprints
	// identically to the equivalent S=1 server — distributed verification
	// needs S cheap RPCs, not checkpoints.
	Fingerprint() uint64
	// Checkpoint returns the serialized state of every *live* backend
	// server, in server order; embed.RestoreTier (or, for a tier that lost
	// servers, embed.RestoreTierReplicated with the store's DeadServers)
	// rebuilds the merged logical state.
	Checkpoint() []byte
	// Shutdown asks every live remote server process behind the store to
	// stop serving once in-flight requests complete. A no-op for in-process
	// stores, whose servers the caller owns directly.
	Shutdown()
	// ServerStats returns one traffic snapshot per backend server, in
	// server order. Stats() is their field-wise sum (Stats.Add).
	ServerStats() []Stats
}

// TierError is an attributed, unrecoverable embedding-tier failure: every
// replica of one partition is dead. The errorless Store face raises it as a
// panic (a worker without its tier cannot make progress); OnLost lets a
// process intercept it first for a clean, attributed exit, and AsTierError
// recovers it from either path in tests.
type TierError struct {
	Op        string // "fetch", "write", "fingerprint", "checkpoint", "read", "resync"
	Partition int    // partition whose data became unreachable (== its owner server)
	Server    int    // last server tried for the partition
	Replicate int    // the tier's replication factor
	Cause     error  // the final per-server failure, when known
}

func (e *TierError) Error() string {
	msg := fmt.Sprintf("transport: embedding tier %s failed: partition %d unreachable (replication factor %d, last tried server %d)",
		e.Op, e.Partition, e.Replicate, e.Server)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *TierError) Unwrap() error { return e.Cause }

// ShardPanic wraps a panic raised inside one of the scatter's per-server
// goroutines before it is re-raised on the calling goroutine. Without it
// the re-panic would carry the original value but the *caller's* stack —
// the originating server and its goroutine stack, the two facts that make
// a mid-failover crash attributable, would be gone.
type ShardPanic struct {
	Server int    // server/partition index whose sub-batch RPC panicked
	Value  any    // the original panic value
	Stack  []byte // the originating goroutine's stack, captured at recover time
}

func (p *ShardPanic) Error() string {
	return fmt.Sprintf("transport: embedding tier server %d: %v\n\nserver goroutine stack:\n%s",
		p.Server, p.Value, p.Stack)
}

func (p *ShardPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// AsTierError extracts a *TierError from a recovered panic value, unwrapping
// the ShardPanic the concurrent scatter adds and any error chain around it.
func AsTierError(v any) (*TierError, bool) {
	for {
		switch x := v.(type) {
		case *TierError:
			return x, true
		case *ShardPanic:
			v = x.Value
		case error:
			var te *TierError
			if errors.As(x, &te) {
				return te, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// TierHealth is a snapshot of the tier client's failure-handling state, the
// failover counters -stats surfaces.
type TierHealth struct {
	Servers   int
	Replicate int
	// Failovers counts sub-batch RPCs served by a non-primary replica.
	Failovers int64
	// Retries counts per-server RPC attempts repeated after a transient
	// error, before the server was declared dead.
	Retries int64
	// Dead lists the servers this client has declared dead, ascending.
	Dead []int
	// Revived counts servers re-admitted to the live set after an
	// anti-entropy rejoin (dead → resync → live transitions completed).
	Revived int64
	// ResyncRows counts rows streamed to rejoining servers by the
	// anti-entropy transfer (recovery writes only, not forwarded live
	// writes).
	ResyncRows int64
	// RoutingEpoch is the installed routing-table epoch (0 before any
	// reshard touches the tier).
	RoutingEpoch uint64
	// ReshardParts counts new-space partitions whose reads have cut over to
	// their new owner ring (resharding progress).
	ReshardParts int64
	// ReshardRows / ReshardBytes count rows and payload bytes streamed by
	// reshard migrations through this client.
	ReshardRows  int64
	ReshardBytes int64
}

// TierOptions configures replication and failure handling for a
// ShardedStore. The zero value is the classic unreplicated tier.
type TierOptions struct {
	// Replicate is the replication factor R (default 1): each row lives on
	// its owner server plus the next R−1 servers on the core.OwnerOf ring.
	// Writes go to every live replica; reads go to the first live replica
	// in ring order (the owner, until it dies).
	Replicate int
	// Retries is the number of attempts per failed server RPC before the
	// server is declared dead (default 3). Only children implementing
	// FallibleStore participate; errorless children keep panicking.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (default 10ms).
	Backoff time.Duration
	// Jitter maps a computed backoff to the duration actually slept.
	// The default draws uniformly from [d/2, d] (full jitter), so P
	// trainer processes retrying a flapping server spread out instead of
	// hammering it in lockstep. Tests inject an identity function to keep
	// retry timing deterministic.
	Jitter func(d time.Duration) time.Duration
	// Dead marks servers already known dead at construction (index-aligned
	// with children; a child may be nil only when Dead marks it). The
	// driver's post-chaos control store uses this to certify a tier that
	// lost a server without dialing the corpse.
	Dead []bool
	// OnFailover, if set, is called exactly once per server as it is
	// declared dead, with the final error that condemned it.
	OnFailover func(server int, cause error)
	// OnLost, if set, is called before an unrecoverable TierError is raised
	// (every replica of a partition dead) — the hook a worker process uses
	// to exit cleanly with an attributed message instead of panicking.
	OnLost func(*TierError)
	// InitialServers is the tier width S the store starts routing over
	// (default len(children)). Children at index ≥ InitialServers are spare
	// capacity for a live reshard: they start absent — unrouted, excluded
	// from health — until a routing table that references them is
	// installed. A spare child may be nil if Dial can produce it on demand.
	InitialServers int
	// Dial, if set, connects server s on demand when a routing install
	// admits an absent slot that has no store yet (the reshard grow path in
	// processes that cannot pre-dial servers that don't exist at launch).
	Dial func(server int) (Store, error)
}

// ValidateTierOptions checks opts against a tier of numChildren backend
// slots, returning the error NewTier would panic with. Exported so flag
// parsing can reject a bad -replicate/-servers combination with a clean
// message before any server dials.
func ValidateTierOptions(numChildren int, opts TierOptions) error {
	if numChildren == 0 {
		return errors.New("transport: sharded store over zero servers")
	}
	width := opts.InitialServers
	if width == 0 {
		width = numChildren
	}
	if width < 1 || width > numChildren {
		return fmt.Errorf("transport: initial tier width %d outside [1, %d]", width, numChildren)
	}
	rep := opts.Replicate
	if rep == 0 {
		rep = 1
	}
	if rep < 1 || rep > width {
		return fmt.Errorf("transport: replication factor %d outside [1, %d]: each row needs %d distinct servers in its replica ring", rep, width, rep)
	}
	if opts.Dead != nil && len(opts.Dead) != numChildren {
		return fmt.Errorf("transport: dead set lists %d servers for a %d-server tier", len(opts.Dead), numChildren)
	}
	return nil
}

const (
	defaultTierRetries = 3
	defaultTierBackoff = 10 * time.Millisecond
)

// ShardedStore is the multi-server tier client: ids are partitioned across
// S backend stores by the canonical hash ownership core.OwnerOf(id, S) —
// the same total map the LRPP cache uses for trainer ownership — and every
// Fetch/Write is split into per-partition sub-batches issued concurrently
// (scatter), with fetched rows reassembled in request order regardless of
// the order the servers reply in (gather). Like every transport, it is a
// carrier, not a semantic layer: over the same request stream an S-server
// tier lands bit-identical state to the S=1 reference, which is what lets
// -verify certify sharded runs against the unsharded baseline.
//
// With TierOptions.Replicate ≥ 2 the tier also survives server loss: every
// partition's writes go to all live servers of its replica set (owner plus
// ring successors), reads route to the first live replica, and a child RPC
// that keeps failing after bounded retries marks its server dead and
// reroutes — replicated runs remain certifiable against the baseline even
// after a mid-run kill, because the surviving replicas hold every write.
type ShardedStore struct {
	// slots holds each server's connection state — the Store plus its
	// cached FallibleStore face, asserted once so the hot path never
	// type-switches. One atomic pointer per server so a rejoin can swap in
	// a freshly dialed connection (a new incarnation) without locking the
	// data path. A slot's store is nil only for a server dead since
	// construction.
	slots     []atomic.Pointer[serverSlot]
	capacity  int // backend slot count: the maximum width a reshard can grow to
	dim       int
	replicate int
	retries   int
	backoff   time.Duration
	jitter    func(time.Duration) time.Duration

	// routing is the installed routing table — the versioned ownership map
	// every data op routes by (settled at the construction width until a
	// reshard coordinator installs successors). installMu makes an install a
	// barrier against the data plane: every Fetch/Write/ReadFetch/
	// Fingerprint/Checkpoint holds the read side for its whole run, so
	// InstallRouting returns only once no in-flight op still routes by the
	// predecessor. Lock order: installMu before stateMu/partLocks, never
	// reversed.
	routing   atomic.Pointer[RoutingTable]
	installMu sync.RWMutex
	// dialFn connects absent spare slots admitted by a routing install.
	dialFn func(int) (Store, error)
	// routeSubs fire (outside the locks) after each routing install — the
	// serve front end uses this to flush epoch-crossing cached reads.
	routeMu   sync.Mutex
	routeSubs []func(epoch uint64)

	reshardParts atomic.Int64
	reshardRows  atomic.Int64
	reshardBytes atomic.Int64
	// instant is true when every live child completes without blocking on
	// I/O (in-process servers); the scatter then runs serially — goroutine
	// fan-out over direct calls is pure overhead and allocates.
	instantChildren bool

	// Per-server revival state machine: state is srvLive/srvDead/srvResync,
	// gen is the incarnation number fencing late RPC outcomes from an old
	// connection (bumped on every rejoin). Hot paths read both with plain
	// atomic loads; every *transition* (markDead, markLive, rejoin install)
	// is serialized by stateMu — transitions are rare, and the mutex is
	// what makes "OnFailover fires exactly once with the first cause" hold
	// under racing condemnations.
	state   []atomic.Int32
	gen     []atomic.Uint64
	stateMu sync.Mutex
	causes  []error // guarded by stateMu

	// partLocks serializes anti-entropy transfer rounds against the write
	// fan-out, per partition: writePartition holds the read side, a resync
	// round holds the write side around its export→transfer→verify
	// sequence, so a snapshot can never be overwritten by a write that
	// raced between export and apply.
	partLocks []sync.RWMutex

	// rejoinMu serializes whole rejoin operations (one server resyncing at
	// a time keeps the transfer source stable and the gen bookkeeping
	// simple).
	rejoinMu sync.Mutex

	failovers  atomic.Int64
	retried    atomic.Int64
	revived    atomic.Int64
	resyncRows atomic.Int64
	onFailover func(server int, cause error)
	onLost     func(*TierError)

	// readFails counts consecutive read-path errors per server. The read
	// path tries each replica once per request (no inline retries), so it
	// spreads the write path's retry budget across requests instead: once
	// a server accumulates `retries` consecutive read errors it is
	// condemned like a write-path exhaustion. Without this, a read-only
	// tier client (the serving front end) would never learn a server died
	// — DeadServers() drives the Reviver — and would pay a failed attempt
	// on every request forever. Replicated tiers only; at R=1 there is
	// nowhere to fail over, so the read just errors attributed.
	readFails []atomic.Int32

	// reviveSubs are callbacks fired (outside stateMu) when a server is
	// re-admitted live — the serve layer uses this to nudge its circuit
	// breaker into a prompt half-open probe.
	reviveMu   sync.Mutex
	reviveSubs []func(server int)

	// scratchMu guards a pool of scatter scratches (grouping arrays plus
	// per-partition sub-batch buffers). Pooled rather than per-store because
	// several trainer goroutines issue concurrent fetches through one tier
	// client.
	scratchMu sync.Mutex
	scratch   []*shardScratch
}

// serverSlot is one server's immutable connection record; rejoins replace
// the whole slot rather than mutating it.
type serverSlot struct {
	store    Store
	fallible FallibleStore // nil for errorless stores
	reshard  ReshardStore  // nil for stores without the reshard face
}

// newServerSlot builds a slot, asserting the optional faces once so the hot
// paths never type-switch.
func newServerSlot(c Store) *serverSlot {
	sl := &serverSlot{store: c}
	if f, ok := c.(FallibleStore); ok {
		sl.fallible = f
	}
	if r, ok := c.(ReshardStore); ok {
		sl.reshard = r
	}
	return sl
}

// Per-server revival states. A resyncing server receives forwarded writes
// and anti-entropy transfers but serves no reads and counts toward no write
// quorum until markLive re-admits it. An absent server is spare capacity
// beyond the routed width: unrouted, not dead (the Reviver must not try to
// rejoin it), admitted live by the routing install that first references
// it.
const (
	srvLive int32 = iota
	srvDead
	srvResync
	srvAbsent
)

// child returns server s's current store (nil only for a
// dead-at-construction server).
func (t *ShardedStore) child(s int) Store {
	if sl := t.slots[s].Load(); sl != nil {
		return sl.store
	}
	return nil
}

// fall returns server s's current FallibleStore face, nil for errorless
// children.
func (t *ShardedStore) fall(s int) FallibleStore {
	if sl := t.slots[s].Load(); sl != nil {
		return sl.fallible
	}
	return nil
}

// reshardFace returns server s's ReshardStore face, nil when the child
// doesn't implement it.
func (t *ShardedStore) reshardFace(s int) ReshardStore {
	if sl := t.slots[s].Load(); sl != nil {
		return sl.reshard
	}
	return nil
}

// down reports whether server s is not live (dead, resyncing, or absent) —
// the read-path and quorum visibility predicate.
func (t *ShardedStore) down(s int) bool { return t.state[s].Load() != srvLive }

// allLiveIn reports whether every server of the width-w routed set is live.
func (t *ShardedStore) allLiveIn(w int) bool {
	for s := 0; s < w; s++ {
		if t.state[s].Load() != srvLive {
			return false
		}
	}
	return true
}

// shardScratch is one concurrent caller's reusable scatter state.
type shardScratch struct {
	group   core.GroupScratch
	sub     [][]uint64
	subRows [][][]float32
}

// getScratch pops (or creates) a scatter scratch sized for this tier.
func (t *ShardedStore) getScratch() *shardScratch {
	t.scratchMu.Lock()
	defer t.scratchMu.Unlock()
	if n := len(t.scratch); n > 0 {
		sc := t.scratch[n-1]
		t.scratch[n-1] = nil
		t.scratch = t.scratch[:n-1]
		return sc
	}
	return &shardScratch{
		sub:     make([][]uint64, t.capacity),
		subRows: make([][][]float32, t.capacity),
	}
}

// putScratch returns a scratch to the pool. Fetch/Write call it via defer,
// so the sub-batch buffers come back even when a child's RPC panics
// mid-gather (forEachPartition re-raises child panics on the calling
// goroutine) — a failed shard call must not leak the pooled buffers.
func (t *ShardedStore) putScratch(sc *shardScratch) {
	t.scratchMu.Lock()
	t.scratch = append(t.scratch, sc)
	t.scratchMu.Unlock()
}

// instantStore is implemented by transports whose calls complete inline
// without waiting on a network (InProcess, and tiers composed of them).
type instantStore interface{ instant() bool }

// NewShardedStore builds the classic unreplicated tier client over children,
// one per embedding server, in server order. All children must serve the
// same row width. A single-child store is a valid (degenerate) tier; callers
// that want to skip the fan-out bookkeeping entirely for S=1 may use the
// child directly, as cmd/bagpipe does.
func NewShardedStore(children []Store) *ShardedStore {
	return NewTier(children, TierOptions{})
}

// NewTier builds the tier client over children with explicit replication
// and failure-handling options. Construction errors are programming errors
// and panic, matching NewShardedStore. Children beyond
// opts.InitialServers are spare reshard capacity and start absent (a spare
// child may be nil when opts.Dial can connect it later); within the initial
// width a nil child requires opts.Dead to mark it.
func NewTier(children []Store, opts TierOptions) *ShardedStore {
	nslots := len(children)
	if err := ValidateTierOptions(nslots, opts); err != nil {
		panic(err.Error())
	}
	width := opts.InitialServers
	if width == 0 {
		width = nslots
	}
	if opts.Replicate == 0 {
		opts.Replicate = 1
	}
	if opts.Retries <= 0 {
		opts.Retries = defaultTierRetries
	}
	if opts.Backoff <= 0 {
		opts.Backoff = defaultTierBackoff
	}
	if opts.Dead == nil {
		opts.Dead = make([]bool, nslots)
	}
	dim, instant, anyLive := 0, true, false
	for i, c := range children {
		if c == nil {
			if i < width && !opts.Dead[i] {
				panic(fmt.Sprintf("transport: live tier server %d has no store", i))
			}
			if i >= width && opts.Dial == nil {
				panic(fmt.Sprintf("transport: spare tier server %d has no store and no dialer", i))
			}
			continue
		}
		if !anyLive {
			dim, anyLive = c.Dim(), true
		} else if c.Dim() != dim {
			panic(fmt.Sprintf("transport: sharded store server %d serves dim %d, earlier servers serve %d", i, c.Dim(), dim))
		}
		if is, ok := c.(instantStore); !ok || !is.instant() {
			instant = false
		}
	}
	if !anyLive {
		panic("transport: every server of the tier is dead at construction")
	}
	t := &ShardedStore{
		slots:           make([]atomic.Pointer[serverSlot], nslots),
		capacity:        nslots,
		dim:             dim,
		replicate:       opts.Replicate,
		retries:         opts.Retries,
		backoff:         opts.Backoff,
		jitter:          opts.Jitter,
		instantChildren: instant,
		dialFn:          opts.Dial,
		state:           make([]atomic.Int32, nslots),
		gen:             make([]atomic.Uint64, nslots),
		readFails:       make([]atomic.Int32, nslots),
		causes:          make([]error, nslots),
		partLocks:       make([]sync.RWMutex, nslots),
		onFailover:      opts.OnFailover,
		onLost:          opts.OnLost,
	}
	if t.jitter == nil {
		t.jitter = defaultJitter
	}
	t.routing.Store(settledRouting(0, width))
	for i, c := range children {
		if c != nil {
			t.slots[i].Store(newServerSlot(c))
		}
		switch {
		case i >= width:
			t.state[i].Store(srvAbsent)
		case opts.Dead[i]:
			t.state[i].Store(srvDead)
		}
	}
	return t
}

// defaultJitter draws the slept backoff uniformly from [d/2, d] ("equal
// jitter"): bounded above by the computed exponential step, but decorrelated
// across the P trainer clients that would otherwise retry a flapping server
// in lockstep.
func defaultJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(d-half)+1))
}

// sleepBackoff counts and performs the a'th retry sleep (exponential base
// backoff through the jitter source).
func (t *ShardedStore) sleepBackoff(a int) {
	t.retried.Add(1)
	time.Sleep(t.jitter(t.backoff << a))
}

// instant implements instantStore: a tier of instant children is itself
// instant, so nested sharded stores keep the serial fast path.
func (t *ShardedStore) instant() bool { return t.instantChildren }

// Name implements Store.
func (t *ShardedStore) Name() string {
	for s := 0; s < t.capacity; s++ {
		c := t.child(s)
		if c == nil || t.state[s].Load() != srvLive {
			continue
		}
		return fmt.Sprintf("sharded-%d/%s", t.Servers(), c.Name())
	}
	return fmt.Sprintf("sharded-%d/dead", t.Servers())
}

// Dim implements Store.
func (t *ShardedStore) Dim() int { return t.dim }

// Servers returns the tier width S the store currently routes over: the
// settled width, or the authoritative (old) width mid-reshard.
func (t *ShardedStore) Servers() int { return t.routing.Load().Width() }

// Capacity returns the backend slot count — the maximum width a reshard can
// grow this store to.
func (t *ShardedStore) Capacity() int { return t.capacity }

// Replicate returns the tier's replication factor.
func (t *ShardedStore) Replicate() int { return t.replicate }

// Routing returns the installed routing table.
func (t *ShardedStore) Routing() *RoutingTable { return t.routing.Load() }

// DeadServers returns the indices of routed servers this client has
// declared dead, ascending. A resyncing server is no longer dead (its
// rejoin is in flight) but not yet live; DownServers includes it. Absent
// spares and servers outside the routed slot range are neither.
func (t *ShardedStore) DeadServers() []int {
	var dead []int
	for s := 0; s < t.routing.Load().MaxServer(); s++ {
		if t.state[s].Load() == srvDead {
			dead = append(dead, s)
		}
	}
	return dead
}

// DownServers returns the indices of routed servers not currently serving
// reads (dead or mid-resync), ascending — the set a consistent
// certification must exclude.
func (t *ShardedStore) DownServers() []int {
	var down []int
	for s := 0; s < t.routing.Load().MaxServer(); s++ {
		if st := t.state[s].Load(); st != srvLive && st != srvAbsent {
			down = append(down, s)
		}
	}
	return down
}

// TierHealth returns the failover counters (-stats plumbing).
func (t *ShardedStore) TierHealth() TierHealth {
	return TierHealth{
		Servers:      t.Servers(),
		Replicate:    t.replicate,
		Failovers:    t.failovers.Load(),
		Retries:      t.retried.Load(),
		Dead:         t.DeadServers(),
		Revived:      t.revived.Load(),
		ResyncRows:   t.resyncRows.Load(),
		RoutingEpoch: t.routing.Load().Epoch,
		ReshardParts: t.reshardParts.Load(),
		ReshardRows:  t.reshardRows.Load(),
		ReshardBytes: t.reshardBytes.Load(),
	}
}

// routeIn returns the server currently serving reads for the ring based at
// base in a width-width partition space: the first live server of the
// replica set in ring order, or -1 when the whole set is down. Resyncing
// servers are skipped — they must not serve reads until their state
// verifies.
func (t *ShardedStore) routeIn(base, width int) int {
	depth := t.replicate
	if depth > width {
		depth = width
	}
	for k := 0; k < depth; k++ {
		if s := (base + k) % width; t.state[s].Load() == srvLive {
			return s
		}
	}
	return -1
}

// markDead declares server s dead with the given cause. Idempotent under
// arbitrary contention: stateMu serializes the transition, so exactly one
// caller wins, records the first cause, and fires OnFailover (after
// releasing the lock — the callback may call back into the store).
func (t *ShardedStore) markDead(s int, cause error) {
	t.stateMu.Lock()
	if t.state[s].Load() == srvDead {
		t.stateMu.Unlock()
		return
	}
	t.state[s].Store(srvDead)
	t.causes[s] = cause
	t.stateMu.Unlock()
	if t.onFailover != nil {
		t.onFailover(s, cause)
	}
}

// markDeadIfGen is markDead fenced by incarnation: it condemns server s only
// if s still runs generation g. A slow RPC that started against the old
// incarnation and failed after the server rejoined must not kill the new
// incarnation — the failure belongs to a connection that no longer exists.
func (t *ShardedStore) markDeadIfGen(s int, g uint64, cause error) {
	t.stateMu.Lock()
	if t.gen[s].Load() != g || t.state[s].Load() == srvDead {
		t.stateMu.Unlock()
		return
	}
	t.state[s].Store(srvDead)
	t.causes[s] = cause
	t.stateMu.Unlock()
	if t.onFailover != nil {
		t.onFailover(s, cause)
	}
}

// markLive re-admits server s (generation g) to the live set after its
// resync verified: the inverse of markDead. Only the resyncing incarnation
// itself can come live — a concurrent markDeadIfGen wins by flipping the
// state back to dead first, and a newer generation means this rejoin was
// superseded. Revival subscribers fire outside stateMu.
func (t *ShardedStore) markLive(s int, g uint64) bool {
	t.stateMu.Lock()
	if t.gen[s].Load() != g || t.state[s].Load() != srvResync {
		t.stateMu.Unlock()
		return false
	}
	t.state[s].Store(srvLive)
	t.causes[s] = nil
	// The new incarnation starts with a clean read-failure streak — the
	// old connection's errors must not count against it.
	t.readFails[s].Store(0)
	t.stateMu.Unlock()
	t.revived.Add(1)
	t.reviveMu.Lock()
	subs := append([]func(server int){}, t.reviveSubs...)
	t.reviveMu.Unlock()
	for _, fn := range subs {
		fn(s)
	}
	return true
}

// SubscribeRevived registers fn to be called (on the reviving goroutine,
// outside the store's locks) whenever a server is re-admitted live.
func (t *ShardedStore) SubscribeRevived(fn func(server int)) {
	t.reviveMu.Lock()
	t.reviveSubs = append(t.reviveSubs, fn)
	t.reviveMu.Unlock()
}

// deadCause returns the recorded error that condemned server s, if any.
func (t *ShardedStore) deadCause(s int) error {
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	return t.causes[s]
}

// lost raises an unrecoverable tier failure: OnLost first (a worker's clean
// exit hook), then panic — the errorless Store face has no other way out.
func (t *ShardedStore) lost(e *TierError) {
	if e.Cause == nil && e.Server >= 0 && e.Server < len(t.causes) {
		e.Cause = t.deadCause(e.Server)
	}
	if t.onLost != nil {
		t.onLost(e)
	}
	panic(e)
}

// serialScatter reports whether a scatter over bounds should run inline on
// the calling goroutine: instant (in-process) children never block on a
// link, so there is nothing to overlap, and a single active partition has no
// fan-out to do. Fetch/Write check this *before* building the per-partition
// closure forEachPartition needs — the closure escapes into goroutines and
// would heap-allocate once per call, the exact per-batch cost the pooled
// scatter exists to avoid on the hot in-process path.
func (t *ShardedStore) serialScatter(bounds []int, width int) bool {
	if t.instantChildren {
		return true
	}
	active := 0
	for s := 0; s < width; s++ {
		if bounds[s] != bounds[s+1] {
			active++
		}
	}
	return active <= 1
}

// forEachPartition runs fn for every partition with a non-empty run in
// bounds, concurrently. Sub-batches wait on their server's link, not on
// CPU, so overlapping them is what makes an S-server tier S links wide
// instead of one link S times as long (each backend is its own NIC in the
// paper's trainer-node/server-node topology); serial scatters take the
// inline loops in Fetch/Write instead (see serialScatter). A panic in a
// child RPC is wrapped in a ShardPanic — originating partition plus the
// goroutine's stack, captured at recover time — and re-raised on the
// calling goroutine once every in-flight sub-batch finishes, so the
// caller's defers (scratch return, result-buffer recycling) still run and
// the crash stays attributable to a server.
func (t *ShardedStore) forEachPartition(bounds []int, width int, fn func(part int)) {
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *ShardPanic
	)
	for part := 0; part < width; part++ {
		if bounds[part] == bounds[part+1] {
			continue
		}
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					sp, ok := p.(*ShardPanic)
					if !ok {
						sp = &ShardPanic{Server: part, Value: p, Stack: debug.Stack()}
					}
					panicMu.Lock()
					if panicked == nil {
						panicked = sp
					}
					panicMu.Unlock()
				}
			}()
			fn(part)
		}(part)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Fetch implements Store: one sub-batch per owning partition, issued
// concurrently, rows delivered in request order no matter which order the
// servers reply in. The scatter buffers are pooled and returned via defer —
// including when a shard's RPC panics mid-gather, in which case the result
// header and every row already gathered into it go back to their pools too
// (each failover exercise would otherwise leak pool capacity).
//
// The whole op runs under the routing install barrier (installMu read
// side); a server rejecting a sub-batch as stale-routed aborts the op,
// which adopts the newer table outside the barrier and reissues — rows
// gathered by the aborted pass are recycled first (PutN skips the nils of
// partitions that never delivered).
func (t *ShardedStore) Fetch(ids []uint64) [][]float32 {
	sc := t.getScratch()
	defer t.putScratch(sc)
	out := GetRowSlice(len(ids))
	completed := false
	defer func() {
		if completed {
			return
		}
		Rows(t.dim).PutN(out)
		PutRowSlice(out)
	}()
	for attempt := 0; ; attempt++ {
		stale := t.fetchOnce(sc, ids, out)
		if stale == nil {
			break
		}
		Rows(t.dim).PutN(out)
		clear(out)
		if attempt >= staleRetryLimit {
			t.lost(&TierError{Op: "fetch", Partition: -1, Server: stale.Server, Replicate: t.replicate, Cause: stale})
		}
		t.adoptRouting(stale)
	}
	completed = true
	return out
}

// fetchOnce runs one fetch pass under the routing install barrier,
// reporting the stale-routing fence that aborted it, if any. The deferred
// unlock keeps a tier-lost panic from leaking the barrier's read side.
func (t *ShardedStore) fetchOnce(sc *shardScratch, ids []uint64, out [][]float32) *StaleRoutingError {
	t.installMu.RLock()
	defer t.installMu.RUnlock()
	rt := t.routing.Load()
	if rt.Settled() {
		return t.fetchSettled(sc, rt.NewS, ids, out)
	}
	return t.fetchResharding(rt, ids, out)
}

// fetchSettled is the scatter over a settled width-S routing — the
// allocation-free hot path every pre-reshard (and post-reshard) batch
// takes.
func (t *ShardedStore) fetchSettled(sc *shardScratch, width int, ids []uint64, out [][]float32) *StaleRoutingError {
	pos, bounds := sc.group.GroupByOwner(ids, width)
	if t.serialScatter(bounds, width) {
		for part := 0; part < width; part++ {
			if bounds[part] != bounds[part+1] {
				if se := t.fetchPartition(sc, part, width, ids, pos, bounds, out); se != nil {
					return se
				}
			}
		}
		return nil
	}
	var (
		staleMu sync.Mutex
		stale   *StaleRoutingError
	)
	t.forEachPartition(bounds, width, func(part int) {
		if se := t.fetchPartition(sc, part, width, ids, pos, bounds, out); se != nil {
			staleMu.Lock()
			if stale == nil {
				stale = se
			}
			staleMu.Unlock()
		}
	})
	return stale
}

// fetchResharding serves a fetch while a reshard is in flight: ids group by
// their *current read ring* — old-space for pending/dual partitions,
// new-space once a partition's reads cut over — instead of by a single
// width. Runs serially and allocates; mid-reshard batches are the rare
// case, and the settled path is untouched.
func (t *ShardedStore) fetchResharding(rt *RoutingTable, ids []uint64, out [][]float32) *StaleRoutingError {
	for rg, idxs := range groupByRing(rt, ids) {
		sub := make([]uint64, len(idxs))
		for j, i := range idxs {
			sub[j] = ids[i]
		}
		for {
			s := t.routeIn(rg.base, rg.width)
			if s < 0 {
				t.lost(&TierError{Op: "fetch", Partition: rg.base, Server: (rg.base + t.replicate - 1) % rg.width, Replicate: t.replicate})
			}
			rows, err := t.tryFetch(s, sub)
			if se := asStaleRouting(err); se != nil {
				se.Server = s
				return se
			}
			if err != nil {
				continue // s is dead now; route to the next live replica
			}
			if s != rg.base {
				t.failovers.Add(1)
			}
			for j, i := range idxs {
				out[i] = rows[j]
			}
			PutRowSlice(rows)
			break
		}
	}
	return nil
}

// ring identifies one replica ring: a base server in a width-wide partition
// space.
type ring struct{ base, width int }

// groupByRing buckets ids by the replica ring their reads currently route
// to under rt.
func groupByRing(rt *RoutingTable, ids []uint64) map[ring][]int {
	groups := make(map[ring][]int)
	for i, id := range ids {
		base, width := rt.readRing(id)
		key := ring{base, width}
		groups[key] = append(groups[key], i)
	}
	return groups
}

// fetchPartition issues one partition's fetch sub-batch — to its primary
// server, failing over along the replica ring as servers die — and gathers
// the rows into the request-order result. A stale-routing rejection aborts
// the sub-batch for the caller to re-route; it is a fence, not a failure,
// so it never counts against the server.
func (t *ShardedStore) fetchPartition(sc *shardScratch, part, width int, ids []uint64, pos, bounds []int, out [][]float32) *StaleRoutingError {
	run := pos[bounds[part]:bounds[part+1]]
	sub := sc.sub[part][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
	}
	sc.sub[part] = sub
	for {
		s := t.routeIn(part, width)
		if s < 0 {
			t.lost(&TierError{Op: "fetch", Partition: part, Server: (part + t.replicate - 1) % width, Replicate: t.replicate})
		}
		rows, err := t.tryFetch(s, sub)
		if se := asStaleRouting(err); se != nil {
			se.Server = s
			return se
		}
		if err != nil {
			continue // s is dead now; route to the next live replica
		}
		if s != part {
			t.failovers.Add(1)
		}
		for i, p := range run {
			out[p] = rows[i]
		}
		// The child's result header is dead now that its rows moved into
		// out; recycle it.
		PutRowSlice(rows)
		return nil
	}
}

// tryFetch issues one sub-batch fetch to server s with bounded retry; on
// exhaustion the server is declared dead and the last error returned.
// Errorless children cannot report failure, so they bypass the retry loop
// (their failures stay panics). The generation is captured *before* the
// slot: if the server rejoins mid-call, the exhausted condemnation is
// fenced off by markDeadIfGen rather than killing the new incarnation.
// A stale-routing rejection short-circuits: no retries, no condemnation —
// the routing layer heals it.
func (t *ShardedStore) tryFetch(s int, sub []uint64) ([][]float32, error) {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		return t.child(s).Fetch(sub), nil
	}
	var lastErr error
	for a := 0; ; a++ {
		rows, err := f.TryFetch(sub)
		if err == nil {
			return rows, nil
		}
		if asStaleRouting(err) != nil {
			return nil, err
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return nil, lastErr
}

// Write implements Store: the scatter half of Fetch, one concurrent
// sub-batch of (id, row) pairs per owning partition, written to every live
// server of the partition's replica set. It returns once every live replica
// acked its sub-batch — the write-durability contract the ℒ-window
// retirement depends on becomes "acked by all live replicas", which is what
// keeps a post-failover read (served by a replica) bit-identical to the
// read the dead primary would have served.
func (t *ShardedStore) Write(ids []uint64, rows [][]float32) {
	if len(ids) != len(rows) {
		panic("transport: Write ids/rows length mismatch")
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	completed := false
	defer func() {
		if completed {
			return
		}
		// A replica write panicked mid-scatter: drop the caller's row
		// references parked in the pooled sub-batch buffers, or the scratch
		// pins them until its next use.
		for i := range sc.subRows {
			s := sc.subRows[i]
			clear(s[:cap(s)])
		}
	}()
	for attempt := 0; ; attempt++ {
		stale := t.writeOnce(sc, ids, rows)
		if stale == nil {
			break
		}
		// A reissue after adopting rewrites sub-batches that already
		// landed; writes are idempotent (Set overwrites with the same
		// bytes), so the only cost is the duplicate RPC.
		if attempt >= staleRetryLimit {
			t.lost(&TierError{Op: "write", Partition: -1, Server: stale.Server, Replicate: t.replicate, Cause: stale})
		}
		t.adoptRouting(stale)
	}
	completed = true
}

// writeOnce runs one write pass under the routing install barrier (see
// fetchOnce).
func (t *ShardedStore) writeOnce(sc *shardScratch, ids []uint64, rows [][]float32) *StaleRoutingError {
	t.installMu.RLock()
	defer t.installMu.RUnlock()
	rt := t.routing.Load()
	if rt.Settled() {
		return t.writeSettled(sc, rt.NewS, ids, rows)
	}
	return t.writeResharding(rt, ids, rows)
}

// writeSettled is the scatter over a settled width-S routing — the
// allocation-free write hot path.
func (t *ShardedStore) writeSettled(sc *shardScratch, width int, ids []uint64, rows [][]float32) *StaleRoutingError {
	pos, bounds := sc.group.GroupByOwner(ids, width)
	if t.serialScatter(bounds, width) {
		for part := 0; part < width; part++ {
			if bounds[part] != bounds[part+1] {
				if se := t.writePartition(sc, part, width, ids, pos, bounds, rows); se != nil {
					return se
				}
			}
		}
		return nil
	}
	var (
		staleMu sync.Mutex
		stale   *StaleRoutingError
	)
	t.forEachPartition(bounds, width, func(part int) {
		if se := t.writePartition(sc, part, width, ids, pos, bounds, rows); se != nil {
			staleMu.Lock()
			if stale == nil {
				stale = se
			}
			staleMu.Unlock()
		}
	})
	return stale
}

// writeResharding fans a write out while a reshard is in flight. Ids group
// by (old partition, new partition) pair: every group's old-space owner
// ring takes the write exactly as a settled write would (it remains the
// authoritative copy until the tier settles), and once the new partition's
// dual-write window is open the group is also written to the new-space
// ring members that aren't already covered by the old ring. Serial and
// allocating, like fetchResharding.
func (t *ShardedStore) writeResharding(rt *RoutingTable, ids []uint64, rows [][]float32) *StaleRoutingError {
	groups := make(map[int][]int)
	for i, id := range ids {
		q := int(id % uint64(rt.OldS))
		pn := int(id % uint64(rt.NewS))
		groups[q*rt.NewS+pn] = append(groups[q*rt.NewS+pn], i)
	}
	for key, idxs := range groups {
		q, pn := key/rt.NewS, key%rt.NewS
		sub := make([]uint64, len(idxs))
		subRows := make([][]float32, len(idxs))
		for j, i := range idxs {
			sub[j], subRows[j] = ids[i], rows[i]
		}
		if se := t.writeGroupResharding(rt, q, pn, sub, subRows); se != nil {
			return se
		}
	}
	return nil
}

// writeGroupResharding writes one (old partition q, new partition pn) group:
// the old ring under q's resync lock with full ack accounting, then — when
// pn's dual-write window is open — a best-effort single-attempt write to
// each new-ring member not already in the old ring. Best-effort is enough
// for the dual leg: a member that misses the write (marked dead here) is
// either re-streamed or abandoned by the coordinator, and the migration
// verify rounds compare digests before any read ever routes to it.
func (t *ShardedStore) writeGroupResharding(rt *RoutingTable, q, pn int, sub []uint64, subRows [][]float32) *StaleRoutingError {
	oldDepth, newDepth := t.replicate, t.replicate
	if oldDepth > rt.OldS {
		oldDepth = rt.OldS
	}
	if newDepth > rt.NewS {
		newDepth = rt.NewS
	}
	lk := &t.partLocks[q]
	lk.RLock()
	defer lk.RUnlock()
	acked, lastSrv := 0, q
	var lastErr error
	for k := 0; k < oldDepth; k++ {
		s := (q + k) % rt.OldS
		switch t.state[s].Load() {
		case srvDead:
			lastSrv = s
		case srvResync:
			if se := t.forwardWrite(s, sub, subRows); se != nil {
				return se
			}
		default: // srvLive
			if err := t.tryWrite(s, sub, subRows); err != nil {
				if se := asStaleRouting(err); se != nil {
					se.Server = s
					return se
				}
				lastSrv, lastErr = s, err
				continue
			}
			acked++
		}
	}
	if acked == 0 {
		t.lost(&TierError{Op: "write", Partition: q, Server: lastSrv, Replicate: t.replicate, Cause: lastErr})
	}
	if rt.State[pn] == PartPending {
		return nil
	}
	for k := 0; k < newDepth; k++ {
		s := (pn + k) % rt.NewS
		inOld := false
		for j := 0; j < oldDepth; j++ {
			if s == (q+j)%rt.OldS {
				inOld = true
				break
			}
		}
		if inOld || t.state[s].Load() != srvLive {
			continue
		}
		if err := t.tryWriteOnce(s, sub, subRows); err != nil {
			if se := asStaleRouting(err); se != nil {
				se.Server = s
				return se
			}
		}
	}
	return nil
}

// writePartition issues one partition's write sub-batch to every live
// server of its replica set. Dead replicas are skipped (their state is
// recovered from the survivors at merge time); a resyncing replica gets the
// write *forwarded* — applied so no update is lost during the anti-entropy
// window, but not counted toward the ack quorum; a failing live replica is
// declared dead and does not fail the write as long as at least one live
// replica acked. The partition's resync lock is held shared for the whole
// fan-out (and released via defer, so the lost() panic path cannot leak
// it): a transfer round's export→apply→verify cannot interleave with a
// half-applied write.
func (t *ShardedStore) writePartition(sc *shardScratch, part, width int, ids []uint64, pos, bounds []int, rows [][]float32) *StaleRoutingError {
	run := pos[bounds[part]:bounds[part+1]]
	sub, subRows := sc.sub[part][:0], sc.subRows[part][:0]
	for _, p := range run {
		sub = append(sub, ids[p])
		subRows = append(subRows, rows[p])
	}
	sc.sub[part], sc.subRows[part] = sub, subRows
	lk := &t.partLocks[part]
	lk.RLock()
	defer lk.RUnlock()
	// Drop the row references so the pooled scratch doesn't pin the
	// caller's buffers until the next write; deferred so the stale-abort
	// returns clear too.
	defer clear(subRows)
	depth := t.replicate
	if depth > width {
		depth = width
	}
	acked, lastSrv := 0, part
	var lastErr error
	for k := 0; k < depth; k++ {
		s := (part + k) % width
		switch t.state[s].Load() {
		case srvDead:
			lastSrv = s
		case srvResync:
			if se := t.forwardWrite(s, sub, subRows); se != nil {
				return se
			}
		default: // srvLive
			if err := t.tryWrite(s, sub, subRows); err != nil {
				if se := asStaleRouting(err); se != nil {
					se.Server = s
					return se
				}
				lastSrv, lastErr = s, err
				continue
			}
			acked++
		}
	}
	if acked == 0 {
		t.lost(&TierError{Op: "write", Partition: part, Server: lastSrv, Replicate: t.replicate, Cause: lastErr})
	}
	return nil
}

// tryWrite is tryFetch's write-side twin (stale routing short-circuits the
// retry loop the same way).
func (t *ShardedStore) tryWrite(s int, sub []uint64, subRows [][]float32) error {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		t.child(s).Write(sub, subRows)
		return nil
	}
	var lastErr error
	for a := 0; ; a++ {
		err := f.TryWrite(sub, subRows)
		if err == nil {
			return nil
		}
		if asStaleRouting(err) != nil {
			return err
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return lastErr
}

// tryWriteOnce is the single-attempt write: a hard failure condemns the
// server (fenced by generation) without retrying, a stale-routing fence is
// passed through untouched. The dual-write leg and write forwarding use it
// — both are best-effort lanes repaired by verify rounds, so burning the
// retry budget on them would only stall the authoritative leg.
func (t *ShardedStore) tryWriteOnce(s int, sub []uint64, subRows [][]float32) error {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		t.child(s).Write(sub, subRows)
		return nil
	}
	err := f.TryWrite(sub, subRows)
	if err != nil && asStaleRouting(err) == nil {
		t.markDeadIfGen(s, g, err)
	}
	return err
}

// forwardWrite applies one write sub-batch to a resyncing server — the
// write-forwarding half of the anti-entropy window. One attempt, no retry
// loop: a rejoiner that cannot absorb the live write stream goes back to
// dead (fenced by its generation) and the write proceeds on the survivors;
// forwarded writes never count toward the ack quorum, so they cannot mask
// a loss of every *verified* replica. A stale-routing fence is returned for
// the op to re-route (the rejoiner is not condemned for it).
func (t *ShardedStore) forwardWrite(s int, sub []uint64, subRows [][]float32) *StaleRoutingError {
	if se := asStaleRouting(t.tryWriteOnce(s, sub, subRows)); se != nil {
		se.Server = s
		return se
	}
	return nil
}

// Stats implements Store: the field-wise sum over the tier. Fetches/Writes
// count per-server sub-batch RPCs — the frames the fan-out actually put on
// the wire, including replica writes — so an S-way scatter of one logical
// fetch reports up to S calls, and SimulatedDelay sums the per-link
// serialization charges even though concurrent sub-batches overlap in
// wall-clock time.
func (t *ShardedStore) Stats() Stats {
	var sum Stats
	for s := 0; s < t.capacity; s++ {
		c := t.child(s)
		if c == nil {
			continue
		}
		sum.Add(c.Stats())
	}
	return sum
}

// ServerStats implements Store: per-server snapshots, flattened in server
// order (a nested sharded child contributes its own per-server entries; a
// construction-dead child contributes one zero entry).
func (t *ShardedStore) ServerStats() []Stats {
	out := make([]Stats, 0, t.capacity)
	for s := 0; s < t.capacity; s++ {
		c := t.child(s)
		if c == nil {
			out = append(out, Stats{})
			continue
		}
		out = append(out, c.ServerStats()...)
	}
	return out
}

// partFingerprinter is the errorless partition-scoped certificate — every
// real transport implements it alongside FallibleStore.
type partFingerprinter interface {
	FingerprintPart(part, of int) uint64
}

// Fingerprint implements Store: the order-independent combine of the
// per-server certificates (see Store.Fingerprint for why a wrapping sum of
// disjoint partitions equals the merged state's fingerprint). The
// per-server RPCs fan out concurrently — the call completes when the
// slowest server answers, which keeps it an honest one-round-trip probe
// (the driver's -auto-lookahead pings time it to size the ℒ window). A
// replicated (or bereaved) tier sums partition-scoped fingerprints from
// each partition's first live holder instead, so replicated rows are
// counted exactly once and dead servers not at all.
// Mid-reshard the certificate is taken in the *old* partition space
// (RoutingTable.Width): dual writes keep it complete there until the
// settle, and the per-partition path is immune to the streamed-in alien
// rows a migration parks on its targets (FingerprintPart(p, W) filters to
// exactly p's id set). The whole-server fast path is gated on a settled
// table for the same reason: mid-shrink an old server holds rows of
// partitions it doesn't own in the old space, and summing whole servers
// would count them twice.
func (t *ShardedStore) Fingerprint() uint64 {
	t.installMu.RLock()
	defer t.installMu.RUnlock()
	rt := t.routing.Load()
	W := rt.Width()
	if rt.Settled() && t.replicate == 1 && t.allLiveIn(W) {
		fps := make([]uint64, W)
		var wg sync.WaitGroup
		for s := 0; s < W; s++ {
			wg.Add(1)
			go func(s int, c Store) {
				defer wg.Done()
				fps[s] = c.Fingerprint()
			}(s, t.child(s))
		}
		wg.Wait()
		var sum uint64
		for _, fp := range fps {
			sum += fp
		}
		return sum
	}
	fps := make([]uint64, W)
	var wg sync.WaitGroup
	for p := 0; p < W; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fps[p] = t.fingerprintPartition(p, W)
		}(p)
	}
	wg.Wait()
	var sum uint64
	for _, fp := range fps {
		sum += fp
	}
	return sum
}

// fingerprintPartition fetches partition part's certificate (in a width-W
// partition space) from its first live holder, failing over like the data
// path.
func (t *ShardedStore) fingerprintPartition(part, W int) uint64 {
	for {
		s := t.routeIn(part, W)
		if s < 0 {
			t.lost(&TierError{Op: "fingerprint", Partition: part, Server: (part + t.replicate - 1) % W, Replicate: t.replicate})
		}
		if t.fall(s) != nil {
			fp, err := t.tryFingerprintPart(s, part, W)
			if err != nil {
				continue
			}
			return fp
		}
		c := t.child(s)
		pf, ok := c.(partFingerprinter)
		if !ok {
			panic(fmt.Sprintf("transport: tier server %d (%T) cannot serve partition fingerprints", s, c))
		}
		return pf.FingerprintPart(part, W)
	}
}

// tryFingerprintPart is tryFetch's certificate-side twin.
func (t *ShardedStore) tryFingerprintPart(s, part, of int) (uint64, error) {
	g := t.gen[s].Load()
	f := t.fall(s)
	var lastErr error
	for a := 0; ; a++ {
		fp, err := f.TryFingerprintPart(part, of)
		if err == nil {
			return fp, nil
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return 0, lastErr
}

// Checkpoint implements Store: every live server's checkpoint concatenated
// in server order, the layout embed.RestoreTierReplicated consumes together
// with DeadServers (for an unreplicated, fully-live tier this is exactly
// the classic embed.RestoreTier layout). Like Fingerprint, the per-server
// RPCs fan out concurrently — these move full server states, so the tier
// checkpoint costs the slowest server, not the sum. A server lost *during*
// checkpointing is excluded like any other dead server — its partitions'
// writes live on their surviving replicas — unless some partition then has
// no live replica at all, which is unrecoverable.
func (t *ShardedStore) Checkpoint() []byte {
	// Like Fingerprint, checkpoints are taken in the authoritative
	// partition space under the install barrier: the old width mid-reshard
	// (where dual writes keep every server complete), the settled width
	// otherwise.
	t.installMu.RLock()
	defer t.installMu.RUnlock()
	S := t.routing.Load().Width()
	// Snapshot the down set once: servers changing state mid-checkpoint
	// (a rejoin completing, a mid-pull death) must not leave the
	// concatenation half from one membership view and half from another.
	down := make([]bool, S)
	for s := 0; s < S; s++ {
		down[s] = t.down(s)
	}
	parts := make([][]byte, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		if down[s] {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			parts[s] = t.checkpointServer(s)
		}(s)
	}
	wg.Wait()
	// A server whose pull failed was declared dead by checkpointServer and
	// contributed no bytes; fold it into the snapshot before the coverage
	// check.
	for s := 0; s < S; s++ {
		if !down[s] && parts[s] == nil {
			down[s] = true
		}
	}
	for part := 0; part < S; part++ {
		covered := false
		for k := 0; k < t.replicate; k++ {
			if !down[(part+k)%S] {
				covered = true
				break
			}
		}
		if !covered {
			t.lost(&TierError{Op: "checkpoint", Partition: part, Server: (part + t.replicate - 1) % S, Replicate: t.replicate})
		}
	}
	var out []byte
	for s, p := range parts {
		if down[s] {
			continue
		}
		out = append(out, p...)
	}
	return out
}

// checkpointServer pulls one server's checkpoint with bounded retry; on
// exhaustion the server is declared dead and nil returned.
func (t *ShardedStore) checkpointServer(s int) []byte {
	g := t.gen[s].Load()
	f := t.fall(s)
	if f == nil {
		return t.child(s).Checkpoint()
	}
	var lastErr error
	for a := 0; ; a++ {
		b, err := f.TryCheckpoint()
		if err == nil {
			return b
		}
		lastErr = err
		if a+1 >= t.retries {
			break
		}
		t.sleepBackoff(a)
	}
	t.markDeadIfGen(s, g, lastErr)
	return nil
}

// Shutdown implements Store, skipping dead and absent servers (there is no
// process to ask). Resyncing servers are asked too — a rejoiner's process
// is alive even though it isn't serving reads yet — and so are servers a
// shrink routed away from (their processes outlive the migration until
// someone stops them). A child whose process is already gone may panic on
// the shutdown call; that is swallowed, since shutdown is best-effort by
// contract.
func (t *ShardedStore) Shutdown() {
	for s := 0; s < t.capacity; s++ {
		c := t.child(s)
		if st := t.state[s].Load(); c == nil || st == srvDead || st == srvAbsent {
			continue
		}
		func() {
			defer func() { _ = recover() }()
			c.Shutdown()
		}()
	}
}
