// Package serve is the online inference front end: it answers scoring
// queries by reading live embeddings through the same transport.Store the
// LRPP trainers are mutating, with a bounded-staleness hot-row cache,
// per-client admission control, and per-server circuit breakers steering
// the tier's read-mostly fast path (transport.ReadFetch). The design
// contract is load-shedding, never queue collapse: a request the system
// cannot serve within its latency budget is rejected with an attributed
// error at the door (rate limit) or at the tier edge (breaker/failover
// exhaustion), so p99 stays bounded while a shard is slow or dead.
package serve

import (
	"sync"
	"time"
)

// Clock abstracts time for the admission-control layer so the token-bucket
// refill arithmetic and breaker cooldown transitions are testable without
// time.Sleep. Production code passes nil and gets the wall clock.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// RateLimiter is a per-client token bucket: each client refills at rate
// tokens/second up to burst, and one query spends one token. Clients are
// isolated — a client blowing through its budget cannot starve another —
// which is why the buckets are independent structs with independent locks,
// not one shared pool.
type RateLimiter struct {
	rate    float64
	burst   float64
	clock   Clock
	buckets []tokenBucket
	shed    counter
}

type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	primed bool
}

// NewRateLimiter builds a limiter for clients clients at rate queries/sec
// each with the given burst. rate <= 0 disables limiting (every Allow
// succeeds). clock nil means wall clock.
func NewRateLimiter(rate, burst float64, clients int, clock Clock) *RateLimiter {
	if clock == nil {
		clock = wallClock{}
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{rate: rate, burst: burst, clock: clock, buckets: make([]tokenBucket, clients)}
}

// Allow spends one token from client's bucket, reporting whether the query
// is admitted. A denied query is counted as shed.
func (l *RateLimiter) Allow(client int) bool {
	if l.rate <= 0 {
		return true
	}
	b := &l.buckets[client]
	now := l.clock.Now()
	b.mu.Lock()
	if !b.primed {
		b.tokens, b.last, b.primed = l.burst, now, true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if !ok {
		l.shed.add(1)
	}
	return ok
}

// Shed returns how many queries the limiter has rejected.
func (l *RateLimiter) Shed() int64 { return l.shed.load() }

// Breaker states. Closed passes traffic and counts consecutive failures;
// Open vetoes the server outright until Cooldown elapses; HalfOpen admits
// exactly one probe whose outcome decides between re-closing and
// re-opening.
const (
	BreakerClosed = iota
	BreakerOpen
	BreakerHalfOpen
)

// BreakerConfig tunes the per-server circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that trips the
	// breaker open. <= 0 means 3.
	FailThreshold int
	// SlowThreshold classifies a successful read slower than this as a
	// failure (a crawling shard is shed like a dead one). 0 disables.
	SlowThreshold time.Duration
	// Cooldown is how long an open breaker vetoes the server before
	// admitting a half-open probe. <= 0 means 200ms.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 200 * time.Millisecond
	}
	return c
}

// CircuitBreaker implements transport.ReadPolicy over a tier of servers:
// AllowRead vetoes servers whose breaker is open (so ReadFetch diverts the
// sub-batch to the next replica on the ring *before* queueing behind a dead
// socket's timeout), and ObserveRead feeds every attempt's outcome back
// into the state machine. One breaker state per server, independently
// locked; the read path calls in from per-partition goroutines.
type CircuitBreaker struct {
	cfg   BreakerConfig
	clock Clock
	srv   []breakerState
	trips counter
}

type breakerState struct {
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
}

// NewCircuitBreaker builds a breaker over servers tier servers. clock nil
// means wall clock.
func NewCircuitBreaker(servers int, cfg BreakerConfig, clock Clock) *CircuitBreaker {
	if clock == nil {
		clock = wallClock{}
	}
	return &CircuitBreaker{cfg: cfg.withDefaults(), clock: clock, srv: make([]breakerState, servers)}
}

// AllowRead implements transport.ReadPolicy.
func (cb *CircuitBreaker) AllowRead(server int) bool {
	s := &cb.srv[server]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if cb.clock.Now().Sub(s.openedAt) < cb.cfg.Cooldown {
			return false
		}
		s.state = BreakerHalfOpen
		s.probing = true
		return true
	default: // half-open: one probe in flight at a time
		if s.probing {
			return false
		}
		s.probing = true
		return true
	}
}

// ObserveRead implements transport.ReadPolicy.
func (cb *CircuitBreaker) ObserveRead(server int, d time.Duration, err error) {
	failed := err != nil || (cb.cfg.SlowThreshold > 0 && d > cb.cfg.SlowThreshold)
	s := &cb.srv[server]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == BreakerHalfOpen {
		s.probing = false
		if failed {
			s.state = BreakerOpen
			s.openedAt = cb.clock.Now()
			cb.trips.add(1)
		} else {
			s.state = BreakerClosed
			s.fails = 0
		}
		return
	}
	if !failed {
		s.fails = 0
		return
	}
	s.fails++
	if s.state == BreakerClosed && s.fails >= cb.cfg.FailThreshold {
		s.state = BreakerOpen
		s.openedAt = cb.clock.Now()
		cb.trips.add(1)
	}
}

// NotifyRevived tells the breaker that server has been re-admitted to the
// tier after a certified rejoin. An open breaker goes straight to half-open
// — the next read probes the revived server immediately instead of waiting
// out the cooldown window — and the consecutive-failure count resets so the
// old incarnation's death doesn't linger against the new one. Closed and
// half-open breakers just reset their failure count.
func (cb *CircuitBreaker) NotifyRevived(server int) {
	if server < 0 || server >= len(cb.srv) {
		return
	}
	s := &cb.srv[server]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails = 0
	if s.state == BreakerOpen {
		s.state = BreakerHalfOpen
		s.probing = false
	}
}

// State returns server's current breaker state (BreakerClosed/Open/HalfOpen).
func (cb *CircuitBreaker) State(server int) int {
	s := &cb.srv[server]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Trips returns how many times any breaker transitioned to open.
func (cb *CircuitBreaker) Trips() int64 { return cb.trips.load() }
