package serve

import (
	"testing"

	"bagpipe/internal/transport"
)

func arenaRow(dim int, fill float32) []float32 {
	row := transport.Rows(dim).Get()
	for i := range row {
		row[i] = fill
	}
	return row
}

// Epoch-tagged entries expire as the write-back epoch advances: a hit
// within the bound, invalidation past it.
func TestHotRowCacheStalenessBound(t *testing.T) {
	const dim = 4
	c := NewHotRowCache(dim, 8, 2, nil)
	c.Put(7, 10, arenaRow(dim, 1.5))

	dst := make([]float32, dim)
	lag, ok := c.Get(7, 12, dst) // 2 epochs old: still inside the bound
	if !ok || lag != 2 || dst[0] != 1.5 {
		t.Fatalf("in-bound hit: lag=%d ok=%v row=%v", lag, ok, dst[0])
	}
	if _, ok := c.Get(7, 13, dst); ok { // 3 epochs: past the bound
		t.Fatal("served a row staler than the bound")
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Fatalf("stale invalidations %d, want 1", st.Stale)
	}
	if c.Len() != 0 {
		t.Fatal("stale entry not evicted on touch")
	}
}

// A cached row corrupted in place (the arena-recycling failure mode) is
// caught by the adoption-time checksum: counted torn, reported to the
// auditor hook, and missed so the caller refetches.
func TestHotRowCacheTornRowDetection(t *testing.T) {
	const dim = 4
	var tornID uint64
	c := NewHotRowCache(dim, 8, 100, func(id uint64) { tornID = id })
	row := arenaRow(dim, 2.0)
	c.Put(9, 0, row)
	row[2] = 99 // corrupt the adopted row behind the cache's back

	dst := make([]float32, dim)
	if _, ok := c.Get(9, 0, dst); ok {
		t.Fatal("served a torn row")
	}
	if st := c.Stats(); st.Torn != 1 {
		t.Fatalf("torn count %d, want 1", st.Torn)
	}
	if tornID != 9 {
		t.Fatalf("auditor hook saw id %d, want 9", tornID)
	}
}

// Capacity is a hard bound; the clock hand prefers evicting untouched
// entries over recently hit ones.
func TestHotRowCacheEviction(t *testing.T) {
	const dim = 4
	c := NewHotRowCache(dim, 2, 100, nil)
	c.Put(1, 0, arenaRow(dim, 1))
	c.Put(2, 0, arenaRow(dim, 2))

	dst := make([]float32, dim)
	if _, ok := c.Get(1, 0, dst); !ok { // second-chance bit for id 1
		t.Fatal("warm entry missing")
	}
	c.Put(3, 0, arenaRow(dim, 3))
	if c.Len() != 2 {
		t.Fatalf("cache len %d past capacity 2", c.Len())
	}
	if _, ok := c.Get(3, 0, dst); !ok {
		t.Fatal("newly inserted entry missing")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

// Replacing an entry recycles the old row and serves the new value.
func TestHotRowCacheReplace(t *testing.T) {
	const dim = 4
	c := NewHotRowCache(dim, 4, 100, nil)
	c.Put(5, 0, arenaRow(dim, 1))
	c.Put(5, 3, arenaRow(dim, 7))
	dst := make([]float32, dim)
	lag, ok := c.Get(5, 3, dst)
	if !ok || lag != 0 || dst[0] != 7 {
		t.Fatalf("replaced entry: lag=%d ok=%v val=%v", lag, ok, dst[0])
	}
	if c.Len() != 1 {
		t.Fatalf("replace duplicated the entry: len %d", c.Len())
	}
}
