package serve

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/train"
	"bagpipe/internal/transport"
)

// The serving conformance suite: while an LRPP training run mutates the
// tier, every embedding row the front end serves must be a value the tier
// actually held at some write-back epoch (no torn or phantom rows), every
// served cache hit must respect the advertised staleness bound, and the
// final trained state must be untouched by the read load. The matrix runs
// every fabric (inproc, sim, tcp) × tier width S ∈ {1,2} × replication
// R ∈ {1,2} under -race.
//
// The torn/phantom detector is a history-checking tier wrapper: every
// client (P trainers + the serving front end) routes through a historyStore
// that records a checksum of every row value ever written — seeded with the
// keyspace's deterministic initial values — and checks every fetched row's
// checksum against that history. Recording happens *before* the write is
// forwarded, so any read that observes a value finds it recorded; a fetch
// whose checksum is absent is a row the tier never held.

// tierHist is the shared write history: id → the set of row checksums ever
// written (plus the initial materialization values).
type tierHist struct {
	mu    sync.Mutex
	seen  map[uint64]map[uint32]bool
	torn  atomic.Int64
	first atomic.Value // string: first violation, for the failure message
}

func newTierHist() *tierHist {
	return &tierHist{seen: map[uint64]map[uint32]bool{}}
}

// recordInit seeds the history with every id's deterministic initial row
// (embed row materialization depends only on (seed, id), not the server, so
// a shadow server with the same parameters reproduces them all).
func (h *tierHist) recordInit(spec *data.Spec, shards int, seed uint64, scale float32) {
	shadow := embed.NewServer(shards, spec.EmbDim, seed, scale)
	total := uint64(spec.TotalRows())
	for id := uint64(0); id < total; id++ {
		h.record(id, shadow.Get(id))
	}
}

func (h *tierHist) record(id uint64, row []float32) {
	s := rowSum(row)
	h.mu.Lock()
	set := h.seen[id]
	if set == nil {
		set = map[uint32]bool{}
		h.seen[id] = set
	}
	set[s] = true
	h.mu.Unlock()
}

func (h *tierHist) check(id uint64, row []float32) {
	s := rowSum(row)
	h.mu.Lock()
	ok := h.seen[id][s]
	h.mu.Unlock()
	if !ok {
		if h.torn.Add(1) == 1 {
			h.first.Store(fmt.Sprintf("id %d checksum %08x not in tier history", id, s))
		}
	}
}

// historyStore wraps one client's transport to one server, recording writes
// into and checking fetches against the shared history.
type historyStore struct {
	transport.Store
	f transport.FallibleStore
	h *tierHist
}

func newHistoryStore(child transport.Store, h *tierHist) *historyStore {
	f, ok := child.(transport.FallibleStore)
	if !ok {
		panic("conformance: child store has no fallible face")
	}
	return &historyStore{Store: child, f: f, h: h}
}

func (s *historyStore) recordAll(ids []uint64, rows [][]float32) {
	for i, id := range ids {
		s.h.record(id, rows[i])
	}
}

func (s *historyStore) checkAll(ids []uint64, rows [][]float32) {
	for i, id := range ids {
		s.h.check(id, rows[i])
	}
}

func (s *historyStore) Fetch(ids []uint64) [][]float32 {
	rows := s.Store.Fetch(ids)
	s.checkAll(ids, rows)
	return rows
}

func (s *historyStore) Write(ids []uint64, rows [][]float32) {
	s.recordAll(ids, rows)
	s.Store.Write(ids, rows)
}

func (s *historyStore) TryFetch(ids []uint64) ([][]float32, error) {
	rows, err := s.f.TryFetch(ids)
	if err == nil {
		s.checkAll(ids, rows)
	}
	return rows, err
}

func (s *historyStore) TryWrite(ids []uint64, rows [][]float32) error {
	s.recordAll(ids, rows)
	return s.f.TryWrite(ids, rows)
}

func (s *historyStore) TryFingerprintPart(part, of int) (uint64, error) {
	return s.f.TryFingerprintPart(part, of)
}

func (s *historyStore) TryCheckpoint() ([]byte, error) {
	return s.f.TryCheckpoint()
}

// Conformance-run shape: small enough for the full matrix under -race,
// long enough that serving overlaps live write-back traffic.
const (
	confShards    = 3
	confSeed      = 7
	confInitScale = 0.05
)

func confSpec() *data.Spec {
	return &data.Spec{
		Name:           "conf",
		NumExamples:    320,
		NumCategorical: 4,
		NumNumeric:     3,
		TableSizes:     []int64{64, 48, 32, 16},
		EmbDim:         8,
		Dist:           data.NewHotTail(0.05, 0.7, 1.05),
	}
}

func confTrainCfg(spec *data.Spec, P int) train.Config {
	return train.Config{
		Spec:            spec,
		Seed:            42,
		Model:           "wd",
		Optimizer:       "sgd",
		LR:              0.05,
		BatchSize:       16,
		NumBatches:      24,
		LookAhead:       4,
		NumTrainers:     P,
		PrefetchWorkers: 2,
	}
}

func confServers(spec *data.Spec, S int) []*embed.Server {
	tier := make([]*embed.Server, S)
	for i := range tier {
		tier[i] = embed.NewServer(confShards, spec.EmbDim, confSeed, confInitScale)
	}
	return tier
}

// confFabric builds n independent tier clients (one per trainer plus one
// for the front end) over the same S servers, each child wrapped in a
// historyStore.
type confFabric struct {
	name  string
	build func(t *testing.T, tier []*embed.Server, n, R int, h *tierHist) ([]transport.Store, func())
}

func tierOf(children []transport.Store, R int) transport.Store {
	if len(children) == 1 {
		return children[0]
	}
	return transport.NewTier(children, transport.TierOptions{
		Replicate: R,
		Retries:   2,
		Backoff:   time.Millisecond,
	})
}

func confFabrics() []confFabric {
	return []confFabric{
		{"inproc", func(t *testing.T, tier []*embed.Server, n, R int, h *tierHist) ([]transport.Store, func()) {
			stores := make([]transport.Store, n)
			for i := range stores {
				children := make([]transport.Store, len(tier))
				for s, srv := range tier {
					children[s] = newHistoryStore(transport.NewInProcess(srv), h)
				}
				stores[i] = tierOf(children, R)
			}
			return stores, func() {}
		}},
		{"sim", func(t *testing.T, tier []*embed.Server, n, R int, h *tierHist) ([]transport.Store, func()) {
			stores := make([]transport.Store, n)
			for i := range stores {
				children := make([]transport.Store, len(tier))
				for s, srv := range tier {
					children[s] = newHistoryStore(transport.NewSimNet(srv, 200*time.Microsecond, 0), h)
				}
				stores[i] = tierOf(children, R)
			}
			return stores, func() {}
		}},
		{"tcp", func(t *testing.T, tier []*embed.Server, n, R int, h *tierHist) ([]transport.Store, func()) {
			addrs := make([]string, len(tier))
			joins := make([]func(), len(tier))
			for s, srv := range tier {
				addrs[s], joins[s] = startConfEmbedServer(t, srv)
			}
			stores := make([]transport.Store, n)
			for i := range stores {
				children := make([]transport.Store, len(tier))
				for s := range tier {
					link, err := transport.DialTCPLink(addrs[s], 5*time.Second)
					if err != nil {
						t.Fatalf("dial server %d: %v", s, err)
					}
					children[s] = newHistoryStore(link, h)
				}
				stores[i] = tierOf(children, R)
			}
			return stores, func() {
				stores[len(stores)-1].Shutdown()
				for _, j := range joins {
					j()
				}
			}
		}},
	}
}

func startConfEmbedServer(t *testing.T, srv *embed.Server) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- transport.ServeEmbed(lis, srv) }()
	return lis.Addr().String(), func() {
		if err := <-done; err != nil {
			t.Errorf("ServeEmbed: %v", err)
		}
	}
}

// TestServeConformanceMatrix is the tentpole property: concurrent serving
// over a live training tier yields zero torn rows, zero phantom rows, zero
// staleness violations — on every fabric, tier width, and replication
// factor — and the read load leaves the trained state bit-identical to a
// serve-free baseline.
func TestServeConformanceMatrix(t *testing.T) {
	type combo struct{ S, R int }
	combos := []combo{{1, 1}, {2, 1}, {2, 2}}
	for _, fab := range confFabrics() {
		for _, c := range combos {
			t.Run(fmt.Sprintf("%s_S%d_R%d", fab.name, c.S, c.R), func(t *testing.T) {
				runServeConformance(t, fab, c.S, c.R)
			})
		}
	}
}

func runServeConformance(t *testing.T, fab confFabric, S, R int) {
	const P = 2
	spec := confSpec()
	cfg := confTrainCfg(spec, P)

	// Serve-free reference for the trained-state comparison.
	srvBase := embed.NewServer(confShards, spec.EmbDim, confSeed, confInitScale)
	base, err := train.RunBaseline(cfg, transport.NewInProcess(srvBase))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	hist := newTierHist()
	hist.recordInit(spec, confShards, confSeed, confInitScale)
	tier := confServers(spec, S)
	stores, cleanup := fab.build(t, tier, P+1, R, hist)
	defer cleanup()

	prog := train.NewProgress(P)
	cfg.Progress = prog

	fe, err := New(Config{
		Store:     transport.AsReadStore(stores[P]),
		Spec:      spec,
		Model:     cfg.Model,
		Seed:      cfg.Seed,
		Epoch:     prog,
		MaxStale:  4,
		CacheRows: 128,
		Clients:   3,
		Servers:   S,
	})
	if err != nil {
		t.Fatal(err)
	}

	trainDone := make(chan struct{})
	var (
		res      *train.Result
		trainErr error
	)
	go func() {
		defer close(trainDone)
		res, trainErr = train.RunLRPP(cfg, stores[:P], nil)
	}()
	lr, err := RunLoad(LoadConfig{
		Frontend: fe,
		Spec:     spec,
		Seed:     99,
		Clients:  3,
		Dist:     "zipf",
		Duration: time.Minute, // bounded by training finishing, not the clock
	}, trainDone)
	<-trainDone
	if trainErr != nil {
		t.Fatalf("training under serving load: %v", trainErr)
	}
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	if lr.Served == 0 {
		t.Fatal("serving loop never completed a query while training ran")
	}
	if lr.TierShed != 0 || lr.OtherErrs != 0 {
		t.Fatalf("healthy tier shed traffic: %+v", lr)
	}
	if n := hist.torn.Load(); n != 0 {
		t.Fatalf("%d torn/phantom fetches (first: %v)", n, hist.first.Load())
	}
	audit := fe.Audit()
	if !audit.Clean() {
		t.Fatalf("audit failed: %v", audit)
	}
	if audit.WorstStale > 4 {
		t.Fatalf("served a hit %d epochs stale past the bound of 4", audit.WorstStale)
	}

	// The read-only front end must not perturb training: the tier's final
	// state is bit-identical to the serve-free baseline.
	var merged *embed.Server
	if S == 1 {
		merged = tier[0]
	} else if merged, err = embed.MergeTierReplicated(tier, R, nil); err != nil {
		t.Fatal(err)
	}
	if d := embed.Diff(srvBase, merged); len(d) != 0 {
		t.Fatalf("tier diverged from serve-free baseline at %d ids (first: %v)", len(d), d[0])
	}
	if base.FirstLoss != res.FirstLoss || base.LastLoss != res.LastLoss {
		t.Fatalf("losses diverged under serving load: baseline %v/%v got %v/%v",
			base.FirstLoss, base.LastLoss, res.FirstLoss, res.LastLoss)
	}
}

// TestServeOrderIndependence pins that serving is a pure function of the
// quiesced tier: two fresh front ends serving the same query set in
// opposite orders return bit-identical scores.
func TestServeOrderIndependence(t *testing.T) {
	spec := confSpec()
	cfg := confTrainCfg(spec, 2)
	tier := confServers(spec, 2)
	hist := newTierHist()
	hist.recordInit(spec, confShards, confSeed, confInitScale)
	fabs := confFabrics()
	stores, cleanup := fabs[0].build(t, tier, 3, 1, hist)
	defer cleanup()
	if _, err := train.RunLRPP(cfg, stores[:2], nil); err != nil {
		t.Fatal(err)
	}

	const nq = 200
	queries := make([]data.Example, nq)
	qg := data.NewQueryGen(spec, 5, 0, data.NewZipf(1.1))
	for i := range queries {
		qg.Next(&queries[i])
		queries[i].Dense = append([]float32(nil), queries[i].Dense...)
		queries[i].Cat = append([]uint64(nil), queries[i].Cat...)
	}

	serveAll := func(order func(i int) int) []float32 {
		fe, err := New(Config{
			Store:     transport.AsReadStore(stores[2]),
			Spec:      spec,
			Model:     cfg.Model,
			Seed:      cfg.Seed,
			Epoch:     FixedEpoch(0),
			MaxStale:  1 << 40,
			CacheRows: 64, // small enough to force evictions and refetches
			Clients:   1,
			Servers:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float32, nq)
		for i := 0; i < nq; i++ {
			j := order(i)
			score, err := fe.Serve(0, &queries[j])
			if err != nil {
				t.Fatalf("query %d: %v", j, err)
			}
			out[j] = score
		}
		if !fe.Audit().Clean() {
			t.Fatalf("audit failed: %v", fe.Audit())
		}
		return out
	}

	fwd := serveAll(func(i int) int { return i })
	rev := serveAll(func(i int) int { return nq - 1 - i })
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("query %d scored %v forward, %v reversed", i, fwd[i], rev[i])
		}
	}
}
