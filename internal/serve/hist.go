package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// counter is a tiny embedded atomic counter (value semantics in struct
// literals stay zero-ready).
type counter struct{ v atomic.Int64 }

func (c *counter) add(n int64) { c.v.Add(n) }
func (c *counter) load() int64 { return c.v.Load() }

// Hist is a lock-free log-bucketed latency histogram: 8 sub-buckets per
// power-of-two octave of nanoseconds (≈12% relative resolution), atomic
// counters, no allocation on Observe — it sits on the serving hot path
// under the 0 allocs/op gate. Quantile answers p50/p99/p999 with the
// bucket's representative midpoint.
type Hist struct {
	buckets [64 * 8]atomic.Int64
	count   atomic.Int64
}

// histIdx maps a nanosecond count to its bucket: octave = position of the
// leading bit, sub-bucket = the next 3 bits.
func histIdx(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	n := uint64(ns)
	major := bits.Len64(n) - 1
	minor := 0
	if major >= 3 {
		minor = int((n >> (uint(major) - 3)) & 7)
	}
	return major*8 + minor
}

// histValue is the representative latency of bucket idx (midpoint of its
// sub-bucket range).
func histValue(idx int) time.Duration {
	major, minor := idx/8, idx%8
	lo := float64(uint64(1) << uint(major))
	return time.Duration(lo * (1 + (float64(minor)+0.5)/8))
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.buckets[histIdx(d.Nanoseconds())].Add(1)
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.count.Load() }

// Quantile returns the latency at quantile q in [0, 1]; 0 with no samples.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > target {
			return histValue(i)
		}
	}
	return histValue(len(h.buckets) - 1)
}
