package serve

import (
	"errors"
	"fmt"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/model"
	"bagpipe/internal/nn"
	"bagpipe/internal/tensor"
	"bagpipe/internal/transport"
)

// ErrRateLimited is returned for a query shed at the door by the
// per-client token bucket.
var ErrRateLimited = errors.New("serve: rate limited")

// EpochSource tells the front end the current write-back epoch — the clock
// the cache's staleness bound is denominated in. In-process serving wires
// the trainer's *train.Progress straight in (its Epoch is the min retired
// iteration across trainers); a front end in a separate process from the
// trainers (the TCP driver) uses a TickerEpoch, trading the exact iteration
// clock for a wall-clock one with the same monotone contract.
type EpochSource interface {
	Epoch() int64
}

// FixedEpoch is an EpochSource pinned at a constant — the no-training
// (pure serving) and unit-test case.
type FixedEpoch int64

// Epoch implements EpochSource.
func (e FixedEpoch) Epoch() int64 { return int64(e) }

// TickerEpoch advances the epoch once per period of wall time.
type TickerEpoch struct {
	start  time.Time
	period time.Duration
}

// NewTickerEpoch returns a ticker epoch advancing every period.
func NewTickerEpoch(period time.Duration) *TickerEpoch {
	if period <= 0 {
		period = 50 * time.Millisecond
	}
	return &TickerEpoch{start: time.Now(), period: period}
}

// Epoch implements EpochSource.
func (t *TickerEpoch) Epoch() int64 { return int64(time.Since(t.start) / t.period) }

// Config assembles a Frontend.
type Config struct {
	// Store is the tier's read-mostly face (transport.AsReadStore over the
	// same store training writes through).
	Store transport.ReadStore
	// Spec shapes queries and sizes the model; Model and Seed must match
	// the training run so the dense replica agrees with the trainers'.
	Spec  *data.Spec
	Model string
	Seed  uint64
	// Epoch is the write-back epoch clock; nil means FixedEpoch(0).
	Epoch EpochSource
	// MaxStale is the advertised staleness bound in epochs (<= 0 means 8):
	// a cached row is never served once the epoch has advanced more than
	// this past its fetch.
	MaxStale int64
	// CacheRows caps the hot-row cache (<= 0 means 4096 rows).
	CacheRows int
	// Clients is the closed-loop client count (model replicas + rate
	// buckets are per client).
	Clients int
	// RatePerClient is each client's admitted QPS (0 disables limiting);
	// Burst is the bucket depth (< 1 means 1).
	RatePerClient float64
	Burst         float64
	// Servers is the tier width the circuit breaker covers (<= 0 means 1).
	Servers int
	Breaker BreakerConfig
	// Clock feeds the limiter and breaker; nil means wall clock.
	Clock Clock
}

// Frontend is one inference serving process: admission control at the
// door, a bounded-staleness hot-row cache, breaker-routed tier reads, a
// per-client dense-model replica for the forward pass, and latency/audit
// accounting. Serve is safe for concurrent use across clients; calls for
// one client must be serial (each closed-loop client is one goroutine).
type Frontend struct {
	cfg     Config
	store   transport.ReadStore
	epoch   EpochSource
	cache   *HotRowCache
	limiter *RateLimiter
	breaker *CircuitBreaker
	auditor *Auditor
	models  []model.Model
	scratch []clientScratch
	dim     int

	// Lookup is embedding-gather time (cache + tier); E2E adds the model
	// forward pass.
	Lookup Hist
	E2E    Hist

	queries  counter
	tierShed counter
	reroutes counter
}

// clientScratch is one client's reusable request state; with every id a
// cache hit, a query touches none of the allocator.
type clientScratch struct {
	dense   *tensor.Matrix
	emb     *tensor.Matrix
	cats    [][]uint64
	missIDs []uint64
	missPos []int
	_       [32]byte // keep neighboring clients' scratch off one cache line
}

// New builds a Frontend.
func New(cfg Config) (*Frontend, error) {
	if cfg.Store == nil || cfg.Spec == nil {
		return nil, fmt.Errorf("serve: need a store and a spec")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.MaxStale <= 0 {
		cfg.MaxStale = 8
	}
	if cfg.CacheRows <= 0 {
		cfg.CacheRows = 4096
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Epoch == nil {
		cfg.Epoch = FixedEpoch(0)
	}
	if cfg.Model == "" {
		cfg.Model = "dlrm"
	}
	dim := cfg.Spec.EmbDim
	if sd := cfg.Store.Dim(); sd != dim {
		return nil, fmt.Errorf("serve: store dim %d != spec dim %d", sd, dim)
	}
	f := &Frontend{
		cfg:     cfg,
		store:   cfg.Store,
		epoch:   cfg.Epoch,
		limiter: NewRateLimiter(cfg.RatePerClient, cfg.Burst, cfg.Clients, cfg.Clock),
		breaker: NewCircuitBreaker(cfg.Servers, cfg.Breaker, cfg.Clock),
		auditor: NewAuditor(uint64(cfg.Spec.TotalRows()), cfg.MaxStale),
		models:  make([]model.Model, cfg.Clients),
		scratch: make([]clientScratch, cfg.Clients),
		dim:     dim,
	}
	f.cache = NewHotRowCache(dim, cfg.CacheRows, cfg.MaxStale, f.auditor.ObserveTorn)
	mcfg := model.Config{
		NumCategorical: cfg.Spec.NumCategorical,
		NumNumeric:     cfg.Spec.NumNumeric,
		TotalRows:      cfg.Spec.TotalRows(),
		EmbDim:         dim,
		Seed:           cfg.Seed,
	}
	for c := range f.models {
		m, err := model.New(cfg.Model, mcfg)
		if err != nil {
			return nil, err
		}
		f.models[c] = m
		sc := &f.scratch[c]
		sc.dense = tensor.NewMatrix(1, cfg.Spec.NumNumeric)
		sc.emb = tensor.NewMatrix(1, cfg.Spec.NumCategorical*dim)
		sc.cats = make([][]uint64, 1)
		sc.missIDs = make([]uint64, 0, cfg.Spec.NumCategorical)
		sc.missPos = make([]int, 0, cfg.Spec.NumCategorical)
	}
	return f, nil
}

// lookup gathers ex's embedding rows into client's scratch emb matrix:
// cache hits copy in place, misses batch into one breaker-routed ReadFetch
// whose rows the cache adopts. This is the path the 0 allocs/op gate pins
// (all-hit lookups never touch the allocator); the forward pass above it
// allocates inside the model and is measured, not gated.
func (f *Frontend) lookup(client int, ex *data.Example) error {
	if err := f.auditor.CheckIDs(ex.Cat); err != nil {
		return err
	}
	sc := &f.scratch[client]
	epoch := f.epoch.Epoch()
	sc.missIDs = sc.missIDs[:0]
	sc.missPos = sc.missPos[:0]
	for c, id := range ex.Cat {
		dst := sc.emb.Data[c*f.dim : (c+1)*f.dim]
		if lag, ok := f.cache.Get(id, epoch, dst); ok {
			f.auditor.ObserveHit(lag)
			continue
		}
		sc.missIDs = append(sc.missIDs, id)
		sc.missPos = append(sc.missPos, c)
	}
	if len(sc.missIDs) == 0 {
		return nil
	}
	rows, err := f.store.ReadFetch(sc.missIDs, f.breaker)
	if err != nil {
		f.tierShed.add(1)
		return err
	}
	for i, c := range sc.missPos {
		copy(sc.emb.Data[c*f.dim:(c+1)*f.dim], rows[i])
		// The cache adopts the arena-owned row; it is recycled on
		// eviction/invalidation, never here.
		f.cache.Put(sc.missIDs[i], epoch, rows[i])
	}
	transport.PutRowSlice(rows)
	return nil
}

// Serve answers one query for client: admission, embedding gather, model
// forward, score. A shed query returns ErrRateLimited or the tier's
// attributed *transport.TierError; latency histograms only record queries
// that were actually served.
func (f *Frontend) Serve(client int, ex *data.Example) (float32, error) {
	if !f.limiter.Allow(client) {
		return 0, ErrRateLimited
	}
	start := time.Now()
	if err := f.lookup(client, ex); err != nil {
		return 0, err
	}
	f.Lookup.Observe(time.Since(start))
	sc := &f.scratch[client]
	copy(sc.dense.Data, ex.Dense)
	sc.cats[0] = ex.Cat
	logits := f.models[client].Forward(sc.dense, sc.emb, sc.cats)
	score := nn.SigmoidScalar(logits[0])
	f.E2E.Observe(time.Since(start))
	f.queries.add(1)
	f.auditor.ObserveServed()
	return score, nil
}

// Audit returns the auditor's verdict so far.
func (f *Frontend) Audit() AuditReport { return f.auditor.Report() }

// Breaker exposes the circuit breaker (chaos harness + tests).
func (f *Frontend) Breaker() *CircuitBreaker { return f.breaker }

// NotifyRevived forwards a tier revival (a server certified and re-admitted
// after an anti-entropy rejoin) to the circuit breaker, so an open breaker
// probes the revived server promptly instead of waiting out its cooldown.
// Wire it to transport.ShardedStore.SubscribeRevived.
func (f *Frontend) NotifyRevived(server int) { f.breaker.NotifyRevived(server) }

// NotifyRouting tells the front end a new routing table was installed (a
// reshard epoch bump): the hot-row cache is flushed, since rows cached under
// the predecessor's ownership may now be served by different servers, and
// the next queries re-warm it through the tier's new routing. ReadFetch
// itself needs no notification — the tier client adopts new tables through
// the per-op stale-routing fence. Wire it to
// transport.ShardedStore.SubscribeRouting.
func (f *Frontend) NotifyRouting(epoch uint64) {
	f.cache.Flush()
	f.reroutes.add(1)
}

// Cache exposes the hot-row cache (tests + stats).
func (f *Frontend) Cache() *HotRowCache { return f.cache }

// Stats is the front end's point-in-time serving summary.
type Stats struct {
	Queries  int64
	RateShed int64
	TierShed int64
	Cache    CacheStats
	Trips    int64
	// Reroutes counts routing-table installs the front end followed (cache
	// flushes driven by a live reshard's epoch bumps).
	Reroutes   int64
	LookupP50  time.Duration
	LookupP99  time.Duration
	LookupP999 time.Duration
	E2EP50     time.Duration
	E2EP99     time.Duration
	E2EP999    time.Duration
}

// Stats snapshots the serving counters and latency quantiles.
func (f *Frontend) Stats() Stats {
	return Stats{
		Queries:    f.queries.load(),
		RateShed:   f.limiter.Shed(),
		TierShed:   f.tierShed.load(),
		Cache:      f.cache.Stats(),
		Trips:      f.breaker.Trips(),
		Reroutes:   f.reroutes.load(),
		LookupP50:  f.Lookup.Quantile(0.50),
		LookupP99:  f.Lookup.Quantile(0.99),
		LookupP999: f.Lookup.Quantile(0.999),
		E2EP50:     f.E2E.Quantile(0.50),
		E2EP99:     f.E2E.Quantile(0.99),
		E2EP999:    f.E2E.Quantile(0.999),
	}
}

// String renders the latency/shed report the CLI prints.
func (s Stats) String() string {
	return fmt.Sprintf(
		"serve: %d queries (shed %d rate, %d tier; breaker trips %d)\n"+
			"serve: lookup p50=%v p99=%v p999=%v | e2e p50=%v p99=%v p999=%v\n"+
			"serve: cache hits=%d misses=%d stale=%d evictions=%d",
		s.Queries, s.RateShed, s.TierShed, s.Trips,
		s.LookupP50, s.LookupP99, s.LookupP999, s.E2EP50, s.E2EP99, s.E2EP999,
		s.Cache.Hits, s.Cache.Misses, s.Cache.Stale, s.Cache.Evictions)
}
