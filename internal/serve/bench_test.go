package serve

import (
	"testing"

	"bagpipe/internal/data"
	"bagpipe/internal/transport"
)

// BenchmarkServeSteadyState pins the serving hot path: with the hot-row
// cache warm, an embedding lookup (admission check, epoch read, per-feature
// cache hits with checksum verification, gather into the request's emb
// matrix) must not touch the Go allocator — the CI alloc gate greps this
// benchmark for ' 0 allocs/op'. The model forward pass above the lookup
// allocates inside the model and is deliberately outside the gated surface
// (BenchmarkServeEndToEnd measures it).
func BenchmarkServeSteadyState(b *testing.B) {
	fe, ex := warmFrontend(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fe.lookup(0, ex); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := fe.Cache().Stats(); st.Misses != 0 {
		b.Fatalf("steady-state lookup missed %d times: not the hit path", st.Misses)
	}
}

// BenchmarkServeEndToEnd measures a full served query — lookup plus model
// forward — for the latency number next to the gated lookup cost.
func BenchmarkServeEndToEnd(b *testing.B) {
	fe, ex := warmFrontend(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fe.Serve(0, ex); err != nil {
			b.Fatal(err)
		}
	}
}

// warmFrontend builds a front end over an in-process store and serves one
// query until every row it touches is cached, then resets the counters.
func warmFrontend(b *testing.B) (*Frontend, *data.Example) {
	b.Helper()
	spec := confSpec()
	tier := confServers(spec, 1)
	fe, err := New(Config{
		Store:     transport.AsReadStore(transport.NewInProcess(tier[0])),
		Spec:      spec,
		Epoch:     FixedEpoch(0),
		MaxStale:  1 << 30,
		CacheRows: 4096,
		Clients:   1,
		Servers:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	qg := data.NewQueryGen(spec, 11, 0, data.NewZipf(1.1))
	ex := &data.Example{}
	qg.Next(ex)
	if _, err := fe.Serve(0, ex); err != nil {
		b.Fatal(err)
	}
	fe.cache.hits = counter{}
	fe.cache.misses = counter{}
	return fe, ex
}
