package serve

import (
	"errors"
	"testing"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/transport"
)

// faultedFrontend builds a 2-server tier of fault-injectable children (the
// PR-7 FaultStore wrapper, now carrying serve traffic) with a front end
// whose breaker has a fast trip/cooldown, plus the injectors.
func faultedFrontend(t *testing.T, R int, clk Clock) (*Frontend, []*transport.FaultStore, *data.Spec) {
	t.Helper()
	spec := confSpec()
	tier := confServers(spec, 2)
	faults := make([]*transport.FaultStore, 2)
	children := make([]transport.Store, 2)
	for s, srv := range tier {
		faults[s] = transport.NewFaultStore(transport.NewInProcess(srv), s)
		children[s] = faults[s]
	}
	// Retries (the tier's consecutive-read-error condemnation budget) sits
	// above the breaker's FailThreshold: the breaker opens and vetoes the
	// server before the tier condemns it, so a transient outage that heals
	// within the cooldown stays a breaker affair — only sustained failure
	// (post-cooldown probes that keep erroring) condemns the server and
	// hands it to the rejoin machinery.
	st := transport.NewTier(children, transport.TierOptions{
		Replicate: R,
		Retries:   3,
		Backoff:   time.Millisecond,
	})
	fe, err := New(Config{
		Store:     transport.AsReadStore(st),
		Spec:      spec,
		Epoch:     FixedEpoch(0),
		MaxStale:  1 << 30,
		CacheRows: 1, // force nearly every lookup to the tier
		Clients:   1,
		Servers:   2,
		Breaker: BreakerConfig{
			FailThreshold: 2,
			Cooldown:      50 * time.Millisecond,
		},
		Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fe, faults, spec
}

// With R=2 and a dead server, serve traffic fails over to the surviving
// replica: queries keep succeeding, the dead server's breaker trips, and
// once open the read path stops attempting it at all.
func TestServeFailsOverAroundDeadServer(t *testing.T) {
	fe, faults, spec := faultedFrontend(t, 2, nil)
	qg := data.NewQueryGen(spec, 3, 0, data.NewZipf(1.1))
	var ex data.Example

	faults[1].SetDown(true)
	for i := 0; i < 50; i++ {
		qg.Next(&ex)
		if _, err := fe.Serve(0, &ex); err != nil {
			t.Fatalf("query %d shed despite a live replica: %v", i, err)
		}
	}
	if fe.Breaker().State(1) != BreakerOpen {
		t.Fatal("dead server's breaker never tripped under serve traffic")
	}
	if fe.Breaker().State(0) != BreakerClosed {
		t.Fatal("surviving server's breaker tripped")
	}
	if audit := fe.Audit(); !audit.Clean() || audit.Served != 50 {
		t.Fatalf("audit: %v", audit)
	}
}

// With R=1 the dead partition is unreachable: Serve must return the tier's
// attributed *TierError promptly — op/partition/server named, no hang —
// while queries that only touch the live partition still serve.
func TestServeTierErrorAttributionNoReplicas(t *testing.T) {
	fe, faults, spec := faultedFrontend(t, 1, nil)
	faults[1].SetDown(true)

	qg := data.NewQueryGen(spec, 3, 0, data.NewZipf(1.1))
	var ex data.Example
	done := make(chan struct{})
	var sawTierErr *transport.TierError
	go func() {
		defer close(done)
		for i := 0; i < 100 && sawTierErr == nil; i++ {
			qg.Next(&ex)
			_, err := fe.Serve(0, &ex)
			if err != nil {
				var te *transport.TierError
				if !errors.As(err, &te) {
					t.Errorf("shed query returned %T, want *TierError: %v", err, err)
					return
				}
				sawTierErr = te
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("serving against a dead R=1 partition hung")
	}
	if sawTierErr == nil {
		t.Fatal("100 Zipf queries never touched the dead partition")
	}
	if sawTierErr.Op != "read" || sawTierErr.Partition != 1 {
		t.Fatalf("attribution %+v, want op=read partition=1", sawTierErr)
	}
	if sawTierErr.Replicate != 1 {
		t.Fatalf("replication factor %d, want 1", sawTierErr.Replicate)
	}
}

// After the dead server revives, the half-open probe re-closes the breaker
// and serving resumes against the primary: the chaos-recovery story at the
// unit level, on a fake clock.
func TestServeBreakerRecoversAfterRevival(t *testing.T) {
	clk := NewFakeClock()
	fe, faults, spec := faultedFrontend(t, 2, clk)
	qg := data.NewQueryGen(spec, 3, 0, data.NewZipf(1.1))
	var ex data.Example

	faults[1].SetDown(true)
	for i := 0; i < 30; i++ {
		qg.Next(&ex)
		if _, err := fe.Serve(0, &ex); err != nil {
			t.Fatalf("query %d shed during outage: %v", i, err)
		}
	}
	if fe.Breaker().State(1) != BreakerOpen {
		t.Fatal("breaker never tripped")
	}

	faults[1].SetDown(false)
	clk.Advance(time.Second) // past the 50ms cooldown
	for i := 0; i < 30 && fe.Breaker().State(1) != BreakerClosed; i++ {
		qg.Next(&ex)
		if _, err := fe.Serve(0, &ex); err != nil {
			t.Fatalf("query %d shed after revival: %v", i, err)
		}
	}
	if st := fe.Breaker().State(1); st != BreakerClosed {
		t.Fatalf("breaker state %d after revival and probes, want closed", st)
	}
	if audit := fe.Audit(); !audit.Clean() {
		t.Fatalf("audit: %v", audit)
	}
}
