package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/transport"
)

// LoadConfig drives a closed-loop load generation run against a Frontend.
type LoadConfig struct {
	Frontend *Frontend
	Spec     *data.Spec
	Seed     uint64
	// Clients is the concurrent closed-loop client count (must not exceed
	// the Frontend's configured Clients).
	Clients int
	// QPS is the aggregate offered rate paced across clients; 0 means
	// unpaced (each client issues as fast as the previous query finishes).
	QPS float64
	// Dist names the key-popularity profile (data.ServingDist): "zipf",
	// "drift", "hottail", "uniform". Empty means "zipf".
	Dist string
	// Duration bounds the run (<= 0 means 2s) unless stop fires first.
	Duration time.Duration
}

// LoadResult summarizes one load run. Latency quantiles live in the
// Frontend's histograms; this is the request accounting.
type LoadResult struct {
	Issued    int64
	Served    int64
	RateShed  int64
	TierShed  int64
	OtherErrs int64
	Elapsed   time.Duration
}

// String renders the one-line load summary.
func (r LoadResult) String() string {
	return fmt.Sprintf("load: issued=%d served=%d shed(rate=%d tier=%d) errs=%d in %v (%.0f served qps)",
		r.Issued, r.Served, r.RateShed, r.TierShed, r.OtherErrs, r.Elapsed.Round(time.Millisecond),
		float64(r.Served)/r.Elapsed.Seconds())
}

// RunLoad runs Clients closed-loop clients against the front end, each
// drawing a deterministic query stream from its own popularity
// distribution instance, paced to the aggregate QPS. It returns when
// Duration elapses or stop fires. Shed queries (rate limit, tier
// failure) are counted, not retried — the closed loop immediately moves
// to the next query, which is what keeps the front end's latency bounded
// while a shard is down.
func RunLoad(cfg LoadConfig, stop <-chan struct{}) (LoadResult, error) {
	if cfg.Frontend == nil || cfg.Spec == nil {
		return LoadResult{}, fmt.Errorf("serve: load needs a frontend and a spec")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Dist == "" {
		cfg.Dist = "zipf"
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if _, ok := data.ServingDist(cfg.Dist); !ok {
		return LoadResult{}, fmt.Errorf("serve: unknown serving distribution %q", cfg.Dist)
	}
	interval := time.Duration(0)
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Clients) / cfg.QPS)
	}
	deadline := time.After(cfg.Duration)
	done := make(chan struct{})
	var closeOnce sync.Once
	go func() {
		select {
		case <-deadline:
		case <-stop:
		}
		closeOnce.Do(func() { close(done) })
	}()

	var issued, served, rateShed, tierShed, otherErrs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			dist, _ := data.ServingDist(cfg.Dist)
			qg := data.NewQueryGen(cfg.Spec, cfg.Seed, client, dist)
			var ex data.Example
			next := time.Now()
			for {
				select {
				case <-done:
					return
				default:
				}
				if interval > 0 {
					now := time.Now()
					if wait := next.Sub(now); wait > 0 {
						select {
						case <-done:
							return
						case <-time.After(wait):
						}
					}
					next = next.Add(interval)
					if behind := time.Now(); next.Before(behind) {
						// A closed-loop client slower than its pace does not
						// accumulate debt it would then burst through.
						next = behind
					}
				}
				qg.Next(&ex)
				issued.Add(1)
				_, err := cfg.Frontend.Serve(client, &ex)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrRateLimited):
					rateShed.Add(1)
				default:
					var te *transport.TierError
					if errors.As(err, &te) {
						tierShed.Add(1)
					} else {
						otherErrs.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	return LoadResult{
		Issued:    issued.Load(),
		Served:    served.Load(),
		RateShed:  rateShed.Load(),
		TierShed:  tierShed.Load(),
		OtherErrs: otherErrs.Load(),
		Elapsed:   time.Since(start),
	}, nil
}
