package serve

import (
	"testing"
	"time"

	"bagpipe/internal/embed"
	"bagpipe/internal/train"
	"bagpipe/internal/transport"
)

// FuzzServeConcurrentTrain drives random interleavings of trainer
// write-backs, cache invalidations, and serving reads: the fuzzer picks the
// tier shape, staleness bound, cache size, and popularity profile, and the
// invariant auditor rejects any served row that never existed in the tier
// history (the history-checking wrapper from the conformance suite), any
// torn or phantom row, and any staleness-bound violation. The interleaving
// itself comes from goroutine scheduling — every run overlaps live training
// with serving — so each input explores a different slice of the
// (write-back × invalidation × read) space.
func FuzzServeConcurrentTrain(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(1), uint8(0), uint8(2), uint8(8))
	f.Add(uint64(7), uint8(2), uint8(1), uint8(1), uint8(0), uint8(3))
	f.Add(uint64(42), uint8(2), uint8(2), uint8(2), uint8(6), uint8(100))
	f.Add(uint64(1234), uint8(3), uint8(2), uint8(3), uint8(1), uint8(16))
	f.Fuzz(func(t *testing.T, seed uint64, pRaw, sRaw, distRaw, staleRaw, cacheRaw uint8) {
		P := int(pRaw)%3 + 1
		S := int(sRaw)%2 + 1
		R := 1
		if S > 1 && sRaw%4 >= 2 {
			R = 2
		}
		dists := []string{"zipf", "drift", "hottail", "uniform"}
		dist := dists[int(distRaw)%len(dists)]
		maxStale := int64(staleRaw)%8 + 1
		cacheRows := int(cacheRaw)%192 + 8

		spec := confSpec()
		cfg := confTrainCfg(spec, P)
		cfg.Seed = seed
		cfg.NumBatches = 10
		cfg.LookAhead = 3

		hist := newTierHist()
		hist.recordInit(spec, confShards, confSeed, confInitScale)
		tier := confServers(spec, S)
		stores := make([]transport.Store, P+1)
		for i := range stores {
			children := make([]transport.Store, S)
			for s, srv := range tier {
				children[s] = newHistoryStore(transport.NewInProcess(srv), hist)
			}
			stores[i] = tierOf(children, R)
		}

		prog := train.NewProgress(P)
		cfg.Progress = prog
		fe, err := New(Config{
			Store:     transport.AsReadStore(stores[P]),
			Spec:      spec,
			Model:     cfg.Model,
			Seed:      cfg.Seed,
			Epoch:     prog,
			MaxStale:  maxStale,
			CacheRows: cacheRows,
			Clients:   2,
			Servers:   S,
		})
		if err != nil {
			t.Fatal(err)
		}

		trainDone := make(chan struct{})
		var trainErr error
		go func() {
			defer close(trainDone)
			_, trainErr = train.RunLRPP(cfg, stores[:P], nil)
		}()
		lr, err := RunLoad(LoadConfig{
			Frontend: fe,
			Spec:     spec,
			Seed:     seed ^ 0xBEEF,
			Clients:  2,
			Dist:     dist,
			Duration: time.Minute,
		}, trainDone)
		<-trainDone
		if trainErr != nil {
			t.Fatalf("training: %v", trainErr)
		}
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if lr.TierShed != 0 || lr.OtherErrs != 0 {
			t.Fatalf("healthy tier shed traffic: %+v", lr)
		}
		if n := hist.torn.Load(); n != 0 {
			t.Fatalf("%d served rows never existed in tier history (first: %v)", n, hist.first.Load())
		}
		if audit := fe.Audit(); !audit.Clean() {
			t.Fatalf("audit failed: %v", audit)
		}
		if audit := fe.Audit(); audit.WorstStale > maxStale {
			t.Fatalf("worst served staleness %d epochs exceeds bound %d", audit.WorstStale, maxStale)
		}
		// The tier must end identical across R: merge and spot-check against
		// a serve-free replay with the same config.
		var merged *embed.Server
		if S == 1 {
			merged = tier[0]
		} else if merged, err = embed.MergeTierReplicated(tier, R, nil); err != nil {
			t.Fatal(err)
		}
		srvBase := embed.NewServer(confShards, spec.EmbDim, confSeed, confInitScale)
		if _, err := train.RunBaseline(cfg, transport.NewInProcess(srvBase)); err != nil {
			t.Fatalf("baseline replay: %v", err)
		}
		if d := embed.Diff(srvBase, merged); len(d) != 0 {
			t.Fatalf("tier diverged from serve-free baseline at %d ids (first: %v)", len(d), d[0])
		}
	})
}
