package serve

import "fmt"

// Auditor is the always-on serving-correctness monitor. It checks what a
// read-only observer of the tier can check without seeing every write:
//
//   - phantom rows: every id a query asks to serve must lie inside the
//     spec's keyspace — a served id no table contains is a row that never
//     existed in any tier state;
//   - torn rows: the cache's adoption-time checksum failing on a later hit
//     means the serving copy was mutated in place (an arena-recycling or
//     aliasing bug) — the front end refetches, and the event is counted
//     here;
//   - staleness: every served cache hit is at most the advertised epoch
//     bound old (the cache enforces it; the auditor independently tallies
//     the worst staleness actually served so the report is evidence, not
//     assertion).
//
// The deeper property — a served row's *value* matches some row the tier
// actually held at some epoch — needs the full write history and is pinned
// by the conformance suite's history-checking tier wrapper in
// conformance_test.go; the Auditor is the subset of that contract cheap
// enough to leave on in production serving.
type Auditor struct {
	totalRows uint64
	maxStale  int64

	served       counter
	phantoms     counter
	torn         counter
	worstStale   counter // max epoch lag actually served
	staleBeyond  counter // served hits older than the advertised bound
	checkedRows  counter
	refetchAfter counter // requests refetched after a torn-row detection
}

// NewAuditor builds an auditor for a keyspace of totalRows global ids and
// an advertised staleness bound of maxStale epochs.
func NewAuditor(totalRows uint64, maxStale int64) *Auditor {
	return &Auditor{totalRows: totalRows, maxStale: maxStale}
}

// CheckIDs verifies a query's ids are inside the keyspace before lookup;
// out-of-range ids are counted as phantoms and the query rejected.
func (a *Auditor) CheckIDs(ids []uint64) error {
	for _, id := range ids {
		if id >= a.totalRows {
			a.phantoms.add(1)
			return fmt.Errorf("serve: phantom row id %d outside keyspace of %d rows", id, a.totalRows)
		}
	}
	return nil
}

// ObserveHit records a served cache hit whose entry was fetched lag epochs
// ago.
func (a *Auditor) ObserveHit(lag int64) {
	a.checkedRows.add(1)
	for {
		cur := a.worstStale.load()
		if lag <= cur {
			break
		}
		if a.worstStale.v.CompareAndSwap(cur, lag) {
			break
		}
	}
	if lag > a.maxStale {
		a.staleBeyond.add(1)
	}
}

// ObserveTorn records a torn-row detection (wired as the cache's onTorn
// hook).
func (a *Auditor) ObserveTorn(uint64) { a.torn.add(1) }

// ObserveServed records one completed query.
func (a *Auditor) ObserveServed() { a.served.add(1) }

// AuditReport is the end-of-run verdict the CLI prints and CI greps.
type AuditReport struct {
	Served      int64
	Phantoms    int64
	Torn        int64
	WorstStale  int64
	StaleBeyond int64
}

// Clean reports whether every audited invariant held.
func (r AuditReport) Clean() bool {
	return r.Phantoms == 0 && r.Torn == 0 && r.StaleBeyond == 0
}

// String renders the one-line audit verdict.
func (r AuditReport) String() string {
	return fmt.Sprintf("serve audit: served=%d torn=%d phantom=%d stale-violations=%d worst-staleness=%d epochs",
		r.Served, r.Torn, r.Phantoms, r.StaleBeyond, r.WorstStale)
}

// Report snapshots the audit counters.
func (a *Auditor) Report() AuditReport {
	return AuditReport{
		Served:      a.served.load(),
		Phantoms:    a.phantoms.load(),
		Torn:        a.torn.load(),
		WorstStale:  a.worstStale.load(),
		StaleBeyond: a.staleBeyond.load(),
	}
}
