package serve

import (
	"errors"
	"testing"
	"time"
)

// Token-bucket arithmetic under a fake clock: burst drains, refill accrues
// at exactly rate tokens/second, and the bucket caps at burst.
func TestRateLimiterRefillArithmetic(t *testing.T) {
	clk := NewFakeClock()
	l := NewRateLimiter(10, 5, 1, clk) // 10 qps, burst 5

	for i := 0; i < 5; i++ {
		if !l.Allow(0) {
			t.Fatalf("burst query %d denied with tokens in the bucket", i)
		}
	}
	if l.Allow(0) {
		t.Fatal("query admitted from an empty bucket")
	}
	if got := l.Shed(); got != 1 {
		t.Fatalf("shed count %d, want 1", got)
	}

	// 100ms at 10 qps accrues exactly one token.
	clk.Advance(100 * time.Millisecond)
	if !l.Allow(0) {
		t.Fatal("refilled token denied")
	}
	if l.Allow(0) {
		t.Fatal("second query admitted after a one-token refill")
	}

	// 250ms accrues 2.5 tokens: two queries pass, the third is shed.
	clk.Advance(250 * time.Millisecond)
	if !l.Allow(0) || !l.Allow(0) {
		t.Fatal("2.5-token refill did not admit two queries")
	}
	if l.Allow(0) {
		t.Fatal("half a token admitted a query")
	}

	// A long idle period caps at burst, not rate×elapsed.
	clk.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Allow(0) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("after a long idle %d queries admitted, want burst=5", admitted)
	}
}

// Each client owns an isolated bucket: one client exhausting its budget
// must not steal another's tokens.
func TestRateLimiterPerClientIsolation(t *testing.T) {
	clk := NewFakeClock()
	l := NewRateLimiter(1, 2, 3, clk)

	for i := 0; i < 2; i++ {
		if !l.Allow(0) {
			t.Fatalf("client 0 burst query %d denied", i)
		}
	}
	if l.Allow(0) {
		t.Fatal("client 0 admitted past its burst")
	}
	for c := 1; c < 3; c++ {
		if !l.Allow(c) {
			t.Fatalf("client %d denied because client 0 drained its own bucket", c)
		}
	}
}

// Rate 0 disables limiting entirely.
func TestRateLimiterDisabled(t *testing.T) {
	l := NewRateLimiter(0, 0, 1, NewFakeClock())
	for i := 0; i < 100; i++ {
		if !l.Allow(0) {
			t.Fatal("disabled limiter shed a query")
		}
	}
}

// Breaker lifecycle under a fake clock: consecutive failures trip it open,
// the cooldown gates the half-open probe, and the probe's outcome decides
// between re-closing and re-opening — all without a single time.Sleep.
func TestCircuitBreakerTripAndHalfOpenProbe(t *testing.T) {
	clk := NewFakeClock()
	cb := NewCircuitBreaker(2, BreakerConfig{
		FailThreshold: 3,
		Cooldown:      time.Second,
	}, clk)

	fail := errors.New("down")
	// Two failures: still closed (threshold is 3 consecutive).
	cb.ObserveRead(0, time.Millisecond, fail)
	cb.ObserveRead(0, time.Millisecond, fail)
	if st := cb.State(0); st != BreakerClosed {
		t.Fatalf("state %d after 2 failures, want closed", st)
	}
	// A success resets the consecutive count.
	cb.ObserveRead(0, time.Millisecond, nil)
	cb.ObserveRead(0, time.Millisecond, fail)
	cb.ObserveRead(0, time.Millisecond, fail)
	if st := cb.State(0); st != BreakerClosed {
		t.Fatal("breaker tripped though a success broke the failure run")
	}
	// The third consecutive failure trips it.
	cb.ObserveRead(0, time.Millisecond, fail)
	if st := cb.State(0); st != BreakerOpen {
		t.Fatalf("state %d after 3 consecutive failures, want open", st)
	}
	if cb.Trips() != 1 {
		t.Fatalf("trips %d, want 1", cb.Trips())
	}
	if cb.AllowRead(0) {
		t.Fatal("open breaker admitted a read before cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.Advance(time.Second)
	if !cb.AllowRead(0) {
		t.Fatal("half-open probe denied after cooldown")
	}
	if st := cb.State(0); st != BreakerHalfOpen {
		t.Fatalf("state %d during probe, want half-open", st)
	}
	if cb.AllowRead(0) {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// Probe fails: back to open, a fresh cooldown starts.
	cb.ObserveRead(0, time.Millisecond, fail)
	if st := cb.State(0); st != BreakerOpen {
		t.Fatalf("state %d after failed probe, want open", st)
	}
	if cb.AllowRead(0) {
		t.Fatal("read admitted right after a failed probe")
	}

	// Next probe succeeds: closed, traffic flows again.
	clk.Advance(time.Second)
	if !cb.AllowRead(0) {
		t.Fatal("probe denied after second cooldown")
	}
	cb.ObserveRead(0, time.Millisecond, nil)
	if st := cb.State(0); st != BreakerClosed {
		t.Fatalf("state %d after successful probe, want closed", st)
	}
	for i := 0; i < 5; i++ {
		if !cb.AllowRead(0) {
			t.Fatal("closed breaker denied a read")
		}
	}
}

// A crawling shard trips the breaker just like a dead one: successful reads
// slower than SlowThreshold count as failures.
func TestCircuitBreakerSlowReadsTrip(t *testing.T) {
	cb := NewCircuitBreaker(1, BreakerConfig{
		FailThreshold: 2,
		SlowThreshold: 10 * time.Millisecond,
		Cooldown:      time.Second,
	}, NewFakeClock())
	cb.ObserveRead(0, 50*time.Millisecond, nil)
	cb.ObserveRead(0, 50*time.Millisecond, nil)
	if st := cb.State(0); st != BreakerOpen {
		t.Fatalf("state %d after 2 slow reads, want open", st)
	}
}

// Breakers are per server: server 1's failures never veto server 0.
func TestCircuitBreakerPerServerIsolation(t *testing.T) {
	cb := NewCircuitBreaker(2, BreakerConfig{FailThreshold: 1, Cooldown: time.Hour}, NewFakeClock())
	cb.ObserveRead(1, time.Millisecond, errors.New("down"))
	if cb.AllowRead(1) {
		t.Fatal("tripped server admitted a read")
	}
	if !cb.AllowRead(0) {
		t.Fatal("healthy server vetoed by its neighbor's breaker")
	}
}

// A certified tier rejoin short-circuits the breaker's cooldown: an open
// breaker goes straight to half-open — the very next read probes the
// revived server — and the failure streak the old incarnation accrued is
// forgiven. This is the serve-side half of the rejoin wiring
// (transport.ShardedStore.SubscribeRevived → Frontend.NotifyRevived).
func TestCircuitBreakerNotifyRevived(t *testing.T) {
	clk := NewFakeClock()
	cb := NewCircuitBreaker(2, BreakerConfig{
		FailThreshold: 2,
		Cooldown:      time.Minute,
	}, clk)

	fail := errors.New("down")
	cb.ObserveRead(1, time.Millisecond, fail)
	cb.ObserveRead(1, time.Millisecond, fail)
	if st := cb.State(1); st != BreakerOpen {
		t.Fatalf("state %d after trip, want open", st)
	}
	if cb.AllowRead(1) {
		t.Fatal("open breaker admitted a read mid-cooldown")
	}

	// The rejoin certifies long before the minute-long cooldown elapses.
	cb.NotifyRevived(1)
	if st := cb.State(1); st != BreakerHalfOpen {
		t.Fatalf("state %d after revival, want half-open", st)
	}
	if !cb.AllowRead(1) {
		t.Fatal("revived server denied its probe")
	}
	if cb.AllowRead(1) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	cb.ObserveRead(1, time.Millisecond, nil)
	if st := cb.State(1); st != BreakerClosed {
		t.Fatalf("state %d after a successful probe, want closed", st)
	}

	// On a closed breaker the revival only forgives the failure streak: one
	// old failure plus one new one must not re-trip.
	cb.ObserveRead(1, time.Millisecond, fail)
	cb.NotifyRevived(1)
	cb.ObserveRead(1, time.Millisecond, fail)
	if st := cb.State(1); st != BreakerClosed {
		t.Fatalf("state %d, want closed: revival should have reset the streak", st)
	}

	// Out-of-range servers are ignored, not a panic (revival callbacks are
	// wired across subsystems whose widths can drift).
	cb.NotifyRevived(-1)
	cb.NotifyRevived(99)

	// The untouched neighbor stayed closed throughout.
	if st := cb.State(0); st != BreakerClosed {
		t.Fatalf("neighbor state %d, want closed", st)
	}
}
