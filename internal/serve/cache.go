package serve

import (
	"math"
	"sync"

	"bagpipe/internal/transport"
)

// HotRowCache is the front end's bounded-staleness embedding cache. Every
// entry is tagged with the write-back epoch current when its row was
// fetched from the tier; a hit is only served while the run's epoch has
// advanced at most maxStale past the entry's tag, after which the entry is
// invalidated on touch — the trainer's write-back advancing is what expires
// serving state, exactly the staleness contract ARCHITECTURE.md advertises.
//
// Rows live in the shared per-width transport.RowArena: inserts adopt
// arena-owned rows (the tier read path allocates its results from the same
// arena), and eviction/invalidation recycles them, so a warmed cache serves
// hits and turns over misses without touching the Go allocator. Capacity is
// fixed at construction; eviction is a clock hand (second-chance) over the
// entry array — no linked lists to allocate, and scan cost is amortized
// O(1) per insert.
//
// Every hit re-checksums the row against the checksum taken at adoption.
// A mismatch means the serving copy was corrupted in place — the classic
// arena-recycling bug where a row still cached was returned to the pool
// and handed to a writer — and is counted as a torn row, surfaced through
// the auditor, and treated as a miss so the request refetches.
type HotRowCache struct {
	mu       sync.Mutex
	dim      int
	maxStale int64
	arena    *transport.RowArena
	idx      map[uint64]int32
	ents     []cacheEntry
	freeList []int32
	hand     int

	hits, misses, stale, evictions, torn counter
	onTorn                               func(id uint64)
}

type cacheEntry struct {
	id    uint64
	row   []float32
	epoch int64
	sum   uint32
	used  bool
	live  bool
}

// NewHotRowCache builds a cache of capacity rows of width dim whose hits
// are valid for maxStale epochs past their fetch epoch. onTorn, when
// non-nil, observes every checksum failure (the auditor's hook).
func NewHotRowCache(dim, capacity int, maxStale int64, onTorn func(id uint64)) *HotRowCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &HotRowCache{
		dim:      dim,
		maxStale: maxStale,
		arena:    transport.Rows(dim),
		idx:      make(map[uint64]int32, capacity),
		ents:     make([]cacheEntry, capacity),
		freeList: make([]int32, 0, capacity),
		onTorn:   onTorn,
	}
	for i := capacity - 1; i >= 0; i-- {
		c.freeList = append(c.freeList, int32(i))
	}
	return c
}

// rowSum is the adoption-time checksum hits are re-verified against (FNV-1a
// over the float bit patterns; allocation-free).
func rowSum(row []float32) uint32 {
	h := uint32(2166136261)
	for _, v := range row {
		b := math.Float32bits(v)
		h ^= b & 0xFF
		h *= 16777619
		h ^= (b >> 8) & 0xFF
		h *= 16777619
		h ^= (b >> 16) & 0xFF
		h *= 16777619
		h ^= b >> 24
		h *= 16777619
	}
	return h
}

// Get copies id's cached row into dst (len dim) and reports a hit plus the
// entry's staleness lag in epochs. now is the current write-back epoch; an
// entry older than maxStale is invalidated and missed. The copy happens
// under the cache lock so a concurrent eviction can never recycle the row
// mid-read.
func (c *HotRowCache) Get(id uint64, now int64, dst []float32) (int64, bool) {
	c.mu.Lock()
	i, ok := c.idx[id]
	if !ok {
		c.misses.add(1)
		c.mu.Unlock()
		return 0, false
	}
	e := &c.ents[i]
	lag := now - e.epoch
	if lag > c.maxStale {
		c.stale.add(1)
		c.misses.add(1)
		c.dropLocked(i)
		c.mu.Unlock()
		return 0, false
	}
	if rowSum(e.row) != e.sum {
		c.torn.add(1)
		c.misses.add(1)
		id := e.id
		c.dropLocked(i)
		c.mu.Unlock()
		if c.onTorn != nil {
			c.onTorn(id)
		}
		return 0, false
	}
	copy(dst, e.row)
	e.used = true
	c.hits.add(1)
	c.mu.Unlock()
	return lag, true
}

// Put adopts an arena-owned row for id at epoch now: the cache owns it
// until eviction/invalidation recycles it. A replaced entry's old row is
// recycled immediately.
func (c *HotRowCache) Put(id uint64, now int64, row []float32) {
	c.mu.Lock()
	if i, ok := c.idx[id]; ok {
		e := &c.ents[i]
		c.arena.Put(e.row)
		e.row, e.epoch, e.sum, e.used = row, now, rowSum(row), true
		c.mu.Unlock()
		return
	}
	i := c.takeSlotLocked()
	e := &c.ents[i]
	*e = cacheEntry{id: id, row: row, epoch: now, sum: rowSum(row), used: true, live: true}
	c.idx[id] = i
	c.mu.Unlock()
}

// dropLocked removes entry i, recycling its row. Caller holds c.mu.
func (c *HotRowCache) dropLocked(i int32) {
	e := &c.ents[i]
	delete(c.idx, e.id)
	c.arena.Put(e.row)
	*e = cacheEntry{}
	c.freeList = append(c.freeList, i)
}

// takeSlotLocked returns a free entry index, running the clock hand to
// evict a victim when the cache is full. Caller holds c.mu.
func (c *HotRowCache) takeSlotLocked() int32 {
	if n := len(c.freeList); n > 0 {
		i := c.freeList[n-1]
		c.freeList = c.freeList[:n-1]
		return i
	}
	for {
		e := &c.ents[c.hand]
		victim := int32(c.hand)
		c.hand = (c.hand + 1) % len(c.ents)
		if !e.live {
			continue
		}
		if e.used {
			e.used = false
			continue
		}
		c.evictions.add(1)
		c.dropLocked(victim)
		n := len(c.freeList)
		i := c.freeList[n-1]
		c.freeList = c.freeList[:n-1]
		return i
	}
}

// Flush drops every entry, recycling the rows, and returns how many went.
// The serving front end calls it on a routing-epoch bump: a reshard moved
// row ownership under the cache, and rather than reason about which cached
// rows crossed an ownership boundary mid-migration, the cache starts cold —
// the next queries refetch through the tier's new routing and re-warm it.
func (c *HotRowCache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.ents {
		if c.ents[i].live {
			c.dropLocked(int32(i))
			n++
		}
	}
	return n
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Stale, Evictions, Torn int64
}

// Stats snapshots the counters.
func (c *HotRowCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.load(),
		Misses:    c.misses.load(),
		Stale:     c.stale.load(),
		Evictions: c.evictions.load(),
		Torn:      c.torn.load(),
	}
}

// Len returns the number of live entries.
func (c *HotRowCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idx)
}
