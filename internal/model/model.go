// Package model assembles the four recommendation models the paper
// evaluates (Table 2): Meta's DLRM, Google's Wide&Deep, Deep&Cross, and
// Huawei's DeepFM. All four share the structure of Figure 1 — embedding
// tables for categorical features, an MLP path for numeric features, an
// interaction stage, and a prediction head — and differ in the interaction
// and in dense-parameter count, which is what drives their different
// synchronization costs in the evaluation.
//
// A model consumes a batch as (dense features, gathered embedding rows,
// categorical IDs) and produces logits; Backward returns the gradient with
// respect to the gathered embedding rows so the training pipeline can route
// sparse updates through the cache/servers, while dense gradients accumulate
// inside the model for the optimizer.
package model

import (
	"fmt"

	"bagpipe/internal/nn"
	"bagpipe/internal/tensor"
)

// Model is a trainable recommendation model.
type Model interface {
	// Name identifies the model ("dlrm", "wd", "dc", "deepfm").
	Name() string
	// EmbDim returns the embedding-vector width the model expects.
	EmbDim() int
	// Forward computes per-example logits. dense is B×NumNumeric, emb is
	// B×(NumCategorical·EmbDim) holding the gathered embedding rows in
	// feature order, cats[i] are example i's global embedding IDs.
	Forward(dense, emb *tensor.Matrix, cats [][]uint64) []float32
	// Backward consumes dlogits (len B) and returns the gradient w.r.t.
	// the emb input. Dense parameter gradients are accumulated internally.
	Backward(dlogits []float32) *tensor.Matrix
	// Params returns the dense parameters and their gradients.
	Params() []nn.Param
	// DenseParamCount returns the number of scalar dense parameters
	// (the Table 2 column).
	DenseParamCount() int
}

// Config carries the dataset-shape inputs a model needs.
type Config struct {
	NumCategorical int
	NumNumeric     int
	// TotalRows is the total embedding-row count across tables; DeepFM
	// sizes its first-order "linear features" weight vector with it.
	TotalRows int64
	// EmbDim overrides the model's default embedding width if positive.
	EmbDim int
	Seed   uint64
}

func (c Config) embDim(def int) int {
	if c.EmbDim > 0 {
		return c.EmbDim
	}
	return def
}

// New constructs a model by name.
func New(name string, cfg Config) (Model, error) {
	switch name {
	case "dlrm":
		return NewDLRM(cfg), nil
	case "wd", "widedeep", "w&d":
		return NewWideDeep(cfg), nil
	case "dc", "deepcross", "d&c":
		return NewDeepCross(cfg), nil
	case "deepfm":
		return NewDeepFM(cfg), nil
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// Names lists the models in the paper's Table 2 order.
func Names() []string { return []string{"dlrm", "wd", "dc", "deepfm"} }

// lastColumn extracts a column-0 view of a B×1 matrix as a logits slice.
func logitsOf(m *tensor.Matrix) []float32 {
	if m.Cols != 1 {
		panic(fmt.Sprintf("model: head output has %d cols, want 1", m.Cols))
	}
	return m.Data
}

// DLRM is Meta's Deep Learning Recommendation Model (Table 2 row 1):
// bottom MLP 13-512-256-64-48 over numeric features, pairwise dot-product
// interaction over the 26 embeddings plus the bottom output, and top MLP
// 1024-1024-1024-256-128-1 over the concatenated bottom output and
// interactions.
type DLRM struct {
	cfg    Config
	dim    int
	bottom *nn.MLP
	inter  *nn.DotInteraction
	top    *nn.MLP

	featCat nn.Concat2 // emb ++ bottomOut → interaction input
	topCat  nn.Concat2 // bottomOut ++ interOut → top input

	embCols int
	dEmb    *tensor.Matrix
}

// NewDLRM builds DLRM for the given dataset shape.
func NewDLRM(cfg Config) *DLRM {
	rng := tensor.NewRNG(cfg.Seed ^ 0xD1)
	dim := cfg.embDim(48)
	m := &DLRM{cfg: cfg, dim: dim}
	m.bottom = nn.NewMLP([]int{cfg.NumNumeric, 512, 256, 64, dim}, true, rng)
	numFeat := cfg.NumCategorical + 1
	m.inter = nn.NewDotInteraction(numFeat, dim)
	topIn := dim + m.inter.OutDim()
	m.top = nn.NewMLP([]int{topIn, 1024, 1024, 1024, 256, 128, 1}, false, rng)
	m.embCols = cfg.NumCategorical * dim
	return m
}

// Name implements Model.
func (m *DLRM) Name() string { return "dlrm" }

// EmbDim implements Model.
func (m *DLRM) EmbDim() int { return m.dim }

// Forward implements Model.
func (m *DLRM) Forward(dense, emb *tensor.Matrix, _ [][]uint64) []float32 {
	bot := m.bottom.Forward(dense)
	feats := m.featCat.Forward2(emb, bot)
	inter := m.inter.Forward(feats)
	topIn := m.topCat.Forward2(bot, inter)
	return logitsOf(m.top.Forward(topIn))
}

// Backward implements Model.
func (m *DLRM) Backward(dlogits []float32) *tensor.Matrix {
	dTopIn := m.top.Backward(tensor.FromSlice(len(dlogits), 1, dlogits))
	dBot1, dInter := m.topCat.Backward2(dTopIn)
	dFeats := m.inter.Backward(dInter)
	dEmbView, dBot2 := m.featCat.Backward2(dFeats)
	dBot := dBot1.Clone()
	dBot.AddScaled(dBot2, 1)
	m.bottom.Backward(dBot)
	m.dEmb = dEmbView
	return m.dEmb
}

// Params implements Model.
func (m *DLRM) Params() []nn.Param {
	return append(m.bottom.Params(), m.top.Params()...)
}

// DenseParamCount implements Model.
func (m *DLRM) DenseParamCount() int { return m.bottom.NumParams() + m.top.NumParams() }

// WideDeep is Google's Wide&Deep (Table 2 row 2): a deep MLP 13-256-256-256
// over numeric features, with the prediction head a linear layer over the
// concatenation of the deep output and all embedding vectors (this exact
// head reproduces Table 2's 136,673 dense parameters for Criteo: 135,168
// MLP + 256+26·48+1 head).
type WideDeep struct {
	cfg  Config
	dim  int
	deep *nn.MLP
	head *nn.Linear
	cat  nn.Concat2

	dEmb *tensor.Matrix
}

// NewWideDeep builds Wide&Deep for the given dataset shape.
func NewWideDeep(cfg Config) *WideDeep {
	rng := tensor.NewRNG(cfg.Seed ^ 0x3D)
	dim := cfg.embDim(48)
	m := &WideDeep{cfg: cfg, dim: dim}
	m.deep = nn.NewMLP([]int{cfg.NumNumeric, 256, 256, 256}, true, rng)
	m.head = nn.NewLinear(256+cfg.NumCategorical*dim, 1, rng)
	return m
}

// Name implements Model.
func (m *WideDeep) Name() string { return "wd" }

// EmbDim implements Model.
func (m *WideDeep) EmbDim() int { return m.dim }

// Forward implements Model.
func (m *WideDeep) Forward(dense, emb *tensor.Matrix, _ [][]uint64) []float32 {
	deep := m.deep.Forward(dense)
	headIn := m.cat.Forward2(deep, emb)
	return logitsOf(m.head.Forward(headIn))
}

// Backward implements Model.
func (m *WideDeep) Backward(dlogits []float32) *tensor.Matrix {
	dHeadIn := m.head.Backward(tensor.FromSlice(len(dlogits), 1, dlogits))
	dDeep, dEmb := m.cat.Backward2(dHeadIn)
	m.deep.Backward(dDeep)
	m.dEmb = dEmb
	return m.dEmb
}

// Params implements Model.
func (m *WideDeep) Params() []nn.Param {
	return append(m.deep.Params(), m.head.Params()...)
}

// DenseParamCount implements Model.
func (m *WideDeep) DenseParamCount() int { return m.deep.NumParams() + m.head.NumParams() }
