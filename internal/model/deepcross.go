package model

import (
	"bagpipe/internal/nn"
	"bagpipe/internal/tensor"
)

// DeepCross is the Deep&Cross network (Table 2 row 3): the network input
// x0 concatenates numeric features and all embeddings; an explicit cross
// network (NumCross cross layers) and a deep MLP 1024-512-256-64-48 run in
// parallel over x0; the head MLP 512-256-1 consumes their concatenation.
type DeepCross struct {
	cfg   Config
	dim   int
	cross []*nn.CrossLayer
	deep  *nn.MLP
	head  *nn.MLP

	x0Cat   nn.Concat2 // dense ++ emb → x0
	headCat nn.Concat2 // crossOut ++ deepOut → head input

	x0   *tensor.Matrix
	dEmb *tensor.Matrix
}

// NumCrossLayers is the cross-network depth (the DCN paper's Criteo config).
const NumCrossLayers = 6

// NewDeepCross builds Deep&Cross for the given dataset shape.
func NewDeepCross(cfg Config) *DeepCross {
	rng := tensor.NewRNG(cfg.Seed ^ 0xDC)
	dim := cfg.embDim(48)
	m := &DeepCross{cfg: cfg, dim: dim}
	x0Dim := cfg.NumNumeric + cfg.NumCategorical*dim
	for i := 0; i < NumCrossLayers; i++ {
		m.cross = append(m.cross, nn.NewCrossLayer(x0Dim, rng))
	}
	m.deep = nn.NewMLP([]int{x0Dim, 1024, 512, 256, 64, dim}, true, rng)
	m.head = nn.NewMLP([]int{x0Dim + dim, 512, 256, 1}, false, rng)
	return m
}

// Name implements Model.
func (m *DeepCross) Name() string { return "dc" }

// EmbDim implements Model.
func (m *DeepCross) EmbDim() int { return m.dim }

// Forward implements Model.
func (m *DeepCross) Forward(dense, emb *tensor.Matrix, _ [][]uint64) []float32 {
	m.x0 = m.x0Cat.Forward2(dense, emb)
	x := m.x0
	for _, c := range m.cross {
		c.SetX0(m.x0)
		x = c.Forward(x)
	}
	deepOut := m.deep.Forward(m.x0)
	headIn := m.headCat.Forward2(x, deepOut)
	return logitsOf(m.head.Forward(headIn))
}

// Backward implements Model.
func (m *DeepCross) Backward(dlogits []float32) *tensor.Matrix {
	dHeadIn := m.head.Backward(tensor.FromSlice(len(dlogits), 1, dlogits))
	dCross, dDeep := m.headCat.Backward2(dHeadIn)

	// cross-network backprop: walk layers in reverse, accumulating each
	// layer's gradient with respect to the shared x0.
	dx := dCross.Clone()
	dx0 := tensor.NewMatrix(dx.Rows, dx.Cols)
	for i := len(m.cross) - 1; i >= 0; i-- {
		dx = m.cross[i].Backward(dx)
		dx0.AddScaled(m.cross[i].GradX0(), 1)
	}
	// the first cross layer's input IS x0
	dx0.AddScaled(dx, 1)
	dx0.AddScaled(m.deep.Backward(dDeep), 1)

	_, dEmb := m.x0Cat.Backward2(dx0)
	m.dEmb = dEmb
	return m.dEmb
}

// Params implements Model.
func (m *DeepCross) Params() []nn.Param {
	var ps []nn.Param
	for _, c := range m.cross {
		ps = append(ps, c.Params()...)
	}
	ps = append(ps, m.deep.Params()...)
	ps = append(ps, m.head.Params()...)
	return ps
}

// DenseParamCount implements Model.
func (m *DeepCross) DenseParamCount() int {
	n := m.deep.NumParams() + m.head.NumParams()
	for _, c := range m.cross {
		n += c.NumParams()
	}
	return n
}
