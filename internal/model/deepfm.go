package model

import (
	"fmt"

	"bagpipe/internal/nn"
	"bagpipe/internal/tensor"
)

// DeepFM is Huawei's DeepFM (Table 2 row 4). Its logit sums three paths:
//
//	ŷ = w₀ + Σᵢ w[idᵢ]  (first-order "linear features")
//	   + FM₂(embeddings) (second-order factorization-machine term)
//	   + MLP(concat embeddings) (deep path, FC 1248-64-64-64 → 1)
//
// The linear-feature weight vector has one scalar per embedding row
// (33,762,577 parameters for Criteo Kaggle). The paper's Table 2 counts it
// as a *dense* parameter block — the open-source DeepFM implementations
// replicate and all-reduce it like any dense layer — which is exactly why
// DeepFM is the model where TorchRec's dense synchronization saturates the
// network and Bagpipe's caching wins 3.7× (Figure 10). We reproduce that
// accounting: the weights live in a dense nn.Param synchronized by the
// trainer's dense all-reduce, indexed sparsely by global embedding ID.
type DeepFM struct {
	cfg Config
	dim int

	linW     []float32 // TotalRows weights + shared bias at index TotalRows
	linGrad  []float32
	fm       *nn.FMSecondOrder
	deep     *nn.MLP
	deepHead *nn.Linear

	cats    [][]uint64
	dEmbFM  *tensor.Matrix
	dEmb    *tensor.Matrix
	dDeepIn *tensor.Matrix
}

// NewDeepFM builds DeepFM for the given dataset shape. cfg.TotalRows must
// be the dataset's total embedding-row count.
func NewDeepFM(cfg Config) *DeepFM {
	if cfg.TotalRows <= 0 {
		panic(fmt.Sprintf("model: DeepFM needs TotalRows, got %d", cfg.TotalRows))
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0xDF)
	dim := cfg.embDim(48)
	m := &DeepFM{cfg: cfg, dim: dim}
	m.linW = make([]float32, cfg.TotalRows+1)
	tensor.UniformInit(m.linW, 0.01, rng)
	m.linGrad = make([]float32, cfg.TotalRows+1)
	m.fm = nn.NewFMSecondOrder(cfg.NumCategorical, dim)
	embCols := cfg.NumCategorical * dim
	m.deep = nn.NewMLP([]int{embCols, 64, 64, 64}, true, rng)
	m.deepHead = nn.NewLinear(64, 1, rng)
	return m
}

// Name implements Model.
func (m *DeepFM) Name() string { return "deepfm" }

// EmbDim implements Model.
func (m *DeepFM) EmbDim() int { return m.dim }

// Forward implements Model.
func (m *DeepFM) Forward(_, emb *tensor.Matrix, cats [][]uint64) []float32 {
	if len(cats) != emb.Rows {
		panic("model: DeepFM needs per-example categorical IDs")
	}
	m.cats = cats
	fmOut := m.fm.Forward(emb)
	deepOut := m.deepHead.Forward(m.deep.Forward(emb))
	logits := make([]float32, emb.Rows)
	bias := m.linW[len(m.linW)-1]
	for i := range logits {
		first := bias
		for _, id := range cats[i] {
			first += m.linW[id]
		}
		logits[i] = first + fmOut.Data[i] + deepOut.Data[i]
	}
	return logits
}

// Backward implements Model.
func (m *DeepFM) Backward(dlogits []float32) *tensor.Matrix {
	dl := tensor.FromSlice(len(dlogits), 1, dlogits)
	dEmbFM := m.fm.Backward(dl)
	dEmbDeep := m.deep.Backward(m.deepHead.Backward(dl))
	if m.dEmb == nil || m.dEmb.Rows != dEmbFM.Rows || m.dEmb.Cols != dEmbFM.Cols {
		m.dEmb = tensor.NewMatrix(dEmbFM.Rows, dEmbFM.Cols)
	}
	copy(m.dEmb.Data, dEmbFM.Data)
	m.dEmb.AddScaled(dEmbDeep, 1)

	biasIdx := len(m.linGrad) - 1
	for i, g := range dlogits {
		m.linGrad[biasIdx] += g
		for _, id := range m.cats[i] {
			m.linGrad[id] += g
		}
	}
	return m.dEmb
}

// Params implements Model. The linear-feature block is first, so dense
// synchronization accounts for its full 33.76M-scalar size.
func (m *DeepFM) Params() []nn.Param {
	ps := []nn.Param{{Name: "deepfm.linear_features", Value: m.linW, Grad: m.linGrad}}
	ps = append(ps, m.deep.Params()...)
	ps = append(ps, m.deepHead.Params()...)
	return ps
}

// DenseParamCount implements Model.
func (m *DeepFM) DenseParamCount() int {
	return len(m.linW) + m.deep.NumParams() + m.deepHead.NumParams()
}

// PaperDenseParamCount returns the Table 2 count for the full-size Criteo
// Kaggle configuration, for cross-checking against the paper.
func PaperDenseParamCount(name string) int {
	switch name {
	case "dlrm":
		return 2962289
	case "wd":
		return 136673
	case "dc":
		return 2718609
	case "deepfm":
		return 33851283
	}
	return 0
}
