package model

import (
	"math"
	"testing"

	"bagpipe/internal/nn"
	"bagpipe/internal/tensor"
)

func tinyCfg() Config {
	return Config{NumCategorical: 3, NumNumeric: 2, TotalRows: 60, EmbDim: 4, Seed: 7}
}

// tinyBatch builds deterministic inputs for a model under tinyCfg.
func tinyBatch(b int, dim int) (dense, emb *tensor.Matrix, cats [][]uint64, labels []float32) {
	rng := tensor.NewRNG(99)
	dense = tensor.NewMatrix(b, 2)
	emb = tensor.NewMatrix(b, 3*dim)
	cats = make([][]uint64, b)
	labels = make([]float32, b)
	for i := range dense.Data {
		dense.Data[i] = rng.Float32()*2 - 1
	}
	for i := range emb.Data {
		emb.Data[i] = rng.Float32() - 0.5
	}
	for i := range cats {
		cats[i] = []uint64{uint64(rng.Intn(20)), 20 + uint64(rng.Intn(20)), 40 + uint64(rng.Intn(20))}
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
	}
	return
}

func lossFor(m Model, dense, emb *tensor.Matrix, cats [][]uint64, labels []float32) float32 {
	logits := m.Forward(dense, emb, cats)
	d := make([]float32, len(logits))
	return nn.BCEWithLogits(logits, labels, d)
}

// checkModelGradients validates dEmb and a sample of dense-parameter
// gradients against central finite differences.
func checkModelGradients(t *testing.T, m Model) {
	t.Helper()
	const b = 3
	dense, emb, cats, labels := tinyBatch(b, m.EmbDim())
	logits := m.Forward(dense, emb, cats)
	dlogits := make([]float32, b)
	nn.BCEWithLogits(logits, labels, dlogits)
	nn.ZeroGrads(m.Params())
	dEmb := m.Backward(dlogits)

	const h = 1e-2
	// embedding-input gradient, every coordinate
	for i := range emb.Data {
		orig := emb.Data[i]
		emb.Data[i] = orig + h
		lp := lossFor(m, dense, emb, cats, labels)
		emb.Data[i] = orig - h
		lm := lossFor(m, dense, emb, cats, labels)
		emb.Data[i] = orig
		num := (lp - lm) / (2 * h)
		got := dEmb.Data[i]
		if math.Abs(float64(num-got)) > 3e-3*math.Max(1, math.Abs(float64(num))) {
			t.Fatalf("%s dEmb[%d]: analytic %v numeric %v", m.Name(), i, got, num)
		}
	}
	// dense parameters: directional-derivative check along the analytic
	// gradient. Per-coordinate finite differences are unreliable here
	// because an h-sized bias nudge can flip ReLU activations; the
	// directional test aggregates over every parameter so isolated kink
	// crossings wash out.
	params := m.Params()
	var gradSq float64
	for _, p := range params {
		for _, g := range p.Grad {
			gradSq += float64(g) * float64(g)
		}
	}
	if gradSq == 0 {
		t.Fatalf("%s: all dense gradients are zero", m.Name())
	}
	eps := 1e-3 / math.Sqrt(gradSq)
	saved := make([][]float32, len(params))
	grads := make([][]float32, len(params))
	for i, p := range params {
		saved[i] = append([]float32(nil), p.Value...)
		grads[i] = append([]float32(nil), p.Grad...)
	}
	perturb := func(sign float64) {
		for i, p := range params {
			for j := range p.Value {
				p.Value[j] = saved[i][j] + float32(sign*eps*float64(grads[i][j]))
			}
		}
	}
	perturb(+1)
	lp := lossFor(m, dense, emb, cats, labels)
	perturb(-1)
	lm := lossFor(m, dense, emb, cats, labels)
	perturb(0)
	num := float64(lp-lm) / (2 * eps)
	if rel := math.Abs(num-gradSq) / gradSq; rel > 0.05 {
		t.Fatalf("%s directional derivative %v vs ||g||² %v (rel err %.3f)",
			m.Name(), num, gradSq, rel)
	}
}

func TestDLRMGradients(t *testing.T)     { checkModelGradients(t, NewDLRM(tinyCfg())) }
func TestWideDeepGradients(t *testing.T) { checkModelGradients(t, NewWideDeep(tinyCfg())) }
func TestDeepCrossGradients(t *testing.T) {
	checkModelGradients(t, NewDeepCross(tinyCfg()))
}
func TestDeepFMGradients(t *testing.T) { checkModelGradients(t, NewDeepFM(tinyCfg())) }

// Table 2 dense-parameter counts at the Criteo Kaggle shape. The W&D count
// matches the paper exactly; DLRM is within 0.04% (the paper's interaction
// feature count differs by one; see EXPERIMENTS.md), DC within 2.5%
// (Table 2 under-specifies the head wiring), DeepFM within 0.01%.
func TestDenseParamCountsMatchTable2(t *testing.T) {
	criteo := Config{NumCategorical: 26, NumNumeric: 13, TotalRows: 33_762_576, Seed: 1}
	tol := map[string]float64{"dlrm": 0.001, "wd": 0, "dc": 0.03, "deepfm": 0.001}
	for _, name := range Names() {
		m, err := New(name, criteo)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.DenseParamCount())
		want := float64(PaperDenseParamCount(name))
		rel := math.Abs(got-want) / want
		if rel > tol[name] {
			t.Fatalf("%s: %v params, Table 2 says %v (rel err %.4f > %.4f)",
				name, got, want, rel, tol[name])
		}
	}
}

func TestWideDeepCountExact(t *testing.T) {
	m := NewWideDeep(Config{NumCategorical: 26, NumNumeric: 13, Seed: 1})
	if got := m.DenseParamCount(); got != 136673 {
		t.Fatalf("W&D params %d want 136673 (Table 2 exact)", got)
	}
}

func TestParamsCoverCount(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name, tinyCfg())
		if err != nil {
			t.Fatal(err)
		}
		if got := nn.ParamCount(m.Params()); got != m.DenseParamCount() {
			t.Fatalf("%s: Params() holds %d scalars, DenseParamCount says %d", name, got, m.DenseParamCount())
		}
	}
}

func TestForwardDeterministicAndFinite(t *testing.T) {
	for _, name := range Names() {
		m1, _ := New(name, tinyCfg())
		m2, _ := New(name, tinyCfg())
		dense, emb, cats, _ := tinyBatch(4, m1.EmbDim())
		l1 := m1.Forward(dense, emb, cats)
		l2 := m2.Forward(dense, emb, cats)
		if len(l1) != 4 {
			t.Fatalf("%s: %d logits", name, len(l1))
		}
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("%s: same seed, different logits", name)
			}
			if math.IsNaN(float64(l1[i])) || math.IsInf(float64(l1[i]), 0) {
				t.Fatalf("%s: non-finite logit", name)
			}
		}
	}
}

func TestModelsLearnOnFixedBatch(t *testing.T) {
	// 30 SGD steps on one batch must reduce the loss for every model.
	for _, name := range Names() {
		m, _ := New(name, tinyCfg())
		dense, emb, cats, labels := tinyBatch(8, m.EmbDim())
		first := float32(0)
		var last float32
		lr := float32(0.05)
		for step := 0; step < 30; step++ {
			logits := m.Forward(dense, emb, cats)
			dlogits := make([]float32, len(logits))
			loss := nn.BCEWithLogits(logits, labels, dlogits)
			if step == 0 {
				first = loss
			}
			last = loss
			dEmb := m.Backward(dlogits)
			for _, p := range m.Params() {
				for i, g := range p.Grad {
					p.Value[i] -= lr * g
					p.Grad[i] = 0
				}
			}
			emb.AddScaled(dEmb, -lr) // embeddings learn too
		}
		if last >= first {
			t.Fatalf("%s did not learn: first %v last %v", name, first, last)
		}
	}
}

func TestDeepFMRequiresTotalRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDeepFM(Config{NumCategorical: 3, NumNumeric: 1})
}

func TestDeepFMFirstOrderPath(t *testing.T) {
	cfg := tinyCfg()
	m := NewDeepFM(cfg)
	dense, emb, cats, _ := tinyBatch(2, m.EmbDim())
	base := m.Forward(dense, emb, cats)
	// bump a first-order weight used by example 0 only
	id := cats[0][0]
	m.linW[id] += 1
	bumped := m.Forward(dense, emb, cats)
	if math.Abs(float64(bumped[0]-base[0]-1)) > 1e-5 {
		t.Fatalf("first-order weight must add linearly: %v -> %v", base[0], bumped[0])
	}
	used := false
	for _, c := range cats[1] {
		if c == id {
			used = true
		}
	}
	if !used && bumped[1] != base[1] {
		t.Fatal("unused weight changed another example's logit")
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New("bert", tinyCfg()); err == nil {
		t.Fatal("expected error")
	}
}

func TestModelAliases(t *testing.T) {
	for _, alias := range []string{"w&d", "widedeep", "d&c", "deepcross"} {
		if _, err := New(alias, tinyCfg()); err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestEmbDimOverride(t *testing.T) {
	cfg := tinyCfg()
	cfg.EmbDim = 16
	m := NewDLRM(cfg)
	if m.EmbDim() != 16 {
		t.Fatalf("EmbDim=%d", m.EmbDim())
	}
	cfg.EmbDim = 0
	if NewDLRM(cfg).EmbDim() != 48 {
		t.Fatal("default dim should be 48")
	}
}
