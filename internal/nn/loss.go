package nn

import "math"

// BCEWithLogits computes the mean binary cross-entropy between logits and
// 0/1 labels, and the gradient of that mean loss with respect to the
// logits, writing it into dlogits (which must have len(logits)).
//
// The loss uses the numerically stable formulation
// max(z,0) − z·y + log(1+exp(−|z|)).
func BCEWithLogits(logits, labels, dlogits []float32) float32 {
	if len(logits) != len(labels) || len(dlogits) != len(logits) {
		panic("nn: BCEWithLogits length mismatch")
	}
	n := float64(len(logits))
	var total float64
	inv := float32(1.0 / n)
	for i, z := range logits {
		y := labels[i]
		zf := float64(z)
		total += math.Max(zf, 0) - zf*float64(y) + math.Log1p(math.Exp(-math.Abs(zf)))
		dlogits[i] = (SigmoidScalar(z) - y) * inv
	}
	return float32(total / n)
}

// LogLoss computes the mean binary cross-entropy given probabilities
// already passed through a sigmoid. Probabilities are clamped away from
// 0 and 1 for stability. Used for evaluation, not training.
func LogLoss(probs, labels []float32) float32 {
	if len(probs) != len(labels) {
		panic("nn: LogLoss length mismatch")
	}
	const eps = 1e-7
	var total float64
	for i, p := range probs {
		pf := math.Min(math.Max(float64(p), eps), 1-eps)
		if labels[i] > 0.5 {
			total += -math.Log(pf)
		} else {
			total += -math.Log(1 - pf)
		}
	}
	return float32(total / float64(len(probs)))
}

// Accuracy returns the fraction of logits whose sign matches the label
// (logit > 0 predicts class 1).
func Accuracy(logits, labels []float32) float32 {
	if len(logits) != len(labels) {
		panic("nn: Accuracy length mismatch")
	}
	correct := 0
	for i, z := range logits {
		pred := float32(0)
		if z > 0 {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float32(correct) / float32(len(logits))
}
