package nn

import (
	"fmt"

	"bagpipe/internal/tensor"
)

// DotInteraction computes the DLRM pairwise dot-product interaction. The
// input holds NumFeat feature vectors of width Dim per example, laid out
// contiguously (row = example, cols = NumFeat*Dim). The output holds the
// NumFeat*(NumFeat-1)/2 pairwise dot products per example.
type DotInteraction struct {
	NumFeat, Dim int

	x   *tensor.Matrix
	out *tensor.Matrix
	dx  *tensor.Matrix
}

// NewDotInteraction returns the interaction over numFeat vectors of width dim.
func NewDotInteraction(numFeat, dim int) *DotInteraction {
	return &DotInteraction{NumFeat: numFeat, Dim: dim}
}

// OutDim returns the interaction output width per example.
func (d *DotInteraction) OutDim() int { return d.NumFeat * (d.NumFeat - 1) / 2 }

// Forward implements Layer.
func (d *DotInteraction) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.NumFeat*d.Dim {
		panic(fmt.Sprintf("nn: DotInteraction expected %d cols, got %d", d.NumFeat*d.Dim, x.Cols))
	}
	d.x = x
	d.out = ensureShape(d.out, x.Rows, d.OutDim())
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		orow := d.out.Row(r)
		idx := 0
		for i := 0; i < d.NumFeat; i++ {
			vi := row[i*d.Dim : (i+1)*d.Dim]
			for j := i + 1; j < d.NumFeat; j++ {
				vj := row[j*d.Dim : (j+1)*d.Dim]
				orow[idx] = tensor.Dot(vi, vj)
				idx++
			}
		}
	}
	return d.out
}

// Backward implements Layer.
func (d *DotInteraction) Backward(dout *tensor.Matrix) *tensor.Matrix {
	d.dx = ensureShape(d.dx, d.x.Rows, d.x.Cols)
	d.dx.Zero()
	for r := 0; r < d.x.Rows; r++ {
		row := d.x.Row(r)
		grow := d.dx.Row(r)
		dorow := dout.Row(r)
		idx := 0
		for i := 0; i < d.NumFeat; i++ {
			vi := row[i*d.Dim : (i+1)*d.Dim]
			gi := grow[i*d.Dim : (i+1)*d.Dim]
			for j := i + 1; j < d.NumFeat; j++ {
				vj := row[j*d.Dim : (j+1)*d.Dim]
				gj := grow[j*d.Dim : (j+1)*d.Dim]
				g := dorow[idx]
				idx++
				tensor.Axpy(g, vj, gi)
				tensor.Axpy(g, vi, gj)
			}
		}
	}
	return d.dx
}

// Params implements Layer.
func (d *DotInteraction) Params() []Param { return nil }

// FMSecondOrder computes the factorization-machine second-order term used
// by DeepFM over NumFeat embedding vectors of width Dim per example:
//
//	y = ½ Σ_k [ (Σ_i v_ik)² − Σ_i v_ik² ]
//
// The output is a single scalar column per example.
type FMSecondOrder struct {
	NumFeat, Dim int

	x    *tensor.Matrix
	sums *tensor.Matrix // per-example Σ_i v_i (B×Dim)
	out  *tensor.Matrix
	dx   *tensor.Matrix
}

// NewFMSecondOrder returns the FM term over numFeat vectors of width dim.
func NewFMSecondOrder(numFeat, dim int) *FMSecondOrder {
	return &FMSecondOrder{NumFeat: numFeat, Dim: dim}
}

// Forward implements Layer.
func (f *FMSecondOrder) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != f.NumFeat*f.Dim {
		panic(fmt.Sprintf("nn: FMSecondOrder expected %d cols, got %d", f.NumFeat*f.Dim, x.Cols))
	}
	f.x = x
	f.sums = ensureShape(f.sums, x.Rows, f.Dim)
	f.out = ensureShape(f.out, x.Rows, 1)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		srow := f.sums.Row(r)
		for k := range srow {
			srow[k] = 0
		}
		var sqSum float32
		for i := 0; i < f.NumFeat; i++ {
			vi := row[i*f.Dim : (i+1)*f.Dim]
			for k, v := range vi {
				srow[k] += v
				sqSum += v * v
			}
		}
		var total float32
		for _, s := range srow {
			total += s * s
		}
		f.out.Data[r] = 0.5 * (total - sqSum)
	}
	return f.out
}

// Backward implements Layer.
func (f *FMSecondOrder) Backward(dout *tensor.Matrix) *tensor.Matrix {
	// ∂y/∂v_ik = Σ_j v_jk − v_ik
	f.dx = ensureShape(f.dx, f.x.Rows, f.x.Cols)
	for r := 0; r < f.x.Rows; r++ {
		row := f.x.Row(r)
		srow := f.sums.Row(r)
		grow := f.dx.Row(r)
		g := dout.Data[r]
		for i := 0; i < f.NumFeat; i++ {
			for k := 0; k < f.Dim; k++ {
				grow[i*f.Dim+k] = g * (srow[k] - row[i*f.Dim+k])
			}
		}
	}
	return f.dx
}

// Params implements Layer.
func (f *FMSecondOrder) Params() []Param { return nil }

// CrossLayer implements one explicit feature-crossing layer from Deep&Cross:
//
//	x_out = x0 ⊙ (x·w) + b + x
//
// where x0 is the network input (set per step via SetX0), x·w is a scalar
// per example, and b is a bias vector.
type CrossLayer struct {
	Dim   int
	W     []float32
	B     []float32
	GradW []float32
	GradB []float32

	x0  *tensor.Matrix
	x   *tensor.Matrix
	xw  []float32 // cached per-example x·w
	out *tensor.Matrix
	dx  *tensor.Matrix
	dx0 *tensor.Matrix
}

// NewCrossLayer returns a cross layer over width-dim inputs.
func NewCrossLayer(dim int, rng *tensor.RNG) *CrossLayer {
	c := &CrossLayer{
		Dim:   dim,
		W:     make([]float32, dim),
		B:     make([]float32, dim),
		GradW: make([]float32, dim),
		GradB: make([]float32, dim),
	}
	tensor.UniformInit(c.W, float32(1.0/float64(dim)), rng)
	return c
}

// SetX0 installs the cross-network input used by every cross layer in the
// stack. Must be called before Forward each step.
func (c *CrossLayer) SetX0(x0 *tensor.Matrix) { c.x0 = x0 }

// Forward implements Layer.
func (c *CrossLayer) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != c.Dim {
		panic(fmt.Sprintf("nn: CrossLayer expected %d cols, got %d", c.Dim, x.Cols))
	}
	if c.x0 == nil || c.x0.Rows != x.Rows {
		panic("nn: CrossLayer.SetX0 not called for this batch")
	}
	c.x = x
	if cap(c.xw) < x.Rows {
		c.xw = make([]float32, x.Rows)
	}
	c.xw = c.xw[:x.Rows]
	c.out = ensureShape(c.out, x.Rows, c.Dim)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		s := tensor.Dot(row, c.W)
		c.xw[r] = s
		x0row := c.x0.Row(r)
		orow := c.out.Row(r)
		for k := 0; k < c.Dim; k++ {
			orow[k] = x0row[k]*s + c.B[k] + row[k]
		}
	}
	return c.out
}

// Backward implements Layer. The returned matrix is the gradient w.r.t. x;
// the gradient w.r.t. x0 is accumulated and available via GradX0.
func (c *CrossLayer) Backward(dout *tensor.Matrix) *tensor.Matrix {
	c.dx = ensureShape(c.dx, dout.Rows, c.Dim)
	c.dx0 = ensureShape(c.dx0, dout.Rows, c.Dim)
	for r := 0; r < dout.Rows; r++ {
		dorow := dout.Row(r)
		x0row := c.x0.Row(r)
		xrow := c.x.Row(r)
		dxrow := c.dx.Row(r)
		dx0row := c.dx0.Row(r)
		// dL/ds = Σ_k dout_k * x0_k ; s = x·w
		var ds float32
		for k := 0; k < c.Dim; k++ {
			ds += dorow[k] * x0row[k]
		}
		for k := 0; k < c.Dim; k++ {
			c.GradB[k] += dorow[k]
			c.GradW[k] += ds * xrow[k]
			dxrow[k] = ds*c.W[k] + dorow[k]
			dx0row[k] = dorow[k] * c.xw[r]
		}
	}
	return c.dx
}

// GradX0 returns the gradient of the loss w.r.t. the x0 input computed by
// the last Backward call.
func (c *CrossLayer) GradX0() *tensor.Matrix { return c.dx0 }

// Params implements Layer.
func (c *CrossLayer) Params() []Param {
	return []Param{
		{Name: fmt.Sprintf("cross%d.w", c.Dim), Value: c.W, Grad: c.GradW},
		{Name: fmt.Sprintf("cross%d.b", c.Dim), Value: c.B, Grad: c.GradB},
	}
}

// NumParams returns the number of scalar parameters in the layer.
func (c *CrossLayer) NumParams() int { return 2 * c.Dim }

// Concat2 concatenates two matrices column-wise in the forward pass and
// splits the gradient in the backward pass.
type Concat2 struct {
	aCols, bCols int
	out          *tensor.Matrix
	da, db       *tensor.Matrix
}

// Forward2 concatenates a and b (same row counts) column-wise.
func (c *Concat2) Forward2(a, b *tensor.Matrix) *tensor.Matrix {
	if a.Rows != b.Rows {
		panic("nn: Concat2 row mismatch")
	}
	c.aCols, c.bCols = a.Cols, b.Cols
	c.out = ensureShape(c.out, a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		orow := c.out.Row(r)
		copy(orow[:a.Cols], a.Row(r))
		copy(orow[a.Cols:], b.Row(r))
	}
	return c.out
}

// Backward2 splits dout into the gradients for the two inputs.
func (c *Concat2) Backward2(dout *tensor.Matrix) (da, db *tensor.Matrix) {
	c.da = ensureShape(c.da, dout.Rows, c.aCols)
	c.db = ensureShape(c.db, dout.Rows, c.bCols)
	for r := 0; r < dout.Rows; r++ {
		drow := dout.Row(r)
		copy(c.da.Row(r), drow[:c.aCols])
		copy(c.db.Row(r), drow[c.aCols:])
	}
	return c.da, c.db
}
