package nn

import (
	"math"
	"testing"

	"bagpipe/internal/tensor"
)

// lossOf runs forward through layer and returns a scalar loss: the weighted
// sum of outputs with fixed coefficients, which makes the analytic output
// gradient trivially the coefficients themselves.
func lossOf(l Layer, x *tensor.Matrix, coef []float32) float32 {
	out := l.Forward(x)
	var s float32
	for i, v := range out.Data {
		s += coef[i] * v
	}
	return s
}

// gradCheckInput verifies Backward's input gradient against central finite
// differences.
func gradCheckInput(t *testing.T, l Layer, x *tensor.Matrix, outLen int) {
	t.Helper()
	rng := tensor.NewRNG(17)
	coef := make([]float32, outLen)
	for i := range coef {
		coef[i] = rng.Float32()*2 - 1
	}
	out := l.Forward(x)
	if len(out.Data) != outLen {
		t.Fatalf("output has %d elements, want %d", len(out.Data), outLen)
	}
	dout := tensor.FromSlice(out.Rows, out.Cols, append([]float32(nil), coef...))
	ZeroGrads(l.Params())
	dx := l.Backward(dout)

	const h = 1e-2
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := lossOf(l, x, coef)
		x.Data[i] = orig - h
		lm := lossOf(l, x, coef)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		got := dx.Data[i]
		if math.Abs(float64(num-got)) > 2e-2*math.Max(1, math.Abs(float64(num))) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, got, num)
		}
	}
}

// gradCheckParams verifies accumulated parameter gradients against central
// finite differences.
func gradCheckParams(t *testing.T, l Layer, x *tensor.Matrix, outLen int) {
	t.Helper()
	rng := tensor.NewRNG(29)
	coef := make([]float32, outLen)
	for i := range coef {
		coef[i] = rng.Float32()*2 - 1
	}
	out := l.Forward(x)
	dout := tensor.FromSlice(out.Rows, out.Cols, append([]float32(nil), coef...))
	ZeroGrads(l.Params())
	l.Backward(dout)

	const h = 1e-2
	for _, p := range l.Params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + h
			lp := lossOf(l, x, coef)
			p.Value[i] = orig - h
			lm := lossOf(l, x, coef)
			p.Value[i] = orig
			num := (lp - lm) / (2 * h)
			got := p.Grad[i]
			if math.Abs(float64(num-got)) > 2e-2*math.Max(1, math.Abs(float64(num))) {
				t.Fatalf("param %s grad[%d]: analytic %v vs numeric %v", p.Name, i, got, num)
			}
		}
	}
}

func randInput(rows, cols int, seed uint64) *tensor.Matrix {
	rng := tensor.NewRNG(seed)
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func TestLinearForwardKnown(t *testing.T) {
	l := NewLinear(2, 2, tensor.NewRNG(1))
	copy(l.W.Data, []float32{1, 2, 3, 4})
	copy(l.B, []float32{10, 20})
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	out := l.Forward(x)
	if out.Data[0] != 14 || out.Data[1] != 26 {
		t.Fatalf("got %v want [14 26]", out.Data)
	}
}

func TestLinearGradients(t *testing.T) {
	l := NewLinear(4, 3, tensor.NewRNG(2))
	x := randInput(5, 4, 3)
	gradCheckInput(t, l, x, 5*3)
	gradCheckParams(t, l, x, 5*3)
}

func TestReLUGradients(t *testing.T) {
	r := &ReLU{}
	// keep inputs away from the kink at 0
	x := randInput(4, 6, 5)
	for i := range x.Data {
		if x.Data[i] > -0.05 && x.Data[i] < 0.05 {
			x.Data[i] = 0.3
		}
	}
	gradCheckInput(t, r, x, 24)
}

func TestSigmoidGradients(t *testing.T) {
	s := &Sigmoid{}
	x := randInput(3, 5, 7)
	gradCheckInput(t, s, x, 15)
}

func TestMLPGradients(t *testing.T) {
	m := NewMLP([]int{6, 8, 4}, false, tensor.NewRNG(11))
	x := randInput(3, 6, 13)
	gradCheckInput(t, m, x, 12)
	gradCheckParams(t, m, x, 12)
}

func TestMLPNumParams(t *testing.T) {
	m := NewMLP([]int{13, 512, 256, 64, 48}, true, tensor.NewRNG(1))
	want := 13*512 + 512 + 512*256 + 256 + 256*64 + 64 + 64*48 + 48
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams=%d want %d", got, want)
	}
	if got := ParamCount(m.Params()); got != want {
		t.Fatalf("ParamCount=%d want %d", got, want)
	}
}

func TestMLPReluOnOutput(t *testing.T) {
	m := NewMLP([]int{2, 2}, true, tensor.NewRNG(1))
	x := tensor.FromSlice(1, 2, []float32{-100, -100})
	out := m.Forward(x)
	for _, v := range out.Data {
		if v < 0 {
			t.Fatalf("ReLU on output should clamp negatives, got %v", v)
		}
	}
}

func TestDotInteractionKnown(t *testing.T) {
	// two features of dim 2: vectors (1,2) and (3,4) -> dot = 11
	d := NewDotInteraction(2, 2)
	x := tensor.FromSlice(1, 4, []float32{1, 2, 3, 4})
	out := d.Forward(x)
	if out.Cols != 1 || out.Data[0] != 11 {
		t.Fatalf("got %v want [11]", out.Data)
	}
}

func TestDotInteractionOutDim(t *testing.T) {
	d := NewDotInteraction(27, 48)
	if d.OutDim() != 27*26/2 {
		t.Fatalf("OutDim=%d want %d", d.OutDim(), 27*26/2)
	}
}

func TestDotInteractionGradients(t *testing.T) {
	d := NewDotInteraction(4, 3)
	x := randInput(3, 12, 19)
	gradCheckInput(t, d, x, 3*d.OutDim())
}

func TestFMSecondOrderKnown(t *testing.T) {
	// vectors (1,0) and (2,0): ½[(3²−(1+4))] = ½(9−5)=2
	f := NewFMSecondOrder(2, 2)
	x := tensor.FromSlice(1, 4, []float32{1, 0, 2, 0})
	out := f.Forward(x)
	if out.Data[0] != 2 {
		t.Fatalf("got %v want 2", out.Data[0])
	}
}

func TestFMSecondOrderGradients(t *testing.T) {
	f := NewFMSecondOrder(5, 4)
	x := randInput(3, 20, 23)
	gradCheckInput(t, f, x, 3)
}

func TestCrossLayerKnown(t *testing.T) {
	c := NewCrossLayer(2, tensor.NewRNG(1))
	copy(c.W, []float32{1, 1})
	copy(c.B, []float32{0, 0})
	x0 := tensor.FromSlice(1, 2, []float32{1, 2})
	c.SetX0(x0)
	// x = x0: out = x0*(x·w) + b + x = (1,2)*3 + (1,2) = (4,8)
	out := c.Forward(x0)
	if out.Data[0] != 4 || out.Data[1] != 8 {
		t.Fatalf("got %v want [4 8]", out.Data)
	}
}

// crossAsLayer adapts CrossLayer for gradcheck by treating x0 == x (the
// first cross layer in a stack has exactly this form) and summing both
// gradient paths.
type crossAsLayer struct{ c *CrossLayer }

func (w *crossAsLayer) Forward(x *tensor.Matrix) *tensor.Matrix {
	w.c.SetX0(x)
	return w.c.Forward(x)
}
func (w *crossAsLayer) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := w.c.Backward(dout).Clone()
	dx.AddScaled(w.c.GradX0(), 1)
	return dx
}
func (w *crossAsLayer) Params() []Param { return w.c.Params() }

func TestCrossLayerGradients(t *testing.T) {
	c := &crossAsLayer{c: NewCrossLayer(5, tensor.NewRNG(31))}
	x := randInput(4, 5, 37)
	gradCheckInput(t, c, x, 20)
	gradCheckParams(t, c, x, 20)
}

func TestConcat2RoundTrip(t *testing.T) {
	a := tensor.FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := tensor.FromSlice(2, 3, []float32{5, 6, 7, 8, 9, 10})
	var c Concat2
	out := c.Forward2(a, b)
	if out.Cols != 5 || out.At(1, 2) != 8 || out.At(0, 1) != 2 {
		t.Fatalf("concat wrong: %+v", out.Data)
	}
	da, db := c.Backward2(out)
	if !da.Equal(a) || !db.Equal(b) {
		t.Fatal("backward split must recover the concatenated parts")
	}
}

func TestBCEWithLogitsKnown(t *testing.T) {
	logits := []float32{0, 0}
	labels := []float32{1, 0}
	d := make([]float32, 2)
	loss := BCEWithLogits(logits, labels, d)
	want := float32(math.Log(2))
	if math.Abs(float64(loss-want)) > 1e-6 {
		t.Fatalf("loss=%v want %v", loss, want)
	}
	// grad = (σ(0)−y)/2 = (0.5−1)/2, (0.5−0)/2
	if math.Abs(float64(d[0]+0.25)) > 1e-6 || math.Abs(float64(d[1]-0.25)) > 1e-6 {
		t.Fatalf("grads=%v", d)
	}
}

func TestBCEWithLogitsGradNumeric(t *testing.T) {
	rng := tensor.NewRNG(41)
	logits := make([]float32, 8)
	labels := make([]float32, 8)
	for i := range logits {
		logits[i] = rng.Float32()*4 - 2
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
	}
	d := make([]float32, 8)
	BCEWithLogits(logits, labels, d)
	const h = 1e-2
	tmp := make([]float32, 8)
	for i := range logits {
		orig := logits[i]
		logits[i] = orig + h
		lp := BCEWithLogits(logits, labels, tmp)
		logits[i] = orig - h
		lm := BCEWithLogits(logits, labels, tmp)
		logits[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(float64(num-d[i])) > 1e-3 {
			t.Fatalf("BCE grad[%d]: analytic %v numeric %v", i, d[i], num)
		}
	}
}

func TestBCEStableAtExtremes(t *testing.T) {
	d := make([]float32, 2)
	loss := BCEWithLogits([]float32{50, -50}, []float32{1, 0}, d)
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct predictions should have ~0 loss, got %v", loss)
	}
}

func TestLogLossAndAccuracy(t *testing.T) {
	probs := []float32{0.9, 0.1}
	labels := []float32{1, 0}
	ll := LogLoss(probs, labels)
	want := float32(-math.Log(0.9))
	if math.Abs(float64(ll-want)) > 1e-5 {
		t.Fatalf("LogLoss=%v want %v", ll, want)
	}
	if acc := Accuracy([]float32{2, -2, 1}, []float32{1, 0, 0}); math.Abs(float64(acc)-2.0/3) > 1e-6 {
		t.Fatalf("Accuracy=%v", acc)
	}
	if LogLoss([]float32{0, 1}, []float32{0, 1}) <= 0 {
		t.Fatal("clamped logloss should be positive and finite")
	}
}

func TestZeroGrads(t *testing.T) {
	l := NewLinear(2, 2, tensor.NewRNG(1))
	x := randInput(2, 2, 1)
	out := l.Forward(x)
	l.Backward(out)
	ZeroGrads(l.Params())
	for _, p := range l.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("grad not zeroed")
			}
		}
	}
}
