// Package nn implements the neural-network layers used by the
// recommendation models in this repository: fully connected layers,
// activations, multi-layer perceptrons, the DLRM pairwise dot-product
// interaction, a factorization-machine second-order term (DeepFM), and the
// explicit cross layer (Deep&Cross), with hand-written backpropagation.
//
// All layers operate on batch-major matrices (rows are examples) and cache
// whatever they need from the forward pass, so the calling convention is
// strictly Forward-then-Backward per step, which matches the synchronous
// training loop Bagpipe preserves.
package nn

import (
	"fmt"
	"math"

	"bagpipe/internal/tensor"
)

// Param is a named dense parameter tensor and its gradient accumulator.
type Param struct {
	Name  string
	Value []float32
	Grad  []float32
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output for input x (batch-major). The
	// returned matrix is owned by the layer and valid until the next call.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes the gradient of the loss w.r.t. the layer output
	// and returns the gradient w.r.t. the layer input, accumulating
	// parameter gradients along the way.
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable parameters (may be empty).
	Params() []Param
}

// Linear is a fully connected layer: out = x·W + b with W of shape in×out.
type Linear struct {
	In, Out int
	W       *tensor.Matrix // In×Out
	B       []float32
	GradW   *tensor.Matrix
	GradB   []float32

	x   *tensor.Matrix // cached input
	out *tensor.Matrix
	dx  *tensor.Matrix
}

// NewLinear returns a Linear layer with Xavier-initialized weights drawn
// from rng.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:    in,
		Out:   out,
		W:     tensor.NewMatrix(in, out),
		B:     make([]float32, out),
		GradW: tensor.NewMatrix(in, out),
		GradB: make([]float32, out),
	}
	tensor.XavierInit(l.W, in, out, rng)
	return l
}

func ensureShape(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if m == nil || m.Rows != rows || m.Cols != cols {
		return tensor.NewMatrix(rows, cols)
	}
	return m
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear(%d,%d) got input with %d cols", l.In, l.Out, x.Cols))
	}
	l.x = x
	l.out = ensureShape(l.out, x.Rows, l.Out)
	tensor.MatMul(l.out, x, l.W)
	tensor.AddRowVector(l.out, l.B)
	return l.out
}

// Backward implements Layer.
func (l *Linear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	// dW += xᵀ·dout ; db += colsums(dout) ; dx = dout·Wᵀ
	gw := tensor.NewMatrix(l.In, l.Out)
	tensor.MatMulAT(gw, l.x, dout)
	l.GradW.AddScaled(gw, 1)
	sums := make([]float32, l.Out)
	tensor.ColSums(sums, dout)
	tensor.Axpy(1, sums, l.GradB)

	l.dx = ensureShape(l.dx, dout.Rows, l.In)
	tensor.MatMulBT(l.dx, dout, l.W)
	return l.dx
}

// Params implements Layer.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: fmt.Sprintf("linear%dx%d.W", l.In, l.Out), Value: l.W.Data, Grad: l.GradW.Data},
		{Name: fmt.Sprintf("linear%dx%d.b", l.In, l.Out), Value: l.B, Grad: l.GradB},
	}
}

// NumParams returns the number of scalar parameters in the layer.
func (l *Linear) NumParams() int { return l.In*l.Out + l.Out }

// ReLU is the rectified linear activation.
type ReLU struct {
	x   *tensor.Matrix
	out *tensor.Matrix
	dx  *tensor.Matrix
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.x = x
	r.out = ensureShape(r.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			r.out.Data[i] = v
		} else {
			r.out.Data[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	r.dx = ensureShape(r.dx, dout.Rows, dout.Cols)
	for i, v := range r.x.Data {
		if v > 0 {
			r.dx.Data[i] = dout.Data[i]
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out *tensor.Matrix
	dx  *tensor.Matrix
}

// SigmoidScalar returns 1/(1+e^-x) computed in float64 for stability.
func SigmoidScalar(x float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(x))))
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Matrix) *tensor.Matrix {
	s.out = ensureShape(s.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		s.out.Data[i] = SigmoidScalar(v)
	}
	return s.out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout *tensor.Matrix) *tensor.Matrix {
	s.dx = ensureShape(s.dx, dout.Rows, dout.Cols)
	for i, o := range s.out.Data {
		s.dx.Data[i] = dout.Data[i] * o * (1 - o)
	}
	return s.dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []Param { return nil }

// MLP is a stack of Linear layers with ReLU between them and, optionally,
// after the last layer.
type MLP struct {
	layers []Layer
}

// NewMLP builds an MLP with the given layer widths. dims[0] is the input
// width. If reluOnOutput is true a ReLU follows the final Linear as well
// (DLRM applies an activation to the bottom MLP output).
func NewMLP(dims []int, reluOnOutput bool, rng *tensor.RNG) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, NewLinear(dims[i], dims[i+1], rng))
		if i+2 < len(dims) || reluOnOutput {
			m.layers = append(m.layers, &ReLU{})
		}
	}
	return m
}

// Forward implements Layer.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (m *MLP) Backward(dout *tensor.Matrix) *tensor.Matrix {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dout = m.layers[i].Backward(dout)
	}
	return dout
}

// Params implements Layer.
func (m *MLP) Params() []Param {
	var ps []Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the number of scalar parameters in the MLP.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.layers {
		if lin, ok := l.(*Linear); ok {
			n += lin.NumParams()
		}
	}
	return n
}

// ZeroGrads clears the gradient accumulators of all params in ps.
func ZeroGrads(ps []Param) {
	for _, p := range ps {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// ParamCount sums the scalar sizes of ps.
func ParamCount(ps []Param) int {
	n := 0
	for _, p := range ps {
		n += len(p.Value)
	}
	return n
}
