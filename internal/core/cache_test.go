package core

import (
	"testing"
	"testing/quick"
)

func TestCacheInsertGetEvict(t *testing.T) {
	c := NewCache(2)
	c.Insert(1, []float32{1, 1}, 5)
	c.Insert(2, []float32{2, 2}, 3)
	if c.Len() != 2 {
		t.Fatalf("len=%d", c.Len())
	}
	e, ok := c.Get(1)
	if !ok || e.Row[0] != 1 {
		t.Fatal("missing entry 1")
	}
	if _, ok := c.Get(99); ok {
		t.Fatal("phantom entry")
	}
	evs := c.EvictExpired(3)
	if len(evs) != 0 {
		t.Fatalf("clean entries must not be written back, got %d", len(evs))
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d after evicting ttl<=3", c.Len())
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("entry 2 should be gone")
	}
}

func TestCacheDirtyWriteBack(t *testing.T) {
	c := NewCache(2)
	c.Insert(7, []float32{1, 2}, 1)
	e, _ := c.Get(7)
	e.Row[0] = 42
	e.Dirty = true
	evs := c.EvictExpired(1)
	if len(evs) != 1 || evs[0].ID != 7 || evs[0].Row[0] != 42 {
		t.Fatalf("evictions %+v", evs)
	}
}

func TestCacheEvictionsSortedByID(t *testing.T) {
	c := NewCache(1)
	for _, id := range []uint64{9, 3, 7, 1} {
		c.Insert(id, []float32{0}, 0)
		e, _ := c.Peek(id)
		e.Dirty = true
	}
	evs := c.EvictExpired(0)
	for i := 1; i < len(evs); i++ {
		if evs[i].ID <= evs[i-1].ID {
			t.Fatal("evictions not sorted")
		}
	}
}

func TestCacheUpdateTTLExtendsLife(t *testing.T) {
	c := NewCache(1)
	c.Insert(1, []float32{0}, 2)
	c.UpdateTTL(1, 10)
	c.EvictExpired(5)
	if _, ok := c.Peek(1); !ok {
		t.Fatal("TTL update ignored")
	}
	c.UpdateTTL(99, 1) // absent: must not panic or insert
	if c.Len() != 1 {
		t.Fatal("UpdateTTL must not insert")
	}
}

func TestCacheCountersAndSizes(t *testing.T) {
	c := NewCache(4)
	c.Insert(1, make([]float32, 4), 9)
	c.Insert(2, make([]float32, 4), 9)
	c.Get(1)
	c.Get(3)
	hits, misses, _ := c.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
	if c.SizeBytes() != 2*4*4 {
		t.Fatalf("size=%d", c.SizeBytes())
	}
	c.EvictExpired(100)
	if c.PeakRows() != 2 || c.PeakSizeBytes() != 32 {
		t.Fatalf("peak=%d", c.PeakRows())
	}
	_, _, ev := c.Counters()
	if ev != 2 {
		t.Fatalf("evicted=%d", ev)
	}
}

func TestCacheInsertWrongDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache(4).Insert(1, []float32{1}, 0)
}

func TestFIFOCacheBasics(t *testing.T) {
	f := NewFIFOCache(2)
	if f.Access(1) {
		t.Fatal("cold access must miss")
	}
	if !f.Access(1) {
		t.Fatal("repeat access must hit")
	}
	f.Access(2)
	f.Access(3) // evicts 1
	if f.Access(1) {
		t.Fatal("evicted id must miss")
	}
	if f.Len() != 2 {
		t.Fatalf("len=%d", f.Len())
	}
	if f.HitRate() <= 0 || f.HitRate() >= 1 {
		t.Fatalf("hit rate %v", f.HitRate())
	}
}

func TestFIFONeverExceedsCapacity(t *testing.T) {
	f := NewFIFOCache(8)
	if err := quick.Check(func(id uint8) bool {
		f.Access(uint64(id))
		return f.Len() <= 8
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFIFOCache(0)
}
