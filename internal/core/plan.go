package core

import "sort"

// TrainerPlan is one trainer's slice of a Decision under the LRPP
// (logically replicated, physically partitioned) cache: ownership of every
// id is OwnerOf(id, p), the owner's partition holds the only cached copy,
// and non-owners that touch a row are served a replica for the iteration.
// The Oracle Cacher emits one plan per trainer per iteration; together the
// plans partition the decision's prefetch set, TTL map, and eviction set
// disjointly across trainers (§3.3 of the paper).
type TrainerPlan struct {
	Trainer int
	Dec     *Decision

	// Prefetch is the owned subset of Dec.Prefetch: rows this trainer must
	// fetch from the embedding servers into its partition, sorted.
	Prefetch []uint64

	// OwnedTTL maps every owned id the batch touches to its TTL. The owner
	// refreshes cached rows' TTLs from it each iteration (the
	// TTLUpdateRequests of Algorithm 1, restricted to the partition).
	OwnedTTL map[uint64]int

	// Expiring lists owned ids whose TTL equals this iteration, sorted:
	// after their gradient merge for this iteration completes they are
	// evicted and written back by this trainer, and by no one else.
	Expiring []uint64

	// Users maps each owned id used this iteration to the sorted trainers
	// whose examples touch it — the contributors the owner must collect
	// gradient contributions from before updating the row.
	Users map[uint64][]int

	// ReplicaOut maps each other trainer to the sorted owned ids it needs
	// this iteration; the owner pushes it a snapshot of those rows.
	ReplicaOut map[int][]uint64

	// Remote maps each remote-owned id this trainer's examples touch to its
	// owner; gradient updates for these ids are queued to the delayed-sync
	// flusher rather than applied locally.
	Remote map[uint64]int

	// ReplicaFrom lists the owners this trainer expects replica pushes
	// from this iteration, sorted.
	ReplicaFrom []int
}

// SplitPlans slices the decision into p per-trainer LRPP plans. Ownership
// is the total hash partition OwnerOf, so the plans partition Prefetch,
// TTL, and the eviction set disjointly — the invariant the fuzz harness
// asserts.
func (d *Decision) SplitPlans(p int) []*TrainerPlan {
	plans := make([]*TrainerPlan, p)
	for t := range plans {
		plans[t] = &TrainerPlan{
			Trainer:    t,
			Dec:        d,
			OwnedTTL:   make(map[uint64]int),
			Users:      make(map[uint64][]int),
			ReplicaOut: make(map[int][]uint64),
			Remote:     make(map[uint64]int),
		}
	}
	for _, id := range d.Prefetch { // stays sorted: d.Prefetch is sorted
		o := OwnerOf(id, p)
		plans[o].Prefetch = append(plans[o].Prefetch, id)
	}
	for id, ttl := range d.TTL {
		o := OwnerOf(id, p)
		plans[o].OwnedTTL[id] = ttl
		if ttl == d.Iter {
			plans[o].Expiring = append(plans[o].Expiring, id)
		}
	}
	for id, users := range d.UsedBy {
		o := OwnerOf(id, p)
		plans[o].Users[id] = users
		for _, u := range users {
			if u != o {
				plans[o].ReplicaOut[u] = append(plans[o].ReplicaOut[u], id)
				plans[u].Remote[id] = o
			}
		}
	}
	for _, pl := range plans {
		sortU64(pl.Expiring)
		for _, ids := range pl.ReplicaOut {
			sortU64(ids)
		}
		seen := make(map[int]bool)
		for _, o := range pl.Remote {
			if !seen[o] {
				seen[o] = true
				pl.ReplicaFrom = append(pl.ReplicaFrom, o)
			}
		}
		sort.Ints(pl.ReplicaFrom)
	}
	return plans
}

func sortU64(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
