// Package core implements Bagpipe's primary contribution: the Oracle
// Cacher with its lookahead algorithm (Algorithm 1 of the paper), the
// trainer-side TTL cache it drives, the logically-replicated
// physically-partitioned (LRPP) synchronization planner with delayed
// (critical-path-aware) synchronization, and the batch partitioners used to
// compare cache designs (§3.3).
//
// The Oracle Cacher looks ℒ batches beyond the current batch to decide,
// for every embedding the current batch touches, (a) whether it must be
// prefetched (cache miss) and (b) how long it must stay cached — its TTL,
// the last iteration inside the lookahead window that uses it. This yields
// Belady-style perfect caching while guaranteeing consistency: when batch x
// trains, an embedding it needs is either cached with its latest value, or
// no batch in [x−ℒ, x) updated it, so a prefetch issued after batch x−ℒ's
// write-backs can never observe a stale value (§3.2).
package core

import (
	"fmt"
	"sort"

	"bagpipe/internal/data"
)

// BatchSource supplies the ordered batch stream the Oracle Cacher inspects.
type BatchSource interface {
	// Next returns the next batch, or ok=false when the stream ends.
	Next() (b *data.Batch, ok bool)
}

// GeneratorSource adapts a data.Generator to a BatchSource over a fixed
// range of iterations.
type GeneratorSource struct {
	Gen       *data.Generator
	BatchSize int
	NextIndex int
	Limit     int // exclusive upper bound on batch index
}

// NewGeneratorSource streams batches [0, limit) of the given size.
func NewGeneratorSource(gen *data.Generator, batchSize, limit int) *GeneratorSource {
	return &GeneratorSource{Gen: gen, BatchSize: batchSize, Limit: limit}
}

// Next implements BatchSource.
func (g *GeneratorSource) Next() (*data.Batch, bool) {
	if g.NextIndex >= g.Limit {
		return nil, false
	}
	b := g.Gen.Batch(g.NextIndex, g.BatchSize)
	g.NextIndex++
	return b, true
}

// SliceSource is a BatchSource over a fixed slice (tests).
type SliceSource struct {
	Batches []*data.Batch
	pos     int
}

// Next implements BatchSource.
func (s *SliceSource) Next() (*data.Batch, bool) {
	if s.pos >= len(s.Batches) {
		return nil, false
	}
	b := s.Batches[s.pos]
	s.pos++
	return b, true
}

// Decision is the Oracle Cacher's output for one iteration: the batch
// itself plus every cache/prefetch/synchronization instruction the trainers
// need. It corresponds to the TTLUpdateRequests and CacheFetchRequests of
// Algorithm 1, extended with the LRPP single-trainer marks (§3.3) and the
// delayed-synchronization split (§3.3, "Delayed Synchronization").
type Decision struct {
	Iter  int
	Batch *data.Batch

	// Prefetch lists the embedding IDs the batch needs that are not in the
	// (logically replicated) cache; trainers fetch these from the
	// embedding servers, overlapped with earlier iterations' compute.
	Prefetch []uint64

	// TTL maps every unique embedding ID in the batch to the last
	// iteration within the lookahead window that uses it. An entry whose
	// TTL equals Iter is used only by this batch and is evicted (with
	// write-back) right after it.
	TTL map[uint64]int

	// Assign maps each example index to the trainer that will process it.
	Assign []int

	// UsedBy maps each unique embedding ID to the sorted list of trainers
	// whose partition touches it. IDs with a single user are the LRPP
	// fast path: only that trainer fetches them and no collective
	// synchronization happens for them.
	UsedBy map[uint64][]int

	// NeededNext marks IDs (that remain cached after this iteration) that
	// the very next batch needs; their synchronization is on the critical
	// path, everything else can be delayed into the next forward pass.
	NeededNext map[uint64]bool
}

// EvictAfter returns the IDs whose TTL expires at this iteration, sorted.
func (d *Decision) EvictAfter() []uint64 {
	var ids []uint64
	for id, ttl := range d.TTL {
		if ttl == d.Iter {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IterStats summarizes a decision for the performance model and the
// experiment harness.
type IterStats struct {
	Iter           int
	BatchSize      int
	TotalAccesses  int
	UniqueIDs      int
	Prefetched     int // cache misses fetched from embedding servers
	CachedHits     int // unique IDs served from the trainer cache
	Evicted        int // IDs evicted (written back) after this iteration
	SingleUse      int // LRPP: IDs used by exactly one trainer
	MultiUse       int // IDs used by >1 trainer (all-reduce synchronized)
	CriticalSync   int // multi-use IDs needed by iteration+1 (critical path)
	DelayedSync    int // multi-use IDs deferred to background sync
	CacheOccupancy int // oracle's view of cache rows after this iteration
}

// Stats derives IterStats from the decision. cacheOccupancy is the oracle's
// post-iteration InCache size, passed by the Oracle.
func (d *Decision) Stats(cacheOccupancy int) IterStats {
	st := IterStats{
		Iter:           d.Iter,
		BatchSize:      d.Batch.Size(),
		TotalAccesses:  d.Batch.TotalAccesses(),
		UniqueIDs:      len(d.TTL),
		Prefetched:     len(d.Prefetch),
		Evicted:        len(d.EvictAfter()),
		CacheOccupancy: cacheOccupancy,
	}
	st.CachedHits = st.UniqueIDs - st.Prefetched
	for id, trainers := range d.UsedBy {
		if len(trainers) == 1 {
			st.SingleUse++
			continue
		}
		st.MultiUse++
		if d.NeededNext[id] {
			st.CriticalSync++
		} else {
			st.DelayedSync++
		}
	}
	return st
}

// Oracle is the Oracle Cacher: a centralized service that inspects batches
// LookAhead iterations beyond the current one and emits Decisions.
type Oracle struct {
	// LookAhead is ℒ: the size of the inspection window in batches,
	// counting the current batch, exactly as in Algorithm 1's
	// BatchQueue.size() < LookAheadValue bound and the Figure 6 worked
	// example (the paper's default is 200). The oracle therefore sees
	// ℒ−1 batches beyond the one being dispatched.
	LookAhead int
	// NumTrainers is the trainer count used for LRPP annotations.
	NumTrainers int
	// MaxCacheRows, if positive, bounds the oracle's view of cache
	// occupancy; the window stops growing while the bound would be
	// exceeded, dynamically shrinking the effective lookahead (§4,
	// "Automatically Calculating Lookahead").
	MaxCacheRows int
	// Partitioner assigns batch examples to trainers; nil means contiguous
	// equal chunks (Bagpipe's default).
	Partitioner Partitioner

	src     BatchSource
	queue   []*data.Batch
	uniques map[int][]uint64 // batch index → unique IDs (computed once)
	latest  map[uint64]int
	inCache map[uint64]struct{}
	done    bool
	peak    int
}

// NewOracle returns an Oracle over src with lookahead l for numTrainers
// trainers.
func NewOracle(src BatchSource, l, numTrainers int) *Oracle {
	if l < 1 {
		panic(fmt.Sprintf("core: lookahead must be >= 1, got %d", l))
	}
	if numTrainers < 1 {
		panic(fmt.Sprintf("core: need at least one trainer, got %d", numTrainers))
	}
	return &Oracle{
		LookAhead:   l,
		NumTrainers: numTrainers,
		src:         src,
		uniques:     make(map[int][]uint64),
		latest:      make(map[uint64]int),
		inCache:     make(map[uint64]struct{}),
	}
}

// fill tops the window up to LookAhead batches beyond the current front.
func (o *Oracle) fill() {
	for !o.done && len(o.queue) < o.LookAhead {
		if o.MaxCacheRows > 0 && len(o.latest) >= o.MaxCacheRows && len(o.queue) > 0 {
			// Cache budget exhausted: run with a shorter effective window
			// until occupancy drains.
			return
		}
		b, ok := o.src.Next()
		if !ok {
			o.done = true
			return
		}
		ids := b.UniqueIDs()
		o.uniques[b.Index] = ids
		for _, id := range ids {
			o.latest[id] = b.Index
		}
		o.queue = append(o.queue, b)
	}
}

// Next runs one step of Algorithm 1 and returns the decision for the next
// batch, or ok=false when the stream is exhausted.
func (o *Oracle) Next() (*Decision, bool) {
	o.fill()
	if len(o.queue) == 0 {
		return nil, false
	}
	cur := o.queue[0]
	o.queue = o.queue[1:]
	ids := o.uniques[cur.Index]
	delete(o.uniques, cur.Index)

	d := &Decision{
		Iter:  cur.Index,
		Batch: cur,
		TTL:   make(map[uint64]int, len(ids)),
	}
	for _, id := range ids {
		ttl := o.latest[id]
		d.TTL[id] = ttl
		if _, cached := o.inCache[id]; !cached {
			d.Prefetch = append(d.Prefetch, id)
			o.inCache[id] = struct{}{}
		}
		if ttl == cur.Index {
			delete(o.inCache, id)
			delete(o.latest, id)
		}
	}
	sort.Slice(d.Prefetch, func(i, j int) bool { return d.Prefetch[i] < d.Prefetch[j] })
	if len(o.inCache) > o.peak {
		o.peak = len(o.inCache)
	}

	o.annotate(d)
	return d, true
}

// annotate computes the LRPP and delayed-sync metadata for d.
func (o *Oracle) annotate(d *Decision) {
	p := o.Partitioner
	if p == nil {
		p = Contiguous{}
	}
	d.Assign = p.Assign(d.Batch, o.NumTrainers)
	d.UsedBy = usedBy(d.Batch, d.Assign)

	d.NeededNext = make(map[uint64]bool)
	if len(o.queue) > 0 {
		next := o.uniques[o.queue[0].Index]
		nextSet := make(map[uint64]struct{}, len(next))
		for _, id := range next {
			nextSet[id] = struct{}{}
		}
		for id, ttl := range d.TTL {
			if ttl > d.Iter {
				if _, ok := nextSet[id]; ok {
					d.NeededNext[id] = true
				}
			}
		}
	}
}

// usedBy returns, for each unique embedding ID in b, the sorted set of
// trainers whose assigned examples touch it.
func usedBy(b *data.Batch, assign []int) map[uint64][]int {
	m := make(map[uint64]map[int]struct{})
	for i, ex := range b.Examples {
		t := assign[i]
		for _, id := range ex.Cat {
			s, ok := m[id]
			if !ok {
				s = make(map[int]struct{}, 2)
				m[id] = s
			}
			s[t] = struct{}{}
		}
	}
	out := make(map[uint64][]int, len(m))
	for id, s := range m {
		ts := make([]int, 0, len(s))
		for t := range s {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		out[id] = ts
	}
	return out
}

// CacheOccupancy returns the oracle's current view of cached rows.
func (o *Oracle) CacheOccupancy() int { return len(o.inCache) }

// PeakOccupancy returns the maximum cache occupancy seen so far; with the
// row width this gives the cache size requirement Table 3 reports per ℒ.
func (o *Oracle) PeakOccupancy() int { return o.peak }

// EstimateLookahead simulates the startup procedure of §4 ("Automatically
// Calculating Lookahead"): keep extending the window until the cache-size
// budget (in rows) is reached, and return the number of batches that fit.
func EstimateLookahead(gen *data.Generator, batchSize, maxRows, maxL int) int {
	latest := make(map[uint64]struct{})
	for l := 0; l < maxL; l++ {
		b := gen.Batch(l, batchSize)
		for _, id := range b.UniqueIDs() {
			latest[id] = struct{}{}
		}
		if len(latest) > maxRows {
			return l // the batch that overflowed doesn't fit
		}
	}
	return maxL
}
