package core

import (
	"testing"

	"bagpipe/internal/data"
	"bagpipe/internal/tensor"
)

func randomBatch(rng *tensor.RNG, n, feats int, idSpace uint64) *data.Batch {
	b := &data.Batch{}
	for i := 0; i < n; i++ {
		ids := make([]uint64, feats)
		for j := range ids {
			ids[j] = rng.Uint64() % idSpace
		}
		b.Examples = append(b.Examples, data.Example{Cat: ids})
	}
	return b
}

func checkBalanced(t *testing.T, assign []int, p int) {
	t.Helper()
	load := make([]int, p)
	for _, a := range assign {
		if a < 0 || a >= p {
			t.Fatalf("assignment %d out of range", a)
		}
		load[a]++
	}
	lo, hi := load[0], load[0]
	for _, l := range load {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi-lo > 1 {
		t.Fatalf("unbalanced load %v", load)
	}
}

func TestContiguousBalanced(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, n := range []int{1, 7, 16, 33} {
		for _, p := range []int{1, 2, 4, 8} {
			b := randomBatch(rng, n, 3, 100)
			checkBalanced(t, Contiguous{}.Assign(b, p), p)
		}
	}
}

func TestContiguousIsContiguous(t *testing.T) {
	b := randomBatch(tensor.NewRNG(2), 16, 2, 100)
	a := Contiguous{}.Assign(b, 4)
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("assignment not monotone: %v", a)
		}
	}
	if a[0] != 0 || a[15] != 3 {
		t.Fatalf("ends wrong: %v", a)
	}
}

func TestRoundRobinBalanced(t *testing.T) {
	b := randomBatch(tensor.NewRNG(3), 10, 2, 100)
	a := RoundRobin{}.Assign(b, 3)
	checkBalanced(t, a, 3)
	if a[0] != 0 || a[1] != 1 || a[2] != 2 || a[3] != 0 {
		t.Fatalf("round robin wrong: %v", a)
	}
}

func TestOwnershipByHash(t *testing.T) {
	own := OwnershipByHash([]uint64{0, 1, 2, 3, 4}, 2)
	if own[0] != 0 || own[1] != 1 || own[4] != 0 {
		t.Fatalf("ownership %v", own)
	}
}

func TestCommAwareBeatsRoundRobinOnClusteredBatch(t *testing.T) {
	// Examples whose embeddings are all owned by one trainer: comm-aware
	// should place them there and pay ~0; round-robin pays ~half.
	b := &data.Batch{}
	for i := 0; i < 8; i++ {
		owner := uint64(i / 4)                       // first half owned by trainer 0, rest by 1
		ids := []uint64{owner, owner + 2, owner + 4} // parity = owner
		b.Examples = append(b.Examples, data.Example{Cat: ids})
	}
	ids := []uint64{0, 1, 2, 3, 4, 5}
	own := OwnershipByHash(ids, 2)
	ca := &CommAware{Own: own}
	aCA := ca.Assign(b, 2)
	checkBalanced(t, aCA, 2)
	aRR := RoundRobin{}.Assign(b, 2)
	costCA := AssignmentCommCost(b, aCA, 2, own)
	costRR := AssignmentCommCost(b, aRR, 2, own)
	if costCA != 0 {
		t.Fatalf("comm-aware cost %d want 0", costCA)
	}
	if costRR <= costCA {
		t.Fatalf("round robin cost %d should exceed comm-aware %d", costRR, costCA)
	}
}

func TestCommAwareNearOptimalOnTinyInstances(t *testing.T) {
	rng := tensor.NewRNG(11)
	for trial := 0; trial < 15; trial++ {
		b := randomBatch(rng, 6, 2, 8)
		own := OwnershipByHash([]uint64{0, 1, 2, 3, 4, 5, 6, 7}, 2)
		ca := &CommAware{Own: own}
		greedy := ca.Assign(b, 2)
		checkBalanced(t, greedy, 2)
		gCost := AssignmentCommCost(b, greedy, 2, own)
		_, optCost := ExactAssign(b, 2, own)
		if gCost < optCost {
			t.Fatalf("greedy %d beat the exact optimum %d — cost accounting broken", gCost, optCost)
		}
		// greedy within 50% of optimal on these tiny instances
		if float64(gCost) > float64(optCost)*1.5+1 {
			t.Fatalf("trial %d: greedy cost %d too far above optimum %d", trial, gCost, optCost)
		}
	}
}

func TestAssignmentCommCostCountsPerTrainerOnce(t *testing.T) {
	// two examples on the same trainer needing the same foreign id: 1 fetch
	b := &data.Batch{Examples: []data.Example{
		{Cat: []uint64{1}}, {Cat: []uint64{1}},
	}}
	own := Ownership{1: 1}
	cost := AssignmentCommCost(b, []int{0, 0}, 2, own)
	if cost != 1 {
		t.Fatalf("cost=%d want 1 (dedup per trainer)", cost)
	}
	// split across both trainers: trainer 0 fetches, trainer 1 owns it
	cost = AssignmentCommCost(b, []int{0, 1}, 2, own)
	if cost != 1 {
		t.Fatalf("cost=%d want 1", cost)
	}
}

func TestOwnershipHashFallback(t *testing.T) {
	// IDs never seen in the lookahead window are absent from the map; their
	// ownership must resolve to the hash partition, not fall through
	// undefined.
	own := Ownership{10: 1} // id 10 pinned to trainer 1, everything else unseen
	if got := own.Owner(10, 4); got != 1 {
		t.Fatalf("mapped id owner %d want 1", got)
	}
	for _, id := range []uint64{0, 3, 7, 999} {
		if got, want := own.Owner(id, 4), OwnerOf(id, 4); got != want {
			t.Fatalf("unseen id %d owner %d want hash owner %d", id, got, want)
		}
	}
	if OwnerOf(7, 4) != 3 {
		t.Fatalf("OwnerOf(7,4)=%d want 3", OwnerOf(7, 4))
	}
}

func TestCommAwareUnseenIDsUseHashOwnership(t *testing.T) {
	// A batch whose ids are entirely absent from the ownership map (they
	// first appear beyond the lookahead window): comm-aware must place each
	// example with the hash owner of its ids, exactly where the LRPP cache
	// will put the rows. Examples are built so ids of example i all hash to
	// trainer i%2.
	b := &data.Batch{}
	for i := 0; i < 8; i++ {
		par := uint64(i % 2)
		b.Examples = append(b.Examples, data.Example{Cat: []uint64{100 + par, 102 + par, 104 + par}})
	}
	ca := &CommAware{Own: Ownership{}} // nothing seen in the window
	assign := ca.Assign(b, 2)
	checkBalanced(t, assign, 2)
	if cost := AssignmentCommCost(b, assign, 2, ca.Own); cost != 0 {
		t.Fatalf("comm-aware cost %d want 0 under hash fallback (assign %v)", cost, assign)
	}
}

func TestExactAssignRespectsBalance(t *testing.T) {
	b := randomBatch(tensor.NewRNG(5), 4, 2, 6)
	own := OwnershipByHash([]uint64{0, 1, 2, 3, 4, 5}, 2)
	assign, cost := ExactAssign(b, 2, own)
	checkBalanced(t, assign, 2)
	if cost < 0 {
		t.Fatal("no solution found")
	}
}
