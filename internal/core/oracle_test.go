package core

import (
	"testing"

	"bagpipe/internal/data"
	"bagpipe/internal/tensor"
)

// mkBatch builds a one-feature-per-example batch from explicit ids.
func mkBatch(index int, ids ...uint64) *data.Batch {
	b := &data.Batch{Index: index}
	for _, id := range ids {
		b.Examples = append(b.Examples, data.Example{Cat: []uint64{id}, Dense: []float32{0}})
	}
	return b
}

func collect(o *Oracle) []*Decision {
	var ds []*Decision
	for {
		d, ok := o.Next()
		if !ok {
			return ds
		}
		ds = append(ds, d)
	}
}

func hasID(ids []uint64, id uint64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// TestFigure6WorkedExample replays the paper's Figure 6 step by step:
// ℒ=2, batches {3,9} {4,3} {3,6} {6,1} {9,7}.
func TestFigure6WorkedExample(t *testing.T) {
	src := &SliceSource{Batches: []*data.Batch{
		mkBatch(1, 3, 9),
		mkBatch(2, 4, 3),
		mkBatch(3, 3, 6),
		mkBatch(4, 6, 1),
		mkBatch(5, 9, 7),
	}}
	o := NewOracle(src, 2, 1)
	ds := collect(o)
	if len(ds) != 5 {
		t.Fatalf("got %d decisions want 5", len(ds))
	}

	// Batch 1: prefetch 3 and 9; 3 cached with TTL 2; 9 evicted after.
	d := ds[0]
	if !hasID(d.Prefetch, 3) || !hasID(d.Prefetch, 9) || len(d.Prefetch) != 2 {
		t.Fatalf("batch1 prefetch %v want [3 9]", d.Prefetch)
	}
	if d.TTL[3] != 2 {
		t.Fatalf("batch1 TTL[3]=%d want 2", d.TTL[3])
	}
	if d.TTL[9] != 1 || !hasID(d.EvictAfter(), 9) {
		t.Fatalf("batch1: 9 must expire at iter 1 (TTL=%d, evict=%v)", d.TTL[9], d.EvictAfter())
	}

	// Batch 2: 3 in cache (no prefetch), TTL updated to 3; prefetch 4.
	d = ds[1]
	if hasID(d.Prefetch, 3) {
		t.Fatal("batch2 must not re-prefetch cached 3")
	}
	if !hasID(d.Prefetch, 4) || len(d.Prefetch) != 1 {
		t.Fatalf("batch2 prefetch %v want [4]", d.Prefetch)
	}
	if d.TTL[3] != 3 {
		t.Fatalf("batch2 TTL[3]=%d want 3", d.TTL[3])
	}

	// Batch 3: prefetch 6 cached with TTL 4; 3 evicted after batch 3.
	d = ds[2]
	if !hasID(d.Prefetch, 6) || len(d.Prefetch) != 1 {
		t.Fatalf("batch3 prefetch %v want [6]", d.Prefetch)
	}
	if d.TTL[6] != 4 {
		t.Fatalf("batch3 TTL[6]=%d want 4", d.TTL[6])
	}
	if d.TTL[3] != 3 || !hasID(d.EvictAfter(), 3) {
		t.Fatalf("batch3 must evict 3 (TTL=%d)", d.TTL[3])
	}

	// Batch 4: prefetch 1; 6 has no future use, evicted after.
	d = ds[3]
	if !hasID(d.Prefetch, 1) || hasID(d.Prefetch, 6) || len(d.Prefetch) != 1 {
		t.Fatalf("batch4 prefetch %v want [1]", d.Prefetch)
	}
	if d.TTL[6] != 4 || !hasID(d.EvictAfter(), 6) {
		t.Fatalf("batch4 must evict 6 after use (TTL=%d)", d.TTL[6])
	}

	// Batch 5: 9 was evicted long ago, so it must be prefetched again.
	d = ds[4]
	if !hasID(d.Prefetch, 9) || !hasID(d.Prefetch, 7) {
		t.Fatalf("batch5 prefetch %v want [7 9]", d.Prefetch)
	}
}

func TestLookaheadOnePrefetchesEverything(t *testing.T) {
	// ℒ=1 (window = current batch only) degenerates to no caching at all.
	src := &SliceSource{Batches: []*data.Batch{
		mkBatch(0, 1, 2), mkBatch(1, 1, 2), mkBatch(2, 1, 2),
	}}
	o := NewOracle(src, 1, 1)
	for _, d := range collect(o) {
		if len(d.Prefetch) != 2 {
			t.Fatalf("iter %d prefetch %v want both ids", d.Iter, d.Prefetch)
		}
		if len(d.EvictAfter()) != 2 {
			t.Fatalf("iter %d should evict both ids", d.Iter)
		}
	}
}

func TestLargeLookaheadCachesRepeats(t *testing.T) {
	src := &SliceSource{Batches: []*data.Batch{
		mkBatch(0, 1, 2), mkBatch(1, 1, 3), mkBatch(2, 1, 2),
	}}
	o := NewOracle(src, 10, 1)
	ds := collect(o)
	// id 1 prefetched once, ids 2 cached across the gap.
	if len(ds[0].Prefetch) != 2 {
		t.Fatalf("iter0 prefetch %v", ds[0].Prefetch)
	}
	if len(ds[1].Prefetch) != 1 || !hasID(ds[1].Prefetch, 3) {
		t.Fatalf("iter1 prefetch %v want [3]", ds[1].Prefetch)
	}
	if len(ds[2].Prefetch) != 0 {
		t.Fatalf("iter2 prefetch %v want none", ds[2].Prefetch)
	}
	if ds[0].TTL[1] != 2 || ds[0].TTL[2] != 2 {
		t.Fatalf("iter0 TTLs wrong: %v", ds[0].TTL)
	}
}

// consistency invariant (§3.2): if batch x prefetches id, then no batch in
// [x−ℒ+1, x) used (and hence updated) that id.
func TestConsistencyInvariantProperty(t *testing.T) {
	spec := &data.Spec{
		Name: "t", NumExamples: 1 << 20, NumCategorical: 6, NumNumeric: 1,
		TableSizes: []int64{50, 500, 5000, 50, 500, 5000}, EmbDim: 4,
		Dist: data.NewHotTail(0.01, 0.8, 1.05),
	}
	gen := data.NewGenerator(spec, 5)
	const L, iters, bs = 8, 60, 32
	o := NewOracle(NewGeneratorSource(gen, bs, iters), L, 4)

	history := make([]map[uint64]struct{}, 0, iters)
	for {
		d, ok := o.Next()
		if !ok {
			break
		}
		x := d.Iter
		lo := x - L + 1
		if lo < 0 {
			lo = 0
		}
		for _, id := range d.Prefetch {
			for y := lo; y < x; y++ {
				if _, used := history[y][id]; used {
					t.Fatalf("iter %d prefetches id %d but batch %d used it (stale read possible)", x, id, y)
				}
			}
		}
		// every unique id is either prefetched now or already cached —
		// i.e. it must appear in TTL map either way.
		uniq := d.Batch.UniqueIDs()
		if len(d.TTL) != len(uniq) {
			t.Fatalf("iter %d TTL covers %d ids, batch has %d", x, len(d.TTL), len(uniq))
		}
		set := make(map[uint64]struct{}, len(uniq))
		for _, id := range uniq {
			set[id] = struct{}{}
		}
		history = append(history, set)
	}
	if len(history) != iters {
		t.Fatalf("processed %d iters want %d", len(history), iters)
	}
}

// Replaying decisions against a real Cache must mean every id of the
// current batch is resident at train time and TTLs expire exactly on time.
func TestDecisionsDriveCacheCorrectly(t *testing.T) {
	spec := &data.Spec{
		Name: "t", NumExamples: 1 << 20, NumCategorical: 4, NumNumeric: 1,
		TableSizes: []int64{100, 1000, 100, 1000}, EmbDim: 4,
		Dist: data.NewHotTail(0.01, 0.9, 1.05),
	}
	gen := data.NewGenerator(spec, 9)
	o := NewOracle(NewGeneratorSource(gen, 16, 40), 6, 2)
	cache := NewCache(4)
	for {
		d, ok := o.Next()
		if !ok {
			break
		}
		for _, id := range d.Prefetch {
			cache.Insert(id, make([]float32, 4), d.TTL[id])
		}
		for id, ttl := range d.TTL {
			cache.UpdateTTL(id, ttl)
		}
		// train step: every unique id must be resident
		for _, id := range d.Batch.UniqueIDs() {
			if _, ok := cache.Get(id); !ok {
				t.Fatalf("iter %d: id %d not resident at train time", d.Iter, id)
			}
		}
		cache.EvictExpired(d.Iter)
		// nothing expired may linger
		for _, id := range cache.IDs() {
			e, _ := cache.Peek(id)
			if e.TTL <= d.Iter {
				t.Fatalf("iter %d: id %d lingers with TTL %d", d.Iter, id, e.TTL)
			}
		}
		if cache.Len() != o.CacheOccupancy() {
			t.Fatalf("iter %d: cache has %d rows, oracle thinks %d", d.Iter, cache.Len(), o.CacheOccupancy())
		}
	}
	if cache.HitRate() <= 0 {
		t.Fatal("skewed trace should produce cache hits")
	}
}

func TestLRPPAnnotations(t *testing.T) {
	// 4 examples, 2 trainers, contiguous split: examples 0,1 → t0; 2,3 → t1.
	b := &data.Batch{Index: 0, Examples: []data.Example{
		{Cat: []uint64{10, 20}}, // t0
		{Cat: []uint64{10, 30}}, // t0
		{Cat: []uint64{20, 40}}, // t1
		{Cat: []uint64{40, 50}}, // t1
	}}
	src := &SliceSource{Batches: []*data.Batch{b, mkBatch(1, 20)}}
	o := NewOracle(src, 2, 2)
	d, ok := o.Next()
	if !ok {
		t.Fatal("no decision")
	}
	wantUsers := map[uint64][]int{
		10: {0}, 30: {0}, 20: {0, 1}, 40: {1}, 50: {1},
	}
	for id, want := range wantUsers {
		got := d.UsedBy[id]
		if len(got) != len(want) {
			t.Fatalf("id %d used by %v want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("id %d used by %v want %v", id, got, want)
			}
		}
	}
	// 20 is needed by batch 1, stays cached → critical sync.
	if !d.NeededNext[20] {
		t.Fatal("id 20 should be marked needed-next (critical path sync)")
	}
	st := d.Stats(o.CacheOccupancy())
	if st.SingleUse != 4 || st.MultiUse != 1 || st.CriticalSync != 1 || st.DelayedSync != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDelayedSyncSplit(t *testing.T) {
	// id 20 shared by both trainers, reused at batch 2 (not batch 1) →
	// delayed sync; id 10 shared and reused at batch 1 → critical.
	b0 := &data.Batch{Index: 0, Examples: []data.Example{
		{Cat: []uint64{10, 20}},
		{Cat: []uint64{10, 20}},
	}}
	src := &SliceSource{Batches: []*data.Batch{b0, mkBatch(1, 10), mkBatch(2, 20)}}
	o := NewOracle(src, 3, 2)
	d, _ := o.Next()
	if !d.NeededNext[10] {
		t.Fatal("10 must be critical")
	}
	if d.NeededNext[20] {
		t.Fatal("20 must be delayed")
	}
	st := d.Stats(o.CacheOccupancy())
	if st.CriticalSync != 1 || st.DelayedSync != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestIterStatsArithmetic(t *testing.T) {
	src := &SliceSource{Batches: []*data.Batch{
		mkBatch(0, 1, 2, 2, 3), mkBatch(1, 1),
	}}
	o := NewOracle(src, 2, 1)
	d, _ := o.Next()
	st := d.Stats(o.CacheOccupancy())
	if st.TotalAccesses != 4 || st.UniqueIDs != 3 {
		t.Fatalf("accesses=%d unique=%d", st.TotalAccesses, st.UniqueIDs)
	}
	if st.Prefetched != 3 || st.CachedHits != 0 {
		t.Fatalf("prefetch=%d hits=%d", st.Prefetched, st.CachedHits)
	}
	if st.Evicted != 2 { // 2 and 3 die at iter 0; 1 survives for iter 1
		t.Fatalf("evicted=%d", st.Evicted)
	}
	if st.CacheOccupancy != 1 {
		t.Fatalf("occupancy=%d", st.CacheOccupancy)
	}
}

func TestPeakOccupancyAndMaxCacheRows(t *testing.T) {
	spec := &data.Spec{
		Name: "t", NumExamples: 1 << 20, NumCategorical: 4, NumNumeric: 1,
		TableSizes: []int64{10000, 10000, 10000, 10000}, EmbDim: 4,
		Dist: data.Uniform{},
	}
	gen := data.NewGenerator(spec, 3)
	free := NewOracle(NewGeneratorSource(gen, 64, 30), 20, 1)
	collect(free)
	unbounded := free.PeakOccupancy()

	gen2 := data.NewGenerator(spec, 3)
	capped := NewOracle(NewGeneratorSource(gen2, 64, 30), 20, 1)
	capped.MaxCacheRows = unbounded / 2
	ds := collect(capped)
	if len(ds) != 30 {
		t.Fatalf("capped oracle must still process all batches, got %d", len(ds))
	}
	// the cap is enforced on window growth, so occupancy stays near it
	if capped.PeakOccupancy() > unbounded {
		t.Fatal("cap did not reduce peak occupancy")
	}
}

func TestEstimateLookahead(t *testing.T) {
	spec := &data.Spec{
		Name: "t", NumExamples: 1 << 20, NumCategorical: 4, NumNumeric: 1,
		TableSizes: []int64{100000, 100000, 100000, 100000}, EmbDim: 4,
		Dist: data.Uniform{},
	}
	gen := data.NewGenerator(spec, 3)
	// uniform over 400k rows: each 64-example batch adds ≈256 new ids
	l := EstimateLookahead(gen, 64, 1000, 100)
	if l < 2 || l > 8 {
		t.Fatalf("EstimateLookahead=%d want ≈4", l)
	}
	if EstimateLookahead(gen, 64, 1<<30, 50) != 50 {
		t.Fatal("huge budget should hit maxL")
	}
}

func TestOracleValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOracle(&SliceSource{}, 0, 1) },
		func() { NewOracle(&SliceSource{}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGeneratorSourceBounds(t *testing.T) {
	spec := &data.Spec{
		Name: "t", NumExamples: 1 << 20, NumCategorical: 2, NumNumeric: 1,
		TableSizes: []int64{100, 100}, EmbDim: 4, Dist: data.Uniform{},
	}
	gen := data.NewGenerator(spec, 3)
	src := NewGeneratorSource(gen, 8, 3)
	n := 0
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if b.Index != n {
			t.Fatalf("index %d want %d", b.Index, n)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("produced %d batches want 3", n)
	}
}

// property: with any trace, prefetch counts plus hits equals unique ids,
// and ids never appear in prefetch twice while cached.
func TestNoDoublePrefetchProperty(t *testing.T) {
	rng := tensor.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		var batches []*data.Batch
		for i := 0; i < 25; i++ {
			ids := make([]uint64, 6)
			for j := range ids {
				ids[j] = uint64(rng.Intn(30))
			}
			batches = append(batches, mkBatch(i, ids...))
		}
		L := 2 + rng.Intn(8)
		o := NewOracle(&SliceSource{Batches: batches}, L, 2)
		resident := make(map[uint64]int) // id -> ttl
		for {
			d, ok := o.Next()
			if !ok {
				break
			}
			for _, id := range d.Prefetch {
				if ttl, in := resident[id]; in && ttl > d.Iter-1 {
					t.Fatalf("trial %d iter %d: double prefetch of resident id %d", trial, d.Iter, id)
				}
			}
			for id, ttl := range d.TTL {
				resident[id] = ttl
			}
			for id, ttl := range resident {
				if ttl <= d.Iter {
					delete(resident, id)
				}
			}
		}
	}
}
