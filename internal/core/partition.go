package core

import (
	"fmt"
	"sort"

	"bagpipe/internal/data"
)

// Partitioner assigns each example in a batch to one of p trainers.
type Partitioner interface {
	// Assign returns, for each example index, the trainer that processes
	// it. Implementations must keep the load balanced: every trainer gets
	// ⌈b/p⌉ or ⌊b/p⌋ examples (constraint (ii) of the paper's MILP).
	Assign(b *data.Batch, p int) []int
	// Name identifies the partitioner in experiment output.
	Name() string
}

// Contiguous splits the batch into p equal contiguous chunks — Bagpipe's
// default data-parallel partitioning.
type Contiguous struct{}

// Name implements Partitioner.
func (Contiguous) Name() string { return "contiguous" }

// Assign implements Partitioner.
func (Contiguous) Assign(b *data.Batch, p int) []int {
	n := b.Size()
	out := make([]int, n)
	for i := range out {
		out[i] = i * p / n
		if out[i] >= p {
			out[i] = p - 1
		}
	}
	return out
}

// RoundRobin deals examples to trainers cyclically — the "Partitioned
// Random" configuration of Figure 7.
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "roundrobin" }

// Assign implements Partitioner.
func (RoundRobin) Assign(b *data.Batch, p int) []int {
	out := make([]int, b.Size())
	for i := range out {
		out[i] = i % p
	}
	return out
}

// Ownership maps embedding IDs to the trainer whose partitioned cache owns
// them, the state the communication-aware partitioner minimizes against.
type Ownership map[uint64]int

// OwnerOf is the canonical hash ownership of the LRPP cache: id belongs to
// trainer id % p. It is total — every id has an owner — which is what the
// partitioned cache requires: rows that first appear beyond the lookahead
// window still land in exactly one partition.
func OwnerOf(id uint64, p int) int {
	if p <= 0 {
		panic(fmt.Sprintf("core: OwnerOf with %d trainers", p))
	}
	return int(id % uint64(p))
}

// GroupByOwner partitions the positions 0..len(ids)-1 into contiguous
// per-owner runs using a counting sort: the returned pos holds every index
// grouped by its owning partition OwnerOf(id, n), and bounds[o]..bounds[o+1]
// delimits owner o's run. The owner of each id is computed once (the modulo
// is not free at these call rates) and replayed from a scratch array on the
// placement pass. This is the one grouping primitive behind both halves of
// the system's hash sharding: the embedding server's shard-grouped
// fetch/write paths and the sharded tier client's scatter.
func GroupByOwner(ids []uint64, n int) (pos []int, bounds []int) {
	var g GroupScratch
	return g.GroupByOwner(ids, n)
}

// GroupScratch holds the counting-sort work arrays of GroupByOwner so a
// caller that groups every batch (the sharded tier's scatter, the embedding
// server's shard split) reuses them instead of reallocating four slices per
// call. The returned pos/bounds alias the scratch: they are valid until the
// next GroupByOwner call on the same scratch, and a scratch must not be
// shared by concurrent callers (pool per call site instead).
type GroupScratch struct {
	owner  []int32
	counts []int
	pos    []int
	bounds []int
}

// GroupByOwner is the scratch-reusing form of the package-level
// GroupByOwner; see that function for the grouping contract.
func (g *GroupScratch) GroupByOwner(ids []uint64, n int) (pos []int, bounds []int) {
	if n <= 0 {
		panic(fmt.Sprintf("core: GroupByOwner with %d partitions", n))
	}
	if cap(g.owner) < len(ids) {
		g.owner = make([]int32, len(ids))
		g.pos = make([]int, len(ids))
	}
	if cap(g.counts) < n+1 {
		g.counts = make([]int, n+1)
		g.bounds = make([]int, n+1)
	}
	owner, counts := g.owner[:len(ids)], g.counts[:n+1]
	for o := range counts {
		counts[o] = 0
	}
	for i, id := range ids {
		o := int32(id % uint64(n))
		owner[i] = o
		counts[o+1]++
	}
	for o := 0; o < n; o++ {
		counts[o+1] += counts[o]
	}
	bounds = g.bounds[:n+1]
	copy(bounds, counts)
	pos = g.pos[:len(ids)]
	for i := range ids {
		o := owner[i]
		pos[counts[o]] = i
		counts[o]++
	}
	return pos, bounds
}

// Owner resolves id's owning trainer. IDs absent from the map — ids never
// seen in the lookahead window the map was built from — fall back to the
// hash ownership OwnerOf, so ownership is always defined and agrees with
// where the LRPP cache will actually place the row. (Before this fallback
// existed, an unseen id's ownership fell through undefined: CommAware
// charged it as a transfer against every trainer and the cost model
// disagreed with the cache's real placement.)
func (o Ownership) Owner(id uint64, p int) int {
	if t, ok := o[id]; ok {
		return t
	}
	return OwnerOf(id, p)
}

// OwnershipByHash assigns each id to hash(id) % p, the way a partitioned
// cache shards its contents.
func OwnershipByHash(ids []uint64, p int) Ownership {
	o := make(Ownership, len(ids))
	for _, id := range ids {
		o[id] = OwnerOf(id, p)
	}
	return o
}

// CommAware approximates the paper's MILP: place each example on the
// trainer that already owns the most of its embeddings, subject to the
// balance constraint. The paper solves this exactly with Gurobi and finds
// it takes ~2.36 s per 16k batch — far too slow for ~100 ms iterations —
// so Bagpipe never uses it in production; it exists to reproduce the
// Figure 7 byte counts. This greedy pass processes examples in order of
// decreasing placement benefit, which is within a few percent of the exact
// optimum on instances small enough to solve exactly (see tests).
type CommAware struct {
	Own Ownership
}

// Name implements Partitioner.
func (c *CommAware) Name() string { return "comm-aware" }

// Assign implements Partitioner.
func (c *CommAware) Assign(b *data.Batch, p int) []int {
	n := b.Size()
	capPer := (n + p - 1) / p
	// cost[i][j] = embeddings of example i NOT owned by trainer j
	type cand struct {
		example int
		best    int // best trainer
		gain    int // cost of worst placement − cost of best placement
		costs   []int
	}
	cands := make([]cand, n)
	for i, ex := range b.Examples {
		costs := make([]int, p)
		for _, id := range ex.Cat {
			owner := c.Own.Owner(id, p)
			for j := 0; j < p; j++ {
				if owner != j {
					costs[j]++
				}
			}
		}
		best, worst := 0, 0
		for j := 1; j < p; j++ {
			if costs[j] < costs[best] {
				best = j
			}
			if costs[j] > costs[worst] {
				worst = j
			}
		}
		cands[i] = cand{example: i, best: best, gain: costs[worst] - costs[best], costs: costs}
	}
	// Greedy: biggest-gain examples choose first.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
	load := make([]int, p)
	out := make([]int, n)
	for _, cd := range cands {
		// pick the cheapest trainer with remaining capacity
		best := -1
		for j := 0; j < p; j++ {
			if load[j] >= capPer {
				continue
			}
			if best == -1 || cd.costs[j] < cd.costs[best] ||
				(cd.costs[j] == cd.costs[best] && load[j] < load[best]) {
				best = j
			}
		}
		out[cd.example] = best
		load[best]++
	}
	return out
}

// AssignmentCommCost returns the number of embedding-row transfers the
// assignment of a batch across p trainers incurs against the ownership map:
// for each example, rows not owned by its trainer must be fetched (and
// written back), counted once per (id, trainer) pair as a partitioned cache
// would batch them. Ownership of ids absent from the map resolves through
// the same hash fallback the LRPP cache uses.
func AssignmentCommCost(b *data.Batch, assign []int, p int, own Ownership) int {
	type key struct {
		id uint64
		t  int
	}
	need := make(map[key]struct{})
	for i, ex := range b.Examples {
		t := assign[i]
		for _, id := range ex.Cat {
			if own.Owner(id, p) != t {
				need[key{id, t}] = struct{}{}
			}
		}
	}
	return len(need)
}

// ExactAssign solves the balanced min-communication assignment by
// exhaustive search. Exponential; only for tiny instances in tests, where
// it certifies the greedy CommAware heuristic.
func ExactAssign(b *data.Batch, p int, own Ownership) ([]int, int) {
	n := b.Size()
	capPer := (n + p - 1) / p
	best := make([]int, n)
	cur := make([]int, n)
	load := make([]int, p)
	bestCost := -1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := AssignmentCommCost(b, cur, p, own)
			if bestCost == -1 || c < bestCost {
				bestCost = c
				copy(best, cur)
			}
			return
		}
		for j := 0; j < p; j++ {
			if load[j] >= capPer {
				continue
			}
			cur[i] = j
			load[j]++
			rec(i + 1)
			load[j]--
		}
	}
	rec(0)
	return best, bestCost
}
