package core

import (
	"testing"

	"bagpipe/internal/data"
)

// benchSpec is a Criteo-Kaggle-shaped workload scaled to benchmark size.
func benchSpec() *data.Spec {
	return data.CriteoKaggle().Scaled(1000)
}

// BenchmarkCacheInsertEvict measures the trainer-side cache hot path: a
// window of inserts followed by TTL expiry of the whole window, the exact
// churn one oracle iteration inflicts.
func BenchmarkCacheInsertEvict(b *testing.B) {
	const window = 2048
	dim := 48
	rows := make([][]float32, window)
	for i := range rows {
		rows[i] = make([]float32, dim)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c := NewCache(dim)
		for i := 0; i < window; i++ {
			c.Insert(uint64(i), rows[i], i%8) // staggered TTLs
		}
		for iter := 0; iter < 8; iter++ {
			c.EvictExpired(iter)
		}
		if c.Len() != 0 {
			b.Fatal("cache not drained")
		}
	}
}

// BenchmarkCacheGet measures lookup throughput at steady occupancy.
func BenchmarkCacheGet(b *testing.B) {
	dim := 48
	c := NewCache(dim)
	const rows = 4096
	for i := 0; i < rows; i++ {
		c.Insert(uint64(i), make([]float32, dim), 1<<30)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, ok := c.Get(uint64(n % rows)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkOracleLookahead measures decision throughput of Algorithm 1 at
// the paper's default window (ℒ=200) on a Criteo-shaped stream — the rate
// the oracle must sustain to stay ahead of the trainers.
func BenchmarkOracleLookahead(b *testing.B) {
	spec := benchSpec()
	gen := data.NewGenerator(spec, 3)
	const batchSize = 256
	// Pre-generate the stream so the benchmark isolates oracle work from
	// synthetic data generation.
	const nBatches = 64
	batches := make([]*data.Batch, nBatches)
	for i := range batches {
		batches[i] = gen.Batch(i, batchSize)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		o := NewOracle(&SliceSource{Batches: batches}, 200, 4)
		for {
			if _, ok := o.Next(); !ok {
				break
			}
		}
	}
	b.ReportMetric(float64(nBatches), "decisions/op")
}
