package core

import (
	"testing"

	"bagpipe/internal/data"
	"bagpipe/internal/tensor"
)

// planOracle runs an oracle over a random stream and hands every decision
// to fn.
func planOracle(t *testing.T, seed uint64, batches, batchSize, lookahead, p int, fn func(*Decision)) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	var bs []*data.Batch
	for i := 0; i < batches; i++ {
		b := randomBatch(rng, batchSize, 3, 40)
		b.Index = i
		bs = append(bs, b)
	}
	o := NewOracle(&SliceSource{Batches: bs}, lookahead, p)
	for {
		d, ok := o.Next()
		if !ok {
			return
		}
		fn(d)
	}
}

func TestSplitPlansPartitionDecision(t *testing.T) {
	const p = 3
	planOracle(t, 9, 12, 8, 4, p, func(d *Decision) {
		plans := d.SplitPlans(p)
		// Prefetch sets partition d.Prefetch disjointly by hash owner.
		var gotPrefetch []uint64
		for tr, pl := range plans {
			if pl.Trainer != tr {
				t.Fatalf("plan %d labeled %d", tr, pl.Trainer)
			}
			for _, id := range pl.Prefetch {
				if OwnerOf(id, p) != tr {
					t.Fatalf("iter %d: trainer %d prefetches foreign id %d", d.Iter, tr, id)
				}
				gotPrefetch = append(gotPrefetch, id)
			}
			for id, ttl := range pl.OwnedTTL {
				if OwnerOf(id, p) != tr {
					t.Fatalf("iter %d: trainer %d owns foreign ttl id %d", d.Iter, tr, id)
				}
				if want := d.TTL[id]; ttl != want {
					t.Fatalf("iter %d id %d: plan ttl %d decision ttl %d", d.Iter, id, ttl, want)
				}
			}
			for _, id := range pl.Expiring {
				if d.TTL[id] != d.Iter {
					t.Fatalf("iter %d: id %d marked expiring with ttl %d", d.Iter, id, d.TTL[id])
				}
			}
		}
		sortU64(gotPrefetch)
		if len(gotPrefetch) != len(d.Prefetch) {
			t.Fatalf("iter %d: plans carry %d prefetches, decision %d", d.Iter, len(gotPrefetch), len(d.Prefetch))
		}
		for i, id := range gotPrefetch {
			if d.Prefetch[i] != id {
				t.Fatalf("iter %d: prefetch mismatch at %d", d.Iter, i)
			}
		}
		// TTL keys partition d.TTL.
		total := 0
		for _, pl := range plans {
			total += len(pl.OwnedTTL)
		}
		if total != len(d.TTL) {
			t.Fatalf("iter %d: plans cover %d ttl ids, decision %d", d.Iter, total, len(d.TTL))
		}
	})
}

func TestSplitPlansReplicaAndSyncRouting(t *testing.T) {
	const p = 2
	planOracle(t, 11, 10, 10, 3, p, func(d *Decision) {
		plans := d.SplitPlans(p)
		for id, users := range d.UsedBy {
			o := OwnerOf(id, p)
			got := plans[o].Users[id]
			if len(got) != len(users) {
				t.Fatalf("iter %d id %d: owner users %v want %v", d.Iter, id, got, users)
			}
			for _, u := range users {
				if u == o {
					continue
				}
				// Owner must push a replica to every non-owner user...
				found := false
				for _, rid := range plans[o].ReplicaOut[u] {
					if rid == id {
						found = true
					}
				}
				if !found {
					t.Fatalf("iter %d: owner %d does not push id %d to user %d", d.Iter, o, id, u)
				}
				// ...and the user must route its contribution back.
				if plans[u].Remote[id] != o {
					t.Fatalf("iter %d: user %d routes id %d to %d want %d", d.Iter, u, id, plans[u].Remote[id], o)
				}
				inFrom := false
				for _, fo := range plans[u].ReplicaFrom {
					if fo == o {
						inFrom = true
					}
				}
				if !inFrom {
					t.Fatalf("iter %d: user %d does not expect replicas from owner %d", d.Iter, u, o)
				}
			}
		}
		// No plan may expect replicas of rows it owns.
		for tr, pl := range plans {
			for id := range pl.Remote {
				if OwnerOf(id, p) == tr {
					t.Fatalf("iter %d: trainer %d lists owned id %d as remote", d.Iter, tr, id)
				}
			}
		}
	})
}

func TestCacheRemove(t *testing.T) {
	c := NewCache(2)
	c.Insert(1, []float32{1, 2}, 5)
	c.Insert(2, []float32{3, 4}, 5)
	e, _ := c.Peek(2)
	e.Dirty = true
	if _, dirty := c.Remove(1); dirty {
		t.Fatal("clean row reported dirty")
	}
	ev, dirty := c.Remove(2)
	if !dirty || ev.ID != 2 || ev.Row[0] != 3 {
		t.Fatalf("dirty removal wrong: %+v %v", ev, dirty)
	}
	if _, ok := c.Remove(2); ok {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("cache not empty: %d", c.Len())
	}
	_, _, evicted := c.Counters()
	if evicted != 2 {
		t.Fatalf("evicted counter %d want 2", evicted)
	}
}
