package core

import (
	"fmt"
	"sort"
)

// Entry is one cached embedding row with its oracle-assigned TTL.
type Entry struct {
	Row   []float32
	TTL   int  // last iteration that uses this row; evicted right after
	Dirty bool // updated since fetch; must be written back on eviction
}

// Eviction is a row leaving the cache that must be written back to the
// embedding servers (Bagpipe write-back happens on eviction, in the
// background cache-maintenance thread).
type Eviction struct {
	ID  uint64
	Row []float32
}

// Cache is the trainer-side embedding cache. Insertion and eviction are
// driven entirely by Oracle Cacher decisions — there is no reactive policy —
// which is what makes it a Belady-style perfect cache. The oracle
// guarantees the training path and the maintenance path touch disjoint IDs
// in any window, so no per-entry locking is needed (§4 of the paper,
// "Overlapping cache management with training"); Cache is therefore *not*
// internally synchronized.
type Cache struct {
	Dim int

	entries map[uint64]*Entry
	// freeEntries recycles Entry records across insert/evict cycles so the
	// steady-state fill→train→evict loop stops allocating one Entry per
	// insert. Entries are only ever handled under the cache owner's
	// synchronization (the cache itself is not internally synchronized), so
	// a plain slice suffices. Callers must not retain an *Entry across the
	// eviction of its id — after Remove/EvictExpired the record may be
	// reissued for a different row.
	freeEntries []*Entry
	peak        int
	hits        int64
	misses      int64
	evicted     int64
}

// NewCache returns an empty cache for width-dim rows.
func NewCache(dim int) *Cache {
	return &Cache{Dim: dim, entries: make(map[uint64]*Entry)}
}

// Insert adds (or replaces) a row with the given TTL. The row is stored by
// reference; the caller must not reuse the slice.
func (c *Cache) Insert(id uint64, row []float32, ttl int) {
	if len(row) != c.Dim {
		panic(fmt.Sprintf("core: cache insert row len %d != dim %d", len(row), c.Dim))
	}
	var e *Entry
	if n := len(c.freeEntries); n > 0 {
		e = c.freeEntries[n-1]
		c.freeEntries[n-1] = nil
		c.freeEntries = c.freeEntries[:n-1]
	} else {
		e = new(Entry)
	}
	e.Row, e.TTL, e.Dirty = row, ttl, false
	c.entries[id] = e
	if len(c.entries) > c.peak {
		c.peak = len(c.entries)
	}
}

// release recycles an evicted entry after its Row reference has been
// extracted.
func (c *Cache) release(e *Entry) {
	e.Row = nil
	c.freeEntries = append(c.freeEntries, e)
}

// Get returns the live entry for id. The second result reports presence;
// callers record hits/misses through it.
func (c *Cache) Get(id uint64) (*Entry, bool) {
	e, ok := c.entries[id]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// Peek is Get without touching the hit/miss counters.
func (c *Cache) Peek(id uint64) (*Entry, bool) {
	e, ok := c.entries[id]
	return e, ok
}

// UpdateTTL extends the lifetime of a cached row (the oracle's
// TTLUpdateRequests). It is a no-op if the row is absent.
func (c *Cache) UpdateTTL(id uint64, ttl int) {
	if e, ok := c.entries[id]; ok {
		e.TTL = ttl
	}
}

// EvictExpired removes every entry whose TTL is <= iter and returns the
// dirty ones for write-back, sorted by ID for deterministic write order.
func (c *Cache) EvictExpired(iter int) []Eviction {
	var out []Eviction
	for id, e := range c.entries {
		if e.TTL <= iter {
			if e.Dirty {
				out = append(out, Eviction{ID: id, Row: e.Row})
			}
			delete(c.entries, id)
			c.release(e)
			c.evicted++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Remove evicts one row immediately, returning its write-back if dirty.
// LRPP partitions evict per id as each row's last synchronization merge
// completes, rather than sweeping by TTL.
func (c *Cache) Remove(id uint64) (Eviction, bool) {
	e, ok := c.entries[id]
	if !ok {
		return Eviction{}, false
	}
	delete(c.entries, id)
	c.evicted++
	row, dirty := e.Row, e.Dirty
	c.release(e)
	if !dirty {
		return Eviction{}, false
	}
	return Eviction{ID: id, Row: row}, true
}

// Len returns the current number of cached rows.
func (c *Cache) Len() int { return len(c.entries) }

// PeakRows returns the high-water mark of cached rows.
func (c *Cache) PeakRows() int { return c.peak }

// SizeBytes returns the current cache footprint at 4 bytes per element.
func (c *Cache) SizeBytes() int64 { return int64(len(c.entries)) * int64(c.Dim) * 4 }

// PeakSizeBytes returns the peak cache footprint at 4 bytes per element.
func (c *Cache) PeakSizeBytes() int64 { return int64(c.peak) * int64(c.Dim) * 4 }

// HitRate returns hits/(hits+misses) over the cache's lifetime.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Counters returns (hits, misses, evictions).
func (c *Cache) Counters() (hits, misses, evicted int64) {
	return c.hits, c.misses, c.evicted
}

// IDs returns the cached IDs, sorted (checkpointing and tests).
func (c *Cache) IDs() []uint64 {
	ids := make([]uint64, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FIFOCache is the reactive baseline cache used in the eviction-policy
// ablation (§3.3 notes the parallel between LRPP and concurrent work on
// FIFO caches that admit only items reused within a window). It admits
// every fetched row and evicts in FIFO order at capacity. It has no
// consistency machinery — it exists to quantify how far a reactive policy
// falls short of the oracle's perfect cache on the same trace.
type FIFOCache struct {
	Cap int

	order   []uint64
	present map[uint64]struct{}
	hits    int64
	misses  int64
}

// NewFIFOCache returns a FIFO cache holding at most capacity rows.
func NewFIFOCache(capacity int) *FIFOCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: FIFO capacity %d", capacity))
	}
	return &FIFOCache{Cap: capacity, present: make(map[uint64]struct{})}
}

// Access records a reference to id, returning whether it hit. Misses admit
// the id, evicting the oldest entry at capacity.
func (f *FIFOCache) Access(id uint64) bool {
	if _, ok := f.present[id]; ok {
		f.hits++
		return true
	}
	f.misses++
	if len(f.order) >= f.Cap {
		old := f.order[0]
		f.order = f.order[1:]
		delete(f.present, old)
	}
	f.order = append(f.order, id)
	f.present[id] = struct{}{}
	return false
}

// HitRate returns hits/(hits+misses).
func (f *FIFOCache) HitRate() float64 {
	total := f.hits + f.misses
	if total == 0 {
		return 0
	}
	return float64(f.hits) / float64(total)
}

// Len returns the number of resident ids.
func (f *FIFOCache) Len() int { return len(f.order) }
