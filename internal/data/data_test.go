package data

import (
	"testing"
	"testing/quick"

	"bagpipe/internal/tensor"
)

// smallSpec is a fast test dataset with realistic skew.
func smallSpec() *Spec {
	return &Spec{
		Name:           "test",
		NumExamples:    1 << 20,
		NumCategorical: 8,
		NumNumeric:     4,
		TableSizes:     powerLawTableSizes(8, 100_000),
		EmbDim:         8,
		Dist:           NewHotTail(0.001, 0.9, 1.05),
	}
}

func TestSpecPresetsMatchTable1(t *testing.T) {
	cases := []struct {
		spec      *Spec
		cat, num  int
		totalRows int64
		dim       int
	}{
		{CriteoKaggle(), 26, 13, 33_760_000, 48},
		{Avazu(), 21, 1, 9_400_000, 48},
		{CriteoTerabyte(), 26, 13, 882_770_000, 16},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", c.spec.Name, err)
		}
		if c.spec.NumCategorical != c.cat || c.spec.NumNumeric != c.num {
			t.Fatalf("%s feature counts wrong", c.spec.Name)
		}
		if got := c.spec.TotalRows(); got != c.totalRows {
			t.Fatalf("%s rows=%d want %d", c.spec.Name, got, c.totalRows)
		}
		if c.spec.EmbDim != c.dim {
			t.Fatalf("%s dim=%d want %d", c.spec.Name, c.spec.EmbDim, c.dim)
		}
	}
	// Table-1 table sizes in bytes: Kaggle ≈6 GB, Avazu ≈1.7 GB, TB ≈56.5 GB
	// at fp32 dim 16 (the paper's 157 GB figure includes optimizer state).
	kag := float64(CriteoKaggle().TableSizeBytes()) / (1 << 30)
	if kag < 5.5 || kag > 6.5 {
		t.Fatalf("kaggle table bytes %.2f GB, want ≈6", kag)
	}
}

func TestTableOffsetsAreDisjoint(t *testing.T) {
	s := smallSpec()
	offs := s.TableOffsets()
	for i := 1; i < len(offs); i++ {
		if offs[i] != offs[i-1]+uint64(s.TableSizes[i-1]) {
			t.Fatalf("offset %d not contiguous", i)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	s := smallSpec()
	s.TableSizes = s.TableSizes[:3]
	if s.Validate() == nil {
		t.Fatal("mismatched table count not caught")
	}
	s2 := smallSpec()
	s2.EmbDim = 0
	if s2.Validate() == nil {
		t.Fatal("zero dim not caught")
	}
	s3 := smallSpec()
	s3.Dist = nil
	if s3.Validate() == nil {
		t.Fatal("nil dist not caught")
	}
}

func TestPowerLawTableSizesSumAndMin(t *testing.T) {
	sizes := powerLawTableSizes(26, 33_760_000)
	var sum int64
	for _, s := range sizes {
		if s < 3 {
			t.Fatalf("table smaller than 3: %d", s)
		}
		sum += s
	}
	if sum < 33_760_000 {
		t.Fatalf("sum=%d want >= 33760000", sum)
	}
	if sizes[0] < sizes[len(sizes)-1] {
		t.Fatal("sizes should be descending-ish (head table largest)")
	}
}

func TestBatchDeterminism(t *testing.T) {
	g1 := NewGenerator(smallSpec(), 7)
	g2 := NewGenerator(smallSpec(), 7)
	b1 := g1.Batch(5, 64)
	b2 := g2.Batch(5, 64)
	if len(b1.Examples) != len(b2.Examples) {
		t.Fatal("sizes differ")
	}
	for i := range b1.Examples {
		e1, e2 := b1.Examples[i], b2.Examples[i]
		if e1.Label != e2.Label {
			t.Fatalf("labels differ at %d", i)
		}
		for j := range e1.Cat {
			if e1.Cat[j] != e2.Cat[j] {
				t.Fatalf("cat ids differ at %d/%d", i, j)
			}
		}
		for j := range e1.Dense {
			if e1.Dense[j] != e2.Dense[j] {
				t.Fatalf("dense differ at %d/%d", i, j)
			}
		}
	}
}

func TestBatchesDifferAcrossIndices(t *testing.T) {
	g := NewGenerator(smallSpec(), 7)
	b1 := g.Batch(0, 32)
	b2 := g.Batch(1, 32)
	same := true
	for i := range b1.Examples {
		for j := range b1.Examples[i].Cat {
			if b1.Examples[i].Cat[j] != b2.Examples[i].Cat[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different batch indices should generate different data")
	}
}

func TestIDsWithinTableRanges(t *testing.T) {
	s := smallSpec()
	g := NewGenerator(s, 3)
	offs := s.TableOffsets()
	b := g.Batch(0, 256)
	for _, ex := range b.Examples {
		for c, id := range ex.Cat {
			lo := offs[c]
			hi := lo + uint64(s.TableSizes[c])
			if id < lo || id >= hi {
				t.Fatalf("feature %d id %d outside [%d,%d)", c, id, lo, hi)
			}
		}
	}
}

func TestUniqueIDsSortedAndDeduped(t *testing.T) {
	g := NewGenerator(smallSpec(), 3)
	b := g.Batch(0, 512)
	ids := b.UniqueIDs()
	if len(ids) == 0 || len(ids) > b.TotalAccesses() {
		t.Fatalf("bad unique count %d (accesses %d)", len(ids), b.TotalAccesses())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not strictly increasing")
		}
	}
}

func TestHotTailSkewMatchesFig3(t *testing.T) {
	// With hotShare=0.9 and hotFrac=0.001, ~90% of accesses must land in
	// the top ~0.1% of distinct embeddings, as in Figure 3.
	g := NewGenerator(smallSpec(), 11)
	p := Profile(g, 50, 512)
	cdf := p.CDFAt(0.01) // top 1% of distinct accessed ids
	if cdf < 0.85 {
		t.Fatalf("top-1%% CDF=%.3f, want >=0.85 (skew missing)", cdf)
	}
	tail := p.CDFAt(1.0)
	if tail < 0.999 {
		t.Fatalf("full CDF=%.3f, want 1", tail)
	}
}

func TestUniformHasNoSkew(t *testing.T) {
	s := smallSpec().WithDist(Uniform{})
	g := NewGenerator(s, 11)
	p := Profile(g, 30, 512)
	if cdf := p.CDFAt(0.01); cdf > 0.2 {
		t.Fatalf("uniform top-1%% CDF=%.3f, should be small", cdf)
	}
}

func TestZipfAlphaIncreasesSkew(t *testing.T) {
	low := NewGenerator(smallSpec().WithDist(NewZipf(1.0)), 5)
	high := NewGenerator(smallSpec().WithDist(NewZipf(3.0)), 5)
	pl := Profile(low, 20, 256)
	ph := Profile(high, 20, 256)
	// compare the share of accesses captured by a fixed number of top IDs
	// (one per table): higher alpha must concentrate more mass there.
	if ph.TopShare(8) <= pl.TopShare(8) {
		t.Fatalf("alpha=3 top-8 share (%.3f) should exceed alpha=1 (%.3f)",
			ph.TopShare(8), pl.TopShare(8))
	}
}

func TestZipfRankBounds(t *testing.T) {
	rng := tensor.NewRNG(1)
	if err := quick.Check(func(nRaw uint16, aRaw uint8) bool {
		n := int64(nRaw%1000) + 1
		alpha := 1 + float64(aRaw%40)/10
		k := zipfRank(rng, n, alpha)
		return k >= 0 && k < n
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHotTailSampleBounds(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := NewHotTail(0.001, 0.9, 1.05)
	for i := 0; i < 10000; i++ {
		k := d.Sample(rng, 1000)
		if k < 0 || k >= 1000 {
			t.Fatalf("sample %d out of range", k)
		}
	}
	// tiny tables must still work
	for i := 0; i < 100; i++ {
		if k := d.Sample(rng, 3); k < 0 || k >= 3 {
			t.Fatalf("tiny table sample %d out of range", k)
		}
	}
}

func TestStaticCacheHitRateDropsWithBatchSize(t *testing.T) {
	// Figure 4: as the batch grows, the unique-access hit rate of a static
	// top-0.1% cache falls.
	g := NewGenerator(smallSpec(), 13)
	p := Profile(g, 30, 1024)
	cached := p.TopIDs(p.NumDistinct() / 100) // top 1% of accessed ids
	small := StaticCacheHitRate(g, cached, 100, 10, 64)
	big := StaticCacheHitRate(g, cached, 100, 10, 2048)
	if big.HitRate >= small.HitRate {
		t.Fatalf("hit rate should fall with batch size: bs64=%.3f bs2048=%.3f",
			small.HitRate, big.HitRate)
	}
	if small.HitRate <= 0 || small.HitRate > 1 {
		t.Fatalf("hit rate out of range: %v", small.HitRate)
	}
}

func TestDriftingDegradesStaticCache(t *testing.T) {
	// §2.3: a cache frozen on day-1 popularity loses hit rate over time.
	base := NewHotTail(0.001, 0.9, 1.05)
	spec := smallSpec().WithDist(NewDrifting(base, 2000, 37))
	g := NewGenerator(spec, 17)
	p := Profile(g, 20, 256)
	cached := p.TopIDs(p.NumDistinct() / 50)
	early := StaticCacheHitRate(g, cached, 0, 10, 256)
	late := StaticCacheHitRate(g, cached, 500, 10, 256)
	if late.HitRate >= early.HitRate {
		t.Fatalf("drift should degrade the static cache: early=%.3f late=%.3f",
			early.HitRate, late.HitRate)
	}
}

func TestScaledSpec(t *testing.T) {
	s := CriteoKaggle().Scaled(1000)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalRows() >= CriteoKaggle().TotalRows() {
		t.Fatal("scaling should shrink tables")
	}
	if s.NumCategorical != 26 {
		t.Fatal("scaling must preserve feature layout")
	}
}

func TestStreamProducesOrderedBatches(t *testing.T) {
	g := NewGenerator(smallSpec(), 23)
	i := 3
	for b := range g.Stream(3, 5, 16) {
		if b.Index != i {
			t.Fatalf("got batch %d want %d", b.Index, i)
		}
		if b.Size() != 16 {
			t.Fatalf("batch size %d", b.Size())
		}
		i++
	}
	if i != 8 {
		t.Fatalf("stream produced %d batches, want 5", i-3)
	}
}

func TestLabelsAreLearnableSignal(t *testing.T) {
	// the hidden model must produce a non-degenerate label distribution
	g := NewGenerator(smallSpec(), 29)
	b := g.Batch(0, 2048)
	var pos int
	for _, ex := range b.Examples {
		if ex.Label == 1 {
			pos++
		}
	}
	frac := float64(pos) / float64(b.Size())
	if frac < 0.05 || frac > 0.95 {
		t.Fatalf("degenerate label distribution: %.3f positive", frac)
	}
}

func TestNumBatches(t *testing.T) {
	g := NewGenerator(smallSpec(), 1)
	if n := g.NumBatches(1024); n != (1<<20)/1024 {
		t.Fatalf("NumBatches=%d", n)
	}
}
