package data

import (
	"sort"
)

// AccessProfile summarizes embedding-access frequencies over a sampled
// stretch of a dataset, supporting the paper's Figure 3 (access CDF) and
// Figure 4 (static-cache hit rate vs batch size) analyses.
type AccessProfile struct {
	// Counts holds per-ID access counts for every ID seen.
	Counts map[uint64]int64
	// Total is the total number of accesses recorded.
	Total int64
	// sorted counts, descending; built lazily.
	sorted []int64
	// hot IDs in descending popularity; built lazily.
	ranked []uint64
}

// Profile scans numBatches batches of batchSize from g and tallies accesses.
func Profile(g *Generator, numBatches, batchSize int) *AccessProfile {
	p := &AccessProfile{Counts: make(map[uint64]int64)}
	for i := 0; i < numBatches; i++ {
		b := g.Batch(i, batchSize)
		for _, ex := range b.Examples {
			for _, id := range ex.Cat {
				p.Counts[id]++
				p.Total++
			}
		}
	}
	return p
}

func (p *AccessProfile) build() {
	if p.sorted != nil {
		return
	}
	type kv struct {
		id uint64
		n  int64
	}
	kvs := make([]kv, 0, len(p.Counts))
	for id, n := range p.Counts {
		kvs = append(kvs, kv{id, n})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].n != kvs[j].n {
			return kvs[i].n > kvs[j].n
		}
		return kvs[i].id < kvs[j].id
	})
	p.sorted = make([]int64, len(kvs))
	p.ranked = make([]uint64, len(kvs))
	for i, e := range kvs {
		p.sorted[i] = e.n
		p.ranked[i] = e.id
	}
}

// CDFAt returns the fraction of total accesses captured by the most popular
// `frac` fraction of *distinct accessed* embeddings (the x-axis of Fig 3).
func (p *AccessProfile) CDFAt(frac float64) float64 {
	p.build()
	if p.Total == 0 {
		return 0
	}
	k := int(frac * float64(len(p.sorted)))
	if k < 1 {
		k = 1
	}
	if k > len(p.sorted) {
		k = len(p.sorted)
	}
	var captured int64
	for _, n := range p.sorted[:k] {
		captured += n
	}
	return float64(captured) / float64(p.Total)
}

// TopShare returns the fraction of total accesses captured by the k most
// popular embeddings (absolute k, unlike CDFAt's fraction of distinct IDs).
func (p *AccessProfile) TopShare(k int) float64 {
	p.build()
	if p.Total == 0 {
		return 0
	}
	if k > len(p.sorted) {
		k = len(p.sorted)
	}
	var captured int64
	for _, n := range p.sorted[:k] {
		captured += n
	}
	return float64(captured) / float64(p.Total)
}

// TopIDs returns the k most popular IDs (the static cache FAE-style systems
// would pin).
func (p *AccessProfile) TopIDs(k int) map[uint64]struct{} {
	p.build()
	if k > len(p.ranked) {
		k = len(p.ranked)
	}
	set := make(map[uint64]struct{}, k)
	for _, id := range p.ranked[:k] {
		set[id] = struct{}{}
	}
	return set
}

// NumDistinct returns the number of distinct embeddings accessed.
func (p *AccessProfile) NumDistinct() int { return len(p.Counts) }

// StaticCacheHitStats reports, for a fixed cached set, the per-batch ratio
// of unique embeddings served from the cache to total unique embeddings
// needed — the Figure 4 metric (hit rate over *unique* accesses).
type StaticCacheHitStats struct {
	BatchSize      int
	MeanUniqueIDs  float64
	MeanUniqueHits float64
	HitRate        float64
}

// StaticCacheHitRate measures the unique-access hit rate of caching the
// fixed `cached` set, over numBatches batches of batchSize starting at
// batch `start`.
func StaticCacheHitRate(g *Generator, cached map[uint64]struct{}, start, numBatches, batchSize int) StaticCacheHitStats {
	var uniqTotal, hitTotal int64
	for i := 0; i < numBatches; i++ {
		b := g.Batch(start+i, batchSize)
		ids := b.UniqueIDs()
		uniqTotal += int64(len(ids))
		for _, id := range ids {
			if _, ok := cached[id]; ok {
				hitTotal++
			}
		}
	}
	st := StaticCacheHitStats{
		BatchSize:      batchSize,
		MeanUniqueIDs:  float64(uniqTotal) / float64(numBatches),
		MeanUniqueHits: float64(hitTotal) / float64(numBatches),
	}
	if uniqTotal > 0 {
		st.HitRate = float64(hitTotal) / float64(uniqTotal)
	}
	return st
}
