package data

import "bagpipe/internal/tensor"

// Serving-side query generation. Training walks batches; an inference
// front end receives a stream of single example-shaped queries per client,
// with the popularity profile of live traffic rather than the log being
// replayed: Zipfian head concentration, or a hot set that drifts while the
// run is in flight (the §2.3 day-over-day shift). Each QueryGen is one
// closed-loop client's deterministic stream — (spec, seed, client) fully
// determines the queries, so a failed run replays exactly — and each
// client owns its Distribution instance, so the stateful Drifting clock
// advances per client, not globally.

// ServingDist returns a fresh access distribution for one serving client.
// Stateful distributions (drift) must not be shared across clients, so the
// caller invokes this once per client. Names: "zipf" (static head, alpha
// 1.1), "drift" (hot set rotating mid-run), "hottail" (the training
// default's profile), "uniform" (degenerate, no skew).
func ServingDist(name string) (Distribution, bool) {
	switch name {
	case "zipf":
		return NewZipf(1.1), true
	case "drift":
		// A tight hot set that moves fast enough to churn a serving cache
		// within one CLI run: one step every 2048 draws.
		return NewDrifting(NewHotTail(0.001, 0.9, 1.05), 2048, 97), true
	case "hottail":
		return NewHotTail(0.001, 0.9, 1.05), true
	case "uniform":
		return Uniform{}, true
	}
	return nil, false
}

// QueryGen produces one client's inference query stream over a Spec's
// keyspace. Next fills a caller-owned Example in place (no Label — queries
// are unlabeled), reusing its Dense/Cat storage, so the steady-state
// serving loop draws queries without allocating.
type QueryGen struct {
	spec    *Spec
	offsets []uint64
	dist    Distribution
	rng     *tensor.RNG
}

// NewQueryGen builds client client's stream over spec with the given
// distribution (from ServingDist; pass nil to use the spec's own training
// distribution — only safe when that distribution is stateless).
func NewQueryGen(spec *Spec, seed uint64, client int, dist Distribution) *QueryGen {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if dist == nil {
		dist = spec.Dist
	}
	return &QueryGen{
		spec:    spec,
		offsets: spec.TableOffsets(),
		dist:    dist,
		rng:     tensor.NewRNG(seed ^ (uint64(client)+1)*0xD1B54A32D192ED03),
	}
}

// Next fills ex with the stream's next query, reusing its storage.
func (q *QueryGen) Next(ex *Example) {
	s := q.spec
	if cap(ex.Dense) < s.NumNumeric {
		ex.Dense = make([]float32, s.NumNumeric)
	}
	ex.Dense = ex.Dense[:s.NumNumeric]
	if cap(ex.Cat) < s.NumCategorical {
		ex.Cat = make([]uint64, s.NumCategorical)
	}
	ex.Cat = ex.Cat[:s.NumCategorical]
	for d := range ex.Dense {
		ex.Dense[d] = q.rng.Float32()*2 - 1
	}
	for c := range ex.Cat {
		row := q.dist.Sample(q.rng, s.TableSizes[c])
		ex.Cat[c] = q.offsets[c] + uint64(row)
	}
	ex.Label = 0
}
