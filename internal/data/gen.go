package data

import (
	"fmt"
	"math"
	"sort"

	"bagpipe/internal/tensor"
)

// Example is one training example: numeric features, one global embedding
// ID per categorical feature, and a binary click label.
type Example struct {
	Dense []float32
	Cat   []uint64
	Label float32
}

// Batch is a contiguous group of examples with its position in the stream.
type Batch struct {
	Index    int // iteration number this batch trains
	Examples []Example
}

// Size returns the number of examples in the batch.
func (b *Batch) Size() int { return len(b.Examples) }

// UniqueIDs returns the sorted set of distinct embedding IDs the batch
// accesses. Fetching only unique IDs per batch is the baseline optimization
// every system in the paper applies (§2.3).
func (b *Batch) UniqueIDs() []uint64 {
	seen := make(map[uint64]struct{}, len(b.Examples)*4)
	for _, ex := range b.Examples {
		for _, id := range ex.Cat {
			seen[id] = struct{}{}
		}
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TotalAccesses returns the number of (non-unique) embedding accesses.
func (b *Batch) TotalAccesses() int {
	n := 0
	for _, ex := range b.Examples {
		n += len(ex.Cat)
	}
	return n
}

// Generator deterministically produces the batch stream for a Spec. It is
// safe to create multiple generators over the same spec+seed (the Oracle
// Cacher and the data-processor pipeline each walk their own copy).
type Generator struct {
	Spec    *Spec
	Seed    uint64
	offsets []uint64

	// hidden ground-truth model so labels are learnable: a per-ID latent
	// weight (hash-derived) plus a dense-feature weight vector.
	denseW []float32
}

// NewGenerator returns a generator for spec with the given seed.
func NewGenerator(spec *Spec, seed uint64) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{Spec: spec, Seed: seed, offsets: spec.TableOffsets()}
	rng := tensor.NewRNG(seed ^ 0xABCDE)
	g.denseW = make([]float32, spec.NumNumeric)
	for i := range g.denseW {
		g.denseW[i] = rng.Float32()*2 - 1
	}
	return g
}

// latentWeight derives a stable per-embedding-ID contribution to the label
// logit, so categorical features carry learnable signal.
func latentWeight(id uint64) float32 {
	h := id * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	// map to roughly [-0.5, 0.5]
	return float32(int64(h%1024)-512) / 1024
}

// Batch generates batch i with batchSize examples. The result depends only
// on (spec, seed, i, batchSize): regeneration yields identical data.
func (g *Generator) Batch(i, batchSize int) *Batch {
	if i < 0 || batchSize <= 0 {
		panic(fmt.Sprintf("data: bad batch request (%d, %d)", i, batchSize))
	}
	rng := tensor.NewRNG(g.Seed ^ (uint64(i)+1)*0x5851F42D4C957F2D)
	if d, ok := g.Spec.Dist.(*Drifting); ok {
		d.SetClock(int64(i) * int64(batchSize) * int64(g.Spec.NumCategorical))
	}
	b := &Batch{Index: i, Examples: make([]Example, batchSize)}
	for e := range b.Examples {
		ex := Example{
			Dense: make([]float32, g.Spec.NumNumeric),
			Cat:   make([]uint64, g.Spec.NumCategorical),
		}
		logit := float32(0)
		for d := range ex.Dense {
			v := rng.Float32()*2 - 1
			ex.Dense[d] = v
			logit += v * g.denseW[d]
		}
		for c := range ex.Cat {
			row := g.Spec.Dist.Sample(rng, g.Spec.TableSizes[c])
			id := g.offsets[c] + uint64(row)
			ex.Cat[c] = id
			logit += latentWeight(id)
		}
		// Click labels follow the hidden model with noise; base CTR is kept
		// low-ish like real click logs.
		p := 1 / (1 + expNeg(logit-0.5))
		if rng.Float32() < p {
			ex.Label = 1
		}
		b.Examples[e] = ex
	}
	return b
}

func expNeg(x float32) float32 {
	return float32(math.Exp(-float64(x)))
}

// Stream returns a channel producing batches [start, start+count) of the
// given size, for pipeline-style consumption. The channel is closed when
// the range is exhausted. Generation happens in a dedicated goroutine,
// playing the role of the paper's Data Processors.
func (g *Generator) Stream(start, count, batchSize int) <-chan *Batch {
	ch := make(chan *Batch, 4)
	go func() {
		defer close(ch)
		for i := start; i < start+count; i++ {
			ch <- g.Batch(i, batchSize)
		}
	}()
	return ch
}

// NumBatches returns how many full batches of size batchSize the dataset
// holds.
func (g *Generator) NumBatches(batchSize int) int64 {
	return g.Spec.NumExamples / int64(batchSize)
}
