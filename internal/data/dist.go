package data

import (
	"fmt"
	"math"

	"bagpipe/internal/tensor"
)

// HotTail is the default access distribution: with probability HotShare the
// draw comes from the "hot" head of the table (the first HotFrac fraction
// of rows), with a Zipf-like rank profile inside the head; otherwise the
// draw is uniform over the cold tail. This directly reproduces the paper's
// §2.3 observation ("90% of accesses come from just 0.1% of embeddings")
// and is the knob the Figure 18 skew-change experiment turns.
type HotTail struct {
	HotFrac  float64 // fraction of rows considered hot (e.g. 0.001)
	HotShare float64 // probability an access goes to the hot set (e.g. 0.90)
	Alpha    float64 // Zipf exponent within the hot set (>= 1)
}

// NewHotTail returns a HotTail distribution.
func NewHotTail(hotFrac, hotShare, alpha float64) *HotTail {
	if hotFrac <= 0 || hotFrac > 1 {
		panic(fmt.Sprintf("data: HotTail hotFrac %v out of (0,1]", hotFrac))
	}
	if hotShare < 0 || hotShare > 1 {
		panic(fmt.Sprintf("data: HotTail hotShare %v out of [0,1]", hotShare))
	}
	return &HotTail{HotFrac: hotFrac, HotShare: hotShare, Alpha: alpha}
}

// Name implements Distribution.
func (h *HotTail) Name() string {
	return fmt.Sprintf("hottail(f=%.4g,s=%.3g,a=%.3g)", h.HotFrac, h.HotShare, h.Alpha)
}

// Sample implements Distribution.
func (h *HotTail) Sample(rng *tensor.RNG, tableSize int64) int64 {
	hot := int64(float64(tableSize) * h.HotFrac)
	if hot < 1 {
		hot = 1
	}
	if hot >= tableSize {
		return zipfRank(rng, tableSize, h.Alpha)
	}
	if rng.Float64() < h.HotShare {
		return zipfRank(rng, hot, h.Alpha)
	}
	// cold tail: uniform over [hot, tableSize)
	return hot + int64(rng.Float64()*float64(tableSize-hot))
}

// Zipf draws ranks with probability proportional to rank^-Alpha over the
// whole table (the Figure 19 sweep varies Alpha from 1 to 5).
type Zipf struct {
	Alpha float64
}

// NewZipf returns a Zipf distribution with exponent alpha (>= 1).
func NewZipf(alpha float64) *Zipf {
	if alpha < 1 {
		panic(fmt.Sprintf("data: Zipf alpha %v < 1", alpha))
	}
	return &Zipf{Alpha: alpha}
}

// Name implements Distribution.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(a=%.3g)", z.Alpha) }

// Sample implements Distribution.
func (z *Zipf) Sample(rng *tensor.RNG, tableSize int64) int64 {
	return zipfRank(rng, tableSize, z.Alpha)
}

// zipfRank draws a rank in [0, n) with P(k) ∝ (k+1)^-alpha using inverse
// transform sampling on the continuous bounded Pareto approximation. For
// alpha very close to 1 the CDF degenerates to log-uniform, which we handle
// separately. Accuracy of the discrete tail probabilities is not critical
// here; the head concentration — which drives cache behaviour — is correct.
func zipfRank(rng *tensor.RNG, n int64, alpha float64) int64 {
	if n <= 1 {
		return 0
	}
	u := rng.Float64()
	var x float64
	nf := float64(n)
	if math.Abs(alpha-1) < 1e-9 {
		// CDF(x) = ln(x)/ln(n) for x in [1, n]
		x = math.Exp(u * math.Log(nf))
	} else {
		// bounded Pareto inverse CDF on [1, n]
		a1 := 1 - alpha
		x = math.Pow(u*(math.Pow(nf, a1)-1)+1, 1/a1)
	}
	k := int64(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// Uniform draws rows uniformly (no skew); the degenerate case of Figure 18.
type Uniform struct{}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Sample implements Distribution.
func (Uniform) Sample(rng *tensor.RNG, tableSize int64) int64 {
	return int64(rng.Float64() * float64(tableSize))
}

// Drifting wraps a HotTail distribution whose hot set rotates through the
// table over time, modelling the day-over-day popularity drift the paper
// measures in §2.3 (static caches degrade from 91% to 82% hit rate). The
// rotation position advances every Period samples drawn.
type Drifting struct {
	Base   *HotTail
	Period int64 // samples per rotation step
	Step   int64 // rows the hot set advances per period

	drawn int64
}

// NewDrifting returns a drifting-hot-set distribution.
func NewDrifting(base *HotTail, period, step int64) *Drifting {
	if period <= 0 {
		panic("data: Drifting period must be positive")
	}
	return &Drifting{Base: base, Period: period, Step: step}
}

// Name implements Distribution.
func (d *Drifting) Name() string {
	return fmt.Sprintf("drifting(%s,period=%d,step=%d)", d.Base.Name(), d.Period, d.Step)
}

// Sample implements Distribution. Unlike the stateless distributions,
// Drifting advances an internal clock; generators using it remain
// deterministic because batches are always generated in order within one
// walker (see Generator.Batch, which re-seeds per batch and resets drift by
// batch index).
func (d *Drifting) Sample(rng *tensor.RNG, tableSize int64) int64 {
	d.drawn++
	shift := (d.drawn / d.Period) * d.Step
	base := d.Base.Sample(rng, tableSize)
	return (base + shift) % tableSize
}

// SetClock positions the drift clock; Generator uses this to keep batch
// generation a pure function of the batch index.
func (d *Drifting) SetClock(samples int64) { d.drawn = samples }
