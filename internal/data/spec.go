// Package data provides the synthetic click-log workloads the reproduction
// trains and measures on. The real Criteo Kaggle, Avazu, and Criteo
// Terabyte datasets are not redistributable (and Terabyte is 157 GB of
// embeddings alone, per Table 1 of the paper), so this package generates
// deterministic synthetic streams with the same *shape*: per-dataset
// example counts, categorical/numeric feature counts, total embedding-table
// rows, embedding dimensions, and — critically for Bagpipe — the heavily
// skewed, long-tailed embedding access distribution of Figure 3 (~90% of
// accesses from ~0.1% of embeddings).
//
// Generation is stateless: batch i is a pure function of (spec, seed, i),
// so the Oracle Cacher's lookahead and the trainers can both walk the same
// stream independently, exactly like re-reading a dataset from storage.
package data

import (
	"fmt"

	"bagpipe/internal/tensor"
)

// Spec describes a dataset: its size, feature layout, and embedding tables.
type Spec struct {
	Name           string
	NumExamples    int64
	NumCategorical int
	NumNumeric     int
	TableSizes     []int64 // rows per categorical feature's embedding table
	EmbDim         int     // embedding vector width
	Dist           Distribution
}

// TotalRows returns the total number of embedding rows across all tables.
func (s *Spec) TotalRows() int64 {
	var n int64
	for _, t := range s.TableSizes {
		n += t
	}
	return n
}

// TableSizeBytes returns the embedding-table footprint in bytes at 4 bytes
// per element (float32), the figure Table 1 of the paper reports.
func (s *Spec) TableSizeBytes() int64 {
	return s.TotalRows() * int64(s.EmbDim) * 4
}

// TableOffsets returns the global-ID offset of each table: the ID of table
// t row r is TableOffsets()[t] + r. Global IDs give the Oracle Cacher and
// the embedding servers a single flat keyspace.
func (s *Spec) TableOffsets() []uint64 {
	offs := make([]uint64, len(s.TableSizes))
	var acc uint64
	for i, t := range s.TableSizes {
		offs[i] = acc
		acc += uint64(t)
	}
	return offs
}

// Validate reports configuration errors.
func (s *Spec) Validate() error {
	if s.NumCategorical != len(s.TableSizes) {
		return fmt.Errorf("data: %s has %d categorical features but %d table sizes",
			s.Name, s.NumCategorical, len(s.TableSizes))
	}
	if s.EmbDim <= 0 {
		return fmt.Errorf("data: %s has non-positive embedding dim %d", s.Name, s.EmbDim)
	}
	if s.Dist == nil {
		return fmt.Errorf("data: %s has no access distribution", s.Name)
	}
	for i, t := range s.TableSizes {
		if t <= 0 {
			return fmt.Errorf("data: %s table %d has non-positive size %d", s.Name, i, t)
		}
	}
	return nil
}

// powerLawTableSizes splits totalRows across numTables with a power-law
// size profile (a few huge tables, many small ones), which matches the
// published Criteo table-size histograms. Deterministic in its arguments.
func powerLawTableSizes(numTables int, totalRows int64) []int64 {
	weights := make([]float64, numTables)
	var sum float64
	for i := range weights {
		// rank^-1.4 profile: table 0 dominates, tail tables are tiny.
		w := 1.0
		for j := 0; j < i; j++ {
			w *= 0.72
		}
		if w < 1e-6 {
			w = 1e-6
		}
		weights[i] = w
		sum += w
	}
	sizes := make([]int64, numTables)
	var assigned int64
	for i, w := range weights {
		sz := int64(float64(totalRows) * w / sum)
		if sz < 3 { // paper: tables can be as small as 3 rows
			sz = 3
		}
		sizes[i] = sz
		assigned += sz
	}
	// put any rounding remainder in the largest table
	if diff := totalRows - assigned; diff > 0 {
		sizes[0] += diff
	}
	return sizes
}

// CriteoKaggle returns the Criteo-Kaggle-shaped spec from Table 1:
// 39.2M examples, 26 categorical + 13 numeric features, 33.76M embedding
// rows at dim 48 (≈6 GB of tables).
func CriteoKaggle() *Spec {
	return &Spec{
		Name:           "criteo-kaggle",
		NumExamples:    39_200_000,
		NumCategorical: 26,
		NumNumeric:     13,
		TableSizes:     powerLawTableSizes(26, 33_760_000),
		EmbDim:         48,
		Dist:           NewHotTail(0.001, 0.90, 1.05),
	}
}

// Avazu returns the Avazu-shaped spec from Table 1: 40.4M examples,
// 21 categorical + 1 numeric feature, 9.4M rows at dim 48 (≈1.7 GB).
func Avazu() *Spec {
	return &Spec{
		Name:           "avazu",
		NumExamples:    40_400_000,
		NumCategorical: 21,
		NumNumeric:     1,
		TableSizes:     powerLawTableSizes(21, 9_400_000),
		EmbDim:         48,
		Dist:           NewHotTail(0.001, 0.91, 1.05),
	}
}

// CriteoTerabyte returns the Criteo-Terabyte-shaped spec from Table 1:
// 4.37B examples, 26 categorical + 13 numeric features, 882.77M rows at
// dim 16 (≈157 GB). Never materialized; always streamed.
func CriteoTerabyte() *Spec {
	return &Spec{
		Name:           "criteo-terabyte",
		NumExamples:    4_370_000_000,
		NumCategorical: 26,
		NumNumeric:     13,
		TableSizes:     powerLawTableSizes(26, 882_770_000),
		EmbDim:         16,
		Dist:           NewHotTail(0.001, 0.92, 1.05),
	}
}

// Alibaba returns an Alibaba-user-behavior-shaped spec. The paper uses this
// dataset only in the Figure 4 cache-hit study; the shape here (4 features,
// user/item/category/behavior) follows the public dataset's schema.
func Alibaba() *Spec {
	return &Spec{
		Name:           "alibaba",
		NumExamples:    100_000_000,
		NumCategorical: 4,
		NumNumeric:     1,
		TableSizes:     []int64{980_000, 4_160_000, 9_400, 4},
		EmbDim:         16,
		Dist:           NewHotTail(0.002, 0.70, 1.02),
	}
}

// Scaled returns a copy of s with example count and table sizes divided by
// factor (minimum 3 rows per table), for functional-training runs where the
// full-size tables would not fit or would be needlessly slow. The access
// distribution is preserved.
func (s *Spec) Scaled(factor int64) *Spec {
	if factor <= 0 {
		panic("data: non-positive scale factor")
	}
	c := *s
	c.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	c.NumExamples = max64(s.NumExamples/factor, 1)
	c.TableSizes = make([]int64, len(s.TableSizes))
	for i, t := range s.TableSizes {
		c.TableSizes[i] = max64(t/factor, 3)
	}
	return &c
}

// WithDist returns a copy of s using dist for categorical draws.
func (s *Spec) WithDist(dist Distribution) *Spec {
	c := *s
	c.Dist = dist
	return &c
}

// WithEmbDim returns a copy of s with the given embedding dimension.
// Models choose their own embedding width (Table 2), so specs are adjusted
// to the model being trained.
func (s *Spec) WithEmbDim(dim int) *Spec {
	c := *s
	c.EmbDim = dim
	return &c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Distribution draws a row index within an embedding table, controlling the
// access skew.
type Distribution interface {
	// Sample returns a row in [0, tableSize).
	Sample(rng *tensor.RNG, tableSize int64) int64
	// Name identifies the distribution in experiment output.
	Name() string
}
