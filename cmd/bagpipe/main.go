// Command bagpipe runs an end-to-end Bagpipe training experiment: the
// Oracle Cacher, prefetch pool, TTL cache, data-parallel trainer ranks,
// and background write-back maintenance, all against a sharded embedding
// server reached through a (optionally simulated-network) transport.
//
// Examples:
//
//	bagpipe -dataset criteo-kaggle -scale 10000 -model wd -batches 50
//	bagpipe -dataset avazu -scale 5000 -model dlrm -lookahead 64 -trainers 4
//	bagpipe -transport simnet -net-latency 2ms -net-bw 1e9 -batches 40
//	bagpipe -verify -batches 30   # differentially test against the baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/train"
	"bagpipe/internal/transport"
)

func main() {
	var (
		dataset  = flag.String("dataset", "criteo-kaggle", "dataset shape: criteo-kaggle, avazu, criteo-terabyte, alibaba")
		scale    = flag.Int64("scale", 10_000, "divide dataset example count and table sizes by this factor")
		modelFl  = flag.String("model", "wd", "model: dlrm, wd, dc, deepfm")
		optFl    = flag.String("opt", "sgd", "optimizer: sgd, momentum, adagrad, adam")
		lr       = flag.Float64("lr", 0.05, "learning rate")
		batchSz  = flag.Int("batch-size", 256, "examples per batch")
		batches  = flag.Int("batches", 50, "number of iterations to train")
		lookahd  = flag.Int("lookahead", 32, "oracle lookahead window in batches (paper default 200)")
		trainers = flag.Int("trainers", 2, "data-parallel trainer ranks")
		workers  = flag.Int("prefetch-workers", 2, "prefetch worker pool size")
		shards   = flag.Int("shards", 4, "embedding server shard count")
		embDim   = flag.Int("emb-dim", 0, "override embedding dimension (0 = dataset default)")
		seed     = flag.Uint64("seed", 42, "experiment seed")
		transpFl = flag.String("transport", "inproc", "transport to embedding servers: inproc, simnet")
		netLat   = flag.Duration("net-latency", time.Millisecond, "simnet: per-call round-trip latency")
		netBW    = flag.Float64("net-bw", 1e9, "simnet: link bandwidth in bytes/sec (0 = infinite)")
		verify   = flag.Bool("verify", false, "also run the no-cache baseline and compare final embedding state bit-for-bit")
		baseline = flag.Bool("baseline", false, "run only the no-cache baseline engine")
	)
	flag.Parse()

	spec, err := specByName(*dataset)
	if err != nil {
		fatal(err)
	}
	if *scale > 1 {
		spec = spec.Scaled(*scale)
	}
	if *embDim > 0 {
		spec = spec.WithEmbDim(*embDim)
	}

	cfg := train.Config{
		Spec:            spec,
		Seed:            *seed,
		Model:           *modelFl,
		Optimizer:       *optFl,
		LR:              float32(*lr),
		BatchSize:       *batchSz,
		NumBatches:      *batches,
		LookAhead:       *lookahd,
		NumTrainers:     *trainers,
		PrefetchWorkers: *workers,
	}

	fmt.Printf("dataset %s  (%d categorical / %d numeric, %d rows, dim %d)\n",
		spec.Name, spec.NumCategorical, spec.NumNumeric, spec.TotalRows(), spec.EmbDim)
	fmt.Printf("model %s  opt %s  lr %g  batch %d x %d iters  lookahead %d  trainers %d  shards %d  transport %s\n\n",
		*modelFl, *optFl, *lr, *batchSz, *batches, *lookahd, *trainers, *shards, *transpFl)

	if *netLat < 0 || *netBW < 0 {
		fatal(fmt.Errorf("negative -net-latency %v or -net-bw %g", *netLat, *netBW))
	}
	newTransport := func(srv *embed.Server) transport.Transport {
		switch *transpFl {
		case "inproc":
			return transport.NewInProcess(srv)
		case "simnet":
			return transport.NewSimNet(srv, *netLat, *netBW)
		}
		fatal(fmt.Errorf("unknown transport %q", *transpFl))
		return nil
	}

	if *baseline {
		srv := embed.NewServer(*shards, spec.EmbDim, *seed^0xE, 0.05)
		res, err := train.RunBaseline(cfg, newTransport(srv))
		if err != nil {
			fatal(err)
		}
		report(res)
		return
	}

	srvPipe := embed.NewServer(*shards, spec.EmbDim, *seed^0xE, 0.05)
	res, err := train.RunPipelined(cfg, newTransport(srvPipe))
	if err != nil {
		fatal(err)
	}
	report(res)

	if *verify {
		fmt.Println("\n--- verify: rerunning with the no-cache fetch-per-batch baseline ---")
		srvBase := embed.NewServer(*shards, spec.EmbDim, *seed^0xE, 0.05)
		baseRes, err := train.RunBaseline(cfg, newTransport(srvBase))
		if err != nil {
			fatal(err)
		}
		report(baseRes)
		diff := embed.Diff(srvBase, srvPipe)
		if len(diff) != 0 {
			fatal(fmt.Errorf("FAIL: embedding state differs at %d ids (first %v)", len(diff), diff[0]))
		}
		fmt.Printf("\nPASS: pipelined and baseline embedding state bit-identical across %d materialized rows\n",
			len(srvPipe.MaterializedIDs()))
		if res.Elapsed < baseRes.Elapsed {
			fmt.Printf("pipelined speedup over baseline: %.2fx\n",
				baseRes.Elapsed.Seconds()/res.Elapsed.Seconds())
		}
	}
}

// specByName resolves the dataset flag to a Table 1 shape.
func specByName(name string) (*data.Spec, error) {
	switch name {
	case "criteo-kaggle":
		return data.CriteoKaggle(), nil
	case "avazu":
		return data.Avazu(), nil
	case "criteo-terabyte":
		return data.CriteoTerabyte(), nil
	case "alibaba":
		return data.Alibaba(), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// report prints one engine's result block.
func report(r *train.Result) {
	fmt.Printf("[%s] %d iters, %d examples in %v  (%.0f ex/s)\n",
		r.Engine, r.Iters, r.Examples, r.Elapsed.Round(time.Millisecond), r.Throughput())
	fmt.Printf("  loss: first %.4f  last %.4f  avg %.4f\n", r.FirstLoss, r.LastLoss, r.AvgLoss)
	if r.Engine == "pipelined" {
		fmt.Printf("  cache: hit-rate %.1f%%  (%d hits / %d unique ids), peak %d rows, %d evictions\n",
			100*r.HitRate(), r.CachedHits, r.UniqueIDs, r.PeakCache, r.Evicted)
		fmt.Printf("  overlap: prefetch||train observed %d times, writeback||train %d times\n",
			r.OverlapPrefetchTrain, r.OverlapMaintTrain)
	}
	st := r.Transport
	fmt.Printf("  traffic: fetched %d rows (%.2f MB) in %d calls, wrote %d rows (%.2f MB) in %d calls\n",
		st.RowsFetched, float64(st.BytesFetched)/1e6, st.Fetches,
		st.RowsWritten, float64(st.BytesWritten)/1e6, st.Writes)
	if st.SimulatedDelay > 0 {
		fmt.Printf("  simulated network delay injected: %v\n", st.SimulatedDelay.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bagpipe:", err)
	os.Exit(1)
}
