// Command bagpipe runs an end-to-end Bagpipe training experiment: the
// Oracle Cacher, per-trainer prefetch, LRPP partitioned caches with
// delayed cross-trainer sync (or the PR-1 shared-cache pipeline), and
// background write-back maintenance, all against a sharded embedding
// server reached through (optionally simulated-network) transports.
//
// Examples:
//
//	bagpipe -dataset criteo-kaggle -scale 10000 -model wd -batches 50
//	bagpipe -trainers 4 -partitioner comm-aware -lookahead 64
//	bagpipe -engine pipelined -transport simnet -net-latency 2ms -net-bw 1e9
//	bagpipe -trainers 4 -verify -batches 30   # certify LRPP vs baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/train"
	"bagpipe/internal/transport"
)

func main() {
	var (
		dataset  = flag.String("dataset", "criteo-kaggle", "dataset shape: criteo-kaggle, avazu, criteo-terabyte, alibaba")
		scale    = flag.Int64("scale", 10_000, "divide dataset example count and table sizes by this factor")
		modelFl  = flag.String("model", "wd", "model: dlrm, wd, dc, deepfm")
		optFl    = flag.String("opt", "sgd", "optimizer: sgd, momentum, adagrad, adam")
		lr       = flag.Float64("lr", 0.05, "learning rate")
		batchSz  = flag.Int("batch-size", 256, "examples per batch")
		batches  = flag.Int("batches", 50, "number of iterations to train")
		lookahd  = flag.Int("lookahead", 32, "oracle lookahead window in batches (paper default 200)")
		trainers = flag.Int("trainers", 2, "trainer processes (LRPP cache partitions / data-parallel ranks)")
		engineFl = flag.String("engine", "lrpp", "training engine: lrpp, pipelined, baseline")
		partFl   = flag.String("partitioner", "hash", "batch partitioner: hash (contiguous split over hash-partitioned caches), roundrobin, comm-aware")
		eager    = flag.Bool("eager-sync", false, "lrpp: flush all cross-trainer sync on the critical path instead of delaying it")
		workers  = flag.Int("prefetch-workers", 2, "prefetch worker pool size (pipelined engine)")
		shards   = flag.Int("shards", 4, "embedding server shard count")
		embDim   = flag.Int("emb-dim", 0, "override embedding dimension (0 = dataset default)")
		seed     = flag.Uint64("seed", 42, "experiment seed")
		transpFl = flag.String("transport", "inproc", "transport to embedding servers: inproc, simnet")
		netLat   = flag.Duration("net-latency", time.Millisecond, "simnet: per-call round-trip latency")
		netBW    = flag.Float64("net-bw", 1e9, "simnet: link bandwidth in bytes/sec (0 = infinite)")
		meshLat  = flag.Duration("mesh-latency", 500*time.Microsecond, "lrpp + simnet: trainer-to-trainer link latency")
		meshBW   = flag.Float64("mesh-bw", 1e9, "lrpp + simnet: trainer-to-trainer link bandwidth in bytes/sec (0 = infinite)")
		verify   = flag.Bool("verify", false, "also run the no-cache baseline and compare final embedding state bit-for-bit")
		baseline = flag.Bool("baseline", false, "shorthand for -engine baseline")
	)
	flag.Parse()

	if *baseline {
		*engineFl = "baseline"
	}
	spec, err := specByName(*dataset)
	if err != nil {
		fatal(err)
	}
	if *scale > 1 {
		spec = spec.Scaled(*scale)
	}
	if *embDim > 0 {
		spec = spec.WithEmbDim(*embDim)
	}
	part, err := partitionerByName(*partFl)
	if err != nil {
		fatal(err)
	}

	cfg := train.Config{
		Spec:            spec,
		Seed:            *seed,
		Model:           *modelFl,
		Optimizer:       *optFl,
		LR:              float32(*lr),
		BatchSize:       *batchSz,
		NumBatches:      *batches,
		LookAhead:       *lookahd,
		NumTrainers:     *trainers,
		PrefetchWorkers: *workers,
		Partitioner:     part,
		SyncEager:       *eager,
	}

	fmt.Printf("dataset %s  (%d categorical / %d numeric, %d rows, dim %d)\n",
		spec.Name, spec.NumCategorical, spec.NumNumeric, spec.TotalRows(), spec.EmbDim)
	fmt.Printf("engine %s  model %s  opt %s  lr %g  batch %d x %d iters  lookahead %d  trainers %d  partitioner %s  shards %d  transport %s\n\n",
		*engineFl, *modelFl, *optFl, *lr, *batchSz, *batches, *lookahd, *trainers, *partFl, *shards, *transpFl)

	if *netLat < 0 || *netBW < 0 || *meshLat < 0 || *meshBW < 0 {
		fatal(fmt.Errorf("negative -net-latency/-net-bw/-mesh-latency/-mesh-bw"))
	}
	newTransport := func(srv *embed.Server) transport.Transport {
		switch *transpFl {
		case "inproc":
			return transport.NewInProcess(srv)
		case "simnet":
			return transport.NewSimNet(srv, *netLat, *netBW)
		}
		fatal(fmt.Errorf("unknown transport %q", *transpFl))
		return nil
	}
	newServer := func() *embed.Server {
		return embed.NewServer(*shards, spec.EmbDim, *seed^0xE, 0.05)
	}

	runEngine := func(srv *embed.Server) (*train.Result, error) {
		switch *engineFl {
		case "baseline":
			return train.RunBaseline(cfg, newTransport(srv))
		case "pipelined":
			return train.RunPipelined(cfg, newTransport(srv))
		case "lrpp":
			trs := make([]transport.Transport, *trainers)
			for i := range trs {
				trs[i] = newTransport(srv)
			}
			var mesh transport.Mesh
			if *transpFl == "simnet" {
				mesh = transport.NewSimMesh(*trainers, *meshLat, *meshBW)
			}
			return train.RunLRPP(cfg, trs, mesh)
		}
		return nil, fmt.Errorf("unknown engine %q", *engineFl)
	}

	srv := newServer()
	res, err := runEngine(srv)
	if err != nil {
		fatal(err)
	}
	report(res)

	if *verify {
		if *engineFl == "baseline" {
			fatal(fmt.Errorf("-verify compares against the baseline; pick -engine lrpp or pipelined"))
		}
		fmt.Println("\n--- verify: rerunning with the no-cache fetch-per-batch baseline ---")
		srvBase := newServer()
		baseRes, err := train.RunBaseline(cfg, newTransport(srvBase))
		if err != nil {
			fatal(err)
		}
		report(baseRes)
		diff := embed.Diff(srvBase, srv)
		if len(diff) != 0 {
			fatal(fmt.Errorf("FAIL: embedding state differs at %d ids (first %v)", len(diff), diff[0]))
		}
		fmt.Printf("\nPASS: %s and baseline embedding state bit-identical across %d materialized rows\n",
			*engineFl, len(srv.MaterializedIDs()))
		if res.Elapsed < baseRes.Elapsed {
			fmt.Printf("%s speedup over baseline: %.2fx\n",
				*engineFl, baseRes.Elapsed.Seconds()/res.Elapsed.Seconds())
		}
	}
}

// specByName resolves the dataset flag to a Table 1 shape.
func specByName(name string) (*data.Spec, error) {
	switch name {
	case "criteo-kaggle":
		return data.CriteoKaggle(), nil
	case "avazu":
		return data.Avazu(), nil
	case "criteo-terabyte":
		return data.CriteoTerabyte(), nil
	case "alibaba":
		return data.Alibaba(), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// partitionerByName resolves the partitioner flag. "hash" is the LRPP
// default: contiguous example split, rows hash-partitioned across trainer
// caches (ownership is always by hash; the flag picks example placement).
func partitionerByName(name string) (core.Partitioner, error) {
	switch name {
	case "hash", "contiguous", "":
		return nil, nil // engine default: core.Contiguous
	case "roundrobin":
		return core.RoundRobin{}, nil
	case "comm-aware":
		// Empty seen-set: ownership resolves through the hash fallback,
		// matching where the LRPP cache actually places every row.
		return &core.CommAware{Own: core.Ownership{}}, nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", name)
}

// report prints one engine's result block.
func report(r *train.Result) {
	fmt.Printf("[%s] %d iters, %d examples in %v  (%.0f ex/s)\n",
		r.Engine, r.Iters, r.Examples, r.Elapsed.Round(time.Millisecond), r.Throughput())
	fmt.Printf("  loss: first %.4f  last %.4f  avg %.4f\n", r.FirstLoss, r.LastLoss, r.AvgLoss)
	if r.Engine != "baseline" {
		fmt.Printf("  cache: hit-rate %.1f%%  (%d hits / %d unique ids), peak %d rows, %d evictions\n",
			100*r.HitRate(), r.CachedHits, r.UniqueIDs, r.PeakCache, r.Evicted)
		fmt.Printf("  overlap: prefetch||train observed %d times, writeback||train %d times\n",
			r.OverlapPrefetchTrain, r.OverlapMaintTrain)
	}
	if r.Engine == "lrpp" {
		fmt.Printf("  lrpp: %d replica rows pushed, %d sync contributions merged, flushes %d urgent / %d delayed\n",
			r.ReplicaRows, r.SyncEntries, r.UrgentFlushes, r.DelayedFlushes)
		fmt.Printf("  mesh: %d msgs, %.2f MB", r.Mesh.Msgs, float64(r.Mesh.Bytes)/1e6)
		if r.Mesh.SimulatedDelay > 0 {
			fmt.Printf(", simulated delay %v", r.Mesh.SimulatedDelay.Round(time.Millisecond))
		}
		fmt.Println()
	}
	st := r.Transport
	fmt.Printf("  traffic: fetched %d rows (%.2f MB) in %d calls, wrote %d rows (%.2f MB) in %d calls\n",
		st.RowsFetched, float64(st.BytesFetched)/1e6, st.Fetches,
		st.RowsWritten, float64(st.BytesWritten)/1e6, st.Writes)
	if st.SimulatedDelay > 0 {
		fmt.Printf("  simulated network delay injected: %v\n", st.SimulatedDelay.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bagpipe:", err)
	os.Exit(1)
}
