// Command bagpipe runs an end-to-end Bagpipe training experiment: the
// Oracle Cacher, per-trainer prefetch, LRPP partitioned caches with
// delayed cross-trainer sync (or the PR-1 shared-cache pipeline), and
// background write-back maintenance, all against a sharded embedding
// server reached through in-process, simulated-network, or real TCP
// transports.
//
// One binary plays every role. With -net inproc|sim everything runs in
// this process (the PR-2 behavior). With -net tcp the system becomes
// genuinely distributed: an embedding-server process (-serve) and P
// trainer processes (-rank, meshed over -peers) speak the length-prefixed
// little-endian protocol of internal/transport; the default driver mode
// forks all of them locally over loopback (-spawn) so one command line
// still runs — and verifies — the whole system.
//
// Examples:
//
//	bagpipe -trainers 4 -verify -batches 30           # single process, certify LRPP vs baseline
//	bagpipe -net sim -net-latency 5ms -net-bw 256e3   # simulated-network benchmark
//	bagpipe -trainers 4 -net tcp -verify              # 4 trainer processes + 1 server process over loopback TCP
//	bagpipe -serve -listen :7000 ...                  # manual deployment: the embedding-server process
//	bagpipe -rank 0 -peers host0:7001,host1:7001 -server-addr host9:7000 ...  # one trainer process
//
// See README.md for the full flag surface and copy-pasteable recipes, and
// ARCHITECTURE.md for how the processes fit together.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/train"
	"bagpipe/internal/transport"
)

var (
	dataset  = flag.String("dataset", "criteo-kaggle", "dataset shape: criteo-kaggle, avazu, criteo-terabyte, alibaba")
	scale    = flag.Int64("scale", 10_000, "divide dataset example count and table sizes by this factor")
	modelFl  = flag.String("model", "wd", "model: dlrm, wd, dc, deepfm")
	optFl    = flag.String("opt", "sgd", "optimizer: sgd, momentum, adagrad, adam")
	lr       = flag.Float64("lr", 0.05, "learning rate")
	batchSz  = flag.Int("batch-size", 256, "examples per batch")
	batches  = flag.Int("batches", 50, "number of iterations to train")
	lookahd  = flag.Int("lookahead", 32, "oracle lookahead window in batches (paper default 200)")
	trainers = flag.Int("trainers", 2, "trainer processes (LRPP cache partitions / data-parallel ranks)")
	engineFl = flag.String("engine", "lrpp", "training engine: lrpp, pipelined, baseline")
	partFl   = flag.String("partitioner", "hash", "batch partitioner: hash (contiguous split over hash-partitioned caches), roundrobin, comm-aware")
	eager    = flag.Bool("eager-sync", false, "lrpp: flush all cross-trainer sync on the critical path instead of delaying it")
	collFl   = flag.String("collective", "fused", "mesh all-reduce strategy (worker mode): rooted (one frame per dense param), fused (one frame per step), ring (fused frames around the ring); all bit-identical")
	syncComp = flag.Bool("sync-compress", false, "lrpp: float16-quantize replica pushes on the mesh (lossy; incompatible with -verify)")
	autoLook = flag.Bool("auto-lookahead", false, "pick ℒ at startup from measured iteration time, link RTT, and -cache-rows (overrides -lookahead)")
	cacheRws = flag.Int("cache-rows", 0, "auto-lookahead: trainer cache budget in rows (0 = 1/4 of the scaled table rows)")
	statsFl  = flag.Bool("stats", false, "print per-phase mesh traffic (frames + bytes split by replica/sync/collective/plan)")
	workers  = flag.Int("prefetch-workers", 2, "prefetch worker pool size (pipelined engine)")
	shards   = flag.Int("shards", 4, "embedding server shard count")
	embDim   = flag.Int("emb-dim", 0, "override embedding dimension (0 = dataset default)")
	seed     = flag.Uint64("seed", 42, "experiment seed")

	netFl    = flag.String("net", "", "fabric: inproc, sim, tcp (default: the -transport value)")
	transpFl = flag.String("transport", "inproc", "deprecated alias of -net (values: inproc, simnet)")
	netLat   = flag.Duration("net-latency", time.Millisecond, "sim: per-call round-trip latency to the embedding servers")
	netBW    = flag.Float64("net-bw", 1e9, "sim: embedding-server link bandwidth in bytes/sec (0 = infinite)")
	meshLat  = flag.Duration("mesh-latency", 500*time.Microsecond, "lrpp + sim: trainer-to-trainer link latency")
	meshBW   = flag.Float64("mesh-bw", 1e9, "lrpp + sim: trainer-to-trainer link bandwidth in bytes/sec (0 = infinite)")

	serve      = flag.Bool("serve", false, "run as the embedding-server process (tcp); requires -listen")
	listen     = flag.String("listen", "", "listen address for -serve, or bind override for a -rank worker")
	rank       = flag.Int("rank", -1, "run as trainer process `rank` (tcp); requires -peers and -server-addr")
	peersFl    = flag.String("peers", "", "comma-separated, rank-ordered trainer mesh addresses (tcp workers)")
	serverAddr = flag.String("server-addr", "", "embedding-server address (tcp workers)")
	spawn      = flag.Bool("spawn", true, "tcp driver mode: fork the server and trainer processes locally over loopback")

	verify   = flag.Bool("verify", false, "also run the no-cache baseline and compare final embedding state bit-for-bit")
	baseline = flag.Bool("baseline", false, "shorthand for -engine baseline")
)

func main() {
	flag.Parse()
	if *baseline {
		*engineFl = "baseline"
	}
	spec, err := specByName(*dataset)
	if err != nil {
		fatal(err)
	}
	if *scale > 1 {
		spec = spec.Scaled(*scale)
	}
	if *embDim > 0 {
		spec = spec.WithEmbDim(*embDim)
	}
	part, err := partitionerByName(*partFl)
	if err != nil {
		fatal(err)
	}
	netName, err := resolveNet()
	if err != nil {
		fatal(err)
	}
	if *netLat < 0 || *netBW < 0 || *meshLat < 0 || *meshBW < 0 {
		fatal(fmt.Errorf("negative -net-latency/-net-bw/-mesh-latency/-mesh-bw"))
	}

	cfg := train.Config{
		Spec:            spec,
		Seed:            *seed,
		Model:           *modelFl,
		Optimizer:       *optFl,
		LR:              float32(*lr),
		BatchSize:       *batchSz,
		NumBatches:      *batches,
		LookAhead:       *lookahd,
		NumTrainers:     *trainers,
		PrefetchWorkers: *workers,
		Partitioner:     part,
		SyncEager:       *eager,
		Collective:      *collFl,
		SyncCompress:    *syncComp,
	}
	if *verify && *syncComp {
		fatal(fmt.Errorf("-sync-compress is lossy (float16 replicas); -verify pins the lossless path — drop one of them"))
	}

	switch {
	case *serve:
		runServer(spec)
	case *rank >= 0:
		if *autoLook {
			fatal(fmt.Errorf("-auto-lookahead resolves at the driver (every rank must agree on ℒ); pass the driver's -lookahead value instead"))
		}
		runWorker(cfg)
	case netName == "tcp":
		if !*spawn {
			fatal(fmt.Errorf("-net tcp driver mode forks worker processes (-spawn); " +
				"for a manual deployment start one process with -serve -listen and one per trainer with -rank/-peers/-server-addr (recipes in README.md)"))
		}
		runTCPDriver(cfg, spec)
	default:
		runLocal(cfg, spec, netName)
	}
}

// resolveNet folds the deprecated -transport alias into -net.
func resolveNet() (string, error) {
	name := *netFl
	if name == "" {
		name = *transpFl
	}
	switch name {
	case "", "inproc":
		return "inproc", nil
	case "sim", "simnet":
		return "sim", nil
	case "tcp":
		return "tcp", nil
	}
	return "", fmt.Errorf("unknown -net %q (inproc, sim, tcp)", name)
}

// newServer builds the embedding-server tier; every role derives the
// identical initial state from the shared flags.
func newServer(spec *data.Spec) *embed.Server {
	return embed.NewServer(*shards, spec.EmbDim, *seed^0xE, 0.05)
}

// resolveAutoLookahead calibrates this machine's per-iteration compute
// time, combines it with the embedding link's round trip and the trainer
// cache budget, and overwrites ℒ — both in cfg and in the flag, so banners
// and forked worker processes all see the resolved value.
func resolveAutoLookahead(cfg *train.Config, rtt time.Duration) {
	iter, err := train.CalibrateIterTime(*cfg, 3)
	if err != nil {
		fatal(err)
	}
	budget := *cacheRws
	if budget <= 0 {
		budget = int(cfg.Spec.TotalRows() / 4)
	}
	if budget < cfg.BatchSize {
		budget = cfg.BatchSize
	}
	l, err := train.AutoLookahead(*cfg, iter, rtt, budget, 256)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("auto-lookahead: iteration ≈ %v, link RTT ≈ %v, budget %d rows → ℒ = %d\n\n",
		iter.Round(time.Microsecond), rtt.Round(time.Microsecond), budget, l)
	cfg.LookAhead = l
	*lookahd = l
}

// runLocal is the single-process driver: every engine and the inproc/sim
// fabrics, plus in-process -verify.
func runLocal(cfg train.Config, spec *data.Spec, netName string) {
	if *autoLook {
		var rtt time.Duration
		if netName == "sim" {
			rtt = *netLat
		}
		resolveAutoLookahead(&cfg, rtt)
	}
	banner(spec, netName)
	newTransport := func(srv *embed.Server) transport.Transport {
		if netName == "sim" {
			return transport.NewSimNet(srv, *netLat, *netBW)
		}
		return transport.NewInProcess(srv)
	}
	runEngine := func(srv *embed.Server) (*train.Result, error) {
		switch *engineFl {
		case "baseline":
			return train.RunBaseline(cfg, newTransport(srv))
		case "pipelined":
			return train.RunPipelined(cfg, newTransport(srv))
		case "lrpp":
			trs := make([]transport.Transport, *trainers)
			for i := range trs {
				trs[i] = newTransport(srv)
			}
			var mesh transport.Mesh
			if netName == "sim" {
				mesh = transport.NewSimMesh(*trainers, *meshLat, *meshBW)
			}
			return train.RunLRPP(cfg, trs, mesh)
		}
		return nil, fmt.Errorf("unknown engine %q", *engineFl)
	}

	srv := newServer(spec)
	res, err := runEngine(srv)
	if err != nil {
		fatal(err)
	}
	report(res)

	if *verify {
		if *engineFl == "baseline" {
			fatal(fmt.Errorf("-verify compares against the baseline; pick -engine lrpp or pipelined"))
		}
		fmt.Println("\n--- verify: rerunning with the no-cache fetch-per-batch baseline ---")
		srvBase := newServer(spec)
		baseRes, err := train.RunBaseline(cfg, newTransport(srvBase))
		if err != nil {
			fatal(err)
		}
		report(baseRes)
		diff := embed.Diff(srvBase, srv)
		if len(diff) != 0 {
			fatal(fmt.Errorf("FAIL: embedding state differs at %d ids (first %v)", len(diff), diff[0]))
		}
		fmt.Printf("\nPASS: %s and baseline embedding state bit-identical across %d materialized rows\n",
			*engineFl, len(srv.MaterializedIDs()))
		if res.Elapsed < baseRes.Elapsed {
			fmt.Printf("%s speedup over baseline: %.2fx\n",
				*engineFl, baseRes.Elapsed.Seconds()/res.Elapsed.Seconds())
		}
	}
}

// runServer is the embedding-server process: serve until a client sends the
// shutdown op.
func runServer(spec *data.Spec) {
	if *listen == "" {
		fatal(fmt.Errorf("-serve requires -listen"))
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("embedding server: %d shards, dim %d, listening on %s\n",
		*shards, spec.EmbDim, lis.Addr())
	if err := transport.ServeEmbed(lis, newServer(spec)); err != nil {
		fatal(err)
	}
	fmt.Println("embedding server: shutdown")
}

// runWorker is one trainer process of a distributed LRPP run.
func runWorker(cfg train.Config) {
	if *engineFl != "lrpp" {
		fatal(fmt.Errorf("-rank runs the lrpp engine; -engine %s has no multi-trainer-process form (drop -rank, or use the tcp driver which runs it against a remote server)", *engineFl))
	}
	if *peersFl == "" || *serverAddr == "" {
		fatal(fmt.Errorf("-rank requires -peers and -server-addr"))
	}
	addrs := strings.Split(*peersFl, ",")
	if len(addrs) != cfg.NumTrainers {
		fatal(fmt.Errorf("-peers lists %d addresses for %d trainers", len(addrs), cfg.NumTrainers))
	}
	var lis net.Listener
	if *listen != "" {
		var err error
		if lis, err = net.Listen("tcp", *listen); err != nil {
			fatal(err)
		}
	}
	mesh, err := transport.NewTCPMesh(*rank, addrs, lis)
	if err != nil {
		fatal(err)
	}
	tr, err := transport.DialTCPLink(*serverAddr, 30*time.Second)
	if err != nil {
		mesh.Shutdown() // depart cleanly so peers see a goodbye, not a crash
		fatal(err)
	}
	res, err := train.RunLRPPWorker(cfg, *rank, tr, mesh)
	if err != nil {
		mesh.Shutdown()
		fatal(err)
	}
	report(res)
	mesh.Shutdown()
	tr.Close()
}

// runTCPDriver forks the whole distributed system locally: one embedding-
// server process plus (for the lrpp engine) one process per trainer, all on
// loopback TCP — then optionally certifies the remote server state against
// a local baseline run, exactly as the in-process -verify does, via the
// checkpoint protocol.
func runTCPDriver(cfg train.Config, spec *data.Spec) {
	banner(spec, "tcp")
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	ports, err := freeLoopbackAddrs(1 + *trainers)
	if err != nil {
		fatal(err)
	}
	srvAddr, meshAddrs := ports[0], ports[1:]

	// commonArgs reads the flags at call time: the server is spawned before
	// -auto-lookahead resolves ℒ (it needs the server up to measure the link
	// RTT), the trainers after — every rank must see the resolved value.
	commonArgs := func() []string {
		return []string{
			"-net", "tcp",
			"-dataset", *dataset,
			"-scale", fmt.Sprint(*scale),
			"-model", *modelFl,
			"-opt", *optFl,
			"-lr", fmt.Sprint(*lr),
			"-batch-size", fmt.Sprint(*batchSz),
			"-batches", fmt.Sprint(*batches),
			"-lookahead", fmt.Sprint(*lookahd),
			"-trainers", fmt.Sprint(*trainers),
			"-partitioner", *partFl,
			fmt.Sprintf("-eager-sync=%v", *eager),
			"-collective", *collFl,
			fmt.Sprintf("-sync-compress=%v", *syncComp),
			fmt.Sprintf("-stats=%v", *statsFl),
			"-shards", fmt.Sprint(*shards),
			"-emb-dim", fmt.Sprint(*embDim),
			"-seed", fmt.Sprint(*seed),
		}
	}
	startProc := func(tag string, extra ...string) *exec.Cmd {
		cmd := exec.Command(exe, append(commonArgs(), extra...)...)
		cmd.Stdout = newPrefixWriter(os.Stdout, "["+tag+"] ")
		cmd.Stderr = newPrefixWriter(os.Stderr, "["+tag+"] ")
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("spawn %s: %w", tag, err))
		}
		return cmd
	}

	serverProc := startProc("server", "-serve", "-listen", srvAddr)
	defer serverProc.Process.Kill() // no-op after a clean Wait; covers panics
	var procs []*exec.Cmd
	// fatal would bypass deferred cleanup (os.Exit); every failure past
	// this point must go through die so no spawned process is orphaned.
	die := func(err error) {
		for _, proc := range procs {
			if proc.Process != nil {
				proc.Process.Kill()
			}
		}
		if serverProc.Process != nil {
			serverProc.Process.Kill()
		}
		fatal(err)
	}

	if *autoLook {
		// Measure the real link round trip against the freshly spawned
		// server (fingerprint op = one full RPC), then resolve ℒ once here;
		// the trainers inherit the concrete -lookahead value.
		link, err := transport.DialTCPLink(srvAddr, 30*time.Second)
		if err != nil {
			die(err)
		}
		link.Fingerprint() // warm the connection and the server's shard walk
		const pings = 3
		t0 := time.Now()
		for i := 0; i < pings; i++ {
			link.Fingerprint()
		}
		rtt := time.Since(t0) / pings
		link.Close()
		resolveAutoLookahead(&cfg, rtt)
	}

	if *engineFl == "lrpp" {
		fmt.Printf("spawned embedding server at %s; spawning %d trainer processes\n\n", srvAddr, *trainers)
		for p := 0; p < *trainers; p++ {
			procs = append(procs, startProc(fmt.Sprintf("trainer %d", p),
				"-rank", fmt.Sprint(p),
				"-peers", strings.Join(meshAddrs, ","),
				"-server-addr", srvAddr))
		}
		failed := false
		for p, proc := range procs {
			if err := proc.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "bagpipe: trainer %d: %v\n", p, err)
				failed = true
			}
		}
		if failed {
			die(fmt.Errorf("trainer process failed"))
		}
	} else {
		// baseline/pipelined are single-trainer-process engines: run the
		// engine here, against the remote embedding server.
		tr, err := transport.DialTCPLink(srvAddr, 30*time.Second)
		if err != nil {
			die(err)
		}
		var res *train.Result
		switch *engineFl {
		case "baseline":
			res, err = train.RunBaseline(cfg, tr)
		case "pipelined":
			res, err = train.RunPipelined(cfg, tr)
		default:
			err = fmt.Errorf("unknown engine %q", *engineFl)
		}
		if err != nil {
			die(err)
		}
		report(res)
		tr.Close()
	}

	ctl, err := transport.DialTCPLink(srvAddr, 10*time.Second)
	if err != nil {
		die(err)
	}
	if *verify {
		if *engineFl == "baseline" {
			die(fmt.Errorf("-verify compares against the baseline; pick -engine lrpp or pipelined"))
		}
		fmt.Println("\n--- verify: fetching remote checkpoint, rerunning the no-cache baseline locally ---")
		remote, err := embed.RestoreServer(bytes.NewReader(ctl.Checkpoint()), *shards)
		if err != nil {
			die(fmt.Errorf("restore remote checkpoint: %w", err))
		}
		srvBase := newServer(spec)
		baseRes, err := train.RunBaseline(cfg, transport.NewInProcess(srvBase))
		if err != nil {
			die(err)
		}
		report(baseRes)
		diff := embed.Diff(srvBase, remote)
		if len(diff) != 0 {
			die(fmt.Errorf("FAIL: remote embedding state differs at %d ids (first %v)", len(diff), diff[0]))
		}
		fmt.Printf("\nPASS: distributed %s over loopback TCP left the embedding servers bit-identical to the baseline across %d materialized rows\n",
			*engineFl, len(remote.MaterializedIDs()))
	}
	ctl.ShutdownServer()
	ctl.Close()
	if err := serverProc.Wait(); err != nil {
		fatal(fmt.Errorf("embedding server: %w", err))
	}
}

// freeLoopbackAddrs reserves n distinct loopback TCP addresses by binding
// ephemeral ports and releasing them. The tiny bind race with other
// processes is acceptable for a local spawn harness; the children's dial
// retries cover slow starters, and a genuinely stolen port fails loudly.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range listeners {
		lis.Close()
	}
	return addrs, nil
}

// prefixWriter prefixes every output line with its process tag so the
// interleaved child output stays attributable.
type prefixWriter struct {
	w      io.Writer
	prefix []byte
	atBOL  bool
}

func newPrefixWriter(w io.Writer, prefix string) *prefixWriter {
	return &prefixWriter{w: w, prefix: []byte(prefix), atBOL: true}
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	written := 0
	for len(b) > 0 {
		if p.atBOL {
			if _, err := p.w.Write(p.prefix); err != nil {
				return written, err
			}
			p.atBOL = false
		}
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			n, err := p.w.Write(b)
			return written + n, err
		}
		n, err := p.w.Write(b[:i+1])
		written += n
		if err != nil {
			return written, err
		}
		p.atBOL = true
		b = b[i+1:]
	}
	return written, nil
}

// banner prints the experiment header.
func banner(spec *data.Spec, netName string) {
	fmt.Printf("dataset %s  (%d categorical / %d numeric, %d rows, dim %d)\n",
		spec.Name, spec.NumCategorical, spec.NumNumeric, spec.TotalRows(), spec.EmbDim)
	fmt.Printf("engine %s  model %s  opt %s  lr %g  batch %d x %d iters  lookahead %d  trainers %d  partitioner %s  shards %d  net %s\n\n",
		*engineFl, *modelFl, *optFl, *lr, *batchSz, *batches, *lookahd, *trainers, *partFl, *shards, netName)
}

// specByName resolves the dataset flag to a Table 1 shape.
func specByName(name string) (*data.Spec, error) {
	switch name {
	case "criteo-kaggle":
		return data.CriteoKaggle(), nil
	case "avazu":
		return data.Avazu(), nil
	case "criteo-terabyte":
		return data.CriteoTerabyte(), nil
	case "alibaba":
		return data.Alibaba(), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// partitionerByName resolves the partitioner flag. "hash" is the LRPP
// default: contiguous example split, rows hash-partitioned across trainer
// caches (ownership is always by hash; the flag picks example placement).
func partitionerByName(name string) (core.Partitioner, error) {
	switch name {
	case "hash", "contiguous", "":
		return nil, nil // engine default: core.Contiguous
	case "roundrobin":
		return core.RoundRobin{}, nil
	case "comm-aware":
		// Empty seen-set: ownership resolves through the hash fallback,
		// matching where the LRPP cache actually places every row.
		return &core.CommAware{Own: core.Ownership{}}, nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", name)
}

// report prints one engine's result block.
func report(r *train.Result) {
	fmt.Printf("[%s] %d iters, %d examples in %v  (%.0f ex/s)\n",
		r.Engine, r.Iters, r.Examples, r.Elapsed.Round(time.Millisecond), r.Throughput())
	fmt.Printf("  loss: first %.4f  last %.4f  avg %.4f\n", r.FirstLoss, r.LastLoss, r.AvgLoss)
	if r.Engine != "baseline" && r.UniqueIDs > 0 {
		fmt.Printf("  cache: hit-rate %.1f%%  (%d hits / %d unique ids), peak %d rows, %d evictions\n",
			100*r.HitRate(), r.CachedHits, r.UniqueIDs, r.PeakCache, r.Evicted)
	}
	if r.Engine != "baseline" {
		fmt.Printf("  overlap: prefetch||train observed %d times, writeback||train %d times\n",
			r.OverlapPrefetchTrain, r.OverlapMaintTrain)
	}
	if r.Engine == "lrpp" {
		fmt.Printf("  lrpp: %d replica rows pushed, %d sync contributions merged, flushes %d urgent / %d delayed\n",
			r.ReplicaRows, r.SyncEntries, r.UrgentFlushes, r.DelayedFlushes)
		fmt.Printf("  mesh: %d msgs, %.2f MB", r.Mesh.Msgs, float64(r.Mesh.Bytes)/1e6)
		if r.Mesh.SimulatedDelay > 0 {
			fmt.Printf(", simulated delay %v", r.Mesh.SimulatedDelay.Round(time.Millisecond))
		}
		fmt.Println()
		if *statsFl {
			c := r.MeshClasses
			iters := float64(r.Iters)
			fmt.Printf("  mesh by phase (sent from this process):\n")
			row := func(name string, msgs, bytes int64) {
				fmt.Printf("    %-11s %7d frames (%6.1f/iter)  %10.2f KB (%8.0f B/iter)\n",
					name, msgs, float64(msgs)/iters, float64(bytes)/1e3, float64(bytes)/iters)
			}
			row("replica", c.ReplicaMsgs, c.ReplicaBytes)
			row("sync", c.SyncMsgs, c.SyncBytes)
			row("collective", c.CollMsgs, c.CollBytes)
			row("plan", c.PlanMsgs, c.PlanBytes)
		}
	}
	st := r.Transport
	fmt.Printf("  traffic: fetched %d rows (%.2f MB) in %d calls, wrote %d rows (%.2f MB) in %d calls\n",
		st.RowsFetched, float64(st.BytesFetched)/1e6, st.Fetches,
		st.RowsWritten, float64(st.BytesWritten)/1e6, st.Writes)
	if st.SimulatedDelay > 0 {
		fmt.Printf("  simulated network delay injected: %v\n", st.SimulatedDelay.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bagpipe:", err)
	os.Exit(1)
}
