// Command bagpipe runs an end-to-end Bagpipe training experiment: the
// Oracle Cacher, per-trainer prefetch, LRPP partitioned caches with
// delayed cross-trainer sync (or the PR-1 shared-cache pipeline), and
// background write-back maintenance, all against a sharded embedding
// server reached through in-process, simulated-network, or real TCP
// transports.
//
// One binary plays every role. With -net inproc|sim everything runs in
// this process (the PR-2 behavior). With -net tcp the system becomes
// genuinely distributed: -servers S embedding-server processes (-serve)
// and P trainer processes (-rank, meshed over -peers, each reaching the
// tier through a sharded store over -server-addrs) speak the
// length-prefixed little-endian protocol of internal/transport; the
// default driver mode forks all of them locally over loopback (-spawn) so
// one command line still runs — and verifies — the whole system.
//
// Examples:
//
//	bagpipe -trainers 4 -verify -batches 30           # single process, certify LRPP vs baseline
//	bagpipe -net sim -net-latency 5ms -net-bw 256e3   # simulated-network benchmark
//	bagpipe -trainers 4 -servers 2 -net tcp -verify   # 4 trainer + 2 server processes over loopback TCP
//	bagpipe -serve -listen :7000 ...                  # manual deployment: one embedding-server process
//	bagpipe -rank 0 -peers host0:7001,host1:7001 -servers 2 \
//	        -server-addrs host8:7000,host9:7000 ...   # one trainer process against a 2-server tier
//
// See README.md for the full flag surface and copy-pasteable recipes, and
// ARCHITECTURE.md for how the processes fit together.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bagpipe/internal/core"
	"bagpipe/internal/data"
	"bagpipe/internal/embed"
	"bagpipe/internal/reshard"
	"bagpipe/internal/serve"
	"bagpipe/internal/train"
	"bagpipe/internal/transport"
)

var (
	dataset      = flag.String("dataset", "criteo-kaggle", "dataset shape: criteo-kaggle, avazu, criteo-terabyte, alibaba")
	scale        = flag.Int64("scale", 10_000, "divide dataset example count and table sizes by this factor")
	modelFl      = flag.String("model", "wd", "model: dlrm, wd, dc, deepfm")
	optFl        = flag.String("opt", "sgd", "optimizer: sgd, momentum, adagrad, adam")
	lr           = flag.Float64("lr", 0.05, "learning rate")
	batchSz      = flag.Int("batch-size", 256, "examples per batch")
	batches      = flag.Int("batches", 50, "number of iterations to train")
	lookahd      = flag.Int("lookahead", 32, "oracle lookahead window in batches (paper default 200)")
	trainers     = flag.Int("trainers", 2, "trainer processes (LRPP cache partitions / data-parallel ranks)")
	engineFl     = flag.String("engine", "lrpp", "training engine: lrpp, pipelined, baseline")
	partFl       = flag.String("partitioner", "hash", "batch partitioner: hash (contiguous split over hash-partitioned caches), roundrobin, comm-aware")
	eager        = flag.Bool("eager-sync", false, "lrpp: flush all cross-trainer sync on the critical path instead of delaying it")
	collFl       = flag.String("collective", "fused", "mesh all-reduce strategy (worker mode): rooted (one frame per dense param), fused (one frame per step), ring (fused frames around the ring), tree (fused frames up/down a log2-P binomial tree); all bit-identical")
	syncComp     = flag.Bool("sync-compress", false, "lrpp: float16-quantize replica pushes on the mesh (lossy; incompatible with -verify)")
	syncCompGrad = flag.Bool("sync-compress-grad", false, "lrpp: float16-quantize delayed-sync gradient flushes, carrying the rounding error per (owner,row) as error feedback (lossy; incompatible with -verify)")
	autoLook     = flag.Bool("auto-lookahead", false, "pick ℒ at startup from measured iteration time, link RTT, and -cache-rows (overrides -lookahead)")
	cacheRws     = flag.Int("cache-rows", 0, "auto-lookahead: trainer cache budget in rows (0 = 1/4 of the scaled table rows)")
	statsFl      = flag.Bool("stats", false, "print per-phase mesh traffic (frames + bytes split by replica/sync/collective/plan)")
	workers      = flag.Int("prefetch-workers", 2, "prefetch worker pool size (pipelined engine)")
	servers      = flag.Int("servers", 1, "embedding servers in the tier (rows sharded across them by id, one process each in TCP mode)")
	replicate    = flag.Int("replicate", 1, "replication factor R: write each row to its owner server plus the next R-1 servers on the ownership ring; reads fail over along the ring when servers die")
	shards       = flag.Int("shards", 4, "shard count within each embedding server")
	embDim       = flag.Int("emb-dim", 0, "override embedding dimension (0 = dataset default)")
	seed         = flag.Uint64("seed", 42, "experiment seed")

	netFl    = flag.String("net", "", "fabric: inproc, sim, tcp (default: the -transport value)")
	transpFl = flag.String("transport", "inproc", "deprecated alias of -net (values: inproc, simnet)")
	netLat   = flag.Duration("net-latency", time.Millisecond, "sim: per-call round-trip latency to the embedding servers")
	netBW    = flag.Float64("net-bw", 1e9, "sim: embedding-server link bandwidth in bytes/sec (0 = infinite)")
	meshLat  = flag.Duration("mesh-latency", 500*time.Microsecond, "lrpp + sim: trainer-to-trainer link latency")
	meshBW   = flag.Float64("mesh-bw", 1e9, "lrpp + sim: trainer-to-trainer link bandwidth in bytes/sec (0 = infinite)")

	serveFl     = flag.Bool("serve", false, "run as the embedding-server process (tcp); requires -listen")
	listen      = flag.String("listen", "", "listen address for -serve, or bind override for a -rank worker")
	rank        = flag.Int("rank", -1, "run as trainer process `rank` (tcp); requires -peers and -server-addr")
	peersFl     = flag.String("peers", "", "comma-separated, rank-ordered trainer mesh addresses (tcp workers)")
	serverAddr  = flag.String("server-addr", "", "deprecated alias of -server-addrs for a one-server tier (tcp workers)")
	serverAddrs = flag.String("server-addrs", "", "comma-separated, server-ordered embedding-tier addresses (tcp workers); must list -servers addresses")
	spawn       = flag.Bool("spawn", true, "tcp driver mode: fork the server and trainer processes locally over loopback")
	killServer  = flag.Int("kill-server", -1, "chaos (tcp driver, lrpp): kill embedding server `K` mid-run; with -replicate >= 2 the run completes and certifies against the baseline")
	killDelay   = flag.Duration("kill-delay", 500*time.Millisecond, "chaos: how long after spawning the trainers to kill the -kill-server target")
	restartFl   = flag.Bool("restart-server", false, "chaos: respawn the -kill-server victim on its old address after -restart-delay and require its anti-entropy rejoin to certify (prints PASS: server K rejoined)")
	restartWait = flag.Duration("restart-delay", 2*time.Second, "chaos: how long after the kill to respawn the -restart-server victim")
	killAfterRj = flag.Int("kill-after-rejoin", -1, "chaos: once every trainer has re-admitted the rejoined server, kill server `K2` too — the rejoiner must then carry their shared partitions alone")
	recoverFl   = flag.Bool("recover", false, "server mode (-serve): start in recovery — live writes are tracked as fresh and shielded from the anti-entropy snapshot until the tier certifies the rejoin and ends recovery")

	reshardTo    = flag.Int("reshard-to", 0, "live reshard (lrpp): migrate the embedding tier to `S2` servers mid-run, per-partition dual-write/verify/cutover, while training and serving continue; the tcp driver spawns the new server processes on a grow and retires them after a shrink (0 disables)")
	reshardDelay = flag.Duration("reshard-delay", 500*time.Millisecond, "reshard: how long after the trainers start before the migration begins")

	serveInfer   = flag.Bool("serve-infer", false, "run the online inference front end against the live training tier (lrpp): local fabrics serve in-process on the trainer's retirement clock, the tcp driver serves from the driver process over its own tier links")
	inferQPS     = flag.Float64("infer-qps", 0, "aggregate offered inference rate across clients (0 = unpaced closed loop)")
	inferClients = flag.Int("infer-clients", 2, "closed-loop inference clients (one goroutine, model replica, and rate bucket each)")
	inferDist    = flag.String("infer-dist", "zipf", "inference key popularity: zipf, drift, hottail, uniform")
	inferStale   = flag.Int64("infer-max-stale", 8, "serving staleness bound in write-back epochs: a cached row is never served once the epoch advances more than this past its fetch")
	inferCache   = flag.Int("infer-cache-rows", 4096, "hot-row cache capacity of the inference front end")
	inferRate    = flag.Float64("infer-rate-limit", 0, "admitted QPS per inference client, enforced by the token bucket (0 disables admission rate limiting)")
	inferP99     = flag.Duration("infer-p99-bound", 250*time.Millisecond, "chaos: the serving-under-chaos PASS requires the lookup p99 within this bound")

	verify   = flag.Bool("verify", false, "also run the no-cache baseline and compare final embedding state bit-for-bit")
	baseline = flag.Bool("baseline", false, "shorthand for -engine baseline")
)

func main() {
	flag.Parse()
	if *baseline {
		*engineFl = "baseline"
	}
	spec, err := specByName(*dataset)
	if err != nil {
		fatal(err)
	}
	if *scale > 1 {
		spec = spec.Scaled(*scale)
	}
	if *embDim > 0 {
		spec = spec.WithEmbDim(*embDim)
	}
	part, err := partitionerByName(*partFl)
	if err != nil {
		fatal(err)
	}
	netName, err := resolveNet()
	if err != nil {
		fatal(err)
	}
	if *netLat < 0 || *netBW < 0 || *meshLat < 0 || *meshBW < 0 {
		fatal(fmt.Errorf("negative -net-latency/-net-bw/-mesh-latency/-mesh-bw"))
	}
	if *servers < 1 {
		fatal(fmt.Errorf("-servers must be at least 1, got %d", *servers))
	}
	if *replicate < 1 || *replicate > *servers {
		fatal(fmt.Errorf("-replicate %d outside [1, %d] (the tier has -servers %d)", *replicate, *servers, *servers))
	}
	if *killServer >= 0 {
		if *killServer >= *servers {
			fatal(fmt.Errorf("-kill-server %d names no server (the tier has -servers %d)", *killServer, *servers))
		}
		// Chaos needs real processes to kill: when the fabric was left at its
		// default, imply the tcp driver instead of rejecting the run.
		if netName != "tcp" && !netExplicit() {
			fmt.Fprintln(os.Stderr, "bagpipe: -kill-server implies the tcp driver; defaulting -net tcp")
			netName = "tcp"
		}
		if netName != "tcp" || *serveFl || *rank >= 0 || *engineFl != "lrpp" {
			fatal(fmt.Errorf("-kill-server is a chaos flag for the lrpp tcp driver (-net tcp -spawn)"))
		}
		// A survived kill is only meaningful if the surviving tier is
		// certified, so chaos implies -verify on the lossless path.
		if !*syncComp && !*syncCompGrad {
			*verify = true
		}
	}
	// The rejoin flags are validated in the driver only: the driver passes
	// -restart-server down to the trainer processes as a hint to wait for an
	// in-flight revival before departing, and those processes carry neither
	// -kill-server nor the rest of the chaos configuration.
	if (*restartFl || *killAfterRj >= 0) && *rank < 0 && !*serveFl {
		if !*restartFl {
			fatal(fmt.Errorf("-kill-after-rejoin requires -restart-server (there is no rejoin to wait for)"))
		}
		if *killServer < 0 {
			fatal(fmt.Errorf("-restart-server requires -kill-server (nothing was killed, nothing can rejoin)"))
		}
		if *replicate < 2 {
			fatal(fmt.Errorf("-restart-server needs -replicate >= 2: an anti-entropy rejoin is sourced from the dead server's surviving replicas"))
		}
		if *syncComp || *syncCompGrad {
			fatal(fmt.Errorf("-restart-server certifies the rejoined server bit-for-bit; the lossy -sync-compress paths cannot"))
		}
		if *killAfterRj >= *servers {
			fatal(fmt.Errorf("-kill-after-rejoin %d names no server (the tier has -servers %d)", *killAfterRj, *servers))
		}
		if *killAfterRj == *killServer {
			fatal(fmt.Errorf("-kill-after-rejoin %d is the -kill-server victim itself; name a different replica", *killAfterRj))
		}
	}
	if *recoverFl && !*serveFl {
		fatal(fmt.Errorf("-recover is a -serve (embedding-server) flag"))
	}
	if *reshardTo < 0 {
		fatal(fmt.Errorf("-reshard-to %d: the target tier width must be positive", *reshardTo))
	}
	// Worker and server processes receive -reshard-to as plumbing (it sizes
	// their tier's spare capacity); the driver validates the migration once.
	if *reshardTo > 0 && *rank < 0 && !*serveFl {
		if *engineFl != "lrpp" {
			fatal(fmt.Errorf("-reshard-to migrates the tier under live lrpp traffic; -engine %s has no reshard form", *engineFl))
		}
		if *reshardTo == *servers {
			fatal(fmt.Errorf("-reshard-to %d: the tier already has -servers %d", *reshardTo, *servers))
		}
		if *reshardTo < *replicate {
			fatal(fmt.Errorf("-reshard-to %d below -replicate %d: each row needs %d distinct servers in its replica ring", *reshardTo, *replicate, *replicate))
		}
		if *restartFl || *killAfterRj >= 0 {
			fatal(fmt.Errorf("-reshard-to cannot be combined with -restart-server/-kill-after-rejoin: a rejoin is refused while the tier reshards"))
		}
		if err := transport.ValidateTierOptions(tierCapacity(), transport.TierOptions{Replicate: *replicate, InitialServers: *servers}); err != nil {
			fatal(err)
		}
		// A migration is only meaningful if the migrated tier is certified,
		// so resharding implies -verify on the lossless path.
		if !*syncComp && !*syncCompGrad {
			*verify = true
		}
	}

	if *serveInfer {
		if *engineFl != "lrpp" {
			fatal(fmt.Errorf("-serve-infer serves over the live lrpp training tier; -engine %s has no serving form", *engineFl))
		}
		if *serveFl || *rank >= 0 {
			fatal(fmt.Errorf("-serve-infer is a driver-side flag; the -serve/-rank worker processes do not host the front end"))
		}
		if *inferClients < 1 {
			fatal(fmt.Errorf("-infer-clients must be at least 1, got %d", *inferClients))
		}
		if _, ok := data.ServingDist(*inferDist); !ok {
			fatal(fmt.Errorf("unknown -infer-dist %q (zipf, drift, hottail, uniform)", *inferDist))
		}
	}

	cfg := train.Config{
		Spec:             spec,
		Seed:             *seed,
		Model:            *modelFl,
		Optimizer:        *optFl,
		LR:               float32(*lr),
		BatchSize:        *batchSz,
		NumBatches:       *batches,
		LookAhead:        *lookahd,
		NumTrainers:      *trainers,
		PrefetchWorkers:  *workers,
		Partitioner:      part,
		SyncEager:        *eager,
		Collective:       *collFl,
		SyncCompress:     *syncComp,
		SyncCompressGrad: *syncCompGrad,
	}
	if *verify && (*syncComp || *syncCompGrad) {
		fatal(fmt.Errorf("-sync-compress/-sync-compress-grad are lossy (float16 wire values); -verify pins the lossless path — drop one of them"))
	}

	switch {
	case *serveFl:
		runServer(spec)
	case *rank >= 0:
		if *autoLook {
			fatal(fmt.Errorf("-auto-lookahead resolves at the driver (every rank must agree on ℒ); pass the driver's -lookahead value instead"))
		}
		runWorker(cfg)
	case netName == "tcp":
		if !*spawn {
			fatal(fmt.Errorf("-net tcp driver mode forks worker processes (-spawn); " +
				"for a manual deployment start one process with -serve -listen and one per trainer with -rank/-peers/-server-addr (recipes in README.md)"))
		}
		runTCPDriver(cfg, spec)
	default:
		runLocal(cfg, spec, netName)
	}
}

// resolveNet folds the deprecated -transport alias into -net.
func resolveNet() (string, error) {
	name := *netFl
	if name == "" {
		name = *transpFl
	}
	switch name {
	case "", "inproc":
		return "inproc", nil
	case "sim", "simnet":
		return "sim", nil
	case "tcp":
		return "tcp", nil
	}
	return "", fmt.Errorf("unknown -net %q (inproc, sim, tcp)", name)
}

// netExplicit reports whether the user named a fabric on the command line
// (-net or the deprecated -transport alias) rather than inheriting defaults.
func netExplicit() bool {
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "net" || f.Name == "transport" {
			explicit = true
		}
	})
	return explicit
}

// newServer builds one embedding server; every role derives the identical
// initial state from the shared flags. All servers of a tier share the
// seed, so a row's initial value depends only on its id — tier splitting is
// deterministic, and S-way state merges back to the S=1 reference
// (embed.MergeTier) for verification.
func newServer(spec *data.Spec) *embed.Server {
	return embed.NewServer(*shards, spec.EmbDim, *seed^0xE, 0.05)
}

// tierCapacity is the backend slot count every tier client provisions: the
// launch width plus any spare slots a -reshard-to grow will route into.
func tierCapacity() int {
	if *reshardTo > *servers {
		return *reshardTo
	}
	return *servers
}

// newServers builds the in-process embedding tier: the -servers S launch
// width plus (with -reshard-to above it) the spare servers a grow migrates
// into. Spares start absent — unrouted, invisible to the data plane — until
// the reshard coordinator admits them.
func newServers(spec *data.Spec) []*embed.Server {
	srvs := make([]*embed.Server, tierCapacity())
	for i := range srvs {
		srvs[i] = newServer(spec)
	}
	return srvs
}

// storeOver assembles one trainer's tier client: one transport per server
// over the chosen local fabric, fanned out through a ShardedStore when the
// tier has more than one server. With -net sim each server sits behind its
// own simulated link — its own NIC in the paper's trainer-node/server-node
// topology — so the scatter's concurrent sub-batches genuinely overlap
// their latencies.
func storeOver(srvs []*embed.Server, netName string) transport.Store {
	children := make([]transport.Store, len(srvs))
	for i, srv := range srvs {
		if netName == "sim" {
			children[i] = transport.NewSimNet(srv, *netLat, *netBW)
		} else {
			children[i] = transport.NewInProcess(srv)
		}
	}
	if len(children) == 1 {
		return children[0]
	}
	topts := transport.TierOptions{Replicate: *replicate}
	if *reshardTo > 0 && len(children) > *servers {
		topts.InitialServers = *servers
	}
	return transport.NewTier(children, topts)
}

// reportFailover is the tier's OnFailover hook in every role: one stderr
// line per server lost, with the error that condemned it.
func reportFailover(server int, cause error) {
	fmt.Fprintf(os.Stderr, "bagpipe: embedding server %d declared dead, failing over to its replicas: %v\n", server, cause)
}

// exitOnTierLoss is the worker-process OnLost hook: when every replica of a
// partition is gone the trainer cannot make progress, so exit with the
// attributed tier error instead of an engine-goroutine panic trace.
func exitOnTierLoss(e *transport.TierError) {
	fmt.Fprintln(os.Stderr, "bagpipe:", e)
	os.Exit(3)
}

// dialStores dials every server of a remote tier and returns the assembled
// store plus the underlying links (the caller closes them; Close is not a
// tier operation). Servers marked in dead are not dialed (their entry in
// links stays nil — close loops must skip it); with -replicate >= 2 a
// server that cannot be dialed is treated the same way, since its
// partitions are covered by replicas until proven otherwise.
//
// Addresses at index >= spareFrom (when 0 < spareFrom < len(addrs)) are
// spare reshard capacity: their server processes may not exist yet, so they
// are not pre-dialed — the tier's Dial hook connects them on demand when a
// routing install (a reshard grow) first references them. A link dialed
// that way lands in the returned slice under the same mutex-free contract:
// callers close links only after the tier has quiesced.
func dialStores(addrs []string, timeout time.Duration, dead []bool, onLost func(*transport.TierError), spareFrom int) (transport.Store, []*transport.TCPLink, error) {
	links := make([]*transport.TCPLink, len(addrs))
	children := make([]transport.Store, len(addrs))
	if dead == nil {
		dead = make([]bool, len(addrs))
	}
	if spareFrom <= 0 || spareFrom > len(addrs) {
		spareFrom = len(addrs)
	}
	var linkMu sync.Mutex
	live := 0
	for i, addr := range addrs[:spareFrom] {
		if dead[i] {
			continue
		}
		link, err := transport.DialTCPLink(addr, timeout)
		if err != nil {
			if *replicate > 1 {
				fmt.Fprintf(os.Stderr, "bagpipe: embedding server %d (%s) unreachable, relying on its replicas: %v\n", i, addr, err)
				dead[i] = true
				continue
			}
			for _, l := range links[:i] {
				if l != nil {
					l.Close()
				}
			}
			return nil, nil, err
		}
		links[i] = link
		children[i] = link
		live++
	}
	if live == 0 {
		return nil, nil, fmt.Errorf("no live embedding server among %s", strings.Join(addrs, ","))
	}
	if len(children) == 1 {
		return children[0], links, nil
	}
	topts := transport.TierOptions{
		Replicate:  *replicate,
		Dead:       dead,
		OnFailover: reportFailover,
		OnLost:     onLost,
	}
	if spareFrom < len(addrs) {
		topts.InitialServers = spareFrom
		topts.Dial = func(s int) (transport.Store, error) {
			link, err := transport.DialTCPLink(addrs[s], timeout)
			if err != nil {
				return nil, err
			}
			linkMu.Lock()
			links[s] = link
			linkMu.Unlock()
			return link, nil
		}
	}
	return transport.NewTier(children, topts), links, nil
}

// tierAddrs resolves the worker-mode server address list, honoring the
// deprecated single-server alias.
func tierAddrs() ([]string, error) {
	list := *serverAddrs
	if list == "" {
		list = *serverAddr
	}
	if list == "" {
		return nil, fmt.Errorf("-rank requires -server-addrs (or -server-addr for a one-server tier)")
	}
	addrs := strings.Split(list, ",")
	if want := tierCapacity(); len(addrs) != want {
		if want != *servers {
			return nil, fmt.Errorf("-server-addrs lists %d addresses for -servers %d with -reshard-to %d (need %d: launch width plus spare capacity)",
				len(addrs), *servers, *reshardTo, want)
		}
		return nil, fmt.Errorf("-server-addrs lists %d addresses for -servers %d", len(addrs), *servers)
	}
	return addrs, nil
}

// resolveAutoLookahead calibrates this machine's per-iteration compute
// time, combines it with the embedding link's round trip and the trainer
// cache budget, and overwrites ℒ — both in cfg and in the flag, so banners
// and forked worker processes all see the resolved value.
func resolveAutoLookahead(cfg *train.Config, rtt time.Duration) {
	iter, err := train.CalibrateIterTime(*cfg, 3)
	if err != nil {
		fatal(err)
	}
	budget := *cacheRws
	if budget <= 0 {
		budget = int(cfg.Spec.TotalRows() / 4)
	}
	if budget < cfg.BatchSize {
		budget = cfg.BatchSize
	}
	l, err := train.AutoLookahead(*cfg, iter, rtt, budget, 256)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("auto-lookahead: iteration ≈ %v, link RTT ≈ %v, budget %d rows → ℒ = %d\n\n",
		iter.Round(time.Microsecond), rtt.Round(time.Microsecond), budget, l)
	cfg.LookAhead = l
	*lookahd = l
}

// memDelta snapshots runtime.MemStats around an engine run so -stats can
// report the hot loop's allocation behavior per iteration — the field
// observation matching the steady-state benchmark's 0 allocs/op gate. The
// per-iteration numbers are dominated by the steady loop but include the
// run's setup (oracle, caches, pools warming), so they are an upper bound.
type memDelta struct{ before runtime.MemStats }

func startMemDelta() *memDelta {
	d := &memDelta{}
	runtime.ReadMemStats(&d.before)
	return d
}

func (d *memDelta) report(iters int) {
	if iters <= 0 {
		return
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - d.before.Mallocs
	alloced := after.TotalAlloc - d.before.TotalAlloc
	gcs := after.NumGC - d.before.NumGC
	pause := time.Duration(after.PauseTotalNs - d.before.PauseTotalNs)
	fmt.Printf("  mem: %.0f allocs/iter, %.1f KB/iter, %d GC cycles, %v total pause\n",
		float64(allocs)/float64(iters), float64(alloced)/1e3/float64(iters), gcs, pause.Round(10*time.Microsecond))
}

// reportLossDeviation reruns the experiment losslessly in-process and
// prints how far the compressed run's loss curve drifted — the observable
// accuracy cost of the float16 sync/replica modes, which -verify refuses
// to certify bit-for-bit. Worker mode calls this on rank 0 only: the twin
// reproduces the whole multi-trainer run, whose lossless loss is fabric-
// independent by the engine's bit-identity guarantee.
func reportLossDeviation(cfg train.Config, spec *data.Spec, res *train.Result) {
	lossless := cfg
	lossless.SyncCompress = false
	lossless.SyncCompressGrad = false
	srvs := newServers(spec)
	trs := make([]transport.Store, cfg.NumTrainers)
	for i := range trs {
		trs[i] = storeOver(srvs, "inproc")
	}
	ref, err := train.RunLRPP(lossless, trs, nil)
	if err != nil {
		fmt.Printf("  loss-deviation: lossless twin run failed: %v\n", err)
		return
	}
	fmt.Printf("  loss-deviation vs lossless: first %+.3e  last %+.3e  avg %+.3e\n",
		res.FirstLoss-ref.FirstLoss, res.LastLoss-ref.LastLoss, res.AvgLoss-ref.AvgLoss)
}

// runLocal is the single-process driver: every engine and the inproc/sim
// fabrics against an in-process -servers S tier, plus in-process -verify
// (the merged tier state against an unsharded no-cache baseline).
func runLocal(cfg train.Config, spec *data.Spec, netName string) {
	if *autoLook {
		var rtt time.Duration
		if netName == "sim" {
			rtt = *netLat
		}
		resolveAutoLookahead(&cfg, rtt)
	}
	banner(spec, netName)
	runEngine := func(srvs []*embed.Server) (*train.Result, error) {
		switch *engineFl {
		case "baseline":
			return train.RunBaseline(cfg, storeOver(srvs, netName))
		case "pipelined":
			return train.RunPipelined(cfg, storeOver(srvs, netName))
		case "lrpp":
			// One store per trainer: private traffic counters, its own links
			// to the shared tier.
			trs := make([]transport.Store, *trainers)
			for i := range trs {
				trs[i] = storeOver(srvs, netName)
			}
			var mesh transport.Mesh
			if netName == "sim" {
				mesh = transport.NewSimMesh(*trainers, *meshLat, *meshBW)
			}
			if *serveInfer {
				return runLRPPServing(cfg, spec, srvs, trs, mesh, netName)
			}
			return train.RunLRPP(cfg, trs, mesh)
		}
		return nil, fmt.Errorf("unknown engine %q", *engineFl)
	}

	srvs := newServers(spec)
	// The reshard coordinator is its own tier client over the same servers:
	// it waits out -reshard-delay, then migrates the live tier to -reshard-to
	// while the trainers keep writing through their own clients (which adopt
	// the new routing through the per-op stale-routing fence).
	var (
		reshardRep  *reshard.Report
		reshardErr  error
		reshardDone chan struct{}
	)
	var coord *transport.ShardedStore
	if *reshardTo > 0 {
		c, ok := storeOver(srvs, netName).(*transport.ShardedStore)
		if !ok {
			fatal(fmt.Errorf("-reshard-to needs a sharded tier client"))
		}
		coord = c
		reshardDone = make(chan struct{})
		go func() {
			defer close(reshardDone)
			time.Sleep(*reshardDelay)
			reshardRep, reshardErr = reshard.Run(coord, reshard.Options{
				To:  *reshardTo,
				Log: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
			})
		}()
	}
	md := startMemDelta()
	res, err := runEngine(srvs)
	if err != nil {
		fatal(err)
	}
	finalS := *servers
	if reshardDone != nil {
		<-reshardDone
		if reshardErr != nil {
			// An aborted migration rolled the routing back to the launch
			// width and shed the streamed rows; either way the user asked for
			// a reshard and did not get one — exit with the attributed error.
			fatal(reshardErr)
		}
		finalS = *reshardTo
		fmt.Printf("reshard: tier resharded %d -> %d in %d routing epochs (%d partitions, %d rows, %.2f MB streamed)\n",
			*servers, finalS, reshardRep.Epochs, reshardRep.Parts, reshardRep.Rows, float64(reshardRep.Bytes)/1e6)
		// The stream counters live in the coordinator's client, not the
		// trainers'; fold them into the run's tier snapshot so -stats shows
		// the migration's real progress numbers.
		if res.Tier != nil {
			ch := coord.TierHealth()
			if ch.ReshardParts > res.Tier.ReshardParts {
				res.Tier.ReshardParts = ch.ReshardParts
			}
			if ch.ReshardRows > res.Tier.ReshardRows {
				res.Tier.ReshardRows = ch.ReshardRows
			}
			if ch.ReshardBytes > res.Tier.ReshardBytes {
				res.Tier.ReshardBytes = ch.ReshardBytes
			}
			if ch.RoutingEpoch > res.Tier.RoutingEpoch {
				res.Tier.RoutingEpoch = ch.RoutingEpoch
			}
		}
	}
	report(res)
	if *statsFl {
		md.report(res.Iters)
		if *engineFl == "lrpp" && (cfg.SyncCompress || cfg.SyncCompressGrad) {
			reportLossDeviation(cfg, spec, res)
		}
		if *engineFl == "lrpp" && *serveInfer {
			reportInterference(cfg, spec, netName, res)
		}
	}

	if *verify {
		if *engineFl == "baseline" {
			fatal(fmt.Errorf("-verify compares against the baseline; pick -engine lrpp or pipelined"))
		}
		fmt.Println("\n--- verify: rerunning with the no-cache fetch-per-batch baseline (one-server reference tier) ---")
		srvBase := newServer(spec)
		baseRes, err := train.RunBaseline(cfg, storeOver([]*embed.Server{srvBase}, netName))
		if err != nil {
			fatal(err)
		}
		report(baseRes)
		// Merge only the final routed width: after a shrink the retired
		// servers still hold their stale pre-migration partitions, and after
		// a grow the migrated rows live on the new servers — finalS is where
		// the routing settled.
		merged, err := embed.MergeTierReplicated(srvs[:finalS], *replicate, nil)
		if err != nil {
			fatal(err)
		}
		diff := embed.Diff(srvBase, merged)
		if len(diff) != 0 {
			fatal(fmt.Errorf("FAIL: embedding state differs at %d ids (first %v)", len(diff), diff[0]))
		}
		fmt.Printf("\nPASS: %s over %d server(s) and baseline embedding state bit-identical across %d materialized rows\n",
			*engineFl, finalS, len(merged.MaterializedIDs()))
		if res.Elapsed < baseRes.Elapsed {
			fmt.Printf("%s speedup over baseline: %.2fx\n",
				*engineFl, baseRes.Elapsed.Seconds()/res.Elapsed.Seconds())
		}
		if *reshardTo > 0 {
			fmt.Printf("\nPASS: tier resharded %d -> %d: migrated tier certified bit-identical to the no-cache baseline across %d materialized rows\n",
				*servers, finalS, len(merged.MaterializedIDs()))
		}
	}
}

// newFrontend assembles the inference front end from the -infer-* flags
// over the given read face of the tier.
func newFrontend(store transport.ReadStore, spec *data.Spec, epoch serve.EpochSource) (*serve.Frontend, error) {
	return serve.New(serve.Config{
		Store:         store,
		Spec:          spec,
		Model:         *modelFl,
		Seed:          *seed,
		Epoch:         epoch,
		MaxStale:      *inferStale,
		CacheRows:     *inferCache,
		Clients:       *inferClients,
		RatePerClient: *inferRate,
		// The breaker covers every slot a reshard can route reads into, not
		// just the launch width.
		Servers: tierCapacity(),
	})
}

// loadConfig assembles the load generator's run; the Duration is effectively
// unbounded because the stop channel (training completion) ends the run.
func loadConfig(fe *serve.Frontend, spec *data.Spec) serve.LoadConfig {
	return serve.LoadConfig{
		Frontend: fe,
		Spec:     spec,
		Seed:     *seed ^ 0x5E,
		Clients:  *inferClients,
		QPS:      *inferQPS,
		Dist:     *inferDist,
		Duration: 24 * time.Hour,
	}
}

// reportServe prints the serving block — load accounting, latency/shed
// summary, consistency audit — and returns an error if the run served
// nothing or the audit rejected it.
func reportServe(fe *serve.Frontend, lr serve.LoadResult) error {
	fmt.Println()
	fmt.Println(lr)
	fmt.Println(fe.Stats())
	audit := fe.Audit()
	fmt.Println(audit)
	if !audit.Clean() {
		return fmt.Errorf("FAIL: serving consistency audit rejected the run: %v", audit)
	}
	if lr.Served == 0 {
		return fmt.Errorf("FAIL: the load generator served zero queries")
	}
	return nil
}

// runLRPPServing trains and serves concurrently over the same in-process
// tier: the trainers' retirement clock (train.Progress) is the front end's
// epoch source, and the load generator stops when training finishes.
func runLRPPServing(cfg train.Config, spec *data.Spec, srvs []*embed.Server, trs []transport.Store, mesh transport.Mesh, netName string) (*train.Result, error) {
	prog := train.NewProgress(cfg.NumTrainers)
	cfg.Progress = prog
	feStore := storeOver(srvs, netName)
	fe, err := newFrontend(transport.AsReadStore(feStore), spec, prog)
	if err != nil {
		return nil, err
	}
	if tier, ok := feStore.(*transport.ShardedStore); ok && *reshardTo > 0 {
		// Follow the migration's routing-epoch bumps: each install flushes
		// the hot-row cache so no row is served under the predecessor's
		// ownership map.
		tier.SubscribeRouting(fe.NotifyRouting)
	}
	trainDone := make(chan struct{})
	loadDone := make(chan struct{})
	var lr serve.LoadResult
	var loadErr error
	go func() {
		defer close(loadDone)
		lr, loadErr = serve.RunLoad(loadConfig(fe, spec), trainDone)
	}()
	res, err := train.RunLRPP(cfg, trs, mesh)
	close(trainDone)
	<-loadDone
	if err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	if err := reportServe(fe, lr); err != nil {
		return nil, err
	}
	return res, nil
}

// reportInterference reruns the identical training config with serving off
// and prints the throughput the serving load cost — the CLI view of
// BenchmarkServeInterference, behind -stats because it doubles the run.
func reportInterference(cfg train.Config, spec *data.Spec, netName string, res *train.Result) {
	solo := cfg
	solo.Progress = nil
	srvs := newServers(spec)
	trs := make([]transport.Store, cfg.NumTrainers)
	for i := range trs {
		trs[i] = storeOver(srvs, netName)
	}
	var mesh transport.Mesh
	if netName == "sim" {
		mesh = transport.NewSimMesh(cfg.NumTrainers, *meshLat, *meshBW)
	}
	ref, err := train.RunLRPP(solo, trs, mesh)
	if err != nil {
		fmt.Printf("  interference: serving-free twin run failed: %v\n", err)
		return
	}
	fmt.Printf("  interference: train %.0f ex/s under serving vs %.0f ex/s alone (%+.1f%%)\n",
		res.Throughput(), ref.Throughput(), 100*(res.Throughput()-ref.Throughput())/ref.Throughput())
}

// runServer is the embedding-server process: serve until a client sends the
// shutdown op.
func runServer(spec *data.Spec) {
	if *listen == "" {
		fatal(fmt.Errorf("-serve requires -listen"))
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := newServer(spec)
	if *recoverFl {
		// A respawned chaos victim: rows a tier client writes from here on
		// are fresh and win over the anti-entropy snapshot; the tier ends
		// recovery once the rejoin certifies.
		srv.BeginRecovery()
	}
	mode := ""
	if *recoverFl {
		mode = " (recovery mode)"
	}
	fmt.Printf("embedding server: %d shards, dim %d, listening on %s%s\n",
		*shards, spec.EmbDim, lis.Addr(), mode)
	if err := transport.ServeEmbed(lis, srv); err != nil {
		fatal(err)
	}
	fmt.Println("embedding server: shutdown")
}

// runWorker is one trainer process of a distributed LRPP run: it meshes
// with its peers and reaches the embedding tier through one TCPLink per
// server, sharded by a ShardedStore when the tier is multi-server.
func runWorker(cfg train.Config) {
	if *engineFl != "lrpp" {
		fatal(fmt.Errorf("-rank runs the lrpp engine; -engine %s has no multi-trainer-process form (drop -rank, or use the tcp driver which runs it against a remote tier)", *engineFl))
	}
	if *peersFl == "" {
		fatal(fmt.Errorf("-rank requires -peers"))
	}
	saddrs, err := tierAddrs()
	if err != nil {
		fatal(err)
	}
	addrs := strings.Split(*peersFl, ",")
	if len(addrs) != cfg.NumTrainers {
		fatal(fmt.Errorf("-peers lists %d addresses for %d trainers", len(addrs), cfg.NumTrainers))
	}
	var lis net.Listener
	if *listen != "" {
		if lis, err = net.Listen("tcp", *listen); err != nil {
			fatal(err)
		}
	}
	mesh, err := transport.NewTCPMesh(*rank, addrs, lis)
	if err != nil {
		fatal(err)
	}
	store, links, err := dialStores(saddrs, 30*time.Second, nil, exitOnTierLoss, *servers)
	if err != nil {
		mesh.Shutdown() // depart cleanly so peers see a goodbye, not a crash
		fatal(err)
	}
	// A replicated tier gets a reviver: dead servers — killed mid-run or
	// unreachable when dialStores first tried them — are re-dialed on a poll
	// and brought back through the anti-entropy rejoin, concurrent with
	// training. Links the reviver dials belong to the tier's slots, not the
	// dialStores list, so they are tracked and closed separately.
	var (
		rev      *transport.Reviver
		revMu    sync.Mutex
		revLinks []*transport.TCPLink
	)
	tier, isTier := store.(*transport.ShardedStore)
	if isTier && *replicate > 1 {
		rev = transport.NewReviver(tier, func(s int) (transport.Store, error) {
			link, err := transport.DialTCPLink(saddrs[s], time.Second)
			if err != nil {
				return nil, err
			}
			revMu.Lock()
			revLinks = append(revLinks, link)
			revMu.Unlock()
			return link, nil
		}, transport.RejoinOptions{}, func(s int, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "bagpipe: rejoin of embedding server %d failed (will retry): %v\n", s, err)
				return
			}
			fmt.Fprintf(os.Stderr, "bagpipe: rejoined embedding server %d (resynced into the live tier)\n", s)
		})
	}
	md := startMemDelta()
	res, err := train.RunLRPPWorker(cfg, *rank, store, mesh)
	if err != nil {
		mesh.Shutdown()
		fatal(err)
	}
	if rev != nil {
		if *restartFl {
			// The driver told us a killed server is coming back: give the
			// revival a bounded chance to land (and this rank's forwarded
			// writes with it) before departing, so the driver's rejoin
			// certification sees every trainer's updates on the rejoiner.
			deadline := time.Now().Add(20 * time.Second)
			for time.Now().Before(deadline) {
				if tier.TierHealth().Revived > 0 || len(tier.DownServers()) == 0 {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
		rev.Stop() // waits out any in-flight rejoin before we start closing
	}
	report(res)
	if *statsFl {
		md.report(res.Iters)
		if *rank == 0 && (cfg.SyncCompress || cfg.SyncCompressGrad) {
			reportLossDeviation(cfg, cfg.Spec, res)
		}
	}
	mesh.Shutdown()
	for _, l := range links {
		if l != nil {
			l.Close()
		}
	}
	revMu.Lock()
	for _, l := range revLinks {
		l.Close()
	}
	revMu.Unlock()
}

// runTCPDriver forks the whole distributed system locally: -servers S
// embedding-server processes plus (for the lrpp engine) one process per
// trainer, all on loopback TCP — then optionally certifies the remote tier
// state against a local baseline run, exactly as the in-process -verify
// does, by restoring every server's checkpoint and merging the tier.
func runTCPDriver(cfg train.Config, spec *data.Spec) {
	banner(spec, "tcp")
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	// Reserve addresses for the full tier capacity: a -reshard-to grow
	// spawns its spare server processes mid-run on addresses every tier
	// client already knows.
	capacity := tierCapacity()
	ports, err := freeLoopbackAddrs(capacity + *trainers)
	if err != nil {
		fatal(err)
	}
	srvAddrs, meshAddrs := ports[:capacity], ports[capacity:]

	// commonArgs reads the flags at call time: the server is spawned before
	// -auto-lookahead resolves ℒ (it needs the server up to measure the link
	// RTT), the trainers after — every rank must see the resolved value.
	commonArgs := func() []string {
		return []string{
			"-net", "tcp",
			"-dataset", *dataset,
			"-scale", fmt.Sprint(*scale),
			"-model", *modelFl,
			"-opt", *optFl,
			"-lr", fmt.Sprint(*lr),
			"-batch-size", fmt.Sprint(*batchSz),
			"-batches", fmt.Sprint(*batches),
			"-lookahead", fmt.Sprint(*lookahd),
			"-trainers", fmt.Sprint(*trainers),
			"-partitioner", *partFl,
			fmt.Sprintf("-eager-sync=%v", *eager),
			"-collective", *collFl,
			fmt.Sprintf("-sync-compress=%v", *syncComp),
			fmt.Sprintf("-sync-compress-grad=%v", *syncCompGrad),
			fmt.Sprintf("-stats=%v", *statsFl),
			"-servers", fmt.Sprint(*servers),
			"-replicate", fmt.Sprint(*replicate),
			"-reshard-to", fmt.Sprint(*reshardTo),
			"-shards", fmt.Sprint(*shards),
			"-emb-dim", fmt.Sprint(*embDim),
			"-seed", fmt.Sprint(*seed),
		}
	}
	// fatal would bypass deferred cleanup (os.Exit); every failure after the
	// first spawn must go through die — including a failed spawn mid-loop,
	// which would otherwise orphan the processes already started. The spawn
	// list is mutex-guarded because the -restart-server chaos goroutine
	// respawns the victim while the main goroutine may be tearing down.
	var (
		spawnMu sync.Mutex
		spawned []*exec.Cmd
	)
	killSpawned := func() {
		spawnMu.Lock()
		procs := append([]*exec.Cmd(nil), spawned...)
		spawnMu.Unlock()
		for _, proc := range procs {
			if proc.Process != nil {
				proc.Process.Kill()
			}
		}
		// Reap what was just killed: Kill without Wait leaves zombies that
		// accumulate across a chaos-test loop (the driver process lives on).
		// Wait errors are expected here — killed children exit non-zero, and
		// cleanly finished ones were already reaped by the happy path.
		for _, proc := range procs {
			if proc.Process != nil {
				proc.Wait()
			}
		}
	}
	die := func(err error) {
		killSpawned()
		fatal(err)
	}
	// startProc forks one child; a non-nil tee additionally receives the
	// child's raw (unprefixed) stderr — the driver's rejoin-marker watch.
	startProc := func(tag string, tee io.Writer, extra ...string) *exec.Cmd {
		cmd := exec.Command(exe, append(commonArgs(), extra...)...)
		cmd.Stdout = newPrefixWriter(os.Stdout, "["+tag+"] ")
		var serr io.Writer = newPrefixWriter(os.Stderr, "["+tag+"] ")
		if tee != nil {
			serr = io.MultiWriter(serr, tee)
		}
		cmd.Stderr = serr
		if err := cmd.Start(); err != nil {
			die(fmt.Errorf("spawn %s: %w", tag, err))
		}
		spawnMu.Lock()
		spawned = append(spawned, cmd)
		spawnMu.Unlock()
		return cmd
	}
	defer killSpawned() // no-op after a clean Wait; covers panics

	// serverProcs spans the full capacity; only the launch width is spawned
	// here — a grow's spares are spawned by the reshard goroutine mid-run.
	serverProcs := make([]*exec.Cmd, capacity)
	for s := 0; s < *servers; s++ {
		serverProcs[s] = startProc(fmt.Sprintf("server %d", s), nil, "-serve", "-listen", srvAddrs[s])
	}
	var procs []*exec.Cmd

	if *autoLook {
		// Measure the real tier round trip against the freshly spawned
		// servers (a fingerprint is one scatter/gather RPC round: with S
		// servers it completes when the slowest link answers, which is the
		// latency the ℒ window must cover), then resolve ℒ once here; the
		// trainers inherit the concrete -lookahead value. The probe times a
		// control frame, not a payload: on bandwidth-constrained links the
		// resolved ℒ is a floor — it covers propagation but not the fetch's
		// serialization time, so heavily congested links may still want a
		// hand-tuned, deeper -lookahead.
		store, links, err := dialStores(srvAddrs[:*servers], 30*time.Second, nil, nil, 0)
		if err != nil {
			die(err)
		}
		store.Fingerprint() // warm the connections and the servers' shard walks
		const pings = 3
		t0 := time.Now()
		for i := 0; i < pings; i++ {
			store.Fingerprint()
		}
		rtt := time.Since(t0) / pings
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
		resolveAutoLookahead(&cfg, rtt)
	}

	// The rejoin-marker watch: each trainer prints one "rejoined embedding
	// server K" stderr line when its tier re-admits the respawned victim.
	// Once every trainer has, the rejoin is fully certified tier-wide — the
	// moment the -kill-after-rejoin double-chaos kill is allowed to fire
	// (killing the peer earlier could destroy the only good copy of the
	// partitions the rejoiner is still resyncing).
	var (
		rejoinMarks atomic.Int64
		peerKilled  atomic.Bool
		respawnCh   chan *exec.Cmd
	)
	var markWatch io.Writer
	if *restartFl {
		markWatch = &lineWatch{
			match: []byte(fmt.Sprintf("rejoined embedding server %d", *killServer)),
			fire: func() {
				if int(rejoinMarks.Add(1)) != *trainers || *killAfterRj < 0 || peerKilled.Swap(true) {
					return
				}
				fmt.Fprintf(os.Stderr, "chaos: all %d trainers re-admitted server %d; killing its replica peer %d\n",
					*trainers, *killServer, *killAfterRj)
				if p := serverProcs[*killAfterRj].Process; p != nil {
					p.Kill()
				}
			},
		}
	}

	// The reshard coordinator runs in the driver over its own tier links,
	// concurrent with the trainer processes; their clients adopt each routing
	// epoch through the servers' stale-routing fences.
	var (
		reshardRep   *reshard.Report
		reshardErr   error
		reshardDone  chan struct{}
		reshardLinks []*transport.TCPLink
	)
	if *engineFl == "lrpp" {
		fmt.Printf("spawned %d embedding server(s) at %s; spawning %d trainer processes\n\n",
			*servers, strings.Join(srvAddrs[:*servers], ","), *trainers)
		for p := 0; p < *trainers; p++ {
			targs := []string{
				"-rank", fmt.Sprint(p),
				"-peers", strings.Join(meshAddrs, ","),
				"-server-addrs", strings.Join(srvAddrs, ","),
			}
			if *restartFl {
				targs = append(targs, "-restart-server") // wait hint: a revival is coming
			}
			procs = append(procs, startProc(fmt.Sprintf("trainer %d", p), markWatch, targs...))
		}
		// The serving leg lives in the driver process, on its own tier links,
		// while the trainer processes mutate the tier. The front end cannot
		// see the trainers' retirement clock from here, so the staleness
		// bound is denominated in wall-clock ticker epochs instead.
		var (
			infFE    *serve.Frontend
			infLinks []*transport.TCPLink
			infRes   serve.LoadResult
			infErr   error
			infDone  chan struct{}
			infStop  chan struct{}
			infRev   *transport.Reviver
			infMu    sync.Mutex
		)
		if *serveInfer {
			store, links, err := dialStores(srvAddrs, 30*time.Second, nil, nil, *servers)
			if err != nil {
				die(err)
			}
			infLinks = links
			infFE, err = newFrontend(transport.AsReadStore(store), spec, serve.NewTickerEpoch(100*time.Millisecond))
			if err != nil {
				die(err)
			}
			if tier, ok := store.(*transport.ShardedStore); ok && *reshardTo > 0 {
				// Follow the migration: every routing-epoch install flushes
				// the hot-row cache so no row is served under the
				// predecessor's ownership map.
				front := infFE
				tier.SubscribeRouting(func(epoch uint64) {
					front.NotifyRouting(epoch)
					fmt.Fprintf(os.Stderr, "serve: adopted routing epoch %d, hot-row cache flushed\n", epoch)
				})
			}
			if tier, ok := store.(*transport.ShardedStore); ok && *restartFl {
				// The front end never writes, so its rejoin is verify-only: it
				// waits for the respawned server's partitions to match the
				// live holders' digests (some trainer owns the actual
				// transfer) before re-admitting it to the read ring — and the
				// revival tells the circuit breaker to probe the server
				// immediately instead of sitting out its cooldown.
				front := infFE
				tier.SubscribeRevived(func(s int) {
					front.NotifyRevived(s)
					fmt.Fprintf(os.Stderr, "serve: embedding server %d verified and re-admitted to the read path\n", s)
				})
				infRev = transport.NewReviver(tier, func(s int) (transport.Store, error) {
					link, err := transport.DialTCPLink(srvAddrs[s], time.Second)
					if err != nil {
						return nil, err
					}
					infMu.Lock()
					infLinks = append(infLinks, link)
					infMu.Unlock()
					return link, nil
				}, transport.RejoinOptions{VerifyOnly: true}, nil)
			}
			infStop = make(chan struct{})
			infDone = make(chan struct{})
			go func() {
				defer close(infDone)
				infRes, infErr = serve.RunLoad(loadConfig(infFE, spec), infStop)
			}()
		}
		if *killServer >= 0 {
			if *restartFl {
				respawnCh = make(chan *exec.Cmd, 1)
			}
			// The chaos arm: kill one embedding server while the trainers
			// run. Kill only — reaping stays on the main goroutine (the final
			// server Wait loop), so no two goroutines ever Wait on one child.
			// With -restart-server the same goroutine then respawns the victim
			// on its old address, in recovery mode; the main goroutine adopts
			// the new process handle through respawnCh before it next touches
			// serverProcs[*killServer].
			go func() {
				time.Sleep(*killDelay)
				fmt.Fprintf(os.Stderr, "chaos: killing embedding server %d (%v after trainer spawn)\n", *killServer, *killDelay)
				if p := serverProcs[*killServer].Process; p != nil {
					p.Kill()
				}
				if respawnCh != nil {
					time.Sleep(*restartWait)
					fmt.Fprintf(os.Stderr, "chaos: respawning embedding server %d on %s in recovery mode (%v after the kill)\n",
						*killServer, srvAddrs[*killServer], *restartWait)
					respawnCh <- startProc(fmt.Sprintf("server %d", *killServer), nil,
						"-serve", "-listen", srvAddrs[*killServer], "-recover")
				}
			}()
		}
		if *reshardTo > 0 {
			reshardDone = make(chan struct{})
			go func() {
				defer close(reshardDone)
				time.Sleep(*reshardDelay)
				// A grow spawns its target server processes now, mid-run; the
				// coordinator's EnsureServer retries cover their boot time.
				// (These slots are disjoint from the chaos goroutine's victim,
				// which is always inside the launch width.)
				for s := *servers; s < *reshardTo; s++ {
					fmt.Fprintf(os.Stderr, "reshard: spawning embedding server %d on %s\n", s, srvAddrs[s])
					serverProcs[s] = startProc(fmt.Sprintf("server %d", s), nil, "-serve", "-listen", srvAddrs[s])
				}
				coord, links, err := dialStores(srvAddrs, 30*time.Second, nil, nil, *servers)
				if err != nil {
					reshardErr = err
					return
				}
				reshardLinks = links
				tier, ok := coord.(*transport.ShardedStore)
				if !ok {
					reshardErr = fmt.Errorf("-reshard-to needs a sharded tier client")
					return
				}
				reshardRep, reshardErr = reshard.Run(tier, reshard.Options{
					To:  *reshardTo,
					Log: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
				})
			}()
		}
		failed := false
		for p, proc := range procs {
			if err := proc.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "bagpipe: trainer %d: %v\n", p, err)
				failed = true
			}
		}
		if *serveInfer {
			close(infStop)
			<-infDone
			if infRev != nil {
				infRev.Stop()
			}
			for _, l := range infLinks {
				if l != nil {
					l.Close()
				}
			}
			if infErr != nil {
				die(infErr)
			}
			if err := reportServe(infFE, infRes); err != nil {
				die(err)
			}
			if *killServer >= 0 {
				st := infFE.Stats()
				if st.LookupP99 > *inferP99 {
					die(fmt.Errorf("FAIL: serving under chaos: lookup p99 %v exceeds the -infer-p99-bound %v", st.LookupP99, *inferP99))
				}
				fmt.Printf("\nPASS: serving under chaos: %d queries served across the kill of server %d, lookup p99 %v within %v, audit clean\n",
					infRes.Served, *killServer, st.LookupP99, *inferP99)
			}
		}
		if failed {
			die(fmt.Errorf("trainer process failed"))
		}
	} else {
		// baseline/pipelined are single-trainer-process engines: run the
		// engine here, against the remote embedding tier.
		tr, links, err := dialStores(srvAddrs, 30*time.Second, nil, nil, 0)
		if err != nil {
			die(err)
		}
		var res *train.Result
		switch *engineFl {
		case "baseline":
			res, err = train.RunBaseline(cfg, tr)
		case "pipelined":
			res, err = train.RunPipelined(cfg, tr)
		default:
			err = fmt.Errorf("unknown engine %q", *engineFl)
		}
		if err != nil {
			die(err)
		}
		report(res)
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
	}

	// Join the migration before any post-run certification: the tier's final
	// width is wherever the routing settled. An aborted or failed migration
	// is a run failure — the routing rolled back and the streamed rows were
	// shed, but the user asked for a reshard and did not get one.
	finalS := *servers
	if reshardDone != nil {
		<-reshardDone
		for _, l := range reshardLinks {
			if l != nil {
				l.Close()
			}
		}
		if reshardErr != nil {
			die(reshardErr)
		}
		finalS = *reshardTo
		fmt.Printf("reshard: tier resharded %d -> %d in %d routing epochs (%d partitions, %d rows, %.2f MB streamed)\n",
			*servers, finalS, reshardRep.Epochs, reshardRep.Parts, reshardRep.Rows, float64(reshardRep.Bytes)/1e6)
	}

	// The post-run control store must not dial the chaos victim: it is dead
	// by design (and if the run outpaced -kill-delay, make it dead now, or
	// the final Wait below would block on a server nobody will shut down).
	// With -restart-server the victim is alive again, but its state is only
	// trustworthy once a rejoin has certified it: if the trainers' mid-run
	// rejoin already did (proven by the marker count that gates the
	// double-chaos kill), the control tier admits it live; otherwise it
	// starts out dead here and the driver runs the anti-entropy rejoin
	// itself below.
	var ctlDead []bool
	if *killServer >= 0 {
		ctlDead = make([]bool, finalS)
		if !*restartFl {
			if p := serverProcs[*killServer].Process; p != nil {
				p.Kill()
			}
			// After a shrink the victim may sit outside the final width —
			// retired from routing entirely, nothing to mark.
			if *killServer < finalS {
				ctlDead[*killServer] = true
			}
		} else {
			serverProcs[*killServer] = <-respawnCh // adopt the respawned handle
			if peerKilled.Load() {
				ctlDead[*killAfterRj] = true
			} else {
				ctlDead[*killServer] = true
			}
		}
	}
	ctl, ctlLinks, err := dialStores(srvAddrs[:finalS], 10*time.Second, ctlDead, func(e *transport.TierError) {
		killSpawned()
		fatal(e)
	}, 0)
	if err != nil {
		die(err)
	}
	if *restartFl && !peerKilled.Load() {
		// Driver-side rejoin: idempotent when the trainers already brought
		// the victim back mid-run, and the only path when the run finished
		// before the respawn. Sourced from the surviving replicas, certified
		// partition by partition, then (for the double-chaos run that never
		// saw every trainer rejoin mid-run) the peer kill fires here, after
		// certification — the rejoiner must carry their shared partitions
		// alone.
		tier, ok := ctl.(*transport.ShardedStore)
		if !ok {
			die(fmt.Errorf("-restart-server needs a multi-server tier"))
		}
		link, err := transport.DialTCPLink(srvAddrs[*killServer], 10*time.Second)
		if err != nil {
			die(fmt.Errorf("re-dial respawned server %d: %w", *killServer, err))
		}
		if err := tier.Rejoin(*killServer, link, transport.RejoinOptions{}); err != nil {
			link.Close()
			die(fmt.Errorf("rejoin of server %d: %w", *killServer, err))
		}
		ctlLinks[*killServer] = link
		fmt.Fprintf(os.Stderr, "bagpipe: server %d resynced and re-admitted to the control tier\n", *killServer)
		if *killAfterRj >= 0 && !peerKilled.Swap(true) {
			fmt.Fprintf(os.Stderr, "chaos: killing embedding server %d now that server %d rejoined\n", *killAfterRj, *killServer)
			if p := serverProcs[*killAfterRj].Process; p != nil {
				p.Kill()
			}
			// One throwaway tier op lets the failover machinery discover the
			// death and settle the membership before the checkpoint snapshot.
			ctl.Fingerprint()
		}
	}
	if *verify {
		if *engineFl == "baseline" {
			die(fmt.Errorf("-verify compares against the baseline; pick -engine lrpp or pipelined"))
		}
		fmt.Println("\n--- verify: fetching remote tier checkpoints, rerunning the no-cache baseline locally ---")
		// The restore's dead-set must match the membership the checkpoint was
		// actually taken under — which the rejoin (server back in) and the
		// double-chaos kill (peer out) may both have moved since dial time —
		// so read it off the tier rather than reusing the dial-time slice.
		deadNow := ctlDead
		if tier, ok := ctl.(*transport.ShardedStore); ok {
			deadNow = make([]bool, finalS)
			for _, s := range tier.DownServers() {
				deadNow[s] = true
			}
		}
		remote, err := embed.RestoreTierReplicated(bytes.NewReader(ctl.Checkpoint()), finalS, *shards, *replicate, deadNow)
		if err != nil {
			die(fmt.Errorf("restore remote tier checkpoint: %w", err))
		}
		srvBase := newServer(spec)
		baseRes, err := train.RunBaseline(cfg, transport.NewInProcess(srvBase))
		if err != nil {
			die(err)
		}
		report(baseRes)
		diff := embed.Diff(srvBase, remote)
		if len(diff) != 0 {
			die(fmt.Errorf("FAIL: remote embedding state differs at %d ids (first %v)", len(diff), diff[0]))
		}
		if *replicate > 1 {
			// Second, independent certificate: the live tier's wire
			// fingerprint (per-partition sums from each partition's first
			// live replica) must match the baseline server's — proving the
			// failover read path, not just the checkpoints, sees the
			// surviving state.
			if fp, ref := ctl.Fingerprint(), srvBase.Fingerprint(); fp != ref {
				die(fmt.Errorf("FAIL: surviving tier fingerprint %x != baseline %x", fp, ref))
			}
		}
		if *restartFl {
			// The rejoin certificate: every partition the revived server
			// holds, fingerprinted over its own link (not the tier's failover
			// routing), must be bit-identical to the no-cache baseline.
			link := ctlLinks[*killServer]
			if link == nil {
				die(fmt.Errorf("no control link to the rejoined server %d", *killServer))
			}
			for k := 0; k < *replicate; k++ {
				p := ((*killServer-k)%*servers + *servers) % *servers
				got, err := link.TryFingerprintPart(p, *servers)
				if err != nil {
					die(fmt.Errorf("fingerprint partition %d on rejoined server %d: %w", p, *killServer, err))
				}
				if want := srvBase.FingerprintPart(p, *servers); got != want {
					die(fmt.Errorf("FAIL: rejoined server %d partition %d fingerprint %x != baseline %x", *killServer, p, got, want))
				}
			}
			fmt.Printf("\nPASS: server %d rejoined: all %d of its partitions certified bit-identical to the baseline after anti-entropy resync\n",
				*killServer, *replicate)
		}
		if *killServer >= 0 {
			fmt.Printf("\nPASS: distributed %s over loopback TCP survived killing embedding server %d: surviving tier bit-identical to the baseline across %d materialized rows\n",
				*engineFl, *killServer, len(remote.MaterializedIDs()))
		} else {
			fmt.Printf("\nPASS: distributed %s over loopback TCP left the %d-server embedding tier bit-identical to the baseline across %d materialized rows\n",
				*engineFl, finalS, len(remote.MaterializedIDs()))
		}
		if *reshardTo > 0 {
			fmt.Printf("\nPASS: tier resharded %d -> %d: migrated tier certified bit-identical to the no-cache baseline across %d materialized rows\n",
				*servers, finalS, len(remote.MaterializedIDs()))
		}
	}
	if *restartFl {
		// Certification done: the driver — the coordinator that knows every
		// tier client has re-admitted the rejoiner — closes its server-side
		// recovery window, returning it to plain-write service.
		if tier, ok := ctl.(*transport.ShardedStore); ok {
			if err := tier.EndRecovery(*killServer); err != nil {
				die(fmt.Errorf("end recovery of server %d: %w", *killServer, err))
			}
		}
	}
	ctl.Shutdown()
	for _, l := range ctlLinks {
		if l != nil {
			l.Close()
		}
	}
	// Retire the server processes the routing no longer references: a
	// shrink's [finalS, S) range still serves (the migration leaves their
	// state untouched until the operator stops them) and an aborted grow may
	// have left admitted-but-unrouted spares. The control store above only
	// covers [0, finalS), so shut these down over their own links; a server
	// that cannot be reached any more is killed so the Wait below cannot
	// hang.
	forceKilled := make([]bool, len(serverProcs))
	for s := finalS; s < len(serverProcs); s++ {
		if serverProcs[s] == nil || s == *killServer {
			continue
		}
		if link, err := transport.DialTCPLink(srvAddrs[s], 5*time.Second); err == nil {
			link.Shutdown()
			link.Close()
		} else if p := serverProcs[s].Process; p != nil {
			p.Kill()
			forceKilled[s] = true
		}
	}
	// Wait for every server before reporting: bailing on the first bad exit
	// would leave later servers running with no one to reap them. The chaos
	// victim is reaped here too — its kill-induced exit error is the point,
	// not a failure.
	var exitErr error
	for s, proc := range serverProcs {
		if proc == nil {
			continue
		}
		err := proc.Wait()
		// The chaos victims' kill-induced exits are the point, not failures:
		// the original -kill-server incarnation (its respawn, which Waits
		// here under the same index, must exit cleanly) and the
		// -kill-after-rejoin peer.
		if (s == *killServer && !*restartFl) || s == *killAfterRj || forceKilled[s] {
			continue
		}
		if err != nil && exitErr == nil {
			exitErr = fmt.Errorf("embedding server %d: %w", s, err)
		}
	}
	if exitErr != nil {
		die(exitErr)
	}
}

// freeLoopbackAddrs reserves n distinct loopback TCP addresses by binding
// ephemeral ports and releasing them. The tiny bind race with other
// processes is acceptable for a local spawn harness; the children's dial
// retries cover slow starters, and a genuinely stolen port fails loudly.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range listeners {
		lis.Close()
	}
	return addrs, nil
}

// prefixWriter prefixes every output line with its process tag so the
// interleaved child output stays attributable.
type prefixWriter struct {
	w      io.Writer
	prefix []byte
	atBOL  bool
}

func newPrefixWriter(w io.Writer, prefix string) *prefixWriter {
	return &prefixWriter{w: w, prefix: []byte(prefix), atBOL: true}
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	written := 0
	for len(b) > 0 {
		if p.atBOL {
			if _, err := p.w.Write(p.prefix); err != nil {
				return written, err
			}
			p.atBOL = false
		}
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			n, err := p.w.Write(b)
			return written + n, err
		}
		n, err := p.w.Write(b[:i+1])
		written += n
		if err != nil {
			return written, err
		}
		p.atBOL = true
		b = b[i+1:]
	}
	return written, nil
}

// lineWatch is an io.Writer that scans a child's raw output stream and
// invokes fire once per complete line containing match, buffering partial
// lines across writes. The driver tees trainer stderr through one to count
// rejoin markers.
type lineWatch struct {
	mu    sync.Mutex
	match []byte
	buf   []byte
	fire  func()
}

func (lw *lineWatch) Write(b []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.buf = append(lw.buf, b...)
	for {
		i := bytes.IndexByte(lw.buf, '\n')
		if i < 0 {
			return len(b), nil
		}
		if bytes.Contains(lw.buf[:i], lw.match) {
			lw.fire()
		}
		lw.buf = lw.buf[i+1:]
	}
}

// banner prints the experiment header.
func banner(spec *data.Spec, netName string) {
	fmt.Printf("dataset %s  (%d categorical / %d numeric, %d rows, dim %d)\n",
		spec.Name, spec.NumCategorical, spec.NumNumeric, spec.TotalRows(), spec.EmbDim)
	fmt.Printf("engine %s  model %s  opt %s  lr %g  batch %d x %d iters  lookahead %d  trainers %d  partitioner %s  servers %d x %d shards  replicate %d  net %s\n",
		*engineFl, *modelFl, *optFl, *lr, *batchSz, *batches, *lookahd, *trainers, *partFl, *servers, *shards, *replicate, netName)
	if *serveInfer {
		qps := "unpaced"
		if *inferQPS > 0 {
			qps = fmt.Sprintf("%g qps", *inferQPS)
		}
		fmt.Printf("serving %d clients  dist %s  %s  max-stale %d epochs  cache %d rows\n",
			*inferClients, *inferDist, qps, *inferStale, *inferCache)
	}
	fmt.Println()
}

// specByName resolves the dataset flag to a Table 1 shape.
func specByName(name string) (*data.Spec, error) {
	switch name {
	case "criteo-kaggle":
		return data.CriteoKaggle(), nil
	case "avazu":
		return data.Avazu(), nil
	case "criteo-terabyte":
		return data.CriteoTerabyte(), nil
	case "alibaba":
		return data.Alibaba(), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// partitionerByName resolves the partitioner flag. "hash" is the LRPP
// default: contiguous example split, rows hash-partitioned across trainer
// caches (ownership is always by hash; the flag picks example placement).
func partitionerByName(name string) (core.Partitioner, error) {
	switch name {
	case "hash", "contiguous", "":
		return nil, nil // engine default: core.Contiguous
	case "roundrobin":
		return core.RoundRobin{}, nil
	case "comm-aware":
		// Empty seen-set: ownership resolves through the hash fallback,
		// matching where the LRPP cache actually places every row.
		return &core.CommAware{Own: core.Ownership{}}, nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", name)
}

// report prints one engine's result block.
func report(r *train.Result) {
	fmt.Printf("[%s] %d iters, %d examples in %v  (%.0f ex/s)\n",
		r.Engine, r.Iters, r.Examples, r.Elapsed.Round(time.Millisecond), r.Throughput())
	fmt.Printf("  loss: first %.4f  last %.4f  avg %.4f\n", r.FirstLoss, r.LastLoss, r.AvgLoss)
	if r.Engine != "baseline" && r.UniqueIDs > 0 {
		fmt.Printf("  cache: hit-rate %.1f%%  (%d hits / %d unique ids), peak %d rows, %d evictions\n",
			100*r.HitRate(), r.CachedHits, r.UniqueIDs, r.PeakCache, r.Evicted)
	}
	if r.Engine != "baseline" {
		fmt.Printf("  overlap: prefetch||train observed %d times, writeback||train %d times\n",
			r.OverlapPrefetchTrain, r.OverlapMaintTrain)
	}
	if r.Engine == "lrpp" {
		fmt.Printf("  lrpp: %d replica rows pushed, %d sync contributions merged, flushes %d urgent / %d delayed\n",
			r.ReplicaRows, r.SyncEntries, r.UrgentFlushes, r.DelayedFlushes)
		fmt.Printf("  mesh: %d msgs, %.2f MB", r.Mesh.Msgs, float64(r.Mesh.Bytes)/1e6)
		if r.Mesh.SimulatedDelay > 0 {
			fmt.Printf(", simulated delay %v", r.Mesh.SimulatedDelay.Round(time.Millisecond))
		}
		fmt.Println()
		if *statsFl {
			c := r.MeshClasses
			iters := float64(r.Iters)
			fmt.Printf("  mesh by phase (sent from this process):\n")
			row := func(name string, msgs, bytes int64) {
				fmt.Printf("    %-11s %7d frames (%6.1f/iter)  %10.2f KB (%8.0f B/iter)\n",
					name, msgs, float64(msgs)/iters, float64(bytes)/1e3, float64(bytes)/iters)
			}
			row("replica", c.ReplicaMsgs, c.ReplicaBytes)
			row("sync", c.SyncMsgs, c.SyncBytes)
			row("collective", c.CollMsgs, c.CollBytes)
			row("plan", c.PlanMsgs, c.PlanBytes)
		}
	}
	if r.Tier != nil {
		fmt.Printf("  tier: replicate %d over %d servers, %d failovers, %d rpc retries, dead %v\n",
			r.Tier.Replicate, r.Tier.Servers, r.Tier.Failovers, r.Tier.Retries, r.Tier.Dead)
		if r.Tier.Revived > 0 || r.Tier.ResyncRows > 0 {
			fmt.Printf("  tier: %d server rejoin(s) certified, %d rows streamed by anti-entropy resync\n",
				r.Tier.Revived, r.Tier.ResyncRows)
		}
		if r.Tier.RoutingEpoch > 0 {
			fmt.Printf("  tier: reshard routing epoch %d, %d partitions cut over, %d rows (%.2f MB) streamed through this process\n",
				r.Tier.RoutingEpoch, r.Tier.ReshardParts, r.Tier.ReshardRows, float64(r.Tier.ReshardBytes)/1e6)
		}
	}
	st := r.Transport
	fmt.Printf("  traffic: fetched %d rows (%.2f MB) in %d calls, wrote %d rows (%.2f MB) in %d calls\n",
		st.RowsFetched, float64(st.BytesFetched)/1e6, st.Fetches,
		st.RowsWritten, float64(st.BytesWritten)/1e6, st.Writes)
	if *statsFl && len(r.StoreServers) > 0 {
		iters := float64(r.Iters)
		fmt.Printf("  tier by server (sent from this process):\n")
		for i, ss := range r.StoreServers {
			fmt.Printf("    server %-3d fetch %6d frames (%5.1f/iter) %10.2f KB   write %6d frames (%5.1f/iter) %10.2f KB\n",
				i, ss.Fetches, float64(ss.Fetches)/iters, float64(ss.BytesFetched)/1e3,
				ss.Writes, float64(ss.Writes)/iters, float64(ss.BytesWritten)/1e3)
		}
	}
	if st.SimulatedDelay > 0 {
		fmt.Printf("  simulated network delay injected: %v\n", st.SimulatedDelay.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bagpipe:", err)
	os.Exit(1)
}
