module bagpipe

go 1.24
